(* mmrepro — command-line driver for the CortenMM reproduction.

   Subcommands:
     list            show every reproducible table/figure
     run [IDS...]    run experiments (all when none given)
     verify          run the full verification suite (protocol model
                     checking, refinement, exhaustive functional
                     correctness, linearizability)
     sweep           one microbenchmark over a core sweep (quick look)
     trace           generate / replay MM operation traces
     oracle          differential cross-backend oracle on one trace *)

open Cmdliner

(* Shared observability options: record a deterministic event trace
   (Chrome trace_event JSON, Perfetto-loadable) and/or print the
   lock-contention report after the run. *)

let obs_trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a deterministic event trace of the run and write it as \
           Chrome trace_event JSON (load in ui.perfetto.dev or \
           chrome://tracing).")

let obs_report =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "After the run, print the lock-contention report (locks ranked by \
           serialized cycles) and the metrics registry.")

(* -j/--jobs for the drivers whose work decomposes into independent
   worlds (oracle, serve, schedcheck). Validation goes through the typed
   [Par.jobs_of_string], so `-j 0` or `-j x` fail fast with the same
   wording everywhere; outputs are byte-identical for any accepted
   value. *)
let jobs_arg =
  let jobs_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error (fun m -> `Msg m) (Mm_par.Par.jobs_of_string s)),
        Format.pp_print_int )
  in
  Arg.(
    value & opt jobs_conv 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains to shard independent simulation worlds across \
           (default 1). Results are byte-identical for any value; only \
           wall-clock time changes.")

let with_obs ~trace ~report f =
  if trace <> None || report then Mm_obs.Trace.start ();
  f ();
  (match trace with
  | Some path ->
    let events = Mm_obs.Trace.events () in
    Mm_obs.Chrome.write ~path events;
    Printf.printf "wrote %d trace events to %s (%d dropped)\n%!"
      (List.length events) path
      (Mm_obs.Trace.dropped ())
  | None -> ());
  if report then begin
    print_string (Mm_obs.Contention.report ());
    print_newline ();
    print_string (Mm_obs.Metrics.dump ())
  end;
  if trace <> None || report then ignore (Mm_obs.Trace.stop ())

let list_cmd =
  let doc = "List the reproducible tables and figures." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Mm_experiments.Registry.id
          e.Mm_experiments.Registry.title)
      Mm_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments by id (all when none given)." in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run ids trace report =
    with_obs ~trace ~report (fun () ->
        match ids with
        | [] -> Mm_experiments.Driver.run_all ()
        | ids ->
          (* Resolve every id before running anything, then reuse the
             driver's header/capture path (one owner of the
             `=== id: title ===` format). *)
          let entries =
            List.map
              (fun id ->
                match Mm_experiments.Registry.find id with
                | Ok e -> e
                | Error msg ->
                  Printf.eprintf "mmrepro: %s\n" msg;
                  exit 1)
              ids
          in
          ignore
            (Mm_experiments.Driver.run_entries
               ~emit:Mm_experiments.Driver.emit_stdout ~jobs:1 entries))
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids $ obs_trace $ obs_report)

let verify_cmd =
  let doc =
    "Run the verification suite: exhaustive model checking of both locking \
     protocols (P1), refinement to the Atomic Spec, exhaustive functional \
     correctness of the cursor operations (P2), and linearizability of \
     concurrent histories."
  in
  let run () =
    let tree = Mm_verif.Tree.create ~arity:2 ~depth:3 in
    let ok = ref true in
    let report name r =
      Printf.printf "  %-42s %s\n%!" name (Mm_verif.Checker.describe r);
      if not (Mm_verif.Checker.is_verified r) then ok := false
    in
    Printf.printf "P1: CortenMM_rw locking protocol\n";
    List.iter
      (fun (name, targets) ->
        report name (Mm_verif.Rw_model.check ~tree ~targets ()))
      [
        ("overlapping targets (1,3)", [| 1; 3 |]);
        ("same target (4,4)", [| 4; 4 |]);
        ("disjoint subtrees (1,2)", [| 1; 2 |]);
        ("root vs leaf (0,6)", [| 0; 6 |]);
        ("three cores (1,4,2)", [| 1; 4; 2 |]);
      ];
    Printf.printf "P1: CortenMM_rw, faithful Fig 5 variant (trade window)\n";
    List.iter
      (fun (name, targets) ->
        report name
          (Mm_verif.Rw_model.check ~trade_window:true ~stepwise_unlock:true
             ~tree ~targets ()))
      [
        ("overlapping targets (1,3)", [| 1; 3 |]);
        ("same target (4,4)", [| 4; 4 |]);
        ("three cores (1,4,2)", [| 1; 4; 2 |]);
      ];
    Printf.printf "P1: refinement Atomic Tree Spec -> Atomic Spec\n";
    List.iter
      (fun targets ->
        let r, errs = Mm_verif.Rw_model.check_refinement ~tree ~targets () in
        Printf.printf "  targets %s: %s, %d refinement errors\n%!"
          (String.concat ","
             (Array.to_list (Array.map string_of_int targets)))
          (Mm_verif.Checker.describe r) (List.length errs);
        if (not (Mm_verif.Checker.is_verified r)) || errs <> [] then ok := false)
      [ [| 1; 3 |]; [| 1; 2 |]; [| 0; 6 |] ];
    Printf.printf "P1: CortenMM_adv locking protocol (with RCU + stale)\n";
    List.iter
      (fun (name, targets, actions) ->
        report name (Mm_verif.Adv_model.check ~tree ~targets ~actions ()))
      [
        ("disjoint ops", [| 1; 2 |], [| Mm_verif.Adv_model.Op; Mm_verif.Adv_model.Op |]);
        ("overlapping ops", [| 1; 3 |], [| Mm_verif.Adv_model.Op; Mm_verif.Adv_model.Op |]);
        ( "Fig 7 unmap race",
          [| 1; 3 |],
          [| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Op |] );
        ( "double remove",
          [| 1; 2 |],
          [| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Remove 5 |] );
        ( "3 cores, remove + two lockers",
          [| 1; 3; 2 |],
          [| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Op;
             Mm_verif.Adv_model.Op |] );
      ];
    Printf.printf "Seeded bugs (the checker must catch these)\n";
    let expect_violation name r =
      match r.Mm_verif.Checker.outcome with
      | Mm_verif.Checker.Invariant_violation { message; _ } ->
        Printf.printf "  %-42s caught: %s\n%!" name message
      | _ ->
        Printf.printf "  %-42s NOT CAUGHT\n%!" name;
        ok := false
    in
    expect_violation "rw without path read locks"
      (Mm_verif.Rw_model.check ~skip_read_locks:true ~tree ~targets:[| 1; 3 |] ());
    expect_violation "adv without the stale check"
      (Mm_verif.Adv_model.check ~no_stale_check:true ~tree ~targets:[| 1; 3 |]
         ~actions:[| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Op |] ());
    expect_violation "adv without RCU grace periods"
      (Mm_verif.Adv_model.check ~no_rcu:true ~tree ~targets:[| 1; 3 |]
         ~actions:[| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Op |] ());
    Printf.printf "P2: functional correctness of the cursor operations\n";
    List.iter
      (fun (name, cfg) ->
        let r = Mm_verif.Funcheck.exhaustive ~cfg ~depth:2 () in
        Printf.printf
          "  %-42s %d sequences, %d checks, %d failures\n%!" name
          r.Mm_verif.Funcheck.sequences r.Mm_verif.Funcheck.checks
          (List.length r.Mm_verif.Funcheck.failures);
        if r.Mm_verif.Funcheck.failures <> [] then ok := false)
      [ ("adv, all depth-2 sequences", Cortenmm.Config.adv);
        ("rw, all depth-2 sequences", Cortenmm.Config.rw) ];
    Printf.printf "Atomicity: linearizability of concurrent histories\n";
    List.iter
      (fun seed ->
        let r =
          Mm_verif.Funcheck.lin_check ~cfg:Cortenmm.Config.adv ~ncpus:4
            ~ops_per_thread:15 ~seed
        in
        Printf.printf "  seed %-4d %d ops: %s\n%!" seed
          r.Mm_verif.Funcheck.total_ops
          (if r.Mm_verif.Funcheck.matched then "linearizes" else "MISMATCH");
        if not r.Mm_verif.Funcheck.matched then ok := false)
      [ 1; 42; 1234 ];
    if !ok then Printf.printf "\nAll verification checks passed.\n"
    else begin
      Printf.printf "\nVERIFICATION FAILURES PRESENT.\n";
      exit 1
    end
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ const ())

(* --systems NAME,NAME...: subset of the registered systems, resolved
   through the result-returning registry lookup so a typo prints the
   valid-name listing and exits. *)
let systems_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "systems" ] ~docv:"NAMES"
        ~doc:"Comma-separated subset of the registered systems to include \
              (default: all).")

let resolve_systems = function
  | None -> Mm_workloads.System.Registry.all
  | Some s ->
    List.map
      (fun name ->
        match Mm_workloads.System.Registry.find name with
        | Ok e -> e
        | Error msg ->
          Printf.eprintf "mmrepro: %s\n" msg;
          exit 1)
      (String.split_on_char ',' s)

let sweep_cmd =
  let doc = "Run one microbenchmark over a core sweep." in
  let bench =
    let bench_conv =
      Arg.enum
        (List.map
           (fun b -> (Mm_workloads.Micro.bench_name b, b))
           Mm_workloads.Micro.all_benches)
    in
    Arg.(
      value
      & opt bench_conv Mm_workloads.Micro.Pf
      & info [ "bench" ] ~doc:"Benchmark.")
  in
  let high =
    Arg.(value & flag & info [ "high" ] ~doc:"High-contention variant.")
  in
  let run bench high systems trace report =
    with_obs ~trace ~report @@ fun () ->
    let contention =
      if high then Mm_workloads.Micro.High else Mm_workloads.Micro.Low
    in
    let systems =
      List.map
        (fun e -> e.Mm_workloads.System.Registry.r_kind)
        (resolve_systems systems)
    in
    let header =
      "cores" :: List.map Mm_workloads.System.kind_name systems
    in
    let rows =
      List.map
        (fun ncpus ->
          string_of_int ncpus
          :: List.map
               (fun kind ->
                 match
                   Mm_workloads.Micro.run ~kind ~ncpus ~bench ~contention
                     ~iters:50 ()
                 with
                 | Some r ->
                   Mm_util.Tablefmt.fmt_si r.Mm_workloads.Runner.ops_per_sec
                 | None -> "n/a")
               systems)
        [ 1; 2; 4; 8; 16; 32; 64 ]
    in
    Mm_util.Tablefmt.print ~header rows
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ bench $ high $ systems_arg $ obs_trace $ obs_report)

let trace_cmd =
  let doc =
    "Generate a synthetic MM operation trace, or replay one on any of the \
     evaluated systems."
  in
  let mode =
    Arg.(
      required
      & pos 0 (some (enum [ ("gen", `Gen); ("replay", `Replay) ])) None
      & info [] ~docv:"gen|replay")
  in
  let path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  let profile =
    Arg.(
      value
      & opt
          (enum
             [
               ("churn", Mm_workloads.Trace.Churn);
               ("faults", Mm_workloads.Trace.Faults);
               ("mixed", Mm_workloads.Trace.Mixed);
               ("forks", Mm_workloads.Trace.Forks);
               ("reclaim", Mm_workloads.Trace.Reclaim);
             ])
          Mm_workloads.Trace.Mixed
      & info [ "profile" ] ~doc:"Workload profile for gen.")
  in
  let ncpus =
    Arg.(value & opt int 4 & info [ "cpus" ] ~doc:"Virtual CPUs.")
  in
  let ops = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Ops per CPU.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let system =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun e ->
                  ( e.Mm_workloads.System.Registry.r_name,
                    e.Mm_workloads.System.Registry.r_kind ))
                Mm_workloads.System.Registry.all))
          (Mm_workloads.System.Corten Cortenmm.Config.adv)
      & info [ "system" ] ~doc:"System to replay on.")
  in
  let run mode path profile ncpus ops seed system =
    match mode with
    | `Gen ->
      let t = Mm_workloads.Trace.generate ~profile ~ncpus ~ops_per_cpu:ops ~seed in
      Mm_workloads.Trace.save t path;
      Printf.printf "wrote %d operations (%d cpus, profile %s) to %s\n"
        (Array.length t.Mm_workloads.Trace.entries)
        t.Mm_workloads.Trace.ncpus
        (Mm_workloads.Trace.profile_name profile)
        path
    | `Replay ->
      let t = Mm_workloads.Trace.load path in
      let s = Mm_workloads.Trace.replay ~kind:system t in
      Printf.printf
        "replayed %d ops on %s (%d cpus): %s ops/s\n\
         mmaps %d, munmaps %d, touches %d, forks %d, denied %d\n"
        s.Mm_workloads.Trace.result.Mm_workloads.Runner.ops
        (Mm_workloads.System.kind_name system)
        t.Mm_workloads.Trace.ncpus
        (Mm_util.Tablefmt.fmt_si
           s.Mm_workloads.Trace.result.Mm_workloads.Runner.ops_per_sec)
        s.Mm_workloads.Trace.mmaps s.Mm_workloads.Trace.munmaps
        s.Mm_workloads.Trace.touches s.Mm_workloads.Trace.forks
        s.Mm_workloads.Trace.faults_denied
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ mode $ path $ profile $ ncpus $ ops $ seed $ system)

let oracle_cmd =
  let doc =
    "Replay one trace on every registered backend and compare the observable \
     state (per-page mappings, error outcomes, memory statistics). Exits \
     non-zero on the first divergence, with the offending operation index."
  in
  let path =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Saved trace to check; generated from the profile flags when \
                omitted.")
  in
  let profile =
    Arg.(
      value
      & opt
          (enum
             [
               ("churn", Mm_workloads.Trace.Churn);
               ("faults", Mm_workloads.Trace.Faults);
               ("mixed", Mm_workloads.Trace.Mixed);
               ("forks", Mm_workloads.Trace.Forks);
               ("reclaim", Mm_workloads.Trace.Reclaim);
             ])
          Mm_workloads.Trace.Mixed
      & info [ "profile" ] ~doc:"Workload profile when generating.")
  in
  let ncpus =
    Arg.(value & opt int 4 & info [ "cpus" ] ~doc:"Virtual CPUs.")
  in
  let ops = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Ops per CPU.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let every =
    Arg.(
      value & opt int 16
      & info [ "every" ] ~doc:"Snapshot-compare cadence in operations.")
  in
  let cow_mutant =
    Arg.(
      value & flag
      & info [ "cow-mutant" ]
          ~doc:
            "Arm the injected CortenMM fork bug (clone_for_fork skips the \
             parent-side write-protect); the oracle must then report a \
             divergence at the first child read observing a leaked parent \
             store.")
  in
  let reclaim_mutant =
    Arg.(
      value & flag
      & info [ "reclaim-mutant" ]
          ~doc:
            "Arm the injected pager bug (put_pages skips the dirty \
             writeback, losing the page's data token at page-out); the \
             oracle must then report a divergence at the first read \
             observing the lost token.")
  in
  let run path profile ncpus ops seed every cow_mutant reclaim_mutant jobs
      systems =
    let trace =
      match path with
      | Some p -> Mm_workloads.Trace.load p
      | None ->
        Mm_workloads.Trace.generate ~profile ~ncpus ~ops_per_cpu:ops ~seed
    in
    let entries = resolve_systems systems in
    let backends =
      List.map (fun e -> e.Mm_workloads.System.Registry.r_backend) entries
    in
    match
      Mm_workloads.Diff.run ~check_every:every ~jobs ~cow_mutant
        ~reclaim_mutant ~backends trace
    with
    | Ok n ->
      Printf.printf "oracle: %d ops, %d backends, no divergence\n" n
        (List.length entries)
    | Error d ->
      Printf.printf "oracle: DIVERGENCE\n%s\n" (Mm_workloads.Diff.describe d);
      exit 1
  in
  Cmd.v (Cmd.info "oracle" ~doc)
    Term.(
      const run $ path $ profile $ ncpus $ ops $ seed $ every $ cow_mutant
      $ reclaim_mutant $ jobs_arg $ systems_arg)

let serve_cmd =
  let doc =
    "Open-loop serving mode: drive a fleet of short sessions \
     (mmap/fault/mprotect/munmap bursts on a seeded Poisson-style arrival \
     schedule) against the registered systems and report SLO-style \
     latency percentiles (p50/p99/p999) per system and TLB-shootdown \
     policy, plus the shootdown accounting (IPIs, batch flushes, worst \
     deferral stall). Deterministic: equal seeds give byte-identical \
     reports."
  in
  let sessions =
    Arg.(
      value & opt int 100_000
      & info [ "sessions" ] ~doc:"Total sessions across all CPUs.")
  in
  let ncpus =
    Arg.(value & opt int 8 & info [ "cpus" ] ~doc:"Virtual CPUs.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let mix =
    Arg.(
      value & opt string "mixed"
      & info [ "mix" ]
          ~doc:
            (Printf.sprintf "Session mix: %s."
               (String.concat ", " Mm_serve.Mix.names)))
  in
  let policies_flag =
    Arg.(
      value & opt string "immediate,batched"
      & info [ "policies" ]
          ~doc:
            (Printf.sprintf
               "Comma-separated TLB shootdown policies to compare: %s."
               (String.concat ", " Mm_serve.Serve.policy_names)))
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable report here (BENCH_serve.json).")
  in
  let run sessions ncpus seed mix policies json jobs systems =
    let die msg =
      Printf.eprintf "mmrepro: %s\n" msg;
      exit 1
    in
    let mix =
      match Mm_serve.Mix.find mix with Ok m -> m | Error msg -> die msg
    in
    let policies =
      List.map
        (fun name ->
          match Mm_serve.Serve.find_policy name with
          | Ok p -> (name, p)
          | Error msg -> die msg)
        (String.split_on_char ',' policies)
    in
    let systems = resolve_systems systems in
    let reports =
      Mm_serve.Serve.run_matrix ~jobs ~systems ~mix ~policies ~ncpus
        ~sessions ~seed ()
    in
    Printf.printf
      "serve: %d sessions, %d cpus, mix %s, seed %d (latencies in cycles)\n\n"
      sessions ncpus mix.Mm_serve.Mix.name seed;
    print_string (Mm_serve.Serve.table reports);
    match json with
    | None -> ()
    | Some path ->
      Mm_serve.Serve.write_json ~path ~mix ~ncpus ~sessions ~seed reports;
      Printf.printf "\nwrote serve report to %s\n" path
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ sessions $ ncpus $ seed $ mix $ policies_flag $ json
      $ jobs_arg $ systems_arg)

let schedcheck_cmd =
  let doc =
    "Explore schedules of the concurrent core: run small concurrent cursor \
     workloads under seeded-random tie-break policies, checking protocol \
     invariants live (mutual exclusion, transaction exclusivity, RCU grace \
     periods, deadlock-freedom) and the final address-space state against a \
     sequential reference replay. On violation, shrinks the schedule and \
     writes a minimal deterministic replay file. Exits non-zero on \
     violation."
  in
  let protocol =
    Arg.(
      value
      & opt (enum [ ("adv", `Adv); ("rw", `Rw); ("both", `Both) ]) `Both
      & info [ "protocol" ] ~doc:"Locking protocol to check: adv, rw, both.")
  in
  let cpus =
    Arg.(value & opt int 4 & info [ "cpus" ] ~doc:"Virtual CPUs.")
  in
  let ops = Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Ops per CPU.") in
  let seeds =
    Arg.(
      value & opt int 25
      & info [ "seeds" ] ~doc:"Schedule seeds to try per protocol.")
  in
  let seed0 =
    Arg.(value & opt int 1 & info [ "seed0" ] ~doc:"First schedule seed.")
  in
  let wseed =
    Arg.(value & opt int 42 & info [ "workload-seed" ] ~doc:"Workload seed.")
  in
  let amplitude =
    Arg.(
      value & opt int 8
      & info [ "amplitude" ] ~doc:"Tie-break key range (permutation width).")
  in
  let mutant =
    Arg.(
      value & opt string "none"
      & info [ "mutant" ]
          ~doc:
            "Inject a synchronization bug the harness must catch: none, \
             rw-skip-handoff, rcu-no-gp.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the minimized schedule of a violation here.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a saved schedule file instead of exploring (all other \
             workload flags are taken from the file).")
  in
  let run protocol cpus ops seeds seed0 wseed amplitude mutant out replay jobs
      =
    let module S = Mm_schedcheck.Schedcheck in
    let module Sched_file = Mm_schedcheck.Schedule in
    let die msg =
      Printf.eprintf "mmrepro: %s\n" msg;
      exit 2
    in
    match replay with
    | Some path -> (
      let s =
        match Sched_file.load path with Ok s -> s | Error msg -> die msg
      in
      match S.replay_schedule s with
      | Error msg -> die msg
      | Ok [] ->
        Printf.printf
          "schedcheck: replay %s (%s, %d cpus, %d ops/cpu, mutant %s): clean\n"
          path s.Sched_file.protocol s.Sched_file.cpus s.Sched_file.ops
          s.Sched_file.mutant
      | Ok violations ->
        Printf.printf
          "schedcheck: replay %s (%s, %d cpus, %d ops/cpu, mutant %s): %d \
           violation(s)\n"
          path s.Sched_file.protocol s.Sched_file.cpus s.Sched_file.ops
          s.Sched_file.mutant (List.length violations);
        List.iter (fun v -> Printf.printf "  %s\n" v) violations;
        exit 1)
    | None ->
      let mutant =
        match S.mutant_of_string mutant with
        | Ok m -> m
        | Error msg -> die msg
      in
      let protocols =
        match protocol with
        | `Adv -> [ Cortenmm.Config.adv ]
        | `Rw -> [ Cortenmm.Config.rw ]
        | `Both -> [ Cortenmm.Config.rw; Cortenmm.Config.adv ]
      in
      let violated = ref false in
      List.iter
        (fun protocol ->
          let cfg =
            {
              S.protocol;
              cpus;
              ops_per_cpu = ops;
              workload_seed = wseed;
              mutant;
            }
          in
          match S.explore ~amplitude ~seed0 ~jobs ~seeds cfg with
          | S.Clean { seeds } ->
            Printf.printf
              "schedcheck: %s: %d seeds clean (%d cpus, %d ops/cpu, mutant \
               %s)\n"
              (Cortenmm.Config.name protocol)
              seeds cpus ops (S.mutant_name mutant)
          | S.Violation { sched_seed; keys; violations; shrink_runs } ->
            violated := true;
            Printf.printf
              "schedcheck: %s: VIOLATION at seed %d (shrunk to %d keys in \
               %d replays)\n"
              (Cortenmm.Config.name protocol)
              sched_seed (Array.length keys) shrink_runs;
            List.iter (fun v -> Printf.printf "  %s\n" v) violations;
            match out with
            | None -> ()
            | Some path ->
              Sched_file.save (S.schedule_of cfg keys) path;
              Printf.printf "  minimal schedule written to %s\n" path)
        protocols;
      if !violated then exit 1
  in
  Cmd.v (Cmd.info "schedcheck" ~doc)
    Term.(
      const run $ protocol $ cpus $ ops $ seeds $ seed0 $ wseed $ amplitude
      $ mutant $ out $ replay $ jobs_arg)

let () =
  let doc = "CortenMM reproduction driver" in
  let info = Cmd.info "mmrepro" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; verify_cmd; sweep_cmd; trace_cmd; oracle_cmd;
            serve_cmd; schedcheck_cmd;
          ]))
