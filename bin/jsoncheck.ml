(* jsoncheck — validate a JSON file (used by check.sh to smoke-test the
   bench --json and --trace outputs).

     jsoncheck FILE            parse FILE, exit 0 iff well-formed
     jsoncheck --chrome FILE   additionally require Chrome trace_event
                               shape: a top-level "traceEvents" array whose
                               entries carry name/ph/pid/tid *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check_chrome json =
  let open Mm_obs.Json in
  match member "traceEvents" json with
  | None -> fail "no traceEvents field"
  | Some evs -> (
    match to_list_opt evs with
    | None -> fail "traceEvents is not an array"
    | Some [] -> fail "traceEvents is empty"
    | Some items ->
      List.iteri
        (fun i item ->
          List.iter
            (fun field ->
              if member field item = None then
                fail "traceEvents[%d] missing %S" i field)
            [ "name"; "ph"; "pid"; "tid" ])
        items;
      Printf.printf "ok: %d trace events\n" (List.length items))

let () =
  let chrome, path =
    match Array.to_list Sys.argv with
    | [ _; "--chrome"; p ] -> (true, p)
    | [ _; p ] -> (false, p)
    | _ -> fail "usage: jsoncheck [--chrome] FILE"
  in
  match Mm_obs.Json.parse_file path with
  | Error msg -> fail "%s: invalid JSON: %s" path msg
  | Ok json ->
    if chrome then check_chrome json
    else Printf.printf "ok: %s parses\n" path
