(* jsoncheck — validate a JSON file (used by check.sh to smoke-test the
   bench --json and --trace outputs).

     jsoncheck FILE              parse FILE, exit 0 iff well-formed
     jsoncheck --chrome FILE     additionally require Chrome trace_event
                                 shape: a top-level "traceEvents" array
                                 whose entries carry name/ph/pid/tid
     jsoncheck --wallclock FILE  additionally require the bench
                                 --wallclock shape: "jobs", a "wallclock"
                                 array of {id, seconds_seq, seconds_par,
                                 speedup, cells}, per-cell seconds that
                                 sum to the entry seconds, the seq/par
                                 totals and the critical-path summary
                                 (max_cell_seconds_seq/_par) *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check_chrome json =
  let open Mm_obs.Json in
  match member "traceEvents" json with
  | None -> fail "no traceEvents field"
  | Some evs -> (
    match to_list_opt evs with
    | None -> fail "traceEvents is not an array"
    | Some [] -> fail "traceEvents is empty"
    | Some items ->
      List.iteri
        (fun i item ->
          List.iter
            (fun field ->
              if member field item = None then
                fail "traceEvents[%d] missing %S" i field)
            [ "name"; "ph"; "pid"; "tid" ])
        items;
      Printf.printf "ok: %d trace events\n" (List.length items))

let check_wallclock json =
  let open Mm_obs.Json in
  let number = function Some (Int _ | Float _) -> true | _ -> false in
  let as_float = function
    | Some (Int i) -> float_of_int i
    | Some (Float f) -> f
    | _ -> nan
  in
  (match member "jobs" json with
  | Some (Int j) when j >= 1 -> ()
  | Some _ -> fail "jobs is not a positive integer"
  | None -> fail "no jobs field");
  List.iter
    (fun field ->
      if not (number (member field json)) then
        fail "missing or non-numeric %S" field)
    [
      "total_seconds_seq"; "total_seconds_par"; "speedup";
      "max_cell_seconds_seq"; "max_cell_seconds_par";
    ];
  (match member "max_cell_label" json with
  | Some (String _) -> ()
  | _ -> fail "missing string \"max_cell_label\"");
  match member "wallclock" json with
  | None -> fail "no wallclock field"
  | Some entries -> (
    match to_list_opt entries with
    | None -> fail "wallclock is not an array"
    | Some [] -> fail "wallclock is empty"
    | Some items ->
      let ncells = ref 0 in
      List.iteri
        (fun i item ->
          (match member "id" item with
          | Some (String _) -> ()
          | _ -> fail "wallclock[%d] missing string \"id\"" i);
          List.iter
            (fun field ->
              if not (number (member field item)) then
                fail "wallclock[%d] missing or non-numeric %S" i field)
            [ "seconds_seq"; "seconds_par"; "speedup" ];
          match Option.bind (member "cells" item) to_list_opt with
          | None -> fail "wallclock[%d] missing \"cells\" array" i
          | Some [] -> fail "wallclock[%d] has an empty \"cells\" array" i
          | Some cells ->
            ncells := !ncells + List.length cells;
            let sum = ref 0.0 in
            List.iteri
              (fun j cell ->
                (match member "label" cell with
                | Some (String _) -> ()
                | _ ->
                  fail "wallclock[%d].cells[%d] missing string \"label\"" i j);
                List.iter
                  (fun field ->
                    if not (number (member field cell)) then
                      fail "wallclock[%d].cells[%d] missing or non-numeric %S"
                        i j field)
                  [ "seconds_seq"; "seconds_par" ];
                sum := !sum +. as_float (member "seconds_seq" cell))
              cells;
            (* Entry seconds are defined as the sum of its cell seconds
               (rendering is not timed); allow float-printing slack. *)
            let entry = as_float (member "seconds_seq" item) in
            let tol = Float.max 1e-6 (0.001 *. Float.abs entry) in
            if Float.abs (!sum -. entry) > tol then
              fail
                "wallclock[%d]: cells sum to %.9fs but the entry reports %.9fs"
                i !sum entry)
        items;
      Printf.printf "ok: %d wallclock entries (%d cells)\n"
        (List.length items) !ncells)

let () =
  let mode, path =
    match Array.to_list Sys.argv with
    | [ _; "--chrome"; p ] -> (`Chrome, p)
    | [ _; "--wallclock"; p ] -> (`Wallclock, p)
    | [ _; p ] -> (`Plain, p)
    | _ -> fail "usage: jsoncheck [--chrome|--wallclock] FILE"
  in
  match Mm_obs.Json.parse_file path with
  | Error msg -> fail "%s: invalid JSON: %s" path msg
  | Ok json -> (
    match mode with
    | `Chrome -> check_chrome json
    | `Wallclock -> check_wallclock json
    | `Plain -> Printf.printf "ok: %s parses\n" path)
