(* Tests for the physical memory substrate: the buddy allocator (splits,
   merges, alignment, double-free detection, invariant preservation under
   random workloads), frame descriptors, NUMA striping and accounting. *)

module Buddy = Mm_phys.Buddy
module Phys = Mm_phys.Phys
module Frame = Mm_phys.Frame

let check = Alcotest.check

(* -- Buddy basics -- *)

let test_alloc_distinct () =
  let b = Buddy.create ~nframes:1024 in
  let a = Buddy.alloc b ~order:0 in
  let c = Buddy.alloc b ~order:0 in
  check Alcotest.bool "distinct" true (a <> c);
  check Alcotest.int "two allocated" 2 (Buddy.allocated_frames b);
  Buddy.check_invariants b

let test_alignment () =
  let b = Buddy.create ~nframes:(1 lsl 16) in
  let _ = Buddy.alloc b ~order:0 in
  let big = Buddy.alloc b ~order:6 in
  check Alcotest.bool "order-6 block aligned" true
    (Mm_util.Align.is_aligned big 64);
  let huge = Buddy.alloc b ~order:9 in
  check Alcotest.bool "order-9 block aligned" true
    (Mm_util.Align.is_aligned huge 512);
  Buddy.check_invariants b

let test_split_and_merge () =
  let b = Buddy.create ~nframes:1024 in
  (* Allocate an order-3 block, free it as... no: allocate two order-0
     from a split, free both, the buddies must merge back. *)
  let a = Buddy.alloc b ~order:3 in
  Buddy.free b ~pfn:a ~order:3;
  Buddy.check_invariants b;
  let x = Buddy.alloc b ~order:0 in
  let y = Buddy.alloc b ~order:0 in
  check Alcotest.bool "buddies from one split" true (x lxor y = 1 || x <> y);
  Buddy.free b ~pfn:x ~order:0;
  Buddy.free b ~pfn:y ~order:0;
  Buddy.check_invariants b;
  check Alcotest.bool "merges recorded" true (Buddy.merges b > 0);
  check Alcotest.int "nothing allocated" 0 (Buddy.allocated_frames b)

let test_double_free_detected () =
  let b = Buddy.create ~nframes:1024 in
  let a = Buddy.alloc b ~order:0 in
  Buddy.free b ~pfn:a ~order:0;
  Alcotest.(check bool)
    "double free raises" true
    (try
       Buddy.free b ~pfn:a ~order:0;
       false
     with Invalid_argument _ -> true)

let test_misaligned_free_detected () =
  let b = Buddy.create ~nframes:1024 in
  let _ = Buddy.alloc b ~order:2 in
  Alcotest.(check bool)
    "misaligned free raises" true
    (try
       Buddy.free b ~pfn:1 ~order:2;
       false
     with Invalid_argument _ -> true)

let test_out_of_memory () =
  let b = Buddy.create ~nframes:16 in
  let _ = Buddy.alloc b ~order:4 in
  Alcotest.(check bool)
    "exhaustion raises" true
    (try
       ignore (Buddy.alloc b ~order:0);
       false
     with Buddy.Out_of_memory -> true)

let buddy_stress_prop =
  QCheck.Test.make ~name:"buddy invariants under random alloc/free" ~count:60
    QCheck.(
      pair small_int
        (list_of_size (QCheck.Gen.return 200) (int_bound 3)))
    (fun (seed, orders) ->
      let rng = Mm_util.Rng.create ~seed in
      let b = Buddy.create ~nframes:(1 lsl 14) in
      let live = ref [] in
      List.iter
        (fun order ->
          if Mm_util.Rng.bool rng || !live = [] then begin
            let pfn = Buddy.alloc b ~order in
            live := (pfn, order) :: !live
          end
          else begin
            let i = Mm_util.Rng.int rng (List.length !live) in
            let pfn, order = List.nth !live i in
            live := List.filteri (fun j _ -> j <> i) !live;
            Buddy.free b ~pfn ~order
          end;
          Buddy.check_invariants b)
        orders;
      (* Allocated count equals the live set's frame total. *)
      Buddy.allocated_frames b
      = List.fold_left (fun a (_, o) -> a + (1 lsl o)) 0 !live)

let buddy_no_overlap_prop =
  QCheck.Test.make ~name:"buddy never hands out overlapping blocks" ~count:40
    QCheck.(list_of_size (QCheck.Gen.return 100) (int_bound 4))
    (fun orders ->
      let b = Buddy.create ~nframes:(1 lsl 14) in
      let claimed = Hashtbl.create 256 in
      List.for_all
        (fun order ->
          let pfn = Buddy.alloc b ~order in
          let ok = ref true in
          for i = pfn to pfn + (1 lsl order) - 1 do
            if Hashtbl.mem claimed i then ok := false;
            Hashtbl.replace claimed i ()
          done;
          !ok)
        orders)

(* -- Phys / frames / NUMA -- *)

let test_frame_descriptors () =
  let phys = Phys.create () in
  let f = Phys.alloc phys ~kind:Frame.Anon () in
  check Alcotest.bool "kind set" true (f.Frame.kind = Frame.Anon);
  let same = Phys.frame phys f.Frame.pfn in
  check Alcotest.bool "descriptor identity" true (f == same);
  Phys.free phys f;
  check Alcotest.bool "freed" true (f.Frame.kind = Frame.Free);
  Alcotest.(check bool)
    "free of free raises" true
    (try
       Phys.free phys f;
       false
     with Invalid_argument _ -> true)

let test_usage_accounting () =
  let phys = Phys.create () in
  let f1 = Phys.alloc phys ~kind:Frame.Anon () in
  let _ = Phys.alloc phys ~kind:Frame.Pt_page () in
  let u = Phys.usage phys in
  check Alcotest.int "anon bytes" 4096 u.Phys.anon_bytes;
  check Alcotest.int "pt bytes" 4096 u.Phys.pt_bytes;
  Phys.free phys f1;
  check Alcotest.int "anon released" 0 (Phys.usage phys).Phys.anon_bytes;
  check Alcotest.int "peak remembered" 4096 (Phys.peak_data_bytes phys)

let test_numa_striping () =
  let phys = Phys.create ~numa_nodes:4 () in
  check Alcotest.int "4 nodes" 4 (Phys.numa_nodes phys);
  let frames =
    List.init 4 (fun node -> Phys.alloc phys ~kind:Frame.Anon ~node ())
  in
  List.iteri
    (fun node f ->
      check Alcotest.int
        (Printf.sprintf "frame %d on its node" node)
        node
        (Phys.node_of_pfn phys f.Frame.pfn))
    frames;
  (* Freeing works across nodes. *)
  List.iter (Phys.free phys) frames;
  check Alcotest.int "all released" 0 (Phys.allocated_frames phys)

let test_numa_bad_node_rejected () =
  let phys = Phys.create ~numa_nodes:2 () in
  Alcotest.(check bool)
    "bad node raises" true
    (try
       ignore (Phys.alloc phys ~kind:Frame.Anon ~node:5 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "mm_phys"
    [
      ( "buddy",
        [
          Alcotest.test_case "alloc distinct" `Quick test_alloc_distinct;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "split and merge" `Quick test_split_and_merge;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "misaligned free" `Quick
            test_misaligned_free_detected;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          QCheck_alcotest.to_alcotest buddy_stress_prop;
          QCheck_alcotest.to_alcotest buddy_no_overlap_prop;
        ] );
      ( "phys",
        [
          Alcotest.test_case "frame descriptors" `Quick test_frame_descriptors;
          Alcotest.test_case "usage accounting" `Quick test_usage_accounting;
          Alcotest.test_case "numa striping" `Quick test_numa_striping;
          Alcotest.test_case "numa bad node" `Quick test_numa_bad_node_rejected;
        ] );
    ]
