(* Tests for the slab allocator: carving, free-list reuse, slab recycling
   back to the buddy, error detection, and a random stress property. *)

module Slab = Mm_phys.Slab
module Phys = Mm_phys.Phys

let check = Alcotest.check

let test_alloc_free_roundtrip () =
  let phys = Phys.create () in
  let c = Slab.create phys ~name:"obj64" ~obj_size:64 in
  let a = Slab.alloc c in
  let b = Slab.alloc c in
  check Alcotest.bool "distinct handles" true (a <> b);
  check Alcotest.int "two allocated" 2 (Slab.allocated c);
  Slab.free c a;
  Slab.free c b;
  check Alcotest.int "none allocated" 0 (Slab.allocated c)

let test_handle_reuse () =
  let phys = Phys.create () in
  let c = Slab.create phys ~name:"obj128" ~obj_size:128 in
  let a = Slab.alloc c in
  Slab.free c a;
  let b = Slab.alloc c in
  (* LIFO free list: the hot object comes back first. *)
  check Alcotest.int "handle reused" a b

let test_many_slabs () =
  let phys = Phys.create () in
  let c = Slab.create phys ~name:"obj512" ~obj_size:512 in
  let per = Slab.objs_per_slab c in
  let handles = Array.init (3 * per) (fun _ -> Slab.alloc c) in
  check Alcotest.int "three slabs" 3 (Slab.slab_count c);
  (* All handles distinct. *)
  let sorted = Array.copy handles in
  Array.sort compare sorted;
  let dup = ref false in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then dup := true
  done;
  check Alcotest.bool "no duplicate handles" false !dup;
  (* Freeing everything recycles all but one reserve slab. *)
  Array.iter (Slab.free c) handles;
  check Alcotest.bool "slabs recycled to the buddy" true (Slab.slab_count c <= 1)

let test_frames_accounted_as_kernel () =
  let phys = Phys.create () in
  let before = (Phys.usage phys).Phys.kernel_bytes in
  let c = Slab.create phys ~name:"obj256" ~obj_size:256 in
  let _ = Slab.alloc c in
  check Alcotest.bool "kernel frames grew" true
    ((Phys.usage phys).Phys.kernel_bytes > before)

let test_double_free_detected () =
  let phys = Phys.create () in
  let c = Slab.create phys ~name:"obj64" ~obj_size:64 in
  let a = Slab.alloc c in
  Slab.free c a;
  Alcotest.(check bool)
    "double free raises" true
    (try
       Slab.free c a;
       false
     with Invalid_argument _ -> true)

let test_foreign_free_detected () =
  let phys = Phys.create () in
  let c = Slab.create phys ~name:"obj64" ~obj_size:64 in
  let _ = Slab.alloc c in
  Alcotest.(check bool)
    "foreign handle raises" true
    (try
       Slab.free c 0x1234_5678_0000;
       false
     with Invalid_argument _ -> true)

let test_misaligned_free_detected () =
  let phys = Phys.create () in
  let c = Slab.create phys ~name:"obj64" ~obj_size:64 in
  let a = Slab.alloc c in
  Alcotest.(check bool)
    "misaligned handle raises" true
    (try
       Slab.free c (a + 8);
       false
     with Invalid_argument _ -> true)

(* Random alloc/free stress: the live-handle set tracked externally must
   always match the cache's accounting, and handles never collide. *)
let slab_stress_prop =
  QCheck.Test.make ~name:"slab stress: accounting and uniqueness" ~count:50
    QCheck.(pair small_int (list_of_size (QCheck.Gen.return 300) bool))
    (fun (seed, plan) ->
      let rng = Mm_util.Rng.create ~seed in
      let phys = Phys.create () in
      let c = Slab.create phys ~name:"stress" ~obj_size:96 in
      let live = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun do_alloc ->
          if do_alloc || Hashtbl.length live = 0 then begin
            let h = Slab.alloc c in
            if Hashtbl.mem live h then ok := false;
            Hashtbl.replace live h ()
          end
          else begin
            (* Free a pseudo-random live handle. *)
            let handles =
              Hashtbl.fold (fun h () acc -> h :: acc) live []
              |> List.sort compare |> Array.of_list
            in
            let h = handles.(Mm_util.Rng.int rng (Array.length handles)) in
            Hashtbl.remove live h;
            Slab.free c h
          end;
          if Slab.allocated c <> Hashtbl.length live then ok := false)
        plan;
      !ok)

let () =
  Alcotest.run "slab"
    [
      ( "basics",
        [
          Alcotest.test_case "alloc/free" `Quick test_alloc_free_roundtrip;
          Alcotest.test_case "handle reuse" `Quick test_handle_reuse;
          Alcotest.test_case "many slabs" `Quick test_many_slabs;
          Alcotest.test_case "kernel accounting" `Quick
            test_frames_accounted_as_kernel;
        ] );
      ( "errors",
        [
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "foreign free" `Quick test_foreign_free_detected;
          Alcotest.test_case "misaligned free" `Quick
            test_misaligned_free_detected;
        ] );
      ("stress", [ QCheck_alcotest.to_alcotest slab_stress_prop ]);
    ]
