(* Tests for the verification library: both locking-protocol models must
   verify exhaustively (P1), the seeded-buggy variants must be caught
   (evidence the properties are not vacuous), refinement to the Atomic
   Spec must hold, and the functional-correctness (P2) and linearizability
   checks must pass. *)

open Mm_verif

let check = Alcotest.check

let tree = Tree.create ~arity:2 ~depth:3 (* 7 nodes: 0; 1,2; 3,4,5,6 *)

(* -- Tree helpers -- *)

let test_tree_structure () =
  check Alcotest.int "7 nodes" 7 (Tree.node_count tree);
  Alcotest.(check (list int)) "children of root" [ 1; 2 ] (Tree.children tree 0);
  Alcotest.(check (list int)) "children of 1" [ 3; 4 ] (Tree.children tree 1);
  check Alcotest.bool "3 is leaf" true (Tree.is_leaf tree 3);
  check Alcotest.bool "0 anc of 6" true (Tree.is_ancestor tree ~anc:0 ~desc:6);
  check Alcotest.bool "1 not anc of 5" false
    (Tree.is_ancestor tree ~anc:1 ~desc:5);
  check Alcotest.bool "related equal" true (Tree.related tree 4 4);
  check Alcotest.bool "unrelated siblings" false (Tree.related tree 3 4);
  Alcotest.(check (list int)) "path to 4" [ 0; 1; 4 ] (Tree.path tree 4);
  Alcotest.(check (list int)) "preorder of 1" [ 1; 3; 4 ]
    (Tree.subtree_preorder tree 1);
  check Alcotest.int "child toward" 1 (Tree.child_toward tree ~from:0 ~target:3)

(* -- CortenMM_rw model -- *)

let rw_scenarios =
  [
    ("overlapping (ancestor/descendant)", [| 1; 3 |]);
    ("same target", [| 4; 4 |]);
    ("disjoint subtrees", [| 1; 2 |]);
    ("root vs leaf", [| 0; 6 |]);
    ("three cores mixed", [| 1; 4; 2 |]);
    ("three cores all root", [| 0; 0; 0 |]);
  ]

let test_rw_verifies () =
  List.iter
    (fun (name, targets) ->
      let r = Rw_model.check ~tree ~targets () in
      check Alcotest.bool
        (Printf.sprintf "%s: %s" name (Checker.describe r))
        true (Checker.is_verified r);
      check Alcotest.bool (name ^ " explored >10 states") true (r.Checker.states > 10))
    rw_scenarios

let test_rw_trade_window_verifies () =
  (* Fig 5's faithful L4/L7-8 sequence: the covering page's reader lock is
     released before the writer lock is taken. The window admits more
     interleavings; the ancestors' reader locks must keep it safe. *)
  List.iter
    (fun (name, targets) ->
      let r = Rw_model.check ~trade_window:true ~tree ~targets () in
      check Alcotest.bool
        (Printf.sprintf "trade %s: %s" name (Checker.describe r))
        true (Checker.is_verified r))
    rw_scenarios

let test_rw_stepwise_unlock_verifies () =
  List.iter
    (fun (name, targets) ->
      let r =
        Rw_model.check ~trade_window:true ~stepwise_unlock:true ~tree ~targets
          ()
      in
      check Alcotest.bool
        (Printf.sprintf "stepwise %s: %s" name (Checker.describe r))
        true (Checker.is_verified r))
    rw_scenarios

let test_rw_bigger_tree () =
  (* A ternary depth-3 tree (13 nodes), three cores, full trade+stepwise
     interleavings. *)
  let tree3 = Tree.create ~arity:3 ~depth:3 in
  let r =
    Rw_model.check ~trade_window:true ~stepwise_unlock:true ~tree:tree3
      ~targets:[| 4; 5; 1 |] ()
  in
  check Alcotest.bool (Checker.describe r) true (Checker.is_verified r);
  check Alcotest.bool "large state space" true (r.Checker.states > 1_000)

let test_rw_bug_caught () =
  (* Without read locks on the path, a descendant writer and an ancestor
     writer can coexist: the checker must find it. *)
  let r = Rw_model.check ~skip_read_locks:true ~tree ~targets:[| 1; 3 |] () in
  match r.Checker.outcome with
  | Checker.Invariant_violation { message; _ } ->
    check Alcotest.bool "mutual exclusion violation found" true
      (String.length message > 0)
  | _ -> Alcotest.fail ("bug not caught: " ^ Checker.describe r)

let test_rw_refinement () =
  List.iter
    (fun (name, targets) ->
      let r, errors = Rw_model.check_refinement ~tree ~targets () in
      check Alcotest.bool (name ^ " refinement explored") true
        (Checker.is_verified r);
      Alcotest.(check (list string)) (name ^ " no refinement errors") [] errors)
    rw_scenarios

(* -- CortenMM_adv model -- *)

let test_adv_verifies_disjoint () =
  let r =
    Adv_model.check ~tree ~targets:[| 1; 2 |]
      ~actions:[| Adv_model.Op; Adv_model.Op |] ()
  in
  check Alcotest.bool (Checker.describe r) true (Checker.is_verified r)

let test_adv_verifies_overlap () =
  let r =
    Adv_model.check ~tree ~targets:[| 1; 3 |]
      ~actions:[| Adv_model.Op; Adv_model.Op |] ()
  in
  check Alcotest.bool (Checker.describe r) true (Checker.is_verified r)

let test_adv_verifies_fig7_race () =
  (* The Fig 7 scenario: core 0 locks the subtree of node 1 and removes
     its child 3 while core 1 races to lock node 3. *)
  let r =
    Adv_model.check ~tree ~targets:[| 1; 3 |]
      ~actions:[| Adv_model.Remove 3; Adv_model.Op |] ()
  in
  check Alcotest.bool (Checker.describe r) true (Checker.is_verified r);
  check Alcotest.bool "nontrivial state space" true (r.Checker.states > 100)

let test_adv_three_cores () =
  (* Three cores, one removing the subtree another is racing to lock. *)
  List.iter
    (fun (targets, actions) ->
      let r = Adv_model.check ~tree ~targets ~actions () in
      check Alcotest.bool (Checker.describe r) true (Checker.is_verified r))
    [
      ( [| 1; 3; 2 |],
        [| Adv_model.Remove 3; Adv_model.Op; Adv_model.Op |] );
      ( [| 1; 3; 4 |],
        [| Adv_model.Remove 3; Adv_model.Op; Adv_model.Op |] );
      ( [| 0; 3; 5 |],
        [| Adv_model.Op; Adv_model.Op; Adv_model.Op |] );
    ]

let test_adv_ternary_tree () =
  let tree3 = Tree.create ~arity:3 ~depth:3 in
  let r =
    Adv_model.check ~tree:tree3 ~targets:[| 1; 4 |]
      ~actions:[| Adv_model.Remove 4; Adv_model.Op |] ()
  in
  check Alcotest.bool (Checker.describe r) true (Checker.is_verified r)

let test_adv_verifies_double_remove () =
  let r =
    Adv_model.check ~tree ~targets:[| 1; 2 |]
      ~actions:[| Adv_model.Remove 3; Adv_model.Remove 5 |] ()
  in
  check Alcotest.bool (Checker.describe r) true (Checker.is_verified r)

let test_adv_stale_bug_caught () =
  (* Skipping the stale check makes core 1 operate on the removed page:
     the lost-update violation must be found. *)
  let r =
    Adv_model.check ~no_stale_check:true ~tree ~targets:[| 1; 3 |]
      ~actions:[| Adv_model.Remove 3; Adv_model.Op |] ()
  in
  match r.Checker.outcome with
  | Checker.Invariant_violation { message; _ } ->
    check Alcotest.bool "violation mentions stale or exclusion" true
      (String.length message > 0)
  | _ -> Alcotest.fail ("stale bug not caught: " ^ Checker.describe r)

let test_adv_rcu_bug_caught () =
  (* Without the grace period, a freed PT page can be reused while core 1
     still holds a pointer from its lock-free traversal. *)
  let r =
    Adv_model.check ~no_rcu:true ~tree ~targets:[| 1; 3 |]
      ~actions:[| Adv_model.Remove 3; Adv_model.Op |] ()
  in
  match r.Checker.outcome with
  | Checker.Invariant_violation { message; _ } ->
    check Alcotest.bool "use-after-free found" true
      (String.length message > 0)
  | _ -> Alcotest.fail ("RCU bug not caught: " ^ Checker.describe r)

(* -- Functional correctness (P2) -- *)

let test_exhaustive_adv () =
  let r = Funcheck.exhaustive ~cfg:Cortenmm.Config.adv ~depth:2 () in
  check Alcotest.int "49 sequences" 49 r.Funcheck.sequences;
  check Alcotest.int "no failures" 0 (List.length r.Funcheck.failures)

let test_exhaustive_rw () =
  let r = Funcheck.exhaustive ~cfg:Cortenmm.Config.rw ~depth:2 () in
  check Alcotest.int "no failures" 0 (List.length r.Funcheck.failures)

(* -- Linearizability -- *)

let test_linearizability () =
  List.iter
    (fun seed ->
      let r =
        Funcheck.lin_check ~cfg:Cortenmm.Config.adv ~ncpus:4 ~ops_per_thread:15
          ~seed
      in
      check Alcotest.bool
        (Printf.sprintf "seed %d: %s" seed r.Funcheck.detail)
        true r.Funcheck.matched)
    [ 1; 2; 3; 42; 1234 ]

let test_linearizability_rw () =
  let r =
    Funcheck.lin_check ~cfg:Cortenmm.Config.rw ~ncpus:4 ~ops_per_thread:15
      ~seed:7
  in
  check Alcotest.bool r.Funcheck.detail true r.Funcheck.matched

let () =
  Alcotest.run "mm_verif"
    [
      ("tree", [ Alcotest.test_case "structure" `Quick test_tree_structure ]);
      ( "rw-protocol",
        [
          Alcotest.test_case "verifies (P1)" `Quick test_rw_verifies;
          Alcotest.test_case "trade window verifies" `Quick
            test_rw_trade_window_verifies;
          Alcotest.test_case "stepwise unlock verifies" `Quick
            test_rw_stepwise_unlock_verifies;
          Alcotest.test_case "3 cores, ternary tree" `Quick test_rw_bigger_tree;
          Alcotest.test_case "seeded bug caught" `Quick test_rw_bug_caught;
          Alcotest.test_case "refines Atomic Spec" `Quick test_rw_refinement;
        ] );
      ( "adv-protocol",
        [
          Alcotest.test_case "disjoint verifies" `Quick
            test_adv_verifies_disjoint;
          Alcotest.test_case "overlap verifies" `Quick
            test_adv_verifies_overlap;
          Alcotest.test_case "fig7 unmap race verifies" `Quick
            test_adv_verifies_fig7_race;
          Alcotest.test_case "double remove verifies" `Quick
            test_adv_verifies_double_remove;
          Alcotest.test_case "three cores verify" `Quick test_adv_three_cores;
          Alcotest.test_case "ternary tree verifies" `Quick
            test_adv_ternary_tree;
          Alcotest.test_case "stale-check bug caught" `Quick
            test_adv_stale_bug_caught;
          Alcotest.test_case "missing-RCU bug caught" `Quick
            test_adv_rcu_bug_caught;
        ] );
      ( "functional-correctness",
        [
          Alcotest.test_case "exhaustive depth-2 (adv)" `Quick
            test_exhaustive_adv;
          Alcotest.test_case "exhaustive depth-2 (rw)" `Quick
            test_exhaustive_rw;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "adv histories linearize" `Quick
            test_linearizability;
          Alcotest.test_case "rw histories linearize" `Quick
            test_linearizability_rw;
        ] );
    ]
