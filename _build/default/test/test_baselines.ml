(* Tests for the three baseline memory-management systems: Linux-style
   two-level abstraction, RadixVM, and NrOS. Checks both semantics
   (map/unmap/fault behaviour, COW on fork for Linux) and the locking
   structure (what serializes and what scales). *)

module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let check = Alcotest.check
let page = 4096
let kib n = n * 1024
let mib n = n * 1024 * 1024

let in_sim ?(ncpus = 1) f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu:0 (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

(* -- VMA tree -- *)

let test_vma_tree_basics () =
  in_sim (fun () ->
      let phys = Mm_phys.Phys.create () in
      let t = Mm_linux.Vma.create phys in
      let _ = Mm_linux.Vma.insert t ~start:0x1000 ~end_:0x5000 ~perm:Perm.rw in
      let _ = Mm_linux.Vma.insert t ~start:0x8000 ~end_:0x9000 ~perm:Perm.r in
      (match Mm_linux.Vma.find t 0x2000 with
      | Some v -> check Alcotest.int "vma start" 0x1000 v.Mm_linux.Vma.v_start
      | None -> Alcotest.fail "vma not found");
      check Alcotest.bool "gap not found" true
        (Mm_linux.Vma.find t 0x6000 = None);
      check Alcotest.int "two vmas" 2 (Mm_linux.Vma.count t))

let test_vma_split_on_remove () =
  in_sim (fun () ->
      let phys = Mm_phys.Phys.create () in
      let t = Mm_linux.Vma.create phys in
      let _ = Mm_linux.Vma.insert t ~start:0x1000 ~end_:0x9000 ~perm:Perm.rw in
      (* Punching a hole splits the VMA into two. *)
      ignore (Mm_linux.Vma.remove_range t ~lo:0x4000 ~hi:0x5000);
      check Alcotest.int "split into two" 2 (Mm_linux.Vma.count t);
      check Alcotest.bool "hole empty" true (Mm_linux.Vma.find t 0x4000 = None);
      (match Mm_linux.Vma.find t 0x3000 with
      | Some v -> check Alcotest.int "left end" 0x4000 v.Mm_linux.Vma.v_end
      | None -> Alcotest.fail "left part missing");
      match Mm_linux.Vma.find t 0x8000 with
      | Some v -> check Alcotest.int "right start" 0x5000 v.Mm_linux.Vma.v_start
      | None -> Alcotest.fail "right part missing")

let vma_tree_random_prop =
  QCheck.Test.make ~name:"vma tree matches interval list" ~count:100
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 30)
        (pair (int_bound 60) (int_range 1 8)))
    (fun ops ->
      in_sim (fun () ->
          let phys = Mm_phys.Phys.create () in
          let t = Mm_linux.Vma.create phys in
          let reference = Hashtbl.create 64 in
          List.iteri
            (fun i (start_page, len_pages) ->
              let lo = (start_page + 1) * page in
              let hi = lo + (len_pages * page) in
              if i mod 2 = 0 then begin
                ignore (Mm_linux.Vma.remove_range t ~lo ~hi);
                ignore (Mm_linux.Vma.insert t ~start:lo ~end_:hi ~perm:Perm.rw);
                for p = lo / page to (hi / page) - 1 do
                  Hashtbl.replace reference p true
                done
              end
              else begin
                ignore (Mm_linux.Vma.remove_range t ~lo ~hi);
                for p = lo / page to (hi / page) - 1 do
                  Hashtbl.remove reference p
                done
              end)
            ops;
          let ok = ref true in
          for p = 0 to 80 do
            let in_tree = Mm_linux.Vma.find t (p * page) <> None in
            let in_ref = Hashtbl.mem reference p in
            if in_tree <> in_ref then ok := false
          done;
          !ok))

(* -- Maple tree (the VMA store) -- *)

module Maple = Mm_linux.Maple

type iv = { lo : int; hi : int }

let make_maple () = Maple.create ~start:(fun v -> v.lo) ~stop:(fun v -> v.hi)

let test_maple_basics () =
  let t = make_maple () in
  Maple.insert t { lo = 10; hi = 20 };
  Maple.insert t { lo = 30; hi = 40 };
  Maple.insert t { lo = 0; hi = 5 };
  check Alcotest.int "count" 3 (Maple.count t);
  (match Maple.find t 15 with
  | Some v -> check Alcotest.int "found" 10 v.lo
  | None -> Alcotest.fail "not found");
  check Alcotest.bool "gap" true (Maple.find t 25 = None);
  check Alcotest.bool "removed" true (Maple.remove t 10);
  check Alcotest.bool "already gone" false (Maple.remove t 10);
  check Alcotest.bool "hole" true (Maple.find t 15 = None);
  Maple.check_invariants t

let test_maple_stays_shallow () =
  (* The whole point of wide nodes: hundreds of intervals, tiny height. *)
  let t = make_maple () in
  for i = 0 to 999 do
    Maple.insert t { lo = i * 10; hi = (i * 10) + 5 }
  done;
  Maple.check_invariants t;
  check Alcotest.int "1000 items" 1000 (Maple.count t);
  check Alcotest.bool
    (Printf.sprintf "height %d <= 4" (Maple.height t))
    true
    (Maple.height t <= 4)

let test_maple_overlapping () =
  let t = make_maple () in
  for i = 0 to 99 do
    Maple.insert t { lo = i * 10; hi = (i * 10) + 8 }
  done;
  let hits = Maple.overlapping t ~lo:95 ~hi:125 in
  (* Intervals [90,98) [100,108) [110,118) [120,128) intersect [95,125). *)
  Alcotest.(check (list int))
    "overlap starts" [ 90; 100; 110; 120 ]
    (List.map (fun v -> v.lo) hits)

let maple_vs_reference_prop =
  QCheck.Test.make ~name:"maple agrees with a sorted-list reference" ~count:100
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 120)
        (pair (int_bound 300) bool))
    (fun ops ->
      let t = make_maple () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (slot, ins) ->
          let lo = slot * 4 and hi = (slot * 4) + 3 in
          if ins then begin
            if not (Hashtbl.mem reference lo) then begin
              Maple.insert t { lo; hi };
              Hashtbl.replace reference lo hi
            end
          end
          else begin
            let was = Hashtbl.mem reference lo in
            let got = Maple.remove t lo in
            if was <> got then failwith "remove disagreed";
            Hashtbl.remove reference lo
          end)
        ops;
      Maple.check_invariants t;
      (* Point lookups agree over the whole key space. *)
      let ok = ref (Maple.count t = Hashtbl.length reference) in
      for addr = 0 to 1210 do
        let in_ref =
          Hashtbl.fold
            (fun lo hi acc -> acc || (lo <= addr && addr < hi))
            reference false
        in
        let in_tree = Maple.find t addr <> None in
        if in_ref <> in_tree then ok := false
      done;
      !ok)

(* -- Linux semantics -- *)

let test_linux_map_touch_unmap () =
  in_sim (fun () ->
      let t = Mm_linux.Linux_mm.create ~ncpus:1 () in
      let addr = Mm_linux.Linux_mm.mmap t ~len:(kib 16) ~perm:Perm.rw () in
      Mm_linux.Linux_mm.touch_range t ~addr ~len:(kib 16) ~write:true;
      Mm_linux.Linux_mm.write_value t ~vaddr:addr ~value:11;
      check Alcotest.int "value" 11 (Mm_linux.Linux_mm.read_value t ~vaddr:addr);
      Mm_linux.Linux_mm.munmap t ~addr ~len:(kib 16);
      (match Mm_linux.Linux_mm.page_fault t ~vaddr:addr ~write:false with
      | Mm_linux.Linux_mm.Sigsegv -> ()
      | Mm_linux.Linux_mm.Handled -> Alcotest.fail "unmapped must segfault");
      Mm_linux.Linux_mm.check_well_formed t)

let test_linux_fault_perm () =
  in_sim (fun () ->
      let t = Mm_linux.Linux_mm.create ~ncpus:1 () in
      let addr = Mm_linux.Linux_mm.mmap t ~len:(kib 16) ~perm:Perm.r () in
      (match Mm_linux.Linux_mm.page_fault t ~vaddr:addr ~write:true with
      | Mm_linux.Linux_mm.Sigsegv -> ()
      | Mm_linux.Linux_mm.Handled -> Alcotest.fail "write to r-- must segfault");
      match Mm_linux.Linux_mm.page_fault t ~vaddr:addr ~write:false with
      | Mm_linux.Linux_mm.Handled -> ()
      | Mm_linux.Linux_mm.Sigsegv -> Alcotest.fail "read fault must succeed")

let test_linux_fork_cow () =
  in_sim (fun () ->
      let t = Mm_linux.Linux_mm.create ~ncpus:1 () in
      let addr = Mm_linux.Linux_mm.mmap t ~len:(kib 16) ~perm:Perm.rw () in
      Mm_linux.Linux_mm.write_value t ~vaddr:addr ~value:21;
      let child = Mm_linux.Linux_mm.fork t in
      check Alcotest.int "child reads parent" 21
        (Mm_linux.Linux_mm.read_value child ~vaddr:addr);
      Mm_linux.Linux_mm.write_value child ~vaddr:addr ~value:22;
      check Alcotest.int "parent unchanged" 21
        (Mm_linux.Linux_mm.read_value t ~vaddr:addr);
      check Alcotest.int "child changed" 22
        (Mm_linux.Linux_mm.read_value child ~vaddr:addr))

let test_linux_mprotect () =
  in_sim (fun () ->
      let t = Mm_linux.Linux_mm.create ~ncpus:1 () in
      let addr = Mm_linux.Linux_mm.mmap t ~len:(kib 16) ~perm:Perm.rw () in
      Mm_linux.Linux_mm.touch t ~vaddr:addr ~write:true;
      Mm_linux.Linux_mm.mprotect t ~addr ~len:(kib 16) ~perm:Perm.r;
      (* mprotect splits no VMA here (exact range) but must rewrite PTEs. *)
      match Mm_linux.Linux_mm.page_fault t ~vaddr:addr ~write:true with
      | Mm_linux.Linux_mm.Sigsegv -> ()
      | Mm_linux.Linux_mm.Handled -> Alcotest.fail "write after mprotect r--")

let test_linux_unmap_virt_splits () =
  in_sim (fun () ->
      let t = Mm_linux.Linux_mm.create ~ncpus:1 () in
      let addr = Mm_linux.Linux_mm.mmap t ~len:(mib 2) ~perm:Perm.rw () in
      let before = Mm_linux.Linux_mm.vma_count t in
      (* munmap of an interior never-faulted range must split the VMA —
         the cost the paper blames for Linux's unmap-virt result. *)
      Mm_linux.Linux_mm.munmap t ~addr:(addr + kib 64) ~len:(kib 16);
      check Alcotest.int "vma split" (before + 1) (Mm_linux.Linux_mm.vma_count t))

(* -- Linux locking structure -- *)

let test_linux_mmap_serializes () =
  (* Concurrent mmaps all take the mmap_lock writer side: the total time
     must grow roughly linearly with the thread count. *)
  let run ncpus =
    let w = Engine.create ~ncpus in
    let t = Mm_linux.Linux_mm.create ~ncpus () in
    for cpu = 0 to ncpus - 1 do
      Engine.spawn w ~cpu (fun () ->
          for _ = 1 to 10 do
            let a = Mm_linux.Linux_mm.mmap t ~len:(kib 16) ~perm:Perm.rw () in
            Mm_linux.Linux_mm.munmap t ~addr:a ~len:(kib 16)
          done)
    done;
    Engine.run w;
    Engine.max_time w
  in
  let t1 = run 1 and t8 = run 8 in
  check Alcotest.bool
    (Printf.sprintf "8-way mmap near-serial (1: %d, 8: %d)" t1 t8)
    true
    (t8 > 5 * t1)

let test_linux_pf_scales_on_disjoint_vmas () =
  (* Faults on distinct VMAs take distinct per-VMA locks: parallel faults
     must be much faster than serial, though the shared mm accounting
     line keeps them from perfect scaling. *)
  let prep ncpus =
    let t = Mm_linux.Linux_mm.create ~ncpus () in
    let w = Engine.create ~ncpus in
    Engine.spawn w ~cpu:0 (fun () ->
        for i = 0 to ncpus - 1 do
          ignore
            (Mm_linux.Linux_mm.mmap t
               ~addr:(mib (256 * (i + 1)))
               ~len:(kib 256) ~perm:Perm.rw ())
        done);
    Engine.run w;
    t
  in
  let serial =
    let t = prep 1 in
    let w = Engine.create ~ncpus:1 in
    Engine.spawn w ~cpu:0 (fun () ->
        for i = 0 to 7 do
          Mm_linux.Linux_mm.touch_range t
            ~addr:(mib 256)
            ~len:(kib 256) ~write:true;
          ignore i;
          Mm_linux.Linux_mm.munmap t ~addr:(mib 256) ~len:(kib 256);
          ignore
            (Mm_linux.Linux_mm.mmap t ~addr:(mib 256) ~len:(kib 256)
               ~perm:Perm.rw ())
        done);
    Engine.run w;
    Engine.max_time w
  in
  let parallel =
    let t = prep 8 in
    let w = Engine.create ~ncpus:8 in
    for cpu = 0 to 7 do
      Engine.spawn w ~cpu (fun () ->
          Mm_linux.Linux_mm.touch_range t
            ~addr:(mib (256 * (cpu + 1)))
            ~len:(kib 256) ~write:true)
    done;
    Engine.run w;
    Engine.max_time w
  in
  check Alcotest.bool
    (Printf.sprintf "parallel faults faster (serial %d, parallel %d)" serial
       parallel)
    true (parallel < serial)

(* -- RadixVM -- *)

let test_radixvm_semantics () =
  in_sim (fun () ->
      let t = Mm_radixvm.Radixvm.create ~ncpus:1 () in
      let addr = Mm_radixvm.Radixvm.mmap t ~len:(kib 16) ~perm:Perm.rw () in
      Mm_radixvm.Radixvm.touch_range t ~addr ~len:(kib 16) ~write:true;
      Mm_radixvm.Radixvm.munmap t ~addr ~len:(kib 16);
      match Mm_radixvm.Radixvm.page_fault t ~vaddr:addr ~write:false with
      | Mm_radixvm.Radixvm.Sigsegv -> ()
      | Mm_radixvm.Radixvm.Handled -> Alcotest.fail "unmapped must segfault")

let test_radixvm_per_core_pts () =
  let ncpus = 4 in
  let w = Engine.create ~ncpus in
  let t = Mm_radixvm.Radixvm.create ~ncpus () in
  let addr = mib 256 in
  Engine.spawn w ~cpu:0 (fun () ->
      ignore (Mm_radixvm.Radixvm.mmap t ~addr ~len:(kib 64) ~perm:Perm.rw ()));
  Engine.run w;
  let w = Engine.create ~ncpus in
  for cpu = 0 to ncpus - 1 do
    Engine.spawn w ~cpu (fun () ->
        Mm_radixvm.Radixvm.touch_range t ~addr ~len:(kib 64) ~write:true)
  done;
  Engine.run w;
  (* Every core faulted the same region: each has a private page table, so
     the replicated PT bytes are ~4x one core's. *)
  let bytes = Mm_radixvm.Radixvm.replicated_pt_bytes t in
  check Alcotest.bool
    (Printf.sprintf "replicated pt bytes %d" bytes)
    true
    (bytes >= ncpus * 4 * page)

let test_radixvm_unmap_clears_all_replicas () =
  let ncpus = 2 in
  let t = Mm_radixvm.Radixvm.create ~ncpus () in
  let addr = mib 256 in
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      ignore (Mm_radixvm.Radixvm.mmap t ~addr ~len:(kib 16) ~perm:Perm.rw ()));
  Engine.run w;
  let w = Engine.create ~ncpus in
  for cpu = 0 to 1 do
    Engine.spawn w ~cpu (fun () ->
        Mm_radixvm.Radixvm.touch_range t ~addr ~len:(kib 16) ~write:true)
  done;
  Engine.run w;
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      Mm_radixvm.Radixvm.munmap t ~addr ~len:(kib 16));
  Engine.run w;
  (* After unmap on cpu 0, cpu 1 must fault (its replica was purged too). *)
  let w = Engine.create ~ncpus in
  let faulted = ref false in
  Engine.spawn w ~cpu:1 (fun () ->
      try Mm_radixvm.Radixvm.touch t ~vaddr:addr ~write:false
      with Mm_radixvm.Radixvm.Fault _ -> faulted := true);
  Engine.run w;
  check Alcotest.bool "replica purged" true !faulted

(* -- NrOS -- *)

let test_nros_semantics () =
  in_sim (fun () ->
      let t = Mm_nros.Nros.create ~ncpus:1 () in
      let addr = Mm_nros.Nros.mmap t ~len:(kib 16) ~perm:Perm.rw () in
      (* Eager backing: touching never faults. *)
      Mm_nros.Nros.touch_range t ~addr ~len:(kib 16) ~write:true;
      Mm_nros.Nros.munmap t ~addr ~len:(kib 16);
      (try
         Mm_nros.Nros.touch t ~vaddr:addr ~write:false;
         Alcotest.fail "touch after munmap must fault"
       with Mm_nros.Nros.Fault _ -> ());
      check Alcotest.int "log has two ops" 2 (Mm_nros.Nros.log_length t))

let test_nros_replicas_catch_up () =
  let ncpus = 4 in
  let t = Mm_nros.Nros.create ~ncpus () in
  let addr = ref 0 in
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      addr := Mm_nros.Nros.mmap t ~len:(kib 16) ~perm:Perm.rw ());
  Engine.run w;
  (* cpu 3 is on the other replica: its touch must replay the log. *)
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:3 (fun () ->
      Mm_nros.Nros.touch t ~vaddr:!addr ~write:true);
  Engine.run w;
  check Alcotest.bool "both replicas populated" true
    (Mm_nros.Nros.replicated_pt_bytes t >= 2 * 4 * page)

let test_nros_log_serializes () =
  let run ncpus =
    let w = Engine.create ~ncpus in
    let t = Mm_nros.Nros.create ~ncpus () in
    for cpu = 0 to ncpus - 1 do
      Engine.spawn w ~cpu (fun () ->
          for _ = 1 to 10 do
            let a = Mm_nros.Nros.mmap t ~len:(kib 16) ~perm:Perm.rw () in
            Mm_nros.Nros.munmap t ~addr:a ~len:(kib 16)
          done)
    done;
    Engine.run w;
    Engine.max_time w
  in
  let t1 = run 1 and t8 = run 8 in
  check Alcotest.bool
    (Printf.sprintf "nros near-serial (1: %d, 8: %d)" t1 t8)
    true
    (t8 > 4 * t1)

let () =
  Alcotest.run "baselines"
    [
      ( "maple",
        [
          Alcotest.test_case "basics" `Quick test_maple_basics;
          Alcotest.test_case "stays shallow" `Quick test_maple_stays_shallow;
          Alcotest.test_case "overlapping" `Quick test_maple_overlapping;
          QCheck_alcotest.to_alcotest maple_vs_reference_prop;
        ] );
      ( "vma-tree",
        [
          Alcotest.test_case "basics" `Quick test_vma_tree_basics;
          Alcotest.test_case "split on remove" `Quick test_vma_split_on_remove;
          QCheck_alcotest.to_alcotest vma_tree_random_prop;
        ] );
      ( "linux",
        [
          Alcotest.test_case "map/touch/unmap" `Quick
            test_linux_map_touch_unmap;
          Alcotest.test_case "fault permissions" `Quick test_linux_fault_perm;
          Alcotest.test_case "fork COW" `Quick test_linux_fork_cow;
          Alcotest.test_case "mprotect" `Quick test_linux_mprotect;
          Alcotest.test_case "unmap-virt splits VMA" `Quick
            test_linux_unmap_virt_splits;
          Alcotest.test_case "mmap serializes" `Quick
            test_linux_mmap_serializes;
          Alcotest.test_case "PF scales on disjoint VMAs" `Quick
            test_linux_pf_scales_on_disjoint_vmas;
        ] );
      ( "radixvm",
        [
          Alcotest.test_case "semantics" `Quick test_radixvm_semantics;
          Alcotest.test_case "per-core PTs" `Quick test_radixvm_per_core_pts;
          Alcotest.test_case "unmap clears replicas" `Quick
            test_radixvm_unmap_clears_all_replicas;
        ] );
      ( "nros",
        [
          Alcotest.test_case "semantics" `Quick test_nros_semantics;
          Alcotest.test_case "replicas catch up" `Quick
            test_nros_replicas_catch_up;
          Alcotest.test_case "log serializes" `Quick test_nros_log_serializes;
        ] );
    ]
