(* Tests for the HAL: geometry index math and bit-accurate PTE
   encode/decode roundtrips on all three ISAs. *)

open Mm_hal

let check = Alcotest.check

let pte_testable = Alcotest.testable Pte.pp Pte.equal

(* -- Geometry -- *)

let test_geometry_constants () =
  let g = Geometry.x86_64 in
  check Alcotest.int "page size" 4096 (Geometry.page_size g);
  check Alcotest.int "entries" 512 (Geometry.entries g);
  check Alcotest.int "L1 coverage" 4096 (Geometry.coverage g ~level:1);
  check Alcotest.int "L2 coverage (2MiB)" (2 * 1024 * 1024)
    (Geometry.coverage g ~level:2);
  check Alcotest.int "L3 coverage (1GiB)" (1024 * 1024 * 1024)
    (Geometry.coverage g ~level:3);
  check Alcotest.int "L4 coverage (512GiB)" (512 * 1024 * 1024 * 1024)
    (Geometry.coverage g ~level:4)

let test_geometry_index () =
  let g = Geometry.x86_64 in
  (* vaddr = idx4:idx3:idx2:idx1:offset = 1:2:3:4:0 *)
  let vaddr =
    (1 lsl (12 + 27)) lor (2 lsl (12 + 18)) lor (3 lsl (12 + 9)) lor (4 lsl 12)
  in
  check Alcotest.int "idx L4" 1 (Geometry.index g ~level:4 ~vaddr);
  check Alcotest.int "idx L3" 2 (Geometry.index g ~level:3 ~vaddr);
  check Alcotest.int "idx L2" 3 (Geometry.index g ~level:2 ~vaddr);
  check Alcotest.int "idx L1" 4 (Geometry.index g ~level:1 ~vaddr)

let test_geometry_level_for_size () =
  let g = Geometry.x86_64 in
  check (Alcotest.option Alcotest.int) "4K" (Some 1)
    (Geometry.level_for_size g ~size:4096);
  check (Alcotest.option Alcotest.int) "2M" (Some 2)
    (Geometry.level_for_size g ~size:(2 * 1024 * 1024));
  check (Alcotest.option Alcotest.int) "1G" (Some 3)
    (Geometry.level_for_size g ~size:(1024 * 1024 * 1024));
  check (Alcotest.option Alcotest.int) "8K is no level" None
    (Geometry.level_for_size g ~size:8192)

let test_geometry_pages_per_entry () =
  let g = Geometry.x86_64 in
  check Alcotest.int "L1" 1 (Geometry.pages_per_entry g ~level:1);
  check Alcotest.int "L2" 512 (Geometry.pages_per_entry g ~level:2);
  check Alcotest.int "L3" (512 * 512) (Geometry.pages_per_entry g ~level:3)

let test_check_vaddr () =
  let g = Geometry.x86_64 in
  Geometry.check_vaddr g 0;
  Geometry.check_vaddr g (Geometry.va_limit g - 1);
  let rejects v =
    try
      Geometry.check_vaddr g v;
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "negative rejected" true (rejects (-4096));
  check Alcotest.bool "beyond limit rejected" true
    (rejects (Geometry.va_limit g))

(* -- PTE formats -- *)

let all_isas = Isa.all

(* A perm generator restricted to what hardware formats can express:
   present leaves are readable, and MPK keys only where supported. *)
let gen_perm ~mpk =
  QCheck.Gen.(
    let* write = bool in
    let* execute = bool in
    let* user = bool in
    let* cow = bool in
    let* key = if mpk then int_bound 15 else return 0 in
    return (Perm.make ~read:true ~write ~execute ~user ~cow ~mpk_key:key ()))

let gen_leaf ~mpk ~level =
  QCheck.Gen.(
    let align = 1 lsl (9 * (level - 1)) in
    (* Keep pfn within the narrowest format's field (ARM: 36 bits). *)
    let* base = int_bound ((1 lsl 34) / align) in
    let pfn = base * align in
    let* perm = gen_perm ~mpk in
    let* accessed = bool in
    let* dirty = bool in
    let* global = bool in
    return (Pte.leaf ~accessed ~dirty ~global ~pfn ~perm ()))

let roundtrip_prop (isa : Isa.t) =
  let (module F : Pte_format.S) = isa.Isa.fmt in
  let max_leaf_level =
    match isa.Isa.name with "x86-64" | "arm64" -> 3 | _ -> 4
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s leaf encode/decode roundtrip" isa.Isa.name)
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* level = int_range 1 max_leaf_level in
         let* pte = gen_leaf ~mpk:F.supports_mpk ~level in
         return (level, pte)))
    (fun (level, pte) ->
      let raw = Isa.encode isa ~level pte in
      Pte.equal (Isa.decode isa ~level raw) pte)

let table_roundtrip_prop (isa : Isa.t) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s table encode/decode roundtrip" isa.Isa.name)
    ~count:200
    QCheck.(pair (int_range 2 4) (int_bound 0xFFFF_FFF))
    (fun (level, pfn) ->
      let pte = Pte.Table { pfn } in
      let raw = Isa.encode isa ~level pte in
      Pte.equal (Isa.decode isa ~level raw) pte)

let test_absent_is_zero () =
  List.iter
    (fun isa ->
      for level = 1 to 4 do
        check Alcotest.int64
          (Printf.sprintf "%s absent L%d" isa.Isa.name level)
          0L
          (Isa.encode isa ~level Pte.Absent);
        check pte_testable "zero decodes absent" Pte.Absent
          (Isa.decode isa ~level 0L)
      done)
    all_isas

let test_x86_bits () =
  (* Check specific bit positions against the SDM layout. *)
  let pte =
    Pte.leaf ~accessed:true ~dirty:true ~pfn:0x1234
      ~perm:(Perm.make ~write:true ~execute:false ~user:true ())
      ()
  in
  let raw = Isa.encode Isa.x86_64 ~level:1 pte in
  let bit n = Int64.(logand raw (shift_left 1L n) <> 0L) in
  check Alcotest.bool "P" true (bit 0);
  check Alcotest.bool "RW" true (bit 1);
  check Alcotest.bool "US" true (bit 2);
  check Alcotest.bool "A" true (bit 5);
  check Alcotest.bool "D" true (bit 6);
  check Alcotest.bool "PS clear at L1" false (bit 7);
  check Alcotest.bool "XD (no execute)" true (bit 63);
  check Alcotest.int "pfn field" 0x1234
    Int64.(to_int (logand (shift_right_logical raw 12) 0xFF_FFFF_FFFFL))

let test_x86_huge_bit () =
  let pte = Pte.leaf ~pfn:512 ~perm:Perm.rw () in
  let raw = Isa.encode Isa.x86_64 ~level:2 pte in
  check Alcotest.bool "PS set at L2" true
    Int64.(logand raw (shift_left 1L 7) <> 0L)

let test_x86_mpk_field () =
  let pte = Pte.leaf ~pfn:7 ~perm:(Perm.with_mpk Perm.rw 11) () in
  let raw = Isa.encode Isa.x86_64 ~level:1 pte in
  check Alcotest.int "PKU bits 59-62" 11
    Int64.(to_int (logand (shift_right_logical raw 59) 0xFL))

let test_riscv_bits () =
  let pte =
    Pte.leaf ~pfn:0x55 ~perm:(Perm.make ~write:true ~execute:true ()) ()
  in
  let raw = Isa.encode Isa.riscv_sv48 ~level:1 pte in
  let bit n = Int64.(logand raw (shift_left 1L n) <> 0L) in
  check Alcotest.bool "V" true (bit 0);
  check Alcotest.bool "R" true (bit 1);
  check Alcotest.bool "W" true (bit 2);
  check Alcotest.bool "X" true (bit 3);
  check Alcotest.int "ppn at bit 10" 0x55
    Int64.(to_int (logand (shift_right_logical raw 10) 0xFFFL))

let test_riscv_table_is_pointer () =
  (* A table entry must have R=W=X=0. *)
  let raw = Isa.encode Isa.riscv_sv48 ~level:2 (Pte.Table { pfn = 3 }) in
  check Alcotest.int64 "rwx clear" 0L Int64.(logand raw 0b1110L)

let test_riscv_rejects_mpk () =
  Alcotest.check_raises "no PKU on riscv"
    (Invalid_argument "Sv48: no protection keys") (fun () ->
      ignore
        (Isa.encode Isa.riscv_sv48 ~level:1
           (Pte.leaf ~pfn:1 ~perm:(Perm.with_mpk Perm.rw 3) ())))

let test_arm_block_levels () =
  (* Blocks allowed at our levels 2 and 3, rejected at level 4. *)
  let pte = Pte.leaf ~pfn:512 ~perm:Perm.rw () in
  ignore (Isa.encode Isa.arm64 ~level:2 pte);
  let pte3 = Pte.leaf ~pfn:(512 * 512) ~perm:Perm.rw () in
  ignore (Isa.encode Isa.arm64 ~level:3 pte3);
  Alcotest.check_raises "no L0 block"
    (Invalid_argument "ARMv8: no level-0 blocks with 4K granule") (fun () ->
      ignore (Isa.encode Isa.arm64 ~level:4 (Pte.leaf ~pfn:0 ~perm:Perm.rw ())))

let test_arm_readonly_encoding () =
  (* AP[2] set means read-only. *)
  let ro = Pte.leaf ~pfn:1 ~perm:Perm.r () in
  let raw = Isa.encode Isa.arm64 ~level:1 ro in
  check Alcotest.bool "AP2 set for read-only" true
    Int64.(logand raw (shift_left 1L 7) <> 0L);
  let rw = Pte.leaf ~pfn:1 ~perm:Perm.rw () in
  let raw = Isa.encode Isa.arm64 ~level:1 rw in
  check Alcotest.bool "AP2 clear for writable" false
    Int64.(logand raw (shift_left 1L 7) <> 0L)

let test_huge_alignment_enforced () =
  List.iter
    (fun isa ->
      Alcotest.(check bool)
        (isa.Isa.name ^ " misaligned huge rejected")
        true
        (try
           ignore
             (Isa.encode isa ~level:2 (Pte.leaf ~pfn:511 ~perm:Perm.rw ()));
           false
         with Invalid_argument _ -> true))
    all_isas

let test_present_leaf_requires_read () =
  List.iter
    (fun isa ->
      Alcotest.(check bool)
        (isa.Isa.name ^ " non-readable leaf rejected")
        true
        (try
           ignore
             (Isa.encode isa ~level:1
                (Pte.leaf ~pfn:1 ~perm:(Perm.make ~read:false ()) ()));
           false
         with Invalid_argument _ -> true))
    all_isas

let test_isa_find () =
  check Alcotest.string "find riscv" "riscv-sv48"
    (Isa.find "riscv-sv48").Isa.name;
  Alcotest.(check bool)
    "unknown raises" true
    (try
       ignore (Isa.find "vax");
       false
     with Invalid_argument _ -> true)

(* -- Perm -- *)

let test_perm_allows () =
  check Alcotest.bool "r allows read" true (Perm.allows Perm.r ~write:false);
  check Alcotest.bool "r denies write" false (Perm.allows Perm.r ~write:true);
  check Alcotest.bool "rw allows write" true (Perm.allows Perm.rw ~write:true);
  check Alcotest.bool "none denies read" false
    (Perm.allows Perm.none ~write:false)

let test_perm_to_string () =
  check Alcotest.string "rw" "rw-u" (Perm.to_string Perm.rw);
  check Alcotest.string "cow" "r--u+cow"
    (Perm.to_string (Perm.with_cow Perm.r true))

let () =
  Alcotest.run "mm_hal"
    [
      ( "geometry",
        [
          Alcotest.test_case "constants" `Quick test_geometry_constants;
          Alcotest.test_case "index" `Quick test_geometry_index;
          Alcotest.test_case "level_for_size" `Quick
            test_geometry_level_for_size;
          Alcotest.test_case "pages_per_entry" `Quick
            test_geometry_pages_per_entry;
          Alcotest.test_case "check_vaddr" `Quick test_check_vaddr;
        ] );
      ( "pte-roundtrip",
        List.concat_map
          (fun isa ->
            [
              QCheck_alcotest.to_alcotest (roundtrip_prop isa);
              QCheck_alcotest.to_alcotest (table_roundtrip_prop isa);
            ])
          all_isas );
      ( "pte-bits",
        [
          Alcotest.test_case "absent is zero" `Quick test_absent_is_zero;
          Alcotest.test_case "x86 bit layout" `Quick test_x86_bits;
          Alcotest.test_case "x86 huge PS bit" `Quick test_x86_huge_bit;
          Alcotest.test_case "x86 MPK field" `Quick test_x86_mpk_field;
          Alcotest.test_case "riscv bit layout" `Quick test_riscv_bits;
          Alcotest.test_case "riscv table pointer" `Quick
            test_riscv_table_is_pointer;
          Alcotest.test_case "riscv rejects MPK" `Quick test_riscv_rejects_mpk;
          Alcotest.test_case "arm block levels" `Quick test_arm_block_levels;
          Alcotest.test_case "arm read-only AP2" `Quick
            test_arm_readonly_encoding;
          Alcotest.test_case "huge alignment" `Quick
            test_huge_alignment_enforced;
          Alcotest.test_case "leaf requires read" `Quick
            test_present_leaf_requires_read;
          Alcotest.test_case "isa registry" `Quick test_isa_find;
        ] );
      ( "perm",
        [
          Alcotest.test_case "allows" `Quick test_perm_allows;
          Alcotest.test_case "to_string" `Quick test_perm_to_string;
        ] );
    ]
