test/test_numa.ml: Addr_space Alcotest Config Cortenmm Kernel List Mm Mm_hal Mm_phys Mm_sim Numa Printf Status
