test/test_isa_diff.ml: Addr_space Alcotest Blockdev Buffer Config Cortenmm Kernel List Mm Mm_hal Mm_sim Mm_verif Mm_workloads Printf Status
