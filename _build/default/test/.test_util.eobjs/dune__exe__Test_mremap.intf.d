test/test_mremap.mli:
