test/test_tlb.ml: Alcotest Array Cortenmm Mm_hal Mm_sim Mm_tlb Option Printf
