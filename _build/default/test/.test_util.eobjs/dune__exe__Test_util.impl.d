test/test_util.ml: Alcotest Align Float List Mm_util QCheck QCheck_alcotest Rng Stats String Tablefmt
