test/test_verif.ml: Adv_model Alcotest Checker Cortenmm Funcheck List Mm_verif Printf Rw_model String Tree
