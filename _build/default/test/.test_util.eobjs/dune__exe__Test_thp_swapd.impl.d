test/test_thp_swapd.ml: Addr_space Alcotest Blockdev Config Cortenmm Kernel Mm Mm_hal Mm_phys Mm_pt Mm_sim Printf Status Swapd
