test/test_numa.mli:
