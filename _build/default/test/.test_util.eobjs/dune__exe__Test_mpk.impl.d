test/test_mpk.ml: Addr_space Alcotest Config Cortenmm Kernel Mm Mm_hal Mm_sim
