test/test_baselines.ml: Alcotest Hashtbl List Mm_hal Mm_linux Mm_nros Mm_phys Mm_radixvm Mm_sim Printf QCheck QCheck_alcotest
