test/test_thp_swapd.mli:
