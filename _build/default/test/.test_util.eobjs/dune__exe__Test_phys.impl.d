test/test_phys.ml: Alcotest Hashtbl List Mm_phys Mm_util Printf QCheck QCheck_alcotest
