test/test_mremap.ml: Addr_space Alcotest Blockdev Config Cortenmm File Kernel Mm Mm_hal Mm_phys Mm_sim Printf Status
