test/test_slab.ml: Alcotest Array Hashtbl List Mm_phys Mm_util QCheck QCheck_alcotest
