test/test_workloads.ml: Alcotest Buffer Cortenmm Filename List Mm_hal Mm_sim Mm_workloads Option Printf Sys
