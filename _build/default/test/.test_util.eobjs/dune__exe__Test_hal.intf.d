test/test_hal.mli:
