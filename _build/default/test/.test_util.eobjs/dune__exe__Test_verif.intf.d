test/test_verif.mli:
