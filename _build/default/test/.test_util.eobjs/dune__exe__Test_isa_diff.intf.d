test/test_isa_diff.mli:
