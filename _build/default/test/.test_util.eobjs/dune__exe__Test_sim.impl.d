test/test_sim.ml: Alcotest Array Cost Engine List Mm_sim Mm_util Mutex_s Pqueue Printf QCheck QCheck_alcotest Rcu_s Rwlock_s
