test/test_hal.ml: Alcotest Geometry Int64 Isa List Mm_hal Perm Printf Pte Pte_format QCheck QCheck_alcotest
