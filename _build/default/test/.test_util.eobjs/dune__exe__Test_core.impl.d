test/test_core.ml: Addr_space Alcotest Blockdev Config Cortenmm File Hashtbl Kernel List Mm Mm_hal Mm_phys Mm_pt Mm_sim Mm_util Printf QCheck QCheck_alcotest Status Va_alloc
