(* Tests for mm_util: RNG determinism, statistics, alignment arithmetic,
   table formatting. *)

open Mm_util

let check = Alcotest.check

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 10 (fun _ -> Rng.next a) in
  let ys = List.init 10 (fun _ -> Rng.next b) in
  check Alcotest.bool "different seeds differ" true (xs <> ys)

let test_rng_zero_seed () =
  let r = Rng.create ~seed:0 in
  (* A zero state would be a fixed point of xorshift; must be avoided. *)
  check Alcotest.bool "zero seed still random" true
    (Rng.next r <> Rng.next r || Rng.next r <> 0)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:99 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.next parent) in
  let ys = List.init 20 (fun _ -> Rng.next child) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let rng_bounds_prop =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let rng_int_in_prop =
  QCheck.Test.make ~name:"Rng.int_in stays in range" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 1000))
    (fun (seed, lo, width) ->
      let r = Rng.create ~seed in
      let hi = lo + width in
      let x = Rng.int_in r ~lo ~hi in
      x >= lo && x <= hi)

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check Alcotest.bool "mean empty is nan" true (Float.is_nan (Stats.mean [||]))

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "stddev constant" 0.0
    (Stats.stddev [| 5.; 5.; 5. |]);
  check (Alcotest.float 1e-6) "stddev" (sqrt 2.5)
    (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |])

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  check (Alcotest.float 1e-9) "p0" 10. (Stats.percentile xs 0.);
  check (Alcotest.float 1e-9) "p100" 40. (Stats.percentile xs 100.);
  check (Alcotest.float 1e-9) "median" 25. (Stats.median xs)

let test_stats_geomean () =
  check (Alcotest.float 1e-9) "geomean" 2.0 (Stats.geomean [| 1.; 2.; 4. |])

let test_ops_per_second () =
  let v = Stats.ops_per_second ~ops:3 ~cycles:3_000_000_000 in
  check (Alcotest.float 1e-9) "3 ops in 1 simulated second" 3.0 v

let test_align_basics () =
  check Alcotest.int "down" 0x1000 (Align.down 0x1fff 0x1000);
  check Alcotest.int "up" 0x2000 (Align.up 0x1001 0x1000);
  check Alcotest.int "up exact" 0x1000 (Align.up 0x1000 0x1000);
  check Alcotest.bool "aligned" true (Align.is_aligned 0x2000 0x1000);
  check Alcotest.bool "unaligned" false (Align.is_aligned 0x2001 0x1000);
  check Alcotest.int "log2" 12 (Align.log2 4096);
  check Alcotest.int "div_round_up" 3 (Align.div_round_up 9 4)

let test_align_rejects_non_pow2 () =
  Alcotest.check_raises "bad alignment"
    (Invalid_argument "Align.down: bad alignment") (fun () ->
      ignore (Align.down 10 3))

let align_prop =
  QCheck.Test.make ~name:"align up/down bracket the value" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_range 0 16))
    (fun (x, sh) ->
      let a = 1 lsl sh in
      Align.down x a <= x && x <= Align.up x a
      && Align.is_aligned (Align.down x a) a
      && Align.is_aligned (Align.up x a) a
      && Align.up x a - Align.down x a < 2 * a)

let test_tablefmt_render () =
  let s =
    Tablefmt.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header + rule + 2 rows + empty fragment after trailing newline *)
  check Alcotest.int "5 fragments" 5 (List.length lines);
  (match lines with
  | header :: _ ->
    check Alcotest.bool "header padded" true
      (String.length header >= String.length "name  value")
  | [] -> Alcotest.fail "no output");
  Alcotest.check_raises "row length mismatch"
    (Invalid_argument "Tablefmt.render: row length mismatch") (fun () ->
      ignore (Tablefmt.render ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let test_tablefmt_numbers () =
  check Alcotest.string "si M" "12.35M" (Tablefmt.fmt_si 12_345_678.0);
  check Alcotest.string "si k" "1.50k" (Tablefmt.fmt_si 1_500.0);
  check Alcotest.string "bytes" "4.00 KiB" (Tablefmt.fmt_bytes 4096);
  check Alcotest.string "speedup" "2.50x" (Tablefmt.fmt_speedup 2.5);
  check Alcotest.string "speedup big" "150x" (Tablefmt.fmt_speedup 150.0)

let () =
  Alcotest.run "mm_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick
            test_rng_seed_sensitivity;
          Alcotest.test_case "zero seed" `Quick test_rng_zero_seed;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest rng_bounds_prop;
          QCheck_alcotest.to_alcotest rng_int_in_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "ops_per_second" `Quick test_ops_per_second;
        ] );
      ( "align",
        [
          Alcotest.test_case "basics" `Quick test_align_basics;
          Alcotest.test_case "rejects non-pow2" `Quick
            test_align_rejects_non_pow2;
          QCheck_alcotest.to_alcotest align_prop;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_tablefmt_render;
          Alcotest.test_case "numbers" `Quick test_tablefmt_numbers;
        ] );
    ]
