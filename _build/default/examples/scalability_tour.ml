(* Scalability tour: why eliminating the software-level abstraction wins.

   Run with: dune exec examples/scalability_tour.exe

   Runs the page-fault microbenchmark over a small core sweep on the
   simulated multicore machine, for Linux-style two-level MM and both
   CortenMM protocols, and prints the speedups — a miniature of the
   paper's Fig 14 story, in a few seconds. *)

module System = Mm_workloads.System
module Micro = Mm_workloads.Micro

let () =
  let systems =
    [
      ("linux (two-level, mmap_lock + VMA locks)", System.Linux);
      ("cortenmm-rw (single-level, BRAVO rwlocks)", System.Corten Cortenmm.Config.rw);
      ("cortenmm-adv (single-level, RCU + MCS)", System.Corten Cortenmm.Config.adv);
    ]
  in
  let cores = [ 1; 4; 16; 64 ] in
  Printf.printf
    "Page-fault throughput (ops/s), each thread faulting its own pages:\n\n";
  let header = "system" :: List.map string_of_int cores in
  let rows =
    List.map
      (fun (name, kind) ->
        name
        :: List.map
             (fun ncpus ->
               match
                 Micro.run ~kind ~ncpus ~bench:Micro.Pf ~contention:Micro.Low
                   ~iters:50 ()
               with
               | Some r ->
                 Mm_util.Tablefmt.fmt_si r.Mm_workloads.Runner.ops_per_sec
               | None -> "n/a")
             cores)
      systems
  in
  Mm_util.Tablefmt.print ~header rows;
  Printf.printf
    "\nWhat to look for:\n\
     - linux flattens: every fault takes the per-VMA reader lock and the\n\
    \  mm-wide accounting cache line;\n\
     - cortenmm-rw scales further but readers still synchronize on PT-page\n\
    \  reader-writer locks;\n\
     - cortenmm-adv traverses lock-free under RCU and only locks the\n\
    \  covering leaf PT page: faults on disjoint pages never touch a\n\
    \  shared cache line, so it scales near-linearly.\n"
