examples/swap_and_file.ml: Addr_space Blockdev Config Cortenmm File Kernel List Mm Mm_hal Mm_phys Mm_sim Printf Status
