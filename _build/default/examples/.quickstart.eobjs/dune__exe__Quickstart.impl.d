examples/quickstart.ml: Addr_space Config Cortenmm Kernel Mm Mm_hal Mm_pt Mm_sim Printf Status
