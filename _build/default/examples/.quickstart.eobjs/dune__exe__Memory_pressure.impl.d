examples/memory_pressure.ml: Addr_space Blockdev Config Cortenmm Kernel Mm Mm_hal Mm_phys Mm_pt Mm_sim Numa Printf Status Swapd
