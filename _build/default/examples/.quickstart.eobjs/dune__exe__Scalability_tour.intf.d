examples/scalability_tour.mli:
