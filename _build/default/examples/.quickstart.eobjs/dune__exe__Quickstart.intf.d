examples/quickstart.mli:
