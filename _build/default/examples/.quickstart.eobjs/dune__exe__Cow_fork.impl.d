examples/cow_fork.ml: Addr_space Config Cortenmm Kernel Mm Mm_hal Mm_phys Mm_sim Printf Status
