examples/swap_and_file.mli:
