examples/scalability_tour.ml: Cortenmm List Mm_util Mm_workloads Printf
