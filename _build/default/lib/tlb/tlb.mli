(** Per-CPU TLB model and shootdown strategies: synchronous broadcast
    (Linux), early acknowledgement, and LATR-style lazy shootdown. *)

type strategy = Sync | Early_ack | Latr

type counters = {
  mutable shootdowns : int;
  mutable ipis : int;
  mutable local_flushes : int;
  mutable latr_published : int;
  mutable latr_drained : int;
}

type t

val create : ncpus:int -> strategy:strategy -> t
val strategy : t -> strategy
val strategy_to_string : strategy -> string

val install :
  t -> cpu:int -> vpn:int -> pfn:int -> writable:bool -> ?key:int -> unit -> unit

(** A hit requires the cached translation to permit the access: a write to
    a read-only cached entry (e.g. COW) misses and takes the fault path.
    Returns the pfn and the cached MPK key (hardware checks PKRU on every
    access, hit or not). *)
val lookup : t -> cpu:int -> vpn:int -> write:bool -> (int * int) option
val flush_local : t -> cpu:int -> vpns:int list -> unit

val shootdown : t -> targets:bool array -> vpns:int list -> unit
(** Invalidate [vpns] on each CPU whose bit is set in [targets] (plus the
    calling CPU, immediately). Must be called from inside a fiber; the
    initiator is charged the selected strategy's cost profile. *)

val shootdown_full : t -> targets:bool array -> unit
(** Invalidate the targets' entire TLBs (synchronous; used beyond
    per-page thresholds and after reference-bit batch clears). *)

val timer_tick : t -> cpu:int -> unit
(** Drain the CPU's lazy-shootdown buffer (LATR). *)

val pending_count : t -> cpu:int -> int
val counters : t -> counters
