lib/tlb/tlb.ml: Array Fun Hashtbl List Mm_sim Queue
