lib/tlb/tlb.mli:
