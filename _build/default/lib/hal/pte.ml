(* ISA-independent decoded view of a page-table entry.

   Hardware stores entries as raw 64-bit words whose layout differs per ISA;
   the [Pte_format] implementations translate between this view and the raw
   encodings. A [Leaf] above level 1 is a huge-page mapping. *)

type t =
  | Absent
  | Table of { pfn : int }
  | Leaf of {
      pfn : int;
      perm : Perm.t;
      accessed : bool;
      dirty : bool;
      global : bool;
    }

let leaf ?(accessed = false) ?(dirty = false) ?(global = false) ~pfn ~perm () =
  Leaf { pfn; perm; accessed; dirty; global }

let is_present = function Absent -> false | Table _ | Leaf _ -> true
let is_leaf = function Leaf _ -> true | Absent | Table _ -> false
let is_table = function Table _ -> true | Absent | Leaf _ -> false

let pfn = function
  | Absent -> None
  | Table { pfn } -> Some pfn
  | Leaf { pfn; _ } -> Some pfn

let equal a b =
  match (a, b) with
  | Absent, Absent -> true
  | Table { pfn = p1 }, Table { pfn = p2 } -> p1 = p2
  | Leaf l1, Leaf l2 ->
    l1.pfn = l2.pfn && Perm.equal l1.perm l2.perm
    && l1.accessed = l2.accessed && l1.dirty = l2.dirty
    && l1.global = l2.global
  | (Absent | Table _ | Leaf _), _ -> false

let to_string = function
  | Absent -> "absent"
  | Table { pfn } -> Printf.sprintf "table->%#x" pfn
  | Leaf { pfn; perm; accessed; dirty; global } ->
    Printf.sprintf "leaf->%#x %s%s%s%s" pfn (Perm.to_string perm)
      (if accessed then " A" else "")
      (if dirty then " D" else "")
      (if global then " G" else "")

let pp fmt t = Format.pp_print_string fmt (to_string t)
