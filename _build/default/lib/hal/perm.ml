(* Access permissions attached to a virtual page.

   [cow] is the software-only copy-on-write marker from the paper (Fig 8:
   "Use the first unused bit as copy-on-write"); it lives in a
   software-available PTE bit on every supported ISA. [mpk_key] models the
   Intel MPK protection-key tag (Table 5 evaluates adding MPK support). *)

type t = {
  read : bool;
  write : bool;
  execute : bool;
  user : bool;
  cow : bool;
  mpk_key : int; (* 0..15; 0 means "no key" on ISAs without MPK *)
}

let make ?(read = true) ?(write = false) ?(execute = false) ?(user = true)
    ?(cow = false) ?(mpk_key = 0) () =
  if mpk_key < 0 || mpk_key > 15 then invalid_arg "Perm.make: mpk_key";
  { read; write; execute; user; cow; mpk_key }

let none = make ~read:false ()
let r = make ()
let rw = make ~write:true ()
let rx = make ~execute:true ()
let rwx = make ~write:true ~execute:true ()

let equal a b =
  a.read = b.read && a.write = b.write && a.execute = b.execute
  && a.user = b.user && a.cow = b.cow && a.mpk_key = b.mpk_key

let with_write t write = { t with write }
let with_cow t cow = { t with cow }
let with_mpk t mpk_key =
  if mpk_key < 0 || mpk_key > 15 then invalid_arg "Perm.with_mpk";
  { t with mpk_key }

let allows t ~write = t.read && ((not write) || t.write)

let to_string t =
  Printf.sprintf "%c%c%c%c%s%s"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if t.execute then 'x' else '-')
    (if t.user then 'u' else 'k')
    (if t.cow then "+cow" else "")
    (if t.mpk_key <> 0 then Printf.sprintf "+pk%d" t.mpk_key else "")

let pp fmt t = Format.pp_print_string fmt (to_string t)
