(** Multi-level radix page-table geometry. Levels count from the leaf:
    level 1 maps 4 KiB pages, level [levels] is the root. *)

type t = {
  name : string;
  levels : int;
  index_bits : int;
  page_shift : int;
  va_bits : int;
}

val x86_64 : t
val riscv_sv48 : t
val arm64_4k : t

val page_size : t -> int
val entries : t -> int

val level_shift : t -> level:int -> int
(** Bit position of the index field for [level] within a virtual address. *)

val coverage : t -> level:int -> int
(** Bytes covered by a single entry at [level]. *)

val index : t -> level:int -> vaddr:int -> int
(** Page-table index of [vaddr] at [level]. *)

val va_limit : t -> int
val check_vaddr : t -> int -> unit

val level_for_size : t -> size:int -> int option
(** Level whose entry coverage is exactly [size], for huge-page mapping. *)

val pages_per_entry : t -> level:int -> int
(** Number of base (4 KiB) pages covered by one entry at [level]. *)
