(** A complete ISA description: page-table geometry plus PTE format. *)

type t = {
  name : string;
  geo : Geometry.t;
  fmt : (module Pte_format.S);
}

val x86_64 : t
val riscv_sv48 : t
val arm64 : t
val all : t list
val find : string -> t

val encode : t -> level:int -> Pte.t -> int64
val decode : t -> level:int -> int64 -> Pte.t
val supports_mpk : t -> bool
val needs_break_before_make : t -> bool
