(** Access permissions of a virtual page, including the software
    copy-on-write marker and the Intel MPK protection-key tag. *)

type t = {
  read : bool;
  write : bool;
  execute : bool;
  user : bool;
  cow : bool;
  mpk_key : int;
}

val make :
  ?read:bool ->
  ?write:bool ->
  ?execute:bool ->
  ?user:bool ->
  ?cow:bool ->
  ?mpk_key:int ->
  unit ->
  t

val none : t
val r : t
val rw : t
val rx : t
val rwx : t
val equal : t -> t -> bool
val with_write : t -> bool -> t
val with_cow : t -> bool -> t
val with_mpk : t -> int -> t

val allows : t -> write:bool -> bool
(** [allows t ~write] tells whether an access (read, or write when [write])
    is permitted. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
