(** ISA-independent decoded page-table entry. A [Leaf] above level 1 is a
    huge-page mapping. *)

type t =
  | Absent
  | Table of { pfn : int }
  | Leaf of {
      pfn : int;
      perm : Perm.t;
      accessed : bool;
      dirty : bool;
      global : bool;
    }

val leaf :
  ?accessed:bool ->
  ?dirty:bool ->
  ?global:bool ->
  pfn:int ->
  perm:Perm.t ->
  unit ->
  t

val is_present : t -> bool
val is_leaf : t -> bool
val is_table : t -> bool
val pfn : t -> int option
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
