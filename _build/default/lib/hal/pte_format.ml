(* The portability layer of CortenMM (paper §4.4, Fig 9).

   CortenMM hides the minor per-ISA differences of the hardware PTE layout
   behind a Rust trait; the OCaml analog is a module signature implemented
   once per ISA. Besides the raw layout the implementation records which
   optional MMU features (MPK protection keys) the format can express —
   Table 5 measures the cost of adding such a feature.

   The paper's assumptions on the format (§4.4) are captured here: the
   software-visible bits must be able to (1) identify validity, (2) tell
   leaves from tables, (3) enforce access permissions, and (4) report
   accessed/dirty state. *)

module type S = sig
  val name : string

  val supports_mpk : bool
  (** Whether the format has protection-key bits (x86-64 PKU only). *)

  val needs_break_before_make : bool
  (** ARM's FEAT_BBM discipline: changing a live translation requires
      writing an invalid entry and invalidating the TLB before the new
      entry is written (paper §4.5). *)

  val encode : level:int -> Pte.t -> int64
  (** Encode a decoded entry into the raw hardware word. Raises
      [Invalid_argument] for entries the format cannot express (e.g. a huge
      leaf at a level the ISA does not support, or an MPK key on an ISA
      without protection keys). *)

  val decode : level:int -> int64 -> Pte.t
  (** Decode a raw word. Total: any word decodes to some entry (unknown bit
      patterns with the valid bit clear are [Absent]). *)
end

(* Shared bit-twiddling helpers for the per-ISA implementations. *)

let bit n = Int64.shift_left 1L n

let get_bit w n = Int64.logand w (bit n) <> 0L

let set_bit w n v = if v then Int64.logor w (bit n) else w

let field w ~lo ~width =
  Int64.to_int
    (Int64.logand (Int64.shift_right_logical w lo)
       (Int64.sub (Int64.shift_left 1L width) 1L))

let set_field w ~lo ~width v =
  if v < 0 || (width < 63 && v >= 1 lsl width) then
    invalid_arg "Pte_format.set_field: value out of range";
  let mask = Int64.shift_left (Int64.sub (Int64.shift_left 1L width) 1L) lo in
  Int64.logor
    (Int64.logand w (Int64.lognot mask))
    (Int64.shift_left (Int64.of_int v) lo)
