(* A complete ISA description: geometry plus PTE format.

   This is the only value the rest of the system needs to be portable
   across x86-64, RISC-V and ARM — the paper's claim that "language
   features" (here, first-class modules) suffice in place of a software-
   level abstraction. *)

type t = {
  name : string;
  geo : Geometry.t;
  fmt : (module Pte_format.S);
}

let x86_64 = { name = "x86-64"; geo = Geometry.x86_64; fmt = (module X86_64) }

let riscv_sv48 =
  { name = "riscv-sv48"; geo = Geometry.riscv_sv48; fmt = (module Riscv_sv48) }

let arm64 = { name = "arm64"; geo = Geometry.arm64_4k; fmt = (module Arm64) }

let all = [ x86_64; riscv_sv48; arm64 ]

let find name =
  match List.find_opt (fun t -> String.equal t.name name) all with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "Isa.find: unknown ISA %S (known: %s)" name
         (String.concat ", " (List.map (fun t -> t.name) all)))

let encode t ~level pte =
  let (module F : Pte_format.S) = t.fmt in
  F.encode ~level pte

let decode t ~level raw =
  let (module F : Pte_format.S) = t.fmt in
  F.decode ~level raw

let supports_mpk t =
  let (module F : Pte_format.S) = t.fmt in
  F.supports_mpk

let needs_break_before_make t =
  let (module F : Pte_format.S) = t.fmt in
  F.needs_break_before_make
