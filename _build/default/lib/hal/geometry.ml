(* Page-table geometry for a multi-level radix-tree MMU.

   The paper's key observation is that x86-64, ARMv8 and RISC-V all share
   this geometry: 4 KiB pages, 512-entry page-table pages, 4 (or 5) levels.
   Levels are numbered from the leaf: level 1 holds PTEs that map 4 KiB
   pages, level [levels] is the root. An entry at level L covers
   [page_size * entries^(L-1)] bytes, which is how huge pages (2 MiB at
   level 2, 1 GiB at level 3) and CortenMM's upper-level "mark" entries
   arise. *)

type t = {
  name : string;
  levels : int;
  index_bits : int;
  page_shift : int;
  va_bits : int;
}

let x86_64 =
  { name = "x86-64 4-level"; levels = 4; index_bits = 9; page_shift = 12; va_bits = 48 }

let riscv_sv48 =
  { name = "RISC-V Sv48"; levels = 4; index_bits = 9; page_shift = 12; va_bits = 48 }

let arm64_4k =
  { name = "ARMv8 4K granule"; levels = 4; index_bits = 9; page_shift = 12; va_bits = 48 }

let page_size t = 1 lsl t.page_shift
let entries t = 1 lsl t.index_bits

let level_shift t ~level =
  if level < 1 || level > t.levels then invalid_arg "Geometry.level_shift";
  t.page_shift + (t.index_bits * (level - 1))

let coverage t ~level = 1 lsl level_shift t ~level

let index t ~level ~vaddr =
  (vaddr lsr level_shift t ~level) land (entries t - 1)

let va_limit t = 1 lsl t.va_bits

let check_vaddr t vaddr =
  if vaddr < 0 || vaddr >= va_limit t then
    invalid_arg (Printf.sprintf "vaddr 0x%x out of range for %s" vaddr t.name)

(* The level whose single entry exactly covers [size] bytes, if any; used by
   the huge-page mapper. *)
let level_for_size t ~size =
  let rec go level =
    if level > t.levels then None
    else if coverage t ~level = size then Some level
    else go (level + 1)
  in
  go 1

(* Number of 4 KiB pages covered by one entry at [level]. *)
let pages_per_entry t ~level = 1 lsl (t.index_bits * (level - 1))
