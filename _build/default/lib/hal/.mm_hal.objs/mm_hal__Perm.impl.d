lib/hal/perm.ml: Format Printf
