lib/hal/isa.ml: Arm64 Geometry List Printf Pte_format Riscv_sv48 String X86_64
