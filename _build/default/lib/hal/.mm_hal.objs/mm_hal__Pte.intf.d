lib/hal/pte.mli: Format Perm
