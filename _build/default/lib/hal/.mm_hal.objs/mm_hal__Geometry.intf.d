lib/hal/geometry.mli:
