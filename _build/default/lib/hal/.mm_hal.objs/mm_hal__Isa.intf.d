lib/hal/isa.mli: Geometry Pte Pte_format
