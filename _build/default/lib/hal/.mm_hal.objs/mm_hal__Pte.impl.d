lib/hal/pte.ml: Format Perm Printf
