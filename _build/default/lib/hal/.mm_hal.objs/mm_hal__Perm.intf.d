lib/hal/perm.mli: Format
