lib/hal/riscv_sv48.ml: Mm_util Perm Pte Pte_format
