lib/hal/pte_format.ml: Int64 Pte
