lib/hal/arm64.ml: Mm_util Perm Pte Pte_format
