lib/hal/x86_64.ml: Mm_util Perm Pte Pte_format
