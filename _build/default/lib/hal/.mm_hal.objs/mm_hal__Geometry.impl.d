lib/hal/geometry.ml: Printf
