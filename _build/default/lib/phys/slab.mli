(** Slab allocator for fixed-size kernel objects (Linux-style, §4.5):
    objects carved from buddy-allocated slabs with embedded free lists;
    empty slabs return to the buddy (one kept in reserve). Object handles
    are synthetic kernel addresses. *)

type t

val create : Phys.t -> name:string -> obj_size:int -> t

val alloc : t -> int
(** Allocate one object; returns its handle. *)

val free : t -> int -> unit
(** Free by handle. Detects double frees, foreign and misaligned
    handles (raises [Invalid_argument]). *)

val allocated : t -> int
val slab_count : t -> int

val bytes_reserved : t -> int
(** Frame bytes currently held by the cache (shows up in {!Phys.usage}
    as kernel frames). *)

val objs_per_slab : t -> int
