(* Slab allocator for fixed-size kernel objects, following Linux's design
   (the paper §4.5: "The physical memory allocator and kernel heap
   allocator follow Linux's buddy system allocator and slab allocator").

   A cache serves objects of one size. Objects are carved from slabs —
   one or more contiguous frames obtained from the buddy allocator — with
   an embedded free list (free objects store the index of the next free
   object). Slabs move between the lists as they fill: free, partial, full;
   allocation always serves from a partial slab (or makes a new one), and
   freeing a slab's last object returns its frames to the buddy.

   Used for vm_area_structs in the Linux baseline and per-PTE metadata
   arrays in CortenMM, replacing plain byte accounting with a real
   allocator whose frame usage shows up in {!Phys.usage}. *)

type slab = {
  frame : Frame.t; (* head frame of the slab's block *)
  capacity : int;
  next_free : int array; (* embedded free list: -1 terminates *)
  mutable free_head : int; (* -1 when full *)
  mutable in_use : int;
}

type t = {
  phys : Phys.t;
  name : string;
  obj_size : int;
  order : int; (* frames per slab = 2^order *)
  objs_per_slab : int;
  mutable partial : slab list;
  mutable empty_reserve : slab option; (* keep one empty slab cached *)
  by_addr : (int, slab) Hashtbl.t; (* slab base address -> slab *)
  mutable allocated : int;
  mutable slabs : int;
}

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

(* Object handles are synthetic "kernel addresses": slab base (pfn-derived)
   plus object offset. *)
let page_size = 4096

let create phys ~name ~obj_size =
  if obj_size <= 0 || obj_size > 2 * page_size then
    invalid_arg "Slab.create: object size";
  (* Pick the slab order so a slab holds at least 8 objects. *)
  let order =
    let rec go o =
      if o >= 4 then 4
      else if (page_size lsl o) / obj_size >= 8 then o
      else go (o + 1)
    in
    go 0
  in
  {
    phys;
    name;
    obj_size;
    order;
    objs_per_slab = (page_size lsl order) / obj_size;
    partial = [];
    empty_reserve = None;
    by_addr = Hashtbl.create 16;
    allocated = 0;
    slabs = 0;
  }

let slab_base (s : slab) = s.frame.Frame.pfn * page_size

let new_slab t =
  charge Mm_sim.Cost.page_alloc;
  let frame = Phys.alloc t.phys ~kind:Frame.Kernel ~order:t.order () in
  let next_free =
    Array.init t.objs_per_slab (fun i ->
        if i = t.objs_per_slab - 1 then -1 else i + 1)
  in
  let s = { frame; capacity = t.objs_per_slab; next_free; free_head = 0; in_use = 0 } in
  t.slabs <- t.slabs + 1;
  Hashtbl.replace t.by_addr (slab_base s) s;
  s

let alloc t =
  charge Mm_sim.Cost.cache_hit;
  let s =
    match t.partial with
    | s :: _ -> s
    | [] -> (
      match t.empty_reserve with
      | Some s ->
        t.empty_reserve <- None;
        t.partial <- [ s ];
        s
      | None ->
        let s = new_slab t in
        t.partial <- [ s ];
        s)
  in
  let idx = s.free_head in
  assert (idx >= 0);
  s.free_head <- s.next_free.(idx);
  s.in_use <- s.in_use + 1;
  t.allocated <- t.allocated + 1;
  if s.free_head = -1 then
    (* Slab is now full: drop it from the partial list. *)
    t.partial <- List.filter (fun x -> not (x == s)) t.partial;
  slab_base s + (idx * t.obj_size)

let slab_of t addr =
  let base = addr - (addr mod (page_size lsl t.order)) in
  match Hashtbl.find_opt t.by_addr base with
  | Some s -> s
  | None -> invalid_arg (t.name ^ ": free of an address not from this cache")

let free t addr =
  charge Mm_sim.Cost.cache_hit;
  let s = slab_of t addr in
  let off = addr - slab_base s in
  if off mod t.obj_size <> 0 then invalid_arg (t.name ^ ": misaligned free");
  let idx = off / t.obj_size in
  (* Double-free detection: walk the embedded free list. *)
  let rec on_free_list i = i = idx || (i >= 0 && on_free_list s.next_free.(i)) in
  if on_free_list s.free_head then invalid_arg (t.name ^ ": double free");
  let was_full = s.free_head = -1 in
  s.next_free.(idx) <- s.free_head;
  s.free_head <- idx;
  s.in_use <- s.in_use - 1;
  t.allocated <- t.allocated - 1;
  if was_full then t.partial <- s :: t.partial;
  if s.in_use = 0 then begin
    (* Empty: keep one in reserve, return the rest to the buddy. *)
    t.partial <- List.filter (fun x -> not (x == s)) t.partial;
    match t.empty_reserve with
    | None -> t.empty_reserve <- Some s
    | Some _ ->
      Hashtbl.remove t.by_addr (slab_base s);
      t.slabs <- t.slabs - 1;
      charge Mm_sim.Cost.page_free;
      Phys.free t.phys s.frame
  end

let allocated t = t.allocated
let slab_count t = t.slabs
let bytes_reserved t = t.slabs * (page_size lsl t.order)
let objs_per_slab t = t.objs_per_slab
