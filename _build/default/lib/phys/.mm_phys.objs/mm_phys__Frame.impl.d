lib/phys/frame.ml: Format Mm_sim
