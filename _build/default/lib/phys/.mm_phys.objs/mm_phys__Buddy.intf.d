lib/phys/buddy.mli:
