lib/phys/slab.mli: Phys
