lib/phys/slab.ml: Array Frame Hashtbl List Mm_sim Phys
