lib/phys/buddy.ml: Array Hashtbl Mm_util
