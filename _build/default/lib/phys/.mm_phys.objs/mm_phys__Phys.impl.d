lib/phys/phys.ml: Array Buddy Frame Hashtbl
