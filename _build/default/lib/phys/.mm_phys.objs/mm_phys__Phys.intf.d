lib/phys/phys.mli: Buddy Frame
