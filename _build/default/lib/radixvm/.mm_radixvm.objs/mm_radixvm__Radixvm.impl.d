lib/radixvm/radixvm.ml: Array Cortenmm Geometry Isa Mm_hal Mm_phys Mm_pt Mm_sim Mm_tlb Mm_util Perm Pte
