lib/radixvm/radixvm.mli: Mm_hal Mm_phys
