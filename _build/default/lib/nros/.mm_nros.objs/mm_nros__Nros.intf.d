lib/nros/nros.mli: Mm_hal Mm_phys
