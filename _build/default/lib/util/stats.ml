(* Small statistics helpers used by the benchmark harness. *)

let mean xs =
  match Array.length xs with
  | 0 -> nan
  | n -> Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  match Array.length xs with
  | 0 | 1 -> 0.0
  | n ->
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)

let median xs = percentile xs 50.0

let geomean xs =
  match Array.length xs with
  | 0 -> nan
  | n ->
    let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
    exp (acc /. float_of_int n)

(* Throughput conversion: the simulator reports virtual cycles; we present
   results as operations per simulated second assuming a 3 GHz clock, purely
   for readability of the tables. *)
let cycles_per_second = 3_000_000_000.0

let ops_per_second ~ops ~cycles =
  if cycles <= 0 then 0.0
  else float_of_int ops /. (float_of_int cycles /. cycles_per_second)

let speedup ~baseline ~value = if baseline = 0.0 then nan else value /. baseline
