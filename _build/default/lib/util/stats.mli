(** Statistics helpers for the benchmark harness. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation. *)

val median : float array -> float
val geomean : float array -> float

val cycles_per_second : float
(** Nominal simulated clock (3 GHz) used to present cycle counts as
    per-second throughput in the tables. *)

val ops_per_second : ops:int -> cycles:int -> float
val speedup : baseline:float -> value:float -> float
