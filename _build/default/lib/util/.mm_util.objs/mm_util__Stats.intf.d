lib/util/stats.mli:
