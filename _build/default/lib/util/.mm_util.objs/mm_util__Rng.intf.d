lib/util/rng.mli:
