lib/util/align.ml:
