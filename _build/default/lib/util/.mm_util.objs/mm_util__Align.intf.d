lib/util/align.mli:
