(* Deterministic xorshift64* pseudo-random number generator.

   Every stochastic component of the reproduction (workload generators,
   schedules, property tests that need auxiliary randomness) draws from an
   explicitly seeded [Rng.t] so that simulation runs are bit-reproducible.
   The generator is splittable: [split] derives an independent stream, which
   lets each virtual CPU own a private stream without cross-CPU coupling. *)

type t = { mutable state : int64 }

let create ~seed =
  (* A zero state would make xorshift degenerate; nudge it. *)
  let s = Int64.of_int seed in
  { state = (if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s) }

let next_int64 t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let next t = Int64.to_int (next_int64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = next t land 1 = 1

let float t =
  (* 53 bits of mantissa out of the 62 available. *)
  float_of_int (next t land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53)

let split t =
  let s = next_int64 t in
  { state = (if Int64.equal s 0L then 0x6A09E667F3BCC909L else s) }

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
