(* Power-of-two alignment arithmetic shared by the page-table code. *)

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  if not (is_pow2 x) then invalid_arg "Align.log2: not a power of two";
  let rec go acc x = if x = 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let down x align =
  if not (is_pow2 align) then invalid_arg "Align.down: bad alignment";
  x land lnot (align - 1)

let up x align =
  if not (is_pow2 align) then invalid_arg "Align.up: bad alignment";
  (x + align - 1) land lnot (align - 1)

let is_aligned x align =
  if not (is_pow2 align) then invalid_arg "Align.is_aligned: bad alignment";
  x land (align - 1) = 0

let div_round_up x d = (x + d - 1) / d
