(** Power-of-two alignment arithmetic. All [align] arguments must be powers
    of two; the functions raise [Invalid_argument] otherwise. *)

val is_pow2 : int -> bool
val log2 : int -> int
val down : int -> int -> int
val up : int -> int -> int
val is_aligned : int -> int -> bool
val div_round_up : int -> int -> int
