(** Deterministic, splittable xorshift64* pseudo-random number generator.

    All randomness in the reproduction flows through explicitly seeded
    generators so that every experiment is bit-reproducible. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val next : t -> int
(** Next non-negative pseudo-random integer (uniform over 62 bits). *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the generator. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [lo, hi]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** Derive an independent generator; the parent advances by one step. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element. Raises on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
