(** MM operation traces: a portable text format (regions referenced by
    symbolic ids so a trace replays on any system regardless of its VA
    allocator), a synthetic generator with workload profiles, and a
    replayer driving any of the evaluated systems. *)

type op =
  | T_mmap of { id : int; len : int; writable : bool }
  | T_munmap of { id : int }
  | T_touch of { id : int; page : int; write : bool }
  | T_mprotect of { id : int; writable : bool }

type entry = { cpu : int; op : op }
type t = { ncpus : int; entries : entry array }

exception Parse_error of int * string

val entry_to_string : entry -> string
val entry_of_string : line:int -> string -> entry
val save : t -> string -> unit
val load : string -> t

type profile = Churn | Faults | Mixed

val profile_name : profile -> string
val profile_of_name : string -> profile option

val generate : profile:profile -> ncpus:int -> ops_per_cpu:int -> seed:int -> t
(** Deterministic synthetic trace: [Churn] = allocator-like
    map/touch/unmap cycles; [Faults] = few large regions, many touches;
    [Mixed] = a blend with occasional mprotects. *)

type replay_stats = {
  result : Runner.result;
  mmaps : int;
  munmaps : int;
  touches : int;
  faults_denied : int;
}

val replay : ?isa:Mm_hal.Isa.t -> kind:System.kind -> t -> replay_stats
(** Replay the trace's per-CPU streams on a fresh instance of the system
    (pre-warmed); unknown/defunct region references are skipped, denied
    accesses counted. *)
