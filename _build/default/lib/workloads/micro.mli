(** The five microbenchmarks of the paper's Table 3, in low-contention
    (thread-private arenas) and high-contention (random chunks of one
    shared region) variants, with warmed-up steady-state measurement. *)

type bench = Mmap | Mmap_pf | Unmap_virt | Unmap | Pf

val bench_name : bench -> string
val all_benches : bench list

type contention = Low | High

val contention_name : contention -> string

val region_len : int
(** 16 KiB, as in the paper. *)

val supported : System.kind -> bench -> bool
(** NrOS has no demand paging: PF and unmap-virt do not apply. *)

val run :
  ?isa:Mm_hal.Isa.t ->
  kind:System.kind ->
  ncpus:int ->
  bench:bench ->
  contention:contention ->
  iters:int ->
  unit ->
  Runner.result option
(** One (system, bench, contention, cores) cell: setup, warmup and
    measurement in one simulation world separated by barriers; [None]
    when the system does not support the bench. *)
