(* A uniform façade over the five evaluated systems (CortenMM_adv,
   CortenMM_rw and its ablations, Linux, RadixVM, NrOS) so the benchmark
   drivers are system-agnostic. Instances are records of closures; the
   [kind] is retained for capability checks (Table 2) and for workloads
   that need fork. *)

module Perm = Mm_hal.Perm

type kind =
  | Corten of Cortenmm.Config.t
  | Linux
  | Radixvm
  | Nros

let kind_name = function
  | Corten cfg -> Cortenmm.Config.name cfg
  | Linux -> "linux"
  | Radixvm -> "radixvm"
  | Nros -> "nros"

type mem_stats = {
  pt_bytes : int; (* page tables, all replicas *)
  kernel_bytes : int; (* VMAs, metadata arrays, radix nodes... *)
  resident_bytes : int; (* user data frames, now *)
  peak_resident_bytes : int; (* user data frames, high-water mark *)
}

type t = {
  kind : kind;
  name : string;
  ncpus : int;
  page_size : int;
  demand_paging : bool;
  mmap : ?addr:int -> len:int -> perm:Perm.t -> unit -> int;
  munmap : addr:int -> len:int -> unit;
  touch : vaddr:int -> write:bool -> unit; (* raises on SIGSEGV *)
  touch_range : addr:int -> len:int -> write:bool -> unit;
  mprotect : (addr:int -> len:int -> perm:Perm.t -> unit) option;
  timer_tick : unit -> unit;
  mem_stats : unit -> mem_stats;
}

let make ?(isa = Mm_hal.Isa.x86_64) kind ~ncpus =
  let ps = Mm_hal.Geometry.page_size isa.Mm_hal.Isa.geo in
  match kind with
  | Corten cfg ->
    let kernel = Cortenmm.Kernel.create ~isa ~ncpus () in
    let asp = Cortenmm.Addr_space.create kernel cfg in
    {
      kind;
      name = Cortenmm.Config.name cfg;
      ncpus;
      page_size = ps;
      demand_paging = true;
      mmap =
        (fun ?addr ~len ~perm () -> Cortenmm.Mm.mmap asp ?addr ~len ~perm ());
      munmap = (fun ~addr ~len -> Cortenmm.Mm.munmap asp ~addr ~len);
      touch = (fun ~vaddr ~write -> Cortenmm.Mm.touch asp ~vaddr ~write);
      touch_range =
        (fun ~addr ~len ~write -> Cortenmm.Mm.touch_range asp ~addr ~len ~write);
      mprotect =
        Some (fun ~addr ~len ~perm -> Cortenmm.Mm.mprotect asp ~addr ~len ~perm);
      timer_tick = (fun () -> Cortenmm.Mm.timer_tick asp);
      mem_stats =
        (fun () ->
          let s = Cortenmm.Addr_space.mem_stats asp in
          let u = Mm_phys.Phys.usage kernel.Cortenmm.Kernel.phys in
          {
            pt_bytes = s.Cortenmm.Addr_space.pt_bytes;
            kernel_bytes = s.Cortenmm.Addr_space.meta_bytes;
            resident_bytes = u.Mm_phys.Phys.anon_bytes;
            peak_resident_bytes =
              Mm_phys.Phys.peak_data_bytes kernel.Cortenmm.Kernel.phys;
          });
    }
  | Linux ->
    let t = Mm_linux.Linux_mm.create ~isa ~ncpus () in
    {
      kind;
      name = "linux";
      ncpus;
      page_size = ps;
      demand_paging = true;
      mmap =
        (fun ?addr ~len ~perm () -> Mm_linux.Linux_mm.mmap t ?addr ~len ~perm ());
      munmap = (fun ~addr ~len -> Mm_linux.Linux_mm.munmap t ~addr ~len);
      touch = (fun ~vaddr ~write -> Mm_linux.Linux_mm.touch t ~vaddr ~write);
      touch_range =
        (fun ~addr ~len ~write ->
          Mm_linux.Linux_mm.touch_range t ~addr ~len ~write);
      mprotect =
        Some
          (fun ~addr ~len ~perm ->
            Mm_linux.Linux_mm.mprotect t ~addr ~len ~perm);
      timer_tick = (fun () -> ());
      mem_stats =
        (fun () ->
          let u = Mm_phys.Phys.usage (Mm_linux.Linux_mm.phys t) in
          {
            pt_bytes = Mm_linux.Linux_mm.pt_page_count t * ps;
            kernel_bytes = u.Mm_phys.Phys.kernel_bytes;
            resident_bytes = u.Mm_phys.Phys.anon_bytes;
            peak_resident_bytes =
              Mm_phys.Phys.peak_data_bytes (Mm_linux.Linux_mm.phys t);
          });
    }
  | Radixvm ->
    let t = Mm_radixvm.Radixvm.create ~isa ~ncpus () in
    {
      kind;
      name = "radixvm";
      ncpus;
      page_size = ps;
      demand_paging = true;
      mmap =
        (fun ?addr ~len ~perm () -> Mm_radixvm.Radixvm.mmap t ?addr ~len ~perm ());
      munmap = (fun ~addr ~len -> Mm_radixvm.Radixvm.munmap t ~addr ~len);
      touch = (fun ~vaddr ~write -> Mm_radixvm.Radixvm.touch t ~vaddr ~write);
      touch_range =
        (fun ~addr ~len ~write ->
          Mm_radixvm.Radixvm.touch_range t ~addr ~len ~write);
      mprotect = None;
      timer_tick = (fun () -> ());
      mem_stats =
        (fun () ->
          let u = Mm_phys.Phys.usage (Mm_radixvm.Radixvm.phys t) in
          {
            pt_bytes = Mm_radixvm.Radixvm.replicated_pt_bytes t;
            kernel_bytes = Mm_radixvm.Radixvm.radix_bytes t;
            resident_bytes = u.Mm_phys.Phys.anon_bytes;
            peak_resident_bytes =
              Mm_phys.Phys.peak_data_bytes (Mm_radixvm.Radixvm.phys t);
          });
    }
  | Nros ->
    let t = Mm_nros.Nros.create ~isa ~ncpus () in
    {
      kind;
      name = "nros";
      ncpus;
      page_size = ps;
      demand_paging = false;
      mmap = (fun ?addr ~len ~perm () -> Mm_nros.Nros.mmap t ?addr ~len ~perm ());
      munmap = (fun ~addr ~len -> Mm_nros.Nros.munmap t ~addr ~len);
      touch = (fun ~vaddr ~write -> Mm_nros.Nros.touch t ~vaddr ~write);
      touch_range =
        (fun ~addr ~len ~write -> Mm_nros.Nros.touch_range t ~addr ~len ~write);
      mprotect = None;
      timer_tick = (fun () -> ());
      mem_stats =
        (fun () ->
          let u = Mm_phys.Phys.usage (Mm_nros.Nros.phys t) in
          {
            pt_bytes = Mm_nros.Nros.replicated_pt_bytes t;
            kernel_bytes = u.Mm_phys.Phys.kernel_bytes;
            resident_bytes = u.Mm_phys.Phys.anon_bytes;
            peak_resident_bytes =
              Mm_phys.Phys.peak_data_bytes (Mm_nros.Nros.phys t);
          });
    }

(* The feature matrix of the paper's Table 2 (claims of the respective
   papers/systems, reproduced verbatim). *)
let table2_features =
  [
    ( "linux",
      [ true; true; true; true; true; true; true ] );
    ( "radixvm",
      [ true; true; false; false; true; false; true ] );
    ( "nros",
      [ false; false; false; false; false; true; true ] );
    ( "cortenmm",
      [ true; true; true; true; true; true; false ] );
  ]

let table2_headers =
  [
    "On-demand paging";
    "COW";
    "Page swapping";
    "Reverse mapping";
    "mmaped file";
    "Huge page";
    "NUMA policy";
  ]

(* What our reproduction actually implements (printed next to the paper's
   claims for honesty). *)
let implemented_features =
  [
    ("linux", [ true; true; false; false; false; false; false ]);
    ("radixvm", [ true; false; false; false; false; false; false ]);
    ("nros", [ false; false; false; false; false; false; false ]);
    (* NUMA policies are implemented here as an extension (the paper's
       CortenMM lacks them; see ext-numa). *)
    ("cortenmm", [ true; true; true; true; true; true; true ]);
  ]


(* Warm the calling CPU's share of the address space: one throwaway
   mapping materializes the PT chain (and, for CortenMM's adv protocol,
   keeps the covering page of later transactions at the leaf level rather
   than the root). Application drivers call this in their prep phase —
   real processes run in address spaces warmed by their startup. *)
let warm (t : t) ~cpu:_ =
  let a = t.mmap ~len:t.page_size ~perm:Mm_hal.Perm.rw () in
  (if t.demand_paging then
     try t.touch ~vaddr:a ~write:true with _ -> ());
  t.munmap ~addr:a ~len:t.page_size
