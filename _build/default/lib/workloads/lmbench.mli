(** LMbench-style process benchmarks (paper Fig 20): fork, fork+exec and
    shell, which exercise address-space enumeration — CortenMM's worst
    case (page-table walk) versus Linux's VMA list. *)

type bench = Fork | Fork_exec | Shell

val bench_name : bench -> string

val run :
  kind:[ `Corten of Cortenmm.Config.t | `Linux ] ->
  bench:bench ->
  ?iters:int ->
  unit ->
  int
(** Average cycles per iteration (lower is better), measured on a
    populated process image. *)
