(** Application workload models reproducing the paper's §6.4 MM operation
    mixes: JVM thread creation (Fig 16 left), metis map-reduce (Fig 16
    right), dedup and psearchy under allocator models (Fig 17), and
    compute-bound PARSEC kernels (Figs 15/21). *)

val jvm_thread_creation :
  ?isa:Mm_hal.Isa.t -> kind:System.kind -> nthreads:int -> unit -> int
(** N threads each map, guard and first-touch a stack in a pre-warmed
    address space; returns cycles (lower is better). *)

val metis :
  ?isa:Mm_hal.Isa.t ->
  kind:System.kind ->
  ncpus:int ->
  ?chunks_per_thread:int ->
  unit ->
  Runner.result * System.t
(** Map phase scans a shared input (read faults); workers allocate 8 MiB
    chunks never returned to the kernel; a shuffle phase reads the other
    workers' chunks (which is what forces RadixVM to replicate page
    tables, Fig 22). *)

val dedup :
  ?isa:Mm_hal.Isa.t ->
  kind:System.kind ->
  alloc_kind:Alloc_model.kind ->
  ncpus:int ->
  ?iters_per_thread:int ->
  unit ->
  Runner.result * System.t
(** High allocation churn through the user allocator plus a shared
    deduplication hash table that limits scaling past ~64 threads. *)

val psearchy :
  ?isa:Mm_hal.Isa.t ->
  kind:System.kind ->
  alloc_kind:Alloc_model.kind ->
  ncpus:int ->
  ?files_per_thread:int ->
  unit ->
  Runner.result * System.t
(** File indexing: map a chunk, read every page, index into
    allocator-backed postings, unmap. *)

type parsec = {
  p_name : string;
  work_cycles : int;
  items : int;
  resident : int;
  reuse_pages : int;
}

val parsec_others : parsec list
(** The ten non-MM-bound PARSEC benchmarks modelled as compute kernels
    with modest resident sets. *)

val run_parsec :
  ?isa:Mm_hal.Isa.t -> kind:System.kind -> ncpus:int -> parsec -> Runner.result
