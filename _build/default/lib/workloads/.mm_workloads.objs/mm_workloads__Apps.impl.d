lib/workloads/apps.ml: Alloc_model Array Mm_hal Mm_sim Mm_util Runner System
