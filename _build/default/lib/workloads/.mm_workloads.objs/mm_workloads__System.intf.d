lib/workloads/system.mli: Cortenmm Mm_hal
