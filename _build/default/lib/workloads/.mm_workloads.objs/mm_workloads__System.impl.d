lib/workloads/system.ml: Cortenmm Mm_hal Mm_linux Mm_nros Mm_phys Mm_radixvm
