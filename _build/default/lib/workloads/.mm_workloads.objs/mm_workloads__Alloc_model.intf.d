lib/workloads/alloc_model.mli: System
