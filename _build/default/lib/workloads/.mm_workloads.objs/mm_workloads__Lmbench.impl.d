lib/workloads/lmbench.ml: Cortenmm List Mm_hal Mm_linux Mm_sim
