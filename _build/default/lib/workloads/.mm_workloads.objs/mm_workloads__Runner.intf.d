lib/workloads/runner.mli:
