lib/workloads/micro.mli: Mm_hal Runner System
