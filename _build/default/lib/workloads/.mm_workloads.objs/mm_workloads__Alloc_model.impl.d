lib/workloads/alloc_model.ml: Hashtbl List Mm_hal Mm_util Queue System
