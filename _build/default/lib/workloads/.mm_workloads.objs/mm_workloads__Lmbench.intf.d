lib/workloads/lmbench.mli: Cortenmm
