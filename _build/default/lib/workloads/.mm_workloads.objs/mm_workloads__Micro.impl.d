lib/workloads/micro.ml: Array Mm_hal Mm_util Runner System
