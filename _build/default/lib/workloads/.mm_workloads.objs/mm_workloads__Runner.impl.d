lib/workloads/runner.ml: Array List Mm_sim Mm_util
