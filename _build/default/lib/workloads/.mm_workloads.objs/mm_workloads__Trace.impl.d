lib/workloads/trace.ml: Array Hashtbl List Mm_hal Mm_util Printf Runner String System
