lib/workloads/apps.mli: Alloc_model Mm_hal Runner System
