lib/workloads/trace.mli: Mm_hal Runner System
