(** A uniform façade over the evaluated systems (CortenMM and its
    ablations, Linux, RadixVM, NrOS) so benchmark drivers are
    system-agnostic. *)

type kind =
  | Corten of Cortenmm.Config.t
  | Linux
  | Radixvm
  | Nros

val kind_name : kind -> string

type mem_stats = {
  pt_bytes : int; (** page tables, all replicas *)
  kernel_bytes : int; (** VMAs, metadata arrays, radix nodes *)
  resident_bytes : int; (** user data frames, now *)
  peak_resident_bytes : int; (** user data frames, high-water mark *)
}

type t = {
  kind : kind;
  name : string;
  ncpus : int;
  page_size : int;
  demand_paging : bool;
  mmap : ?addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit -> int;
  munmap : addr:int -> len:int -> unit;
  touch : vaddr:int -> write:bool -> unit;
  touch_range : addr:int -> len:int -> write:bool -> unit;
  mprotect : (addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit) option;
  timer_tick : unit -> unit;
  mem_stats : unit -> mem_stats;
}

val make : ?isa:Mm_hal.Isa.t -> kind -> ncpus:int -> t

val warm : t -> cpu:int -> unit
(** One throwaway mapping on the calling CPU's fiber, materializing its
    share's PT chain — application drivers run this in their prep phase
    (real processes run in address spaces warmed by startup). *)

val table2_features : (string * bool list) list
(** The paper's Table 2 claims. *)

val table2_headers : string list

val implemented_features : (string * bool list) list
(** What this reproduction actually implements, printed for honesty. *)
