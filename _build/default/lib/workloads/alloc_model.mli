(** User-space allocator models (paper §6.4): ptmalloc returns freed
    memory to the OS eagerly (frequent munmap); tcmalloc caches frees in
    user space and rarely unmaps — trading resident memory for fewer
    kernel MM operations (Figs 17/18). Per-thread instances. *)

type kind = Ptmalloc | Tcmalloc

val kind_name : kind -> string

type t

val create : kind:kind -> sys:System.t -> t

val alloc : t -> size:int -> int
(** Allocate and first-touch a block; returns its address. Large blocks
    (>= 128 KiB) map directly; small ones carve from 1 MiB arenas. *)

val free : t -> addr:int -> size:int -> unit

val mmap_calls : t -> int
val munmap_calls : t -> int
val cached_bytes : t -> int
