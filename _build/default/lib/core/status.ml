(* Virtual-page state — the paper's Fig 4 [Status] enum.

   CortenMM stores, per PTE slot, the state that cannot live in the MMU
   itself. A slot of an upper-level PT page can carry a status for its
   whole coverage ("using upper-level PT pages to represent large memory
   regions with identical status"). The hardware-visible part of a page's
   state (a present mapping and its permissions) lives in the PTE; [query]
   combines both views into this public type. *)

open Mm_hal

type t =
  | Invalid
  | Mapped of { pfn : int; perm : Perm.t }
  (* Virtually allocated page states (not backed by a physical page): *)
  | Private_anon of Perm.t
  | Private_file of { file : File.t; offset : int; perm : Perm.t }
  | Shared_anon of { shm : File.t; offset : int; perm : Perm.t }
  | Swapped of { dev : Blockdev.t; block : int; perm : Perm.t }

let perm = function
  | Invalid -> None
  | Mapped { perm; _ }
  | Private_anon perm
  | Private_file { perm; _ }
  | Shared_anon { perm; _ }
  | Swapped { perm; _ } ->
    Some perm

let with_perm t p =
  match t with
  | Invalid -> Invalid
  | Mapped m -> Mapped { m with perm = p }
  | Private_anon _ -> Private_anon p
  | Private_file f -> Private_file { f with perm = p }
  | Shared_anon s -> Shared_anon { s with perm = p }
  | Swapped s -> Swapped { s with perm = p }

let is_virtually_allocated = function
  | Private_anon _ | Private_file _ | Shared_anon _ | Swapped _ -> true
  | Invalid | Mapped _ -> false

let equal a b =
  match (a, b) with
  | Invalid, Invalid -> true
  | Mapped a, Mapped b -> a.pfn = b.pfn && Perm.equal a.perm b.perm
  | Private_anon p, Private_anon q -> Perm.equal p q
  | Private_file a, Private_file b ->
    File.id a.file = File.id b.file
    && a.offset = b.offset && Perm.equal a.perm b.perm
  | Shared_anon a, Shared_anon b ->
    File.id a.shm = File.id b.shm
    && a.offset = b.offset && Perm.equal a.perm b.perm
  | Swapped a, Swapped b ->
    a.block = b.block && Perm.equal a.perm b.perm
  | (Invalid | Mapped _ | Private_anon _ | Private_file _ | Shared_anon _
    | Swapped _), _ ->
    false

let to_string = function
  | Invalid -> "invalid"
  | Mapped { pfn; perm } ->
    Printf.sprintf "mapped(%#x,%s)" pfn (Perm.to_string perm)
  | Private_anon p -> Printf.sprintf "anon(%s)" (Perm.to_string p)
  | Private_file { file; offset; perm } ->
    Printf.sprintf "file(%s@%d,%s)" (File.name file) offset
      (Perm.to_string perm)
  | Shared_anon { shm; offset; perm } ->
    Printf.sprintf "shm(%s@%d,%s)" (File.name shm) offset
      (Perm.to_string perm)
  | Swapped { dev; block; perm } ->
    Printf.sprintf "swapped(%s@%d,%s)" (Blockdev.name dev) block
      (Perm.to_string perm)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* -- The per-PTE metadata entry (internal representation) --

   What the metadata array actually stores per slot. A [Mapped] page's
   permissions live in the PTE; the metadata remembers only its *origin*
   (anonymous, file, shm) so that unmap/writeback/swap know where the page
   came from. Virtually-allocated state is stored wholesale. *)

type origin = O_anon | O_file of File.t * int | O_shm of File.t * int

type meta_entry =
  | M_invalid
  | M_resident of origin (* PTE at this slot holds the mapping *)
  | M_alloc of { origin : origin; perm : Perm.t; policy : Numa.policy }
    (* allocated, unmapped; the NUMA policy lives here (paper §4.5) *)
  | M_swapped of { dev : Blockdev.t; block : int; perm : Perm.t }

(* Bytes accounted per metadata entry: the paper's upper bound doubles a
   4 KiB PT page with a fully-populated array of 512 entries → 8 B/entry. *)
let meta_entry_bytes = 8
