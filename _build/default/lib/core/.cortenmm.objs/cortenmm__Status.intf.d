lib/core/status.mli: Blockdev File Format Mm_hal Numa Perm
