lib/core/va_alloc.ml: Array Hashtbl Mm_sim Mm_util Queue
