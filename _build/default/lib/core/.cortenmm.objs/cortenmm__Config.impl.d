lib/core/config.ml: Mm_tlb
