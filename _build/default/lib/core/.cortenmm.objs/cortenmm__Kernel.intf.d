lib/core/kernel.mli: Hashtbl Mm_hal Mm_phys Mm_sim
