lib/core/blockdev.ml: Hashtbl Mm_sim Queue
