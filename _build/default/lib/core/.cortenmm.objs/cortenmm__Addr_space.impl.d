lib/core/addr_space.ml: Array Blockdev Config File Geometry Isa Kernel List Mm_hal Mm_phys Mm_pt Mm_sim Mm_tlb Mm_util Numa Perm Printf Pte Status Va_alloc
