lib/core/status.ml: Blockdev File Format Mm_hal Numa Perm Printf
