lib/core/kernel.ml: Array Hashtbl List Mm_hal Mm_phys Mm_sim
