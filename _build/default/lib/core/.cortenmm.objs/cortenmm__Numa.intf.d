lib/core/numa.mli:
