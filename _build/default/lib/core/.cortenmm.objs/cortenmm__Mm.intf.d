lib/core/mm.mli: Addr_space Blockdev File Mm_hal Numa
