lib/core/mm.ml: Addr_space Blockdev Config File Geometry Isa Kernel List Mm_hal Mm_phys Mm_pt Mm_sim Mm_tlb Mm_util Numa Perm Pte Status Va_alloc
