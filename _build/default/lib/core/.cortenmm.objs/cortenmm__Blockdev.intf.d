lib/core/blockdev.mli:
