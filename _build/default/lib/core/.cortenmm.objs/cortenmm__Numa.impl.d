lib/core/numa.ml: List Printf String
