lib/core/swapd.ml: Addr_space Array Kernel List Mm Mm_hal Mm_pt Mm_sim Mm_tlb
