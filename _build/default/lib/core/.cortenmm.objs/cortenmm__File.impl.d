lib/core/file.ml: Blockdev Hashtbl List Mm_phys Mm_sim Printf
