lib/core/file.mli: Mm_phys
