lib/core/swapd.mli: Addr_space Blockdev
