lib/core/va_alloc.mli:
