lib/core/addr_space.mli: Blockdev Config Kernel Mm_hal Mm_phys Mm_pt Mm_tlb Numa Perm Status Va_alloc
