lib/core/config.mli: Mm_tlb
