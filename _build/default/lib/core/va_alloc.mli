(** Virtual address allocator: per-core shares (the paper's §4.5
    optimization) or one lock-protected global share (the ablation). *)

type t

exception Va_exhausted

val create :
  ncpus:int -> per_core:bool -> va_lo:int -> va_hi:int -> page_size:int -> t

val clone : t -> t
(** Fork: the child considers the parent's allocations in use. *)

val alloc : t -> cpu:int -> ?align:int -> len:int -> unit -> int
(** Allocate [len] bytes (a positive page multiple) from the CPU's share;
    freed ranges of the same length are reused. *)

val free : t -> cpu:int -> addr:int -> len:int -> unit
