(** NUMA memory policies, stored in the per-PTE metadata array — the
    paper's stated future work (§4.5), implemented here as an extension.
    Policies mirror Linux's mempolicy modes. *)

type policy =
  | Default (* allocate on the faulting CPU's node *)
  | Bind of int
  | Preferred of int
  | Interleave of int list (* round-robin by page index *)

val to_string : policy -> string
val equal : policy -> policy -> bool

val choose : policy:policy -> local_node:int -> vpn:int -> nnodes:int -> int
(** The node a fault at page [vpn] should allocate from (out-of-range
    nodes fall back to the local one). *)
