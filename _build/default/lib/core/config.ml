(* CortenMM configuration: locking protocol and the two optimizations the
   paper ablates in Fig 16/17 (per-core virtual address allocator and
   advanced TLB shootdown). *)

type protocol = Rw | Adv

let protocol_to_string = function Rw -> "rw" | Adv -> "adv"

type t = {
  protocol : protocol;
  per_core_va : bool;
  tlb_strategy : Mm_tlb.Tlb.strategy;
  thp : bool; (* transparent huge pages: auto-promote full leaf PT pages *)
}

(* The full configurations evaluated in the paper. *)

let adv =
  { protocol = Adv; per_core_va = true; tlb_strategy = Mm_tlb.Tlb.Latr;
    thp = false }

let rw =
  { protocol = Rw; per_core_va = true; tlb_strategy = Mm_tlb.Tlb.Latr;
    thp = false }

(* Ablations (Fig 16/17): [adv_base] disables both optimizations,
   [adv_vpa] enables only the per-core VA allocator. *)
let adv_base =
  { protocol = Adv; per_core_va = false; tlb_strategy = Mm_tlb.Tlb.Sync;
    thp = false }

let adv_vpa =
  { protocol = Adv; per_core_va = true; tlb_strategy = Mm_tlb.Tlb.Sync;
    thp = false }

let with_thp t = { t with thp = true }

let name t =
  match (t.protocol, t.per_core_va, t.tlb_strategy) with
  | Adv, true, Mm_tlb.Tlb.Latr -> "cortenmm-adv"
  | Rw, true, Mm_tlb.Tlb.Latr -> "cortenmm-rw"
  | Adv, false, _ -> "cortenmm-adv_base"
  | Adv, true, _ -> "cortenmm-adv_+vpa"
  | Rw, _, _ -> "cortenmm-rw-variant"
