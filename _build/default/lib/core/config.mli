(** CortenMM configuration: locking protocol plus the two §4.5
    optimizations the paper ablates (per-core VA allocator, advanced TLB
    shootdown). *)

type protocol = Rw | Adv

val protocol_to_string : protocol -> string

type t = {
  protocol : protocol;
  per_core_va : bool;
  tlb_strategy : Mm_tlb.Tlb.strategy;
  thp : bool;
}

val adv : t
(** CortenMM_adv with both optimizations (the paper's headline config). *)

val rw : t
(** CortenMM_rw with both optimizations. *)

val adv_base : t
(** Ablation: adv without either optimization (Fig 16/17 "adv_base"). *)

val adv_vpa : t
(** Ablation: adv with only the per-core VA allocator ("adv_+vpa"). *)

val with_thp : t -> t
(** Enable transparent huge pages (auto-promotion of full leaf PT pages). *)

val name : t -> string
