(** Virtual-page state — the paper's Fig 4 [Status] enum — plus the
    internal per-PTE metadata entry representation. *)

open Mm_hal

type t =
  | Invalid
  | Mapped of { pfn : int; perm : Perm.t }
  | Private_anon of Perm.t
  | Private_file of { file : File.t; offset : int; perm : Perm.t }
  | Shared_anon of { shm : File.t; offset : int; perm : Perm.t }
  | Swapped of { dev : Blockdev.t; block : int; perm : Perm.t }

val perm : t -> Perm.t option
val with_perm : t -> Perm.t -> t
val is_virtually_allocated : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {2 Per-PTE metadata entries}

    What the metadata array of a PT page stores per slot: either nothing,
    the origin of a resident mapping (the permissions live in the PTE), a
    virtually-allocated status possibly covering a whole upper-level
    slot, or a swapped-out page. *)

type origin = O_anon | O_file of File.t * int | O_shm of File.t * int

type meta_entry =
  | M_invalid
  | M_resident of origin
  | M_alloc of { origin : origin; perm : Perm.t; policy : Numa.policy }
  | M_swapped of { dev : Blockdev.t; block : int; perm : Perm.t }

val meta_entry_bytes : int
(** Accounted size of one entry (the paper's upper bound doubles a 4 KiB
    PT page with a fully populated 512-entry array). *)
