(** kswapd-style swap daemon: second-chance (clock) reclaim of resident
    anonymous pages over the hardware accessed bits, swapping through the
    transactional interface. *)

type stats = {
  mutable scanned : int;
  mutable second_chances : int;
  mutable swapped : int;
}

val fresh_stats : unit -> stats

val run_once :
  ?stats:stats -> Addr_space.t -> dev:Blockdev.t -> target:int -> int
(** One clock pass: strip accessed bits from hot pages, swap out up to
    [target] cold ones. Returns how many were reclaimed. *)

val reclaim :
  ?stats:stats -> Addr_space.t -> dev:Blockdev.t -> target:int -> int
(** Repeat passes until [target] is reclaimed or two passes make no
    progress. *)
