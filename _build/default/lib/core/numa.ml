(* NUMA memory policies — the paper's stated future work (§4.5): "We plan
   to incorporate Linux's NUMA policy into CortenMM by storing the state
   of NUMA policy in the per-PTE metadata array." This module implements
   exactly that: the policy lives in the [M_alloc] metadata entries, and
   the page-fault handler consults it when allocating the backing frame.

   The policies mirror Linux's mempolicy modes. *)

type policy =
  | Default (* allocate on the faulting CPU's node (local) *)
  | Bind of int (* always allocate on this node *)
  | Preferred of int (* prefer this node (same as Bind in the model) *)
  | Interleave of int list (* round-robin by page index *)

let to_string = function
  | Default -> "default"
  | Bind n -> Printf.sprintf "bind(%d)" n
  | Preferred n -> Printf.sprintf "preferred(%d)" n
  | Interleave ns ->
    Printf.sprintf "interleave(%s)"
      (String.concat "," (List.map string_of_int ns))

let equal a b = a = b

(* The node a fault at page [vpn] should allocate from, for a CPU on
   [local_node], on a machine with [nnodes] nodes. *)
let choose ~policy ~local_node ~vpn ~nnodes =
  let clamp n = if n >= 0 && n < nnodes then n else local_node in
  match policy with
  | Default -> local_node
  | Bind n | Preferred n -> clamp n
  | Interleave [] -> local_node
  | Interleave nodes -> clamp (List.nth nodes (vpn mod List.length nodes))
