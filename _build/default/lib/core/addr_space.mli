(** The transactional interface to program the MMU — the paper's central
    contribution (Fig 4).

    [lock] runs the configured locking protocol (CortenMM_rw, Fig 5, or
    CortenMM_adv, Fig 6) over the page-table hierarchy and returns a
    cursor; the cursor's operations apply atomically within the locked
    range; [commit] performs the batched TLB shootdown and releases the
    locks in reverse acquisition order. Concurrent transactions serialize
    only when their ranges overlap. *)

open Mm_hal
module Pt = Mm_pt.Pt

(** The per-PTE metadata array attached to each PT page (Fig 3): the
    state that cannot live in the MMU. *)
type meta = {
  slots : Status.meta_entry array;
  mutable live : int;
  slab_handle : int;
}

type node = meta Pt.node

type t

exception Bad_range of string

val va_lo : int
(** Lowest user virtual address handed out by the VA allocator. *)

val create : ?va:Va_alloc.t -> Kernel.t -> Config.t -> t
val id : t -> int
val kernel : t -> Kernel.t
val config : t -> Config.t
val pt : t -> meta Pt.t
val tlb : t -> Mm_tlb.Tlb.t
val va_allocator : t -> Va_alloc.t
val page_size : t -> int

val stale_retries : t -> int
(** How many times the adv protocol's retry loop fired (Fig 6 L10-13). *)

(** {2 Transactions} *)

type cursor

val lock : t -> lo:int -> hi:int -> cursor
(** Run the locking protocol for [lo, hi) (page-aligned, non-empty).
    Raises {!Bad_range} otherwise. *)

val commit : cursor -> unit
(** The RCursor Drop (Fig 4 L23): batched TLB shootdown targeting exactly
    the CPUs recorded as touchers of the affected PT pages, then release
    all locks in reverse order. A cursor must be committed exactly once. *)

val with_lock : t -> lo:int -> hi:int -> (cursor -> 'a) -> 'a
(** [lock], run the function, [commit] (also on exception). *)

val cursor_range : cursor -> int * int
val cursor_covering_level : cursor -> int

(** {2 The basic operations (Fig 4)} *)

val query : cursor -> int -> Status.t
(** Status of the virtual page at an address within the cursor's range. *)

val map :
  cursor ->
  vaddr:int ->
  frame:Mm_phys.Frame.t ->
  perm:Perm.t ->
  ?level:int ->
  ?origin:Status.origin ->
  unit ->
  unit
(** Map a physical frame (or, with [level] > 1, a huge block) at [vaddr],
    replacing any existing leaf; records the reverse mapping and installs
    the caller's TLB entry. *)

val mark : ?policy:Numa.policy -> cursor -> lo:int -> hi:int -> Status.t -> unit
(** Set the status of a range (virtually allocate it), clearing whatever
    was there — one upper-level metadata entry can stand for a whole
    aligned slot. The status must be a virtually-allocated one; the NUMA
    policy is stored alongside it in the metadata (paper §4.5). *)

val set_policy : cursor -> lo:int -> hi:int -> Numa.policy -> unit
(** Rewrite the NUMA policy of the virtually-allocated slots in the range
    (mbind semantics: resident pages are not migrated). *)

val policy_at : cursor -> int -> Numa.policy
(** The policy recorded for an unmapped page (the fault path's input). *)

val unmap : cursor -> lo:int -> hi:int -> unit
(** Clear the range: present leaves are unmapped (releasing sole-owner
    anonymous frames), marks and swap slots are dropped, and PT pages
    that become empty are removed — RCU-deferred under the adv protocol
    (Fig 6 L29-35), direct under rw. *)

val protect : cursor -> lo:int -> hi:int -> Perm.t -> unit
(** Change permissions over the range, preserving mappings and marks
    (mprotect); the COW bit of present leaves is preserved. *)

val remap_pte : cursor -> vaddr:int -> pfn:int -> perm:Perm.t -> unit
(** Raw PTE rewrite of one present page — COW breaks and fork's
    write-protect pass, where [protect]'s COW-preservation does not fit. *)

val set_swapped :
  cursor -> vaddr:int -> dev:Blockdev.t -> block:int -> perm:Perm.t -> unit
(** Record a swapped-out page (the slot must be absent). *)

val record_toucher : cursor -> vaddr:int -> unit
(** Note the calling CPU as a TLB holder of the page's PT node. *)

val iter_slots : cursor -> lo:int -> hi:int -> (int -> int -> Status.t -> unit) -> unit
(** Enumerate non-invalid slots as [(vaddr, bytes, status)] — address-
    space enumeration by page-table walk (the paper's §6.2 worst case). *)

val move_range : cursor -> old_lo:int -> old_hi:int -> new_lo:int -> unit
(** Relocate the pages of the old range to [new_lo] (mremap's move):
    frames keep their identity and map counts, marks and swap slots are
    copied, old TLB entries are flushed at commit. The cursor must cover
    both ranges. *)

val clone_for_fork : cursor -> cursor -> unit
(** Fork: stream-copy the parent's page-table subtree (PTE and metadata
    arrays) into the empty child, write-protecting private mappings on
    both sides (COW) and duplicating swap slots. Both cursors must cover
    the full address space. *)

val promote_huge : cursor -> vaddr:int -> bool
(** Promote a fully-populated level-1 PT page of uniform, singly-mapped
    anonymous pages into one 2 MiB huge leaf (khugepaged-style; copies
    into a fresh physically-contiguous block). The cursor must cover the
    parent (lock a range spanning two level-2 slots). *)

val l1_full : t -> int -> bool
(** Lock-free peek: is the leaf PT page of [vaddr] fully populated? *)

val origin_at : cursor -> int -> Status.meta_entry

(** {2 Accounting and invariants} *)

type mem_stats = {
  pt_pages : int;
  pt_bytes : int;
  meta_arrays : int;
  meta_bytes : int;
}

val mem_stats : t -> mem_stats

val meta_bytes_upper_bound : t -> int
(** Fig 22's upper bound: every PT page with a fully populated array. *)

val check_well_formed : t -> unit
(** The Fig 12 page-table well-formedness invariant; raises
    {!Mm_pt.Pt.Ill_formed} on violation. *)
