lib/experiments/registry.ml: Fig_apps Fig_ext Fig_micro Fig_misc List Printf
