lib/experiments/fig_micro.ml: Cortenmm Float List Mm_hal Mm_util Mm_workloads Printf
