lib/experiments/fig_apps.ml: Cortenmm List Mm_util Mm_workloads Printf
