lib/experiments/fig_ext.ml: Addr_space Blockdev Config Cortenmm Kernel List Mm Mm_hal Mm_pt Mm_sim Mm_tlb Mm_util Mm_workloads Numa Printf Status Swapd
