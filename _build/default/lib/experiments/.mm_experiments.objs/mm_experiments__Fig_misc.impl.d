lib/experiments/fig_misc.ml: Cortenmm List Mm_util Mm_verif Mm_workloads Printf String
