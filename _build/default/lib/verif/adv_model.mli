(** Atomic Tree Spec of the CortenMM_adv locking protocol (paper §5.1,
    Figs 6-7): lock-free RCU traversal, covering-page lock with stale
    retry, DFS locking of the subtree, per-page teardown of removed
    subtrees through the RCU monitor, and an environment transition that
    reuses freed pages once their grace period elapses.

    Checked properties: non-overlap of live covering pages, no lost
    update (no core operates on a stale page), no use-after-free (no core
    holds or traverses a reused page), deadlock-freedom. *)

type action = Op | Remove of int

type phase =
  | AIdle
  | ATrav of int
  | AAcquire of int
  | ACheck of int
  | ALockRest of { cover : int; rest : int list }
  | ACrit of int
  | ARemoving of { cover : int; pending : int list }
  | AFin

type state = {
  present : bool array;
  stale : bool array;
  freed : bool array;
  reused : bool array;
  lock : int array;
  in_rcu : bool array;
  grace : int array;
  phases : phase array;
}

val check :
  ?no_stale_check:bool ->
  ?no_rcu:bool ->
  tree:Tree.t ->
  targets:int array ->
  actions:action array ->
  unit ->
  state Checker.result
(** [no_stale_check] and [no_rcu] are the seeded bugs (Fig 7's two races):
    without the stale check a core operates on a removed PT page; without
    grace periods a freed page is reused under a traversing core. The
    checker must catch both. *)
