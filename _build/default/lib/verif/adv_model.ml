(* Atomic Tree Spec of the CortenMM_adv locking protocol (paper §5.1,
   Figs 6-7) as a finite transition system, checked exhaustively.

   Each core runs a transaction on a fixed target: a lock-free traversal
   (inside an RCU read-side critical section) to the covering PT page, a
   mutex acquisition with a stale check and retry, a preorder DFS locking
   every descendant, the operation — which may *remove* a child subtree
   (clear the parent entry, mark each page stale, unlock it, and hand it
   to the RCU monitor) — and release.

   The environment includes a "reuse" transition: a freed PT page may be
   reallocated once every core that was inside an RCU read section at free
   time has exited (the grace period). The seeded-buggy variants disable
   the stale check ([no_stale_check]) or the grace period ([no_rcu]);
   the checker must catch both (Fig 7's use-after-free and lost-update
   races), and verify the correct protocol against:

   P1 non-overlap: no two cores operate on related live covering pages;
   no lost update: an operating core's covering page is never stale;
   no use-after-free: no core ever holds (or traverses) a reused page;
   deadlock-freedom. *)

type action = Op | Remove of int (* remove this child subtree of the cover *)

type phase =
  | AIdle
  | ATrav of int (* lock-free descent position; inside RCU *)
  | AAcquire of int (* chosen covering page; about to lock it *)
  | ACheck of int (* holding its lock; about to check stale *)
  | ALockRest of { cover : int; rest : int list } (* DFS locking phase *)
  | ACrit of int (* all locks held; operating *)
  | ARemoving of { cover : int; pending : int list } (* per-page teardown *)
  | AFin

type state = {
  present : bool array; (* node linked from its parent *)
  stale : bool array;
  freed : bool array; (* handed to the RCU monitor *)
  reused : bool array; (* reallocated after its grace period *)
  lock : int array; (* -1 free, else holding core *)
  in_rcu : bool array; (* per core *)
  grace : int array; (* per node: cores whose RCU exit the free awaits *)
  phases : phase array; (* per core *)
}

type config = {
  tree : Tree.t;
  targets : int array;
  actions : action array;
  no_stale_check : bool; (* seeded bug 1 *)
  no_rcu : bool; (* seeded bug 2: reuse ignores the grace period *)
}

let initial cfg =
  let n = Tree.node_count cfg.tree in
  {
    present = Array.make n true;
    stale = Array.make n false;
    freed = Array.make n false;
    reused = Array.make n false;
    lock = Array.make n (-1);
    in_rcu = Array.make (Array.length cfg.targets) false;
    grace = Array.make n 0;
    phases = Array.make (Array.length cfg.targets) AIdle;
  }

let copy s =
  {
    present = Array.copy s.present;
    stale = Array.copy s.stale;
    freed = Array.copy s.freed;
    reused = Array.copy s.reused;
    lock = Array.copy s.lock;
    in_rcu = Array.copy s.in_rcu;
    grace = Array.copy s.grace;
    phases = Array.copy s.phases;
  }

(* A core exiting its RCU read section advances every pending grace
   period. *)
let rcu_exit s c =
  s.in_rcu.(c) <- false;
  Array.iteri (fun n g -> s.grace.(n) <- g land lnot (1 lsl c)) s.grace

let live_subtree_preorder cfg s n =
  List.filter (fun m -> s.present.(m) || m = n) (Tree.subtree_preorder cfg.tree n)
  |> List.filter (fun m ->
         (* only nodes reachable within the subtree: a non-present node's
            descendants are unreachable *)
         let rec reachable m =
           if m = n then true
           else
             match Tree.parent cfg.tree m with
             | Some p -> s.present.(m) && reachable p
             | None -> false
         in
         reachable m)

let step cfg s =
  let ncores = Array.length cfg.targets in
  let succs = ref [] in
  let add label s' = succs := (label, s') :: !succs in
  for c = 0 to ncores - 1 do
    let target = cfg.targets.(c) in
    match s.phases.(c) with
    | AIdle ->
      let s' = copy s in
      s'.in_rcu.(c) <- true;
      s'.phases.(c) <- ATrav Tree.root;
      add (Printf.sprintf "rcu-enter(%d)" c) s'
    | ATrav pos ->
      (* Atomic read of the child entry; descend if it exists. *)
      if pos = target then begin
        let s' = copy s in
        s'.phases.(c) <- AAcquire pos;
        add (Printf.sprintf "found-cover(%d,n%d)" c pos) s'
      end
      else begin
        let next = Tree.child_toward cfg.tree ~from:pos ~target in
        let s' = copy s in
        if s.present.(next) then s'.phases.(c) <- ATrav next
        else s'.phases.(c) <- AAcquire pos;
        add (Printf.sprintf "descend(%d,n%d)" c pos) s'
      end
    | AAcquire n ->
      if s.lock.(n) = -1 then begin
        let s' = copy s in
        s'.lock.(n) <- c;
        s'.phases.(c) <- ACheck n;
        add (Printf.sprintf "lock-cover(%d,n%d)" c n) s'
      end
    | ACheck n ->
      if s.stale.(n) && not cfg.no_stale_check then begin
        (* Fig 6 L10-13: racing unmap removed this page; retry. *)
        let s' = copy s in
        s'.lock.(n) <- -1;
        rcu_exit s' c;
        s'.phases.(c) <- AIdle;
        add (Printf.sprintf "stale-retry(%d,n%d)" c n) s'
      end
      else begin
        let s' = copy s in
        rcu_exit s' c;
        let rest =
          List.filter (fun m -> m <> n) (live_subtree_preorder cfg s n)
        in
        s'.phases.(c) <- ALockRest { cover = n; rest };
        add (Printf.sprintf "rcu-exit(%d,n%d)" c n) s'
      end
    | ALockRest { cover; rest = [] } ->
      let s' = copy s in
      s'.phases.(c) <- ACrit cover;
      add (Printf.sprintf "locked-all(%d,n%d)" c cover) s'
    | ALockRest { cover; rest = r :: rs } ->
      if s.lock.(r) = -1 then begin
        let s' = copy s in
        s'.lock.(r) <- c;
        s'.phases.(c) <- ALockRest { cover; rest = rs };
        add (Printf.sprintf "dfs-lock(%d,n%d)" c r) s'
      end
    | ACrit cover -> (
      match cfg.actions.(c) with
      | Op ->
        (* Operate, then release every held lock. *)
        let s' = copy s in
        Array.iteri (fun n o -> if o = c then s'.lock.(n) <- -1) s.lock;
        s'.phases.(c) <- AFin;
        add (Printf.sprintf "op-and-unlock(%d)" c) s'
      | Remove child ->
        if s.present.(child) then begin
          (* Fig 6 L30: atomically clear the entry in the parent. *)
          let s' = copy s in
          s'.present.(child) <- false;
          let victims =
            List.rev (live_subtree_preorder cfg s child)
            |> List.filter (fun m -> s.lock.(m) = c || m = child)
          in
          s'.phases.(c) <- ARemoving { cover; pending = victims };
          add (Printf.sprintf "clear-entry(%d,n%d)" c child) s'
        end
        else begin
          (* Nothing to remove (another path already did): plain op. *)
          let s' = copy s in
          Array.iteri (fun n o -> if o = c then s'.lock.(n) <- -1) s.lock;
          s'.phases.(c) <- AFin;
          add (Printf.sprintf "op-and-unlock(%d)" c) s'
        end)
    | ARemoving { cover; pending = [] } ->
      (* Teardown complete: release the remaining locks. *)
      let s' = copy s in
      Array.iteri (fun n o -> if o = c then s'.lock.(n) <- -1) s.lock;
      s'.phases.(c) <- AFin;
      ignore cover;
      add (Printf.sprintf "unlock-rest(%d)" c) s'
    | ARemoving { cover; pending = v :: vs } ->
      (* Fig 6 L31-35: stale, unlock, hand to the RCU monitor. *)
      let s' = copy s in
      s'.stale.(v) <- true;
      if s.lock.(v) = c then s'.lock.(v) <- -1;
      s'.freed.(v) <- true;
      let mask = ref 0 in
      Array.iteri (fun c' r -> if r then mask := !mask lor (1 lsl c')) s.in_rcu;
      s'.grace.(v) <- !mask;
      s'.phases.(c) <- ARemoving { cover; pending = vs };
      add (Printf.sprintf "retire(%d,n%d)" c v) s'
    | AFin -> ()
  done;
  (* Environment: the RCU monitor reuses a freed page once its grace
     period has elapsed (immediately, with the no_rcu bug). *)
  Array.iteri
    (fun n freed ->
      if freed && not s.reused.(n) && (cfg.no_rcu || s.grace.(n) = 0) then begin
        let s' = copy s in
        s'.reused.(n) <- true;
        add (Printf.sprintf "reuse(n%d)" n) s'
      end)
    s.freed;
  !succs

let invariant cfg s =
  let ncores = Array.length cfg.targets in
  let violation = ref None in
  (* Use-after-free: a core holds a lock on, or traverses, a reused page. *)
  for c = 0 to ncores - 1 do
    Array.iteri
      (fun n o ->
        if o = c && s.reused.(n) then
          violation :=
            Some (Printf.sprintf "core %d holds reallocated page n%d" c n))
      s.lock;
    match s.phases.(c) with
    | ATrav pos when s.reused.(pos) ->
      violation :=
        Some (Printf.sprintf "core %d traverses reallocated page n%d" c pos)
    | ACrit cover when s.stale.(cover) ->
      (* Lost update: operating on a PT page already unlinked. *)
      violation :=
        Some
          (Printf.sprintf "core %d operates on stale page n%d (lost update)" c
             cover)
    | _ -> ()
  done;
  (* Mutual exclusion on live covering pages. *)
  let cover_of c =
    match s.phases.(c) with
    | ACrit n -> Some n
    | ARemoving { cover; _ } -> Some cover
    | _ -> None
  in
  for i = 0 to ncores - 1 do
    for j = i + 1 to ncores - 1 do
      match (cover_of i, cover_of j) with
      | Some a, Some b
        when (not s.stale.(a)) && (not s.stale.(b))
             && Tree.related cfg.tree a b ->
        violation :=
          Some
            (Printf.sprintf
               "mutual exclusion violated: cores %d/%d operate on related \
                pages n%d/n%d"
               i j a b)
      | _ -> ()
    done
  done;
  !violation

let terminal s = Array.for_all (fun p -> p = AFin) s.phases

let check ?(no_stale_check = false) ?(no_rcu = false) ~tree ~targets ~actions () =
  let cfg = { tree; targets; actions; no_stale_check; no_rcu } in
  Checker.explore ~init:(initial cfg) ~step:(step cfg)
    ~invariant:(invariant cfg) ~terminal ()
