(** Functional correctness of the cursor operations (the paper's P2)
    against a flat reference model — exhaustive over all short operation
    sequences — plus linearizability checking of concurrent transaction
    histories (the §3.3 atomicity semantics). *)

type op =
  | Op_mmap of int * int * Mm_hal.Perm.t
  | Op_munmap of int * int
  | Op_touch of int * bool
  | Op_protect of int * int * Mm_hal.Perm.t

val op_to_string : op -> string

val op_universe : op list
(** The fixed operation alphabet exhaustive enumeration draws from,
    covering overlap, splitting, remapping, permission changes, faults. *)

type exhaustive_result = {
  sequences : int;
  checks : int;
  failures : (op list * int * string) list;
}

val exhaustive :
  ?isa:Mm_hal.Isa.t -> cfg:Cortenmm.Config.t -> depth:int -> unit ->
  exhaustive_result
(** Run every operation sequence of length [depth] over the universe,
    comparing [query] of every page against the reference model after
    every operation, and checking page-table well-formedness. *)

type lin_result = {
  total_ops : int;
  matched : bool;
  detail : string;
}

val lin_check :
  cfg:Cortenmm.Config.t -> ncpus:int -> ops_per_thread:int -> seed:int ->
  lin_result
(** Random per-thread operation streams run concurrently with completion
    times recorded; replaying them serially in completion order must
    produce the same user-visible final state (two-phase locking
    serializes conflicts; disjoint operations commute). *)
