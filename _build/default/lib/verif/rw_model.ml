(* Atomic Tree Spec of the CortenMM_rw locking protocol (paper §5.1,
   Fig 5) as a finite transition system, checked exhaustively.

   Each core runs one transaction on a fixed target node: it descends from
   the root taking reader locks on the path, then takes the writer lock on
   the target (the covering PT page), operates, and releases everything.
   The model checker explores all interleavings and verifies:

   P1 (mutual exclusion / non-overlap): no two cores simultaneously hold
   writer locks on nodes in an ancestor-descendant (or equal) relation —
   the paper's non-overlapping property;
   plus lock sanity (a write-locked node has no readers) and
   deadlock-freedom.

   [skip_read_locks] builds the seeded-buggy variant (descend without
   read-locking), which the checker must catch — evidence the properties
   are not vacuous. *)

type phase =
  | Idle
  | Descending of int (* current position in the tree *)
  | Trading of int (* holds a reader lock on the target (Fig 5 L4) *)
  | Traded of int (* released it; about to take the writer lock (L7-8) *)
  | Locked
  | Releasing of int list (* stepwise unlock: reader locks left to drop *)
  | Finished

type state = {
  readers : int array; (* per node *)
  writer : bool array; (* per node *)
  phases : phase array; (* per core *)
}

type config = {
  tree : Tree.t;
  targets : int array; (* per core: the covering PT page to write-lock *)
  skip_read_locks : bool; (* seeded bug *)
  trade_window : bool;
      (* model Fig 5's L4/L7-8 faithfully: the covering page is first
         reader-locked during the descent, released, and only then
         writer-locked — opening a window in which other cores act *)
  stepwise_unlock : bool; (* release locks one transition at a time *)
}

let initial cfg =
  {
    readers = Array.make (Tree.node_count cfg.tree) 0;
    writer = Array.make (Tree.node_count cfg.tree) false;
    phases = Array.make (Array.length cfg.targets) Idle;
  }

let copy s =
  {
    readers = Array.copy s.readers;
    writer = Array.copy s.writer;
    phases = Array.copy s.phases;
  }

let step cfg s =
  let ncores = Array.length cfg.targets in
  let succs = ref [] in
  let add label s' = succs := (label, s') :: !succs in
  for c = 0 to ncores - 1 do
    let target = cfg.targets.(c) in
    match s.phases.(c) with
    | Idle ->
      let s' = copy s in
      s'.phases.(c) <- Descending Tree.root;
      add (Printf.sprintf "start(%d)" c) s'
    | Descending pos when pos <> target ->
      (* Fig 5 L4-6: reader-lock the current page, move to the child. *)
      if not s.writer.(pos) then begin
        let s' = copy s in
        if not cfg.skip_read_locks then s'.readers.(pos) <- s.readers.(pos) + 1;
        s'.phases.(c) <-
          Descending (Tree.child_toward cfg.tree ~from:pos ~target);
        add (Printf.sprintf "read-lock(%d,n%d)" c pos) s'
      end
    | Descending pos when cfg.trade_window ->
      (* pos = target, faithful variant: reader-lock the covering page
         first (the loop's L4 ran before the break). *)
      if not s.writer.(pos) then begin
        let s' = copy s in
        if not cfg.skip_read_locks then s'.readers.(pos) <- s.readers.(pos) + 1;
        s'.phases.(c) <- Trading pos;
        add (Printf.sprintf "read-lock-cover(%d,n%d)" c pos) s'
      end
    | Descending pos ->
      (* pos = target, compact variant: acquire the writer lock directly. *)
      if s.readers.(pos) = 0 && not s.writer.(pos) then begin
        let s' = copy s in
        s'.writer.(pos) <- true;
        s'.phases.(c) <- Locked;
        add (Printf.sprintf "write-lock(%d,n%d)" c pos) s'
      end
    | Trading pos ->
      (* Fig 5 L7: drop the reader lock on the covering page... *)
      let s' = copy s in
      if not cfg.skip_read_locks then s'.readers.(pos) <- s.readers.(pos) - 1;
      s'.phases.(c) <- Traded pos;
      add (Printf.sprintf "trade-release(%d,n%d)" c pos) s'
    | Traded pos ->
      (* ...Fig 5 L8: and take the writer lock. Other cores may interleave
         here — the ancestors' reader locks keep this safe. *)
      if s.readers.(pos) = 0 && not s.writer.(pos) then begin
        let s' = copy s in
        s'.writer.(pos) <- true;
        s'.phases.(c) <- Locked;
        add (Printf.sprintf "write-lock(%d,n%d)" c pos) s'
      end
    | Locked ->
      let s' = copy s in
      s'.writer.(target) <- false;
      let path_above =
        List.filter (fun n -> n <> target) (Tree.path cfg.tree target)
      in
      if cfg.stepwise_unlock && (not cfg.skip_read_locks) && path_above <> []
      then begin
        s'.phases.(c) <- Releasing (List.rev path_above);
        add (Printf.sprintf "write-unlock(%d)" c) s'
      end
      else begin
        if not cfg.skip_read_locks then
          List.iter
            (fun n -> s'.readers.(n) <- s'.readers.(n) - 1)
            path_above;
        s'.phases.(c) <- Finished;
        add (Printf.sprintf "unlock(%d)" c) s'
      end
    | Releasing [] ->
      let s' = copy s in
      s'.phases.(c) <- Finished;
      add (Printf.sprintf "done(%d)" c) s'
    | Releasing (n :: rest) ->
      (* Reverse acquisition order, one reader lock per transition. *)
      let s' = copy s in
      s'.readers.(n) <- s.readers.(n) - 1;
      s'.phases.(c) <- Releasing rest;
      add (Printf.sprintf "read-unlock(%d,n%d)" c n) s'
    | Finished -> ()
  done;
  !succs

let invariant cfg s =
  let ncores = Array.length cfg.targets in
  let violation = ref None in
  (* Non-overlap of write-locked covering pages. *)
  for i = 0 to ncores - 1 do
    for j = i + 1 to ncores - 1 do
      match (s.phases.(i), s.phases.(j)) with
      | Locked, Locked
        when Tree.related cfg.tree cfg.targets.(i) cfg.targets.(j) ->
        violation :=
          Some
            (Printf.sprintf
               "mutual exclusion violated: cores %d and %d write-hold related \
                pages n%d and n%d"
               i j cfg.targets.(i) cfg.targets.(j))
      | _ -> ()
    done
  done;
  (* Lock sanity. *)
  Array.iteri
    (fun n r ->
      if r < 0 then violation := Some (Printf.sprintf "negative readers on n%d" n);
      if s.writer.(n) && r > 0 then
        violation :=
          Some (Printf.sprintf "write-locked n%d still has %d readers" n r))
    s.readers;
  !violation

let terminal s = Array.for_all (fun p -> p = Finished) s.phases

let check ?(skip_read_locks = false) ?(trade_window = false)
    ?(stepwise_unlock = false) ~tree ~targets () =
  let cfg = { tree; targets; skip_read_locks; trade_window; stepwise_unlock } in
  Checker.explore ~init:(initial cfg) ~step:(step cfg)
    ~invariant:(invariant cfg) ~terminal ()

(* -- Refinement to the Atomic Spec (paper §5.1) --

   interp maps an Atomic Tree Spec state to the Atomic Spec state: the set
   of (core, covering page) pairs whose subtrees are exclusively held.
   The simulation check: every concrete transition is a stutter or maps to
   a legal spec step — lock(core, page) (legal only when no held subtree
   overlaps) or unlock(core). *)

type spec_state = (int * int) list (* sorted (core, page) *)

let interp cfg s =
  let acc = ref [] in
  Array.iteri
    (fun c p -> if p = Locked then acc := (c, cfg.targets.(c)) :: !acc)
    s.phases;
  List.sort compare !acc

let spec_ok cfg (sp : spec_state) =
  List.for_all
    (fun (c1, n1) ->
      List.for_all
        (fun (c2, n2) -> c1 = c2 || not (Tree.related cfg.tree n1 n2))
        sp)
    sp

(* Check refinement over the whole reachable state space; returns
   (result, refinement_errors). *)
let check_refinement ?(skip_read_locks = false) ?(trade_window = false)
    ?(stepwise_unlock = false) ~tree ~targets () =
  let cfg = { tree; targets; skip_read_locks; trade_window; stepwise_unlock } in
  let errors = ref [] in
  let on_edge s label s' =
    let sp = interp cfg s and sp' = interp cfg s' in
    if sp <> sp' then begin
      (* Must be exactly one lock or unlock spec step. *)
      let added = List.filter (fun x -> not (List.mem x sp)) sp' in
      let removed = List.filter (fun x -> not (List.mem x sp')) sp in
      match (added, removed) with
      | [ (_, n) ], [] ->
        (* lock(core, n): legal iff no overlap with previously held. *)
        if
          not
            (List.for_all (fun (_, m) -> not (Tree.related cfg.tree n m)) sp)
        then
          errors :=
            Printf.sprintf "edge %s: spec lock of n%d overlaps held set" label
              n
            :: !errors
      | [], [ _ ] -> () (* unlock is always legal *)
      | _ ->
        errors :=
          Printf.sprintf "edge %s: not a single spec step" label :: !errors
    end;
    if not (spec_ok cfg sp') then
      errors :=
        Printf.sprintf "edge %s: spec invariant broken after step" label
        :: !errors
  in
  let result =
    Checker.explore ~on_edge ~init:(initial cfg) ~step:(step cfg)
      ~invariant:(fun _ -> None)
      ~terminal ()
  in
  (result, List.rev !errors)
