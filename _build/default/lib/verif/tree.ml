(* The abstract page-table tree of the Atomic Tree Spec (paper §5.1).

   A complete [arity]-ary tree of PT pages identified by integers in
   heap order: root is 0, children of [i] are [arity*i + 1 .. arity*i +
   arity]. Each node stands for a PT page; locking a node's subtree is the
   abstract version of locking a virtual address range whose covering PT
   page is that node. *)

type t = { arity : int; depth : int; nnodes : int }

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)

let create ~arity ~depth =
  if arity < 2 || depth < 1 then invalid_arg "Tree.create";
  let nnodes = (pow arity depth - 1) / (arity - 1) in
  { arity; depth; nnodes }

let root = 0
let node_count t = t.nnodes

let parent t n =
  if n = 0 then None
  else if n < 0 || n >= t.nnodes then invalid_arg "Tree.parent"
  else Some ((n - 1) / t.arity)

let children t n =
  let first = (t.arity * n) + 1 in
  if first >= t.nnodes then []
  else List.init t.arity (fun i -> first + i)

let is_leaf t n = children t n = []

let level t n =
  (* Root is at level [depth]; leaves at level 1 (paper orientation). *)
  let rec depth_of n acc =
    match parent t n with None -> acc | Some p -> depth_of p (acc + 1)
  in
  t.depth - depth_of n 0

(* Path from the root to [n], inclusive. *)
let path t n =
  let rec go n acc =
    match parent t n with None -> n :: acc | Some p -> go p (n :: acc)
  in
  go n []

(* Is [a] an ancestor of [d] (strictly)? *)
let is_ancestor t ~anc ~desc =
  let rec go n =
    match parent t n with
    | None -> false
    | Some p -> p = anc || go p
  in
  go desc

let related t a b = a = b || is_ancestor t ~anc:a ~desc:b || is_ancestor t ~anc:b ~desc:a

(* Subtree of [n] in preorder — the DFS order CortenMM_adv locks in. *)
let subtree_preorder t n =
  let rec go n acc = List.fold_left (fun acc c -> go c acc) (n :: acc) (children t n) in
  List.rev (go n [])

(* The child of [n] on the path toward [target] (which must be a strict
   descendant). *)
let child_toward t ~from ~target =
  match List.find_opt (fun c -> c = target || is_ancestor t ~anc:c ~desc:target) (children t from) with
  | Some c -> c
  | None -> invalid_arg "Tree.child_toward: target not below from"
