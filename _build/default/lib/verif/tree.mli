(** The abstract page-table tree of the Atomic Tree Spec: a complete
    [arity]-ary tree in heap order (root 0; children of [i] are
    [arity*i + 1 ..]). *)

type t

val create : arity:int -> depth:int -> t
val root : int
val node_count : t -> int
val parent : t -> int -> int option
val children : t -> int -> int list
val is_leaf : t -> int -> bool
val level : t -> int -> int

val path : t -> int -> int list
(** Root to node, inclusive. *)

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Strict ancestry. *)

val related : t -> int -> int -> bool
(** Equal, ancestor, or descendant — the pairs the paper's non-overlap
    invariant forbids from being simultaneously write-held. *)

val subtree_preorder : t -> int -> int list
val child_toward : t -> from:int -> target:int -> int
