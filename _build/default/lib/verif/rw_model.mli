(** Atomic Tree Spec of the CortenMM_rw locking protocol (paper §5.1,
    Fig 5), model-checked exhaustively: mutual exclusion (the
    non-overlapping property), lock sanity, deadlock-freedom, and
    refinement to the Atomic Spec. *)

type phase =
  | Idle
  | Descending of int
  | Trading of int
  | Traded of int
  | Locked
  | Releasing of int list
  | Finished

type state = {
  readers : int array;
  writer : bool array;
  phases : phase array;
}

val check :
  ?skip_read_locks:bool ->
  ?trade_window:bool ->
  ?stepwise_unlock:bool ->
  tree:Tree.t ->
  targets:int array ->
  unit ->
  state Checker.result
(** Explore every interleaving of one transaction per core on the given
    covering-page targets.
    [skip_read_locks] is the seeded bug (no reader locks on the descent
    path) that the checker must catch.
    [trade_window] models Fig 5's faithful L4/L7-8 sequence: the covering
    page's reader lock is taken during the descent, released, and only
    then traded for the writer lock.
    [stepwise_unlock] releases the path's reader locks one transition at a
    time (reverse acquisition order) instead of atomically. *)

type spec_state = (int * int) list

val check_refinement :
  ?skip_read_locks:bool ->
  ?trade_window:bool ->
  ?stepwise_unlock:bool ->
  tree:Tree.t ->
  targets:int array ->
  unit ->
  state Checker.result * string list
(** Additionally check that every concrete transition maps (via interp) to
    a stutter or one legal Atomic Spec step; returns refinement errors. *)
