(* Explicit-state model checker: breadth-first exploration of every
   interleaving of a transition system, checking a state invariant and
   deadlock-freedom, with counterexample traces.

   This is the reproduction's stand-in for the paper's Verus proofs: the
   protocols are finite-state at the Atomic Tree Spec level, so exhaustive
   exploration of all interleavings on small trees establishes the same
   P1 properties (and, unlike testing, cannot miss an interleaving). *)

type 's outcome =
  | Ok_verified
  | Invariant_violation of { trace : (string * 's) list; message : string }
  | Deadlock of { trace : (string * 's) list }

type 's result = {
  outcome : 's outcome;
  states : int;
  transitions : int;
}

(* [step s] returns the labelled successors of [s]; [invariant s] returns
   [Some msg] on violation; [terminal s] says whether it is legitimate for
   [s] to have no successors. [on_edge] is called for every explored edge
   (used by the refinement checker). States must be immutable values with
   structural equality. *)
let explore ?(max_states = 2_000_000) ?(on_edge = fun _ _ _ -> ()) ~init ~step
    ~invariant ~terminal () =
  let seen = Hashtbl.create 4096 in
  (* Predecessor map for trace reconstruction. *)
  let pred : ('s, (string * 's) option) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let trace_to s =
    let rec go s acc =
      match Hashtbl.find pred s with
      | None -> acc
      | Some (label, p) -> go p ((label, s) :: acc)
    in
    go s []
  in
  Hashtbl.replace seen init ();
  Hashtbl.replace pred init None;
  Queue.push init queue;
  let outcome = ref None in
  (try
     while not (Queue.is_empty queue) do
       let s = Queue.pop queue in
       (match invariant s with
       | Some message ->
         outcome := Some (Invariant_violation { trace = trace_to s; message });
         raise Exit
       | None -> ());
       let succs = step s in
       if succs = [] && not (terminal s) then begin
         outcome := Some (Deadlock { trace = trace_to s });
         raise Exit
       end;
       List.iter
         (fun (label, s') ->
           incr transitions;
           on_edge s label s';
           if not (Hashtbl.mem seen s') then begin
             if Hashtbl.length seen >= max_states then
               failwith "Checker.explore: state-space bound exceeded";
             Hashtbl.replace seen s' ();
             Hashtbl.replace pred s' (Some (label, s));
             Queue.push s' queue
           end)
         succs
     done
   with Exit -> ());
  {
    outcome = (match !outcome with Some o -> o | None -> Ok_verified);
    states = Hashtbl.length seen;
    transitions = !transitions;
  }

let is_verified r = match r.outcome with Ok_verified -> true | _ -> false

let describe r =
  match r.outcome with
  | Ok_verified ->
    Printf.sprintf "verified (%d states, %d transitions)" r.states
      r.transitions
  | Invariant_violation { message; trace } ->
    Printf.sprintf "VIOLATION after %d steps: %s" (List.length trace) message
  | Deadlock { trace } ->
    Printf.sprintf "DEADLOCK after %d steps" (List.length trace)
