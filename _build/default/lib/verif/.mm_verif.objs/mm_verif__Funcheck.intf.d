lib/verif/funcheck.mli: Cortenmm Mm_hal
