lib/verif/adv_model.ml: Array Checker List Printf Tree
