lib/verif/rw_model.mli: Checker Tree
