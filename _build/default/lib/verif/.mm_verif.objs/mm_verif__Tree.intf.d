lib/verif/tree.mli:
