lib/verif/checker.mli:
