lib/verif/checker.ml: Hashtbl List Printf Queue
