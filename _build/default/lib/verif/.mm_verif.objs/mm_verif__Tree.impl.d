lib/verif/tree.ml: List
