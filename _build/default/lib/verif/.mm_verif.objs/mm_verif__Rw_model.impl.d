lib/verif/rw_model.ml: Array Checker List Printf Tree
