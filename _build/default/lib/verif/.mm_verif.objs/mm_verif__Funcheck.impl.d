lib/verif/funcheck.ml: Array Cortenmm Hashtbl List Mm_hal Mm_sim Mm_util Printf String
