lib/verif/adv_model.mli: Checker Tree
