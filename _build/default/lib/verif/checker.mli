(** Explicit-state model checker: exhaustive BFS over every interleaving
    of a transition system, with invariant checking, deadlock detection
    and counterexample traces. The reproduction's stand-in for Verus. *)

type 's outcome =
  | Ok_verified
  | Invariant_violation of { trace : (string * 's) list; message : string }
  | Deadlock of { trace : (string * 's) list }

type 's result = {
  outcome : 's outcome;
  states : int;
  transitions : int;
}

val explore :
  ?max_states:int ->
  ?on_edge:('s -> string -> 's -> unit) ->
  init:'s ->
  step:('s -> (string * 's) list) ->
  invariant:('s -> string option) ->
  terminal:('s -> bool) ->
  unit ->
  's result
(** [step] returns the labelled successors; [invariant] returns an error
    message on violation; [terminal] says whether a state may legally have
    no successors. [on_edge] observes every explored edge (used by the
    refinement checker). States must be immutable values compared
    structurally. *)

val is_verified : 's result -> bool
val describe : 's result -> string
