lib/pt/pt.ml: Array Geometry Hashtbl Isa Mm_hal Mm_phys Mm_sim Mm_util Printf Pte
