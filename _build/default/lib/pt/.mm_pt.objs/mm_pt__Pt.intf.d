lib/pt/pt.mli: Geometry Isa Mm_hal Mm_phys Pte
