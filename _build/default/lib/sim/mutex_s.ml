(* MCS-style queued spin-lock model.

   An MCS lock's contention behaviour: acquisition swaps the tail pointer
   (one RMW on the lock's cache line), waiters spin on their *own* node
   (local, free), and release hands the lock to the successor with a single
   line transfer. We model exactly that: one [Line.rmw] per acquire, FIFO
   queue of parked fibers, and a [line_transfer] handoff latency.
   CortenMM_adv uses this as the per-PT-page lock (paper §4.5). *)

type t = {
  line : Engine.Line.t;
  mutable locked : bool;
  mutable holder : int; (* cpu, or -1 *)
  waiters : Engine.parked Queue.t;
  mutable acquisitions : int;
  mutable contended : int;
}

let make () =
  {
    line = Engine.Line.make ();
    locked = false;
    holder = -1;
    waiters = Queue.create ();
    acquisitions = 0;
    contended = 0;
  }

let lock t =
  Engine.Line.rmw t.line;
  t.acquisitions <- t.acquisitions + 1;
  if not t.locked then begin
    t.locked <- true;
    t.holder <- Engine.cpu_id ()
  end
  else begin
    t.contended <- t.contended + 1;
    Engine.park (fun p -> Queue.push p t.waiters)
    (* We resume as the holder: [unlock] set [holder] before unparking. *)
  end

let try_lock t =
  Engine.Line.rmw t.line;
  if t.locked then false
  else begin
    t.acquisitions <- t.acquisitions + 1;
    t.locked <- true;
    t.holder <- Engine.cpu_id ();
    true
  end

let unlock t =
  Engine.serialize ();
  if not t.locked then failwith "Mutex_s.unlock: not locked";
  if t.holder <> Engine.cpu_id () then
    failwith "Mutex_s.unlock: unlocked by non-holder";
  Engine.tick Cost.cache_hit;
  match Queue.take_opt t.waiters with
  | None ->
    t.locked <- false;
    t.holder <- -1
  | Some p ->
    t.holder <- Engine.parked_cpu p;
    (* Handoff: the successor observes the release after a line transfer. *)
    Engine.unpark p ~at:(Engine.now () + Cost.line_transfer)

let holder t = if t.locked then Some t.holder else None
let is_locked t = t.locked
let acquisitions t = t.acquisitions
let contended t = t.contended
