lib/sim/engine.mli:
