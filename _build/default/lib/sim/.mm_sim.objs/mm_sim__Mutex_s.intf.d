lib/sim/mutex_s.mli:
