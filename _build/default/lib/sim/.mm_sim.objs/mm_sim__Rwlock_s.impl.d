lib/sim/rwlock_s.ml: Cost Engine Queue
