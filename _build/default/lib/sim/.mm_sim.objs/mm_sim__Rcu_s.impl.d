lib/sim/rcu_s.ml: Array Cost Engine List
