lib/sim/engine.ml: Array Cost Effect Pqueue Printf
