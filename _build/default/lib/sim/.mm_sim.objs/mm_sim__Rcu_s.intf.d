lib/sim/rcu_s.mli:
