lib/sim/cost.ml:
