lib/sim/mutex_s.ml: Cost Engine Queue
