lib/sim/rwlock_s.mli:
