(** A maple-tree-style B-tree over non-overlapping intervals — the
    structure Linux's VMA layer uses [55]: wide (16-slot) nodes, shallow
    trees, lock-free reads. Generic in the item type via [start]/[stop]
    accessors. *)

type 'a t

val cap : int

val create : start:('a -> int) -> stop:('a -> int) -> 'a t
val count : 'a t -> int
val height : 'a t -> int

val find : 'a t -> int -> 'a option
(** The item whose interval contains the address, if any. *)

val insert : 'a t -> 'a -> unit
(** The item's interval must not overlap existing ones (not checked). *)

val remove : 'a t -> int -> bool
(** Remove the item with this exact start key; [false] if absent. *)

val overlapping : 'a t -> lo:int -> hi:int -> 'a list
(** Items intersecting [lo, hi), in start order, with subtree pruning. *)

val iter : 'a t -> ('a -> unit) -> unit

exception Broken of string

val check_invariants : 'a t -> unit
(** Sortedness, non-overlap, node occupancy, equal leaf depth, count. *)
