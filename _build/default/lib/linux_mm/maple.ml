(* A maple-tree-style B-tree over non-overlapping intervals — the data
   structure Linux's VMA layer actually uses ([55], "an RCU-safe maple
   tree"): wide nodes (16 slots, cache-line friendly) and therefore very
   shallow trees, read lock-free by the fault path.

   Generic in the item type; the interval is derived through [start]/[stop]
   accessors supplied at creation. Invariants: items are non-overlapping
   and globally sorted by start; leaves hold 1..16 items (root may hold 0);
   internal nodes hold 2..16 children; all leaves at equal depth.

   Deletion uses relaxed rebalancing: an underfull node borrows from or
   merges with a sibling, so the depth bound holds without the full B-tree
   dance on every path.

   Cost model: every node visited during a descent charges one node visit
   (the whole node is one or two cache lines — that is the point of wide
   nodes) plus a shared read of the tree's line; structural changes charge
   an update. *)

let cap = 16 (* slots per node, as in Linux's maple tree *)

type 'a node =
  | Leaf of { mutable items : 'a array }
  | Internal of { mutable children : 'a node array }

type 'a t = {
  start : 'a -> int;
  stop : 'a -> int;
  mutable root : 'a node;
  mutable count : int;
  line : Mm_sim.Engine.Line.t;
  mutable height : int;
}

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let visit t =
  charge Mm_sim.Cost.vma_node_visit;
  if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.Line.read t.line

let create ~start ~stop =
  {
    start;
    stop;
    root = Leaf { items = [||] };
    count = 0;
    line = Mm_sim.Engine.Line.make ();
    height = 1;
  }

let count t = t.count
let height t = t.height

(* Minimum start key in a subtree (wide nodes keep this cheap). *)
let rec min_start t = function
  | Leaf { items } ->
    if Array.length items = 0 then max_int else t.start items.(0)
  | Internal { children } -> min_start t children.(0)

(* Index of the child a key belongs to: the last child whose min_start is
   <= key (or the first child). *)
let child_index t children key =
  let n = Array.length children in
  let idx = ref 0 in
  for i = 1 to n - 1 do
    if min_start t children.(i) <= key then idx := i
  done;
  !idx

(* -- Lookup -- *)

let find t addr =
  let rec go node =
    visit t;
    match node with
    | Leaf { items } ->
      let found = ref None in
      Array.iter
        (fun v -> if t.start v <= addr && addr < t.stop v then found := Some v)
        items;
      !found
    | Internal { children } -> go children.(child_index t children addr)
  in
  go t.root

(* -- Insert -- *)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j ->
      if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* Insert into a subtree; returns a right sibling when the node split. *)
let rec insert_into t node item =
  visit t;
  match node with
  | Leaf l ->
    let key = t.start item in
    let pos = ref (Array.length l.items) in
    Array.iteri (fun i v -> if t.start v > key && !pos > i then pos := i) l.items;
    l.items <- array_insert l.items !pos item;
    charge Mm_sim.Cost.vma_tree_update;
    if Array.length l.items > cap then begin
      (* Split: right half moves to a new leaf. *)
      let n = Array.length l.items in
      let right = Array.sub l.items (n / 2) (n - (n / 2)) in
      l.items <- Array.sub l.items 0 (n / 2);
      Some (Leaf { items = right })
    end
    else None
  | Internal inode -> (
    let idx = child_index t inode.children (t.start item) in
    match insert_into t inode.children.(idx) item with
    | None -> None
    | Some right ->
      inode.children <- array_insert inode.children (idx + 1) right;
      charge Mm_sim.Cost.vma_tree_update;
      if Array.length inode.children > cap then begin
        let n = Array.length inode.children in
        let right_children = Array.sub inode.children (n / 2) (n - (n / 2)) in
        inode.children <- Array.sub inode.children 0 (n / 2);
        Some (Internal { children = right_children })
      end
      else None)

let insert t item =
  (match insert_into t t.root item with
  | None -> ()
  | Some right ->
    t.root <- Internal { children = [| t.root; right |] };
    t.height <- t.height + 1);
  t.count <- t.count + 1

(* -- Remove (by exact start key) -- *)

let rec remove_from t node key =
  visit t;
  match node with
  | Leaf l ->
    let found = ref false in
    Array.iteri
      (fun i v ->
        if (not !found) && t.start v = key then begin
          found := true;
          l.items <- array_remove l.items i
        end)
      l.items;
    if !found then charge Mm_sim.Cost.vma_tree_update;
    !found
  | Internal inode ->
    let idx = child_index t inode.children key in
    let found = remove_from t inode.children.(idx) key in
    if found then begin
      (* Relaxed rebalance: merge an underfull child into a sibling. *)
      let size = function
        | Leaf { items } -> Array.length items
        | Internal { children } -> Array.length children
      in
      let child = inode.children.(idx) in
      if size child = 0 then
        inode.children <- array_remove inode.children idx
      else if size child = 1 && Array.length inode.children > 1 then begin
        let sib = if idx > 0 then idx - 1 else idx + 1 in
        match (inode.children.(sib), child) with
        | Leaf a, Leaf b ->
          let merged =
            if sib < idx then Array.append a.items b.items
            else Array.append b.items a.items
          in
          if Array.length merged <= cap then begin
            charge Mm_sim.Cost.vma_tree_update;
            inode.children.(sib) <- Leaf { items = merged };
            inode.children <- array_remove inode.children idx
          end
        | Internal a, Internal b ->
          let merged =
            if sib < idx then Array.append a.children b.children
            else Array.append b.children a.children
          in
          if Array.length merged <= cap then begin
            charge Mm_sim.Cost.vma_tree_update;
            inode.children.(sib) <- Internal { children = merged };
            inode.children <- array_remove inode.children idx
          end
        | _ -> ()
      end
    end;
    found

let remove t key =
  let found = remove_from t t.root key in
  if found then begin
    t.count <- t.count - 1;
    (* Collapse a single-child root. *)
    match t.root with
    | Internal { children = [| only |] } ->
      t.root <- only;
      t.height <- t.height - 1
    | _ -> ()
  end;
  found

(* -- Range queries -- *)

(* All items intersecting [lo, hi), in start order. *)
let overlapping t ~lo ~hi =
  let acc = ref [] in
  let rec go node =
    visit t;
    match node with
    | Leaf { items } ->
      Array.iter
        (fun v -> if t.start v < hi && lo < t.stop v then acc := v :: !acc)
        items
    | Internal { children } ->
      Array.iteri
        (fun i c ->
          (* Prune: skip children entirely right of the range or entirely
             left (their successor's min bound tells us). *)
          let c_min = min_start t c in
          let c_next_min =
            if i + 1 < Array.length children then min_start t children.(i + 1)
            else max_int
          in
          if c_min < hi && lo < c_next_min then go c)
        children
  in
  go t.root;
  List.rev !acc

let iter t f =
  let rec go = function
    | Leaf { items } -> Array.iter f items
    | Internal { children } -> Array.iter go children
  in
  go t.root

(* -- Invariants (for property tests) -- *)

exception Broken of string

let check_invariants t =
  let fail s = raise (Broken s) in
  let leaf_depths = ref [] in
  let rec go node depth last_stop =
    match node with
    | Leaf { items } ->
      leaf_depths := depth :: !leaf_depths;
      Array.fold_left
        (fun prev v ->
          if t.start v < prev then fail "items overlap or out of order";
          if t.stop v <= t.start v then fail "empty interval";
          t.stop v)
        last_stop items
    | Internal { children } ->
      if Array.length children < 1 then fail "empty internal node";
      if Array.length children > cap then fail "overfull internal node";
      Array.fold_left (fun prev c -> go c (depth + 1) prev) last_stop children
  in
  ignore (go t.root 1 min_int);
  (match List.sort_uniq compare !leaf_depths with
  | [] | [ _ ] -> ()
  | _ -> fail "leaves at unequal depths");
  let n = ref 0 in
  iter t (fun _ -> incr n);
  if !n <> t.count then fail "count mismatch"
