lib/linux_mm/linux_mm.mli: Mm_hal Mm_phys
