lib/linux_mm/maple.mli:
