lib/linux_mm/vma.ml: List Maple Mm_hal Mm_phys Mm_sim
