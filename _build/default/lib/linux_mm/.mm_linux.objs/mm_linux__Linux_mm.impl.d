lib/linux_mm/linux_mm.ml: Array Cortenmm Geometry Isa List Mm_hal Mm_phys Mm_pt Mm_sim Mm_tlb Mm_util Perm Pte Vma
