lib/linux_mm/maple.ml: Array List Mm_sim
