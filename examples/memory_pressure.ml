(* Advanced semantics tour: NUMA placement, transparent huge pages, and
   reclaim under memory pressure — the extension features built on top of
   the per-PTE metadata arrays.

   Run with: dune exec examples/memory_pressure.exe *)

module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm
open Cortenmm

let page = 4096
let mib n = n * 1024 * 1024
let ok = function Ok v -> v | Error e -> raise (Mm_hal.Errno.Error e)

let () =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:4 () in
  let asp = Addr_space.create kernel Config.adv in
  let dev = Blockdev.create ~name:"nvme0swap" () in
  let w = Engine.create ~ncpus:4 in
  Engine.spawn w ~cpu:0 (fun () ->
      Printf.printf "== NUMA placement (policy lives in the metadata) ==\n";
      let a = ok (Mm.mmap_r asp ~policy:(Numa.Interleave [ 0; 1 ])
                    ~len:(4 * page) ~perm:Perm.rw ()) in
      Mm.touch_range asp ~addr:a ~len:(4 * page) ~write:true;
      for i = 0 to 3 do
        let node =
          Addr_space.with_lock asp ~lo:(a + (i * page))
            ~hi:(a + ((i + 1) * page)) (fun c ->
              match Addr_space.query c (a + (i * page)) with
              | Status.Mapped { pfn; _ } ->
                Mm_phys.Phys.node_of_pfn kernel.Kernel.phys pfn
              | _ -> -1)
        in
        Printf.printf "   page %d -> NUMA node %d\n" i node
      done;

      Printf.printf "\n== transparent huge pages ==\n";
      let h = ok (Mm.mmap_r asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw ()) in
      Mm.touch_range asp ~addr:h ~len:(mib 2) ~write:true;
      Printf.printf "   PT pages before promotion: %d\n"
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp));
      Printf.printf "   khugepaged promoted %d region(s)\n" (Mm.khugepaged asp);
      Printf.printf "   PT pages after promotion:  %d\n"
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp));

      Printf.printf "\n== memory pressure: the swap daemon ==\n";
      let r = ok (Mm.mmap_r asp ~len:(128 * page) ~perm:Perm.rw ()) in
      Mm.touch_range asp ~addr:r ~len:(128 * page) ~write:true;
      Mm.write_value asp ~vaddr:r ~value:4242;
      let stats = Swapd.fresh_stats () in
      let got = Swapd.reclaim ~stats asp ~dev ~target:100 in
      Printf.printf
        "   reclaimed %d pages (scanned %d, second chances %d)\n" got
        stats.Swapd.scanned stats.Swapd.second_chances;
      Printf.printf "   swap device now holds %d blocks\n"
        (Blockdev.used_blocks dev);
      Printf.printf "   touching a swapped page faults it back: value %d\n"
        (Mm.read_value asp ~vaddr:r);
      Addr_space.check_well_formed asp;
      Printf.printf "\npage table verified well-formed.\n");
  Engine.run w
