(* Quickstart: the transactional interface in a nutshell.

   Run with: dune exec examples/quickstart.exe

   Creates an address space on a 4-CPU simulated machine, maps a region,
   touches it (demand paging), inspects it through a cursor, protects it
   and unmaps it — printing what happens at each step. *)

module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm
open Cortenmm

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

(* The MM operations return typed errors; these examples only issue valid
   requests, so unwrap. *)
let ok = function Ok v -> v | Error e -> raise (Mm_hal.Errno.Error e)

let () =
  let kernel = Kernel.create ~ncpus:4 () in
  let asp = Addr_space.create kernel Config.adv in
  let w = Engine.create ~ncpus:4 in
  Engine.spawn w ~cpu:0 (fun () ->
      step "mmap 64 KiB of anonymous memory (rw)";
      let addr = ok (Mm.mmap_r asp ~len:(64 * 1024) ~perm:Perm.rw ()) in
      Printf.printf "   -> %#x (no physical pages yet: on-demand paging)\n"
        addr;
      Printf.printf "   PT pages so far: %d\n"
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp));

      step "query the region inside a transaction";
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + (64 * 1024)) (fun c ->
          Printf.printf "   status(%#x) = %s\n" addr
            (Status.to_string (Addr_space.query c addr)));

      step "write to the first page (page fault -> zeroed frame)";
      Mm.write_value asp ~vaddr:addr ~value:1234;
      Printf.printf "   read back: %d\n" (Mm.read_value asp ~vaddr:addr);
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + 4096) (fun c ->
          Printf.printf "   status(%#x) = %s\n" addr
            (Status.to_string (Addr_space.query c addr)));

      step "mprotect the region read-only";
      ok (Mm.mprotect_r asp ~addr ~len:(64 * 1024) ~perm:Perm.r);
      (match Mm.page_fault asp ~vaddr:addr ~write:true with
      | Mm.Sigsegv -> Printf.printf "   write fault -> SIGSEGV (as expected)\n"
      | Mm.Handled -> Printf.printf "   write fault unexpectedly handled!\n");

      step "munmap everything";
      ok (Mm.munmap_r asp ~addr ~len:(64 * 1024));
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + 4096) (fun c ->
          Printf.printf "   status(%#x) = %s\n" addr
            (Status.to_string (Addr_space.query c addr)));
      Addr_space.check_well_formed asp;
      Printf.printf "   page table verified well-formed.\n";

      step "simulated cost of this whole program";
      Printf.printf "   %d virtual cycles on cpu 0\n" (Engine.now ()));
  Engine.run w
