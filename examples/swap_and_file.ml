(* Swapping and file-backed mappings.

   Run with: dune exec examples/swap_and_file.exe

   Demonstrates the advanced memory semantics carried by the per-PTE
   metadata arrays (paper §4.3): a page swapped out to a block device and
   transparently faulted back in, a private file mapping with COW against
   the page cache, and a shared mapping written back with msync. *)

module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm
open Cortenmm

let status_at asp addr =
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + 4096) (fun c ->
      Status.to_string (Addr_space.query c addr))

let ok = function Ok v -> v | Error e -> raise (Mm_hal.Errno.Error e)

let () =
  let kernel = Kernel.create ~ncpus:1 () in
  let asp = Addr_space.create kernel Config.adv in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () ->
      Printf.printf "== swapping ==\n";
      let dev = Blockdev.create ~name:"nvme0swap" () in
      let a = ok (Mm.mmap_r asp ~len:4096 ~perm:Perm.rw ()) in
      Mm.write_value asp ~vaddr:a ~value:777;
      Printf.printf "   before swap-out: %s\n" (status_at asp a);
      ignore (Mm.swap_out asp ~vaddr:a ~dev);
      Printf.printf "   after swap-out:  %s (device holds %d block)\n"
        (status_at asp a) (Blockdev.used_blocks dev);
      Printf.printf "   touching swapped page faults it back in...\n";
      let value = Mm.read_value asp ~vaddr:a in
      let status = status_at asp a in
      Printf.printf "   value after swap-in: %d, status %s\n" value status;

      Printf.printf "\n== private file mapping (COW against the page cache) ==\n";
      let file = File.regular ~name:"libc.so" ~size:(64 * 1024) in
      let m =
        ok
          (Mm.mmap_r asp ~backing:(Mm.File_private (file, 0)) ~len:(16 * 1024)
             ~perm:Perm.rw ())
      in
      Printf.printf "   first read faults the page cache in: value %d\n"
        (Mm.read_value asp ~vaddr:m);
      Printf.printf "   status: %s\n" (status_at asp m);
      Mm.write_value asp ~vaddr:m ~value:9999;
      Printf.printf "   after a private write: value %d, cache page intact: %b\n"
        (Mm.read_value asp ~vaddr:m)
        (match File.lookup_page file ~page_index:0 with
        | Some f -> f.Mm_phys.Frame.contents <> 9999
        | None -> false);

      Printf.printf "\n== shared mapping + msync ==\n";
      let log = File.regular ~name:"journal.dat" ~size:(16 * 1024) in
      let s =
        ok
          (Mm.mmap_r asp ~backing:(Mm.Shared (log, 0)) ~len:(16 * 1024)
             ~perm:Perm.rw ())
      in
      Mm.write_value asp ~vaddr:s ~value:31337;
      Printf.printf "   wrote through the shared mapping; msync wrote back %d page(s)\n"
        (ok (Mm.msync_r asp ~file:log));

      Printf.printf "\n== reverse mapping ==\n";
      let rmapped =
        Addr_space.with_lock asp ~lo:a ~hi:(a + 4096) (fun c ->
            match Addr_space.query c a with
            | Status.Mapped { pfn; _ } -> Kernel.rmap_of kernel ~pfn
            | _ -> [])
      in
      List.iter
        (fun (asp_id, vaddr) ->
          Printf.printf "   frame of %#x is mapped by asp %d at %#x\n" a asp_id
            vaddr)
        rmapped;
      Addr_space.check_well_formed asp;
      Printf.printf "\npage table verified well-formed.\n");
  Engine.run w
