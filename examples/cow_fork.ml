(* Copy-on-write fork walkthrough (the paper's Fig 8 COW logic).

   Run with: dune exec examples/cow_fork.exe

   A parent writes to a page, forks, and both sides read and write; the
   example prints the frame numbers and map counts so the COW sharing and
   the break are visible. *)

module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm
open Cortenmm

let pfn_of asp addr =
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + 4096) (fun c ->
      match Addr_space.query c addr with
      | Status.Mapped { pfn; perm } ->
        Some (pfn, Perm.to_string perm)
      | _ -> None)

let show kernel asp name addr =
  match pfn_of asp addr with
  | Some (pfn, perm) ->
    let f = Mm_phys.Phys.frame kernel.Kernel.phys pfn in
    Printf.printf "   %-7s -> frame %#x (%s), map_count=%d, value=%d\n" name
      pfn perm f.Mm_phys.Frame.map_count f.Mm_phys.Frame.contents
  | None -> Printf.printf "   %-7s -> (not mapped)\n" name

let () =
  let kernel = Kernel.create ~ncpus:1 () in
  let parent = Addr_space.create kernel Config.adv in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () ->
      let addr =
        match Mm.mmap_r parent ~len:4096 ~perm:Perm.rw () with
        | Ok a -> a
        | Error e -> raise (Mm_hal.Errno.Error e)
      in
      Mm.write_value parent ~vaddr:addr ~value:42;
      Printf.printf "== before fork\n";
      show kernel parent "parent" addr;

      let child = Mm.fork parent in
      Printf.printf "\n== after fork: both map the same frame, write-protected + COW\n";
      show kernel parent "parent" addr;
      show kernel child "child" addr;

      Printf.printf "\n== child reads (no copy)\n";
      Printf.printf "   child reads %d\n" (Mm.read_value child ~vaddr:addr);

      Printf.printf "\n== child writes 7: COW break copies the frame\n";
      Mm.write_value child ~vaddr:addr ~value:7;
      show kernel parent "parent" addr;
      show kernel child "child" addr;

      Printf.printf
        "\n== parent writes 43: sole owner now, no copy (Fig 8 L29-31)\n";
      Mm.write_value parent ~vaddr:addr ~value:43;
      show kernel parent "parent" addr;
      show kernel child "child" addr;

      Addr_space.check_well_formed parent;
      Addr_space.check_well_formed child;
      Printf.printf "\nboth page tables verified well-formed.\n");
  Engine.run w
