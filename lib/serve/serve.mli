(** Open-loop serving mode: a seeded session-fleet load generator over
    any backend-registry entry, with SLO-style tail-latency reports.

    Sessions arrive on a virtual-time schedule drawn from per-CPU
    exponential interarrivals; the arrival clock keeps running while the
    system stalls, so backlog shows up as queueing delay in the session
    latency tail — the measurement a batched TLB-shootdown policy is
    supposed to move. Equal seeds give byte-identical reports. *)

val batched_default : Mm_tlb.Tlb.policy

val policies : (string * Mm_tlb.Tlb.policy) list
(** The named policies: ["immediate"], ["batched"]. *)

val policy_names : string list

val find_policy : string -> (Mm_tlb.Tlb.policy, string) result
(** [Error msg] carries the valid-name listing, for drivers to print
    verbatim. *)

val with_policy :
  policy:Mm_tlb.Tlb.policy ->
  Mm_workloads.Backend.b ->
  Mm_workloads.Backend.b
(** Wrap a backend so every instance it creates starts under [policy] —
    lets the differential oracle replay traces against a batched world
    without the driver knowing about policies. *)

type phase_stats = {
  s_count : int;
  s_mean : float;
  s_p50 : int;
  s_p99 : int;
  s_p999 : int;
  s_max : int;
}
(** Percentiles are log2-bucket upper bounds (see
    {!Mm_obs.Metrics.quantile}): within 2x of exact, never under. *)

type report = {
  r_system : string;
  r_mix : string;
  r_policy : string;
  r_sessions : int;
  r_ops : int;
  r_cycles : int;  (** measured interval, barrier release to last done *)
  r_mmap : phase_stats;
  r_fault : phase_stats;
  r_mprotect : phase_stats;
  r_munmap : phase_stats;
  r_fork : phase_stats;
      (** address-space clone latency; zero samples for non-fork mixes *)
  r_session : phase_stats;
      (** arrival-to-completion, includes queueing delay *)
  r_ipis : int;
  r_batched : int;  (** shootdown records deferred to a batch *)
  r_batch_flushes : int;
  r_worst_stall : int;  (** max enqueue-to-flush age of a deferred record *)
}

val run :
  ?isa:Mm_hal.Isa.t ->
  backend:Mm_workloads.Backend.b ->
  mix:Mix.t ->
  policy_name:string ->
  policy:Mm_tlb.Tlb.policy ->
  ncpus:int ->
  sessions:int ->
  seed:int ->
  unit ->
  report
(** One serving run: [sessions] sessions spread over [ncpus] generator
    CPUs against a fresh instance of [backend] under [policy]. Ends by
    reverting the instance to [Immediate], which drains any pending
    shootdown batch (and its deferred frame frees).

    When [mix.fork] is set, each session forks a child off the shared
    parent (re-armed with [policy] — fork children start with a fresh
    TLB), COW-breaks the per-CPU hot region it inherited, runs its
    bursts privately, and is drained and destroyed at session end; the
    children's shootdown counters fold into the report totals. *)

val run_matrix :
  ?isa:Mm_hal.Isa.t ->
  ?jobs:int ->
  systems:Mm_workloads.System.Registry.entry list ->
  mix:Mix.t ->
  policies:(string * Mm_tlb.Tlb.policy) list ->
  ncpus:int ->
  sessions:int ->
  seed:int ->
  unit ->
  report list
(** Every (system, policy) combination, in the given order. [jobs]
    (default 1) shards the cells across domains; each cell is an
    independent world and the merge preserves cell order, so the report
    list is identical for any value. *)

val report_json :
  mix:Mix.t -> ncpus:int -> sessions:int -> seed:int -> report list ->
  Mm_obs.Json.t

val write_json :
  path:string ->
  mix:Mix.t ->
  ncpus:int ->
  sessions:int ->
  seed:int ->
  report list ->
  unit

val table : report list -> string
(** Human-readable SLO table: session-latency percentiles plus the
    shootdown accounting that explains them. *)
