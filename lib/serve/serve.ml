(* Open-loop serving mode: a seeded session-fleet load generator over any
   {!Mm_workloads.Backend.S} registry entry, with SLO-style tail-latency
   reports.

   Unlike the closed-loop microbenchmarks (which issue the next operation
   only when the previous one returns), sessions here arrive on a fixed
   virtual-time schedule drawn from per-CPU exponential interarrivals:
   when the system stalls — say a synchronous TLB shootdown storm — the
   arrival clock keeps running and the backlog shows up as queueing delay
   in the session-latency tail. That is the measurement a batched
   shootdown policy is supposed to move, and what p50 alone would hide.

   Determinism: all randomness flows through per-CPU [Mm_util.Rng]
   streams derived from the run seed, latency histograms are per-run
   ({!Mm_obs.Metrics.unregistered}), and the report serializer emits
   fields in a fixed order — equal seeds give byte-identical JSON. *)

module Engine = Mm_sim.Engine
module Tlb = Mm_tlb.Tlb
module Rng = Mm_util.Rng
module Metrics = Mm_obs.Metrics
module System = Mm_workloads.System
module Backend = Mm_workloads.Backend
module Runner = Mm_workloads.Runner
module Perm = Mm_hal.Perm

(* -- Shootdown-policy registry -- *)

(* The batched window/size are picked so that a busy CPU fills a batch in
   well under the window (size-triggered coalescing) while an idle one
   still drains within one scheduling quantum of deferral. *)
let batched_default = Tlb.Batched { window = 20_000; max_batch = 32 }

let policies = [ ("immediate", Tlb.Immediate); ("batched", batched_default) ]
let policy_names = List.map fst policies

let find_policy name =
  match List.assoc_opt name policies with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown serve policy %S (valid: %s)" name
         (String.concat ", " policy_names))

(* Wrap a backend so every instance it creates starts under [policy] —
   lets the differential oracle replay traces against a batched world
   without any driver knowing about policies. *)
let with_policy ~policy (b : Backend.b) : Backend.b =
  let module B = (val b) in
  (module struct
    include B

    let create ?isa ~ncpus () =
      let t = B.create ?isa ~ncpus () in
      B.set_shootdown_policy t policy;
      t
  end : Backend.S)

(* -- Reports -- *)

type phase_stats = {
  s_count : int;
  s_mean : float;
  s_p50 : int;
  s_p99 : int;
  s_p999 : int;
  s_max : int;
}

type report = {
  r_system : string;
  r_mix : string;
  r_policy : string;
  r_sessions : int;
  r_ops : int;
  r_cycles : int; (* measured interval, barrier release to last done *)
  r_mmap : phase_stats;
  r_fault : phase_stats;
  r_mprotect : phase_stats;
  r_munmap : phase_stats;
  r_fork : phase_stats; (* address-space clone, fork mixes only *)
  r_session : phase_stats; (* arrival-to-completion, includes queueing *)
  r_ipis : int;
  r_batched : int; (* shootdown records deferred to a batch *)
  r_batch_flushes : int;
  r_worst_stall : int; (* max enqueue-to-flush age of a deferred record *)
}

let stats_of h =
  {
    s_count = Metrics.samples h;
    s_mean = Metrics.mean h;
    s_p50 = Metrics.quantile h 0.5;
    s_p99 = Metrics.quantile h 0.99;
    s_p999 = Metrics.quantile h 0.999;
    s_max = Metrics.max_value h;
  }

(* Exponential sample with the given mean, truncated to whole cycles. *)
let exp_sample rng mean =
  if mean <= 0 then 0
  else int_of_float (-.log (1.0 -. Rng.float rng) *. float_of_int mean)

(* -- The load generator -- *)

let run ?isa ~backend ~mix ~policy_name ~policy ~ncpus ~sessions ~seed () =
  let sys = System.of_backend ?isa backend ~ncpus in
  System.set_shootdown_policy sys policy;
  let ps = sys.System.page_size in
  let h_mmap = Metrics.unregistered "serve.mmap"
  and h_fault = Metrics.unregistered "serve.fault"
  and h_mprotect = Metrics.unregistered "serve.mprotect"
  and h_munmap = Metrics.unregistered "serve.munmap"
  and h_fork = Metrics.unregistered "serve.fork"
  and h_session = Metrics.unregistered "serve.session" in
  let total_ops = ref 0 in
  (* Fork mixes: one hot region per generator CPU, mapped and written in
     the parent before the measured interval, so every session's child
     inherits pages it must COW-break. Child TLBs are fresh per fork, so
     their shootdown traffic is accumulated here as each child drains. *)
  let hot_pages = 4 in
  let hot = Array.make ncpus 0 in
  let child_ipis = ref 0
  and child_batched = ref 0
  and child_flushes = ref 0
  and child_stall = ref 0 in
  (* Spread the session quota over the CPUs; remainder to the low ids. *)
  let quota cpu =
    (sessions / ncpus) + if cpu < sessions mod ncpus then 1 else 0
  in
  let measure cpu =
    (* One independent stream per CPU: arrival order across CPUs is an
       emergent interleaving, but each CPU's schedule depends only on
       (seed, cpu). *)
    let rng = Rng.create ~seed:(seed + ((cpu + 1) * 0x9e3779b9)) in
    let ops = ref 0 in
    let op_done () =
      incr ops;
      incr total_ops;
      if !ops mod 8 = 0 then System.timer_tick sys
    in
    let think () =
      let d = exp_sample rng mix.Mix.think in
      if d > 0 then Engine.tick d
    in
    let next_arrival = ref (Engine.now ()) in
    for sess = 1 to quota cpu do
      next_arrival := !next_arrival + exp_sample rng mix.Mix.interarrival;
      (* Open loop: if we are early, wait for the arrival; if the backlog
         already pushed us past it, start at once — the lateness is the
         queueing delay and stays inside the session latency. *)
      if Engine.now () < !next_arrival then Engine.advance_to !next_arrival;
      let arrival = !next_arrival in
      (* A fork-fleet session runs in its own forked child: clone the
         shared parent (the mix's signature cost, in its own histogram),
         COW-break every inherited hot page, then run the bursts in the
         child's private space. Non-fork mixes run directly on [sys]. *)
      let ssys =
        if not mix.Mix.fork then sys
        else begin
          let t0 = Engine.now () in
          let child = System.fork_exn sys in
          Metrics.observe h_fork (Engine.now () - t0);
          (* The child's TLB is fresh: re-arm the run's policy so its
             unmaps see the same shootdown regime as the parent's. *)
          System.set_shootdown_policy child policy;
          op_done ();
          think ();
          for p = 0 to hot_pages - 1 do
            let t0 = Engine.now () in
            System.write_value_exn child
              ~vaddr:(hot.(cpu) + (p * ps))
              ~value:(((cpu + 1) * 1_000_000) + p);
            Metrics.observe h_fault (Engine.now () - t0);
            op_done ()
          done;
          think ();
          child
        end
      in
      for _ = 1 to mix.Mix.bursts do
        let pages = Rng.int_in rng ~lo:mix.Mix.min_pages ~hi:mix.Mix.max_pages in
        let len = pages * ps in
        let t0 = Engine.now () in
        let addr = System.mmap_exn ssys ~len ~perm:Perm.rw () in
        Metrics.observe h_mmap (Engine.now () - t0);
        op_done ();
        think ();
        for p = 0 to pages - 1 do
          let t0 = Engine.now () in
          (match System.touch ssys ~vaddr:(addr + (p * ps)) ~write:true with
          | Ok () -> ()
          | Error _ -> ());
          Metrics.observe h_fault (Engine.now () - t0);
          op_done ()
        done;
        think ();
        (* The wire coin: only drawn for mixes that ask for it (so
           pre-reclaim mixes keep their historical RNG streams), but
           drawn before the capability check so the arrival/size stream
           stays identical across backends with and without reclaim. *)
        let wire =
          mix.Mix.mlock_prob > 0.0 && Rng.float rng < mix.Mix.mlock_prob
        in
        let wired = wire && System.has_reclaim ssys in
        if wired then begin
          let t0 = Engine.now () in
          (match System.mlock ssys ~addr ~len with Ok () | Error _ -> ());
          Metrics.observe h_fault (Engine.now () - t0);
          op_done ();
          think ()
        end;
        (* Draw the seal coin unconditionally so the arrival/size stream
           stays identical across backends with and without mprotect. *)
        let seal = Rng.float rng < mix.Mix.mprotect_prob in
        if seal && System.has_mprotect ssys then begin
          let t0 = Engine.now () in
          System.mprotect_exn ssys ~addr ~len ~perm:Perm.r;
          Metrics.observe h_mprotect (Engine.now () - t0);
          op_done ();
          think ()
        end;
        if wired then begin
          (* Unwire before unmap, like a real tenant would (munmap does
             not implicitly unlock). *)
          (match System.munlock ssys ~addr ~len with Ok () | Error _ -> ());
          op_done ()
        end;
        let t0 = Engine.now () in
        System.munmap_exn ssys ~addr ~len;
        Metrics.observe h_munmap (Engine.now () - t0);
        op_done ()
      done;
      (* Pressure wave: every [pressure_every]-th session ends with a
         synchronous page-out daemon pass on the serving CPU. The stall
         (and the refaults it causes other sessions) lands inside the
         session latencies — the tail the storm is meant to move. *)
      if
        mix.Mix.pressure_every > 0
        && sess mod mix.Mix.pressure_every = 0
        && System.has_reclaim sys
      then begin
        (match System.pressure sys ~target_pages:mix.Mix.pressure_pages with
        | Ok _ | Error _ -> ());
        op_done ()
      end;
      if mix.Mix.fork then begin
        (* Drain the child's pending shootdown batch (deferred frame
           frees must land before teardown), bank its TLB accounting,
           and retire the process. *)
        System.set_shootdown_policy ssys Tlb.Immediate;
        let cc = System.tlb_counters ssys in
        child_ipis := !child_ipis + cc.Tlb.ipis;
        child_batched := !child_batched + cc.Tlb.batched;
        child_flushes := !child_flushes + cc.Tlb.batch_flushes;
        child_stall := max !child_stall cc.Tlb.worst_stall;
        System.destroy ssys;
        op_done ()
      end;
      Metrics.observe h_session (Engine.now () - arrival)
    done
  in
  let prep cpu =
    System.warm sys ~cpu;
    if mix.Mix.fork then begin
      let addr = System.mmap_exn sys ~len:(hot_pages * ps) ~perm:Perm.rw () in
      hot.(cpu) <- addr;
      for p = 0 to hot_pages - 1 do
        System.write_value_exn sys
          ~vaddr:(addr + (p * ps))
          ~value:(((cpu + 1) * 1000) + p)
      done
    end
  in
  let cycles = Runner.run_phases ~prep ~ncpus ~measure () in
  (* Drain: reverting to Immediate completes any still-pending batch, so
     every deferred frame free lands before we read the counters. *)
  System.set_shootdown_policy sys Tlb.Immediate;
  let c = System.tlb_counters sys in
  {
    r_system = sys.System.name;
    r_mix = mix.Mix.name;
    r_policy = policy_name;
    r_sessions = sessions;
    r_ops = !total_ops;
    r_cycles = cycles;
    r_mmap = stats_of h_mmap;
    r_fault = stats_of h_fault;
    r_mprotect = stats_of h_mprotect;
    r_munmap = stats_of h_munmap;
    r_fork = stats_of h_fork;
    r_session = stats_of h_session;
    r_ipis = c.Tlb.ipis + !child_ipis;
    r_batched = c.Tlb.batched + !child_batched;
    r_batch_flushes = c.Tlb.batch_flushes + !child_flushes;
    r_worst_stall = max c.Tlb.worst_stall !child_stall;
  }

(* Every (system, policy) combination, in the given order. Each cell is
   an independent world, so with [jobs > 1] cells run on separate
   domains; the ordered merge keeps the report list (and hence the table
   and JSON) byte-identical for any [jobs]. *)
let run_matrix ?isa ?(jobs = 1) ~systems ~mix ~policies ~ncpus ~sessions ~seed
    () =
  let cells =
    List.concat_map
      (fun (e : System.Registry.entry) ->
        List.map (fun policy -> (e, policy)) policies)
      systems
  in
  Mm_par.Par.map ~jobs
    (fun ((e : System.Registry.entry), (policy_name, policy)) ->
      Runner.reset_world_state ();
      run ?isa ~backend:e.System.Registry.r_backend ~mix ~policy_name ~policy
        ~ncpus ~sessions ~seed ())
    cells

(* -- Serialization -- *)

let json_of_stats s =
  let open Mm_obs in
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("mean", Json.Float s.s_mean);
      ("p50", Json.Int s.s_p50);
      ("p99", Json.Int s.s_p99);
      ("p999", Json.Int s.s_p999);
      ("max", Json.Int s.s_max);
    ]

let json_of_report r =
  let open Mm_obs in
  Json.Obj
    [
      ("system", Json.String r.r_system);
      ("mix", Json.String r.r_mix);
      ("policy", Json.String r.r_policy);
      ("sessions", Json.Int r.r_sessions);
      ("ops", Json.Int r.r_ops);
      ("cycles", Json.Int r.r_cycles);
      ("mmap", json_of_stats r.r_mmap);
      ("fault", json_of_stats r.r_fault);
      ("mprotect", json_of_stats r.r_mprotect);
      ("munmap", json_of_stats r.r_munmap);
      ("fork", json_of_stats r.r_fork);
      ("session", json_of_stats r.r_session);
      ("ipis", Json.Int r.r_ipis);
      ("batched", Json.Int r.r_batched);
      ("batch_flushes", Json.Int r.r_batch_flushes);
      ("worst_stall", Json.Int r.r_worst_stall);
    ]

let report_json ~mix ~ncpus ~sessions ~seed reports =
  let open Mm_obs in
  Json.Obj
    [
      ("benchmark", Json.String "serve");
      ("mix", Json.String mix.Mix.name);
      ("ncpus", Json.Int ncpus);
      ("sessions", Json.Int sessions);
      ("seed", Json.Int seed);
      ("results", Json.List (List.map json_of_report reports));
    ]

let write_json ~path ~mix ~ncpus ~sessions ~seed reports =
  Mm_obs.Json.write_file ~path (report_json ~mix ~ncpus ~sessions ~seed reports)

(* Human-readable SLO table: session latency percentiles (the number an
   operator would put an objective on) plus the shootdown accounting that
   explains them. *)
let table reports =
  let fmt = string_of_int in
  let rows =
    List.map
      (fun r ->
        [
          r.r_system;
          r.r_policy;
          fmt r.r_sessions;
          fmt r.r_session.s_p50;
          fmt r.r_session.s_p99;
          fmt r.r_session.s_p999;
          fmt r.r_session.s_max;
          fmt r.r_munmap.s_p99;
          fmt r.r_ipis;
          fmt r.r_worst_stall;
        ])
      reports
  in
  Mm_util.Tablefmt.render
    ~header:
      [
        "system";
        "policy";
        "sessions";
        "sess p50";
        "sess p99";
        "sess p999";
        "sess max";
        "unmap p99";
        "ipis";
        "worst stall";
      ]
    rows
