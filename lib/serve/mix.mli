(** Session mixes for the open-loop serving mode: small statistical
    descriptions of one class of short-lived tenant (arrival rate, think
    time, burst shape). All means are in simulated cycles. *)

type t = {
  name : string;
  desc : string;
  interarrival : int;  (** mean cycles between session arrivals, per CPU *)
  think : int;  (** mean cycles between operations within a session *)
  min_pages : int;  (** per-burst mapping size, pages *)
  max_pages : int;
  bursts : int;  (** mmap/touch/munmap bursts per session *)
  mprotect_prob : float;  (** chance a burst read-only-seals before unmap *)
  fork : bool;
      (** fork a child per session: the child COW-breaks the parent's
          hot pages, runs its bursts privately, and is destroyed *)
  mlock_prob : float;
      (** chance a burst wires its region for its lifetime (reclaim
          backends only; the coin is only drawn when positive, so
          pre-reclaim mixes keep their RNG streams) *)
  pressure_every : int;
      (** sessions between page-out daemon pressure waves, 0 = never *)
  pressure_pages : int;  (** reclaim target of one wave *)
}

val short : t
val mixed : t
val faulty : t

val fork_fleet : t
(** The process-fleet mix: every session forks a child off a long-lived
    per-CPU parent, COW-breaks the inherited hot pages, runs one small
    private burst, and exits — a pre-fork server's lifecycle. *)

val reclaim_storm : t
(** Fault-heavy bursts racing periodic page-out daemon pressure waves,
    a quarter of the regions wired for their lifetime — evictions push
    refaults into the fault/session tails; wired regions must survive
    untouched. *)

val all : t list
val names : string list

val find : string -> (t, string) result
(** [find name] is the mix named [name], or [Error msg] where [msg]
    already includes the valid-name listing — drivers print it
    verbatim (the {!Mm_workloads.System.Registry.find} convention). *)
