(* Session mixes for the open-loop serving mode: each mix is a small
   statistical description of one class of short-lived tenant — how often
   sessions arrive (per CPU), how long they think between operations, and
   what their mmap/fault/mprotect/munmap bursts look like.

   The interarrival means are calibrated against the simulated service
   times so the default mixes run the systems at moderate utilization:
   open-loop arrivals keep coming during a slow operation, so a stall
   (e.g. a synchronous TLB shootdown storm) shows up as queueing delay in
   the *session* latency tail, exactly like a real load generator. *)

type t = {
  name : string;
  desc : string;
  interarrival : int; (* mean cycles between session arrivals, per CPU *)
  think : int; (* mean cycles between operations within a session *)
  min_pages : int; (* per-burst mapping size, pages *)
  max_pages : int;
  bursts : int; (* mmap/touch/munmap bursts per session *)
  mprotect_prob : float; (* chance a burst read-only-seals before unmap *)
  fork : bool; (* fork a child per session; bursts run in the child *)
  mlock_prob : float; (* chance a burst wires its region while it lives *)
  pressure_every : int; (* sessions between pressure waves (0 = never) *)
  pressure_pages : int; (* reclaim target of one wave *)
}

let short =
  {
    name = "short";
    desc = "tiny one-burst sessions (1-2 pages), high arrival rate";
    interarrival = 30_000;
    think = 500;
    min_pages = 1;
    max_pages = 2;
    bursts = 1;
    mprotect_prob = 0.0;
    fork = false;
    mlock_prob = 0.0;
    pressure_every = 0;
    pressure_pages = 0;
  }

let mixed =
  {
    name = "mixed";
    desc = "two bursts of 1-8 pages, occasional mprotect seal";
    interarrival = 180_000;
    think = 1_000;
    min_pages = 1;
    max_pages = 8;
    bursts = 2;
    mprotect_prob = 0.25;
    fork = false;
    mlock_prob = 0.0;
    pressure_every = 0;
    pressure_pages = 0;
  }

let faulty =
  {
    name = "faulty";
    desc = "fault-heavy: one burst of 8-16 pages, every page touched";
    interarrival = 120_000;
    think = 500;
    min_pages = 8;
    max_pages = 16;
    bursts = 1;
    mprotect_prob = 0.0;
    fork = false;
    mlock_prob = 0.0;
    pressure_every = 0;
    pressure_pages = 0;
  }

(* The process-fleet mix: every session is a forked child of a
   long-lived per-CPU parent. The child COW-breaks the parent's hot
   pages it inherited, runs one small private burst, and exits — the
   shape of a pre-fork server (postgres, CGI pools) where address-space
   cloning and COW resolution, not steady-state faults, dominate. *)
let fork_fleet =
  {
    name = "fork_fleet";
    desc = "pre-fork process fleet: fork, COW-break inherited pages, exit";
    interarrival = 150_000;
    think = 500;
    min_pages = 1;
    max_pages = 4;
    bursts = 1;
    mprotect_prob = 0.0;
    fork = true;
    mlock_prob = 0.0;
    pressure_every = 0;
    pressure_pages = 0;
  }

(* The reclaim-storm mix: fault-heavy bursts racing periodic pressure
   waves from the page-out daemon, with a quarter of the regions wired
   for their lifetime. The daemon's evictions force refaults (swap-in)
   into the fault and session tails; wired regions must ride the storm
   out untouched. Backends without a page-out daemon run the identical
   arrival/size stream with the reclaim ops as no-ops. *)
let reclaim_storm =
  {
    name = "reclaim_storm";
    desc = "fault-heavy bursts under periodic pressure waves, some wired";
    interarrival = 120_000;
    think = 500;
    min_pages = 8;
    max_pages = 16;
    bursts = 1;
    mprotect_prob = 0.0;
    fork = false;
    mlock_prob = 0.25;
    pressure_every = 4;
    pressure_pages = 32;
  }

let all = [ short; mixed; faulty; fork_fleet; reclaim_storm ]
let names = List.map (fun m -> m.name) all

(* Same convention as [System.Registry.find]: the error message carries
   the valid-name listing so every driver reports it verbatim. *)
let find name =
  match List.find_opt (fun m -> m.name = name) all with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown session mix %S (valid: %s)" name
         (String.concat ", " names))
