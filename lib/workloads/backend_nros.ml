(* NrOS adapter. NrOS (OSDI'21) backs mappings eagerly through the
   replication log — no demand paging — and has no mprotect; both are
   capability facts the drivers and the oracle consume as data. *)

module Errno = Mm_hal.Errno
module N = Mm_nros.Nros

let backend : Backend.b =
  (module struct
    type t = N.t

    let name = "nros"
    let kind = Backend.Nros
    let caps = { Backend.demand_paging = false; has_mprotect = false; has_reclaim = false }
    let create ?(isa = Mm_hal.Isa.x86_64) ~ncpus () = N.create ~isa ~ncpus ()
    let page_size = N.page_size

    let mmap t ?addr ~len ~perm () =
      match Backend.check_mmap ~page_size:(N.page_size t) ?addr ~len () with
      | Error _ as e -> e
      | Ok () -> (
        try Ok (N.mmap t ?addr ~len ~perm ())
        with
        | Mm_phys.Buddy.Out_of_memory | Cortenmm.Va_alloc.Va_exhausted ->
          Error Errno.ENOMEM)

    let munmap t ~addr ~len =
      match Backend.check_range ~page_size:(N.page_size t) ~addr ~len with
      | Error _ as e -> e
      | Ok () -> Ok (N.munmap t ~addr ~len)

    let mprotect _ ~addr:_ ~len:_ ~perm:_ = Error Errno.ENOSYS

    let touch t ~vaddr ~write =
      try Ok (N.touch t ~vaddr ~write)
      with N.Fault v -> Error (Errno.SIGSEGV v)

    let touch_range t ~addr ~len ~write =
      try Ok (N.touch_range t ~addr ~len ~write)
      with N.Fault v -> Error (Errno.SIGSEGV v)

    let page_state t ~vaddr =
      match N.page_state t ~vaddr with
      | `Unmapped -> Backend.P_unmapped
      | `Lazy w -> Backend.P_mapped { writable = w; resident = false }
      | `Resident w -> Backend.P_mapped { writable = w; resident = true }

    let fork t =
      try Ok (N.fork t)
      with Mm_phys.Buddy.Out_of_memory -> Error Errno.ENOMEM

    let destroy t = N.destroy t

    let write_value t ~vaddr ~value =
      try Ok (N.write_value t ~vaddr ~value)
      with N.Fault v -> Error (Errno.SIGSEGV v)

    let read_value t ~vaddr =
      try Ok (N.read_value t ~vaddr)
      with N.Fault v -> Error (Errno.SIGSEGV v)

    let mlock _ ~addr:_ ~len:_ = Error Errno.ENOSYS
    let munlock _ ~addr:_ ~len:_ = Error Errno.ENOSYS
    let pressure _ ~target_pages:_ = Error Errno.ENOSYS

    let timer_tick t =
      if Mm_sim.Engine.in_fiber () then
        Mm_tlb.Tlb.timer_tick (N.tlb t) ~cpu:(Mm_sim.Engine.cpu_id ())

    let set_shootdown_policy t p = Mm_tlb.Tlb.set_policy (N.tlb t) p
    let tlb_counters t = Mm_tlb.Tlb.counters (N.tlb t)

    let mem_stats t =
      let u = Mm_phys.Phys.usage (N.phys t) in
      {
        Backend.pt_bytes = N.replicated_pt_bytes t;
        kernel_bytes = u.Mm_phys.Phys.kernel_bytes;
        resident_bytes = u.Mm_phys.Phys.anon_bytes;
        peak_resident_bytes = Mm_phys.Phys.peak_data_bytes (N.phys t);
      }
  end : Backend.S)
