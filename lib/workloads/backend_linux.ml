(* Linux adapter: wraps the VMA-tree baseline behind {!Backend.S}.
   [Linux_mm] speaks exceptions internally; the adapter classifies
   malformed requests host-side (zero simulated cycles) and converts
   [Fault] into a typed SIGSEGV at the boundary. *)

module Errno = Mm_hal.Errno
module L = Mm_linux.Linux_mm

let backend : Backend.b =
  (module struct
    type t = L.t

    let name = "linux"
    let kind = Backend.Linux
    let caps =
      { Backend.demand_paging = true; has_mprotect = true; has_reclaim = false }
    let create ?(isa = Mm_hal.Isa.x86_64) ~ncpus () = L.create ~isa ~ncpus ()
    let page_size = L.page_size

    let mmap t ?addr ~len ~perm () =
      match Backend.check_mmap ~page_size:(L.page_size t) ?addr ~len () with
      | Error _ as e -> e
      | Ok () -> (
        try Ok (L.mmap t ?addr ~len ~perm ())
        with
        | Mm_phys.Buddy.Out_of_memory | Cortenmm.Va_alloc.Va_exhausted ->
          Error Errno.ENOMEM)

    let munmap t ~addr ~len =
      match Backend.check_range ~page_size:(L.page_size t) ~addr ~len with
      | Error _ as e -> e
      | Ok () -> Ok (L.munmap t ~addr ~len)

    let mprotect t ~addr ~len ~perm =
      match Backend.check_range ~page_size:(L.page_size t) ~addr ~len with
      | Error _ as e -> e
      | Ok () -> Ok (L.mprotect t ~addr ~len ~perm)

    let touch t ~vaddr ~write =
      try Ok (L.touch t ~vaddr ~write)
      with L.Fault v -> Error (Errno.SIGSEGV v)

    let touch_range t ~addr ~len ~write =
      try Ok (L.touch_range t ~addr ~len ~write)
      with L.Fault v -> Error (Errno.SIGSEGV v)

    let page_state t ~vaddr =
      match L.page_state t ~vaddr with
      | `Unmapped -> Backend.P_unmapped
      | `Lazy w -> Backend.P_mapped { writable = w; resident = false }
      | `Resident w -> Backend.P_mapped { writable = w; resident = true }

    let fork t =
      try Ok (L.fork t)
      with Mm_phys.Buddy.Out_of_memory -> Error Errno.ENOMEM

    let destroy t = L.destroy t

    let write_value t ~vaddr ~value =
      try Ok (L.write_value t ~vaddr ~value)
      with L.Fault v -> Error (Errno.SIGSEGV v)

    let read_value t ~vaddr =
      try Ok (L.read_value t ~vaddr)
      with L.Fault v -> Error (Errno.SIGSEGV v)

    let mlock _ ~addr:_ ~len:_ = Error Errno.ENOSYS
    let munlock _ ~addr:_ ~len:_ = Error Errno.ENOSYS
    let pressure _ ~target_pages:_ = Error Errno.ENOSYS

    let timer_tick t =
      if Mm_sim.Engine.in_fiber () then
        Mm_tlb.Tlb.timer_tick (L.tlb t) ~cpu:(Mm_sim.Engine.cpu_id ())

    let set_shootdown_policy t p = Mm_tlb.Tlb.set_policy (L.tlb t) p
    let tlb_counters t = Mm_tlb.Tlb.counters (L.tlb t)

    let mem_stats t =
      let u = Mm_phys.Phys.usage (L.phys t) in
      {
        Backend.pt_bytes = L.pt_page_count t * L.page_size t;
        kernel_bytes = u.Mm_phys.Phys.kernel_bytes;
        resident_bytes = u.Mm_phys.Phys.anon_bytes;
        peak_resident_bytes = Mm_phys.Phys.peak_data_bytes (L.phys t);
      }
  end : Backend.S)
