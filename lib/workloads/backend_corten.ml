(* CortenMM adapter: packs one [Cortenmm.Config.t] variant (adv, rw, or
   an ablation) behind {!Backend.S}. The typed error path goes straight
   through [Cortenmm.Mm]'s [_r] operations — CortenMM is the one system
   whose core already speaks [Errno.t]. *)

module Errno = Mm_hal.Errno
module Perm = Mm_hal.Perm

type state = {
  kernel : Cortenmm.Kernel.t;
  asp : Cortenmm.Addr_space.t;
  daemon : Cortenmm.Pageoutd.t;
      (* one per kernel (fork children inherit it); idle unless a driver
         applies pressure, so default runs never see it *)
}

let make cfg : Backend.b =
  (module struct
    type t = state

    let name = Cortenmm.Config.name cfg
    let kind = Backend.Corten cfg
    let caps =
      { Backend.demand_paging = true; has_mprotect = true; has_reclaim = true }

    let create ?(isa = Mm_hal.Isa.x86_64) ~ncpus () =
      let kernel = Cortenmm.Kernel.create ~isa ~ncpus () in
      let asp = Cortenmm.Addr_space.create kernel cfg in
      let daemon =
        Cortenmm.Pageoutd.create kernel
          ~dev:(Cortenmm.Blockdev.create ~name:"swap0" ())
          ()
      in
      Cortenmm.Pageoutd.register_space daemon asp;
      { kernel; asp; daemon }

    let page_size t = Cortenmm.Addr_space.page_size t.asp

    let mmap t ?addr ~len ~perm () =
      Cortenmm.Mm.mmap_r t.asp ?addr ~len ~perm ()

    let munmap t ~addr ~len = Cortenmm.Mm.munmap_r t.asp ~addr ~len

    let mprotect t ~addr ~len ~perm =
      Cortenmm.Mm.mprotect_r t.asp ~addr ~len ~perm

    let touch t ~vaddr ~write = Cortenmm.Mm.touch_r t.asp ~vaddr ~write

    let touch_range t ~addr ~len ~write =
      Cortenmm.Mm.touch_range_r t.asp ~addr ~len ~write

    (* One inspection transaction over the page's slot. Logical
       writability: a COW-protected resident page counts as writable
       (the store succeeds after the break); virtually-allocated and
       swapped pages report their stored protection. *)
    let page_state t ~vaddr =
      let ps = Cortenmm.Addr_space.page_size t.asp in
      let page = Mm_util.Align.down vaddr ps in
      Cortenmm.Addr_space.with_lock t.asp ~lo:page ~hi:(page + ps) (fun c ->
          match Cortenmm.Addr_space.query c page with
          | Cortenmm.Status.Invalid -> Backend.P_unmapped
          | Cortenmm.Status.Mapped { perm; _ } ->
            Backend.P_mapped
              {
                writable = perm.Perm.write || perm.Perm.cow;
                resident = true;
              }
          | Cortenmm.Status.Private_anon perm
          | Cortenmm.Status.Private_file { perm; _ }
          | Cortenmm.Status.Shared_anon { perm; _ }
          | Cortenmm.Status.Swapped { perm; _ } ->
            Backend.P_mapped { writable = perm.Perm.write; resident = false })

    let fork t =
      match Cortenmm.Mm.fork t.asp with
      | child ->
        Cortenmm.Pageoutd.register_space t.daemon child;
        Ok { t with asp = child }
      | exception Out_of_memory -> Error Errno.ENOMEM

    let destroy t =
      Cortenmm.Pageoutd.unregister_space t.daemon t.asp;
      Cortenmm.Mm.destroy t.asp

    let write_value t ~vaddr ~value =
      Cortenmm.Mm.write_value_r t.asp ~vaddr ~value

    let read_value t ~vaddr = Cortenmm.Mm.read_value_r t.asp ~vaddr

    let mlock t ~addr ~len = Cortenmm.Mm.mlock_r t.asp ~addr ~len
    let munlock t ~addr ~len = Cortenmm.Mm.munlock_r t.asp ~addr ~len

    let pressure t ~target_pages =
      Ok (Cortenmm.Pageoutd.pressure t.daemon ~target_pages)

    let timer_tick t = Cortenmm.Mm.timer_tick t.asp

    let set_shootdown_policy t p =
      Mm_tlb.Tlb.set_policy (Cortenmm.Addr_space.tlb t.asp) p

    let tlb_counters t =
      Mm_tlb.Tlb.counters (Cortenmm.Addr_space.tlb t.asp)

    let mem_stats t =
      let s = Cortenmm.Addr_space.mem_stats t.asp in
      let u = Mm_phys.Phys.usage t.kernel.Cortenmm.Kernel.phys in
      {
        Backend.pt_bytes = s.Cortenmm.Addr_space.pt_bytes;
        kernel_bytes = s.Cortenmm.Addr_space.meta_bytes;
        resident_bytes = u.Mm_phys.Phys.anon_bytes;
        peak_resident_bytes =
          Mm_phys.Phys.peak_data_bytes t.kernel.Cortenmm.Kernel.phys;
      }
  end : Backend.S)
