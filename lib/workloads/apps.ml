(* Application workload models (paper §6.4, Figs 15-18, 21).

   Each model reproduces the *memory-management operation mix* the paper
   uses to explain its measurements:

   - jvm-threads: N threads each map and first-touch a thread stack
     (the Android app-startup pattern; Fig 16 left, lower is better);
   - metis: map-reduce over a large input; workers allocate 8 MiB chunks
     and never return them (the RadixVM paper's setup; Fig 16 right);
   - dedup: high allocation churn through a user allocator, plus a shared
     deduplication hash table that limits scaling past ~64 threads
     (Fig 17 left);
   - psearchy: file indexing — map a file chunk, read it, index into
     allocator-backed postings, unmap (Fig 17 right);
   - parsec-other: compute-bound kernels with negligible MM traffic
     (Figs 15/21) — used to show CortenMM does not hurt such programs. *)

module Perm = Mm_hal.Perm
module Engine = Mm_sim.Engine

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* -- JVM thread creation (lower is better: returns cycles) -- *)

let jvm_thread_creation ?(isa = Mm_hal.Isa.x86_64) ~kind ~nthreads () =
  let sys = System.make ~isa kind ~ncpus:nthreads in
  let stack_len = kib 512 in
  let touched = 16 (* pages of the new stack actually touched at start *) in
  let spawn_thread () =
    (* Thread spawn: map a stack, guard page, touch the hot pages, and
       run a bit of runtime initialization. *)
    let stack = System.mmap_exn sys ~len:stack_len ~perm:Perm.rw () in
    if System.has_mprotect sys then
      System.mprotect_exn sys ~addr:stack ~len:sys.System.page_size
        ~perm:Perm.none;
    if System.demand_paging sys then
      System.touch_range_exn sys
        ~addr:(stack + sys.System.page_size)
        ~len:(touched * sys.System.page_size)
        ~write:true;
    Engine.tick 40_000 (* JVM-side thread bookkeeping *);
    stack
  in
  (* The benchmark measures thread creation in a *running* JVM: the prep
     phase creates and joins one thread per CPU so the address-space
     structure (PT subtrees, VMAs) exists, as it would after JVM startup. *)
  Runner.run_phases ~ncpus:nthreads
    ~prep:(fun cpu ->
      System.warm sys ~cpu;
      let stack = spawn_thread () in
      System.munmap_exn sys ~addr:stack ~len:stack_len)
    ~measure:(fun _ -> ignore (spawn_thread ()))
    ()

(* -- metis map-reduce (higher is better: returns Runner.result) -- *)

let metis ?(isa = Mm_hal.Isa.x86_64) ~kind ~ncpus ?(chunks_per_thread = 6) () =
  let sys = System.make ~isa kind ~ncpus in
  (* 1.6 GiB input file, modelled as a pre-mapped shared region each
     worker scans (read faults on first touch). *)
  let input_len = mib 64 in
  let input = ref 0 in
  let chunk_len = mib 8 in
  let pages_touched_per_chunk = 512 in
  let ps = sys.System.page_size in
  let slice = input_len / ncpus in
  (* Chunk addresses, for the shuffle phase (reducers read every mapper's
     output, which is what makes RadixVM replicate page tables). *)
  let all_chunks = Array.make (ncpus * chunks_per_thread) 0 in
  let cycles =
    Runner.run_phases ~ncpus
      ~setup:(fun () ->
        input := System.mmap_exn sys ~len:input_len ~perm:Perm.r ())
      ~prep:(fun cpu -> System.warm sys ~cpu)
      ()
      ~measure:(fun cpu ->
        (* Map phase: scan our slice of the input. *)
        let my_lo = !input + (cpu * slice) in
        let step = 8 * ps in
        let rec scan v =
          if v < my_lo + slice then begin
            (if System.demand_paging sys then
               match System.touch sys ~vaddr:v ~write:false with
               | Ok () | Error _ -> ());
            Engine.tick 2_000 (* hashing the records in these pages *);
            scan (v + step)
          end
        in
        scan my_lo;
        (* Map-output phase: allocate 8 MiB result chunks, never freed. *)
        for k = 0 to chunks_per_thread - 1 do
          let addr = System.mmap_exn sys ~len:chunk_len ~perm:Perm.rw () in
          all_chunks.((cpu * chunks_per_thread) + k) <- addr;
          if System.demand_paging sys then
            for p = 0 to pages_touched_per_chunk - 1 do
              System.touch_exn sys
                ~vaddr:(addr + (p * (chunk_len / pages_touched_per_chunk)))
                ~write:true
            done;
          Engine.tick 30_000 (* emitting intermediate pairs *)
        done;
        (* Shuffle/reduce phase: read a few pages of every other worker's
           chunks. Cross-CPU reads are why RadixVM must replicate these
           mappings into every core's private page table (Fig 22). *)
        Array.iter
          (fun addr ->
            if addr <> 0 then begin
              for p = 0 to 7 do
                match
                  System.touch sys ~vaddr:(addr + (p * 16 * ps)) ~write:false
                with
                | Ok () | Error _ -> ()
              done;
              Engine.tick 4_000 (* merging *)
            end)
          all_chunks)
  in
  (Runner.result ~ops:(ncpus * chunks_per_thread) ~cycles, sys)

(* -- dedup (returns Runner.result) -- *)

let dedup ?(isa = Mm_hal.Isa.x86_64) ~kind ~alloc_kind ~ncpus
    ?(iters_per_thread = 40) () =
  let sys = System.make ~isa kind ~ncpus in
  (* The shared deduplication hash table: a fixed set of bucket lines;
     beyond ~64 threads the buckets themselves become the bottleneck
     ("the application itself contributes to most of the contention"). *)
  let nbuckets = 64 in
  let buckets = Array.init nbuckets (fun _ -> Engine.Line.make ()) in
  let cycles =
    Runner.run_phases ~ncpus
      ~prep:(fun cpu -> System.warm sys ~cpu)
      ()
      ~measure:(fun cpu ->
        let allocator = Alloc_model.create ~kind:alloc_kind ~sys in
        let rng = Mm_util.Rng.create ~seed:(1000 + cpu) in
        for i = 0 to iters_per_thread - 1 do
          (* One pipeline stage: read a block, chunk it, compress. *)
          let data = Alloc_model.alloc allocator ~size:(kib 256) in
          let buf = Alloc_model.alloc allocator ~size:(kib 64) in
          let small = Alloc_model.alloc allocator ~size:(kib 8) in
          Engine.tick 120_000 (* chunking + SHA1 + compression *);
          (* Insert the chunk digests into the shared table. *)
          for _ = 1 to 4 do
            Engine.Line.rmw buckets.(Mm_util.Rng.int rng nbuckets)
          done;
          Alloc_model.free allocator ~addr:small ~size:(kib 8);
          Alloc_model.free allocator ~addr:buf ~size:(kib 64);
          Alloc_model.free allocator ~addr:data ~size:(kib 256);
          if i mod 8 = 0 then System.timer_tick sys
        done)
  in
  (Runner.result ~ops:(ncpus * iters_per_thread) ~cycles, sys)

(* -- psearchy (returns Runner.result) -- *)

let psearchy ?(isa = Mm_hal.Isa.x86_64) ~kind ~alloc_kind ~ncpus
    ?(files_per_thread = 25) () =
  let sys = System.make ~isa kind ~ncpus in
  let file_chunk = kib 256 in
  let ps = sys.System.page_size in
  let cycles =
    Runner.run_phases ~ncpus
      ~prep:(fun cpu -> System.warm sys ~cpu)
      ()
      ~measure:(fun _cpu ->
        let allocator = Alloc_model.create ~kind:alloc_kind ~sys in
        for i = 0 to files_per_thread - 1 do
          (* Map a file chunk, read every page, index the words. *)
          let addr = System.mmap_exn sys ~len:file_chunk ~perm:Perm.r () in
          (if System.demand_paging sys then
             let rec go v =
               if v < addr + file_chunk then begin
                 System.touch_exn sys ~vaddr:v ~write:false;
                 Engine.tick 1_500 (* tokenizing this page *);
                 go (v + ps)
               end
             in
             go addr);
          (* Postings lists through the user allocator. *)
          let postings = Alloc_model.alloc allocator ~size:(kib 192) in
          Engine.tick 25_000 (* sorting/merging *);
          Alloc_model.free allocator ~addr:postings ~size:(kib 192);
          System.munmap_exn sys ~addr ~len:file_chunk;
          if i mod 8 = 0 then System.timer_tick sys
        done)
  in
  (Runner.result ~ops:(ncpus * files_per_thread) ~cycles, sys)

(* -- PARSEC compute-bound kernels (Figs 15/21) --

   Each is compute with a modest resident set and negligible MM traffic;
   the per-benchmark parameters vary the compute/memory mix. *)

type parsec = {
  p_name : string;
  work_cycles : int; (* per work item *)
  items : int; (* per thread *)
  resident : int; (* bytes touched during setup *)
  reuse_pages : int; (* pages re-touched per item *)
}

let parsec_others =
  [
    { p_name = "blackscholes"; work_cycles = 60_000; items = 40; resident = mib 2; reuse_pages = 4 };
    { p_name = "bodytrack"; work_cycles = 90_000; items = 30; resident = mib 4; reuse_pages = 8 };
    { p_name = "canneal"; work_cycles = 50_000; items = 40; resident = mib 8; reuse_pages = 16 };
    { p_name = "ferret"; work_cycles = 110_000; items = 25; resident = mib 4; reuse_pages = 8 };
    { p_name = "fluidanimate"; work_cycles = 70_000; items = 35; resident = mib 4; reuse_pages = 8 };
    { p_name = "freqmine"; work_cycles = 100_000; items = 30; resident = mib 8; reuse_pages = 8 };
    { p_name = "streamcluster"; work_cycles = 80_000; items = 35; resident = mib 2; reuse_pages = 4 };
    { p_name = "swaptions"; work_cycles = 120_000; items = 25; resident = mib 1; reuse_pages = 2 };
    { p_name = "vips"; work_cycles = 65_000; items = 40; resident = mib 4; reuse_pages = 8 };
    { p_name = "x264"; work_cycles = 95_000; items = 30; resident = mib 8; reuse_pages = 8 };
  ]

let run_parsec ?(isa = Mm_hal.Isa.x86_64) ~kind ~ncpus (p : parsec) =
  let sys = System.make ~isa kind ~ncpus in
  let ps = sys.System.page_size in
  let base = ref 0 in
  let setup () =
    base := System.mmap_exn sys ~len:(p.resident * ncpus) ~perm:Perm.rw ();
    if System.demand_paging sys then begin
      (* Touch a fraction of the resident set up front. *)
      let step = 8 * ps in
      let rec go v =
        if v < !base + min (p.resident * ncpus) (mib 4) then begin
          System.touch_exn sys ~vaddr:v ~write:true;
          go (v + step)
        end
      in
      go !base
    end
  in
  let cycles =
    Runner.run_phases ~ncpus ~setup
      ~prep:(fun cpu ->
        System.warm sys ~cpu;
        if System.demand_paging sys then
          match
            System.touch sys ~vaddr:(!base + (cpu * p.resident)) ~write:true
          with
          | Ok () | Error _ -> ())
      ()
      ~measure:(fun cpu ->
        let my = !base + (cpu * p.resident) in
        let rng = Mm_util.Rng.create ~seed:(7 + cpu) in
        for _ = 1 to p.items do
          Engine.tick p.work_cycles;
          for _ = 1 to p.reuse_pages do
            let off = Mm_util.Rng.int rng (p.resident / ps) * ps in
            match System.touch sys ~vaddr:(my + off) ~write:true with
            | Ok () | Error _ -> ()
          done
        done)
  in
  Runner.result ~ops:(ncpus * p.items) ~cycles
