(** Benchmark spawning helpers. Virtual time is global to a world, so a
    benchmark runs its setup and measurement in ONE world separated by
    barriers, measuring only the final interval. *)

module Barrier : sig
  type t

  val make : total:int -> t

  val wait : t -> unit
  (** The last arriver releases everyone at its virtual time. *)
end

val run_phases :
  ?setup:(unit -> unit) ->
  ?prep:(int -> unit) ->
  ncpus:int ->
  measure:(int -> unit) ->
  unit ->
  int
(** [setup] runs alone on cpu 0; [prep cpu] runs on every CPU in
    parallel; then, after a barrier, [measure cpu]. Returns the measured
    interval in cycles (barrier release to last completion). *)

val run_threads : ncpus:int -> (int -> unit) -> int
(** Plain parallel run with no phases (only safe in a fresh world). *)

type result = { ops : int; cycles : int; ops_per_sec : float }

val result : ops:int -> cycles:int -> result
(** Construct a result; if collection is active, it is also recorded
    under the current label (see below). *)

(** {2 Machine-readable result collection}

    The bench driver labels each experiment ({!set_label}) and collects
    every {!result} constructed while collection is active — the basis of
    [bench --json]. *)

val start_collecting : unit -> unit
val set_label : string -> unit

val collected : unit -> (string * result) list
(** Results so far, in construction order. *)

val stop_collecting : unit -> (string * result) list

val reset_world_state : unit -> unit
(** Reset every piece of domain-local simulator state a world can
    observe — monitor hook, mutant flags, RCU callback ids, file/device
    ids, the metrics and contention registries (unless a tracing
    session is active, which owns them), result collection and the
    label — so a parallel task's behaviour and reported text are
    independent of what ran before it on the same domain. Every
    parallel driver calls this at task start, including at [-j 1], so
    outputs are byte-identical across job counts. *)
