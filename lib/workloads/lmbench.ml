(* LMbench-style process benchmarks (paper Fig 20): fork, fork+exec, and
   shell. These exercise the operations that must enumerate the address
   space — the worst case for CortenMM, which walks page tables to find
   all regions, while Linux walks its VMA list (§6.2).

   Only Linux and CortenMM are compared, as in the paper. *)

module Perm = Mm_hal.Perm
module Engine = Mm_sim.Engine

let kib n = n * 1024
let mib n = n * 1024 * 1024

type bench = Fork | Fork_exec | Shell

let bench_name = function
  | Fork -> "fork"
  | Fork_exec -> "fork+exec"
  | Shell -> "shell"

type proc =
  | P_corten of Cortenmm.Kernel.t * Cortenmm.Addr_space.t
  | P_linux of Mm_linux.Linux_mm.t

(* A typical dynamically-linked process image: text, data, heap, stack and
   a set of shared-library mappings, with the hot pages touched. *)
let image_mappings =
  [ (mib 2, 32); (mib 1, 16); (mib 4, 64); (kib 512, 8) ]
  @ List.init 16 (fun _ -> (kib 256, 2))

(* The image of the dummy child used by exec. Program startup is
   fault-heavy (loader, libc, relocations touch many pages), which is why
   the paper's fork+exec favors CortenMM's faster fault path. *)
let exec_mappings =
  [ (mib 2, 384); (mib 1, 192); (kib 256, 64); (kib 128, 16) ]

let ok = function Ok v -> v | Error e -> raise (Mm_hal.Errno.Error e)

let populate proc mappings =
  List.iter
    (fun (len, touched) ->
      match proc with
      | P_corten (_, asp) ->
        let addr = ok (Cortenmm.Mm.mmap_r asp ~len ~perm:Perm.rw ()) in
        Cortenmm.Mm.touch_range asp ~addr ~len:(touched * 4096) ~write:true
      | P_linux t ->
        let addr = Mm_linux.Linux_mm.mmap t ~len ~perm:Perm.rw () in
        Mm_linux.Linux_mm.touch_range t ~addr ~len:(touched * 4096)
          ~write:true)
    mappings

let fork_proc = function
  | P_corten (k, asp) -> P_corten (k, Cortenmm.Mm.fork asp)
  | P_linux t -> P_linux (Mm_linux.Linux_mm.fork t)

let destroy_proc = function
  | P_corten (_, asp) -> Cortenmm.Mm.destroy asp
  | P_linux t -> Mm_linux.Linux_mm.destroy t

(* exec: tear the image down and build the (small) new one, faulting its
   pages in. *)
let exec_proc proc =
  destroy_proc proc;
  populate proc exec_mappings;
  Engine.tick 120_000 (* ELF loading, relocation *)

let make_proc ~kind ~ncpus =
  match kind with
  | `Corten cfg ->
    let kernel = Cortenmm.Kernel.create ~ncpus () in
    P_corten (kernel, Cortenmm.Addr_space.create kernel cfg)
  | `Linux -> P_linux (Mm_linux.Linux_mm.create ~ncpus ())

(* Run one benchmark; returns average cycles per iteration (lower is
   better, as in Fig 20). *)
let run ~kind ~bench ?(iters = 8) () =
  let measured = ref 0 in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () ->
      let parent = make_proc ~kind ~ncpus:1 in
      populate parent image_mappings;
      let start = Engine.now () in
      (for _ = 1 to iters do
          match bench with
          | Fork ->
            let child = fork_proc parent in
            Engine.tick 50_000 (* scheduler + task_struct work *);
            destroy_proc child
          | Fork_exec ->
            let child = fork_proc parent in
            Engine.tick 50_000;
            exec_proc child;
            Engine.tick 80_000 (* the dummy program runs *);
            destroy_proc child
          | Shell ->
            (* execlp "sh -c echo": fork + exec sh, sh forks + execs echo. *)
            let sh = fork_proc parent in
            Engine.tick 50_000;
            exec_proc sh;
            Engine.tick 200_000 (* shell startup, parsing *);
            let echo = fork_proc sh in
            Engine.tick 50_000;
            exec_proc echo;
            Engine.tick 40_000;
            destroy_proc echo;
            destroy_proc sh
       done);
      measured := Engine.now () - start);
  Engine.run w;
  !measured / iters
