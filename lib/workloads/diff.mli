(** Differential cross-backend oracle: replay one {!Trace.t} on every
    registered backend in separate simulation worlds and compare the
    observable state — per-page {!Backend.page_state} over live regions,
    typed error outcomes, per-op postconditions and {!System.mem_stats}
    invariants — after every [check_every] ops. Capability differences
    (no mprotect, eager backing) mask exactly the observations they
    legitimately change; everything else must agree. *)

type outcome = O_ok | O_err of Mm_hal.Errno.t | O_skip

val outcome_to_string : outcome -> string

type divergence = {
  d_op : int;  (** index of the offending op in the trace *)
  d_backend_a : string;
  d_backend_b : string;  (** equals [d_backend_a] for a solo invariant *)
  d_what : string;
}

val describe : divergence -> string

val default_backends : unit -> System.backend list
(** All of {!System.Registry.all}, in registry order. *)

val compare_page_states :
  ?check_writable:bool ->
  ?check_resident:bool ->
  region:string ->
  Backend.page_state array ->
  Backend.page_state array ->
  string list
(** [compare_page_states ~region a b] describes every per-page mismatch
    between two equally sized probes of the same region ([region] labels
    the messages). [check_writable] / [check_resident] (both default
    [true]) mask the comparisons that capability differences legitimately
    change; callers comparing the same backend against itself — the
    schedule-exploration harness — keep both on. *)

val run :
  ?isa:Mm_hal.Isa.t ->
  ?check_every:int ->
  ?jobs:int ->
  ?cow_mutant:bool ->
  ?reclaim_mutant:bool ->
  ?backends:System.backend list ->
  Trace.t ->
  (int, divergence) result
(** [Ok nops] when every backend agrees on the whole trace; otherwise
    the earliest divergence by op index. [check_every] defaults to 16;
    [backends] to {!default_backends} (the first entry is the
    reference). [jobs] (default 1) shards the per-backend replays
    across domains; the verdict is identical for any value.

    Fork ops replay as {!System.fork}: the child process inherits the
    parent's regions, a per-(proc, region, page) value model written by
    the trace's [write] ops and checked at its [read] ops proves COW
    isolation, and a post-fork solo postcondition requires parent and
    child page states to agree over every inherited region.

    [cow_mutant] (default [false]) arms an injected CortenMM fork bug —
    clone_for_fork skips the parent-side write-protect — which the
    value model must catch at the exact first child read observing a
    leaked parent store.

    Format-v3 reclaim ops ([mlock]/[munlock]/[pressure]) are
    capability-masked: backends without a page-out daemon skip them,
    and residency is then only compared between backends with reclaim
    parity. [reclaim_mutant] (default [false]) arms an injected pager
    bug — put_pages skips the dirty writeback, losing the page's data
    token at page-out — which the value model must catch at the exact
    first read observing the lost token. *)
