(* The differential cross-backend oracle.

   One trace is replayed on every registered backend, each in its own
   simulation world, in sequential global op order. After every op the
   replayer records the typed outcome and checks per-op postconditions
   (mmap Ok => every page mapped; munmap Ok => every page unmapped —
   these catch a broken munmap that a later snapshot would miss, since
   an unmapped region leaves the region table). Every [check_every] ops
   and at the end it snapshots the observable state: per-page
   {!Backend.page_state} over all live regions, plus {!System.mem_stats}
   invariants. The logs are then compared pairwise against the first
   backend; the first difference is reported with its op index.

   What is compared is masked by capability facts, never by timing:
   - mapped-ness of every page: always;
   - error outcomes: by {!Mm_hal.Errno.same_class} (VA allocators place
     regions differently, so SIGSEGV payloads legitimately differ);
   - writability (and touch outcomes): only between backends that both
     applied every mprotect of the trace — a backend without mprotect
     legitimately keeps the original protection;
   - residency: only between backends with equal [demand_paging] (and
     mprotect parity, since a denied touch populates nothing). *)

module Errno = Mm_hal.Errno
module Perm = Mm_hal.Perm

type outcome = O_ok | O_err of Errno.t | O_skip

let outcome_to_string = function
  | O_ok -> "ok"
  | O_err e -> Errno.to_string e
  | O_skip -> "skip"

type divergence = {
  d_op : int; (* index into the trace's entries *)
  d_backend_a : string;
  d_backend_b : string; (* equal to [d_backend_a] for a solo invariant *)
  d_what : string;
}

let describe d =
  if d.d_backend_a = d.d_backend_b then
    Printf.sprintf "op %d: [%s] %s" d.d_op d.d_backend_a d.d_what
  else
    Printf.sprintf "op %d: %s vs %s: %s" d.d_op d.d_backend_a d.d_backend_b
      d.d_what

type snapshot = {
  s_regions : ((int * int) * Backend.page_state array) list;
      (* keyed (proc, region id), sorted *)
}

type run_log = {
  l_name : string;
  l_caps : System.caps;
  l_skipped_mprotect : bool; (* at least one trace mprotect not applied *)
  l_skipped_reclaim : bool; (* at least one mlock/munlock/pressure skipped *)
  l_outcomes : outcome array;
  l_violations : (int * string) list; (* op index, broken invariant *)
  l_snapshots : (int * snapshot) list; (* taken after this op index *)
}

let page = 4096

(* The per-page comparison shared by the oracle's snapshot check, its
   post-fork parent/child postcondition, and the schedule-exploration
   harness's final-state check (schedcheck compares a concurrent run
   against its own sequential replay, so it passes both flags as
   [true]). Returns human-readable mismatch descriptions. *)
let compare_page_states ?(check_writable = true) ?(check_resident = true)
    ~region (pa : Backend.page_state array) (pb : Backend.page_state array) =
  if Array.length pa <> Array.length pb then
    [
      Printf.sprintf "%s: %d pages vs %d pages" region (Array.length pa)
        (Array.length pb);
    ]
  else begin
    let mismatches = ref [] in
    Array.iteri
      (fun p st_a ->
        let st_b = pb.(p) in
        match (st_a, st_b) with
        | Backend.P_unmapped, Backend.P_unmapped -> ()
        | Backend.P_unmapped, Backend.P_mapped _
        | Backend.P_mapped _, Backend.P_unmapped ->
          mismatches :=
            Printf.sprintf "page %d of %s: mapped on one side only" p region
            :: !mismatches
        | ( Backend.P_mapped { writable = wa; resident = ra },
            Backend.P_mapped { writable = wb; resident = rb } ) ->
          if check_writable && wa <> wb then
            mismatches :=
              Printf.sprintf "page %d of %s: writable %b vs %b" p region wa
                wb
              :: !mismatches;
          if check_resident && ra <> rb then
            mismatches :=
              Printf.sprintf "page %d of %s: resident %b vs %b" p region ra
                rb
              :: !mismatches)
      pa;
    List.rev !mismatches
  end

(* Replay the whole trace on one backend, inside a single fiber of a
   private world (sequential global op order: the oracle checks
   functional equivalence, not interleavings). *)
let replay_one ?isa ~check_every (b : System.backend) trace =
  let root = System.of_backend ?isa b ~ncpus:1 in
  let ps = root.System.page_size in
  let entries = trace.Trace.entries in
  let nops = Array.length entries in
  (* proc -> live instance; process 0 is the root and never exits. *)
  let procs : (int, System.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace procs 0 root;
  let regions : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* The solo value model: expected data token per (proc, region, page),
     written by T_write and copied to the child at fork. A read is only
     checked when the model has an entry (a never-written page's raw
     contents are not comparable). This is what proves parent/child COW
     isolation: a fork that forgets to write-protect the parent leaks
     the parent's later stores into the child's reads, and the model
     pins the divergence to the exact read op. *)
  let model : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let outcomes = Array.make nops O_skip in
  let violations = ref [] in
  let snapshots = ref [] in
  let skipped_mprotect = ref false in
  let skipped_reclaim = ref false in
  let violate i what = violations := (i, what) :: !violations in
  let probe_region sys (addr, len) =
    Array.init (len / ps) (fun i -> System.page_state sys ~vaddr:(addr + (i * ps)))
  in
  let check_stats i =
    let m = System.mem_stats root in
    if m.System.resident_bytes < 0 then
      violate i
        (Printf.sprintf "mem_stats: negative resident_bytes %d"
           m.System.resident_bytes);
    if m.System.peak_resident_bytes < m.System.resident_bytes then
      violate i
        (Printf.sprintf "mem_stats: peak %d below resident %d"
           m.System.peak_resident_bytes m.System.resident_bytes);
    if m.System.pt_bytes < 0 || m.System.kernel_bytes < 0 then
      violate i "mem_stats: negative pt/kernel bytes"
  in
  let snapshot i =
    let keys =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) regions [])
    in
    let s_regions =
      List.map
        (fun ((proc, id) as k) ->
          let r = Hashtbl.find regions k in
          let sys = Hashtbl.find procs proc in
          let states = probe_region sys r in
          (* Eager backends have no lazy pages: mapped implies resident. *)
          if not root.System.caps.System.demand_paging then
            Array.iteri
              (fun p st ->
                match st with
                | Backend.P_mapped { resident = false; _ } ->
                  violate i
                    (Printf.sprintf
                       "eager backend holds non-resident page %d of proc %d \
                        region %d"
                       p proc id)
                | Backend.P_mapped _ | Backend.P_unmapped -> ())
              states;
          (k, states))
        keys
    in
    check_stats i;
    snapshots := (i, { s_regions }) :: !snapshots
  in
  let run_op i =
    let proc = entries.(i).Trace.proc in
    match Hashtbl.find_opt procs proc with
    | None -> outcomes.(i) <- O_skip (* defunct process: skip *)
    | Some sys -> (
      match entries.(i).Trace.op with
      | Trace.T_mmap { id; len; writable } -> (
        let perm = if writable then Perm.rw else Perm.r in
        match System.mmap sys ~len ~perm () with
        | Error e -> outcomes.(i) <- O_err e
        | Ok addr ->
          outcomes.(i) <- O_ok;
          Hashtbl.replace regions (proc, id) (addr, len);
          for p = 0 to (len / ps) - 1 do
            match System.page_state sys ~vaddr:(addr + (p * ps)) with
            | Backend.P_unmapped ->
              violate i
                (Printf.sprintf "page %d of region %d unmapped after mmap" p id)
            | Backend.P_mapped _ -> ()
          done)
      | Trace.T_munmap { id } -> (
        match Hashtbl.find_opt regions (proc, id) with
        | None -> outcomes.(i) <- O_skip
        | Some (addr, len) -> (
          match System.munmap sys ~addr ~len with
          | Error e -> outcomes.(i) <- O_err e
          | Ok () ->
            outcomes.(i) <- O_ok;
            Hashtbl.remove regions (proc, id);
            for p = 0 to (len / ps) - 1 do
              Hashtbl.remove model (proc, id, p);
              match System.page_state sys ~vaddr:(addr + (p * ps)) with
              | Backend.P_mapped _ ->
                violate i
                  (Printf.sprintf "page %d of region %d mapped after munmap" p
                     id)
              | Backend.P_unmapped -> ()
            done))
      | Trace.T_touch { id; page = p; write } -> (
        match Hashtbl.find_opt regions (proc, id) with
        | Some (addr, len) when p * page < len ->
          outcomes.(i) <-
            (match System.touch sys ~vaddr:(addr + (p * page)) ~write with
            | Ok () -> O_ok
            | Error e -> O_err e)
        | Some _ | None -> outcomes.(i) <- O_skip)
      | Trace.T_mprotect { id; writable } -> (
        match Hashtbl.find_opt regions (proc, id) with
        | None -> outcomes.(i) <- O_skip
        | Some (addr, len) ->
          if not (System.has_mprotect sys) then begin
            skipped_mprotect := true;
            outcomes.(i) <- O_skip
          end
          else
            let perm = if writable then Perm.rw else Perm.r in
            outcomes.(i) <-
              (match System.mprotect sys ~addr ~len ~perm with
              | Ok () -> O_ok
              | Error e -> O_err e))
      | Trace.T_fork { child } -> (
        match System.fork sys with
        | Error e -> outcomes.(i) <- O_err e
        | Ok csys ->
          outcomes.(i) <- O_ok;
          Hashtbl.replace procs child csys;
          let inherited =
            List.sort compare
              (Hashtbl.fold
                 (fun (p, id) v acc -> if p = proc then (id, v) :: acc else acc)
                 regions [])
          in
          List.iter
            (fun (id, v) -> Hashtbl.replace regions (child, id) v)
            inherited;
          Hashtbl.fold
            (fun (p, id, pg) v acc -> if p = proc then (id, pg, v) :: acc else acc)
            model []
          |> List.iter (fun (id, pg, v) ->
                 Hashtbl.replace model (child, id, pg) v);
          (* Post-fork postcondition: parent and child observe identical
             page states over every inherited region — this is where a
             fork that breaks the parent's or child's mappings is caught,
             at the fork op itself. *)
          List.iter
            (fun (id, r) ->
              List.iter (violate i)
                (compare_page_states
                   ~region:
                     (Printf.sprintf "fork of proc %d (child %d), region %d"
                        proc child id)
                   (probe_region sys r) (probe_region csys r)))
            inherited)
      | Trace.T_exit ->
        outcomes.(i) <- O_ok;
        if proc <> 0 then begin
          System.destroy sys;
          Hashtbl.remove procs proc;
          Hashtbl.fold
            (fun (p, id) _ acc -> if p = proc then (p, id) :: acc else acc)
            regions []
          |> List.iter (Hashtbl.remove regions);
          Hashtbl.fold
            (fun (p, id, pg) _ acc ->
              if p = proc then (p, id, pg) :: acc else acc)
            model []
          |> List.iter (Hashtbl.remove model)
        end
      | Trace.T_write { id; page = p; value } -> (
        match Hashtbl.find_opt regions (proc, id) with
        | Some (addr, len) when p * page < len -> (
          match System.write_value sys ~vaddr:(addr + (p * page)) ~value with
          | Ok () ->
            outcomes.(i) <- O_ok;
            Hashtbl.replace model (proc, id, p) value
          | Error e -> outcomes.(i) <- O_err e)
        | Some _ | None -> outcomes.(i) <- O_skip)
      | Trace.T_read { id; page = p } -> (
        match Hashtbl.find_opt regions (proc, id) with
        | Some (addr, len) when p * page < len -> (
          match System.read_value sys ~vaddr:(addr + (p * page)) with
          | Ok v ->
            outcomes.(i) <- O_ok;
            (match Hashtbl.find_opt model (proc, id, p) with
            | Some expected when expected <> v ->
              violate i
                (Printf.sprintf
                   "proc %d read %d from page %d of region %d, expected %d"
                   proc v p id expected)
            | Some _ | None -> ())
          | Error e -> outcomes.(i) <- O_err e)
        | Some _ | None -> outcomes.(i) <- O_skip)
      | Trace.T_mlock { id } -> (
        (* Reclaim ops are capability-masked like mprotect: a backend
           without a page-out daemon has nothing to wire against, so it
           skips — and residency is then only compared between backends
           with reclaim parity. *)
        match Hashtbl.find_opt regions (proc, id) with
        | None -> outcomes.(i) <- O_skip
        | Some (addr, len) ->
          if not (System.has_reclaim sys) then begin
            skipped_reclaim := true;
            outcomes.(i) <- O_skip
          end
          else
            outcomes.(i) <-
              (match System.mlock sys ~addr ~len with
              | Ok () -> O_ok
              | Error e -> O_err e))
      | Trace.T_munlock { id } -> (
        match Hashtbl.find_opt regions (proc, id) with
        | None -> outcomes.(i) <- O_skip
        | Some (addr, len) ->
          if not (System.has_reclaim sys) then begin
            skipped_reclaim := true;
            outcomes.(i) <- O_skip
          end
          else
            outcomes.(i) <-
              (match System.munlock sys ~addr ~len with
              | Ok () -> O_ok
              | Error e -> O_err e))
      | Trace.T_pressure { pages } ->
        if not (System.has_reclaim sys) then begin
          skipped_reclaim := true;
          outcomes.(i) <- O_skip
        end
        else
          outcomes.(i) <-
            (match System.pressure sys ~target_pages:pages with
            | Ok _ -> O_ok
            | Error e -> O_err e))
  in
  let w = Mm_sim.Engine.create ~ncpus:1 in
  Mm_sim.Engine.spawn w ~cpu:0 (fun () ->
      for i = 0 to nops - 1 do
        run_op i;
        if (i + 1) mod check_every = 0 then snapshot i
      done;
      if nops > 0 then snapshot (nops - 1));
  Mm_sim.Engine.run w;
  {
    l_name = root.System.name;
    l_caps = root.System.caps;
    l_skipped_mprotect = !skipped_mprotect;
    l_skipped_reclaim = !skipped_reclaim;
    l_outcomes = outcomes;
    l_violations = List.rev !violations;
    l_snapshots = List.rev !snapshots;
  }

(* -- Pairwise comparison against the reference (first) backend -- *)

let compare_outcomes trace (a : run_log) (b : run_log) =
  let parity = a.l_skipped_mprotect = b.l_skipped_mprotect in
  let divs = ref [] in
  Array.iteri
    (fun i oa ->
      let ob = b.l_outcomes.(i) in
      let is_touch =
        (* Write/read data accesses fault exactly like touches, so the
           mprotect-parity mask applies to them too. *)
        match trace.Trace.entries.(i).Trace.op with
        | Trace.T_touch _ | Trace.T_write _ | Trace.T_read _ -> true
        | _ -> false
      in
      let mismatch what =
        divs :=
          {
            d_op = i;
            d_backend_a = a.l_name;
            d_backend_b = b.l_name;
            d_what = what;
          }
          :: !divs
      in
      match (oa, ob) with
      | O_skip, _ | _, O_skip -> ()
      | O_ok, O_ok -> ()
      | O_err ea, O_err eb ->
        if not (Errno.same_class ea eb) then
          mismatch
            (Printf.sprintf "outcome %s vs %s" (Errno.to_string ea)
               (Errno.to_string eb))
      | (O_ok, O_err _ | O_err _, O_ok) when is_touch && not parity ->
        (* A skipped mprotect legitimately changes later touch results. *)
        ()
      | (O_ok | O_err _), (O_ok | O_err _) ->
        mismatch
          (Printf.sprintf "outcome %s vs %s" (outcome_to_string oa)
             (outcome_to_string ob)))
    a.l_outcomes;
  !divs

let compare_snapshots (a : run_log) (b : run_log) =
  let parity = a.l_skipped_mprotect = b.l_skipped_mprotect in
  let dp_eq =
    a.l_caps.System.demand_paging = b.l_caps.System.demand_paging
  in
  (* A backend that applied the trace's reclaim ops legitimately holds
     fewer resident pages than one that skipped them. *)
  let reclaim_eq = a.l_skipped_reclaim = b.l_skipped_reclaim in
  let divs = ref [] in
  List.iter2
    (fun (i, sa) (j, sb) ->
      assert (i = j);
      let mismatch what =
        divs :=
          {
            d_op = i;
            d_backend_a = a.l_name;
            d_backend_b = b.l_name;
            d_what = what;
          }
          :: !divs
      in
      let ids s = List.map fst s.s_regions in
      let show ids =
        String.concat ";"
          (List.map (fun (p, id) -> Printf.sprintf "%d:%d" p id) ids)
      in
      if ids sa <> ids sb then
        mismatch
          (Printf.sprintf "live (proc, region) ids differ ([%s] vs [%s])"
             (show (ids sa)) (show (ids sb)))
      else
        List.iter2
          (fun ((proc, id), pa) (_, pb) ->
            List.iter mismatch
              (compare_page_states ~check_writable:parity
                 ~check_resident:(parity && dp_eq && reclaim_eq)
                 ~region:(Printf.sprintf "proc %d region %d" proc id)
                 pa pb))
          sa.s_regions sb.s_regions)
    a.l_snapshots b.l_snapshots;
  !divs

let default_backends () =
  List.map (fun e -> e.System.Registry.r_backend) System.Registry.all

(* Replay [trace] on every backend and report the earliest divergence
   (by op index), or [Ok nops]. Replays are independent worlds, so with
   [jobs > 1] they run on separate domains; the logs come back in
   backend order either way, and the comparison below is sequential, so
   the verdict is identical for any [jobs]. *)
let run ?isa ?(check_every = 16) ?(jobs = 1) ?(cow_mutant = false)
    ?(reclaim_mutant = false) ?backends trace =
  let backends =
    match backends with Some l -> l | None -> default_backends ()
  in
  if check_every <= 0 then invalid_arg "Diff.run: check_every";
  let logs =
    Mm_par.Par.map ~jobs
      (fun b ->
        Runner.reset_world_state ();
        (* Arm the injected mutants per task, after the world reset
           cleared them: each replay domain sees its own copy of the
           flags. [cow_mutant] makes CortenMM's clone_for_fork skip the
           parent-side write-protect; [reclaim_mutant] makes the pagers'
           put_pages skip the dirty writeback, so a page-out loses the
           page's data token. *)
        if cow_mutant then
          Cortenmm.Addr_space.set_mutant_fork_skip_parent_wp true;
        if reclaim_mutant then
          Cortenmm.Pager.set_mutant_reclaim_skip_writeback true;
        replay_one ?isa ~check_every b trace)
      backends
  in
  let solo =
    List.concat_map
      (fun l ->
        List.map
          (fun (i, what) ->
            { d_op = i; d_backend_a = l.l_name; d_backend_b = l.l_name; d_what = what })
          l.l_violations)
      logs
  in
  let cross =
    match logs with
    | [] | [ _ ] -> []
    | reference :: rest ->
      List.concat_map
        (fun l ->
          compare_outcomes trace reference l @ compare_snapshots reference l)
        rest
  in
  match
    List.sort (fun x y -> compare x.d_op y.d_op) (solo @ cross)
  with
  | [] -> Ok (Array.length trace.Trace.entries)
  | d :: _ -> Error d
