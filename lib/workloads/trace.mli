(** MM operation traces: a portable text format (regions referenced by
    symbolic ids so a trace replays on any system regardless of its VA
    allocator), a synthetic generator with workload profiles, and a
    replayer driving any of the evaluated systems. *)

type op =
  | T_mmap of { id : int; len : int; writable : bool }
  | T_munmap of { id : int }
  | T_touch of { id : int; page : int; write : bool }
  | T_mprotect of { id : int; writable : bool }
  | T_fork of { child : int }  (** the executing process is the parent *)
  | T_exit
  | T_write of { id : int; page : int; value : int }
      (** store a data token (touches for write first) *)
  | T_read of { id : int; page : int }  (** load the page's data token *)
  | T_mlock of { id : int }  (** populate + wire the whole region *)
  | T_munlock of { id : int }  (** unwire the whole region *)
  | T_pressure of { pages : int }
      (** wake the page-out daemon to reclaim [pages] pages *)

type entry = { cpu : int; proc : int; op : op }
(** [proc] is the process executing the operation; 0 is the root.
    Serialized as a trailing ["@<proc>"], omitted for process 0, so
    pre-fork traces round-trip byte-identically. *)

type t = { ncpus : int; entries : entry array }

exception Parse_error of int * string

val entry_to_string : entry -> string
val entry_of_string : line:int -> string -> entry
val save : t -> string -> unit
val load : string -> t

type profile = Churn | Faults | Mixed | Forks | Reclaim

val profile_name : profile -> string
val profile_of_name : string -> profile option

val generate : profile:profile -> ncpus:int -> ops_per_cpu:int -> seed:int -> t
(** Deterministic synthetic trace: [Churn] = allocator-like
    map/touch/unmap cycles; [Faults] = few large regions, many touches;
    [Mixed] = a blend with occasional mprotects; [Forks] = per-CPU
    process trees (depth <= 3) of fork / COW write / read / exit, every
    forked process exiting before its CPU's stream ends; [Reclaim] =
    value traffic under mlock/munlock and pressure storms (format v3
    ops, capability-gated on backends without a page-out daemon). *)

type replay_stats = {
  result : Runner.result;
  mmaps : int;
  munmaps : int;
  touches : int;
  forks : int;
  faults_denied : int;
}

val replay : ?isa:Mm_hal.Isa.t -> kind:System.kind -> t -> replay_stats
(** Replay the trace's per-CPU streams, each on the process named by its
    entries ([fork] creating child instances via {!System.fork}, [exit]
    destroying them); unknown/defunct region or process references are
    skipped, denied accesses counted. *)
