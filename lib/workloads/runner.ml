(* Spawning helpers shared by every benchmark driver.

   Virtual time is global to a simulation world: cache-line and lock
   timestamps advance monotonically. A benchmark therefore runs its setup
   and measurement phases in ONE world, separated by barriers, and reports
   the measured interval — running them in separate worlds would let the
   setup's timestamps leak into the measurement's first operations. *)

module Engine = Mm_sim.Engine

(* A simple sense-less barrier over simulation fibers: the last arriver
   releases everyone at its (maximal) virtual time. *)
module Barrier = struct
  type t = {
    total : int;
    mutable arrived : int;
    mutable waiting : Engine.parked list;
  }

  let make ~total = { total; arrived = 0; waiting = [] }

  let wait b =
    Engine.serialize ();
    b.arrived <- b.arrived + 1;
    if b.arrived = b.total then begin
      let t = Engine.now () in
      List.iter (fun p -> Engine.unpark p ~at:t) b.waiting;
      b.waiting <- [];
      b.arrived <- 0
    end
    else Engine.park (fun p -> b.waiting <- p :: b.waiting)
end

type result = { ops : int; cycles : int; ops_per_sec : float }

(* -- Machine-readable result collection (bench --json) --

   Every benchmark funnels its numbers through [result], so an optional
   collector installed here sees each result exactly once. The driver
   labels the current experiment before running it; results constructed
   while no collection is active are simply not recorded. *)

(* Domain-local: a parallel driver's tasks each collect into their own
   domain's slot (started/stopped per task) and the driver merges the
   per-task lists in submission order. *)
let collector_key : (string * result) list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_label_key : string ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref "?")

let collector () = Domain.DLS.get collector_key
let current_label () = !(Domain.DLS.get current_label_key)

let start_collecting () = collector () := Some (ref [])
let set_label l = Domain.DLS.get current_label_key := l

let collected () =
  match !(collector ()) with None -> [] | Some acc -> List.rev !acc

let stop_collecting () =
  let out = collected () in
  collector () := None;
  out

let result ~ops ~cycles =
  let r =
    { ops; cycles; ops_per_sec = Mm_util.Stats.ops_per_second ~ops ~cycles }
  in
  (match !(collector ()) with
  | None -> ()
  | Some acc -> acc := (current_label (), r) :: !acc);
  r

(* Reset every piece of once-process-global (now domain-local) state a
   simulation world can observe, so a parallel task's behaviour — and
   the text of anything it reports (lock ids, RCU callback ids) — is
   independent of what ran before it on the same domain. Called by
   every parallel driver at task start, on the sequential ([-j 1]) path
   too, so outputs stay byte-identical across job counts.

   The one deliberate exception: while a tracing session is active
   ([Mm_obs.Trace.on ()]), the metrics/contention registries are left
   alone — [--trace]/[--report] force [-j 1] precisely so one session
   can accumulate across the whole run, and the session owns those
   registries (it reset them at [Trace.start]). *)
let reset_world_state () =
  Mm_sim.Monitor.clear ();
  Mm_sim.Rcu_s.reset_ids ();
  Mm_sim.Rcu_s.set_mutant_no_grace_period false;
  Mm_sim.Rwlock_s.set_mutant_skip_writer_handoff false;
  Cortenmm.Addr_space.set_mutant_fork_skip_parent_wp false;
  Cortenmm.Pager.set_mutant_reclaim_skip_writeback false;
  Cortenmm.File.reset_ids ();
  Cortenmm.Blockdev.reset_ids ();
  Cortenmm.Vm_object.reset_ids ();
  if not (Mm_obs.Trace.on ()) then begin
    Mm_obs.Metrics.reset ();
    Mm_obs.Contention.reset ()
  end;
  collector () := None;
  set_label "?"

(* Run a three-phase benchmark in one world:
   - [setup] runs alone on cpu 0 (global preparation);
   - [prep cpu] runs on every cpu in parallel (per-thread preparation);
   - [measure cpu] runs on every cpu in parallel; the returned cycle count
     is from the last barrier release to the last measure completion. *)
let run_phases ?(setup = fun () -> ()) ?(prep = fun _ -> ()) ~ncpus ~measure ()
    =
  let w = Engine.create ~ncpus in
  let b1 = Barrier.make ~total:ncpus in
  let b2 = Barrier.make ~total:ncpus in
  let start = Array.make ncpus 0 in
  let finish = Array.make ncpus 0 in
  let mw0 = Gc.minor_words () in
  let ct0 = Sys.time () in
  for cpu = 0 to ncpus - 1 do
    Engine.spawn w ~cpu (fun () ->
        if cpu = 0 then setup ();
        Barrier.wait b1;
        prep cpu;
        Barrier.wait b2;
        start.(cpu) <- Engine.now ();
        if Mm_obs.Trace.on () then
          Engine.obs (Mm_obs.Event.Span_begin { name = "measure" });
        measure cpu;
        if Mm_obs.Trace.on () then
          Engine.obs (Mm_obs.Event.Span_end { name = "measure" });
        finish.(cpu) <- Engine.now ())
  done;
  Engine.run w;
  (if Sys.getenv_opt "MM_ENGINE_STATS" <> None then
     let s = Engine.stats w in
     Printf.eprintf
       "ENGINE_STATS label=%s ncpus=%d events=%d parks=%d wakes=%d rmws=%d \
        stalls=%d mwords=%.0f cpu_s=%.3f\n\
        %!"
       (current_label ()) ncpus s.Engine.events s.Engine.parks s.Engine.wakes
       s.Engine.rmws s.Engine.line_stalls
       (Gc.minor_words () -. mw0)
       (Sys.time () -. ct0));
  let t0 = Array.fold_left min max_int start in
  let t1 = Array.fold_left max 0 finish in
  t1 - t0

(* Run [f cpu] on each of [ncpus] virtual CPUs with no setup; returns the
   completion time (max over CPUs, in cycles). Only safe for benchmarks
   whose world is fresh (no state carried from another world). *)
let run_threads ~ncpus f =
  let w = Engine.create ~ncpus in
  for cpu = 0 to ncpus - 1 do
    Engine.spawn w ~cpu (fun () -> f cpu)
  done;
  Engine.run w;
  Engine.max_time w
