(** A uniform façade over the evaluated systems (CortenMM and its
    ablations, Linux, RadixVM, NrOS): a first-class {!Backend.S} module
    packed with its state, plus a named registry the drivers dispatch
    through. *)

type kind = Backend.kind =
  | Corten of Cortenmm.Config.t
  | Linux
  | Radixvm
  | Nros

val kind_name : kind -> string

type caps = Backend.caps = {
  demand_paging : bool;  (** mmap is virtual; frames arrive at fault time *)
  has_mprotect : bool;  (** mprotect implemented (RadixVM/NrOS: no) *)
  has_reclaim : bool;
      (** mlock/munlock + page-out under pressure (CortenMM only) *)
}

type mem_stats = Backend.mem_stats = {
  pt_bytes : int;  (** page tables, all replicas *)
  kernel_bytes : int;  (** VMAs, metadata arrays, radix nodes *)
  resident_bytes : int;  (** user data frames, now *)
  peak_resident_bytes : int;  (** user data frames, high-water mark *)
}

type page_state = Backend.page_state =
  | P_unmapped
  | P_mapped of { writable : bool; resident : bool }

module type BACKEND = Backend.S
(** The backend signature (see {!Backend.S}). *)

type backend = Backend.b

val backend_of_kind : kind -> backend

(** The named-backend registry: the single list the drivers (bench
    [--list], mmrepro subcommands, the differential oracle's default
    backend set) derive the evaluated systems from. *)
module Registry : sig
  type entry = {
    r_name : string;  (** e.g. ["linux"], ["cortenmm-adv"] *)
    r_kind : kind;
    r_backend : backend;
  }

  val all : entry list
  (** In evaluation order: linux, radixvm, nros, cortenmm-rw,
      cortenmm-adv. *)

  val names : string list

  val find : string -> (entry, string) result
  (** [find name] is the entry named [name], or [Error msg] where [msg]
      already includes the valid-name listing — drivers print it
      verbatim. *)
end

type t = private {
  kind : kind;
  name : string;
  ncpus : int;
  page_size : int;
  caps : caps;
  instance : instance;
}

and instance =
  | Instance : (module Backend.S with type t = 's) * 's -> instance

val make : ?isa:Mm_hal.Isa.t -> kind -> ncpus:int -> t
val of_backend : ?isa:Mm_hal.Isa.t -> backend -> ncpus:int -> t
val demand_paging : t -> bool
val has_mprotect : t -> bool
val has_reclaim : t -> bool

(** {2 Typed operations}

    Failures come back as {!Mm_hal.Errno.t} values; the [_exn] bridges
    below raise {!Mm_hal.Errno.Error} for drivers that treat them as
    fatal. *)

val mmap :
  t ->
  ?addr:int ->
  len:int ->
  perm:Mm_hal.Perm.t ->
  unit ->
  (int, Mm_hal.Errno.t) result

val munmap : t -> addr:int -> len:int -> (unit, Mm_hal.Errno.t) result

val mprotect :
  t -> addr:int -> len:int -> perm:Mm_hal.Perm.t ->
  (unit, Mm_hal.Errno.t) result
(** [Error ENOSYS] when [caps.has_mprotect] is false. *)

val touch : t -> vaddr:int -> write:bool -> (unit, Mm_hal.Errno.t) result

val touch_range :
  t -> addr:int -> len:int -> write:bool -> (unit, Mm_hal.Errno.t) result

val page_state : t -> vaddr:int -> page_state

val fork : t -> (t, Mm_hal.Errno.t) result
(** A child instance duplicating this one's address space (same
    addresses, same logical contents). COW-capable backends share frames
    copy-on-write; the rest copy eagerly. The child shares the backend
    module (and simulated machine) with the parent. *)

val destroy : t -> unit
(** Tear the instance's address space down (process exit). The instance
    must not be used afterwards. *)

val write_value : t -> vaddr:int -> value:int -> (unit, Mm_hal.Errno.t) result
(** A user store of a data token: touches for write, then records
    [value] as the page's contents — the observable the oracle uses to
    prove parent/child COW isolation. *)

val read_value : t -> vaddr:int -> (int, Mm_hal.Errno.t) result
(** A user load of the page's data token. *)

val mlock : t -> addr:int -> len:int -> (unit, Mm_hal.Errno.t) result
(** Populate and wire the range against reclaim ([Error ENOSYS] when
    {!has_reclaim} is false). *)

val munlock : t -> addr:int -> len:int -> (unit, Mm_hal.Errno.t) result
(** Unwire the range (idempotent; [Error ENOSYS] without reclaim). *)

val pressure : t -> target_pages:int -> (int, Mm_hal.Errno.t) result
(** Wake the instance's page-out daemon to reclaim up to [target_pages]
    pages; returns how many it took ([Error ENOSYS] without reclaim). *)

val timer_tick : t -> unit
val mem_stats : t -> mem_stats

val set_shootdown_policy : t -> Mm_tlb.Tlb.policy -> unit
(** Install a TLB shootdown policy on the instance's (primary) TLB.
    Setting a policy completes any pending batch first, so ending a
    batched run with [set_shootdown_policy t Mm_tlb.Tlb.Immediate]
    drains all deferred work. *)

val tlb_counters : t -> Mm_tlb.Tlb.counters
(** Shootdown accounting (IPIs, batch flushes, worst deferral stall). *)

val mmap_exn :
  t -> ?addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit -> int

val munmap_exn : t -> addr:int -> len:int -> unit
val mprotect_exn : t -> addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit
val touch_exn : t -> vaddr:int -> write:bool -> unit
val touch_range_exn : t -> addr:int -> len:int -> write:bool -> unit
val fork_exn : t -> t
val write_value_exn : t -> vaddr:int -> value:int -> unit
val read_value_exn : t -> vaddr:int -> int

val warm : t -> cpu:int -> unit
(** One throwaway mapping on the calling CPU's fiber, materializing its
    share's PT chain — application drivers run this in their prep phase
    (real processes run in address spaces warmed by startup). *)

val table2_features : (string * bool list) list
(** The paper's Table 2 claims. *)

val table2_headers : string list

val implemented_features : (string * bool list) list
(** What this reproduction actually implements, printed for honesty. *)
