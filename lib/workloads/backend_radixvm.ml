(* RadixVM adapter. RadixVM (EuroSys'13) has no mprotect — the radix
   tree's per-page metadata fixes permissions at map time — so the
   capability is absent and [mprotect] answers [ENOSYS] as a value. *)

module Errno = Mm_hal.Errno
module R = Mm_radixvm.Radixvm

let backend : Backend.b =
  (module struct
    type t = R.t

    let name = "radixvm"
    let kind = Backend.Radixvm
    let caps = { Backend.demand_paging = true; has_mprotect = false; has_reclaim = false }
    let create ?(isa = Mm_hal.Isa.x86_64) ~ncpus () = R.create ~isa ~ncpus ()
    let page_size = R.page_size

    let mmap t ?addr ~len ~perm () =
      match Backend.check_mmap ~page_size:(R.page_size t) ?addr ~len () with
      | Error _ as e -> e
      | Ok () -> (
        try Ok (R.mmap t ?addr ~len ~perm ())
        with
        | Mm_phys.Buddy.Out_of_memory | Cortenmm.Va_alloc.Va_exhausted ->
          Error Errno.ENOMEM)

    let munmap t ~addr ~len =
      match Backend.check_range ~page_size:(R.page_size t) ~addr ~len with
      | Error _ as e -> e
      | Ok () -> Ok (R.munmap t ~addr ~len)

    let mprotect _ ~addr:_ ~len:_ ~perm:_ = Error Errno.ENOSYS

    let touch t ~vaddr ~write =
      try Ok (R.touch t ~vaddr ~write)
      with R.Fault v -> Error (Errno.SIGSEGV v)

    let touch_range t ~addr ~len ~write =
      try Ok (R.touch_range t ~addr ~len ~write)
      with R.Fault v -> Error (Errno.SIGSEGV v)

    let page_state t ~vaddr =
      match R.page_state t ~vaddr with
      | `Unmapped -> Backend.P_unmapped
      | `Lazy w -> Backend.P_mapped { writable = w; resident = false }
      | `Resident w -> Backend.P_mapped { writable = w; resident = true }

    let fork t =
      try Ok (R.fork t)
      with Mm_phys.Buddy.Out_of_memory -> Error Errno.ENOMEM

    let destroy t = R.destroy t

    let write_value t ~vaddr ~value =
      try Ok (R.write_value t ~vaddr ~value)
      with R.Fault v -> Error (Errno.SIGSEGV v)

    let read_value t ~vaddr =
      try Ok (R.read_value t ~vaddr)
      with R.Fault v -> Error (Errno.SIGSEGV v)

    let mlock _ ~addr:_ ~len:_ = Error Errno.ENOSYS
    let munlock _ ~addr:_ ~len:_ = Error Errno.ENOSYS
    let pressure _ ~target_pages:_ = Error Errno.ENOSYS

    let timer_tick t =
      if Mm_sim.Engine.in_fiber () then
        Mm_tlb.Tlb.timer_tick (R.tlb t) ~cpu:(Mm_sim.Engine.cpu_id ())

    let set_shootdown_policy t p = Mm_tlb.Tlb.set_policy (R.tlb t) p
    let tlb_counters t = Mm_tlb.Tlb.counters (R.tlb t)

    let mem_stats t =
      let u = Mm_phys.Phys.usage (R.phys t) in
      {
        Backend.pt_bytes = R.replicated_pt_bytes t;
        kernel_bytes = R.radix_bytes t;
        resident_bytes = u.Mm_phys.Phys.anon_bytes;
        peak_resident_bytes = Mm_phys.Phys.peak_data_bytes (R.phys t);
      }
  end : Backend.S)
