(* The five microbenchmarks of the paper's Table 3, each in a low- and a
   high-contention variant (§6.3): low contention gives each thread a
   private arena; high contention has all threads operate on random chunks
   of one shared region.

   Region size is 16 KiB (4 pages), as in the paper.

   Warmup: the paper measures sustained throughput, where the leaf PT
   pages (and Linux's VMA structure) already exist and the covering PT
   page of a 16 KiB transaction is a level-1 page. A cold address space
   instead puts the covering page at a shared upper level, serializing
   every thread's first operation — interesting but not what Fig 13/14
   report. The prep phase therefore materializes the leaf page tables
   (and for the unmap benchmark backs the chunks) before the measured
   phase starts. *)

module Perm = Mm_hal.Perm

type bench = Mmap | Mmap_pf | Unmap_virt | Unmap | Pf

let bench_name = function
  | Mmap -> "mmap"
  | Mmap_pf -> "mmap-PF"
  | Unmap_virt -> "unmap-virt"
  | Unmap -> "unmap"
  | Pf -> "PF"

let all_benches = [ Mmap; Mmap_pf; Unmap_virt; Unmap; Pf ]

type contention = Low | High

let contention_name = function Low -> "low" | High -> "high"

let region_len = 16 * 1024
let chunk_align = region_len
let page = 4096
let block = 2 * 1024 * 1024 (* one leaf PT page's coverage *)

(* Arena layout: thread-private arenas for the low-contention variant,
   one shared arena for high contention. 1 GiB-aligned so threads' PT
   paths share only upper levels. *)
let arena_base = 1 lsl 34 (* 16 GiB *)
let arena_size = 1 lsl 30 (* 1 GiB per arena *)

let private_arena ~cpu = arena_base + (cpu * arena_size)
let shared_arena = arena_base

let warm_low = 4 (* per-thread warmup operations (not measured) *)

(* Chunk schedules. Low contention: sequential chunks in the private
   arena, the first [warm_low] being warmup. High contention: random
   chunks of the shared arena. *)
let schedule ~contention ~ncpus ~iters ~seed =
  let total = warm_low + iters in
  Array.init ncpus (fun cpu ->
      let rng = Mm_util.Rng.create ~seed:(seed + (31 * cpu)) in
      Array.init total (fun i ->
          match contention with
          | Low -> private_arena ~cpu + (i * chunk_align)
          | High ->
            shared_arena
            + (Mm_util.Rng.int rng (arena_size / chunk_align) * chunk_align)))

let supported kind bench =
  match (kind, bench) with
  | System.Nros, (Pf | Unmap_virt) -> false
  | _ -> true

let timer_period = 8

(* Materialize the level-1 page tables of the shared arena: map and unmap
   one page at the end of every 2 MiB block (round-robin across CPUs). *)
let warm_shared_blocks (sys : System.t) ~cpu ~ncpus =
  let nblocks = arena_size / block in
  let b = ref cpu in
  while !b < nblocks do
    let addr = shared_arena + (!b * block) + block - page in
    ignore (System.mmap_exn sys ~addr ~len:page ~perm:Perm.rw ());
    System.munmap_exn sys ~addr ~len:page;
    b := !b + ncpus
  done

(* Run one (bench, contention) cell and return the throughput. [iters]
   measured operations per thread; setup, warmup and measurement run in
   one simulation world separated by barriers ({!Runner.run_phases}). *)
let run ?(isa = Mm_hal.Isa.x86_64) ~kind ~ncpus ~bench ~contention ~iters () =
  if not (supported kind bench) then None
  else begin
    let sys = System.make ~isa kind ~ncpus in
    let chunks = schedule ~contention ~ncpus ~iters ~seed:42 in
    let tick i = if i mod timer_period = 0 then System.timer_tick sys in
    let op cpu i =
      let chunk = chunks.(cpu).(i) in
      (match bench with
      | Mmap -> (
        match contention with
        | Low -> ignore (System.mmap_exn sys ~len:region_len ~perm:Perm.rw ())
        | High ->
          ignore
            (System.mmap_exn sys ~addr:chunk ~len:region_len ~perm:Perm.rw ()))
      | Mmap_pf ->
        let addr =
          match contention with
          | Low -> System.mmap_exn sys ~len:region_len ~perm:Perm.rw ()
          | High ->
            System.mmap_exn sys ~addr:chunk ~len:region_len ~perm:Perm.rw ()
        in
        (* NrOS backs pages eagerly in mmap itself. *)
        if System.demand_paging sys then
          System.touch_range_exn sys ~addr ~len:region_len ~write:true
      | Unmap_virt | Unmap -> System.munmap_exn sys ~addr:chunk ~len:region_len
      | Pf -> (
        (* High contention: the chunk may have been unmapped. *)
        match System.touch_range sys ~addr:chunk ~len:region_len ~write:true with
        | Ok () | Error _ -> ()));
      tick i
    in
    let setup () =
      match (bench, contention) with
      | (Mmap | Mmap_pf), _ -> ()
      | (Unmap_virt | Unmap | Pf), High ->
        ignore
          (System.mmap_exn sys ~addr:shared_arena ~len:arena_size ~perm:Perm.rw ())
      | (Unmap_virt | Unmap | Pf), Low ->
        for cpu = 0 to ncpus - 1 do
          ignore
            (System.mmap_exn sys ~addr:(private_arena ~cpu) ~len:arena_size
               ~perm:Perm.rw ())
        done
    in
    let prep cpu =
      (match contention with
      | High -> warm_shared_blocks sys ~cpu ~ncpus
      | Low -> ());
      (* The unmap benchmark needs its chunks backed by physical pages. *)
      if bench = Unmap then
        Array.iter
          (fun chunk ->
            match
              System.touch_range sys ~addr:chunk ~len:region_len ~write:true
            with
            | Ok () | Error _ -> ())
          chunks.(cpu);
      (* Warmup operations (not measured). *)
      if contention = Low then
        for i = 0 to warm_low - 1 do
          op cpu i
        done
    in
    let measure cpu =
      for i = warm_low to warm_low + iters - 1 do
        op cpu i
      done
    in
    let cycles = Runner.run_phases ~setup ~prep ~ncpus ~measure () in
    Some (Runner.result ~ops:(ncpus * iters) ~cycles)
  end
