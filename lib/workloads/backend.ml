(* The first-class backend signature: the typed boundary between the
   benchmark/oracle drivers and the five evaluated MM systems.

   The paper's central claim is that one interface can serve every MM
   design it evaluates; this module is our statement of that interface.
   Three deliberate choices:

   - capabilities are *data* ([caps]), not option-typed closures, so
     drivers and the differential oracle reason about what a backend
     supports without probing it;
   - errors are *values* ([Mm_hal.Errno.t] results), not exceptions, so
     two backends replaying one trace produce comparable outcome
     streams;
   - [page_state] is a normalized per-page observation (mapped?
     logically writable? resident?) every backend can answer, which is
     what the oracle diffs. *)

module Errno = Mm_hal.Errno

type kind =
  | Corten of Cortenmm.Config.t
  | Linux
  | Radixvm
  | Nros

let kind_name = function
  | Corten cfg -> Cortenmm.Config.name cfg
  | Linux -> "linux"
  | Radixvm -> "radixvm"
  | Nros -> "nros"

type caps = {
  demand_paging : bool; (* mmap is virtual; frames arrive at fault time *)
  has_mprotect : bool; (* mprotect implemented (RadixVM/NrOS: no) *)
  has_reclaim : bool; (* mlock/munlock + page-out under pressure (CortenMM) *)
}

type mem_stats = {
  pt_bytes : int; (* page tables, all replicas *)
  kernel_bytes : int; (* VMAs, metadata arrays, radix nodes... *)
  resident_bytes : int; (* user data frames, now *)
  peak_resident_bytes : int; (* user data frames, high-water mark *)
}

(* Normalized observation of one page. [writable] is the *logical*
   writability the MM would resolve for a store (a COW-protected page
   counts as writable: the write succeeds after the break). [resident]
   is whether a physical frame currently backs the page. *)
type page_state =
  | P_unmapped
  | P_mapped of { writable : bool; resident : bool }

module type S = sig
  type t

  val name : string
  val kind : kind
  val caps : caps
  val create : ?isa:Mm_hal.Isa.t -> ncpus:int -> unit -> t
  val page_size : t -> int

  val mmap :
    t ->
    ?addr:int ->
    len:int ->
    perm:Mm_hal.Perm.t ->
    unit ->
    (int, Errno.t) result

  val munmap : t -> addr:int -> len:int -> (unit, Errno.t) result

  val mprotect :
    t -> addr:int -> len:int -> perm:Mm_hal.Perm.t -> (unit, Errno.t) result
  (** [Error ENOSYS] when [caps.has_mprotect] is false. *)

  val touch : t -> vaddr:int -> write:bool -> (unit, Errno.t) result
  (** One user access; [Error (SIGSEGV vaddr)] when it faults fatally. *)

  val touch_range : t -> addr:int -> len:int -> write:bool -> (unit, Errno.t) result
  (** Touch every page of the range; stops at the first faulting page. *)

  val page_state : t -> vaddr:int -> page_state
  (** Observation for the oracle; must not disturb the cost model's
      bookkeeping beyond what an inspection transaction legitimately
      charges in its own world. *)

  val fork : t -> (t, Errno.t) result
  (** A child instance duplicating this one's address space (same
      addresses, same logical contents). COW-capable backends share
      frames copy-on-write; the rest copy eagerly — observationally
      identical for private memory, which is what the oracle diffs. *)

  val destroy : t -> unit
  (** Tear the instance's address space down (process exit). The
      instance must not be used afterwards. *)

  val write_value : t -> vaddr:int -> value:int -> (unit, Errno.t) result
  (** A user store of a data token: touches for write, then records
      [value] as the page's contents — the observable the oracle uses to
      prove parent/child COW isolation. *)

  val read_value : t -> vaddr:int -> (int, Errno.t) result
  (** A user load of the page's data token. *)

  val mlock : t -> addr:int -> len:int -> (unit, Errno.t) result
  (** Populate and wire the range against reclaim. [Error ENOSYS] when
      [caps.has_reclaim] is false. *)

  val munlock : t -> addr:int -> len:int -> (unit, Errno.t) result
  (** Unwire the range (idempotent). [Error ENOSYS] without reclaim. *)

  val pressure : t -> target_pages:int -> (int, Errno.t) result
  (** Simulate memory pressure: wake the page-out daemon to reclaim up
      to [target_pages] pages from this instance's machine; returns how
      many it took. [Error ENOSYS] when [caps.has_reclaim] is false. *)

  val timer_tick : t -> unit
  val mem_stats : t -> mem_stats

  val set_shootdown_policy : t -> Mm_tlb.Tlb.policy -> unit
  (** Install a TLB shootdown policy on the backend's (primary) TLB —
      [Immediate] is every backend's default and the historical,
      byte-identical behavior. Setting a policy completes any pending
      batch first, so a driver can end a batched run with
      [set_shootdown_policy t Mm_tlb.Tlb.Immediate] to drain. *)

  val tlb_counters : t -> Mm_tlb.Tlb.counters
  (** Shootdown accounting (IPIs, batch flushes, worst deferral stall)
      of the same TLB, for the serving-mode SLO reports. *)
end

type b = (module S)

(* Uniform request validation shared by the adapters, so every backend
   classifies malformed requests identically (host-side checks: no
   simulated cycles are charged). *)

let check_mmap ~page_size ?addr ~len () =
  if len <= 0 then Error Errno.EINVAL
  else
    match addr with
    | Some a when a < 0 || a mod page_size <> 0 -> Error Errno.EINVAL
    | _ -> Ok ()

let check_range ~page_size ~addr ~len =
  if len <= 0 || addr < 0 || addr mod page_size <> 0 then Error Errno.EINVAL
  else Ok ()
