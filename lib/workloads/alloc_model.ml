(* User-space allocator models (paper §6.4, Figs 17/18).

   The paper observes that dedup and psearchy are bottlenecked on the MM
   only with glibc's ptmalloc, which returns freed memory to the OS
   eagerly (munmap / trim); tcmalloc works around kernel MM scalability by
   caching freed memory in user space and rarely unmapping — at the cost of
   about 2x the resident memory (Fig 18).

   Model (per thread, as both allocators use thread-local state for the
   fast path):
   - ptmalloc: allocations >= 128 KiB map/unmap directly; small ones carve
     from 1 MiB arenas; a fully-freed arena is trimmed (munmapped)
     immediately.
   - tcmalloc: frees go to a size-classed local cache, reused by later
     allocations; memory is returned to the OS only beyond a large cache
     bound (64 MiB here), so munmap is rare. *)

module Perm = Mm_hal.Perm

type kind = Ptmalloc | Tcmalloc

let kind_name = function Ptmalloc -> "ptmalloc" | Tcmalloc -> "tcmalloc"

let mmap_threshold = 128 * 1024
let arena_size = 1024 * 1024
let tcmalloc_cache_bound = 64 * 1024 * 1024

type arena = { a_addr : int; mutable a_used : int; mutable a_live : int }

type t = {
  kind : kind;
  sys : System.t;
  mutable arena : arena option; (* current small-allocation arena *)
  mutable arenas : arena list; (* arenas with live objects *)
  cache : (int, int Queue.t) Hashtbl.t; (* tcmalloc: size -> addrs *)
  mutable cache_bytes : int;
  mutable mmap_calls : int;
  mutable munmap_calls : int;
}

let create ~kind ~sys =
  {
    kind;
    sys;
    arena = None;
    arenas = [];
    cache = Hashtbl.create 16;
    cache_bytes = 0;
    mmap_calls = 0;
    munmap_calls = 0;
  }

let size_class t size = Mm_util.Align.up size t.sys.System.page_size

let direct_map t size =
  t.mmap_calls <- t.mmap_calls + 1;
  let addr = System.mmap_exn t.sys ~len:size ~perm:Perm.rw () in
  (* First-touch the block, as applications do. *)
  System.touch_range_exn t.sys ~addr ~len:size ~write:true;
  addr

let direct_unmap t ~addr ~size =
  t.munmap_calls <- t.munmap_calls + 1;
  System.munmap_exn t.sys ~addr ~len:size

let arena_alloc t size =
  let a =
    match t.arena with
    | Some a when a.a_used + size <= arena_size -> a
    | _ ->
      t.mmap_calls <- t.mmap_calls + 1;
      let addr = System.mmap_exn t.sys ~len:arena_size ~perm:Perm.rw () in
      let a = { a_addr = addr; a_used = 0; a_live = 0 } in
      t.arena <- Some a;
      t.arenas <- a :: t.arenas;
      a
  in
  let addr = a.a_addr + a.a_used in
  a.a_used <- a.a_used + size;
  a.a_live <- a.a_live + 1;
  System.touch_range_exn t.sys ~addr ~len:size ~write:true;
  addr

let arena_free t ~addr =
  match
    List.find_opt
      (fun a -> addr >= a.a_addr && addr < a.a_addr + arena_size)
      t.arenas
  with
  | None -> () (* unknown block: tolerated, as in real allocators *)
  | Some a ->
    a.a_live <- a.a_live - 1;
    if a.a_live = 0 && a.a_used >= arena_size / 2 then begin
      (* ptmalloc trims fully-freed arenas back to the OS. *)
      t.munmap_calls <- t.munmap_calls + 1;
      System.munmap_exn t.sys ~addr:a.a_addr ~len:arena_size;
      t.arenas <- List.filter (fun x -> not (x == a)) t.arenas;
      match t.arena with
      | Some x when x == a -> t.arena <- None
      | Some _ | None -> ()
    end

let alloc t ~size =
  let size = size_class t size in
  match t.kind with
  | Ptmalloc ->
    if size >= mmap_threshold then direct_map t size else arena_alloc t size
  | Tcmalloc -> (
    match Hashtbl.find_opt t.cache size with
    | Some q when not (Queue.is_empty q) ->
      (* Served from the thread cache: no kernel interaction at all. *)
      let addr = Queue.pop q in
      t.cache_bytes <- t.cache_bytes - size;
      addr
    | _ -> direct_map t size)

let free t ~addr ~size =
  let size = size_class t size in
  match t.kind with
  | Ptmalloc ->
    if size >= mmap_threshold then direct_unmap t ~addr ~size
    else arena_free t ~addr
  | Tcmalloc ->
    if t.cache_bytes + size > tcmalloc_cache_bound then
      direct_unmap t ~addr ~size
    else begin
      let q =
        match Hashtbl.find_opt t.cache size with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace t.cache size q;
          q
      in
      Queue.push addr q;
      t.cache_bytes <- t.cache_bytes + size
    end

let mmap_calls t = t.mmap_calls
let munmap_calls t = t.munmap_calls
let cached_bytes t = t.cache_bytes
