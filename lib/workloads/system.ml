(* A uniform façade over the five evaluated systems (CortenMM_adv,
   CortenMM_rw and its ablations, Linux, RadixVM, NrOS). An instance
   packs a first-class {!Backend.S} module with its state; the data
   fields ([kind], [caps], [page_size]...) stay plain record fields so
   drivers read capabilities without unpacking. *)

module Perm = Mm_hal.Perm
module Errno = Mm_hal.Errno

(* Re-exports: [Backend] owns the interface types; [System] remains the
   name the drivers use. *)

type kind = Backend.kind =
  | Corten of Cortenmm.Config.t
  | Linux
  | Radixvm
  | Nros

let kind_name = Backend.kind_name

type caps = Backend.caps = {
  demand_paging : bool;
  has_mprotect : bool;
  has_reclaim : bool;
}

type mem_stats = Backend.mem_stats = {
  pt_bytes : int;
  kernel_bytes : int;
  resident_bytes : int;
  peak_resident_bytes : int;
}

type page_state = Backend.page_state =
  | P_unmapped
  | P_mapped of { writable : bool; resident : bool }

module type BACKEND = Backend.S

type backend = Backend.b

let backend_of_kind : kind -> backend = function
  | Corten cfg -> Backend_corten.make cfg
  | Linux -> Backend_linux.backend
  | Radixvm -> Backend_radixvm.backend
  | Nros -> Backend_nros.backend

(* The named-backend registry: the one list the drivers (bench --list,
   mmrepro sweep/trace/oracle, the differential oracle's default set)
   derive the evaluated systems from. *)
module Registry = struct
  type entry = {
    r_name : string;
    r_kind : kind;
    r_backend : backend;
  }

  let entry k =
    { r_name = kind_name k; r_kind = k; r_backend = backend_of_kind k }

  let all =
    [
      entry Linux;
      entry Radixvm;
      entry Nros;
      entry (Corten Cortenmm.Config.rw);
      entry (Corten Cortenmm.Config.adv);
    ]

  let names = List.map (fun e -> e.r_name) all

  (* Lookup failures carry the valid-name listing so every driver reports
     the same actionable message without reimplementing it. *)
  let find name =
    match List.find_opt (fun e -> e.r_name = name) all with
    | Some e -> Ok e
    | None ->
      Error
        (Printf.sprintf "unknown system %S (valid: %s)" name
           (String.concat ", " names))
end

(* An instance: the backend module packed with its state. *)
type instance =
  | Instance : (module Backend.S with type t = 's) * 's -> instance

type t = {
  kind : kind;
  name : string;
  ncpus : int;
  page_size : int;
  caps : caps;
  instance : instance;
}

let of_backend ?isa (b : backend) ~ncpus =
  let module B = (val b) in
  let st = B.create ?isa ~ncpus () in
  {
    kind = B.kind;
    name = B.name;
    ncpus;
    page_size = B.page_size st;
    caps = B.caps;
    instance = Instance ((module B), st);
  }

let make ?isa kind ~ncpus = of_backend ?isa (backend_of_kind kind) ~ncpus
let demand_paging t = t.caps.demand_paging
let has_mprotect t = t.caps.has_mprotect
let has_reclaim t = t.caps.has_reclaim

(* -- The typed operation surface -- *)

let mmap t ?addr ~len ~perm () =
  let (Instance ((module B), st)) = t.instance in
  B.mmap st ?addr ~len ~perm ()

let munmap t ~addr ~len =
  let (Instance ((module B), st)) = t.instance in
  B.munmap st ~addr ~len

let mprotect t ~addr ~len ~perm =
  let (Instance ((module B), st)) = t.instance in
  B.mprotect st ~addr ~len ~perm

let touch t ~vaddr ~write =
  let (Instance ((module B), st)) = t.instance in
  B.touch st ~vaddr ~write

let touch_range t ~addr ~len ~write =
  let (Instance ((module B), st)) = t.instance in
  B.touch_range st ~addr ~len ~write

let page_state t ~vaddr =
  let (Instance ((module B), st)) = t.instance in
  B.page_state st ~vaddr

let fork t =
  let (Instance ((module B), st)) = t.instance in
  match B.fork st with
  | Error _ as e -> e
  | Ok child -> Ok { t with instance = Instance ((module B), child) }

let destroy t =
  let (Instance ((module B), st)) = t.instance in
  B.destroy st

let write_value t ~vaddr ~value =
  let (Instance ((module B), st)) = t.instance in
  B.write_value st ~vaddr ~value

let read_value t ~vaddr =
  let (Instance ((module B), st)) = t.instance in
  B.read_value st ~vaddr

let mlock t ~addr ~len =
  let (Instance ((module B), st)) = t.instance in
  B.mlock st ~addr ~len

let munlock t ~addr ~len =
  let (Instance ((module B), st)) = t.instance in
  B.munlock st ~addr ~len

let pressure t ~target_pages =
  let (Instance ((module B), st)) = t.instance in
  B.pressure st ~target_pages

let timer_tick t =
  let (Instance ((module B), st)) = t.instance in
  B.timer_tick st

let mem_stats t =
  let (Instance ((module B), st)) = t.instance in
  B.mem_stats st

let set_shootdown_policy t p =
  let (Instance ((module B), st)) = t.instance in
  B.set_shootdown_policy st p

let tlb_counters t =
  let (Instance ((module B), st)) = t.instance in
  B.tlb_counters st

(* -- Exception bridges for drivers that treat failure as fatal -- *)

let ok_exn = function Ok v -> v | Error e -> raise (Errno.Error e)
let mmap_exn t ?addr ~len ~perm () = ok_exn (mmap t ?addr ~len ~perm ())
let munmap_exn t ~addr ~len = ok_exn (munmap t ~addr ~len)
let mprotect_exn t ~addr ~len ~perm = ok_exn (mprotect t ~addr ~len ~perm)
let touch_exn t ~vaddr ~write = ok_exn (touch t ~vaddr ~write)

let touch_range_exn t ~addr ~len ~write =
  ok_exn (touch_range t ~addr ~len ~write)

let fork_exn t = ok_exn (fork t)
let write_value_exn t ~vaddr ~value = ok_exn (write_value t ~vaddr ~value)
let read_value_exn t ~vaddr = ok_exn (read_value t ~vaddr)

(* The feature matrix of the paper's Table 2 (claims of the respective
   papers/systems, reproduced verbatim). *)
let table2_features =
  [
    ( "linux",
      [ true; true; true; true; true; true; true ] );
    ( "radixvm",
      [ true; true; false; false; true; false; true ] );
    ( "nros",
      [ false; false; false; false; false; true; true ] );
    ( "cortenmm",
      [ true; true; true; true; true; true; false ] );
  ]

let table2_headers =
  [
    "On-demand paging";
    "COW";
    "Page swapping";
    "Reverse mapping";
    "mmaped file";
    "Huge page";
    "NUMA policy";
  ]

(* What our reproduction actually implements (printed next to the paper's
   claims for honesty). *)
let implemented_features =
  [
    ("linux", [ true; true; false; false; false; false; false ]);
    ("radixvm", [ true; false; false; false; false; false; false ]);
    ("nros", [ false; false; false; false; false; false; false ]);
    (* NUMA policies are implemented here as an extension (the paper's
       CortenMM lacks them; see ext-numa). *)
    ("cortenmm", [ true; true; true; true; true; true; true ]);
  ]


(* Warm the calling CPU's share of the address space: one throwaway
   mapping materializes the PT chain (and, for CortenMM's adv protocol,
   keeps the covering page of later transactions at the leaf level rather
   than the root). Application drivers call this in their prep phase —
   real processes run in address spaces warmed by their startup. *)
let warm t ~cpu:_ =
  let a = mmap_exn t ~len:t.page_size ~perm:Mm_hal.Perm.rw () in
  (if demand_paging t then
     match touch t ~vaddr:a ~write:true with Ok () | Error _ -> ());
  munmap_exn t ~addr:a ~len:t.page_size
