(* MM operation traces: a portable text format for recording memory
   management workloads, a synthetic generator with workload profiles,
   and a replayer that drives any of the five systems.

   Regions are referenced by symbolic ids rather than addresses, so one
   trace replays identically on systems with different VA allocators.

   Text format, one operation per line ('#' starts a comment):

     <cpu> mmap <id> <bytes> <rw|ro>
     <cpu> munmap <id>
     <cpu> touch <id> <page-index> <r|w>
     <cpu> mprotect <id> <rw|ro>
     <cpu> fork <child-proc>
     <cpu> exit
     <cpu> write <id> <page-index> <value>
     <cpu> read <id> <page-index>
     <cpu> mlock <id>
     <cpu> munlock <id>
     <cpu> pressure <pages>

   (The last three are format v3; v2 and v1 traces contain none of the
   new keywords and keep loading unchanged.)

   Every line takes an optional trailing "@<proc>" naming the process
   executing the operation; it is omitted for process 0 (the root), so
   pre-fork traces round-trip byte-identically. [fork]'s @proc is the
   parent; the child inherits the parent's regions. *)

module Perm = Mm_hal.Perm

type op =
  | T_mmap of { id : int; len : int; writable : bool }
  | T_munmap of { id : int }
  | T_touch of { id : int; page : int; write : bool }
  | T_mprotect of { id : int; writable : bool }
  | T_fork of { child : int }
  | T_exit
  | T_write of { id : int; page : int; value : int }
  | T_read of { id : int; page : int }
  | T_mlock of { id : int }
  | T_munlock of { id : int }
  | T_pressure of { pages : int }

type entry = { cpu : int; proc : int; op : op }

type t = { ncpus : int; entries : entry array }

(* -- Text serialization -- *)

let entry_to_string { cpu; proc; op } =
  let base =
    match op with
    | T_mmap { id; len; writable } ->
      Printf.sprintf "%d mmap %d %d %s" cpu id len
        (if writable then "rw" else "ro")
    | T_munmap { id } -> Printf.sprintf "%d munmap %d" cpu id
    | T_touch { id; page; write } ->
      Printf.sprintf "%d touch %d %d %s" cpu id page (if write then "w" else "r")
    | T_mprotect { id; writable } ->
      Printf.sprintf "%d mprotect %d %s" cpu id (if writable then "rw" else "ro")
    | T_fork { child } -> Printf.sprintf "%d fork %d" cpu child
    | T_exit -> Printf.sprintf "%d exit" cpu
    | T_write { id; page; value } ->
      Printf.sprintf "%d write %d %d %d" cpu id page value
    | T_read { id; page } -> Printf.sprintf "%d read %d %d" cpu id page
    | T_mlock { id } -> Printf.sprintf "%d mlock %d" cpu id
    | T_munlock { id } -> Printf.sprintf "%d munlock %d" cpu id
    | T_pressure { pages } -> Printf.sprintf "%d pressure %d" cpu pages
  in
  if proc = 0 then base else Printf.sprintf "%s @%d" base proc

exception Parse_error of int * string

let max_cpus = 4096

let entry_of_string ~line s =
  let fail msg = raise (Parse_error (line, msg)) in
  let int_of s = try int_of_string s with _ -> fail ("bad integer " ^ s) in
  let cpu_of s =
    let c = int_of s in
    if c < 0 || c >= max_cpus then fail (Printf.sprintf "cpu id %d out of range" c)
    else c
  in
  (* Peel the optional trailing "@<proc>" token. *)
  let toks = String.split_on_char ' ' (String.trim s) in
  let toks, proc =
    match List.rev toks with
    | last :: rest when String.length last > 1 && last.[0] = '@' ->
      let p = int_of (String.sub last 1 (String.length last - 1)) in
      if p < 0 then fail (Printf.sprintf "process id %d out of range" p);
      (List.rev rest, p)
    | _ -> (toks, 0)
  in
  match toks with
  | [ cpu; "mmap"; id; len; prot ] ->
    {
      cpu = cpu_of cpu;
      proc;
      op =
        T_mmap
          {
            id = int_of id;
            len = int_of len;
            writable =
              (match prot with
              | "rw" -> true
              | "ro" -> false
              | p -> fail ("bad protection " ^ p));
          };
    }
  | [ cpu; "munmap"; id ] ->
    { cpu = cpu_of cpu; proc; op = T_munmap { id = int_of id } }
  | [ cpu; "touch"; id; page; rw ] ->
    {
      cpu = cpu_of cpu;
      proc;
      op =
        T_touch
          {
            id = int_of id;
            page = int_of page;
            write =
              (match rw with
              | "w" -> true
              | "r" -> false
              | p -> fail ("bad access " ^ p));
          };
    }
  | [ cpu; "mprotect"; id; prot ] ->
    {
      cpu = cpu_of cpu;
      proc;
      op =
        T_mprotect
          {
            id = int_of id;
            writable =
              (match prot with
              | "rw" -> true
              | "ro" -> false
              | p -> fail ("bad protection " ^ p));
          };
    }
  | [ cpu; "fork"; child ] ->
    let child = int_of child in
    if child <= 0 then fail (Printf.sprintf "child process id %d out of range" child);
    { cpu = cpu_of cpu; proc; op = T_fork { child } }
  | [ cpu; "exit" ] -> { cpu = cpu_of cpu; proc; op = T_exit }
  | [ cpu; "write"; id; page; value ] ->
    {
      cpu = cpu_of cpu;
      proc;
      op = T_write { id = int_of id; page = int_of page; value = int_of value };
    }
  | [ cpu; "read"; id; page ] ->
    { cpu = cpu_of cpu; proc; op = T_read { id = int_of id; page = int_of page } }
  | [ cpu; "mlock"; id ] ->
    { cpu = cpu_of cpu; proc; op = T_mlock { id = int_of id } }
  | [ cpu; "munlock"; id ] ->
    { cpu = cpu_of cpu; proc; op = T_munlock { id = int_of id } }
  | [ cpu; "pressure"; pages ] ->
    let pages = int_of pages in
    if pages <= 0 then fail (Printf.sprintf "pressure size %d out of range" pages);
    { cpu = cpu_of cpu; proc; op = T_pressure { pages } }
  | _ -> fail ("unrecognized operation: " ^ s)

let save t path =
  let oc = open_out path in
  Printf.fprintf oc "# mm trace: %d cpus, %d operations\n" t.ncpus
    (Array.length t.entries);
  Array.iter (fun e -> output_string oc (entry_to_string e ^ "\n")) t.entries;
  close_out oc

let load path =
  let ic = open_in path in
  let entries = ref [] in
  let ncpus = ref 1 in
  let line = ref 0 in
  (try
     while true do
       incr line;
       let s = input_line ic in
       let s = String.trim s in
       if s <> "" && s.[0] <> '#' then begin
         let e = entry_of_string ~line:!line s in
         if e.cpu + 1 > !ncpus then ncpus := e.cpu + 1;
         entries := e :: !entries
       end
     done
   with End_of_file -> ());
  close_in ic;
  { ncpus = !ncpus; entries = Array.of_list (List.rev !entries) }

(* -- Synthetic generation -- *)

type profile =
  | Churn (* allocator-like: map, touch a few pages, unmap *)
  | Faults (* fault-heavy: few large regions, many touches *)
  | Mixed (* a blend, with occasional mprotects *)
  | Forks (* process trees: fork, COW writes/reads, exits *)
  | Reclaim (* value traffic under mlock/munlock and pressure storms *)

let profile_name = function
  | Churn -> "churn"
  | Faults -> "faults"
  | Mixed -> "mixed"
  | Forks -> "forks"
  | Reclaim -> "reclaim"

let profile_of_name = function
  | "churn" -> Some Churn
  | "faults" -> Some Faults
  | "mixed" -> Some Mixed
  | "forks" -> Some Forks
  | "reclaim" -> Some Reclaim
  | _ -> None

let generate ~profile ~ncpus ~ops_per_cpu ~seed =
  let next_id = ref 0 in
  let next_proc = ref 0 in
  let entries = ref [] in
  let emit_p cpu proc op = entries := { cpu; proc; op } :: !entries in
  let emit cpu op = emit_p cpu 0 op in
  for cpu = 0 to ncpus - 1 do
    let rng = Mm_util.Rng.create ~seed:(seed + (97 * cpu)) in
    let live = ref [] in
    let budget = ref ops_per_cpu in
    let fresh_region ~pages ~writable =
      incr next_id;
      let id = !next_id in
      emit cpu (T_mmap { id; len = pages * 4096; writable });
      live := (id, pages) :: !live;
      decr budget;
      id
    in
    (* Forks state: a stack of (proc, regions the process can reference),
       rooted at process 0. Each CPU grows its own subtree, so its stream
       stays self-contained (a child is only ever driven by the CPU that
       forked it). *)
    let pstack = ref [ (0, ref []) ] in
    while !budget > 0 do
      match profile with
      | Churn ->
        let pages = 1 + Mm_util.Rng.int rng 8 in
        let id = fresh_region ~pages ~writable:true in
        let touches = min !budget (1 + Mm_util.Rng.int rng pages) in
        for k = 0 to touches - 1 do
          emit cpu (T_touch { id; page = k mod pages; write = true });
          decr budget
        done;
        if !budget > 0 then begin
          emit cpu (T_munmap { id });
          live := List.remove_assoc id !live;
          decr budget
        end
      | Faults ->
        (match !live with
        | [] -> ignore (fresh_region ~pages:256 ~writable:true)
        | regions ->
          let id, pages =
            List.nth regions (Mm_util.Rng.int rng (List.length regions))
          in
          emit cpu
            (T_touch
               {
                 id;
                 page = Mm_util.Rng.int rng pages;
                 write = Mm_util.Rng.bool rng;
               });
          decr budget;
          if List.length regions < 4 && Mm_util.Rng.int rng 50 = 0 then
            ignore (fresh_region ~pages:256 ~writable:true))
      | Mixed -> (
        match Mm_util.Rng.int rng 10 with
        | 0 | 1 -> ignore (fresh_region ~pages:(1 + Mm_util.Rng.int rng 16) ~writable:true)
        | 2 -> (
          match !live with
          | (id, _) :: rest ->
            emit cpu (T_munmap { id });
            live := rest;
            decr budget
          | [] -> ignore (fresh_region ~pages:4 ~writable:true))
        | 3 -> (
          match !live with
          | (id, _) :: _ ->
            emit cpu (T_mprotect { id; writable = Mm_util.Rng.bool rng });
            decr budget
          | [] -> ignore (fresh_region ~pages:4 ~writable:true))
        | _ -> (
          match !live with
          | [] -> ignore (fresh_region ~pages:8 ~writable:true)
          | regions ->
            let id, pages =
              List.nth regions (Mm_util.Rng.int rng (List.length regions))
            in
            emit cpu
              (T_touch
                 {
                   id;
                   page = Mm_util.Rng.int rng pages;
                   write = Mm_util.Rng.bool rng;
                 });
            decr budget))
      | Reclaim -> (
        (* Value traffic interleaved with wiring and pressure storms:
           writes seed data tokens, [pressure] forces the page-out
           daemon to evict (write back / swap) what is not wired, reads
           then prove the tokens survived the round trip. mlock'd
           regions must come back untouched *without* a refault. *)
        let pick () =
          List.nth !live (Mm_util.Rng.int rng (List.length !live))
        in
        match Mm_util.Rng.int rng 16 with
        | 0 | 1 when List.length !live < 6 ->
          ignore (fresh_region ~pages:(2 + Mm_util.Rng.int rng 6) ~writable:true)
        | 2 ->
          if !live = [] then
            ignore (fresh_region ~pages:4 ~writable:true)
          else begin
            let id, _ = pick () in
            emit cpu (T_mlock { id });
            decr budget
          end
        | 3 ->
          if !live = [] then
            ignore (fresh_region ~pages:4 ~writable:true)
          else begin
            let id, _ = pick () in
            emit cpu (T_munlock { id });
            decr budget
          end
        | 4 | 5 ->
          emit cpu (T_pressure { pages = 8 + Mm_util.Rng.int rng 24 });
          decr budget
        | 6 | 7 | 8 | 9 | 10 ->
          if !live = [] then
            ignore (fresh_region ~pages:4 ~writable:true)
          else begin
            let id, pages = pick () in
            emit cpu
              (T_write
                 {
                   id;
                   page = Mm_util.Rng.int rng pages;
                   value = 1 + Mm_util.Rng.int rng 1_000_000;
                 });
            decr budget
          end
        | _ ->
          if !live = [] then
            ignore (fresh_region ~pages:4 ~writable:true)
          else begin
            let id, pages = pick () in
            emit cpu (T_read { id; page = Mm_util.Rng.int rng pages });
            decr budget
          end)
      | Forks -> (
        let depth = List.length !pstack in
        (* Memory ops act on a *random* live process, not just the
           innermost child: parents keep writing while their children
           live, which is the access pattern that separates a correct
           fork (write-protect both sides) from the parent-side-skip
           mutant the oracle gate arms. Fork/exit stay LIFO on the
           stack head so children always exit before their parent. *)
        let cur, cur_live =
          List.nth !pstack (Mm_util.Rng.int rng depth)
        in
        let fresh_in_proc () =
          incr next_id;
          let id = !next_id in
          let pages = 1 + Mm_util.Rng.int rng 8 in
          emit_p cpu cur (T_mmap { id; len = pages * 4096; writable = true });
          cur_live := (id, pages) :: !cur_live;
          decr budget
        in
        let pick () =
          let regions = !cur_live in
          List.nth regions (Mm_util.Rng.int rng (List.length regions))
        in
        match Mm_util.Rng.int rng 12 with
        | 0 when depth < 3 && !budget >= 3 ->
          (* Fork off the stack head: the child starts with the
             forking process's current region view (COW-shared until
             either side writes). *)
          let top, top_live = List.hd !pstack in
          incr next_proc;
          let child = !next_proc in
          emit_p cpu top (T_fork { child });
          pstack := (child, ref !top_live) :: !pstack;
          decr budget
        | 1 when depth > 1 ->
          let top, _ = List.hd !pstack in
          emit_p cpu top T_exit;
          pstack := List.tl !pstack;
          decr budget
        | 0 | 1 | 2 | 3 -> fresh_in_proc ()
        | 4 | 5 | 6 | 7 ->
          if !cur_live = [] then fresh_in_proc ()
          else begin
            (* Value traffic concentrates on the low pages of each
               region (hot-page skew): cross-process write/read
               collisions on shared COW pages are what give the value
               model its discriminating power. *)
            let id, pages = pick () in
            emit_p cpu cur
              (T_write
                 {
                   id;
                   page = Mm_util.Rng.int rng (min pages 2);
                   value = 1 + Mm_util.Rng.int rng 1_000_000;
                 });
            decr budget
          end
        | 8 | 9 ->
          if !cur_live = [] then fresh_in_proc ()
          else begin
            let id, pages = pick () in
            emit_p cpu cur
              (T_read { id; page = Mm_util.Rng.int rng (min pages 2) });
            decr budget
          end
        | _ ->
          if !cur_live = [] then fresh_in_proc ()
          else begin
            let id, pages = pick () in
            emit_p cpu cur
              (T_touch
                 {
                   id;
                   page = Mm_util.Rng.int rng pages;
                   write = Mm_util.Rng.bool rng;
                 });
            decr budget
          end)
    done;
    (* Every forked process exits before its CPU's stream ends, so a
       replayed world quiesces to the root process alone. *)
    List.iter
      (fun (p, _) -> if p <> 0 then emit_p cpu p T_exit)
      !pstack
  done;
  { ncpus; entries = Array.of_list (List.rev !entries) }

(* -- Replay -- *)

type replay_stats = {
  result : Runner.result;
  mmaps : int;
  munmaps : int;
  touches : int;
  forks : int;
  faults_denied : int; (* touches that hit SIGSEGV (e.g. after mprotect) *)
}

let replay ?(isa = Mm_hal.Isa.x86_64) ~kind trace =
  let root = System.make ~isa kind ~ncpus:trace.ncpus in
  (* proc -> live instance; process 0 is the root and never exits. *)
  let procs : (int, System.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace procs 0 root;
  (* (proc, id) -> (addr, len); shared across CPUs (simulation is
     cooperative). A fork copies the parent's entries under the child's
     key: region addresses are identical in the child's address space. *)
  let regions : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let mmaps = ref 0 and munmaps = ref 0 and touches = ref 0 in
  let forks = ref 0 in
  let denied = ref 0 in
  (* Per-CPU streams, replayed in trace order within each CPU. *)
  let per_cpu = Array.make trace.ncpus [] in
  Array.iter (fun e -> per_cpu.(e.cpu) <- e :: per_cpu.(e.cpu)) trace.entries;
  Array.iteri (fun i l -> per_cpu.(i) <- List.rev l) per_cpu;
  let cycles =
    Runner.run_phases ~ncpus:trace.ncpus
      ~prep:(fun cpu -> System.warm root ~cpu)
      ()
      ~measure:(fun cpu ->
        List.iter
          (fun { proc; op; _ } ->
            match Hashtbl.find_opt procs proc with
            | None -> () (* defunct process: skip, like a dead region id *)
            | Some sys -> (
              match op with
              | T_mmap { id; len; writable } ->
                incr mmaps;
                let perm = if writable then Perm.rw else Perm.r in
                let addr = System.mmap_exn sys ~len ~perm () in
                Hashtbl.replace regions (proc, id) (addr, len)
              | T_munmap { id } -> (
                match Hashtbl.find_opt regions (proc, id) with
                | Some (addr, len) ->
                  incr munmaps;
                  Hashtbl.remove regions (proc, id);
                  System.munmap_exn sys ~addr ~len
                | None -> ())
              | T_touch { id; page; write } -> (
                match Hashtbl.find_opt regions (proc, id) with
                | Some (addr, len) when page * 4096 < len -> (
                  incr touches;
                  match
                    System.touch sys ~vaddr:(addr + (page * 4096)) ~write
                  with
                  | Ok () -> ()
                  | Error _ -> incr denied)
                | Some _ | None -> ())
              | T_mprotect { id; writable } -> (
                match Hashtbl.find_opt regions (proc, id) with
                | Some (addr, len) when System.has_mprotect sys ->
                  System.mprotect_exn sys ~addr ~len
                    ~perm:(if writable then Perm.rw else Perm.r)
                | Some _ | None -> ())
              | T_fork { child } -> (
                match System.fork sys with
                | Ok csys ->
                  incr forks;
                  Hashtbl.replace procs child csys;
                  let inherited =
                    Hashtbl.fold
                      (fun (p, id) v acc ->
                        if p = proc then (id, v) :: acc else acc)
                      regions []
                  in
                  List.iter
                    (fun (id, v) -> Hashtbl.replace regions (child, id) v)
                    inherited
                | Error _ -> ())
              | T_exit ->
                if proc <> 0 then begin
                  System.destroy sys;
                  Hashtbl.remove procs proc;
                  let dead =
                    Hashtbl.fold
                      (fun (p, id) _ acc ->
                        if p = proc then (p, id) :: acc else acc)
                      regions []
                  in
                  List.iter (Hashtbl.remove regions) dead
                end
              | T_write { id; page; value } -> (
                match Hashtbl.find_opt regions (proc, id) with
                | Some (addr, len) when page * 4096 < len -> (
                  incr touches;
                  match
                    System.write_value sys ~vaddr:(addr + (page * 4096)) ~value
                  with
                  | Ok () -> ()
                  | Error _ -> incr denied)
                | Some _ | None -> ())
              | T_read { id; page } -> (
                match Hashtbl.find_opt regions (proc, id) with
                | Some (addr, len) when page * 4096 < len -> (
                  incr touches;
                  match System.read_value sys ~vaddr:(addr + (page * 4096)) with
                  | Ok _ -> ()
                  | Error _ -> incr denied)
                | Some _ | None -> ())
              | T_mlock { id } -> (
                (* Reclaim ops are capability-gated like mprotect: a
                   backend without a page-out daemon replays them as
                   no-ops (there is nothing to guard against). *)
                match Hashtbl.find_opt regions (proc, id) with
                | Some (addr, len) when System.has_reclaim sys -> (
                  match System.mlock sys ~addr ~len with
                  | Ok () -> ()
                  | Error _ -> incr denied)
                | Some _ | None -> ())
              | T_munlock { id } -> (
                match Hashtbl.find_opt regions (proc, id) with
                | Some (addr, len) when System.has_reclaim sys -> (
                  match System.munlock sys ~addr ~len with
                  | Ok () -> ()
                  | Error _ -> incr denied)
                | Some _ | None -> ())
              | T_pressure { pages } ->
                if System.has_reclaim sys then
                  ignore (System.pressure sys ~target_pages:pages)))
          per_cpu.(cpu))
  in
  {
    result = Runner.result ~ops:(Array.length trace.entries) ~cycles;
    mmaps = !mmaps;
    munmaps = !munmaps;
    touches = !touches;
    forks = !forks;
    faults_denied = !denied;
  }
