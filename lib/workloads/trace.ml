(* MM operation traces: a portable text format for recording memory
   management workloads, a synthetic generator with workload profiles,
   and a replayer that drives any of the five systems.

   Regions are referenced by symbolic ids rather than addresses, so one
   trace replays identically on systems with different VA allocators.

   Text format, one operation per line ('#' starts a comment):

     <cpu> mmap <id> <bytes> <rw|ro>
     <cpu> munmap <id>
     <cpu> touch <id> <page-index> <r|w>
     <cpu> mprotect <id> <rw|ro>
*)

module Perm = Mm_hal.Perm

type op =
  | T_mmap of { id : int; len : int; writable : bool }
  | T_munmap of { id : int }
  | T_touch of { id : int; page : int; write : bool }
  | T_mprotect of { id : int; writable : bool }

type entry = { cpu : int; op : op }

type t = { ncpus : int; entries : entry array }

(* -- Text serialization -- *)

let entry_to_string { cpu; op } =
  match op with
  | T_mmap { id; len; writable } ->
    Printf.sprintf "%d mmap %d %d %s" cpu id len (if writable then "rw" else "ro")
  | T_munmap { id } -> Printf.sprintf "%d munmap %d" cpu id
  | T_touch { id; page; write } ->
    Printf.sprintf "%d touch %d %d %s" cpu id page (if write then "w" else "r")
  | T_mprotect { id; writable } ->
    Printf.sprintf "%d mprotect %d %s" cpu id (if writable then "rw" else "ro")

exception Parse_error of int * string

let max_cpus = 4096

let entry_of_string ~line s =
  let fail msg = raise (Parse_error (line, msg)) in
  let int_of s = try int_of_string s with _ -> fail ("bad integer " ^ s) in
  let cpu_of s =
    let c = int_of s in
    if c < 0 || c >= max_cpus then fail (Printf.sprintf "cpu id %d out of range" c)
    else c
  in
  match String.split_on_char ' ' (String.trim s) with
  | [ cpu; "mmap"; id; len; prot ] ->
    {
      cpu = cpu_of cpu;
      op =
        T_mmap
          {
            id = int_of id;
            len = int_of len;
            writable =
              (match prot with
              | "rw" -> true
              | "ro" -> false
              | p -> fail ("bad protection " ^ p));
          };
    }
  | [ cpu; "munmap"; id ] ->
    { cpu = cpu_of cpu; op = T_munmap { id = int_of id } }
  | [ cpu; "touch"; id; page; rw ] ->
    {
      cpu = cpu_of cpu;
      op =
        T_touch
          {
            id = int_of id;
            page = int_of page;
            write =
              (match rw with
              | "w" -> true
              | "r" -> false
              | p -> fail ("bad access " ^ p));
          };
    }
  | [ cpu; "mprotect"; id; prot ] ->
    {
      cpu = cpu_of cpu;
      op =
        T_mprotect
          {
            id = int_of id;
            writable =
              (match prot with
              | "rw" -> true
              | "ro" -> false
              | p -> fail ("bad protection " ^ p));
          };
    }
  | _ -> fail ("unrecognized operation: " ^ s)

let save t path =
  let oc = open_out path in
  Printf.fprintf oc "# mm trace: %d cpus, %d operations\n" t.ncpus
    (Array.length t.entries);
  Array.iter (fun e -> output_string oc (entry_to_string e ^ "\n")) t.entries;
  close_out oc

let load path =
  let ic = open_in path in
  let entries = ref [] in
  let ncpus = ref 1 in
  let line = ref 0 in
  (try
     while true do
       incr line;
       let s = input_line ic in
       let s = String.trim s in
       if s <> "" && s.[0] <> '#' then begin
         let e = entry_of_string ~line:!line s in
         if e.cpu + 1 > !ncpus then ncpus := e.cpu + 1;
         entries := e :: !entries
       end
     done
   with End_of_file -> ());
  close_in ic;
  { ncpus = !ncpus; entries = Array.of_list (List.rev !entries) }

(* -- Synthetic generation -- *)

type profile =
  | Churn (* allocator-like: map, touch a few pages, unmap *)
  | Faults (* fault-heavy: few large regions, many touches *)
  | Mixed (* a blend, with occasional mprotects *)

let profile_name = function
  | Churn -> "churn"
  | Faults -> "faults"
  | Mixed -> "mixed"

let profile_of_name = function
  | "churn" -> Some Churn
  | "faults" -> Some Faults
  | "mixed" -> Some Mixed
  | _ -> None

let generate ~profile ~ncpus ~ops_per_cpu ~seed =
  let next_id = ref 0 in
  let entries = ref [] in
  let emit cpu op = entries := { cpu; op } :: !entries in
  for cpu = 0 to ncpus - 1 do
    let rng = Mm_util.Rng.create ~seed:(seed + (97 * cpu)) in
    let live = ref [] in
    let budget = ref ops_per_cpu in
    let fresh_region ~pages ~writable =
      incr next_id;
      let id = !next_id in
      emit cpu (T_mmap { id; len = pages * 4096; writable });
      live := (id, pages) :: !live;
      decr budget;
      id
    in
    while !budget > 0 do
      match profile with
      | Churn ->
        let pages = 1 + Mm_util.Rng.int rng 8 in
        let id = fresh_region ~pages ~writable:true in
        let touches = min !budget (1 + Mm_util.Rng.int rng pages) in
        for k = 0 to touches - 1 do
          emit cpu (T_touch { id; page = k mod pages; write = true });
          decr budget
        done;
        if !budget > 0 then begin
          emit cpu (T_munmap { id });
          live := List.remove_assoc id !live;
          decr budget
        end
      | Faults ->
        (match !live with
        | [] -> ignore (fresh_region ~pages:256 ~writable:true)
        | regions ->
          let id, pages =
            List.nth regions (Mm_util.Rng.int rng (List.length regions))
          in
          emit cpu
            (T_touch
               {
                 id;
                 page = Mm_util.Rng.int rng pages;
                 write = Mm_util.Rng.bool rng;
               });
          decr budget;
          if List.length regions < 4 && Mm_util.Rng.int rng 50 = 0 then
            ignore (fresh_region ~pages:256 ~writable:true))
      | Mixed -> (
        match Mm_util.Rng.int rng 10 with
        | 0 | 1 -> ignore (fresh_region ~pages:(1 + Mm_util.Rng.int rng 16) ~writable:true)
        | 2 -> (
          match !live with
          | (id, _) :: rest ->
            emit cpu (T_munmap { id });
            live := rest;
            decr budget
          | [] -> ignore (fresh_region ~pages:4 ~writable:true))
        | 3 -> (
          match !live with
          | (id, _) :: _ ->
            emit cpu (T_mprotect { id; writable = Mm_util.Rng.bool rng });
            decr budget
          | [] -> ignore (fresh_region ~pages:4 ~writable:true))
        | _ -> (
          match !live with
          | [] -> ignore (fresh_region ~pages:8 ~writable:true)
          | regions ->
            let id, pages =
              List.nth regions (Mm_util.Rng.int rng (List.length regions))
            in
            emit cpu
              (T_touch
                 {
                   id;
                   page = Mm_util.Rng.int rng pages;
                   write = Mm_util.Rng.bool rng;
                 });
            decr budget))
    done
  done;
  { ncpus; entries = Array.of_list (List.rev !entries) }

(* -- Replay -- *)

type replay_stats = {
  result : Runner.result;
  mmaps : int;
  munmaps : int;
  touches : int;
  faults_denied : int; (* touches that hit SIGSEGV (e.g. after mprotect) *)
}

let replay ?(isa = Mm_hal.Isa.x86_64) ~kind trace =
  let sys = System.make ~isa kind ~ncpus:trace.ncpus in
  (* id -> (addr, len); shared across CPUs (simulation is cooperative). *)
  let regions : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let mmaps = ref 0 and munmaps = ref 0 and touches = ref 0 in
  let denied = ref 0 in
  (* Per-CPU streams, replayed in trace order within each CPU. *)
  let per_cpu = Array.make trace.ncpus [] in
  Array.iter
    (fun e -> per_cpu.(e.cpu) <- e.op :: per_cpu.(e.cpu))
    trace.entries;
  Array.iteri (fun i l -> per_cpu.(i) <- List.rev l) per_cpu;
  let cycles =
    Runner.run_phases ~ncpus:trace.ncpus
      ~prep:(fun cpu -> System.warm sys ~cpu)
      ()
      ~measure:(fun cpu ->
        List.iter
          (fun op ->
            match op with
            | T_mmap { id; len; writable } ->
              incr mmaps;
              let perm = if writable then Perm.rw else Perm.r in
              let addr = System.mmap_exn sys ~len ~perm () in
              Hashtbl.replace regions id (addr, len)
            | T_munmap { id } -> (
              match Hashtbl.find_opt regions id with
              | Some (addr, len) ->
                incr munmaps;
                Hashtbl.remove regions id;
                System.munmap_exn sys ~addr ~len
              | None -> ())
            | T_touch { id; page; write } -> (
              match Hashtbl.find_opt regions id with
              | Some (addr, len) when page * 4096 < len -> (
                incr touches;
                match System.touch sys ~vaddr:(addr + (page * 4096)) ~write with
                | Ok () -> ()
                | Error _ -> incr denied)
              | Some _ | None -> ())
            | T_mprotect { id; writable } -> (
              match Hashtbl.find_opt regions id with
              | Some (addr, len) when System.has_mprotect sys ->
                System.mprotect_exn sys ~addr ~len
                  ~perm:(if writable then Perm.rw else Perm.r)
              | Some _ | None -> ()))
          per_cpu.(cpu))
  in
  {
    result = Runner.result ~ops:(Array.length trace.entries) ~cycles;
    mmaps = !mmaps;
    munmaps = !munmaps;
    touches = !touches;
    faults_denied = !denied;
  }
