(* Deterministic fork-join work pool over OCaml 5 domains.

   The contract that every driver in this repository leans on: given a
   list of *independent world thunks* — tasks that construct, run and
   tear down their own simulation worlds and never share mutable state —
   [run ~jobs tasks] executes them on [min jobs (length tasks)] domains
   and returns (and emits) the results in submission order. Parallelism
   may only ever change wall-clock time, never an observable result:
   every JSON file, table, digest and report produced through this pool
   is byte-for-byte identical for any [jobs].

   How that contract is kept:
   - Results land in a per-index slot and are merged (and streamed to
     [emit]) strictly in submission order by the calling domain.
   - Task isolation is the callers' side of the bargain: all simulator
     state that used to be process-global is Domain.DLS-scoped (each
     domain sees its own), and tasks begin with
     [Mm_workloads.Runner.reset_world_state] so a task's behaviour is
     independent of what ran before it on the same domain.
   - Worker domains are fresh, so their DLS state starts from the
     initializers; [jobs = 1] runs inline on the calling domain through
     the exact same per-task code path.
   - An exception inside a task is captured with its backtrace; after
     all domains join, the exception of the *lowest-indexed* failed task
     is re-raised — the same one a sequential run would have hit first
     (remaining tasks are not started once a failure is seen).

   The pool is deliberately simple: one atomic task cursor, one mutex +
   condition for result hand-off. Tasks here are whole simulation worlds
   (milliseconds to minutes), so hand-off cost is irrelevant. *)

type 'a timed = { value : 'a; seconds : float }

type 'a slot = ('a timed, exn * Printexc.raw_backtrace) result

let available_cores () = Domain.recommended_domain_count ()

(* Typed [--jobs] validation, same result-style shape as the registry
   lookups: the [Error] is a ready-to-print message. *)
let jobs_of_string s =
  match int_of_string_opt (String.trim s) with
  | None ->
    Error
      (Printf.sprintf
         "invalid jobs count %S (expected a positive integer, e.g. -j 4)" s)
  | Some n when n <= 0 ->
    Error
      (Printf.sprintf "invalid jobs count %d (must be at least 1)" n)
  | Some n -> Ok n

let timed_call f =
  let t0 = Unix.gettimeofday () in
  let value = f () in
  { value; seconds = Unix.gettimeofday () -. t0 }

(* [order] is a permutation of [0 .. n-1]: the order in which workers
   *claim* tasks. It exists purely as a scheduling hint (start the
   heaviest tasks first so no domain is left finishing a giant task
   alone at the end); result slots, merge order and emission order are
   always submission order, so it can never change an observable
   output. *)
let check_order ~n order =
  if Array.length order <> n then
    invalid_arg
      (Printf.sprintf "Par.run_timed: order has %d entries for %d tasks"
         (Array.length order) n);
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Par.run_timed: order is not a permutation of the tasks";
      seen.(i) <- true)
    order

let run_timed ?(emit = fun (_ : 'a timed) -> ()) ?(worker_init = fun () -> ())
    ?order ~jobs tasks =
  if jobs <= 0 then invalid_arg "Par.run_timed: jobs must be positive";
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  Option.iter (check_order ~n) order;
  if n = 0 then []
  else if min jobs n = 1 then begin
    (* Inline sequential path: same per-task code, no domains. Emission
       happens as each task completes, which for one worker *is*
       submission order. *)
    let out = ref [] in
    Array.iter
      (fun task ->
        let r = timed_call task in
        emit r;
        out := r :: !out)
      tasks;
    List.rev !out
  end
  else begin
    let slots : 'a slot option array = Array.make n None in
    let claim_order =
      match order with Some o -> o | None -> Array.init n Fun.id
    in
    let next = Atomic.make 0 in
    (* Lowest *submission* index that has failed so far (max_int = none).
       Tasks the sequential run would have reached — submission index
       below every failure — always execute, even when a custom [order]
       ran a later-submitted task (and failed it) first. *)
    let failed_min = Atomic.make max_int in
    let rec note_failure i =
      let cur = Atomic.get failed_min in
      if i < cur && not (Atomic.compare_and_set failed_min cur i) then
        note_failure i
    in
    let m = Mutex.create () in
    let filled = Condition.create () in
    let post i r =
      Mutex.lock m;
      slots.(i) <- Some r;
      Condition.broadcast filled;
      Mutex.unlock m
    in
    let worker () =
      worker_init ();
      let rec loop () =
        let k = Atomic.fetch_and_add next 1 in
        if k < n then begin
          let i = claim_order.(k) in
          (if i > Atomic.get failed_min then
             (* A lower-submitted task already failed: don't start work
                the sequential run would never have reached. The slot
                must still be filled so the merge loop can pass it by. *)
             post i
               (Error
                  ( Failure "Par: task skipped after an earlier failure",
                    Printexc.get_callstack 0 ))
           else
             match timed_call tasks.(i) with
             | r -> post i (Ok r)
             | exception e ->
               let bt = Printexc.get_raw_backtrace () in
               note_failure i;
               post i (Error (e, bt)));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (min jobs n) (fun _ -> Domain.spawn worker)
    in
    (* Stream results in submission order while workers run; stop
       emitting at the first failed slot (merge re-raises after join). *)
    let emitted = ref 0 in
    let ok = ref true in
    while !ok && !emitted < n do
      Mutex.lock m;
      while slots.(!emitted) = None do
        Condition.wait filled m
      done;
      Mutex.unlock m;
      (match slots.(!emitted) with
      | Some (Ok r) ->
        emit r;
        incr emitted
      | Some (Error _) | None -> ok := false)
    done;
    Array.iter Domain.join domains;
    (* Every slot is filled once the workers have joined. Anything the
       streaming loop already emitted is simply collected; the first
       failure re-raises with the original backtrace. *)
    let out = ref [] in
    let rec finish i =
      if i = n then List.rev !out
      else
        match slots.(i) with
        | None -> assert false
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok r) ->
          if i >= !emitted then emit r;
          out := r :: !out;
          finish (i + 1)
    in
    finish 0
  end

let run ?worker_init ~jobs tasks =
  List.map
    (fun r -> r.value)
    (run_timed ?worker_init ~jobs tasks)

let map ?worker_init ~jobs f xs =
  run ?worker_init ~jobs (List.map (fun x () -> f x) xs)
