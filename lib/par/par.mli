(** Deterministic fork-join work pool over OCaml 5 domains.

    Executes a list of independent world thunks on [min jobs n] domains
    and merges results in submission order, so every observable output
    derived from them is byte-for-byte identical for any [jobs]. Tasks
    must be fully isolated simulation worlds: construct, run and drop
    everything inside the thunk (all simulator globals are
    domain-local; see [Mm_workloads.Runner.reset_world_state]). *)

type 'a timed = { value : 'a; seconds : float }
(** A task's result plus the wall-clock seconds it spent in its worker
    (host-side timing only — virtual time is unaffected). *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val jobs_of_string : string -> (int, string) result
(** Typed validation for [--jobs]/[-j] values: [Ok n] for a positive
    integer, otherwise a ready-to-print error message (same result-style
    shape as the registry lookups). *)

val run_timed :
  ?emit:('a timed -> unit) ->
  ?worker_init:(unit -> unit) ->
  ?order:int array ->
  jobs:int ->
  (unit -> 'a) list ->
  'a timed list
(** [run_timed ~jobs tasks] runs every task and returns the results with
    per-task wall-clock, in submission order. [emit] is called from the
    *calling* domain, once per task, strictly in submission order, as
    soon as each result (and all its predecessors) is available — the
    streaming form of the ordered merge. [worker_init] runs once at the
    start of each spawned worker domain (e.g. GC pacing); it does not run
    on the calling domain. [jobs = 1] (or a single task) executes inline
    on the calling domain through the same per-task path.

    [order], a permutation of [0 .. n-1], is a scheduling hint: workers
    claim tasks in that order (put the heaviest first so no domain ends
    up finishing a giant task alone). It only ever changes wall-clock
    time — result slots, merge order and emission order stay submission
    order — and is ignored on the inline [jobs = 1] path, which always
    executes in submission order.

    If a task raises, tasks submitted after the failure are skipped
    (tasks submitted before it always run, whatever [order] says) and,
    after all workers join, the exception of the lowest-submitted failed
    task is re-raised with its backtrace — the same exception a
    sequential run would have surfaced first.

    @raise Invalid_argument if [jobs <= 0] or [order] is not a
    permutation of the task indices. *)

val run :
  ?worker_init:(unit -> unit) -> jobs:int -> (unit -> 'a) list -> 'a list
(** [run_timed] without the timings. *)

val map :
  ?worker_init:(unit -> unit) -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [run ~jobs (List.map (fun x () -> f x) xs)]. *)
