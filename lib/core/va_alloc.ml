(* Virtual address allocator.

   The paper's first optimization (§4.5): "CortenMM makes the virtual
   address allocator per core, and each core owns a private share of the
   address space", avoiding contention on concurrent allocation. The
   ablation [per_core:false] uses a single shared allocator protected by a
   lock, whose cache line becomes a contention point.

   Each share is a bump allocator with per-size free lists (freed ranges
   are reused exactly, which is how real per-core VA caches behave for the
   fixed-size regions the benchmarks allocate). *)

type share = {
  mutable bump : int;
  limit : int;
  free_by_len : (int, int Queue.t) Hashtbl.t;
}

type t = {
  per_core : bool;
  shares : share array; (* one per core, or a single shared one *)
  global_lock : Mm_sim.Mutex_s.t;
  page_size : int;
}

exception Va_exhausted

let create ~ncpus ~per_core ~va_lo ~va_hi ~page_size =
  if va_hi <= va_lo then invalid_arg "Va_alloc.create: empty range";
  let nshares = if per_core then ncpus else 1 in
  let share_size =
    Mm_util.Align.down ((va_hi - va_lo) / nshares) page_size
  in
  let shares =
    Array.init nshares (fun i ->
        {
          bump = va_lo + (i * share_size);
          limit = va_lo + ((i + 1) * share_size);
          free_by_len = Hashtbl.create 8;
        })
  in
  { per_core; shares; global_lock = Mm_sim.Mutex_s.make ~name:"va_alloc.global" (); page_size }

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

(* A forked child inherits the parent's allocation state (same regions are
   considered in use). *)
let clone t =
  {
    per_core = t.per_core;
    shares =
      Array.map
        (fun s ->
          {
            bump = s.bump;
            limit = s.limit;
            free_by_len =
              Hashtbl.fold
                (fun len q acc ->
                  Hashtbl.replace acc len (Queue.copy q);
                  acc)
                s.free_by_len (Hashtbl.create 8);
          })
        t.shares;
    global_lock = Mm_sim.Mutex_s.make ~name:"va_alloc.global" ();
    page_size = t.page_size;
  }

let share_for t ~cpu = if t.per_core then t.shares.(cpu) else t.shares.(0)

let alloc_in share ~len ~align =
  (match Hashtbl.find_opt share.free_by_len len with
  | Some q when not (Queue.is_empty q) ->
    let addr = Queue.pop q in
    if Mm_util.Align.is_aligned addr align then Some addr
    else begin
      (* Rare: an unaligned cached range for an aligned request; put it
         back and fall through to the bump path. *)
      Queue.push addr q;
      None
    end
  | _ -> None)
  |> function
  | Some addr -> addr
  | None ->
    let addr = Mm_util.Align.up share.bump align in
    if addr + len > share.limit then raise Va_exhausted;
    share.bump <- addr + len;
    addr

let alloc t ~cpu ?align ~len () =
  let align = match align with Some a -> a | None -> t.page_size in
  if len <= 0 || not (Mm_util.Align.is_aligned len t.page_size) then
    invalid_arg "Va_alloc.alloc: len must be a positive page multiple";
  charge Mm_sim.Cost.cache_hit;
  if t.per_core then alloc_in (share_for t ~cpu) ~len ~align
  else begin
    (* Shared allocator: serialize on its lock. *)
    Mm_sim.Mutex_s.lock t.global_lock;
    let addr =
      try alloc_in t.shares.(0) ~len ~align
      with e ->
        Mm_sim.Mutex_s.unlock t.global_lock;
        raise e
    in
    Mm_sim.Mutex_s.unlock t.global_lock;
    addr
  end

let free t ~cpu ~addr ~len =
  charge Mm_sim.Cost.cache_hit;
  let stash share =
    let q =
      match Hashtbl.find_opt share.free_by_len len with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace share.free_by_len len q;
        q
    in
    Queue.push addr q
  in
  if t.per_core then stash (share_for t ~cpu)
  else begin
    Mm_sim.Mutex_s.lock t.global_lock;
    stash t.shares.(0);
    Mm_sim.Mutex_s.unlock t.global_lock
  end
