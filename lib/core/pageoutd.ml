(* The global page-out daemon: one reclaimer over *every* registered
   backing store, generalizing {!Swapd}'s per-address-space clock scan.

   Registered address spaces contribute anonymous pages (second-chance
   clock scan, swapped to the daemon's swap partition through the
   anonymous pager); registered files contribute page-cache pages
   (unmapped from every mapper via the shared {!Pager.Mapper_set} rmap,
   written back if modified, then dropped through the file pager).

   Pressure is simulated: watermarks are defined over the machine's
   resident data frames ({!Mm_phys.Phys.data_frames}). [balance] is the
   kswapd wakeup — when residency exceeds the high watermark it reclaims
   down to the low one; [pressure] forces a reclaim of a given size
   (the harness's knob for reclaim storms). The daemon never runs unless
   one of the two is called, so worlds that ignore it are byte-identical
   to pre-daemon worlds.

   Correctness properties (checked by [Mm_verif.Live] via the Reclaim_*
   monitor events): wired (mlock'd) pages are never taken; dirty pages
   are written back before their cache frame is dropped; every unmap
   happens inside a transaction, so the TLB shootdown commits before the
   frame can be reused. *)

type stats = {
  swap : Swapd.stats; (* the clock scan's scanned/second_chances/swapped *)
  mutable file_written_back : int;
  mutable file_dropped : int;
  mutable wakeups : int;
}

let fresh_stats () =
  {
    swap = Swapd.fresh_stats ();
    file_written_back = 0;
    file_dropped = 0;
    wakeups = 0;
  }

type t = {
  kernel : Kernel.t;
  dev : Blockdev.t;
  mutable low : int; (* reclaim down to this many data frames *)
  mutable high : int; (* [balance] wakes above this *)
  mutable spaces : Addr_space.t list; (* in registration order *)
  mutable files : File.t list;
  stats : stats;
}

let create ?(low = 0) ?(high = max_int) kernel ~dev () =
  { kernel; dev; low; high; spaces = []; files = []; stats = fresh_stats () }

let set_watermarks t ~low ~high =
  if low > high then invalid_arg "Pageoutd.set_watermarks";
  t.low <- low;
  t.high <- high

let stats t = t.stats
let dev t = t.dev

let register_space t asp =
  if not (List.exists (fun a -> a == asp) t.spaces) then
    t.spaces <- t.spaces @ [ asp ]

let unregister_space t asp =
  t.spaces <- List.filter (fun a -> not (a == asp)) t.spaces

let register_file t file =
  if not (List.exists (fun f -> f == file) t.files) then
    t.files <- t.files @ [ file ]

let emit ev = if Mm_sim.Monitor.on () then Mm_sim.Monitor.emit ev

let space_of t asp_id =
  List.find_opt (fun a -> Addr_space.id a = asp_id) t.spaces

(* -- Page-cache reclaim --

   For each cache page of [file] (in sorted index order, a deterministic
   scan): skip wired frames; unmap the page from every registered mapper
   (each unmap is its own transaction, like the clock scan's swap-outs);
   once no mapping remains, write the contents back if dropping would
   lose data, then release the frame. A page mapped by an address space
   the daemon does not know is left alone. *)
let reclaim_file_pages t file ~target =
  let ps = Kernel.page_size t.kernel in
  let phys = t.kernel.Kernel.phys in
  let fpager = File.pager file phys in
  let dropped = ref 0 in
  List.iter
    (fun page_index ->
      if !dropped < target then
        match File.lookup_page file ~page_index with
        | None -> ()
        | Some f when f.Mm_phys.Frame.wired -> ()
        | Some f ->
          let offset = page_index * ps in
          let covering =
            List.filter
              (fun m ->
                offset >= m.Pager.file_offset
                && offset < m.Pager.file_offset + m.Pager.len)
              (File.mappers file)
          in
          let all_known =
            List.for_all
              (fun m -> space_of t m.Pager.asp_id <> None)
              covering
          in
          if all_known then begin
            List.iter
              (fun m ->
                match space_of t m.Pager.asp_id with
                | Some asp ->
                  ignore
                    (Mm.unmap_file_page asp
                       ~vaddr:
                         (m.Pager.map_vaddr
                         + (offset - m.Pager.file_offset)))
                | None -> ())
              covering;
            if f.Mm_phys.Frame.map_count = 0 then begin
              if File.needs_writeback file ~page_index then begin
                ignore
                  (fpager.Pager.put_pages
                     [ (page_index, f.Mm_phys.Frame.contents) ]);
                t.stats.file_written_back <- t.stats.file_written_back + 1
              end;
              emit (Mm_sim.Monitor.Reclaim_page { pfn = f.Mm_phys.Frame.pfn });
              File.drop_page file phys ~page_index;
              incr dropped;
              t.stats.file_dropped <- t.stats.file_dropped + 1
            end
          end)
    (File.cached_page_indexes file);
  !dropped

(* One full pass: page cache first (cheap, Linux-style preference), then
   the anonymous clock scan per registered space. *)
let run_once t ~target =
  let got = ref 0 in
  List.iter
    (fun file ->
      if !got < target then
        got := !got + reclaim_file_pages t file ~target:(target - !got))
    t.files;
  List.iter
    (fun asp ->
      if !got < target then
        got :=
          !got
          + Swapd.run_once ~stats:t.stats.swap asp ~dev:t.dev
              ~target:(target - !got))
    t.spaces;
  !got

let note_wakeup () =
  if Mm_obs.Trace.on () then
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "pageoutd.wakeups")

(* Forced reclaim of [target_pages] pages (or until two full passes make
   no progress — everything left is hot, wired, or unknown). *)
let pressure t ~target_pages =
  if target_pages <= 0 then 0
  else begin
    t.stats.wakeups <- t.stats.wakeups + 1;
    note_wakeup ();
    emit
      (Mm_sim.Monitor.Reclaim_waken
         {
           free = Mm_phys.Phys.data_frames t.kernel.Kernel.phys;
           target = target_pages;
         });
    let rec go total dry =
      if total >= target_pages || dry >= 2 then total
      else
        let got = run_once t ~target:(target_pages - total) in
        go (total + got) (if got = 0 then dry + 1 else 0)
    in
    go 0 0
  end

(* The kswapd wakeup: reclaim down to the low watermark when residency
   exceeds the high one. *)
let balance t =
  let resident = Mm_phys.Phys.data_frames t.kernel.Kernel.phys in
  if resident > t.high then pressure t ~target_pages:(resident - t.low)
  else 0
