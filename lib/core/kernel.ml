(* Shared kernel context for CortenMM: physical memory, the global RCU
   domain, and the reverse-map table for anonymous pages.

   The reverse mapping (paper §4.5) is "recorded in the page descriptor,
   which points to either the file object (for named pages) or the
   AddrSpace (for anonymous pages)". File pages reach their mappers through
   {!File.mappers}; anonymous pages are tracked here, per pfn, in the
   same shared {!Pager.Mapper_set} container the file mapper tree uses —
   one rmap API for both backing kinds. Reverse mappings are hints: users
   must re-validate through the transactional interface. *)

type t = {
  phys : Mm_phys.Phys.t;
  isa : Mm_hal.Isa.t;
  ncpus : int;
  rcu : Mm_sim.Rcu_s.t;
  anon_rmap : (int, Pager.Mapper_set.t) Hashtbl.t; (* pfn -> mappers *)
  mutable next_asp_id : int;
  mutable wired_pages : int; (* frames pinned by mlock *)
  mutable wired_limit : int; (* RLIMIT_MEMLOCK, in pages *)
  pkru_access_deny : int array; (* per cpu: bitmask of keys denied access *)
  pkru_write_deny : int array; (* per cpu: bitmask of keys denied writes *)
}

let create ?(isa = Mm_hal.Isa.x86_64) ?(numa_nodes = 1) ~ncpus () =
  {
    phys = Mm_phys.Phys.create ~numa_nodes ();
    isa;
    ncpus;
    rcu = Mm_sim.Rcu_s.make ~ncpus;
    anon_rmap = Hashtbl.create 256;
    next_asp_id = 0;
    wired_pages = 0;
    wired_limit = max_int;
    pkru_access_deny = Array.make ncpus 0;
    pkru_write_deny = Array.make ncpus 0;
  }

let fresh_asp_id t =
  t.next_asp_id <- t.next_asp_id + 1;
  t.next_asp_id

let set_wired_limit t ~pages = t.wired_limit <- pages
let wired_pages t = t.wired_pages

let page_size t = Mm_hal.Geometry.page_size t.isa.Mm_hal.Isa.geo

let rmap_add t ~pfn ~asp_id ~vaddr =
  let m =
    { Pager.asp_id; map_vaddr = vaddr; file_offset = 0; len = page_size t }
  in
  match Hashtbl.find_opt t.anon_rmap pfn with
  | Some s -> Pager.Mapper_set.add s m
  | None ->
    let s = Pager.Mapper_set.create () in
    Pager.Mapper_set.add s m;
    Hashtbl.replace t.anon_rmap pfn s

let rmap_remove t ~pfn ~asp_id ~vaddr =
  match Hashtbl.find_opt t.anon_rmap pfn with
  | None -> ()
  | Some s ->
    Pager.Mapper_set.remove s ~asp_id ~map_vaddr:vaddr;
    if Pager.Mapper_set.is_empty s then Hashtbl.remove t.anon_rmap pfn

let rmap_of t ~pfn =
  match Hashtbl.find_opt t.anon_rmap pfn with
  | Some s ->
    List.map
      (fun m -> (m.Pager.asp_id, m.Pager.map_vaddr))
      (Pager.Mapper_set.to_list s)
  | None -> []

let rmap_set t ~pfn = Hashtbl.find_opt t.anon_rmap pfn

let numa_nodes t = Mm_phys.Phys.numa_nodes t.phys

(* CPUs are striped across nodes in contiguous blocks, as on real
   two-socket machines. *)
let node_of_cpu t ~cpu = cpu * numa_nodes t / t.ncpus

(* -- Intel MPK: the per-CPU PKRU register (x86-64 only) -- *)

let supports_mpk t = Mm_hal.Isa.supports_mpk t.isa

(* wrpkru: set a key's access/write denial on the calling CPU. User-level
   and unprivileged, hence cheap (no syscall). *)
let wrpkru t ~cpu ~key ~deny_access ~deny_write =
  if not (supports_mpk t) then invalid_arg "wrpkru: ISA without MPK";
  if key < 1 || key > 15 then invalid_arg "wrpkru: key";
  if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick Mm_sim.Cost.cache_hit;
  let bit = 1 lsl key in
  let set m v = if v then m lor bit else m land lnot bit in
  t.pkru_access_deny.(cpu) <- set t.pkru_access_deny.(cpu) deny_access;
  t.pkru_write_deny.(cpu) <- set t.pkru_write_deny.(cpu) deny_write

let pkru_denies t ~cpu ~key ~write =
  let bit = 1 lsl key in
  t.pkru_access_deny.(cpu) land bit <> 0
  || (write && t.pkru_write_deny.(cpu) land bit <> 0)
