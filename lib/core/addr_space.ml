(* The transactional interface to program the MMU — the paper's central
   contribution (Fig 4), with both locking protocols:

   - [lock asp ~lo ~hi] runs the locking protocol (CortenMM_rw, Fig 5, or
     CortenMM_adv, Fig 6) and returns a cursor;
   - the cursor supports [query], [map], [mark], [protect] and [unmap],
     all applied atomically within the locked range;
   - [commit] (the Drop impl) performs the batched TLB shootdown and
     releases the locks in reverse acquisition order.

   Metadata: each PT page owns an on-demand per-PTE metadata array storing
   the state that cannot live in the MMU (Fig 3). An upper-level slot whose
   PTE is absent can carry a mark covering its whole range; creating a
   child under such a slot pushes the mark down. *)

open Mm_hal
module Pt = Mm_pt.Pt

type meta = {
  slots : Status.meta_entry array;
  mutable live : int;
  slab_handle : int; (* where this array lives in the metadata slab *)
}
type node = meta Pt.node

type t = {
  id : int;
  kernel : Kernel.t;
  cfg : Config.t;
  pt : meta Pt.t;
  tlb : Mm_tlb.Tlb.t;
  va : Va_alloc.t;
  cpu_mask : bool array; (* CPUs that have used this address space *)
  meta_cache : Mm_phys.Slab.t; (* slab backing the per-PTE metadata arrays *)
  mutable meta_arrays : int;
  mutable meta_bytes : int;
  mutable stale_retries : int; (* CortenMM_adv retry-loop executions *)
  mutable obj : Vm_object.t;
      (* top of this space's anonymous backing chain (COW fork shadows) *)
}

exception Bad_range of string

(* A broken *kernel* invariant — the page table or its metadata arrays
   contradict themselves (dangling table entry, resident metadata under
   an absent PTE, ...). Distinct from [Bad_range]/[Invalid_argument]
   (caller contract) and from the typed [Errno.t] results (user-visible
   outcomes): an [Invariant] means the simulated kernel itself is wrong,
   so it carries the operation and the violated fact for the report. *)
exception Invariant of { ctx : string; what : string }

let () =
  Printexc.register_printer (function
    | Invariant { ctx; what } ->
      Some (Printf.sprintf "Addr_space.Invariant(%s: %s)" ctx what)
    | _ -> None)

let invariant ~ctx what = raise (Invariant { ctx; what })

(* Fault-injection mutant for the differential oracle: when armed,
   [clone_for_fork] "forgets" to write-protect the *parent's* private
   leaves (the child still gets its read-only COW copies), so post-fork
   parent writes land in the still-shared frames and the child observes
   them. Domain-local like the lock-model mutants; cleared by
   [Mm_workloads.Runner.reset_world_state]. *)
let mutant_fork_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let set_mutant_fork_skip_parent_wp v = Domain.DLS.get mutant_fork_key := v
let mutant_fork_skip_parent_wp () = !(Domain.DLS.get mutant_fork_key)

(* User virtual address layout: skip the first 256 MiB (NULL guard, kernel
   image analog), use the rest of the canonical range. *)
let va_lo = 0x1000_0000

let create ?va kernel (cfg : Config.t) =
  let geo = kernel.Kernel.isa.Isa.geo in
  let page_size = Geometry.page_size geo in
  let t =
    {
    id = Kernel.fresh_asp_id kernel;
    kernel;
    cfg;
    pt = Pt.create kernel.Kernel.phys kernel.Kernel.isa;
    tlb =
      Mm_tlb.Tlb.create ~ncpus:kernel.Kernel.ncpus
        ~strategy:cfg.Config.tlb_strategy ();
    va =
      (match va with
      | Some v -> v
      | None ->
        Va_alloc.create ~ncpus:kernel.Kernel.ncpus
          ~per_core:cfg.Config.per_core_va ~va_lo
          ~va_hi:(Geometry.va_limit geo) ~page_size);
    cpu_mask = Array.make kernel.Kernel.ncpus false;
    meta_cache =
      Mm_phys.Slab.create kernel.Kernel.phys ~name:"pte_metadata"
        ~obj_size:
          (Geometry.entries geo * Status.meta_entry_bytes);
    meta_arrays = 0;
    meta_bytes = 0;
    stale_retries = 0;
    obj = Vm_object.create_anon ();
    }
  in
  (* Name the root PT page's locks: the root is the protocol's global
     serialization point, so it dominates contention reports. *)
  let root_frame = (Pt.root t.pt).Pt.frame in
  Mm_sim.Mutex_s.set_name root_frame.Mm_phys.Frame.lock
    (Printf.sprintf "asp%d.root_pt" t.id);
  Mm_sim.Rwlock_s.set_name root_frame.Mm_phys.Frame.rwlock
    (Printf.sprintf "asp%d.root_pt" t.id);
  t

let id t = t.id
let kernel t = t.kernel
let config t = t.cfg
let pt t = t.pt
let tlb t = t.tlb
let va_allocator t = t.va
let page_size t = Kernel.page_size t.kernel
let stale_retries t = t.stale_retries
let vm_object t = t.obj

(* exec support: once every mapping is gone, the space drops its whole
   shadow chain and starts over on a fresh anonymous object (the caller
   unrefs the old top). *)
let reset_vm_object t = t.obj <- Vm_object.create_anon ()

let note_cpu t =
  if Mm_sim.Engine.in_fiber () then
    t.cpu_mask.(Mm_sim.Engine.cpu_id ()) <- true

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

(* -- Metadata arrays -- *)

let entries_per_node t = Pt.entries_per_node t.pt

let meta_of t (node : node) =
  match node.Pt.meta with
  | Some m -> m
  | None ->
    charge Mm_sim.Cost.meta_array_alloc;
    let n = entries_per_node t in
    let m =
      {
        slots = Array.make n Status.M_invalid;
        live = 0;
        slab_handle = Mm_phys.Slab.alloc t.meta_cache;
      }
    in
    node.Pt.meta <- Some m;
    t.meta_arrays <- t.meta_arrays + 1;
    t.meta_bytes <- t.meta_bytes + (n * Status.meta_entry_bytes);
    m

let meta_get (node : node) idx =
  match node.Pt.meta with
  | None -> Status.M_invalid
  | Some m -> m.slots.(idx)

let meta_set t (node : node) idx v =
  let m = meta_of t node in
  charge Mm_sim.Cost.meta_write;
  let old = m.slots.(idx) in
  m.slots.(idx) <- v;
  (match (old, v) with
  | Status.M_invalid, Status.M_invalid -> ()
  | Status.M_invalid, _ -> m.live <- m.live + 1
  | _, Status.M_invalid -> m.live <- m.live - 1
  | _, _ -> ())

let meta_live (node : node) =
  match node.Pt.meta with None -> 0 | Some m -> m.live

let release_meta t (node : node) =
  match node.Pt.meta with
  | None -> ()
  | Some m ->
    let n = entries_per_node t in
    node.Pt.meta <- None;
    t.meta_arrays <- t.meta_arrays - 1;
    t.meta_bytes <- t.meta_bytes - (n * Status.meta_entry_bytes);
    Mm_phys.Slab.free t.meta_cache m.slab_handle

(* -- Cursor -- *)

(* A memoized [node_for] walk: the target node plus the nodes whose
   entries the descent read (covering page first). Replaying the walk's
   charges along [wc_path] keeps simulated time and cache-line state
   identical to a real descent; only the PTE decodes and node-table
   probes are skipped. *)
type walk_cache = {
  wc_node : node;
  wc_path : node list;
  wc_level : int;
}

type cursor = {
  asp : t;
  lo : int;
  hi : int;
  covering : node;
  read_path : node list; (* rw: read-locked ancestors, root first *)
  mutable locked : node list; (* locked nodes, most recent first *)
  mutable tlb_pending : (int * int) list; (* (first vpn, page count) *)
  mutable tlb_targets : int; (* CPUs that may cache the flushed entries *)
  mutable deferred_frames : Mm_phys.Frame.t list;
      (* Frames whose free must wait for the commit's shootdown to
         actually flush (only populated under a batched TLB policy). *)
  mutable committed : bool;
  (* Two walk-cache slots, most recent first: [move_range] alternates
     between source and destination pages, which would thrash one. *)
  mutable wc_a : walk_cache option;
  mutable wc_b : walk_cache option;
}

let cursor_range c = (c.lo, c.hi)
let cursor_covering_level c = c.covering.Pt.level

(* The unique child slot of [node] that entirely covers [lo, hi), if the
   node is not a leaf-level page. *)
let covering_slot t (node : node) ~lo ~hi =
  if node.Pt.level <= 1 then None
  else
    let idx = Pt.index t.pt ~level:node.Pt.level ~vaddr:lo in
    if Pt.entry_covers t.pt node idx ~lo ~hi then Some idx else None

(* -- CortenMM_rw locking protocol (Fig 5) -- *)

let rw_lock t ~lo ~hi =
  let rec descend (cur : node) path =
    match covering_slot t cur ~lo ~hi with
    | Some idx -> (
      Mm_sim.Rwlock_s.read_lock cur.Pt.frame.Mm_phys.Frame.rwlock;
      match
        match Pt.get t.pt cur idx with
        | Pte.Table { pfn } -> Pt.node_of_pfn t.pt pfn
        | Pte.Absent | Pte.Leaf _ -> None
      with
      | Some child -> descend child (cur :: path)
      | None ->
        (* [cur] is the lowest existing covering page: trade the reader
           lock for the writer lock (Fig 5 L7-8). *)
        Mm_sim.Rwlock_s.read_unlock cur.Pt.frame.Mm_phys.Frame.rwlock;
        Mm_sim.Rwlock_s.write_lock cur.Pt.frame.Mm_phys.Frame.rwlock;
        (cur, List.rev path))
    | None ->
      Mm_sim.Rwlock_s.write_lock cur.Pt.frame.Mm_phys.Frame.rwlock;
      (cur, List.rev path)
  in
  let covering, read_path = descend (Pt.root t.pt) [] in
  {
    asp = t;
    lo;
    hi;
    covering;
    read_path;
    locked = [ covering ];
    tlb_pending = [];
    tlb_targets = 0;
    deferred_frames = [];
    committed = false;
    wc_a = None;
    wc_b = None;
  }

(* -- CortenMM_adv locking protocol (Fig 6) -- *)

let adv_lock t ~lo ~hi =
  let rcu = t.kernel.Kernel.rcu in
  let rec retry () =
    Mm_sim.Rcu_s.read_lock rcu;
    (* Traversal phase: lock-free descent to the covering PT page. *)
    let rec descend (cur : node) =
      match covering_slot t cur ~lo ~hi with
      | Some idx -> (
        match
          match Pt.get_atomic t.pt cur idx with
          | Pte.Table { pfn } -> Pt.node_of_pfn t.pt pfn
          | Pte.Absent | Pte.Leaf _ -> None
        with
        | Some child -> descend child
        | None -> cur)
      | None -> cur
    in
    let cover = descend (Pt.root t.pt) in
    Mm_sim.Mutex_s.lock cover.Pt.frame.Mm_phys.Frame.lock;
    if cover.Pt.frame.Mm_phys.Frame.stale then begin
      (* Race with a concurrent unmap that removed this PT page: retry
         (Fig 6 L10-13). *)
      Mm_sim.Mutex_s.unlock cover.Pt.frame.Mm_phys.Frame.lock;
      Mm_sim.Rcu_s.read_unlock rcu;
      t.stale_retries <- t.stale_retries + 1;
      if Mm_obs.Trace.on () then begin
        Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "addr_space.stale_retries");
        Mm_sim.Engine.obs Mm_obs.Event.Stale_retry
      end;
      retry ()
    end
    else begin
      Mm_sim.Rcu_s.read_unlock rcu;
      (* Locking phase: preorder DFS over all descendants (Fig 6 L17).
         Finding the children is a streaming scan of each PT page. *)
      let locked = ref [ cover ] in
      let rec dfs (node : node) =
        if node.Pt.level > 1 then begin
          Pt.charge_node_scan t.pt;
          for idx = 0 to entries_per_node t - 1 do
            match Pt.get_uncharged t.pt node idx with
            | Pte.Table { pfn } -> (
              match Pt.node_of_pfn t.pt pfn with
              | Some child ->
                Mm_sim.Mutex_s.lock child.Pt.frame.Mm_phys.Frame.lock;
                locked := child :: !locked;
                dfs child
              | None -> invariant ~ctx:"adv_lock" "dangling table entry")
            | Pte.Absent | Pte.Leaf _ -> ()
          done
        end
      in
      dfs cover;
      {
        asp = t;
        lo;
        hi;
        covering = cover;
        read_path = [];
        locked = !locked;
        tlb_pending = [];
        tlb_targets = 0;
        deferred_frames = [];
        committed = false;
        wc_a = None;
        wc_b = None;
      }
    end
  in
  retry ()

let check_range t ~lo ~hi =
  let ps = page_size t in
  if hi <= lo then raise (Bad_range "empty range");
  if not (Mm_util.Align.is_aligned lo ps && Mm_util.Align.is_aligned hi ps)
  then raise (Bad_range "range not page aligned");
  if lo < 0 || hi > Geometry.va_limit t.kernel.Kernel.isa.Isa.geo then
    raise (Bad_range "range outside the virtual address space")

let lock t ~lo ~hi =
  check_range t ~lo ~hi;
  note_cpu t;
  let tracing = Mm_obs.Trace.on () && Mm_sim.Engine.in_fiber () in
  let t0 = if tracing then Mm_sim.Engine.now () else 0 in
  let c =
    match t.cfg.Config.protocol with
    | Config.Rw -> rw_lock t ~lo ~hi
    | Config.Adv -> adv_lock t ~lo ~hi
  in
  if tracing then begin
    let span = Mm_sim.Engine.now () - t0 in
    Mm_obs.Metrics.observe
      (Mm_obs.Metrics.histogram "cursor.lock_cycles")
      span;
    Mm_sim.Engine.obs
      (Mm_obs.Event.Cursor_lock
         { lo; hi; locked = List.length c.locked; span })
  end;
  if Mm_sim.Monitor.on () && Mm_sim.Engine.in_fiber () then
    Mm_sim.Monitor.emit
      (Mm_sim.Monitor.Txn_locked
         { asp = t.id; cpu = Mm_sim.Engine.cpu_id (); lo; hi });
  c

(* -- Commit (RCursor Drop, Fig 4 L23) -- *)

let full_flush_threshold = 64

let commit c =
  if c.committed then invalid_arg "Addr_space.commit: cursor already dropped";
  c.committed <- true;
  let t = c.asp in
  (* Announced before the unlocks: releasing a contended lock yields to
     the scheduler ([serialize] inside the lock model), so a fiber
     waiting on this range can acquire it — and emit its Txn_locked —
     while we are still mid-release. The transaction performs no cursor
     operations after this point, so ending its monitored lifetime here
     keeps the overlap check sound without false positives on legal
     handoffs. *)
  if Mm_sim.Monitor.on () && Mm_sim.Engine.in_fiber () then
    Mm_sim.Monitor.emit
      (Mm_sim.Monitor.Txn_committed
         { asp = t.id; cpu = Mm_sim.Engine.cpu_id (); lo = c.lo; hi = c.hi });
  (* Frames unmapped under a deferring TLB policy are released only once
     the shootdown that invalidates their translations has actually
     flushed — [Tlb.shootdown]'s [on_flush] hook (async unmap). The
     cursor's list is captured here so the callback owns the frames
     regardless of when the batch completes. *)
  let deferred = List.rev c.deferred_frames in
  c.deferred_frames <- [];
  let free_deferred () =
    List.iter
      (fun (frame : Mm_phys.Frame.t) ->
        charge Mm_sim.Cost.page_free;
        if Mm_sim.Monitor.on () then
          Mm_sim.Monitor.emit
            (Mm_sim.Monitor.Frame_freed
               {
                 pfn = frame.Mm_phys.Frame.pfn;
                 pages = 1 lsl frame.Mm_phys.Frame.order;
               });
        Mm_phys.Phys.free t.kernel.Kernel.phys frame)
      deferred
  in
  (* Batched TLB shootdown for everything this transaction invalidated. *)
  (match c.tlb_pending with
  | [] -> if deferred <> [] then free_deferred ()
  | pending when Mm_sim.Engine.in_fiber () ->
    let total = List.fold_left (fun a (_, n) -> a + n) 0 pending in
    let vpns =
      if total > full_flush_threshold then
        (* Beyond the threshold a real kernel flushes the whole TLB; we
           enumerate a bounded set for the table model and charge the
           full-flush cost through the list length cap. *)
        List.concat_map
          (fun (v0, n) -> List.init (min n full_flush_threshold) (fun i -> v0 + i))
          pending
      else List.concat_map (fun (v0, n) -> List.init n (fun i -> v0 + i)) pending
    in
    (* Shoot down only the CPUs recorded as having installed translations
       under the affected PT pages ("CPUs that may require the TLB
       shootdown", paper §4.5), not the whole address-space mask. *)
    let targets =
      Array.init (Array.length t.cpu_mask) (fun i ->
          c.tlb_targets land (1 lsl i) <> 0)
    in
    let on_flush = if deferred = [] then None else Some free_deferred in
    Mm_tlb.Tlb.shootdown ?on_flush t.tlb ~targets ~vpns
  | _ ->
    (* Outside a fiber no shootdown is modelled, so nothing holds the
       frames back (host-side unit-test path). *)
    if deferred <> [] then free_deferred ());
  (* Release locks in reverse acquisition order. *)
  (match t.cfg.Config.protocol with
  | Config.Adv ->
    List.iter
      (fun (n : node) -> Mm_sim.Mutex_s.unlock n.Pt.frame.Mm_phys.Frame.lock)
      c.locked
  | Config.Rw ->
    List.iter
      (fun (n : node) ->
        Mm_sim.Rwlock_s.write_unlock n.Pt.frame.Mm_phys.Frame.rwlock)
      c.locked;
    List.iter
      (fun (n : node) ->
        Mm_sim.Rwlock_s.read_unlock n.Pt.frame.Mm_phys.Frame.rwlock)
      (List.rev c.read_path));
  if Mm_obs.Trace.on () then
    Mm_sim.Engine.obs
      (Mm_obs.Event.Cursor_commit
         {
           lo = c.lo;
           hi = c.hi;
           flushed = List.fold_left (fun a (_, n) -> a + n) 0 c.tlb_pending;
         })

let with_lock t ~lo ~hi f =
  let c = lock t ~lo ~hi in
  match f c with
  | v ->
    commit c;
    v
  | exception e ->
    commit c;
    raise e

(* -- Internal navigation helpers (operate under the cursor's locks) -- *)

let in_range c ~lo ~hi =
  if lo < c.lo || hi > c.hi then
    raise
      (Bad_range
         (Printf.sprintf "[%#x,%#x) outside cursor range [%#x,%#x)" lo hi c.lo
            c.hi))

(* Advance a file/shm origin by a byte offset (anonymous origins are
   position-independent). *)
let origin_advance origin ~by =
  match origin with
  | Status.O_anon -> Status.O_anon
  | Status.O_file (f, off) -> Status.O_file (f, off + by)
  | Status.O_shm (f, off) -> Status.O_shm (f, off + by)

(* Push a parent-level mark down into a freshly created child: each child
   slot receives the mark with its file offset advanced to its position. *)
let push_down_mark t (parent : node) idx (child : node) =
  match meta_get parent idx with
  | Status.M_invalid -> ()
  | Status.M_alloc { origin; perm; policy } ->
    (* Bulk fill: one streaming pass over the child's array, not 512
       individually-charged stores. *)
    let child_cov = Pt.entry_coverage t.pt child in
    let m = meta_of t child in
    charge Mm_sim.Cost.meta_bulk_fill;
    let n = entries_per_node t in
    for i = 0 to n - 1 do
      let old = m.slots.(i) in
      m.slots.(i) <-
        Status.M_alloc
          { origin = origin_advance origin ~by:(i * child_cov); perm; policy };
      if old = Status.M_invalid then m.live <- m.live + 1
    done;
    meta_set t parent idx Status.M_invalid
  | Status.M_resident _ | Status.M_swapped _ ->
    invariant ~ctx:"push_down_mark" "non-mark metadata on a table slot"

(* Create (or fetch) the child under [idx], locking it when the protocol
   requires (new PT pages are born locked so a concurrent lock-free
   traversal cannot slip under our transaction). *)
let ensure_child c (parent : node) idx =
  let t = c.asp in
  match Pt.child t.pt parent idx with
  | Some child -> child
  | None ->
    let child = Pt.ensure_child t.pt parent idx in
    (match t.cfg.Config.protocol with
    | Config.Adv ->
      Mm_sim.Mutex_s.lock child.Pt.frame.Mm_phys.Frame.lock;
      c.locked <- child :: c.locked
    | Config.Rw ->
      (* Reachable only through the write-locked covering page. *)
      ());
    push_down_mark t parent idx child;
    child

let rec walk_to c (cur : node) vaddr ~to_level rev_path =
  if cur.Pt.level = to_level then (cur, rev_path)
  else
    let idx = Pt.index c.asp.pt ~level:cur.Pt.level ~vaddr in
    walk_to c (ensure_child c cur idx) vaddr ~to_level (cur :: rev_path)

let wc_covers c (e : walk_cache) vaddr ~to_level =
  e.wc_level = to_level
  &&
  let pt = c.asp.pt in
  let base = Pt.node_base pt e.wc_node in
  vaddr >= base && vaddr < base + Pt.node_coverage pt e.wc_node

(* Replay the memoized descent's charges in walk order, so the virtual
   clock and line states advance exactly as the skipped walk would. *)
let wc_replay c (e : walk_cache) =
  List.iter (fun n -> Pt.charge_walk_step c.asp.pt n) e.wc_path;
  e.wc_node

let node_for c (cur : node) vaddr ~to_level =
  if not (cur == c.covering) then fst (walk_to c cur vaddr ~to_level [])
  else
    match (c.wc_a, c.wc_b) with
    | Some e, _ when wc_covers c e vaddr ~to_level -> wc_replay c e
    | _, Some e when wc_covers c e vaddr ~to_level ->
      c.wc_b <- c.wc_a;
      c.wc_a <- Some e;
      wc_replay c e
    | _ ->
      let node, rev_path = walk_to c cur vaddr ~to_level [] in
      c.wc_b <- c.wc_a;
      c.wc_a <-
        Some { wc_node = node; wc_path = List.rev rev_path; wc_level = to_level };
      node

(* -- Freeing empty PT pages -- *)

let subtree_nodes t (node : node) =
  let acc = ref [] in
  Pt.iter_subtree t.pt node (fun n -> acc := n :: !acc);
  !acc (* children before parents: reverse preorder *)

(* Remove the child under [parent].[idx]; the subtree must already be
   empty of mappings and marks. *)
let free_child c (parent : node) idx (child : node) =
  let t = c.asp in
  (* The freed subtree may be memoized: drop both walk-cache slots. *)
  c.wc_a <- None;
  c.wc_b <- None;
  let detached = Pt.detach_child t.pt parent idx in
  assert (detached == child);
  let nodes = subtree_nodes t child in
  if Mm_obs.Trace.on () then begin
    Mm_obs.Metrics.add
      (Mm_obs.Metrics.counter "addr_space.pt_pages_freed")
      (List.length nodes);
    Mm_sim.Engine.obs
      (Mm_obs.Event.Pt_free
         { level = child.Pt.level; pages = List.length nodes })
  end;
  (match t.cfg.Config.protocol with
  | Config.Adv ->
    (* Fig 6 L29-35: mark stale and unlock bottom-up, then hand the pages
       to the RCU monitor. *)
    List.iter
      (fun (n : node) ->
        n.Pt.frame.Mm_phys.Frame.stale <- true;
        Mm_sim.Mutex_s.unlock n.Pt.frame.Mm_phys.Frame.lock;
        c.locked <- List.filter (fun x -> not (x == n)) c.locked)
      nodes;
    Mm_sim.Rcu_s.defer t.kernel.Kernel.rcu (fun () ->
        List.iter
          (fun (n : node) ->
            release_meta t n;
            n.Pt.parent <- None;
            Pt.free_node t.pt n)
          nodes)
  | Config.Rw ->
    (* The write-locked covering page makes the subtree exclusively ours:
       free directly. *)
    List.iter
      (fun (n : node) ->
        release_meta t n;
        n.Pt.parent <- None;
        Pt.free_node t.pt n)
      nodes)

let node_is_empty (node : node) = node.Pt.present = 0 && meta_live node = 0

(* -- Leaf plumbing -- *)

let origin_of_status = function
  | Status.Private_anon _ -> Status.O_anon
  | Status.Private_file { file; offset; _ } -> Status.O_file (file, offset)
  | Status.Shared_anon { shm; offset; _ } -> Status.O_shm (shm, offset)
  | Status.Invalid | Status.Mapped _ | Status.Swapped _ ->
    invalid_arg "origin_of_status: not a virtually-allocated status"

let status_of_mark ~origin ~perm =
  match origin with
  | Status.O_anon -> Status.Private_anon perm
  | Status.O_file (file, offset) -> Status.Private_file { file; offset; perm }
  | Status.O_shm (shm, offset) -> Status.Shared_anon { shm; offset; perm }

let vpn_of t vaddr = vaddr / page_size t

(* Rewrite a live leaf in place, honouring ARM's break-before-make: the
   entry is first invalidated and the TLB entry flushed before the new
   translation is written (paper §4.5). *)
let rewrite_live_leaf t (node : node) idx pte =
  if Isa.needs_break_before_make t.kernel.Kernel.isa then begin
    Pt.set t.pt node idx Pte.Absent;
    charge Mm_sim.Cost.tlb_flush_page
  end;
  Pt.set t.pt node idx pte

let note_tlb c ~vaddr ~pages =
  c.tlb_pending <- (vpn_of c.asp vaddr, pages) :: c.tlb_pending

(* Release (or defer) one fully-unmapped anonymous frame. Under an
   [Immediate] TLB policy the free happens right here, as it always has;
   under a deferring policy the frame joins the cursor's deferred list
   and is released by the commit shootdown's [on_flush] — after the
   remote translations are gone, so no CPU can reach a reused frame
   through a stale TLB entry. *)
let free_or_defer c (frame : Mm_phys.Frame.t) =
  let t = c.asp in
  if Mm_tlb.Tlb.deferring t.tlb then begin
    c.deferred_frames <- frame :: c.deferred_frames;
    if Mm_sim.Monitor.on () then
      Mm_sim.Monitor.emit
        (Mm_sim.Monitor.Frame_deferred
           {
             pfn = frame.Mm_phys.Frame.pfn;
             pages = 1 lsl frame.Mm_phys.Frame.order;
           })
  end
  else begin
    charge Mm_sim.Cost.page_free;
    Mm_phys.Phys.free t.kernel.Kernel.phys frame
  end

(* Drop one present leaf: clear the PTE and release the physical page(s).
   [idx] addresses the slot in [node]; the leaf may be huge. *)
let unmap_leaf c (node : node) idx (pfn, (perm : Perm.t)) =
  let t = c.asp in
  let geo = t.kernel.Kernel.isa.Isa.geo in
  let pages = Geometry.pages_per_entry geo ~level:node.Pt.level in
  let vaddr = Pt.node_base t.pt node + (idx * Pt.entry_coverage t.pt node) in
  ignore perm;
  let origin = meta_get node idx in
  Pt.set t.pt node idx Pte.Absent;
  meta_set t node idx Status.M_invalid;
  note_tlb c ~vaddr ~pages;
  c.tlb_targets <- c.tlb_targets lor node.Pt.touched;
  let frame = Mm_phys.Phys.frame t.kernel.Kernel.phys pfn in
  if Mm_sim.Engine.in_fiber () then
    Mm_sim.Engine.Line.rmw frame.Mm_phys.Frame.line;
  frame.Mm_phys.Frame.map_count <- frame.Mm_phys.Frame.map_count - 1;
  (match origin with
  | Status.M_resident Status.O_anon ->
    Kernel.rmap_remove t.kernel ~pfn ~asp_id:t.id ~vaddr;
    if
      frame.Mm_phys.Frame.map_count = 0
      && frame.Mm_phys.Frame.kind = Mm_phys.Frame.Anon
    then begin
      (* Last mapping gone: retire the ownership record too, wherever it
         sits in this space's shadow chain. *)
      Vm_object.forget t.obj ~vpn:(vpn_of t vaddr);
      free_or_defer c frame
    end
  | Status.M_resident (Status.O_file (file, _))
  | Status.M_resident (Status.O_shm (file, _)) ->
    (* Page-cache pages stay resident in the file object. *)
    File.remove_mapper file ~asp_id:t.id ~map_vaddr:vaddr
  | Status.M_invalid ->
    (* A raw map without recorded origin (test scaffolding). *)
    if
      frame.Mm_phys.Frame.map_count = 0
      && frame.Mm_phys.Frame.kind = Mm_phys.Frame.Anon
    then free_or_defer c frame
  | Status.M_alloc _ | Status.M_swapped _ ->
    invariant ~ctx:"unmap_leaf" "inconsistent metadata under a present PTE")

(* Split a huge leaf at [node].[idx] into a child PT page of 4 KiB (or
   2 MiB) leaves so a partial-range operation can proceed. The physical
   block is contiguous, so child leaves address consecutive sub-blocks. *)
let split_huge c (node : node) idx (l : Pte.t) =
  let t = c.asp in
  match l with
  | Pte.Leaf { pfn; perm; accessed; dirty; global } ->
    if Mm_obs.Trace.on () then begin
      Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "addr_space.pt_splits");
      Mm_sim.Engine.obs
        (Mm_obs.Event.Pt_split
           { vaddr = Pt.node_base t.pt node; level = node.Pt.level })
    end;
    let origin = meta_get node idx in
    let n = entries_per_node t in
    let geo = t.kernel.Kernel.isa.Isa.geo in
    let sub_pages = Geometry.pages_per_entry geo ~level:(node.Pt.level - 1) in
    (* Detach the leaf first, then build the child and link it. *)
    Pt.set t.pt node idx Pte.Absent;
    meta_set t node idx Status.M_invalid;
    let child = Pt.alloc_node t.pt ~level:(node.Pt.level - 1) in
    (match t.cfg.Config.protocol with
    | Config.Adv ->
      Mm_sim.Mutex_s.lock child.Pt.frame.Mm_phys.Frame.lock;
      c.locked <- child :: c.locked
    | Config.Rw -> ());
    let sub_bytes = Geometry.coverage geo ~level:(node.Pt.level - 1) in
    for i = 0 to n - 1 do
      Pt.set t.pt child i
        (Pte.Leaf { pfn = pfn + (i * sub_pages); perm; accessed; dirty; global });
      (match origin with
      | Status.M_invalid -> ()
      | Status.M_resident o ->
        meta_set t child i
          (Status.M_resident (origin_advance o ~by:(i * sub_bytes)))
      | Status.M_alloc _ | Status.M_swapped _ ->
        invariant ~ctx:"split_huge" "non-resident metadata under a present leaf");
      (* Each sub-block head now carries its own map count. *)
      let f = Mm_phys.Phys.frame t.kernel.Kernel.phys (pfn + (i * sub_pages)) in
      f.Mm_phys.Frame.map_count <- f.Mm_phys.Frame.map_count + 1
    done;
    (* The huge frame head loses its single mapping. *)
    let head = Mm_phys.Phys.frame t.kernel.Kernel.phys pfn in
    head.Mm_phys.Frame.map_count <- head.Mm_phys.Frame.map_count - 1;
    Pt.link_child t.pt node idx child;
    Pt.set t.pt node idx (Pte.Table { pfn = child.Pt.frame.Mm_phys.Frame.pfn });
    child
  | Pte.Absent | Pte.Table _ -> invalid_arg "split_huge: not a leaf"

(* -- The four basic operations (Fig 4) -- *)

let query c vaddr : Status.t =
  in_range c ~lo:vaddr ~hi:(vaddr + page_size c.asp);
  let t = c.asp in
  let rec go (cur : node) =
    let idx = Pt.index t.pt ~level:cur.Pt.level ~vaddr in
    match Pt.get t.pt cur idx with
    | Pte.Leaf { pfn; perm; _ } ->
      let geo = t.kernel.Kernel.isa.Isa.geo in
      let off =
        (vaddr mod Geometry.coverage geo ~level:cur.Pt.level) / page_size t
      in
      Status.Mapped { pfn = pfn + off; perm }
    | Pte.Table { pfn } -> (
      match Pt.node_of_pfn t.pt pfn with
      | Some child -> go child
      | None -> invariant ~ctx:"query" "dangling table entry")
    | Pte.Absent -> (
      match meta_get cur idx with
      | Status.M_invalid -> Status.Invalid
      | Status.M_alloc { origin; perm; _ } -> status_of_mark ~origin ~perm
      | Status.M_swapped { dev; block; perm } ->
        Status.Swapped { dev; block; perm }
      | Status.M_resident _ ->
        invariant ~ctx:"query" "resident metadata under an absent PTE")
  in
  go c.covering

(* Map one physical page (or huge block) at [vaddr]. *)
let map c ~vaddr ~(frame : Mm_phys.Frame.t) ~perm ?(level = 1)
    ?(origin = Status.O_anon) () =
  let t = c.asp in
  let geo = t.kernel.Kernel.isa.Isa.geo in
  let bytes = Geometry.coverage geo ~level in
  in_range c ~lo:vaddr ~hi:(vaddr + bytes);
  if not (Mm_util.Align.is_aligned vaddr bytes) then
    raise (Bad_range "map: vaddr not aligned for the mapping level");
  let node = node_for c c.covering vaddr ~to_level:level in
  let idx = Pt.index t.pt ~level ~vaddr in
  (match Pt.get t.pt node idx with
  | Pte.Leaf { pfn; perm; _ } -> unmap_leaf c node idx (pfn, perm)
  | Pte.Table _ -> invalid_arg "map: range contains a finer-grained subtree"
  | Pte.Absent -> ());
  Pt.set t.pt node idx
    (Pte.leaf ~accessed:true ~pfn:frame.Mm_phys.Frame.pfn ~perm ());
  meta_set t node idx (Status.M_resident origin);
  if Mm_sim.Engine.in_fiber () then
    node.Pt.touched <- node.Pt.touched lor (1 lsl Mm_sim.Engine.cpu_id ());
  if Mm_sim.Engine.in_fiber () then
    Mm_sim.Engine.Line.rmw frame.Mm_phys.Frame.line;
  frame.Mm_phys.Frame.map_count <- frame.Mm_phys.Frame.map_count + 1;
  (match origin with
  | Status.O_anon ->
    Kernel.rmap_add t.kernel ~pfn:frame.Mm_phys.Frame.pfn ~asp_id:t.id ~vaddr;
    (* The page enters this space's top backing object: a fresh private
       page, a COW copy, or a swapped-in page all belong to the chain
       top (shared pre-fork pages stay recorded in the chain parent). *)
    Vm_object.install t.obj ~vpn:(vpn_of t vaddr)
      ~pfn:frame.Mm_phys.Frame.pfn
  | Status.O_file (file, offset) | Status.O_shm (file, offset) ->
    File.add_mapper file
      { File.asp_id = t.id; map_vaddr = vaddr; file_offset = offset;
        len = bytes });
  (* Install the translation in the faulting CPU's TLB. *)
  if Mm_sim.Engine.in_fiber () then
    Mm_tlb.Tlb.install t.tlb ~cpu:(Mm_sim.Engine.cpu_id ())
      ~vpn:(vpn_of t vaddr) ~pfn:frame.Mm_phys.Frame.pfn
      ~writable:(perm.Perm.write && not perm.Perm.cow)
      ~key:perm.Perm.mpk_key ()

(* Fast path for clearing an entire node: one streaming scan frees the
   present leaves and child subtrees and drops the metadata array
   wholesale, instead of per-slot charged operations — how a real kernel
   tears down a fully-covered subtree. *)
let rec clear_whole_node c (node : node) =
  let t = c.asp in
  Pt.charge_node_scan t.pt;
  for idx = 0 to entries_per_node t - 1 do
    match Pt.get_uncharged t.pt node idx with
    | Pte.Leaf { pfn; perm; _ } -> unmap_leaf c node idx (pfn, perm)
    | Pte.Table { pfn } -> (
      match Pt.node_of_pfn t.pt pfn with
      | Some child ->
        clear_whole_node c child;
        free_child c node idx child
      | None -> invariant ~ctx:"clear_whole_node" "dangling table entry")
    | Pte.Absent -> (
      match meta_get node idx with
      | Status.M_swapped { dev; block; _ } -> Blockdev.free_block dev ~block
      | Status.M_invalid | Status.M_alloc _ -> ()
      | Status.M_resident _ ->
        invariant ~ctx:"clear_whole_node" "resident metadata under an absent PTE")
  done;
  (* Drop the remaining marks wholesale. *)
  match node.Pt.meta with
  | None -> ()
  | Some m ->
    Array.fill m.slots 0 (Array.length m.slots) Status.M_invalid;
    m.live <- 0

(* Recursive range clear: unmap leaves, drop marks, free empty PT pages. *)
let rec clear_range c (node : node) ~lo ~hi =
  let t = c.asp in
  let base = Pt.node_base t.pt node in
  if lo <= base && base + Pt.node_coverage t.pt node <= hi then
    clear_whole_node c node
  else
  Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
      let e_lo = Pt.node_base t.pt node + (idx * Pt.entry_coverage t.pt node) in
      let e_hi = e_lo + Pt.entry_coverage t.pt node in
      let full = sub_lo = e_lo && sub_hi = e_hi in
      match Pt.get t.pt node idx with
      | Pte.Leaf { pfn; perm; _ } ->
        if full then unmap_leaf c node idx (pfn, perm)
        else
          let child = split_huge c node idx (Pt.get t.pt node idx) in
          clear_range c child ~lo:sub_lo ~hi:sub_hi
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn t.pt pfn with
        | Some child ->
          clear_range c child ~lo:sub_lo ~hi:sub_hi;
          if node_is_empty child then free_child c node idx child
        | None -> invariant ~ctx:"clear_range" "dangling table entry")
      | Pte.Absent -> (
        match meta_get node idx with
        | Status.M_invalid -> ()
        | Status.M_alloc _ when full -> meta_set t node idx Status.M_invalid
        | Status.M_alloc _ ->
          (* Partial clear of a large mark: push down, then recurse. *)
          let child = ensure_child c node idx in
          clear_range c child ~lo:sub_lo ~hi:sub_hi
        | Status.M_swapped { dev; block; _ } ->
          (* Swap slots are page-granular (level 1 only). *)
          Blockdev.free_block dev ~block;
          meta_set t node idx Status.M_invalid
        | Status.M_resident _ ->
          invariant ~ctx:"clear_range" "resident metadata under an absent PTE"))

let unmap c ~lo ~hi =
  in_range c ~lo ~hi;
  clear_range c c.covering ~lo ~hi

(* Set the status of a range (Fig 4 `mark`). Existing contents of the
   range are cleared first, as POSIX mmap over an existing mapping does.
   [base] is the vaddr to which the status's file offset corresponds, so
   that each slot stores the offset of its own position. *)
let rec mark_range c (node : node) ~lo ~hi ~base ~origin ~perm ~policy =
  let t = c.asp in
  Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
      let e_lo = Pt.node_base t.pt node + (idx * Pt.entry_coverage t.pt node) in
      let e_hi = e_lo + Pt.entry_coverage t.pt node in
      let full = sub_lo = e_lo && sub_hi = e_hi in
      if full then begin
        (* Clear whatever was there, then store the mark at this level —
           one metadata entry can stand for the entire slot coverage. *)
        (match Pt.get t.pt node idx with
        | Pte.Leaf { pfn; perm; _ } -> unmap_leaf c node idx (pfn, perm)
        | Pte.Table { pfn } -> (
          match Pt.node_of_pfn t.pt pfn with
          | Some child ->
            clear_range c child ~lo:sub_lo ~hi:sub_hi;
            if node_is_empty child then free_child c node idx child
            else
              invariant ~ctx:"mark" "child not empty after full-range clear"
          | None -> invariant ~ctx:"mark" "dangling table entry")
        | Pte.Absent -> (
          match meta_get node idx with
          | Status.M_swapped { dev; block; _ } ->
            Blockdev.free_block dev ~block
          | _ -> ()));
        meta_set t node idx
          (Status.M_alloc
             { origin = origin_advance origin ~by:(e_lo - base); perm; policy })
      end
      else
        match Pt.get t.pt node idx with
        | Pte.Leaf _ as l ->
          let child = split_huge c node idx l in
          mark_range c child ~lo:sub_lo ~hi:sub_hi ~base ~origin ~perm ~policy
        | Pte.Table { pfn } -> (
          match Pt.node_of_pfn t.pt pfn with
          | Some child ->
            mark_range c child ~lo:sub_lo ~hi:sub_hi ~base ~origin ~perm ~policy
          | None -> invariant ~ctx:"mark" "dangling table entry")
        | Pte.Absent ->
          let child = ensure_child c node idx in
          mark_range c child ~lo:sub_lo ~hi:sub_hi ~base ~origin ~perm ~policy)

let mark c ~lo ~hi status =
  in_range c ~lo ~hi;
  let origin = origin_of_status status in
  let perm =
    match Status.perm status with
    | Some p -> p
    | None -> invalid_arg "mark: status without permissions"
  in
  mark_range c c.covering ~lo ~hi ~base:lo ~origin ~perm
    ~policy:Numa.Default

(* Rewrite the NUMA policy of existing marks over a range — the single
   policy-update path, shared by mmap-with-policy and mbind. Only
   virtually-allocated slots carry a policy; resident pages are left
   where they are (no migration), as Linux's default mbind does. *)
let rec set_policy_range c (node : node) ~lo ~hi policy =
  let t = c.asp in
  Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
      let e_lo = Pt.node_base t.pt node + (idx * Pt.entry_coverage t.pt node) in
      let e_hi = e_lo + Pt.entry_coverage t.pt node in
      let full = sub_lo = e_lo && sub_hi = e_hi in
      match Pt.get t.pt node idx with
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn t.pt pfn with
        | Some child -> set_policy_range c child ~lo:sub_lo ~hi:sub_hi policy
        | None -> invariant ~ctx:"set_policy" "dangling table entry")
      | Pte.Leaf _ -> () (* already resident: no migration *)
      | Pte.Absent -> (
        match meta_get node idx with
        | Status.M_alloc { origin; perm; _ } when full ->
          meta_set t node idx (Status.M_alloc { origin; perm; policy })
        | Status.M_alloc _ ->
          let child = ensure_child c node idx in
          set_policy_range c child ~lo:sub_lo ~hi:sub_hi policy
        | Status.M_invalid | Status.M_swapped _ -> ()
        | Status.M_resident _ ->
          invariant ~ctx:"set_policy" "resident metadata under an absent PTE"))

let update_policy c ~lo ~hi policy =
  in_range c ~lo ~hi;
  set_policy_range c c.covering ~lo ~hi policy

(* The policy recorded for an (unmapped) page, for the fault path. *)
let policy_at c vaddr =
  let t = c.asp in
  let rec go (cur : node) =
    let idx = Pt.index t.pt ~level:cur.Pt.level ~vaddr in
    match Pt.get_uncharged t.pt cur idx with
    | Pte.Table { pfn } -> (
      match Pt.node_of_pfn t.pt pfn with
      | Some child -> go child
      | None -> Numa.Default)
    | Pte.Leaf _ -> Numa.Default
    | Pte.Absent -> (
      match meta_get cur idx with
      | Status.M_alloc { policy; _ } -> policy
      | _ -> Numa.Default)
  in
  go c.covering

(* Change permissions over a range, preserving mappings and marks. *)
let rec protect_range c (node : node) ~lo ~hi perm =
  let t = c.asp in
  Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
      let e_lo = Pt.node_base t.pt node + (idx * Pt.entry_coverage t.pt node) in
      let e_hi = e_lo + Pt.entry_coverage t.pt node in
      let full = sub_lo = e_lo && sub_hi = e_hi in
      match Pt.get t.pt node idx with
      | Pte.Leaf ({ pfn = _; _ } as l) ->
        if full then begin
          rewrite_live_leaf t node idx
            (Pte.Leaf { l with perm = { perm with Perm.cow = l.perm.Perm.cow } });
          let geo = t.kernel.Kernel.isa.Isa.geo in
          note_tlb c ~vaddr:e_lo
            ~pages:(Geometry.pages_per_entry geo ~level:node.Pt.level);
          c.tlb_targets <- c.tlb_targets lor node.Pt.touched
        end
        else
          let child = split_huge c node idx (Pt.get t.pt node idx) in
          protect_range c child ~lo:sub_lo ~hi:sub_hi perm
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn t.pt pfn with
        | Some child -> protect_range c child ~lo:sub_lo ~hi:sub_hi perm
        | None -> invariant ~ctx:"protect" "dangling table entry")
      | Pte.Absent -> (
        match meta_get node idx with
        | Status.M_invalid -> ()
        | Status.M_alloc { origin; policy; _ } when full ->
          meta_set t node idx (Status.M_alloc { origin; perm; policy })
        | Status.M_alloc _ ->
          let child = ensure_child c node idx in
          protect_range c child ~lo:sub_lo ~hi:sub_hi perm
        | Status.M_swapped s ->
          meta_set t node idx (Status.M_swapped { s with perm })
        | Status.M_resident _ ->
          invariant ~ctx:"protect" "resident metadata under an absent PTE"))

let protect c ~lo ~hi perm =
  in_range c ~lo ~hi;
  protect_range c c.covering ~lo ~hi perm

(* Record the calling CPU as a toucher of the PT page holding [vaddr]'s
   leaf, so later unmaps/protects shoot its TLB down. Used when a
   translation is (re)installed outside [map] — e.g. the spurious-fault
   path. *)
let record_toucher c ~vaddr =
  if Mm_sim.Engine.in_fiber () then begin
    let t = c.asp in
    let mask = 1 lsl Mm_sim.Engine.cpu_id () in
    let rec go (cur : node) =
      let idx = Pt.index t.pt ~level:cur.Pt.level ~vaddr in
      match Pt.get t.pt cur idx with
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn t.pt pfn with
        | Some child -> go child
        | None -> ())
      | Pte.Leaf _ -> cur.Pt.touched <- cur.Pt.touched lor mask
      | Pte.Absent -> ()
    in
    go c.covering
  end

(* Record a swapped-out page in the metadata (the PTE slot must be absent:
   the caller unmapped the page after writing it to the device). *)
let set_swapped c ~vaddr ~dev ~block ~perm =
  let t = c.asp in
  in_range c ~lo:vaddr ~hi:(vaddr + page_size t);
  let node = node_for c c.covering vaddr ~to_level:1 in
  let idx = Pt.index t.pt ~level:1 ~vaddr in
  match Pt.get t.pt node idx with
  | Pte.Absent -> meta_set t node idx (Status.M_swapped { dev; block; perm })
  | Pte.Leaf _ | Pte.Table _ ->
    invalid_arg "set_swapped: slot still holds a mapping"

(* Raw PTE rewrite of a single present page — used by COW break and by
   fork's write-protect pass, where [protect] semantics (which preserve the
   cow bit) do not fit. *)
let remap_pte c ~vaddr ~pfn ~perm =
  let t = c.asp in
  in_range c ~lo:vaddr ~hi:(vaddr + page_size t);
  let node = node_for c c.covering vaddr ~to_level:1 in
  let idx = Pt.index t.pt ~level:1 ~vaddr in
  match Pt.get t.pt node idx with
  | Pte.Leaf _ ->
    rewrite_live_leaf t node idx (Pte.leaf ~pfn ~perm ());
    note_tlb c ~vaddr ~pages:1;
    c.tlb_targets <- c.tlb_targets lor node.Pt.touched
  | Pte.Absent | Pte.Table _ -> invalid_arg "remap_pte: page not mapped"

(* -- Enumeration (fork, verification, accounting) --

   Walks the subtree under the cursor and reports every non-invalid slot as
   [(vaddr, bytes, status)], with marks reported at their stored level. *)
let iter_slots c ~lo ~hi f =
  in_range c ~lo ~hi;
  let t = c.asp in
  let rec go (node : node) ~lo ~hi =
    (* Enumeration streams over whole PT pages: charge per node, not per
       entry. *)
    Pt.charge_node_scan t.pt;
    Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
        let e_lo =
          Pt.node_base t.pt node + (idx * Pt.entry_coverage t.pt node)
        in
        match Pt.get_uncharged t.pt node idx with
        | Pte.Leaf { pfn; perm; _ } ->
          f e_lo (Pt.entry_coverage t.pt node)
            (Status.Mapped { pfn; perm })
        | Pte.Table { pfn } -> (
          match Pt.node_of_pfn t.pt pfn with
          | Some child -> go child ~lo:sub_lo ~hi:sub_hi
          | None -> invariant ~ctx:"iter_slots" "dangling table entry")
        | Pte.Absent -> (
          match meta_get node idx with
          | Status.M_invalid -> ()
          | Status.M_alloc { origin; perm; _ } ->
            f e_lo (Pt.entry_coverage t.pt node)
              (status_of_mark ~origin ~perm)
          | Status.M_swapped { dev; block; perm } ->
            f e_lo (Pt.entry_coverage t.pt node)
              (Status.Swapped { dev; block; perm })
          | Status.M_resident _ ->
            invariant ~ctx:"iter_slots" "resident metadata under an absent PTE"))
  in
  go c.covering ~lo ~hi

(* Relocate every page of [old_lo, old_hi) to the equal-sized range at
   [new_lo] (mremap's move): present leaves are re-linked (frames keep
   their map counts; the reverse map follows), marks and swap slots are
   copied, and the old slots are cleared. The cursor must cover both
   ranges (callers lock their hull). Huge leaves are split first by the
   caller via [unmap]-free paths; this loop is page-granular, as Linux's
   move_page_tables is in the unaligned case. *)
let move_range c ~old_lo ~old_hi ~new_lo =
  let t = c.asp in
  let ps = page_size t in
  in_range c ~lo:old_lo ~hi:old_hi;
  in_range c ~lo:new_lo ~hi:(new_lo + (old_hi - old_lo));
  let npages = (old_hi - old_lo) / ps in
  for i = 0 to npages - 1 do
    let ov = old_lo + (i * ps) in
    let nv = new_lo + (i * ps) in
    let onode = node_for c c.covering ov ~to_level:1 in
    let oidx = Pt.index t.pt ~level:1 ~vaddr:ov in
    match Pt.get t.pt onode oidx with
    | Pte.Leaf { pfn; perm; accessed; dirty; global } ->
      let origin = meta_get onode oidx in
      (* Clear the old slot without releasing the frame... *)
      Pt.set t.pt onode oidx Pte.Absent;
      meta_set t onode oidx Status.M_invalid;
      note_tlb c ~vaddr:ov ~pages:1;
      c.tlb_targets <- c.tlb_targets lor onode.Pt.touched;
      (* ...and re-link it at the new address. *)
      let nnode = node_for c c.covering nv ~to_level:1 in
      let nidx = Pt.index t.pt ~level:1 ~vaddr:nv in
      Pt.set t.pt nnode nidx (Pte.Leaf { pfn; perm; accessed; dirty; global });
      (match origin with
      | Status.M_resident Status.O_anon ->
        Kernel.rmap_remove t.kernel ~pfn ~asp_id:t.id ~vaddr:ov;
        Kernel.rmap_add t.kernel ~pfn ~asp_id:t.id ~vaddr:nv;
        (* Rekey the ownership record when the top object holds it; a
           record in a shared chain parent stays put (the other side
           still maps the page at the old address). *)
        (match Vm_object.lookup t.obj ~vpn:(ov / ps) with
        | Some (holder, _) when holder == t.obj ->
          Vm_object.forget t.obj ~vpn:(ov / ps);
          Vm_object.install t.obj ~vpn:(nv / ps) ~pfn
        | _ -> ());
        meta_set t nnode nidx origin
      | Status.M_resident (Status.O_file (f, _) as o)
      | Status.M_resident (Status.O_shm (f, _) as o) ->
        File.remove_mapper f ~asp_id:t.id ~map_vaddr:ov;
        File.add_mapper f
          { File.asp_id = t.id; map_vaddr = nv;
            file_offset = (match o with
              | Status.O_file (_, off) | Status.O_shm (_, off) -> off
              | Status.O_anon -> 0);
            len = ps };
        meta_set t nnode nidx origin
      | m -> meta_set t nnode nidx m)
    | Pte.Table _ -> invariant ~ctx:"move_range" "table entry at leaf level"
    | Pte.Absent -> (
      match meta_get onode oidx with
      | Status.M_invalid -> ()
      | (Status.M_alloc _ | Status.M_swapped _) as m ->
        meta_set t onode oidx Status.M_invalid;
        let nnode = node_for c c.covering nv ~to_level:1 in
        let nidx = Pt.index t.pt ~level:1 ~vaddr:nv in
        meta_set t nnode nidx m
      | Status.M_resident _ ->
        invariant ~ctx:"move_range" "resident metadata under an absent PTE")
  done

(* Bulk address-space clone for fork. On the ownership graph this is
   just "push a shadow object on both sides" ({!Vm_object.fork_push}):
   the parent's old top object — holding every resident anonymous page —
   becomes the shared chain parent of two fresh shadows, one per space,
   and post-fork pages land in the faulting side's shadow. The x86
   mechanism beneath is unchanged: mirror the parent's page-table
   subtree into the empty child, one streaming copy per PT page (PTE
   array + metadata array), write-protecting private mappings on both
   sides (COW) — how a real kernel forks, per-page-table memcpy plus
   per-present-leaf fixups, rather than replaying per-slot operations. *)
let clone_for_fork pc cc =
  let t = pc.asp and ct = cc.asp in
  (* The child was created with its own (empty) chain bottom; it is
     replaced by a shadow over the parent's chain. *)
  let sp, sc = Vm_object.fork_push t.obj in
  Vm_object.unref ct.obj;
  t.obj <- sp;
  ct.obj <- sc;
  let skip_parent_wp = mutant_fork_skip_parent_wp () in
  let phys = t.kernel.Kernel.phys in
  let geo = t.kernel.Kernel.isa.Isa.geo in
  let rec clone (pn : node) (cn : node) =
    Pt.charge_node_scan t.pt;
    charge Mm_sim.Cost.page_copy;
    (* Copy the metadata array wholesale (swap slots get fresh blocks so
       each space owns its copy). *)
    (match pn.Pt.meta with
    | None -> ()
    | Some pm ->
      let cm = meta_of ct cn in
      charge Mm_sim.Cost.meta_bulk_fill;
      Array.iteri
        (fun i slot ->
          let copied =
            match slot with
            | Status.M_swapped { dev; block; perm } ->
              let contents = Blockdev.read_page dev ~block in
              let nb = Blockdev.alloc_block dev in
              Blockdev.write_page dev ~block:nb ~contents;
              Status.M_swapped { dev; block = nb; perm }
            | s -> s
          in
          if cm.slots.(i) = Status.M_invalid && copied <> Status.M_invalid
          then cm.live <- cm.live + 1;
          cm.slots.(i) <- copied)
        pm.slots);
    for idx = 0 to entries_per_node t - 1 do
      match Pt.get_uncharged t.pt pn idx with
      | Pte.Absent -> ()
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn t.pt pfn with
        | Some pchild ->
          let cchild = Pt.alloc_node ct.pt ~level:(cn.Pt.level - 1) in
          (match ct.cfg.Config.protocol with
          | Config.Adv ->
            Mm_sim.Mutex_s.lock cchild.Pt.frame.Mm_phys.Frame.lock;
            cc.locked <- cchild :: cc.locked
          | Config.Rw -> ());
          Pt.link_child ct.pt cn idx cchild;
          Pt.set ct.pt cn idx
            (Pte.Table { pfn = cchild.Pt.frame.Mm_phys.Frame.pfn });
          clone pchild cchild
        | None -> invariant ~ctx:"clone_for_fork" "dangling table entry")
      | Pte.Leaf { pfn; perm; accessed; dirty; global } ->
        let vaddr = Pt.node_base t.pt pn + (idx * Pt.entry_coverage t.pt pn) in
        let frame = Mm_phys.Phys.frame phys pfn in
        let origin = meta_get pn idx in
        let shared =
          match origin with
          | Status.M_resident (Status.O_shm _) -> true
          | _ -> false
        in
        let p =
          if (not shared) && (perm.Perm.write || perm.Perm.cow) then begin
            (* Write-protect both sides and set the COW bit (Fig 8). *)
            let p = Perm.with_cow (Perm.with_write perm false) true in
            if not skip_parent_wp then begin
              Pt.set t.pt pn idx
                (Pte.Leaf { pfn; perm = p; accessed; dirty; global });
              note_tlb pc ~vaddr
                ~pages:(Geometry.pages_per_entry geo ~level:pn.Pt.level);
              pc.tlb_targets <- pc.tlb_targets lor pn.Pt.touched
            end;
            p
          end
          else perm
        in
        Pt.set ct.pt cn idx (Pte.Leaf { pfn; perm = p; accessed; dirty; global });
        frame.Mm_phys.Frame.map_count <- frame.Mm_phys.Frame.map_count + 1;
        (match origin with
        | Status.M_resident Status.O_anon | Status.M_invalid ->
          Kernel.rmap_add t.kernel ~pfn ~asp_id:ct.id ~vaddr
        | Status.M_resident (Status.O_file (file, offset))
        | Status.M_resident (Status.O_shm (file, offset)) ->
          File.add_mapper file
            { File.asp_id = ct.id; map_vaddr = vaddr; file_offset = offset;
              len = Pt.entry_coverage t.pt pn }
        | Status.M_alloc _ | Status.M_swapped _ ->
          invariant ~ctx:"clone_for_fork" "inconsistent metadata under a leaf")
    done
  in
  (* Both cursors must cover the whole space (covering = root). *)
  if pc.covering.Pt.parent <> None || cc.covering.Pt.parent <> None then
    invalid_arg "clone_for_fork: cursors must cover the full address space";
  clone pc.covering cc.covering

(* Promote a fully-populated level-1 PT page of uniform anonymous 4 KiB
   mappings into one 2 MiB huge leaf (khugepaged-style). The cursor's
   covering page must be at level >= 2 so the parent slot is locked (lock
   a range spanning two level-2 slots to arrange that). Returns false if
   the region does not qualify. *)
let promote_huge c ~vaddr =
  let t = c.asp in
  let geo = t.kernel.Kernel.isa.Isa.geo in
  let huge = Geometry.coverage geo ~level:2 in
  if not (Mm_util.Align.is_aligned vaddr huge) then
    invalid_arg "promote_huge: vaddr not 2 MiB aligned";
  in_range c ~lo:vaddr ~hi:(vaddr + huge);
  if c.covering.Pt.level < 2 then
    invalid_arg "promote_huge: covering page must be above the leaf level";
  let parent = node_for c c.covering vaddr ~to_level:2 in
  let pidx = Pt.index t.pt ~level:2 ~vaddr in
  match Pt.get t.pt parent pidx with
  | Pte.Absent | Pte.Leaf _ -> false (* nothing to promote / already huge *)
  | Pte.Table { pfn } ->
    let child =
      match Pt.node_of_pfn t.pt pfn with
      | Some n -> n
      | None -> invariant ~ctx:"promote_huge" "dangling table entry"
    in
    let n = entries_per_node t in
    if child.Pt.present <> n then false
    else begin
      (* All slots must be singly-mapped anonymous pages with one shared
         permission and no pending COW. *)
      Pt.charge_node_scan t.pt;
      let uniform = ref None in
      let ok = ref true in
      for idx = 0 to n - 1 do
        match Pt.get_uncharged t.pt child idx with
        | Pte.Leaf { pfn; perm; _ } ->
          let frame = Mm_phys.Phys.frame t.kernel.Kernel.phys pfn in
          if
            perm.Perm.cow
            || frame.Mm_phys.Frame.map_count <> 1
            || frame.Mm_phys.Frame.kind <> Mm_phys.Frame.Anon
            || meta_get child idx <> Status.M_resident Status.O_anon
          then ok := false
          else begin
            match !uniform with
            | None -> uniform := Some perm
            | Some p -> if not (Perm.equal p perm) then ok := false
          end
        | Pte.Absent | Pte.Table _ -> ok := false
      done;
      match (!ok, !uniform) with
      | false, _ | _, None -> false
      | true, Some perm ->
        (* Copy into a fresh 2 MiB block, retire the small pages, install
           the huge leaf. *)
        charge Mm_sim.Cost.page_alloc;
        let block =
          Mm_phys.Phys.alloc t.kernel.Kernel.phys ~kind:Mm_phys.Frame.Anon
            ~order:(Mm_util.Align.log2 n) ()
        in
        charge (n * Mm_sim.Cost.page_copy);
        for idx = 0 to n - 1 do
          match Pt.get_uncharged t.pt child idx with
          | Pte.Leaf { pfn; _ } ->
            (Mm_phys.Phys.frame t.kernel.Kernel.phys
               (block.Mm_phys.Frame.pfn + idx))
              .Mm_phys.Frame.contents <-
              (Mm_phys.Phys.frame t.kernel.Kernel.phys pfn)
                .Mm_phys.Frame.contents
          | Pte.Absent | Pte.Table _ -> ()
        done;
        clear_whole_node c child;
        free_child c parent pidx child;
        Pt.set t.pt parent pidx
          (Pte.leaf ~accessed:true ~pfn:block.Mm_phys.Frame.pfn ~perm ());
        meta_set t parent pidx (Status.M_resident Status.O_anon);
        block.Mm_phys.Frame.map_count <- 1;
        Kernel.rmap_add t.kernel ~pfn:block.Mm_phys.Frame.pfn ~asp_id:t.id
          ~vaddr;
        note_tlb c ~vaddr ~pages:n;
        c.tlb_targets <- c.tlb_targets lor parent.Pt.touched;
        true
    end

(* Is the level-1 PT page holding [vaddr] fully populated? (The auto-THP
   trigger; a lock-free peek.) *)
let l1_full t vaddr =
  let node = Pt.walk_opt t.pt ~to_level:1 vaddr in
  node.Pt.level = 1 && node.Pt.present = entries_per_node t

let origin_at c vaddr =
  let t = c.asp in
  let rec go (cur : node) =
    let idx = Pt.index t.pt ~level:cur.Pt.level ~vaddr in
    match Pt.get t.pt cur idx with
    | Pte.Table { pfn } -> (
      match Pt.node_of_pfn t.pt pfn with
      | Some child -> go child
      | None -> invariant ~ctx:"origin_at" "dangling table entry")
    | Pte.Leaf _ | Pte.Absent -> meta_get cur idx
  in
  go c.covering

(* -- Accounting -- *)

type mem_stats = {
  pt_pages : int;
  pt_bytes : int;
  meta_arrays : int;
  meta_bytes : int;
}

let mem_stats t =
  {
    pt_pages = Pt.pt_page_count t.pt;
    pt_bytes = Pt.pt_page_count t.pt * page_size t;
    meta_arrays = t.meta_arrays;
    meta_bytes = t.meta_bytes;
  }

(* Upper bound of the metadata overhead (Fig 22): every PT page with a
   fully populated metadata array. *)
let meta_bytes_upper_bound t =
  Pt.pt_page_count t.pt * entries_per_node t * Status.meta_entry_bytes

let check_well_formed t = Pt.check_well_formed t.pt
