(** Refcounted backing objects for anonymous memory, with shadow-chain
    parents — the explicit ownership graph behind COW fork (DragonFly /
    Mach VM-object style).

    Every address space tops a shadow chain; resident anonymous pages
    are recorded (vpn -> pfn) in the object that owns them and looked up
    by walking the chain youngest-first. [fork_push] pushes one fresh
    shadow per side so the pre-fork pages become shared beneath both; a
    COW break installs the private copy in the faulting side's top
    shadow; a chain parent whose reference count returns to 1 collapses
    into its only surviving shadow.

    The object graph is bookkeeping, not mechanism: it charges no
    simulated cycles, never parks, and does not own frame lifetimes
    (PTE map counts do). State transitions are announced through
    {!Mm_sim.Monitor} ([Obj_*] events) for the live invariant checker. *)

type t

val create_anon : unit -> t
(** A fresh chain-bottom anonymous object with one reference (the
    creating address space). *)

val shadow : t -> t
(** [shadow base] is a fresh empty object whose lookups fall through to
    [base]; takes one new reference on [base]. *)

val fork_push : t -> t * t
(** [fork_push top] implements fork on the object graph: two fresh
    shadows over [top], which loses the forking space's direct
    reference. Returns [(parent_top, child_top)]. *)

val ref_ : t -> unit

val unref : t -> unit
(** Drop one reference. At zero the object dies (and unrefs its chain
    parent, cascading); at one with a single surviving shadow child the
    object collapses into that shadow. *)

val install : t -> vpn:int -> pfn:int -> unit
(** Record [vpn] as owned by this (top) object. *)

val lookup : t -> vpn:int -> (t * int) option
(** Chain walk from the top; the youngest record wins. *)

val forget : t -> vpn:int -> unit
(** Drop the youngest record for [vpn] (its frame lost its last
    mapping). No-op if the chain has no record. *)

val promote : t -> vpn:int -> unit
(** Move the youngest record for [vpn] to the chain top — a COW fault
    resolved in place, so the page is now exclusively the top's. *)

val id : t -> int
val refs : t -> int
val parent : t -> t option
val depth : t -> int
(** Chain length from this object to the bottom (>= 1). *)

val page_slots : t -> int
(** Number of pages recorded in this object alone (not the chain). *)

val is_dead : t -> bool

val reset_ids : unit -> unit
(** Reset the domain-local id counter (one simulation world per parallel
    task; see [Mm_workloads.Runner.reset_world_state]). *)

val pager : dev:Blockdev.t -> phys:Mm_phys.Phys.t -> Pager.ops
(** The anonymous/shadow pager provider: pages out to swap blocks on
    [dev] ([put_pages] returns the allocated blocks; [get_page] takes a
    block as its page index and frees it after the read). *)
