(* The first-class backing-store surface: every provider of pages —
   anonymous memory swapping to a block device, regular files with a page
   cache, and shm objects — exposes the same four-operation pager record,
   in the style of DragonFly's [pagerops] (vnode_pager/swap_pager/
   device_pager all answer getpage/putpages/haspage/dealloc).

   [Mm]'s fault handler and the page-out daemon call pagers uniformly
   instead of matching on the mapping kind, so a new backing kind is one
   new [ops] value, not a new arm in every fault/reclaim path.

   This module also hosts the shared reverse-mapping container
   ({!Mapper_set}): both the file-side mapper tree and the kernel's
   anonymous rmap store the same [(address space, vaddr, offset, len)]
   records, giving the page-out daemon one rmap API for both backing
   kinds. *)

type mapping = {
  asp_id : int; (* the mapping address space *)
  map_vaddr : int; (* where in that space the object is mapped *)
  file_offset : int; (* offset into the backing object (0 for anon) *)
  len : int; (* bytes mapped *)
}

(* A small reverse-mapping set. Semantics match the historical
   [File.mappers] list exactly: insertion conses (so enumeration is
   newest-first) and removal filters on the (asp_id, map_vaddr) key —
   byte-identical behaviour for every pre-pager code path. *)
module Mapper_set = struct
  type t = { mutable items : mapping list }

  let create () = { items = [] }
  let add t m = t.items <- m :: t.items

  let remove t ~asp_id ~map_vaddr =
    t.items <-
      List.filter
        (fun m -> not (m.asp_id = asp_id && m.map_vaddr = map_vaddr))
        t.items

  let to_list t = t.items
  let count t = List.length t.items
  let is_empty t = t.items = []
  let iter t f = List.iter f t.items
  let exists t f = List.exists f t.items
  let clear t = t.items <- []
end

(* The pager operations record. [page_index] is the provider's stable
   page key: a page-cache index for file/shm pagers, a swap-device block
   for the anonymous pager.

   [put_pages] pages content tokens out to the backing store and returns
   the stable keys they now live at (for the anonymous pager these are
   freshly allocated swap blocks; file pagers return the indexes
   unchanged). [get_page] faults a page back in — providers charge the
   exact simulated I/O costs the pre-pager fault arms charged, which is
   what keeps default outputs byte-identical across the redesign. *)
type ops = {
  name : string;
  get_page : page_index:int -> Mm_phys.Frame.t;
  put_pages : (int * int) list -> int list; (* (key, contents) -> keys *)
  has_page : page_index:int -> bool;
  dealloc : unit -> unit;
}

(* -- Injected reclaim mutant (CI gate) --

   "put_pages skips the dirty writeback": a paged-out page's content
   token never reaches the backing store, so the page-in after reclaim
   observes stale (or zero) data. Domain-local like the lock mutants so
   parallel oracle tasks arm it independently;
   [Mm_workloads.Runner.reset_world_state] clears it. *)

let mutant_reclaim_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let set_mutant_reclaim_skip_writeback v =
  Domain.DLS.get mutant_reclaim_key := v

let mutant_reclaim_skip_writeback () = !(Domain.DLS.get mutant_reclaim_key)
