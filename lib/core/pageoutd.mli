(** The global page-out daemon: reclaims from every registered address
    space (anonymous pages, second-chance clock scan to swap) and file
    object (page-cache writeback + drop through the pagers), driven by
    free-frame watermarks over {!Mm_phys.Phys.data_frames}. Wired
    (mlock'd) pages are never taken; dirty pages are written back before
    their frame is dropped; unmaps run inside transactions so TLB
    shootdowns commit before frame reuse. *)

type stats = {
  swap : Swapd.stats;
  mutable file_written_back : int;
  mutable file_dropped : int;
  mutable wakeups : int;
}

val fresh_stats : unit -> stats

type t

val create : ?low:int -> ?high:int -> Kernel.t -> dev:Blockdev.t -> unit -> t
(** A daemon swapping to [dev]. Defaults: [high = max_int] (never wakes
    on {!balance}), [low = 0]. *)

val set_watermarks : t -> low:int -> high:int -> unit
val stats : t -> stats
val dev : t -> Blockdev.t

val register_space : t -> Addr_space.t -> unit
val unregister_space : t -> Addr_space.t -> unit
val register_file : t -> File.t -> unit

val pressure : t -> target_pages:int -> int
(** Force a reclaim of [target_pages] pages across all registered
    backing stores; returns how many were reclaimed (stops early after
    two dry passes). *)

val balance : t -> int
(** The kswapd wakeup: when resident data frames exceed the high
    watermark, reclaim down to the low one. Returns pages reclaimed. *)
