(** Memory-management operations over the transactional interface (paper
    Fig 8): each operation is one locked transaction. *)

type backing =
  | Anon
  | File_private of File.t * int (** file, byte offset *)
  | Shared of File.t * int (** shared file or shm object *)

exception Enomem

type fault_outcome = Handled | Sigsegv

exception Fault of int
(** Raised by {!touch} on SIGSEGV, carrying the faulting address. *)

val mmap :
  Addr_space.t ->
  ?addr:int ->
  ?backing:backing ->
  ?policy:Numa.policy ->
  len:int ->
  perm:Mm_hal.Perm.t ->
  unit ->
  int
[@@ocaml.deprecated "use Mm.mmap_r (typed errors) instead"]
(** Virtually allocate [len] bytes (page-rounded); on-demand paging backs
    them at fault time. Explicit [addr] replaces existing mappings
    (POSIX fixed semantics). Returns the start address.

    @deprecated Exception-style wrapper kept for the legacy tests;
    new code uses {!mmap_r}. *)

val munmap : Addr_space.t -> addr:int -> len:int -> unit
[@@ocaml.deprecated "use Mm.munmap_r (typed errors) instead"]
(** @deprecated Exception-style wrapper; new code uses {!munmap_r}. *)

val mprotect : Addr_space.t -> addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit
[@@ocaml.deprecated "use Mm.mprotect_r (typed errors) instead"]
(** @deprecated Exception-style wrapper; new code uses {!mprotect_r}. *)

exception Mremap_failed of string

val mremap : Addr_space.t -> addr:int -> old_len:int -> new_len:int -> int
(** Resize a mapping: shrink in place, or grow by relocating to a fresh
    range (MAYMOVE semantics — frames keep their identity, data moves
    with them). Returns the (possibly new) address. Huge leaves in the
    old range are unsupported. *)

val madvise_dontneed : Addr_space.t -> addr:int -> len:int -> unit
(** Drop the range's resident anonymous pages without unmapping: the
    virtual allocation stays and refaults observe zero-filled pages. *)

val page_fault : Addr_space.t -> vaddr:int -> write:bool -> fault_outcome
(** The Fig 8 page-fault handler: demand paging, COW breaks, swap-in,
    file faults, spurious-fault reinstalls. *)

val touch : Addr_space.t -> vaddr:int -> write:bool -> unit
(** One user access: TLB lookup, hardware page walk on miss, page fault
    as needed. Raises {!Fault} if the fault resolves to SIGSEGV. *)

val touch_range : Addr_space.t -> addr:int -> len:int -> write:bool -> unit

val fork : Addr_space.t -> Addr_space.t
(** Copy-on-write duplication: enumerates the parent by walking its page
    table (the §6.2 worst case), write-protecting private mappings on
    both sides. *)

val destroy : Addr_space.t -> unit
(** Unmap the whole user range (exec/exit teardown). *)

val msync : Addr_space.t -> file:File.t -> int
(** Write back the file's dirty pages; returns how many. *)

val swap_out : Addr_space.t -> vaddr:int -> dev:Blockdev.t -> bool
(** Swap one resident, singly-mapped anonymous page out to the device;
    [false] when the page does not qualify (shared / COW / not anon). *)

val promote_huge : Addr_space.t -> vaddr:int -> bool
(** Promote the 2 MiB region of [vaddr] to a huge page if it qualifies
    (fully populated with uniform, singly-mapped anonymous pages). *)

val khugepaged : Addr_space.t -> int
(** Scan the whole space and promote every qualifying region; returns the
    number promoted. *)

val pkey_mprotect :
  Addr_space.t -> addr:int -> len:int -> perm:Mm_hal.Perm.t -> key:int -> unit
(** Tag a range with an Intel MPK protection key; accesses are then
    gated by the per-CPU PKRU register ({!Kernel.wrpkru}). x86-64 only. *)

val mbind : Addr_space.t -> addr:int -> len:int -> policy:Numa.policy -> unit
(** Set the NUMA policy of a range; stored in the per-PTE metadata and
    consulted by subsequent anonymous faults (no migration of resident
    pages). *)

val timer_tick : Addr_space.t -> unit
(** Simulated timer interrupt: drains the CPU's lazy (LATR) TLB buffer. *)

val user_range : Addr_space.t -> int * int

val write_value : Addr_space.t -> vaddr:int -> value:int -> unit
(** Simulated user store of a verification token (drives COW/swap tests). *)

val read_value : Addr_space.t -> vaddr:int -> int

(** {2 Typed-error variants}

    Result-returning forms of the operations above: faults and malformed
    requests come back as {!Mm_hal.Errno.t} values instead of exceptions,
    which is what the backend interface ({!Mm_workloads.Backend.S}) and
    the differential oracle consume. Validation is host-side — a valid
    request charges exactly the cycles its exception-style twin does. *)

val mmap_r :
  Addr_space.t ->
  ?addr:int ->
  ?backing:backing ->
  ?policy:Numa.policy ->
  len:int ->
  perm:Mm_hal.Perm.t ->
  unit ->
  (int, Mm_hal.Errno.t) result
(** [Error EINVAL] for an empty range or an unaligned/negative explicit
    address; [Error ENOMEM] when frames or virtual space run out. *)

val munmap_r :
  Addr_space.t -> addr:int -> len:int -> (unit, Mm_hal.Errno.t) result

val mprotect_r :
  Addr_space.t ->
  addr:int ->
  len:int ->
  perm:Mm_hal.Perm.t ->
  (unit, Mm_hal.Errno.t) result

val touch_r :
  Addr_space.t -> vaddr:int -> write:bool -> (unit, Mm_hal.Errno.t) result
(** [Error (SIGSEGV vaddr)] where {!touch} raises {!Fault}. *)

val touch_range_r :
  Addr_space.t ->
  addr:int ->
  len:int ->
  write:bool ->
  (unit, Mm_hal.Errno.t) result
(** Stops at the first faulting page. *)

val write_value_r :
  Addr_space.t -> vaddr:int -> value:int -> (unit, Mm_hal.Errno.t) result
(** Like {!write_value}, but a page that vanishes between the touch and
    the locked store surfaces as [Error (SIGSEGV page)]. *)

val read_value_r : Addr_space.t -> vaddr:int -> (int, Mm_hal.Errno.t) result
