(** Memory-management operations over the transactional interface (paper
    Fig 8): each operation is one locked transaction. *)

type backing =
  | Anon
  | File_private of File.t * int (** file, byte offset *)
  | Shared of File.t * int (** shared file or shm object *)

exception Enomem

type fault_outcome = Handled | Sigsegv

exception Fault of int
(** Raised by {!touch} on SIGSEGV, carrying the faulting address. *)

exception Mremap_failed of string

val mremap : Addr_space.t -> addr:int -> old_len:int -> new_len:int -> int
(** Resize a mapping: shrink in place, or grow by relocating to a fresh
    range (MAYMOVE semantics — frames keep their identity, data moves
    with them). Returns the (possibly new) address. Huge leaves in the
    old range are unsupported. *)

val madvise_dontneed : Addr_space.t -> addr:int -> len:int -> unit
(** Drop the range's resident anonymous pages without unmapping: the
    virtual allocation stays and refaults observe zero-filled pages. *)

val page_fault : Addr_space.t -> vaddr:int -> write:bool -> fault_outcome
(** The Fig 8 page-fault handler: demand paging, COW breaks, swap-in,
    file faults, spurious-fault reinstalls. *)

val touch : Addr_space.t -> vaddr:int -> write:bool -> unit
(** One user access: TLB lookup, hardware page walk on miss, page fault
    as needed. Raises {!Fault} if the fault resolves to SIGSEGV. *)

val touch_range : Addr_space.t -> addr:int -> len:int -> write:bool -> unit

val fork : Addr_space.t -> Addr_space.t
(** Copy-on-write duplication: enumerates the parent by walking its page
    table (the §6.2 worst case), write-protecting private mappings on
    both sides. *)

val destroy : Addr_space.t -> unit
(** Unmap the whole user range (exec/exit teardown). *)

val swap_out : Addr_space.t -> vaddr:int -> dev:Blockdev.t -> bool
(** Swap one resident, singly-mapped anonymous page out through the
    anonymous pager ({!Vm_object.pager}); [false] when the page does not
    qualify (shared / COW / not anon / wired by mlock). *)

val unmap_file_page : Addr_space.t -> vaddr:int -> bool
(** Reclaim helper: revert one resident file/shm page to its unfaulted
    backing status (the mapping stays; the next access refaults through
    the pager). [false] when the page is not a resident file page. *)

val promote_huge : Addr_space.t -> vaddr:int -> bool
(** Promote the 2 MiB region of [vaddr] to a huge page if it qualifies
    (fully populated with uniform, singly-mapped anonymous pages). *)

val khugepaged : Addr_space.t -> int
(** Scan the whole space and promote every qualifying region; returns the
    number promoted. *)

val pkey_mprotect :
  Addr_space.t -> addr:int -> len:int -> perm:Mm_hal.Perm.t -> key:int -> unit
(** Tag a range with an Intel MPK protection key; accesses are then
    gated by the per-CPU PKRU register ({!Kernel.wrpkru}). x86-64 only. *)

val mbind : Addr_space.t -> addr:int -> len:int -> policy:Numa.policy -> unit
(** Set the NUMA policy of a range; stored in the per-PTE metadata and
    consulted by subsequent anonymous faults (no migration of resident
    pages). *)

val timer_tick : Addr_space.t -> unit
(** Simulated timer interrupt: drains the CPU's lazy (LATR) TLB buffer. *)

val user_range : Addr_space.t -> int * int

val write_value : Addr_space.t -> vaddr:int -> value:int -> unit
(** Simulated user store of a verification token (drives COW/swap tests). *)

val read_value : Addr_space.t -> vaddr:int -> int

(** {2 Typed-error variants}

    Result-returning forms of the operations above: faults and malformed
    requests come back as {!Mm_hal.Errno.t} values instead of exceptions,
    which is what the backend interface ({!Mm_workloads.Backend.S}) and
    the differential oracle consume. Validation is host-side — a valid
    request charges exactly the cycles its exception-style twin does. *)

val mmap_r :
  Addr_space.t ->
  ?addr:int ->
  ?backing:backing ->
  ?policy:Numa.policy ->
  len:int ->
  perm:Mm_hal.Perm.t ->
  unit ->
  (int, Mm_hal.Errno.t) result
(** [Error EINVAL] for an empty range or an unaligned/negative explicit
    address; [Error ENOMEM] when frames or virtual space run out. *)

val munmap_r :
  Addr_space.t -> addr:int -> len:int -> (unit, Mm_hal.Errno.t) result

val mprotect_r :
  Addr_space.t ->
  addr:int ->
  len:int ->
  perm:Mm_hal.Perm.t ->
  (unit, Mm_hal.Errno.t) result

val touch_r :
  Addr_space.t -> vaddr:int -> write:bool -> (unit, Mm_hal.Errno.t) result
(** [Error (SIGSEGV vaddr)] where {!touch} raises {!Fault}. *)

val touch_range_r :
  Addr_space.t ->
  addr:int ->
  len:int ->
  write:bool ->
  (unit, Mm_hal.Errno.t) result
(** Stops at the first faulting page. *)

val write_value_r :
  Addr_space.t -> vaddr:int -> value:int -> (unit, Mm_hal.Errno.t) result
(** Like {!write_value}, but a page that vanishes between the touch and
    the locked store surfaces as [Error (SIGSEGV page)]. *)

val read_value_r : Addr_space.t -> vaddr:int -> (int, Mm_hal.Errno.t) result

val msync_r : Addr_space.t -> file:File.t -> (int, Mm_hal.Errno.t) result
(** Write back the file's dirty pages; returns how many. *)

val mlock_r :
  Addr_space.t -> addr:int -> len:int -> (unit, Mm_hal.Errno.t) result
(** Populate and wire the range: every page is faulted in and its frame
    pinned against reclaim. [Error EINVAL] for a malformed range,
    [Error EPERM] past the wired-page limit ({!Kernel.set_wired_limit}),
    [Error ENOMEM] when part of the range is unmapped, [Error EAGAIN]
    when frames ran out while populating. *)

val munlock_r :
  Addr_space.t -> addr:int -> len:int -> (unit, Mm_hal.Errno.t) result
(** Unwire the range's resident pages (idempotent). *)
