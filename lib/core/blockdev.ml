(* A simulated block device used as swap space.

   Pages are stored as their integer "contents" token so swap-out/swap-in
   round-trips are verifiable. I/O costs model a fast NVMe device. *)

let write_cost = 9_000 (* cycles to submit + complete a 4 KiB write *)
let read_cost = 7_000

type t = {
  id : int;
  name : string;
  nblocks : int;
  blocks : (int, int) Hashtbl.t; (* block -> stored contents *)
  mutable next_block : int;
  free_blocks : int Queue.t;
  mutable writes : int;
  mutable reads : int;
}

(* Domain-local, reset per parallel task, like [File.next_id]. *)
let next_id_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let next_id () = Domain.DLS.get next_id_key
let reset_ids () = next_id () := 0

let create ?(nblocks = 1 lsl 20) ~name () =
  let next_id = next_id () in
  incr next_id;
  {
    id = !next_id;
    name;
    nblocks;
    blocks = Hashtbl.create 64;
    next_block = 0;
    free_blocks = Queue.create ();
    writes = 0;
    reads = 0;
  }

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

exception Device_full

let alloc_block t =
  match Queue.take_opt t.free_blocks with
  | Some b -> b
  | None ->
    if t.next_block >= t.nblocks then raise Device_full;
    let b = t.next_block in
    t.next_block <- t.next_block + 1;
    b

let write_page t ~block ~contents =
  charge write_cost;
  t.writes <- t.writes + 1;
  Hashtbl.replace t.blocks block contents

let read_page t ~block =
  charge read_cost;
  t.reads <- t.reads + 1;
  match Hashtbl.find_opt t.blocks block with
  | Some c -> c
  | None -> invalid_arg "Blockdev.read_page: block never written"

let free_block t ~block =
  Hashtbl.remove t.blocks block;
  Queue.push block t.free_blocks

let has_block t ~block = Hashtbl.mem t.blocks block

let used_blocks t = Hashtbl.length t.blocks
let writes t = t.writes
let reads t = t.reads
let name t = t.name
