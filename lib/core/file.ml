(* Simulated file objects with a page cache, backing mmaped files and
   shared anonymous memory.

   The paper (§4.5, reverse mapping): "The file object contains a tree of
   all AddrSpaces that map the file, enabling reverse mapping. Reverse
   mappings of shared anonymous mappings are supported by naming the pages
   within the kernel" — i.e. shared anonymous memory is a kernel-internal
   file. [kind] distinguishes the two.

   Page contents are integer tokens derived from (file id, page index) so
   tests can verify that a faulted-in mapping observes the right data. *)

type kind = Regular of string | Shm

type mapper = { asp_id : int; map_vaddr : int; file_offset : int; len : int }

type t = {
  id : int;
  kind : kind;
  mutable size : int;
  pages : (int, Mm_phys.Frame.t) Hashtbl.t; (* page index -> cache frame *)
  lock : Mm_sim.Mutex_s.t;
  mutable mappers : mapper list; (* the AddrSpace tree, as a list *)
  mutable dirty : (int, unit) Hashtbl.t; (* dirty page indexes *)
  mutable writebacks : int;
}

(* File ids appear in monitor/report text: domain-local, reset per
   parallel task ([Mm_workloads.Runner.reset_world_state]) so they are
   independent of what ran before on the same domain. *)
let next_id_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let next_id () = Domain.DLS.get next_id_key
let reset_ids () = next_id () := 0

let io_read_cost = 8_000 (* first touch of a cache page: read from disk *)

let create ~kind ~size =
  let next_id = next_id () in
  incr next_id;
  {
    id = !next_id;
    kind;
    size;
    pages = Hashtbl.create 16;
    lock = Mm_sim.Mutex_s.make ~name:"file.lock" ();
    mappers = [];
    dirty = Hashtbl.create 16;
    writebacks = 0;
  }

let regular ~name ~size = create ~kind:(Regular name) ~size
let shm ~size = create ~kind:Shm ~size

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let page_token t ~page_index = (t.id * 1_000_003) + page_index

(* Fetch the cache frame for a page, faulting it in from "disk" on first
   use. Shared-memory pages start zeroed instead of read. *)
let get_page t phys ~page_index =
  match Hashtbl.find_opt t.pages page_index with
  | Some f -> f
  | None ->
    let f = Mm_phys.Phys.alloc phys ~kind:Mm_phys.Frame.File_page () in
    (match t.kind with
    | Regular _ ->
      charge io_read_cost;
      f.Mm_phys.Frame.contents <- page_token t ~page_index
    | Shm ->
      charge Mm_sim.Cost.page_zero;
      f.Mm_phys.Frame.contents <- 0);
    Hashtbl.replace t.pages page_index f;
    f

let lookup_page t ~page_index = Hashtbl.find_opt t.pages page_index

let mark_dirty t ~page_index = Hashtbl.replace t.dirty page_index ()

let writeback t =
  let n = Hashtbl.length t.dirty in
  if n > 0 then begin
    charge (Blockdev.write_cost * n);
    t.writebacks <- t.writebacks + n;
    Hashtbl.reset t.dirty
  end;
  n

let add_mapper t m = t.mappers <- m :: t.mappers

let remove_mapper t ~asp_id ~map_vaddr =
  t.mappers <-
    List.filter
      (fun m -> not (m.asp_id = asp_id && m.map_vaddr = map_vaddr))
      t.mappers

let mappers t = t.mappers
let cached_pages t = Hashtbl.length t.pages
let id t = t.id
let size t = t.size

let name t =
  match t.kind with Regular n -> n | Shm -> Printf.sprintf "shm:%d" t.id
