(* Simulated file objects with a page cache, backing mmaped files and
   shared anonymous memory.

   The paper (§4.5, reverse mapping): "The file object contains a tree of
   all AddrSpaces that map the file, enabling reverse mapping. Reverse
   mappings of shared anonymous mappings are supported by naming the pages
   within the kernel" — i.e. shared anonymous memory is a kernel-internal
   file. [kind] distinguishes the two. The mapper tree is a shared
   {!Pager.Mapper_set} (the same container backs the anonymous rmap).

   Page contents are integer tokens derived from (file id, page index) so
   tests can verify that a faulted-in mapping observes the right data.
   Written-back contents persist in a [disk] store, so a cache page the
   page-out daemon drops refaults with the last written-back data — the
   value model sees reclaim as fully transparent. *)

type kind = Regular of string | Shm

type mapper = Pager.mapping = {
  asp_id : int;
  map_vaddr : int;
  file_offset : int;
  len : int;
}

type t = {
  id : int;
  kind : kind;
  mutable size : int;
  pages : (int, Mm_phys.Frame.t) Hashtbl.t; (* page index -> cache frame *)
  disk : (int, int) Hashtbl.t; (* page index -> written-back contents *)
  lock : Mm_sim.Mutex_s.t;
  mappers : Pager.Mapper_set.t; (* the AddrSpace tree *)
  mutable dirty : (int, unit) Hashtbl.t; (* dirty page indexes *)
  mutable writebacks : int;
}

(* File ids appear in monitor/report text: domain-local, reset per
   parallel task ([Mm_workloads.Runner.reset_world_state]) so they are
   independent of what ran before on the same domain. *)
let next_id_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let next_id () = Domain.DLS.get next_id_key
let reset_ids () = next_id () := 0

let io_read_cost = 8_000 (* first touch of a cache page: read from disk *)

let create ~kind ~size =
  let next_id = next_id () in
  incr next_id;
  {
    id = !next_id;
    kind;
    size;
    pages = Hashtbl.create 16;
    disk = Hashtbl.create 16;
    lock = Mm_sim.Mutex_s.make ~name:"file.lock" ();
    mappers = Pager.Mapper_set.create ();
    dirty = Hashtbl.create 16;
    writebacks = 0;
  }

let regular ~name ~size = create ~kind:(Regular name) ~size
let shm ~size = create ~kind:Shm ~size

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let page_token t ~page_index = (t.id * 1_000_003) + page_index

let emit ev = if Mm_sim.Monitor.on () then Mm_sim.Monitor.emit ev

(* The content a page (re)faults in with: written-back data wins over the
   pristine token / zero fill. *)
let backing_contents t ~page_index =
  match Hashtbl.find_opt t.disk page_index with
  | Some c -> Some c
  | None -> None

(* Fetch the cache frame for a page, faulting it in from "disk" on first
   use. Shared-memory pages start zeroed instead of read; a page that was
   written back and dropped refaults with the stored contents. *)
let get_page t phys ~page_index =
  match Hashtbl.find_opt t.pages page_index with
  | Some f -> f
  | None ->
    let f = Mm_phys.Phys.alloc phys ~kind:Mm_phys.Frame.File_page () in
    (match backing_contents t ~page_index with
    | Some c ->
      charge io_read_cost;
      f.Mm_phys.Frame.contents <- c
    | None -> (
      match t.kind with
      | Regular _ ->
        charge io_read_cost;
        f.Mm_phys.Frame.contents <- page_token t ~page_index
      | Shm ->
        charge Mm_sim.Cost.page_zero;
        f.Mm_phys.Frame.contents <- 0));
    Hashtbl.replace t.pages page_index f;
    f

let lookup_page t ~page_index = Hashtbl.find_opt t.pages page_index

let mark_dirty t ~page_index =
  emit (Mm_sim.Monitor.Page_dirtied { file = t.id; page = page_index });
  Hashtbl.replace t.dirty page_index ()

(* Store one page's contents in the backing store (one device write). *)
let store_page t ~page_index ~contents =
  charge Blockdev.write_cost;
  t.writebacks <- t.writebacks + 1;
  Hashtbl.replace t.disk page_index contents;
  Hashtbl.remove t.dirty page_index;
  emit (Mm_sim.Monitor.Reclaim_writeback { file = t.id; page = page_index })

let writeback t =
  let idxs =
    List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) t.dirty [])
  in
  List.iter
    (fun i ->
      let contents =
        match Hashtbl.find_opt t.pages i with
        | Some f -> f.Mm_phys.Frame.contents
        | None -> ( match backing_contents t ~page_index:i with
          | Some c -> c
          | None -> ( match t.kind with
            | Regular _ -> page_token t ~page_index:i
            | Shm -> 0))
      in
      store_page t ~page_index:i ~contents)
    idxs;
  List.length idxs

(* Drop a clean (written-back) cache page: the frame is released and a
   later access refaults it from the backing store. The caller is
   responsible for having unmapped it everywhere first. *)
let drop_page t phys ~page_index =
  match Hashtbl.find_opt t.pages page_index with
  | None -> ()
  | Some f ->
    emit
      (Mm_sim.Monitor.Reclaim_drop
         { file = t.id; page = page_index; pfn = f.Mm_phys.Frame.pfn });
    Hashtbl.remove t.pages page_index;
    Mm_phys.Phys.free phys f

let add_mapper t m = Pager.Mapper_set.add t.mappers m

let remove_mapper t ~asp_id ~map_vaddr =
  Pager.Mapper_set.remove t.mappers ~asp_id ~map_vaddr

let mappers t = Pager.Mapper_set.to_list t.mappers
let mapper_set t = t.mappers
let cached_pages t = Hashtbl.length t.pages

let cached_page_indexes t =
  List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) t.pages [])

(* Would dropping this cache page lose data? True when the page is
   dirty-marked, or its frame contents differ from what the backing
   store would refault (the "hardware dirty bit" the simulation does not
   track per-PTE: user stores mutate the frame token directly). *)
let needs_writeback t ~page_index =
  match Hashtbl.find_opt t.pages page_index with
  | None -> false
  | Some f ->
    Hashtbl.mem t.dirty page_index
    || f.Mm_phys.Frame.contents
       <>
       (match backing_contents t ~page_index with
       | Some c -> c
       | None -> (
         match t.kind with
         | Regular _ -> page_token t ~page_index
         | Shm -> 0))
let dirty_pages t = Hashtbl.length t.dirty
let id t = t.id
let size t = t.size

let name t =
  match t.kind with Regular n -> n | Shm -> Printf.sprintf "shm:%d" t.id

(* -- The pager provider (file and shm) -- *)

let pager t phys =
  {
    Pager.name = (match t.kind with Regular _ -> "file" | Shm -> "shm");
    get_page = (fun ~page_index -> get_page t phys ~page_index);
    put_pages =
      (fun pages ->
        (* Reclaim-time writeback: page out the listed (index, contents)
           pairs. The injected mutant "forgets" the store, so the refault
           after a drop observes stale data. *)
        List.map
          (fun (page_index, contents) ->
            if not (Pager.mutant_reclaim_skip_writeback ()) then
              store_page t ~page_index ~contents
            else Hashtbl.remove t.dirty page_index;
            page_index)
          pages);
    has_page =
      (fun ~page_index ->
        Hashtbl.mem t.pages page_index || Hashtbl.mem t.disk page_index);
    dealloc =
      (fun () ->
        let idxs = Hashtbl.fold (fun i _ acc -> i :: acc) t.pages [] in
        List.iter
          (fun i ->
            match Hashtbl.find_opt t.pages i with
            | Some f ->
              Hashtbl.remove t.pages i;
              Mm_phys.Phys.free phys f
            | None -> ())
          (List.sort compare idxs);
        Hashtbl.reset t.disk;
        Hashtbl.reset t.dirty);
  }
