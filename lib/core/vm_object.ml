(* The backing-object layer: an explicit, refcounted ownership graph for
   anonymous memory, in the style of DragonFly/Mach VM objects.

   Each address space tops a *shadow chain*: a list of backing objects
   linked through [parent], youngest first. Resident anonymous pages are
   recorded as per-page slots (vpn -> pfn) in the object that owns them;
   a page lookup walks the chain from the top and the first record wins,
   so a copy installed in a shadow hides the shared original beneath it.

   fork pushes one fresh shadow on each side: the forking space's old top
   object becomes the shared chain parent of both new shadows, and every
   page it holds is now copy-on-write for both spaces. A COW break copies
   the page into the faulting side's top shadow; when only one referent
   of a chain parent remains (sibling exited), the parent *collapses* —
   its pages merge into the surviving shadow and the object dies.

   This graph is the checkable ownership story (the rely-guarantee view:
   which space may write which frame, and why). The x86-level mechanism
   beneath it is unchanged: fork still write-protects private leaves on
   both sides and faults still key off the PTE's COW bit, so all
   simulated costs, TLB traffic and virtual-time behaviour are identical
   to the pre-object-layer code. Object maintenance charges nothing and
   never parks; monitored and unmonitored runs stay bit-identical
   (transitions announce themselves through {!Mm_sim.Monitor} only when
   a checker is installed). *)

type t = {
  id : int;
  mutable refs : int;
      (* one per address space whose top object this is, plus one per
         live shadow child *)
  mutable parent : t option;
  mutable children : t list; (* live shadows backed by this object *)
  pages : (int, int) Hashtbl.t; (* vpn -> pfn owned by this object *)
  mutable dead : bool;
}

(* Object ids appear in monitor/report text: domain-local, reset per
   parallel task ([Mm_workloads.Runner.reset_world_state]) so they are
   independent of what ran before on the same domain. *)
let next_id_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let next_id () = Domain.DLS.get next_id_key
let reset_ids () = next_id () := 0

let id o = o.id
let refs o = o.refs
let parent o = o.parent
let is_dead o = o.dead
let page_slots o = Hashtbl.length o.pages

let rec depth o = match o.parent with None -> 1 | Some p -> 1 + depth p

let emit ev = if Mm_sim.Monitor.on () then Mm_sim.Monitor.emit ev

let make ~parent =
  let next_id = next_id () in
  incr next_id;
  let o =
    {
      id = !next_id;
      refs = 1;
      parent;
      children = [];
      pages = Hashtbl.create 8;
      dead = false;
    }
  in
  emit
    (Mm_sim.Monitor.Obj_created
       {
         obj = o.id;
         parent = (match parent with None -> -1 | Some p -> p.id);
       });
  o

let create_anon () = make ~parent:None

(* A fresh shadow whose misses fall through to [base]; counts as one new
   reference on [base]. *)
let shadow base =
  if base.dead then invalid_arg "Vm_object.shadow: dead object";
  let s = make ~parent:(Some base) in
  base.refs <- base.refs + 1;
  base.children <- s :: base.children;
  emit (Mm_sim.Monitor.Obj_ref { obj = base.id; refs = base.refs });
  s

let ref_ o =
  if o.dead then invalid_arg "Vm_object.ref_: dead object";
  o.refs <- o.refs + 1;
  emit (Mm_sim.Monitor.Obj_ref { obj = o.id; refs = o.refs })

(* Collapse [o] (refs = 1, whose only referent is its single live shadow
   [s]): merge every page [s] does not already shadow, splice [s] onto
   [o]'s parent, and kill [o]. Frames are not touched — their lifetime is
   carried by PTE map counts; only the ownership records move. *)
let collapse_into o s =
  Hashtbl.iter
    (fun vpn pfn ->
      if not (Hashtbl.mem s.pages vpn) then Hashtbl.replace s.pages vpn pfn)
    o.pages;
  Hashtbl.reset o.pages;
  s.parent <- o.parent;
  (match o.parent with
  | None -> ()
  | Some gp ->
    (* [s] inherits [o]'s reference on the grandparent: no count change. *)
    gp.children <- s :: List.filter (fun c -> not (c == o)) gp.children);
  o.parent <- None;
  o.children <- [];
  o.refs <- 0;
  o.dead <- true;
  emit (Mm_sim.Monitor.Obj_collapsed { obj = o.id; into = s.id });
  emit (Mm_sim.Monitor.Obj_destroyed { obj = o.id })

let rec unref o =
  if o.dead then invalid_arg "Vm_object.unref: dead object";
  o.refs <- o.refs - 1;
  if o.refs < 0 then invalid_arg "Vm_object.unref: negative refcount";
  emit (Mm_sim.Monitor.Obj_unref { obj = o.id; refs = o.refs });
  if o.refs = 0 then begin
    let p = o.parent in
    (match p with
    | None -> ()
    | Some gp -> gp.children <- List.filter (fun c -> not (c == o)) gp.children);
    o.parent <- None;
    o.dead <- true;
    Hashtbl.reset o.pages;
    emit (Mm_sim.Monitor.Obj_destroyed { obj = o.id });
    match p with None -> () | Some gp -> unref gp
  end
  else if o.refs = 1 then
    (* A chain parent down to its last referent: if that referent is a
       shadow, the chain hop is no longer needed — collapse. (If the one
       referent is an address space holding [o] as its top, [o] has no
       children and nothing happens.) *)
    match o.children with [ s ] -> collapse_into o s | _ -> ()

(* -- Page slots -- *)

let install o ~vpn ~pfn =
  if o.dead then invalid_arg "Vm_object.install: dead object";
  Hashtbl.replace o.pages vpn pfn

(* Chain walk: the youngest record wins. *)
let lookup o ~vpn =
  let rec go o =
    match Hashtbl.find_opt o.pages vpn with
    | Some pfn -> Some (o, pfn)
    | None -> ( match o.parent with None -> None | Some p -> go p)
  in
  go o

(* Drop the youngest record for [vpn], wherever it lives in the chain
   (the frame's last mapping went away). *)
let forget o ~vpn =
  match lookup o ~vpn with
  | None -> ()
  | Some (holder, _) -> Hashtbl.remove holder.pages vpn

(* Claim [vpn] for the chain top: a COW fault resolved in place (the
   frame's other referents are gone), so ownership moves from whichever
   chain object held the page to the faulting space's top object. *)
let promote o ~vpn =
  match lookup o ~vpn with
  | None -> ()
  | Some (holder, pfn) ->
    if not (holder == o) then begin
      Hashtbl.remove holder.pages vpn;
      Hashtbl.replace o.pages vpn pfn
    end

(* fork: push one fresh shadow per side. The old top [base] keeps its
   pages, becomes the shared chain parent of both shadows, and loses the
   address space's direct reference (handed to the shadows). Returns
   (parent's new top, child's new top). *)
let fork_push base =
  let sp = shadow base in
  let sc = shadow base in
  unref base;
  (sp, sc)

(* -- The anonymous/shadow pager provider --

   Anonymous pages have no named backing store; paged out, they live on a
   swap partition. [page_index] is therefore the swap block: [put_pages]
   allocates blocks and returns them (the caller records each in the PTE
   as the swapped location), [get_page] reads a block back into a fresh
   frame and frees it. Costs are exactly the historical swap-out /
   swap-in arms' costs, so routing [Mm] through the pager changes no
   simulated cycle. *)

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let pager ~dev ~phys =
  {
    Pager.name = "anon";
    get_page =
      (fun ~page_index ->
        charge Mm_sim.Cost.page_alloc;
        let frame = Mm_phys.Phys.alloc phys ~kind:Mm_phys.Frame.Anon () in
        frame.Mm_phys.Frame.contents <-
          Blockdev.read_page dev ~block:page_index;
        Blockdev.free_block dev ~block:page_index;
        frame);
    put_pages =
      (fun pages ->
        List.map
          (fun (_, contents) ->
            let block = Blockdev.alloc_block dev in
            (* The injected reclaim mutant "skips the dirty writeback":
               the block is reserved but the content token never reaches
               the device, so the swap-in reads back zero. *)
            let contents =
              if Pager.mutant_reclaim_skip_writeback () then 0 else contents
            in
            Blockdev.write_page dev ~block ~contents;
            block)
          pages);
    has_page = (fun ~page_index -> Blockdev.has_block dev ~block:page_index);
    dealloc = (fun () -> ());
  }
