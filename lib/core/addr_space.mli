(** The transactional interface to program the MMU — the paper's central
    contribution (Fig 4).

    [lock] runs the configured locking protocol (CortenMM_rw, Fig 5, or
    CortenMM_adv, Fig 6) over the page-table hierarchy and returns a
    cursor; the cursor's operations apply atomically within the locked
    range; [commit] performs the batched TLB shootdown and releases the
    locks in reverse acquisition order. Concurrent transactions serialize
    only when their ranges overlap. *)

open Mm_hal
module Pt = Mm_pt.Pt

(** The per-PTE metadata array attached to each PT page (Fig 3): the
    state that cannot live in the MMU. *)
type meta = {
  slots : Status.meta_entry array;
  mutable live : int;
  slab_handle : int;
}

type node = meta Pt.node

type t

exception Bad_range of string

exception Invariant of { ctx : string; what : string }
(** A broken kernel invariant: the page table or its metadata arrays
    contradict themselves (e.g. a dangling table entry, or resident
    metadata under an absent PTE). [ctx] names the operation that
    noticed; [what] the violated fact. Distinct from {!Bad_range} and
    [Invalid_argument] (caller contract) and from typed [Errno.t]
    results (user-visible outcomes). *)

val va_lo : int
(** Lowest user virtual address handed out by the VA allocator. *)

val create : ?va:Va_alloc.t -> Kernel.t -> Config.t -> t
val id : t -> int
val kernel : t -> Kernel.t
val config : t -> Config.t
val pt : t -> meta Pt.t
val tlb : t -> Mm_tlb.Tlb.t
val va_allocator : t -> Va_alloc.t
val page_size : t -> int

val stale_retries : t -> int
(** How many times the adv protocol's retry loop fired (Fig 6 L10-13). *)

val vm_object : t -> Vm_object.t
(** The top of this space's anonymous backing chain. Fresh spaces sit on
    a depth-one chain; [clone_for_fork] pushes a shadow per side; COW
    faults copy or promote pages into the top ({!Vm_object}). *)

val reset_vm_object : t -> unit
(** Replace the space's backing chain with a fresh anonymous object —
    exec support, called by {!Mm.destroy} after the old top is unmapped
    and unreffed so the same space can be repopulated. *)

val set_mutant_fork_skip_parent_wp : bool -> unit
(** Fault-injection mutant for the differential oracle: when armed,
    {!clone_for_fork} skips write-protecting the *parent's* private
    leaves, so post-fork parent writes land in still-shared frames and
    the child observes them. Domain-local; cleared by
    [Mm_workloads.Runner.reset_world_state]. *)

val mutant_fork_skip_parent_wp : unit -> bool

(** {2 Transactions}

    A transaction's lifecycle is [lock] → cursor operations → [commit],
    and every mutation of the address space happens inside one:

    {ol
    {- [lock t ~lo ~hi] runs the configured locking protocol over the
       page-table hierarchy and returns a {!cursor}. On return the
       calling CPU has exclusive ownership of every PT page that can
       affect [lo, hi): no other transaction whose range overlaps can
       complete its own [lock] until this cursor commits (the protocols'
       property P1 — checked abstractly by [Mm_verif.Rw_model] /
       [Adv_model] and at runtime by [Mm_verif.Live]). [lock] may park
       the calling fiber while it waits for conflicting transactions.}
    {- Cursor operations ([query], [map], [mark], [unmap], …) apply
       under those locks. They may be freely mixed and see each other's
       effects; TLB invalidations they cause are *recorded*, not yet
       performed.}
    {- [commit c] performs the batched TLB shootdown (targeting exactly
       the CPUs recorded as touchers of the affected PT pages), releases
       every lock in reverse acquisition order, and invalidates the
       cursor.}}

    Rules: a cursor must be committed exactly once ([commit] on an
    already-committed cursor raises [Invalid_argument]); a committed
    cursor must not be used again; operations must stay within
    [lo, hi) (they raise {!Bad_range} otherwise). A fiber may nest
    transactions on *different* address spaces (fork holds a parent and
    a child cursor); nesting two overlapping transactions on the same
    space self-deadlocks.

    Prefer {!with_lock}, which commits on both normal return and
    exception — an exception raised mid-transaction still releases the
    locks and flushes the recorded invalidations, leaving the protocol
    state clean. *)

type cursor

val lock : t -> lo:int -> hi:int -> cursor
(** Run the locking protocol for [lo, hi) (page-aligned, non-empty;
    raises {!Bad_range} otherwise) and return the transaction's cursor. *)

val commit : cursor -> unit
(** The RCursor Drop (Fig 4 L23): batched TLB shootdown, then release
    all locks in reverse order. A cursor must be committed exactly once. *)

val with_lock : t -> lo:int -> hi:int -> (cursor -> 'a) -> 'a
(** [lock], run the function, [commit] (also on exception). *)

val cursor_range : cursor -> int * int
val cursor_covering_level : cursor -> int

(** {2 The basic operations (Fig 4)} *)

val query : cursor -> int -> Status.t
(** Status of the virtual page at an address within the cursor's range. *)

val map :
  cursor ->
  vaddr:int ->
  frame:Mm_phys.Frame.t ->
  perm:Perm.t ->
  ?level:int ->
  ?origin:Status.origin ->
  unit ->
  unit
(** Map a physical frame (or, with [level] > 1, a huge block) at [vaddr],
    replacing any existing leaf; records the reverse mapping and installs
    the caller's TLB entry. *)

val mark : cursor -> lo:int -> hi:int -> Status.t -> unit
(** Set the status of a range (virtually allocate it), clearing whatever
    was there — one upper-level metadata entry can stand for a whole
    aligned slot. The status must be a virtually-allocated one. Marks
    carry the default NUMA policy; use {!update_policy} to attach a
    different one. *)

val update_policy : cursor -> lo:int -> hi:int -> Numa.policy -> unit
(** The single policy-update path: rewrite the NUMA policy stored in the
    virtually-allocated slots of the range (paper §4.5). Used both by
    mmap-with-policy (a [mark] followed by [update_policy]) and by mbind;
    mbind semantics throughout — resident pages are not migrated, and
    slots that are not virtually allocated are left untouched. *)

val policy_at : cursor -> int -> Numa.policy
(** The policy recorded for an unmapped page (the fault path's input). *)

val unmap : cursor -> lo:int -> hi:int -> unit
(** Clear the range: present leaves are unmapped (releasing sole-owner
    anonymous frames), marks and swap slots are dropped, and PT pages
    that become empty are removed — RCU-deferred under the adv protocol
    (Fig 6 L29-35), direct under rw. *)

val protect : cursor -> lo:int -> hi:int -> Perm.t -> unit
(** Change permissions over the range, preserving mappings and marks
    (mprotect); the COW bit of present leaves is preserved. *)

val remap_pte : cursor -> vaddr:int -> pfn:int -> perm:Perm.t -> unit
(** Raw PTE rewrite of one present page — COW breaks and fork's
    write-protect pass, where [protect]'s COW-preservation does not fit. *)

val set_swapped :
  cursor -> vaddr:int -> dev:Blockdev.t -> block:int -> perm:Perm.t -> unit
(** Record a swapped-out page (the slot must be absent). *)

val record_toucher : cursor -> vaddr:int -> unit
(** Note the calling CPU as a TLB holder of the page's PT node. *)

val iter_slots : cursor -> lo:int -> hi:int -> (int -> int -> Status.t -> unit) -> unit
(** Enumerate non-invalid slots as [(vaddr, bytes, status)] — address-
    space enumeration by page-table walk (the paper's §6.2 worst case). *)

val move_range : cursor -> old_lo:int -> old_hi:int -> new_lo:int -> unit
(** Relocate the pages of the old range to [new_lo] (mremap's move):
    frames keep their identity and map counts, marks and swap slots are
    copied, old TLB entries are flushed at commit. The cursor must cover
    both ranges. *)

val clone_for_fork : cursor -> cursor -> unit
(** Fork: stream-copy the parent's page-table subtree (PTE and metadata
    arrays) into the empty child, write-protecting private mappings on
    both sides (COW) and duplicating swap slots. Both cursors must cover
    the full address space. *)

val promote_huge : cursor -> vaddr:int -> bool
(** Promote a fully-populated level-1 PT page of uniform, singly-mapped
    anonymous pages into one 2 MiB huge leaf (khugepaged-style; copies
    into a fresh physically-contiguous block). The cursor must cover the
    parent (lock a range spanning two level-2 slots). *)

val l1_full : t -> int -> bool
(** Lock-free peek: is the leaf PT page of [vaddr] fully populated? *)

val origin_at : cursor -> int -> Status.meta_entry

(** {2 Accounting and invariants} *)

type mem_stats = {
  pt_pages : int;
  pt_bytes : int;
  meta_arrays : int;
  meta_bytes : int;
}

val mem_stats : t -> mem_stats

val meta_bytes_upper_bound : t -> int
(** Fig 22's upper bound: every PT page with a fully populated array. *)

val check_well_formed : t -> unit
(** The Fig 12 page-table well-formedness invariant; raises
    {!Mm_pt.Pt.Ill_formed} on violation. *)
