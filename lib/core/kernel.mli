(** Shared kernel context: physical memory, the global RCU domain, and
    the anonymous-page reverse map (paper §4.5). *)

type t = {
  phys : Mm_phys.Phys.t;
  isa : Mm_hal.Isa.t;
  ncpus : int;
  rcu : Mm_sim.Rcu_s.t;
  anon_rmap : (int, Pager.Mapper_set.t) Hashtbl.t;
  mutable next_asp_id : int;
  mutable wired_pages : int;
  mutable wired_limit : int;
  pkru_access_deny : int array;
  pkru_write_deny : int array;
}

val create : ?isa:Mm_hal.Isa.t -> ?numa_nodes:int -> ncpus:int -> unit -> t
val fresh_asp_id : t -> int

val set_wired_limit : t -> pages:int -> unit
(** Cap on mlock-wired pages (RLIMIT_MEMLOCK); exceeding it makes
    [Mm.mlock_r] fail with [EPERM]. Default: unlimited. *)

val wired_pages : t -> int

val rmap_add : t -> pfn:int -> asp_id:int -> vaddr:int -> unit
val rmap_remove : t -> pfn:int -> asp_id:int -> vaddr:int -> unit

val rmap_of : t -> pfn:int -> (int * int) list
(** Mappers of an anonymous frame as [(address-space id, vaddr)] pairs.
    Reverse mappings are hints: re-validate through a transaction. *)

val rmap_set : t -> pfn:int -> Pager.Mapper_set.t option
(** The frame's raw reverse-mapping set (shared {!Pager.Mapper_set}
    container, same as the file mapper tree). *)

val page_size : t -> int
val numa_nodes : t -> int

val node_of_cpu : t -> cpu:int -> int
(** The NUMA node a CPU belongs to (contiguous striping). *)

(** {2 Intel MPK (x86-64 only)} *)

val supports_mpk : t -> bool

val wrpkru :
  t -> cpu:int -> key:int -> deny_access:bool -> deny_write:bool -> unit
(** Set a protection key's denial bits in the CPU's PKRU register — an
    unprivileged register write, no syscall or TLB flush needed. *)

val pkru_denies : t -> cpu:int -> key:int -> write:bool -> bool
