(* A kswapd-style swap daemon: reclaim resident anonymous pages to a swap
   device using a second-chance (clock) policy over the hardware accessed
   bits.

   Each pass scans the present 4 KiB anonymous leaves of an address space:
   a page whose accessed bit is set gets a second chance (the bit is
   cleared, as kswapd's clock hand does); a cold page (bit already clear)
   is swapped out through the transactional interface. Hot pages that are
   touched between passes have their bit set again by the MMU walk, so
   they survive; cold pages go to disk and fault back in transparently. *)

module Pt = Mm_pt.Pt
module Geometry = Mm_hal.Geometry
module Pte = Mm_hal.Pte

type stats = {
  mutable scanned : int;
  mutable second_chances : int;
  mutable swapped : int;
}

let fresh_stats () = { scanned = 0; second_chances = 0; swapped = 0 }

(* Mirror a pass's increments into the metrics registry so reclaim
   activity shows up in [--report]/[--json] like every other subsystem.
   Guarded by the trace session (PR-1's zero-perturbation rule). *)
let note_pass ~scanned ~second_chances ~swapped =
  if Mm_obs.Trace.on () then begin
    Mm_obs.Metrics.add (Mm_obs.Metrics.counter "swapd.scanned") scanned;
    Mm_obs.Metrics.add
      (Mm_obs.Metrics.counter "swapd.second_chances")
      second_chances;
    Mm_obs.Metrics.add (Mm_obs.Metrics.counter "swapd.swapped") swapped
  end

(* One clock pass: reclaim up to [target] pages. Candidate discovery walks
   the page table (a streaming scan, like kswapd's LRU walk); the actual
   reclaim of each page is its own transaction, so faults proceed
   concurrently with the scan. *)
let run_once ?(stats = fresh_stats ()) asp ~dev ~target =
  let pt = Addr_space.pt asp in
  let ps = Addr_space.page_size asp in
  (* Collect candidates lock-free; re-validation happens inside
     [Mm.swap_out]'s transaction. *)
  let cold = ref [] in
  let hot = ref [] in
  Pt.iter_leaves pt (Pt.root pt) (fun vaddr level pte ->
      if level = 1 then
        match pte with
        | Pte.Leaf { perm; accessed; _ } when not perm.Mm_hal.Perm.cow ->
          stats.scanned <- stats.scanned + 1;
          if accessed then hot := vaddr :: !hot else cold := vaddr :: !cold
        | Pte.Leaf _ | Pte.Absent | Pte.Table _ -> ());
  (* Second chance: strip the accessed bits of hot pages so they must be
     re-touched to survive the next pass. The stripped pages' TLB entries
     must be flushed — a TLB hit bypasses the page walk and would never
     set the bit again (this is why kswapd batches a flush after clearing
     reference bits). *)
  let stripped = ref [] in
  List.iter
    (fun vaddr ->
      stats.second_chances <- stats.second_chances + 1;
      let node = Pt.walk_opt pt ~to_level:1 vaddr in
      if node.Pt.level = 1 then begin
        let idx = Pt.index pt ~level:1 ~vaddr in
        match Pt.get pt node idx with
        | Pte.Leaf ({ accessed = true; _ } as l) ->
          Pt.set pt node idx (Pte.Leaf { l with accessed = false });
          stripped := (vaddr / ps) :: !stripped
        | Pte.Leaf _ | Pte.Absent | Pte.Table _ -> ()
      end)
    !hot;
  (if !stripped <> [] && Mm_sim.Engine.in_fiber () then
     let ncpus = (Addr_space.kernel asp).Kernel.ncpus in
     let tlb = Addr_space.tlb asp in
     if List.length !stripped > 64 then
       Mm_tlb.Tlb.shootdown_full tlb ~targets:(Array.make ncpus true)
     else
       Mm_tlb.Tlb.shootdown tlb ~targets:(Array.make ncpus true)
         ~vpns:!stripped);
  (* Reclaim cold pages until the target is met. *)
  let swapped = ref 0 in
  List.iter
    (fun vaddr ->
      if !swapped < target && Mm.swap_out asp ~vaddr ~dev then begin
        incr swapped;
        stats.swapped <- stats.swapped + 1
      end)
    (List.rev !cold);
  note_pass
    ~scanned:(List.length !hot + List.length !cold)
    ~second_chances:(List.length !hot) ~swapped:!swapped;
  !swapped

(* Run passes until [target] pages are reclaimed or no progress is made
   (two consecutive dry passes: everything left is hot or unreclaimable). *)
let reclaim ?(stats = fresh_stats ()) asp ~dev ~target =
  let rec go total dry =
    if total >= target || dry >= 2 then total
    else
      let got = run_once ~stats asp ~dev ~target:(target - total) in
      go (total + got) (if got = 0 then dry + 1 else 0)
  in
  go 0 0
