(** The unified backing-store surface: anonymous/swap, file and shm
    providers all implement one four-operation pager record (DragonFly
    [pagerops] style), and both reverse mappings (file mapper tree,
    anonymous rmap) share one {!Mapper_set} container. *)

type mapping = {
  asp_id : int;  (** the mapping address space *)
  map_vaddr : int;  (** where in that space the object is mapped *)
  file_offset : int;  (** offset into the backing object (0 for anon) *)
  len : int;  (** bytes mapped *)
}

(** Shared reverse-mapping set, used by {!File} for its mapper tree and
    by {!Kernel} for the anonymous rmap. Enumeration order is
    newest-first (insertion conses), matching the historical
    [File.mappers] list exactly. *)
module Mapper_set : sig
  type t

  val create : unit -> t
  val add : t -> mapping -> unit

  val remove : t -> asp_id:int -> map_vaddr:int -> unit
  (** Drop every record matching the [(asp_id, map_vaddr)] key. *)

  val to_list : t -> mapping list
  val count : t -> int
  val is_empty : t -> bool
  val iter : t -> (mapping -> unit) -> unit
  val exists : t -> (mapping -> bool) -> bool
  val clear : t -> unit
end

type ops = {
  name : string;
  get_page : page_index:int -> Mm_phys.Frame.t;
      (** Fault a page in from the backing store. [page_index] is the
          provider's stable key: a page-cache index for file/shm, a swap
          block for the anonymous pager. *)
  put_pages : (int * int) list -> int list;
      (** Page [(key, contents)] pairs out; returns the stable keys the
          pages now live at (fresh swap blocks for the anonymous pager,
          the unchanged indexes for file pagers). *)
  has_page : page_index:int -> bool;
      (** Is the page present in the backing store (cache or swap)? *)
  dealloc : unit -> unit;
      (** Release the provider's backing resources. *)
}

val set_mutant_reclaim_skip_writeback : bool -> unit
(** Arm/disarm the injected reclaim bug ([put_pages] skips the dirty
    writeback) on the calling domain — the differential oracle's
    [--reclaim-mutant] CI gate. *)

val mutant_reclaim_skip_writeback : unit -> bool
