(** Simulated file objects with a page cache, backing mmaped files and
    shared anonymous memory (shm is a kernel-internal file, §4.5).
    Written-back contents persist in a backing ("disk") store, so pages
    dropped by reclaim refault with the last written-back data. *)

type kind = Regular of string | Shm

type mapper = Pager.mapping = {
  asp_id : int;
  map_vaddr : int;
  file_offset : int;
  len : int;
}

type t

val io_read_cost : int

val create : kind:kind -> size:int -> t
val regular : name:string -> size:int -> t
val shm : size:int -> t

val page_token : t -> page_index:int -> int
(** The deterministic content token of a file page (for verification). *)

val get_page : t -> Mm_phys.Phys.t -> page_index:int -> Mm_phys.Frame.t
(** Page-cache frame for the index; first use reads it from "disk"
    (regular files) or zeroes it (shm); written-back pages refault with
    their stored contents. *)

val lookup_page : t -> page_index:int -> Mm_phys.Frame.t option
val mark_dirty : t -> page_index:int -> unit

val writeback : t -> int
(** Write all dirty pages back to the backing store; returns how many. *)

val drop_page : t -> Mm_phys.Phys.t -> page_index:int -> unit
(** Release one cache frame (reclaim); the caller must have unmapped it
    from every address space first. A later access refaults it. *)

val add_mapper : t -> mapper -> unit
val remove_mapper : t -> asp_id:int -> map_vaddr:int -> unit

val mappers : t -> mapper list
(** The file-side reverse mapping ("the file object contains a tree of
    all AddrSpaces that map the file", §4.5). *)

val mapper_set : t -> Pager.Mapper_set.t
(** The underlying shared reverse-mapping set (for the page-out
    daemon). *)

val cached_pages : t -> int

val cached_page_indexes : t -> int list
(** Resident cache page indexes, sorted (a deterministic reclaim scan
    order). *)

val needs_writeback : t -> page_index:int -> bool
(** Would dropping this cache page lose data? True when it is
    dirty-marked or its contents differ from the backing store. *)

val dirty_pages : t -> int
val id : t -> int
val reset_ids : unit -> unit
val size : t -> int
val name : t -> string

val pager : t -> Mm_phys.Phys.t -> Pager.ops
(** The file/shm pager provider over this object's page cache. *)
