(** Simulated block device used as swap space; page contents are integer
    tokens so swap round-trips are verifiable. *)

type t

exception Device_full

val write_cost : int
val read_cost : int

val create : ?nblocks:int -> name:string -> unit -> t
val alloc_block : t -> int
val write_page : t -> block:int -> contents:int -> unit

val read_page : t -> block:int -> int
(** Raises [Invalid_argument] for a block never written. *)

val free_block : t -> block:int -> unit
val has_block : t -> block:int -> bool
val used_blocks : t -> int
val writes : t -> int
val reads : t -> int
val name : t -> string
val reset_ids : unit -> unit
