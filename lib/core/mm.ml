(* The memory-management operations (paper Fig 8): mmap, munmap, mprotect,
   msync, the page-fault handler, fork with copy-on-write, swapping, and
   memory accesses through the TLB. Every MMU manipulation goes through the
   transactional interface — each operation is one locked transaction. *)

open Mm_hal
module Pt = Mm_pt.Pt

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

type backing =
  | Anon
  | File_private of File.t * int (* file, offset *)
  | Shared of File.t * int (* shared file / shm object *)

exception Enomem

type fault_outcome = Handled | Sigsegv

let status_of_backing backing perm =
  match backing with
  | Anon -> Status.Private_anon perm
  | File_private (file, offset) -> Status.Private_file { file; offset; perm }
  | Shared (file, offset) -> Status.Shared_anon { shm = file; offset; perm }

(* -- mmap (Fig 8 do_syscall_mmap) -- *)

let mmap asp ?addr ?(backing = Anon) ?(policy = Numa.Default) ~len ~perm () =
  charge Mm_sim.Cost.syscall;
  let ps = Addr_space.page_size asp in
  let len = Mm_util.Align.up len ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  let lo =
    match addr with
    | Some a -> a
    | None -> Va_alloc.alloc (Addr_space.va_allocator asp) ~cpu ~len ()
  in
  let hi = lo + len in
  Addr_space.with_lock asp ~lo ~hi (fun c ->
      (* "if rcursor.query(range) { /* necessary checks */ }" — only an
         explicitly requested address can collide with an existing mapping
         (POSIX fixed mappings replace it; mark below clears). A fresh
         VA-allocator address needs no check. *)
      (match addr with
      | Some _ -> ignore (Addr_space.query c lo)
      | None -> ());
      Addr_space.mark c ~lo ~hi (status_of_backing backing perm);
      (* A non-default placement policy goes through the single policy
         update path (same one mbind uses); the common default-policy
         mmap pays nothing extra. *)
      if policy <> Numa.Default then
        Addr_space.update_policy c ~lo ~hi policy);
  lo

(* -- munmap -- *)

let munmap asp ~addr ~len =
  charge Mm_sim.Cost.syscall;
  let ps = Addr_space.page_size asp in
  let len = Mm_util.Align.up len ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + len) (fun c ->
      Addr_space.unmap c ~lo:addr ~hi:(addr + len));
  Va_alloc.free (Addr_space.va_allocator asp) ~cpu ~addr ~len

(* -- mprotect -- *)

let mprotect asp ~addr ~len ~perm =
  charge Mm_sim.Cost.syscall;
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + len) (fun c ->
      Addr_space.protect c ~lo:addr ~hi:(addr + len) perm)

(* -- mremap -- *)

exception Mremap_failed of string

(* Move/resize a mapping. Shrinking unmaps the tail; growing allocates a
   new range and relocates the pages (always MREMAP_MAYMOVE semantics).
   The move is one transaction over the hull of both ranges — the
   covering PT page is their common ancestor, which is also why mremap of
   distant ranges is expensive (it serializes like a fork against
   concurrent activity). Huge-page leaves in the old range are not
   supported (split or unmap them first). *)
let mremap asp ~addr ~old_len ~new_len =
  charge Mm_sim.Cost.syscall;
  let ps = Addr_space.page_size asp in
  let old_len = Mm_util.Align.up old_len ps in
  let new_len = Mm_util.Align.up new_len ps in
  if old_len = 0 || new_len = 0 then raise (Mremap_failed "empty range");
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  if new_len = old_len then addr
  else if new_len < old_len then begin
    (* Shrink in place. *)
    Addr_space.with_lock asp ~lo:(addr + new_len) ~hi:(addr + old_len)
      (fun c -> Addr_space.unmap c ~lo:(addr + new_len) ~hi:(addr + old_len));
    addr
  end
  else begin
    (* Grow: relocate to a fresh range (MAYMOVE). *)
    let new_addr =
      Va_alloc.alloc (Addr_space.va_allocator asp) ~cpu ~len:new_len ()
    in
    let lo = min addr new_addr in
    let hi = max (addr + old_len) (new_addr + new_len) in
    Addr_space.with_lock asp ~lo ~hi (fun c ->
        (* The grown tail starts unpopulated; inherit the head's
           protection for its on-demand mark. *)
        let tail_perm =
          match Addr_space.query c addr with
          | Status.Invalid -> None
          | s -> Status.perm s
        in
        Addr_space.move_range c ~old_lo:addr ~old_hi:(addr + old_len)
          ~new_lo:new_addr;
        match tail_perm with
        | Some perm ->
          let p =
            if perm.Perm.cow then
              Perm.with_write (Perm.with_cow perm false) true
            else perm
          in
          Addr_space.mark c ~lo:(new_addr + old_len) ~hi:(new_addr + new_len)
            (Status.Private_anon p)
        | None -> ());
    Va_alloc.free (Addr_space.va_allocator asp) ~cpu ~addr ~len:old_len;
    new_addr
  end

(* -- madvise(MADV_DONTNEED) -- *)

(* Drop the resident anonymous pages of a range without unmapping it: the
   frames are released, the virtual allocation stays, and refaults read
   zero-filled pages. *)
let madvise_dontneed asp ~addr ~len =
  charge Mm_sim.Cost.syscall;
  let ps = Addr_space.page_size asp in
  let len = Mm_util.Align.up len ps in
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + len) (fun c ->
      let npages = len / ps in
      for i = 0 to npages - 1 do
        let v = addr + (i * ps) in
        match Addr_space.query c v with
        | Status.Mapped { perm; _ } -> (
          match Addr_space.origin_at c v with
          | Status.M_resident Status.O_anon ->
            (* A COW-protected page's original protection was writable;
               restore it for the refault. *)
            let p =
              if perm.Perm.cow then
                Perm.with_write (Perm.with_cow perm false) true
              else perm
            in
            Addr_space.unmap c ~lo:v ~hi:(v + ps);
            Addr_space.mark c ~lo:v ~hi:(v + ps) (Status.Private_anon p)
          | _ -> () (* file-backed and shared pages are left alone *))
        | _ -> ()
      done)

(* -- The page-fault handler (Fig 8 page_fault_handler) -- *)

let page_fault asp ~vaddr ~write =
  charge Mm_sim.Cost.trap;
  let tracing = Mm_obs.Trace.on () && Mm_sim.Engine.in_fiber () in
  let t0 = if tracing then Mm_sim.Engine.now () else 0 in
  let kernel = Addr_space.kernel asp in
  let phys = kernel.Kernel.phys in
  let ps = Addr_space.page_size asp in
  let page = Mm_util.Align.down vaddr ps in
  let outcome =
    Addr_space.with_lock asp ~lo:page ~hi:(page + ps) (fun c ->
      match Addr_space.query c page with
      | Status.Invalid -> Sigsegv
      | Status.Private_anon perm ->
        if not (Perm.allows perm ~write) then Sigsegv
        else begin
          (* Fault on a virtually allocated anonymous page: map a zeroed
             frame, allocated per the NUMA policy stored in the metadata
             (local node by default). *)
          charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_zero);
          let cpu =
            if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0
          in
          let local_node = Kernel.node_of_cpu kernel ~cpu in
          let node =
            Numa.choose
              ~policy:(Addr_space.policy_at c page)
              ~local_node ~vpn:(page / ps)
              ~nnodes:(Kernel.numa_nodes kernel)
          in
          if node <> local_node then charge Mm_sim.Cost.numa_remote_alloc;
          let frame =
            Mm_phys.Phys.alloc phys ~kind:Mm_phys.Frame.Anon ~node ()
          in
          Addr_space.map c ~vaddr:page ~frame ~perm ~origin:Status.O_anon ();
          Handled
        end
      | Status.Private_file { file; offset; perm } ->
        if not (Perm.allows perm ~write) then Sigsegv
        else if write then begin
          (* Private write: immediately break from the page cache. *)
          let fpager = File.pager file phys in
          let cache = fpager.Pager.get_page ~page_index:(offset / ps) in
          charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_copy);
          let frame = Mm_phys.Phys.alloc phys ~kind:Mm_phys.Frame.Anon () in
          frame.Mm_phys.Frame.contents <- cache.Mm_phys.Frame.contents;
          Addr_space.map c ~vaddr:page ~frame ~perm ~origin:Status.O_anon ();
          Handled
        end
        else begin
          (* Private read: share the page-cache frame, copy-on-write. *)
          let fpager = File.pager file phys in
          let cache = fpager.Pager.get_page ~page_index:(offset / ps) in
          let map_perm =
            Perm.with_cow (Perm.with_write perm false) perm.Perm.write
          in
          Addr_space.map c ~vaddr:page ~frame:cache ~perm:map_perm
            ~origin:(Status.O_file (file, offset))
            ();
          Handled
        end
      | Status.Shared_anon { shm; offset; perm } ->
        if not (Perm.allows perm ~write) then Sigsegv
        else begin
          let fpager = File.pager shm phys in
          let frame = fpager.Pager.get_page ~page_index:(offset / ps) in
          if write then File.mark_dirty shm ~page_index:(offset / ps);
          Addr_space.map c ~vaddr:page ~frame ~perm
            ~origin:(Status.O_shm (shm, offset))
            ();
          Handled
        end
      | Status.Swapped { dev; block; perm } ->
        if not (Perm.allows perm ~write) then Sigsegv
        else begin
          (* Swap the page back in through the anonymous pager (the swap
             block is the pager's page index; the read frees it). *)
          let apager = Vm_object.pager ~dev ~phys in
          let frame = apager.Pager.get_page ~page_index:block in
          Addr_space.map c ~vaddr:page ~frame ~perm ~origin:Status.O_anon ();
          Handled
        end
      | Status.Mapped { pfn; perm } ->
        if write && perm.Perm.cow then begin
          (* Fig 8 L25-35: copy-on-write break, resolved against the
             backing chain: the page's owning object is found by chain
             walk; the copy (or the reclaimed original) always ends up
             in the faulting space's top shadow. *)
          let frame = Mm_phys.Phys.frame phys pfn in
          if
            frame.Mm_phys.Frame.map_count = 1
            && frame.Mm_phys.Frame.kind = Mm_phys.Frame.Anon
            (* Page-cache frames are never reused in place: the cache
               itself keeps a reference. *)
          then begin
            (* The other side has gone: just restore write access, and
               promote the ownership record out of the shared chain
               parent — the page is exclusively ours again. *)
            let p = Perm.with_cow (Perm.with_write perm true) false in
            Addr_space.remap_pte c ~vaddr:page ~pfn ~perm:p;
            Vm_object.promote (Addr_space.vm_object asp) ~vpn:(page / ps);
            Handled
          end
          else begin
            charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_copy);
            let copy = Mm_phys.Phys.alloc phys ~kind:Mm_phys.Frame.Anon () in
            copy.Mm_phys.Frame.contents <- frame.Mm_phys.Frame.contents;
            let p = Perm.with_cow (Perm.with_write perm true) false in
            (* map over the existing PTE releases the shared frame; the
               original's record stays with the chain parent (the other
               side still reaches it), the copy joins our top shadow
               inside [Addr_space.map]. *)
            Addr_space.map c ~vaddr:page ~frame:copy ~perm:p
              ~origin:Status.O_anon ();
            Handled
          end
        end
        else if write && not perm.Perm.write then Sigsegv
        else if not perm.Perm.read then Sigsegv
        else begin
          (* Spurious fault (racing fault already mapped the page, or a
             stale TLB): reinstall the translation. *)
          Addr_space.record_toucher c ~vaddr:page;
          if Mm_sim.Engine.in_fiber () then
            Mm_tlb.Tlb.install (Addr_space.tlb asp)
              ~cpu:(Mm_sim.Engine.cpu_id ()) ~vpn:(page / ps) ~pfn
              ~writable:(perm.Perm.write && not perm.Perm.cow)
              ~key:perm.Perm.mpk_key ();
          Handled
        end)
  in
  if tracing then begin
    let span = Mm_sim.Engine.now () - t0 in
    Mm_obs.Metrics.observe (Mm_obs.Metrics.histogram "fault.cycles") span;
    Mm_sim.Engine.obs (Mm_obs.Event.Page_fault { vaddr = page; write; span })
  end;
  outcome

(* -- Transparent huge pages (khugepaged-style promotion) -- *)

let promote_huge asp ~vaddr =
  let geo = (Addr_space.kernel asp).Kernel.isa.Isa.geo in
  let huge = Geometry.coverage geo ~level:2 in
  let base = Mm_util.Align.down vaddr huge in
  let ps = Addr_space.page_size asp in
  (* Lock a range spanning into the next slot so the covering PT page is
     the level-2 one (the parent slot must be writable). *)
  Addr_space.with_lock asp ~lo:base ~hi:(base + huge + ps) (fun c ->
      Addr_space.promote_huge c ~vaddr:base)

(* -- Memory access: the MMU walk + TLB front end -- *)

exception Fault of int (* vaddr that faulted with Sigsegv *)

(* One user-level access. TLB hit: free. Miss: hardware page walk; if the
   translation is present and permits the access, install it; otherwise
   take a page fault and retry once. The typed variant returns the fault
   as a value so backends expose it at the interface boundary. *)
let touch_r asp ~vaddr ~write =
  let t = Addr_space.tlb asp in
  let ps = Addr_space.page_size asp in
  let vpn = vaddr / ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  charge Mm_sim.Cost.cache_hit;
  (* Hardware checks the PKRU register against the translation's
     protection key on every access, TLB hit or miss. *)
  let pkru_denies key =
    key <> 0 && Kernel.pkru_denies (Addr_space.kernel asp) ~cpu ~key ~write
  in
  match Mm_tlb.Tlb.lookup t ~cpu ~vpn ~write with
  | Some (_, key) ->
    if pkru_denies key then Error (Errno.SIGSEGV vaddr) else Ok ()
  | None ->
    (* Hardware walk: lock-free reads down the page table. *)
    let pt = Addr_space.pt asp in
    let rec walk (node : 'm Pt.node) =
      let idx = Pt.index pt ~level:node.Pt.level ~vaddr in
      match Pt.get pt node idx with
      | Pte.Leaf { pfn; perm; _ } when Perm.allows perm ~write ->
        let geo = (Addr_space.kernel asp).Kernel.isa.Isa.geo in
        let off =
          (vaddr mod Geometry.coverage geo ~level:node.Pt.level) / ps
        in
        (* COW pages are mapped read-only; a write access must fault. *)
        if write && perm.Perm.cow then `Miss
        else if pkru_denies perm.Perm.mpk_key then `Pkru
        else begin
          node.Pt.touched <- node.Pt.touched lor (1 lsl cpu);
          Pt.set_accessed pt node idx;
          Mm_tlb.Tlb.install t ~cpu ~vpn ~pfn:(pfn + off)
            ~writable:(perm.Perm.write && not perm.Perm.cow)
            ~key:perm.Perm.mpk_key ();
          `Hit
        end
      | Pte.Leaf _ -> `Miss
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn pt pfn with
        | Some child -> walk child
        | None -> `Miss)
      | Pte.Absent -> `Miss
    in
    (match walk (Pt.root pt) with
    | `Hit -> Ok ()
    | `Pkru -> Error (Errno.SIGSEGV vaddr)
    | `Miss -> (
      match page_fault asp ~vaddr ~write with
      | Handled ->
        (* Auto-THP: when the fault filled its leaf PT page, promote the
           2 MiB region in a fresh transaction. *)
        if
          (Addr_space.config asp).Config.thp
          && Addr_space.l1_full asp vaddr
        then ignore (promote_huge asp ~vaddr);
        Ok ()
      | Sigsegv -> Error (Errno.SIGSEGV vaddr)))

let touch asp ~vaddr ~write =
  match touch_r asp ~vaddr ~write with
  | Ok () -> ()
  | Error (Errno.SIGSEGV v) -> raise (Fault v)
  | Error _ -> raise (Fault vaddr)

let touch_range_r asp ~addr ~len ~write =
  let ps = Addr_space.page_size asp in
  let rec go v =
    if v >= addr + len then Ok ()
    else
      match touch_r asp ~vaddr:v ~write with
      | Ok () -> go (v + ps)
      | Error _ as e -> e
  in
  go addr

let touch_range asp ~addr ~len ~write =
  match touch_range_r asp ~addr ~len ~write with
  | Ok () -> ()
  | Error (Errno.SIGSEGV v) -> raise (Fault v)
  | Error _ -> raise (Fault addr)

(* -- fork (copy-on-write address-space duplication) -- *)

let user_range asp =
  let geo = (Addr_space.kernel asp).Kernel.isa.Isa.geo in
  (Addr_space.va_lo, Geometry.va_limit geo)

let fork parent =
  charge Mm_sim.Cost.syscall;
  let kernel = Addr_space.kernel parent in
  let child =
    Addr_space.create
      ~va:(Va_alloc.clone (Addr_space.va_allocator parent))
      kernel (Addr_space.config parent)
  in
  let lo, hi = user_range parent in
  (* CortenMM enumerates the address space by walking the page table —
     the paper's worst case (§6.2, LMbench fork). Both transactions cover
     the full range (covering = the roots); the clone streams one copy per
     PT page, write-protecting private mappings on both sides. *)
  Addr_space.with_lock parent ~lo ~hi (fun pc ->
      Addr_space.with_lock child ~lo ~hi (fun cc ->
          Addr_space.clone_for_fork pc cc));
  child

(* -- exec / process teardown -- *)

let destroy asp =
  let lo, hi = user_range asp in
  Addr_space.with_lock asp ~lo ~hi (fun c -> Addr_space.unmap c ~lo ~hi);
  (* Drop the space's reference on its chain top. A parent object left
     with a single surviving shadow collapses into it, so a fork tree
     torn down child-by-child ends with the root space back on a
     depth-one chain (refcount 1). *)
  Vm_object.unref (Addr_space.vm_object asp);
  (* Leave the space on a fresh depth-one chain: exec destroys the old
     image and repopulates the same space (LMbench fork+exec). *)
  Addr_space.reset_vm_object asp

(* khugepaged: scan the address space and promote every qualifying
   region; returns the number promoted. *)

let khugepaged asp =
  let geo = (Addr_space.kernel asp).Kernel.isa.Isa.geo in
  let huge = Geometry.coverage geo ~level:2 in
  let candidates = ref [] in
  let lo, hi = user_range asp in
  Addr_space.with_lock asp ~lo ~hi (fun c ->
      Addr_space.iter_slots c ~lo ~hi (fun vaddr bytes status ->
          match status with
          | Status.Mapped _ when bytes < huge ->
            let base = Mm_util.Align.down vaddr huge in
            (match !candidates with
            | b :: _ when b = base -> ()
            | _ -> candidates := base :: !candidates)
          | _ -> ()));
  List.fold_left
    (fun n base -> if promote_huge asp ~vaddr:base then n + 1 else n)
    0 !candidates

(* -- msync: write back dirty shared pages -- *)

let msync_r _asp ~file =
  charge Mm_sim.Cost.syscall;
  Ok (File.writeback file)

(* -- Swapping -- *)

(* Swap one resident anonymous page out to [dev] through the anonymous
   pager. Returns false if the page is not a singly-mapped resident
   anonymous page (shared and COW pages are skipped, as simple swap
   daemons do) or is wired by mlock. The unmap runs inside the
   transaction, so the TLB shootdown commits before the frame can be
   reused — the no-reuse-before-flush invariant covers reclaim. *)
let swap_out asp ~vaddr ~dev =
  let ps = Addr_space.page_size asp in
  let page = Mm_util.Align.down vaddr ps in
  let kernel = Addr_space.kernel asp in
  Addr_space.with_lock asp ~lo:page ~hi:(page + ps) (fun c ->
      match Addr_space.query c page with
      | Status.Mapped { pfn; perm } -> (
        match Addr_space.origin_at c page with
        | Status.M_resident Status.O_anon ->
          let frame = Mm_phys.Phys.frame kernel.Kernel.phys pfn in
          if frame.Mm_phys.Frame.map_count <> 1 || frame.Mm_phys.Frame.wired
          then false
          else begin
            let contents = frame.Mm_phys.Frame.contents in
            let apager =
              Vm_object.pager ~dev ~phys:kernel.Kernel.phys
            in
            match apager.Pager.put_pages [ (0, contents) ] with
            | [ block ] ->
              Addr_space.unmap c ~lo:page ~hi:(page + ps);
              Addr_space.set_swapped c ~vaddr:page ~dev ~block ~perm;
              if Mm_sim.Monitor.on () then
                Mm_sim.Monitor.emit (Mm_sim.Monitor.Reclaim_page { pfn });
              true
            | _ -> false
          end
        | _ -> false)
      | _ -> false)

(* -- Reclaim of mapped file/shm pages -- *)

(* Revert one resident file-backed page to its unfaulted backing status:
   the PTE goes away (with its TLB shootdown committing before the
   transaction ends) but the mapping itself stays, so the next access
   refaults through the file pager. Returns false when the page is not a
   resident file/shm page. *)
let unmap_file_page asp ~vaddr =
  let ps = Addr_space.page_size asp in
  let page = Mm_util.Align.down vaddr ps in
  Addr_space.with_lock asp ~lo:page ~hi:(page + ps) (fun c ->
      match Addr_space.query c page with
      | Status.Mapped { perm; _ } -> (
        match Addr_space.origin_at c page with
        | Status.M_resident (Status.O_file (file, offset)) ->
          (* A COW-shared cache page was mapped read-only; the backing
             status keeps the original protection. *)
          let orig =
            if perm.Perm.cow then
              Perm.with_write (Perm.with_cow perm false) true
            else perm
          in
          Addr_space.unmap c ~lo:page ~hi:(page + ps);
          Addr_space.mark c ~lo:page ~hi:(page + ps)
            (Status.Private_file { file; offset; perm = orig });
          true
        | Status.M_resident (Status.O_shm (shm, offset)) ->
          Addr_space.unmap c ~lo:page ~hi:(page + ps);
          Addr_space.mark c ~lo:page ~hi:(page + ps)
            (Status.Shared_anon { shm; offset; perm });
          true
        | _ -> false)
      | _ -> false)

(* -- mlock / munlock: wire and unwire resident pages -- *)

(* POSIX-shaped failures: EINVAL for a malformed range, EPERM when the
   request would exceed the wired-page limit (RLIMIT_MEMLOCK), ENOMEM
   when part of the range is not mapped, EAGAIN when some pages could
   not be faulted in (frame exhaustion while populating). *)
let mlock_r asp ~addr ~len =
  let ps = Addr_space.page_size asp in
  if len <= 0 || addr < 0 || addr mod ps <> 0 then Error Errno.EINVAL
  else begin
    charge Mm_sim.Cost.syscall;
    let len = Mm_util.Align.up len ps in
    let npages = len / ps in
    let kernel = Addr_space.kernel asp in
    if
      kernel.Kernel.wired_limit <> max_int
      && kernel.Kernel.wired_pages + npages > kernel.Kernel.wired_limit
    then Error Errno.EPERM
    else begin
      (* mlock populates: fault every page of the range in. *)
      let populated =
        try touch_range_r asp ~addr ~len ~write:false
        with Mm_phys.Buddy.Out_of_memory -> Error Errno.EAGAIN
      in
      match populated with
      | Error (Errno.SIGSEGV _) -> Error Errno.ENOMEM (* unmapped range *)
      | Error _ as e -> e
      | Ok () ->
        let phys = kernel.Kernel.phys in
        Addr_space.with_lock asp ~lo:addr ~hi:(addr + len) (fun c ->
            for i = 0 to npages - 1 do
              let v = addr + (i * ps) in
              match Addr_space.query c v with
              | Status.Mapped { pfn; _ } ->
                let f = Mm_phys.Phys.frame phys pfn in
                if not f.Mm_phys.Frame.wired then begin
                  f.Mm_phys.Frame.wired <- true;
                  kernel.Kernel.wired_pages <-
                    kernel.Kernel.wired_pages + 1;
                  if Mm_sim.Monitor.on () then
                    Mm_sim.Monitor.emit (Mm_sim.Monitor.Page_wired { pfn })
                end
              | _ -> ()
            done);
        Ok ()
    end
  end

let munlock_r asp ~addr ~len =
  let ps = Addr_space.page_size asp in
  if len <= 0 || addr < 0 || addr mod ps <> 0 then Error Errno.EINVAL
  else begin
    charge Mm_sim.Cost.syscall;
    let len = Mm_util.Align.up len ps in
    let npages = len / ps in
    let kernel = Addr_space.kernel asp in
    let phys = kernel.Kernel.phys in
    Addr_space.with_lock asp ~lo:addr ~hi:(addr + len) (fun c ->
        for i = 0 to npages - 1 do
          let v = addr + (i * ps) in
          match Addr_space.query c v with
          | Status.Mapped { pfn; _ } ->
            let f = Mm_phys.Phys.frame phys pfn in
            if f.Mm_phys.Frame.wired then begin
              f.Mm_phys.Frame.wired <- false;
              kernel.Kernel.wired_pages <- kernel.Kernel.wired_pages - 1;
              if Mm_sim.Monitor.on () then
                Mm_sim.Monitor.emit (Mm_sim.Monitor.Page_unwired { pfn })
            end
          | _ -> ()
        done);
    Ok ()
  end

(* -- pkey_mprotect: tag a range with an MPK protection key (x86-64) -- *)

let pkey_mprotect asp ~addr ~len ~perm ~key =
  if not (Kernel.supports_mpk (Addr_space.kernel asp)) then
    invalid_arg "pkey_mprotect: ISA without protection keys";
  if key < 0 || key > 15 then invalid_arg "pkey_mprotect: key";
  mprotect asp ~addr ~len ~perm:(Perm.with_mpk perm key)

(* -- mbind: set the NUMA policy of a range (stored in the metadata) -- *)

let mbind asp ~addr ~len ~policy =
  charge Mm_sim.Cost.syscall;
  Addr_space.with_lock asp ~lo:addr ~hi:(addr + len) (fun c ->
      Addr_space.update_policy c ~lo:addr ~hi:(addr + len) policy)

(* -- Timer tick: drains the LATR buffers (paper §4.5) -- *)

let timer_tick asp =
  if Mm_sim.Engine.in_fiber () then
    Mm_tlb.Tlb.timer_tick (Addr_space.tlb asp) ~cpu:(Mm_sim.Engine.cpu_id ())

(* -- Simulated user write: updates the data token for COW verification -- *)

(* A page that vanishes between the touch and the locked query (another
   thread's munmap winning the race) is the same observable outcome as a
   fault on the access itself: a typed SIGSEGV, not a crash. *)

let write_value_r asp ~vaddr ~value =
  match touch_r asp ~vaddr ~write:true with
  | Error _ as e -> e
  | Ok () ->
    let ps = Addr_space.page_size asp in
    let page = Mm_util.Align.down vaddr ps in
    Addr_space.with_lock asp ~lo:page ~hi:(page + ps) (fun c ->
        match Addr_space.query c page with
        | Status.Mapped { pfn; _ } ->
          let frame =
            Mm_phys.Phys.frame (Addr_space.kernel asp).Kernel.phys pfn
          in
          frame.Mm_phys.Frame.contents <- value;
          Ok ()
        | _ -> Error (Errno.SIGSEGV page))

let write_value asp ~vaddr ~value =
  match write_value_r asp ~vaddr ~value with
  | Ok () -> ()
  | Error (Errno.SIGSEGV v) -> raise (Fault v)
  | Error _ -> raise (Fault vaddr)

let read_value_r asp ~vaddr =
  match touch_r asp ~vaddr ~write:false with
  | Error e -> Error e
  | Ok () ->
    let ps = Addr_space.page_size asp in
    let page = Mm_util.Align.down vaddr ps in
    Addr_space.with_lock asp ~lo:page ~hi:(page + ps) (fun c ->
        match Addr_space.query c page with
        | Status.Mapped { pfn; _ } ->
          Ok
            (Mm_phys.Phys.frame (Addr_space.kernel asp).Kernel.phys pfn)
              .Mm_phys.Frame.contents
        | _ -> Error (Errno.SIGSEGV page))

let read_value asp ~vaddr =
  match read_value_r asp ~vaddr with
  | Ok v -> v
  | Error (Errno.SIGSEGV v) -> raise (Fault v)
  | Error _ -> raise (Fault vaddr)

(* -- The typed syscall surface -- *)

(* Result-returning variants of the syscalls: malformed requests are
   classified as EINVAL before any simulated work, exhaustion as ENOMEM.
   All validation is host-side — a valid request charges exactly the
   cycles the exception-style entry point does. *)

let mmap_r asp ?addr ?backing ?policy ~len ~perm () =
  let ps = Addr_space.page_size asp in
  let bad_addr =
    match addr with Some a -> a < 0 || a mod ps <> 0 | None -> false
  in
  if len <= 0 || bad_addr then Error Errno.EINVAL
  else
    try Ok (mmap asp ?addr ?backing ?policy ~len ~perm ())
    with Enomem | Mm_phys.Buddy.Out_of_memory | Va_alloc.Va_exhausted ->
      Error Errno.ENOMEM

let munmap_r asp ~addr ~len =
  let ps = Addr_space.page_size asp in
  if len <= 0 || addr < 0 || addr mod ps <> 0 then Error Errno.EINVAL
  else Ok (munmap asp ~addr ~len)

let mprotect_r asp ~addr ~len ~perm =
  let ps = Addr_space.page_size asp in
  if len <= 0 || addr < 0 || addr mod ps <> 0 then Error Errno.EINVAL
  else Ok (mprotect asp ~addr ~len ~perm)
