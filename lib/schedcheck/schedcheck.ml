(* Schedule exploration for the concurrent core.

   One run: a small concurrent cursor workload — overlapping mmap /
   munmap / mprotect / touch over a fixed 16-page window, fork-clone,
   promote_huge over the window's 2 MiB region — executed on a world
   whose tie-break policy is controlled ({!Mm_sim.Sched}). During the
   run a {!Mm_verif.Live} checker consumes {!Mm_sim.Monitor} events and
   checks mutual exclusion, the transaction property (P1) and RCU grace
   periods against the protocols as implemented. Afterwards the final
   address-space state is compared page-by-page against a sequential
   reference replay of the same operations in their observed
   serialization order (P2 at the whole-run level).

   Every operation uses fixed explicit addresses, so the sequential
   replay is deterministic: the per-core VA allocator never chooses.
   Each workload op is effectively atomic at its *last* cursor commit
   (intermediate transactions of touch retries or fork only read or
   build private state), so ordering ops by the global sequence number
   of their last commit is a valid serialization to compare against.

   Exploration draws tie-break keys from a seeded policy per seed;
   violations shrink to a minimal key sequence (shorter prefix, fewer
   forced preemptions) that is saved as a {!Schedule} replay file. *)

module Perm = Mm_hal.Perm
module Engine = Mm_sim.Engine
module Monitor = Mm_sim.Monitor
module Sched = Mm_sim.Sched
open Cortenmm

let page = 4096
let win_pages = 16

(* 2 MiB aligned, so [Op_promote] scans the enclosing huge-page region
   (it never qualifies — the window is too small to fully populate — but
   the scan takes a cursor transaction over the whole 2 MiB range, the
   widest overlap in the workload). *)
let win_base = 0x4000_0000

(* -- Mutants: deliberately broken synchronization, for harness
   validation. The flags live in the simulated lock implementations. -- *)

type mutant = M_none | M_rw_skip_handoff | M_rcu_no_gp

let mutant_name = function
  | M_none -> "none"
  | M_rw_skip_handoff -> "rw-skip-handoff"
  | M_rcu_no_gp -> "rcu-no-gp"

let mutants = [ M_none; M_rw_skip_handoff; M_rcu_no_gp ]

let mutant_of_string s =
  match List.find_opt (fun m -> mutant_name m = s) mutants with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown mutant %S (valid: %s)" s
         (String.concat ", " (List.map mutant_name mutants)))

let set_mutant m =
  Mm_sim.Rwlock_s.set_mutant_skip_writer_handoff (m = M_rw_skip_handoff);
  Mm_sim.Rcu_s.set_mutant_no_grace_period (m = M_rcu_no_gp)

(* -- Workload -- *)

type op =
  | Op_mmap of { op_page : int; npages : int; writable : bool }
  | Op_munmap of { op_page : int; npages : int }
  | Op_mprotect of { op_page : int; npages : int; writable : bool }
  | Op_touch of { op_page : int; write : bool }
  | Op_fork
  | Op_promote

let op_to_string = function
  | Op_mmap { op_page; npages; writable } ->
    Printf.sprintf "mmap[%d..%d)%s" op_page (op_page + npages)
      (if writable then "rw" else "r")
  | Op_munmap { op_page; npages } ->
    Printf.sprintf "munmap[%d..%d)" op_page (op_page + npages)
  | Op_mprotect { op_page; npages; writable } ->
    Printf.sprintf "mprotect[%d..%d)%s" op_page (op_page + npages)
      (if writable then "rw" else "r")
  | Op_touch { op_page; write } ->
    Printf.sprintf "touch[%d]%s" op_page (if write then "w" else "r")
  | Op_fork -> "fork"
  | Op_promote -> "promote"

(* Deterministic per-cpu op streams: a function of the workload seed
   only, independent of the schedule. *)
let gen_ops ~cpus ~ops_per_cpu ~seed =
  let rng = Mm_util.Rng.create ~seed in
  Array.init cpus (fun _cpu ->
      let r = Mm_util.Rng.split rng in
      Array.init ops_per_cpu (fun _ ->
          let op_page = Mm_util.Rng.int r win_pages in
          let npages () = 1 + Mm_util.Rng.int r (win_pages - op_page) in
          match Mm_util.Rng.int r 100 with
          | x when x < 28 ->
            Op_mmap { op_page; npages = npages (); writable = Mm_util.Rng.bool r }
          | x when x < 44 -> Op_munmap { op_page; npages = npages () }
          | x when x < 58 ->
            Op_mprotect
              { op_page; npages = npages (); writable = Mm_util.Rng.bool r }
          | x when x < 88 -> Op_touch { op_page; write = Mm_util.Rng.bool r }
          | x when x < 94 -> Op_fork
          | _ -> Op_promote))

(* Every arm goes through the typed [_r] API and treats its outcome as
   data: overlapping fixed-address requests legitimately fail under some
   interleavings. *)
let exec_op asp op =
  let addr p = win_base + (p * page) in
  match op with
  | Op_mmap { op_page; npages; writable } ->
    let perm = if writable then Perm.rw else Perm.r in
    ignore (Mm.mmap_r asp ~addr:(addr op_page) ~len:(npages * page) ~perm ())
  | Op_munmap { op_page; npages } ->
    ignore (Mm.munmap_r asp ~addr:(addr op_page) ~len:(npages * page))
  | Op_mprotect { op_page; npages; writable } ->
    let perm = if writable then Perm.rw else Perm.r in
    ignore (Mm.mprotect_r asp ~addr:(addr op_page) ~len:(npages * page) ~perm)
  | Op_touch { op_page; write } ->
    (* The fault handler, not [touch_r]: an access that hits a (possibly
       deliberately stale, LATR) TLB entry takes no transaction and
       depends on per-cpu TLB history, which the sequential reference
       cannot reproduce. [page_fault] is the state transition itself —
       a function of the address space only. *)
    ignore (Mm.page_fault asp ~vaddr:(addr op_page) ~write)
  | Op_fork ->
    let child = Mm.fork asp in
    Mm.destroy child
  | Op_promote -> ignore (Mm.promote_huge asp ~vaddr:win_base)

(* -- One run -- *)

type config = {
  protocol : Config.t;
  cpus : int;
  ops_per_cpu : int;
  workload_seed : int;
  mutant : mutant;
}

type run = {
  violations : string list;  (** empty means the run was clean *)
  keys : int array;  (** tie-break keys a [random] policy recorded *)
}

(* Probe the window's observable per-page state, mirroring the corten
   backend's [page_state]. Cursor operations need fiber context, so the
   probe runs in its own single-cpu world (the run's world has
   finished; its locks are free whenever the run was violation-free). *)
let probe_window asp =
  let result = ref [||] in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () ->
      Addr_space.check_well_formed asp;
      result :=
        Addr_space.with_lock asp ~lo:win_base
          ~hi:(win_base + (win_pages * page))
          (fun c ->
            Array.init win_pages (fun i ->
                match Addr_space.query c (win_base + (i * page)) with
                | Status.Invalid -> Mm_workloads.Backend.P_unmapped
                | Status.Mapped { perm; _ } ->
                  Mm_workloads.Backend.P_mapped
                    {
                      writable = perm.Perm.write || perm.Perm.cow;
                      resident = true;
                    }
                | Status.Private_anon perm
                | Status.Private_file { perm; _ }
                | Status.Shared_anon { perm; _ }
                | Status.Swapped { perm; _ } ->
                  Mm_workloads.Backend.P_mapped
                    { writable = perm.Perm.write; resident = false })));
  Engine.run w;
  !result

(* Functional correctness of the final state: replay the ops serially,
   in the order of their last commits, on a fresh single-cpu kernel and
   compare the window page-by-page. *)
let final_state_mismatches cfg ops stamps asp_concurrent =
  let order =
    let all = ref [] in
    Array.iteri
      (fun cpu row ->
        Array.iteri (fun i op -> all := (stamps.(cpu).(i), cpu, i, op) :: !all)
          row)
      ops;
    List.sort compare !all
  in
  let got = probe_window asp_concurrent in
  let reference = ref [||] in
  let w = Engine.create ~ncpus:1 in
  let kernel = Kernel.create ~ncpus:1 () in
  let asp = Addr_space.create kernel cfg.protocol in
  Engine.spawn w ~cpu:0 (fun () ->
      List.iter (fun (_, _, _, op) -> exec_op asp op) order);
  Engine.run w;
  reference := probe_window asp;
  Mm_workloads.Diff.compare_page_states ~region:"window" !reference got

(* Execute the workload under [sched] and collect every violation: live
   protocol invariants, deadlock, unexpected exceptions, and the final
   address-space state against the sequential reference. *)
let run_once cfg ~sched =
  if cfg.cpus <= 0 then invalid_arg "Schedcheck: cpus";
  if cfg.ops_per_cpu <= 0 then invalid_arg "Schedcheck: ops_per_cpu";
  (* Violation text embeds lock and RCU callback ids; resetting the
     domain-local counters here makes every run's wording a pure
     function of (cfg, schedule) — independent of which domain runs it
     or what ran before, so parallel exploration reports the same text
     as sequential. *)
  Mm_workloads.Runner.reset_world_state ();
  let ops =
    gen_ops ~cpus:cfg.cpus ~ops_per_cpu:cfg.ops_per_cpu
      ~seed:cfg.workload_seed
  in
  set_mutant cfg.mutant;
  Fun.protect
    ~finally:(fun () ->
      set_mutant M_none;
      Monitor.clear ())
  @@ fun () ->
  let live = Mm_verif.Live.create ~ncpus:cfg.cpus in
  (* Global commit sequence: monitor events are emitted synchronously by
     the committing fiber, so this numbering is the true execution
     order. [last_commit.(cpu)] stamps the op a cpu just finished. *)
  let commit_seq = ref 0 in
  let last_commit = Array.make cfg.cpus 0 in
  Monitor.set (fun ev ->
      Mm_verif.Live.observe live ev;
      match ev with
      | Monitor.Txn_committed { cpu; _ } ->
        incr commit_seq;
        if cpu >= 0 && cpu < cfg.cpus then last_commit.(cpu) <- !commit_seq
      | _ -> ());
  let sched = sched () in
  let w = Engine.create_sched ~sched ~ncpus:cfg.cpus in
  let kernel = Kernel.create ~ncpus:cfg.cpus () in
  let asp = Addr_space.create kernel cfg.protocol in
  let stamps = Array.make_matrix cfg.cpus cfg.ops_per_cpu 0 in
  let op_errors = ref [] in
  for cpu = 0 to cfg.cpus - 1 do
    Engine.spawn w ~cpu (fun () ->
        Array.iteri
          (fun i op ->
            (try exec_op asp op
             with e ->
               op_errors :=
                 Printf.sprintf "cpu %d op %d (%s) raised %s" cpu i
                   (op_to_string op) (Printexc.to_string e)
                 :: !op_errors);
            stamps.(cpu).(i) <- last_commit.(cpu))
          ops.(cpu))
  done;
  let deadlock =
    try
      Engine.run w;
      None
    with Engine.Deadlock msg -> Some msg
  in
  (* Live state is complete; stop observing so the reference replay and
     the probes below stay invisible to the checker. Mutants off too:
     the sequential reference must be the *correct* semantics. *)
  Monitor.clear ();
  set_mutant M_none;
  let violations = ref (List.rev !op_errors) in
  (match deadlock with
  | Some msg ->
    violations := !violations @ [ Printf.sprintf "deadlock: %s" msg ]
  | None -> Mm_verif.Live.check_quiescent live);
  violations := !violations @ Mm_verif.Live.violations live;
  (* The functional check only runs on protocol-clean completed runs: a
     deadlocked or violating world may have left locks held, and probing
     would hang on them. *)
  if !violations = [] then
    (try
       match final_state_mismatches cfg ops stamps asp with
       | [] -> ()
       | ms ->
         violations :=
           List.map (fun m -> "final state diverges from serial replay: " ^ m) ms
     with e ->
       violations :=
         [ "final-state check raised " ^ Printexc.to_string e ]);
  { violations = !violations; keys = Sched.recorded sched }

(* -- Shrinking: a smaller key sequence with the same verdict -- *)

let shrink cfg ~keys ~budget =
  let runs = ref 0 in
  let violates ks =
    if !runs >= budget then false
    else begin
      incr runs;
      (run_once cfg ~sched:(fun () -> Sched.replay ks)).violations <> []
    end
  in
  (* Phase 1: drop tail chunks (halving the chunk on failure). Keys past
     the prefix revert to the default fifo order. *)
  let len = ref (Array.length keys) in
  let chunk = ref (max 1 (Array.length keys / 2)) in
  while !chunk >= 1 && !runs < budget do
    if !len >= !chunk && violates (Array.sub keys 0 (!len - !chunk)) then
      len := !len - !chunk
    else chunk := !chunk / 2
  done;
  (* Phase 2: zero individual keys — each zero is one less forced
     preemption. *)
  let arr = Array.sub keys 0 !len in
  for i = 0 to Array.length arr - 1 do
    if arr.(i) <> 0 && !runs < budget then begin
      let saved = arr.(i) in
      arr.(i) <- 0;
      if not (violates (Array.copy arr)) then arr.(i) <- saved
    end
  done;
  (* Trailing zeros are the default order: drop them. *)
  let n = ref (Array.length arr) in
  while !n > 0 && arr.(!n - 1) = 0 do
    decr n
  done;
  (Array.sub arr 0 !n, !runs)

(* -- Exploration -- *)

type outcome =
  | Clean of { seeds : int }
  | Violation of {
      sched_seed : int;
      keys : int array;  (** minimized *)
      violations : string list;
      shrink_runs : int;
    }

let explore ?(amplitude = 8) ?(seed0 = 1) ?(shrink_budget = 200) ?(jobs = 1)
    ~seeds cfg =
  let violation_at i =
    let r =
      run_once cfg ~sched:(fun () ->
          Sched.random ~amplitude ~seed:(seed0 + i) ())
    in
    if r.violations = [] then None else Some (i, r)
  in
  (* Find the violation with the LOWEST seed index — the exact one a
     sequential scan reports first. Sequentially that is a stop-at-first
     walk; in parallel the seed range is split into [jobs] contiguous
     chunks, each scanned in order on its own domain. A chunk may only
     skip a seed when a strictly lower violating index is already
     published ([best]), so the minimum violating index can never be
     pruned away, and taking the min over chunk results returns exactly
     the sequential answer (each run's verdict and wording being a pure
     function of (cfg, seed) — see [run_once]). *)
  let first =
    if min jobs seeds <= 1 then begin
      let rec go i =
        if i >= seeds then None
        else match violation_at i with Some v -> Some v | None -> go (i + 1)
      in
      go 0
    end
    else begin
      let best = Atomic.make max_int in
      let rec publish i =
        let b = Atomic.get best in
        if i < b && not (Atomic.compare_and_set best b i) then publish i
      in
      let scan_chunk c =
        let lo = c * seeds / jobs and hi = (c + 1) * seeds / jobs in
        let rec go i =
          if i >= hi || i >= Atomic.get best then None
          else
            match violation_at i with
            | Some v ->
              publish i;
              Some v
            | None -> go (i + 1)
        in
        go lo
      in
      Mm_par.Par.map ~jobs scan_chunk (List.init jobs Fun.id)
      |> List.fold_left
           (fun acc r ->
             match (acc, r) with
             | Some (i, _), Some (j, _) -> if i <= j then acc else r
             | None, r -> r
             | acc, None -> acc)
           None
    end
  in
  match first with
  | None -> Clean { seeds }
  | Some (i, r) ->
    let keys, shrink_runs = shrink cfg ~keys:r.keys ~budget:shrink_budget in
    (* Report the minimized run's violations (they may differ in
       wording from the original's; the verdict is the same). Shrinking
       and the final replay run sequentially on the calling domain. *)
    let final = run_once cfg ~sched:(fun () -> Sched.replay keys) in
    let violations =
      if final.violations = [] then r.violations else final.violations
    in
    Violation { sched_seed = seed0 + i; keys; violations; shrink_runs }

(* -- Schedule files -- *)

let schedule_of cfg keys =
  {
    Schedule.protocol = Config.protocol_to_string cfg.protocol.Config.protocol;
    cpus = cfg.cpus;
    ops = cfg.ops_per_cpu;
    workload_seed = cfg.workload_seed;
    mutant = mutant_name cfg.mutant;
    keys;
  }

let config_of_schedule (s : Schedule.t) =
  let protocol =
    match s.protocol with
    | "adv" -> Ok Config.adv
    | "rw" -> Ok Config.rw
    | p -> Error (Printf.sprintf "unknown protocol %S (valid: adv, rw)" p)
  in
  Result.bind protocol (fun protocol ->
      Result.map
        (fun mutant ->
          {
            protocol;
            cpus = s.Schedule.cpus;
            ops_per_cpu = s.Schedule.ops;
            workload_seed = s.Schedule.workload_seed;
            mutant;
          })
        (mutant_of_string s.Schedule.mutant))

let replay_schedule (s : Schedule.t) =
  Result.map
    (fun cfg ->
      (run_once cfg ~sched:(fun () -> Sched.replay s.Schedule.keys)).violations)
    (config_of_schedule s)
