(* On-disk schedule files.

   A schedule is everything needed to reproduce one schedcheck run
   exactly: the workload parameters (protocol, cpus, ops per cpu,
   workload seed, mutant) and the tie-break key sequence the engine
   consumed. The format is a trivial line-oriented text file so minimal
   counterexamples can be committed to the repository and read in code
   review:

     mmsched 1
     protocol adv
     cpus 4
     ops 12
     workload-seed 42
     mutant none
     keys 0 1 3 0 2 ...

   [keys] is last and may be empty (the empty schedule is the default
   fifo order: every key 0). *)

type t = {
  protocol : string;  (* "adv" | "rw", as Config.protocol_to_string *)
  cpus : int;
  ops : int;  (* ops per cpu *)
  workload_seed : int;
  mutant : string;  (* Schedcheck.mutant_name *)
  keys : int array;
}

let magic = "mmsched 1"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" magic;
      Printf.fprintf oc "protocol %s\n" t.protocol;
      Printf.fprintf oc "cpus %d\n" t.cpus;
      Printf.fprintf oc "ops %d\n" t.ops;
      Printf.fprintf oc "workload-seed %d\n" t.workload_seed;
      Printf.fprintf oc "mutant %s\n" t.mutant;
      Printf.fprintf oc "keys%s\n"
        (String.concat ""
           (List.map (Printf.sprintf " %d") (Array.to_list t.keys))))

let load path =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        match List.rev !lines with
        | header :: fields when header = magic -> (
          let field name =
            let prefix = name ^ " " in
            let n = String.length prefix in
            List.find_map
              (fun l ->
                if String.length l >= n && String.sub l 0 n = prefix then
                  Some (String.sub l n (String.length l - n))
                else if l = name then Some ""
                else None)
              fields
          in
          let int_field name =
            match field name with
            | None -> fail "%s: missing %S line" path name
            | Some v -> (
              match int_of_string_opt (String.trim v) with
              | Some i -> Ok i
              | None -> fail "%s: bad %s value %S" path name v)
          in
          let str_field name =
            match field name with
            | None -> fail "%s: missing %S line" path name
            | Some v -> Ok (String.trim v)
          in
          let ( let* ) r f = Result.bind r f in
          let* protocol = str_field "protocol" in
          let* cpus = int_field "cpus" in
          let* ops = int_field "ops" in
          let* workload_seed = int_field "workload-seed" in
          let* mutant = str_field "mutant" in
          let* keys =
            match field "keys" with
            | None -> fail "%s: missing \"keys\" line" path
            | Some v -> (
              let words =
                List.filter (( <> ) "") (String.split_on_char ' ' v)
              in
              match List.map int_of_string_opt words with
              | exception _ -> fail "%s: bad keys line" path
              | opts ->
                if List.mem None opts then fail "%s: bad keys line" path
                else
                  Ok (Array.of_list (List.map Option.get opts)))
          in
          Ok { protocol; cpus; ops; workload_seed; mutant; keys })
        | header :: _ ->
          fail "%s: bad header %S (expected %S)" path header magic
        | [] -> fail "%s: empty file" path)
