(** Schedule exploration for the concurrent core.

    Runs small concurrent cursor workloads (overlapping mmap / munmap /
    mprotect / touch ranges over a fixed window, fork-clone,
    promote_huge) under controllable tie-break policies
    ({!Mm_sim.Sched}), checking

    - protocol safety live ({!Mm_verif.Live}: mutual exclusion, the P1
      transaction property, RCU grace periods) plus deadlock-freedom,
    - functional correctness of the final address space against a
      sequential reference replay in observed commit order.

    On violation the tie-break key sequence is shrunk greedily (shorter
    prefix, fewer forced preemptions) to a minimal deterministic
    counterexample, exportable as a {!Schedule} file. *)

(** {2 Mutants}

    Deliberately broken synchronization in the simulated primitives, to
    validate that the harness catches real protocol bugs. *)

type mutant =
  | M_none
  | M_rw_skip_handoff  (** write_unlock never hands off to parked writers *)
  | M_rcu_no_gp  (** RCU callbacks fire without waiting for readers *)

val mutant_name : mutant -> string
val mutant_of_string : string -> (mutant, string) result

(** {2 Configuration and single runs} *)

type config = {
  protocol : Cortenmm.Config.t;  (** {!Cortenmm.Config.adv} or [rw] *)
  cpus : int;
  ops_per_cpu : int;
  workload_seed : int;  (** generates the deterministic op streams *)
  mutant : mutant;
}

type run = {
  violations : string list;  (** empty means the run was clean *)
  keys : int array;  (** tie-break keys a [random] policy recorded *)
}

val run_once : config -> sched:(unit -> Mm_sim.Sched.t) -> run
(** Execute the workload in a fresh world built from [sched ()].
    Resets mutant flags and the monitor hook on exit. *)

(** {2 Exploration and shrinking} *)

type outcome =
  | Clean of { seeds : int }
  | Violation of {
      sched_seed : int;  (** the seed whose schedule violated *)
      keys : int array;  (** minimized key sequence *)
      violations : string list;
      shrink_runs : int;  (** replays spent shrinking *)
    }

val explore :
  ?amplitude:int ->
  ?seed0:int ->
  ?shrink_budget:int ->
  ?jobs:int ->
  seeds:int ->
  config ->
  outcome
(** Try [seeds] seeded-random schedules ([seed0], [seed0+1], ...); on
    the first violation, shrink (within [shrink_budget] replays,
    default 200) and stop. [amplitude] (default 8) bounds the drawn
    keys. [jobs] (default 1) shards the seed campaign across domains;
    the violation reported is always the lowest-seed one — the same a
    sequential scan finds first — so the outcome (seed, keys, wording)
    is identical for any value. *)

val shrink : config -> keys:int array -> budget:int -> int array * int
(** [shrink cfg ~keys ~budget] is [(smaller_keys, runs_used)]; the
    returned keys still violate. Exposed for tests. *)

(** {2 Schedule files} *)

val schedule_of : config -> int array -> Schedule.t
val config_of_schedule : Schedule.t -> (config, string) result

val replay_schedule : Schedule.t -> (string list, string) result
(** Re-run a schedule deterministically; [Ok violations] is the
    verdict ([[]] = clean). [Error] for an unknown protocol/mutant
    name. *)
