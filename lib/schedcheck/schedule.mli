(** Schedule files: a self-contained, committable description of one
    schedcheck run — workload parameters plus the engine tie-break key
    sequence. Replaying a schedule reproduces the run bit-for-bit (the
    simulation is a deterministic function of the keys). *)

type t = {
  protocol : string;  (** ["adv"] or ["rw"] *)
  cpus : int;
  ops : int;  (** operations per cpu *)
  workload_seed : int;
  mutant : string;  (** {!Schedcheck.mutant_name} *)
  keys : int array;  (** may be empty: fifo order *)
}

val save : t -> string -> unit

val load : string -> (t, string) result
(** [Error msg] on I/O or parse failure; [msg] is ready to print. *)
