(* NrOS baseline (Bhardwaj et al., OSDI'21).

   NrOS applies node replication (NR) to the whole kernel: every mutating
   MM operation is appended to a shared operation log (one atomic on the
   log tail per append — a global serialization point) and then applied to
   the NUMA-local replica under the replica's coarse lock; replicas catch
   up by replaying the log before serving. As the paper notes, NrOS "does
   not support on-demand paging", so mmap backs the whole region eagerly,
   and the evaluation treats its mmap as CortenMM's mmap-PF.

   We model two NUMA nodes (cpu < ncpus/2 -> replica 0) with a full page
   table per replica. The first replica to apply an mmap allocates the
   physical frames and records them in the log entry so every replica maps
   the same pages. *)

open Mm_hal
module Pt = Mm_pt.Pt
module Va_alloc = Cortenmm.Va_alloc

type fault_outcome = Handled | Sigsegv

type log_op =
  | L_map of { lo : int; len : int; perm : Perm.t; mutable pfns : int array }
  | L_unmap of { lo : int; len : int }

type replica = {
  rep_lock : Mm_sim.Mutex_s.t;
  pt : unit Pt.t;
  mutable applied : int; (* log entries applied so far *)
}

type t = {
  phys : Mm_phys.Phys.t;
  isa : Isa.t;
  ncpus : int;
  nreplicas : int;
  mutable log : log_op array;
  mutable log_len : int;
  log_tail_line : Mm_sim.Engine.Line.t;
  replicas : replica array;
  tlb : Mm_tlb.Tlb.t;
  va : Va_alloc.t;
  cpu_mask : bool array;
}

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let va_lo = 0x1000_0000

let create ?(isa = Isa.x86_64) ?(nreplicas = 2) ~ncpus () =
  let phys = Mm_phys.Phys.create () in
  let geo = isa.Isa.geo in
  {
    phys;
    isa;
    ncpus;
    nreplicas = min nreplicas (max 1 ncpus);
    log = Array.make 0 (L_unmap { lo = 0; len = 0 });
    log_len = 0;
    log_tail_line = Mm_sim.Engine.Line.make ();
    replicas =
      Array.init
        (min nreplicas (max 1 ncpus))
        (fun _ ->
          {
            rep_lock = Mm_sim.Mutex_s.make ~name:"nros.rep_lock" ();
            pt = Pt.create phys isa;
            applied = 0;
          });
    tlb = Mm_tlb.Tlb.create ~ncpus ~strategy:Mm_tlb.Tlb.Sync ();
    va =
      Va_alloc.create ~ncpus ~per_core:false ~va_lo
        ~va_hi:(Geometry.va_limit geo) ~page_size:(Geometry.page_size geo);
    cpu_mask = Array.make ncpus false;
  }

let page_size t = Geometry.page_size t.isa.Isa.geo
let phys t = t.phys
let tlb t = t.tlb

let replica_of t ~cpu = t.replicas.(cpu * t.nreplicas / t.ncpus)

let log_append t op =
  (* The global serialization point of node replication. *)
  if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.Line.rmw t.log_tail_line;
  charge Mm_sim.Cost.cache_hit;
  let cap = Array.length t.log in
  if t.log_len = cap then begin
    let bigger =
      Array.make (max 64 (cap * 2)) (L_unmap { lo = 0; len = 0 })
    in
    Array.blit t.log 0 bigger 0 cap;
    t.log <- bigger
  end;
  t.log.(t.log_len) <- op;
  t.log_len <- t.log_len + 1

(* Apply one log entry to a replica (the replica lock is held). *)
let apply_op t (rep : replica) op =
  let ps = page_size t in
  match op with
  | L_map m ->
    let npages = m.len / ps in
    if Array.length m.pfns = 0 then begin
      (* First applier allocates the shared physical frames. *)
      m.pfns <-
        Array.init npages (fun _ ->
            charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_zero);
            let f = Mm_phys.Phys.alloc t.phys ~kind:Mm_phys.Frame.Anon () in
            f.Mm_phys.Frame.map_count <- 1;
            f.Mm_phys.Frame.pfn)
    end;
    for i = 0 to npages - 1 do
      let vaddr = m.lo + (i * ps) in
      let node = Pt.walk_create rep.pt ~to_level:1 vaddr in
      Pt.set rep.pt node
        (Pt.index rep.pt ~level:1 ~vaddr)
        (Pte.leaf ~pfn:m.pfns.(i) ~perm:m.perm ())
    done
  | L_unmap { lo; len } ->
    let npages = len / ps in
    for i = 0 to npages - 1 do
      let vaddr = lo + (i * ps) in
      let node = Pt.walk_opt rep.pt ~to_level:1 vaddr in
      if node.Pt.level = 1 then begin
        match Pt.get rep.pt node (Pt.index rep.pt ~level:1 ~vaddr) with
        | Pte.Leaf { pfn; _ } ->
          Pt.set rep.pt node (Pt.index rep.pt ~level:1 ~vaddr) Pte.Absent;
          let f = Mm_phys.Phys.frame t.phys pfn in
          if f.Mm_phys.Frame.kind = Mm_phys.Frame.Anon then begin
            f.Mm_phys.Frame.map_count <- f.Mm_phys.Frame.map_count - 1;
            if f.Mm_phys.Frame.map_count <= 0 then begin
              charge Mm_sim.Cost.page_free;
              Mm_phys.Phys.free t.phys f
            end
          end
        | Pte.Absent | Pte.Table _ -> ()
      end
    done

(* Catch the replica up with the log, then run [f] under its lock. *)
let with_replica t ~cpu f =
  let rep = replica_of t ~cpu in
  Mm_sim.Mutex_s.lock rep.rep_lock;
  while rep.applied < t.log_len do
    apply_op t rep t.log.(rep.applied);
    rep.applied <- rep.applied + 1
  done;
  let v = f rep in
  Mm_sim.Mutex_s.unlock rep.rep_lock;
  v

let note_cpu t =
  if Mm_sim.Engine.in_fiber () then
    t.cpu_mask.(Mm_sim.Engine.cpu_id ()) <- true

(* NrOS mmap: eager backing (no demand paging). *)
let mmap t ?addr ~len ~perm () =
  charge Mm_sim.Cost.syscall;
  note_cpu t;
  let ps = page_size t in
  let len = Mm_util.Align.up len ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  let lo =
    match addr with
    | Some a -> a
    | None -> Va_alloc.alloc t.va ~cpu ~len ()
  in
  let op = L_map { lo; len; perm; pfns = [||] } in
  log_append t op;
  with_replica t ~cpu (fun rep ->
      while rep.applied < t.log_len do
        apply_op t rep t.log.(rep.applied);
        rep.applied <- rep.applied + 1
      done);
  lo

let munmap t ~addr ~len =
  charge Mm_sim.Cost.syscall;
  note_cpu t;
  let ps = page_size t in
  let len = Mm_util.Align.up len ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  log_append t (L_unmap { lo = addr; len });
  with_replica t ~cpu (fun _ -> ());
  (* Conservative broadcast shootdown. *)
  (if Mm_sim.Engine.in_fiber () then
     let vpns = List.init (min 64 (len / ps)) (fun i -> (addr / ps) + i) in
     Mm_tlb.Tlb.shootdown t.tlb ~targets:t.cpu_mask ~vpns);
  Va_alloc.free t.va ~cpu ~addr ~len

exception Fault of int

(* No demand paging: a touch that misses consults the local replica
   (catching it up if needed); a page absent there is a hard fault. *)
let touch t ~vaddr ~write =
  note_cpu t;
  let ps = page_size t in
  let vpn = vaddr / ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  charge Mm_sim.Cost.cache_hit;
  match Mm_tlb.Tlb.lookup t.tlb ~cpu ~vpn ~write with
  | Some _ -> ()
  | None ->
    let found =
      with_replica t ~cpu (fun rep ->
          let node = Pt.walk_opt rep.pt ~to_level:1 vaddr in
          if node.Pt.level <> 1 then None
          else
            match Pt.get rep.pt node (Pt.index rep.pt ~level:1 ~vaddr) with
            | Pte.Leaf { pfn; perm; _ } when Perm.allows perm ~write ->
              Some (pfn, perm)
            | Pte.Leaf _ | Pte.Absent | Pte.Table _ -> None)
    in
    (match found with
    | Some (pfn, perm) ->
      Mm_tlb.Tlb.install t.tlb ~cpu ~vpn ~pfn ~writable:perm.Perm.write ()
    | None -> raise (Fault vaddr))

let touch_range t ~addr ~len ~write =
  let ps = page_size t in
  let rec go v =
    if v < addr + len then begin
      touch t ~vaddr:v ~write;
      go (v + ps)
    end
  in
  go addr

let replicated_pt_bytes t =
  Array.fold_left
    (fun acc rep -> acc + (Pt.pt_page_count rep.pt * page_size t))
    0 t.replicas

let log_length t = t.log_len

(* -- fork: eager copy. NrOS does not claim COW; enumerate the parent's
   local replica under its lock (after catching it up, so the snapshot
   reflects the whole log) and give the child fresh frames mapped in
   every one of its own replicas, plus an empty log of its own. *)

let fork t =
  charge Mm_sim.Cost.syscall;
  note_cpu t;
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  let child =
    {
      phys = t.phys;
      isa = t.isa;
      ncpus = t.ncpus;
      nreplicas = t.nreplicas;
      log = Array.make 0 (L_unmap { lo = 0; len = 0 });
      log_len = 0;
      log_tail_line = Mm_sim.Engine.Line.make ();
      replicas =
        Array.init t.nreplicas (fun _ ->
            {
              rep_lock = Mm_sim.Mutex_s.make ~name:"nros.rep_lock" ();
              pt = Pt.create t.phys t.isa;
              applied = 0;
            });
      tlb = Mm_tlb.Tlb.create ~ncpus:t.ncpus ~strategy:Mm_tlb.Tlb.Sync ();
      va = Va_alloc.clone t.va;
      cpu_mask = Array.make t.ncpus false;
    }
  in
  with_replica t ~cpu (fun rep ->
      Pt.iter_leaves rep.pt (Pt.root rep.pt) (fun vaddr _level pte ->
          match pte with
          | Pte.Leaf { pfn; perm; _ } ->
            charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_copy);
            let src = Mm_phys.Phys.frame t.phys pfn in
            let f = Mm_phys.Phys.alloc t.phys ~kind:Mm_phys.Frame.Anon () in
            f.Mm_phys.Frame.contents <- src.Mm_phys.Frame.contents;
            f.Mm_phys.Frame.map_count <- 1;
            Array.iter
              (fun crep ->
                let node = Pt.walk_create crep.pt ~to_level:1 vaddr in
                Pt.set crep.pt node
                  (Pt.index crep.pt ~level:1 ~vaddr)
                  (Pte.leaf ~pfn:f.Mm_phys.Frame.pfn ~perm ()))
              child.replicas
          | Pte.Absent | Pte.Table _ -> ()));
  child

(* Tear one replica's page table down, releasing anon frames with the
   same kind-guarded decrement [apply_op]'s unmap path uses (the first
   replica to reach a frame frees it; the rest see [Free] and skip). *)
let teardown_pt t pt =
  let rec go node =
    for idx = 0 to Pt.entries_per_node pt - 1 do
      match Pt.get_uncharged pt node idx with
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn pt pfn with
        | Some _ ->
          let c = Pt.detach_child pt node idx in
          go c;
          Pt.free_node pt c
        | None -> ())
      | Pte.Leaf { pfn; _ } ->
        Pt.set pt node idx Pte.Absent;
        let f = Mm_phys.Phys.frame t.phys pfn in
        if f.Mm_phys.Frame.kind = Mm_phys.Frame.Anon then begin
          f.Mm_phys.Frame.map_count <- f.Mm_phys.Frame.map_count - 1;
          if f.Mm_phys.Frame.map_count <= 0 then begin
            charge Mm_sim.Cost.page_free;
            Mm_phys.Phys.free t.phys f
          end
        end
      | Pte.Absent -> ()
    done
  in
  go (Pt.root pt)

let destroy t =
  charge Mm_sim.Cost.syscall;
  (* Catch every replica up first so each has seen every map/unmap, then
     tear the replicas down in order. *)
  Array.iter
    (fun rep ->
      Mm_sim.Mutex_s.lock rep.rep_lock;
      while rep.applied < t.log_len do
        apply_op t rep t.log.(rep.applied);
        rep.applied <- rep.applied + 1
      done;
      teardown_pt t rep.pt;
      Mm_sim.Mutex_s.unlock rep.rep_lock)
    t.replicas;
  t.log_len <- 0

(* Simulated data access for the COW-fork oracle: touch resolves the
   mapping (raising {!Fault} when absent), then the local replica names
   the frame whose contents token we read or write. *)
let with_pfn t ~vaddr f =
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  with_replica t ~cpu (fun rep ->
      let node = Pt.walk_opt rep.pt ~to_level:1 vaddr in
      if node.Pt.level <> 1 then raise (Fault vaddr)
      else
        match Pt.get_uncharged rep.pt node (Pt.index rep.pt ~level:1 ~vaddr) with
        | Pte.Leaf { pfn; _ } -> f (Mm_phys.Phys.frame t.phys pfn)
        | Pte.Absent | Pte.Table _ -> raise (Fault vaddr))

let write_value t ~vaddr ~value =
  touch t ~vaddr ~write:true;
  with_pfn t ~vaddr (fun f -> f.Mm_phys.Frame.contents <- value)

let read_value t ~vaddr =
  touch t ~vaddr ~write:false;
  with_pfn t ~vaddr (fun f -> f.Mm_phys.Frame.contents)

(* Normalized observation of one page for the differential oracle: catch
   the observing CPU's replica up with the log (what any real NrOS read
   must do) and read its page table. NrOS has no demand paging, so a
   page is either absent or resident. *)
let page_state t ~vaddr =
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  with_replica t ~cpu (fun rep ->
      let node = Pt.walk_opt rep.pt ~to_level:1 vaddr in
      if node.Pt.level <> 1 then `Unmapped
      else
        match Pt.get_uncharged rep.pt node (Pt.index rep.pt ~level:1 ~vaddr) with
        | Pte.Leaf { perm; _ } -> `Resident perm.Perm.write
        | Pte.Absent | Pte.Table _ -> `Unmapped)
