(** NrOS baseline (Bhardwaj et al., OSDI'21): node replication — every
    mutating MM operation is appended to a shared log (a global
    serialization point) and applied to NUMA-local replicas under coarse
    per-replica locks. No demand paging: mmap backs regions eagerly. *)

type t

type fault_outcome = Handled | Sigsegv

exception Fault of int

val create : ?isa:Mm_hal.Isa.t -> ?nreplicas:int -> ncpus:int -> unit -> t
val page_size : t -> int
val phys : t -> Mm_phys.Phys.t
val tlb : t -> Mm_tlb.Tlb.t

val mmap : t -> ?addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit -> int
(** Eager: allocates and maps every page through the log. *)

val munmap : t -> addr:int -> len:int -> unit

val touch : t -> vaddr:int -> write:bool -> unit
(** Consults the local replica (replaying the log if behind); raises
    {!Fault} for unmapped addresses — there is no demand paging. *)

val touch_range : t -> addr:int -> len:int -> write:bool -> unit
val replicated_pt_bytes : t -> int
val log_length : t -> int

val page_state : t -> vaddr:int -> [ `Unmapped | `Lazy of bool | `Resident of bool ]
(** Observation of one page for the differential oracle. NrOS backs
    eagerly, so [`Lazy _] never occurs. *)

val fork : t -> t
(** Eager-copy fork (NrOS claims no COW): snapshot the parent's local
    replica under its lock after catching it up, map freshly copied
    frames into every child replica; the child starts an empty log. *)

val destroy : t -> unit
(** Catch every replica up with the log, then free the mapped frames and
    all replica page tables (process exit). *)

val write_value : t -> vaddr:int -> value:int -> unit
(** Touch for write, then store a data token in the page's frame. Raises
    {!Fault} when unmapped. *)

val read_value : t -> vaddr:int -> int
(** Touch for read, then load the page's data token. Raises {!Fault}
    when unmapped. *)
