(* The event taxonomy of the observability subsystem.

   Every event is stamped with the *virtual* time of the emitting vCPU and
   a global emission sequence number. Because the simulator is
   deterministic (fibers are replayed in virtual-time order with sequence
   tie-breaks), the full event stream of a run is a pure function of the
   workload and its seeds: two identical runs yield byte-identical
   streams. Recording an event never advances virtual time, so tracing is
   invisible to the simulation itself.

   Spans (lock waits, cursor transactions, page faults) are emitted at
   their *completion*, carrying their duration — the exporter reconstructs
   the interval as [time - span, time]. This avoids begin/end pairing
   state in the hot paths. *)

type lock_kind = Mutex | Rw_read | Rw_write

let lock_kind_name = function
  | Mutex -> "mutex"
  | Rw_read -> "rw-read"
  | Rw_write -> "rw-write"

type payload =
  (* Lock protocol events. [lock] is the registry id ({!Contention}). *)
  | Lock_acquire of { lock : int; kind : lock_kind; wait : int }
  | Lock_release of { lock : int; kind : lock_kind; held : int }
  | Lock_contend of { lock : int; kind : lock_kind }
  (* RCU: read-side sections, deferred frees, grace-period completion. *)
  | Rcu_enter
  | Rcu_exit
  | Rcu_defer of { pending : int }
  | Rcu_gp of { callbacks : int }
  (* TLB maintenance. *)
  | Tlb_shootdown of { vpns : int; targets : int; ipis : int }
  | Tlb_latr_drain of { entries : int }
  (* Page-table structure changes. *)
  | Pt_split of { vaddr : int; level : int }
  | Pt_free of { level : int; pages : int }
  (* Transactional interface. *)
  | Cursor_lock of { lo : int; hi : int; locked : int; span : int }
  | Cursor_commit of { lo : int; hi : int; flushed : int }
  | Stale_retry (* the adv protocol's retry loop fired (Fig 6 L10-13) *)
  (* Fault path. *)
  | Page_fault of { vaddr : int; write : bool; span : int }
  (* Generic instrumentation. *)
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Counter of { name : string; value : int }

type t = { seq : int; time : int; cpu : int; payload : payload }

let name = function
  | Lock_acquire _ -> "lock-acquire"
  | Lock_release _ -> "lock-release"
  | Lock_contend _ -> "lock-contend"
  | Rcu_enter -> "rcu-enter"
  | Rcu_exit -> "rcu-exit"
  | Rcu_defer _ -> "rcu-defer"
  | Rcu_gp _ -> "rcu-gp"
  | Tlb_shootdown _ -> "tlb-shootdown"
  | Tlb_latr_drain _ -> "tlb-latr-drain"
  | Pt_split _ -> "pt-split"
  | Pt_free _ -> "pt-free"
  | Cursor_lock _ -> "cursor-lock"
  | Cursor_commit _ -> "cursor-commit"
  | Stale_retry -> "stale-retry"
  | Page_fault _ -> "page-fault"
  | Span_begin _ -> "span-begin"
  | Span_end _ -> "span-end"
  | Counter _ -> "counter"

let payload_args = function
  | Lock_acquire { lock; kind; wait } ->
    [ ("lock", lock); ("wait", wait) ]
    @ [ ("k", match kind with Mutex -> 0 | Rw_read -> 1 | Rw_write -> 2) ]
  | Lock_release { lock; kind; held } ->
    [ ("lock", lock); ("held", held) ]
    @ [ ("k", match kind with Mutex -> 0 | Rw_read -> 1 | Rw_write -> 2) ]
  | Lock_contend { lock; kind } ->
    [ ("lock", lock);
      ("k", match kind with Mutex -> 0 | Rw_read -> 1 | Rw_write -> 2) ]
  | Rcu_enter | Rcu_exit | Stale_retry -> []
  | Rcu_defer { pending } -> [ ("pending", pending) ]
  | Rcu_gp { callbacks } -> [ ("callbacks", callbacks) ]
  | Tlb_shootdown { vpns; targets; ipis } ->
    [ ("vpns", vpns); ("targets", targets); ("ipis", ipis) ]
  | Tlb_latr_drain { entries } -> [ ("entries", entries) ]
  | Pt_split { vaddr; level } -> [ ("vaddr", vaddr); ("level", level) ]
  | Pt_free { level; pages } -> [ ("level", level); ("pages", pages) ]
  | Cursor_lock { lo; hi; locked; span } ->
    [ ("lo", lo); ("hi", hi); ("locked", locked); ("span", span) ]
  | Cursor_commit { lo; hi; flushed } ->
    [ ("lo", lo); ("hi", hi); ("flushed", flushed) ]
  | Page_fault { vaddr; write; span } ->
    [ ("vaddr", vaddr); ("write", (if write then 1 else 0)); ("span", span) ]
  | Span_begin _ | Span_end _ -> []
  | Counter { value; _ } -> [ ("value", value) ]

(* The duration carried by a span-at-completion event, if any. *)
let span_of = function
  | Lock_acquire { wait; _ } -> Some wait
  | Lock_release { held; _ } -> Some held
  | Cursor_lock { span; _ } -> Some span
  | Page_fault { span; _ } -> Some span
  | _ -> None

(* Canonical single-line text form — the byte stream the determinism
   guarantee is stated over. *)
let to_string e =
  let args =
    (match e.payload with
    | Span_begin { name } | Span_end { name } | Counter { name; _ } ->
      Printf.sprintf " name=%s" name
    | _ -> "")
    ^ String.concat ""
        (List.map
           (fun (k, v) -> Printf.sprintf " %s=%d" k v)
           (payload_args e.payload))
  in
  Printf.sprintf "%d %d cpu%d %s%s" e.seq e.time e.cpu (name e.payload) args
