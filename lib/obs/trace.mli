(** The tracing session: per-vCPU event rings behind one global on/off
    switch. When no session is active an instrumentation site pays one ref
    dereference ({!on}); recording never advances virtual time, so traced
    and untraced runs produce bit-identical simulation results. *)

val start : ?capacity:int -> unit -> unit
(** Open a session (per-vCPU ring capacity defaults to 65536 events).
    Resets {!Metrics} and {!Contention} — including the lock-id counter —
    so identical runs after [start] yield byte-identical streams. *)

val on : unit -> bool
(** Whether a session is active — the cheap gate every instrumentation
    site checks first. *)

val emit : time:int -> cpu:int -> Event.payload -> unit
(** Record an event; no-op without a session. *)

val events : unit -> Event.t list
(** The merged stream so far, in emission order. *)

val dropped : unit -> int
(** Events lost to ring wraparound. *)

val stop : unit -> Event.t list
(** Close the session and return the merged stream. *)

val to_text : Event.t list -> string
(** Canonical text form of a stream (one event per line). *)
