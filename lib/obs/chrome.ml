(* Chrome trace_event exporter (Perfetto / chrome://tracing loadable).

   Mapping: the whole simulation is pid 1; each vCPU is a "thread"
   (tid = cpu index). Span-at-completion events (lock waits, cursor
   transactions, page faults) become complete events (ph "X") with
   ts = time - span and dur = span; point events become instants
   (ph "i", thread scope); Counter events become ph "C"; explicit
   Span_begin/Span_end become ph "B"/"E". Virtual cycles map 1:1 to the
   microseconds of the trace_event format — absolute magnitudes are
   what the simulator says they are. *)

let cat = function
  | Event.Lock_acquire _ | Lock_release _ | Lock_contend _ -> "lock"
  | Rcu_enter | Rcu_exit | Rcu_defer _ | Rcu_gp _ -> "rcu"
  | Tlb_shootdown _ | Tlb_latr_drain _ -> "tlb"
  | Pt_split _ | Pt_free _ -> "pt"
  | Cursor_lock _ | Cursor_commit _ | Stale_retry -> "cursor"
  | Page_fault _ -> "fault"
  | Span_begin _ | Span_end _ | Counter _ -> "user"

(* Display name: lock events resolve the registry name so the Perfetto
   slice reads "mmap_lock (rw-write) wait" rather than "lock-acquire". *)
let display_name p =
  match p with
  | Event.Lock_acquire { lock; kind; _ } ->
    Printf.sprintf "%s (%s) acquire" (Contention.name_of lock)
      (Event.lock_kind_name kind)
  | Lock_release { lock; kind; _ } ->
    Printf.sprintf "%s (%s) hold" (Contention.name_of lock)
      (Event.lock_kind_name kind)
  | Lock_contend { lock; kind } ->
    Printf.sprintf "%s (%s) contend" (Contention.name_of lock)
      (Event.lock_kind_name kind)
  | Span_begin { name } | Span_end { name } | Counter { name; _ } -> name
  | p -> Event.name p

let args_of p =
  match Event.payload_args p with
  | [] -> []
  | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) args)) ]

let event_to_json (e : Event.t) : Json.t =
  let base name ph ts =
    [ ("name", Json.String name);
      ("cat", Json.String (cat e.payload));
      ("ph", Json.String ph);
      ("ts", Json.Int ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.cpu) ]
  in
  let name = display_name e.payload in
  match e.payload with
  | Span_begin _ -> Json.Obj (base name "B" e.time @ args_of e.payload)
  | Span_end _ -> Json.Obj (base name "E" e.time @ args_of e.payload)
  | Counter { name; value } ->
    Json.Obj
      (base name "C" e.time
      @ [ ("args", Json.Obj [ ("value", Json.Int value) ]) ])
  | p -> (
    match Event.span_of p with
    | Some dur ->
      Json.Obj
        (base name "X" (e.time - dur)
        @ [ ("dur", Json.Int dur) ]
        @ args_of p)
    | None ->
      Json.Obj (base name "i" e.time @ [ ("s", Json.String "t") ] @ args_of p))

let metadata events =
  (* One thread_name record per vCPU that emitted anything, plus the
     process name. Metadata ph "M" events have ts-independent semantics. *)
  let cpus =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.cpu) events)
  in
  let meta name tid args =
    Json.Obj
      [ ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj args) ]
  in
  meta "process_name" 0 [ ("name", Json.String "mmrepro") ]
  :: List.map
       (fun cpu ->
         meta "thread_name" cpu
           [ ("name", Json.String (Printf.sprintf "vCPU %d" cpu)) ])
       cpus

let to_json events =
  Json.Obj
    [ ("traceEvents", Json.List (metadata events @ List.map event_to_json events));
      ("displayTimeUnit", Json.String "ns") ]

let write ~path events = Json.write_file ~path (to_json events)
