(** Fixed-capacity ring buffer. Pushing beyond the capacity overwrites
    the oldest entries, keeping the tail of the stream. *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int
val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Entries currently held (≤ capacity). *)

val dropped : 'a t -> int
(** Entries overwritten so far. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit
val clear : 'a t -> unit
