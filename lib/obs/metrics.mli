(** Registry of named counters and log2-bucketed histograms. Global (any
    layer registers by name) and deterministic (enumeration is sorted by
    name). *)

type counter
type histogram

val counter : string -> counter
(** Find or create the counter with this name. *)

val inc : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val histogram : string -> histogram
(** Find or create the histogram with this name. *)

val observe : histogram -> int -> unit

val mean : histogram -> float
val samples : histogram -> int
val total : histogram -> int
val max_value : histogram -> int

val quantile : histogram -> float -> int
(** Upper bound of the log2 bucket holding the q-th quantile. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val histograms : unit -> (string * histogram) list

val reset : unit -> unit

val dump : unit -> string
(** Plain-text rendering of the whole registry. *)
