(** Registry of named counters and log2-bucketed histograms. Global (any
    layer registers by name) and deterministic (enumeration is sorted by
    name). *)

type counter
type histogram

val counter : string -> counter
(** Find or create the counter with this name. *)

val inc : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val histogram : string -> histogram
(** Find or create the histogram with this name. *)

val unregistered : string -> histogram
(** A fresh histogram outside the registry: it never appears in
    {!histograms}/{!dump} and is not shared by name, so per-run latency
    recorders (e.g. the serving mode's per-op histograms) stay
    independent across runs in one process. *)

val observe : histogram -> int -> unit

val mean : histogram -> float
val samples : histogram -> int
val total : histogram -> int
val max_value : histogram -> int

val quantile : histogram -> float -> int
(** [quantile h q] is an upper bound on the q-th quantile: the inclusive
    upper edge [2^(b+1)-1] of the log2 bucket [b] holding the observation
    at rank [ceil (q * n)], clamped to the exact observed maximum.

    Error bound: if the exact rank-[ceil (q*n)] value is [x >= 1], the
    returned [r] satisfies [x <= r <= max 1 (2*x - 1)] — never an
    underestimate, and strictly less than [2x]. An exact value of [0]
    reports at most [1] (bucket 0's edge). Tail quantiles (p99, p999)
    are therefore correct to within a factor of 2, while [mean], [total],
    [max_value] and [samples] are exact. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val histograms : unit -> (string * histogram) list

val reset : unit -> unit

val dump : unit -> string
(** Plain-text rendering of the whole registry. *)
