(* The tracing session: per-vCPU event rings behind one global on/off
   switch.

   Zero-overhead-when-disabled: the only cost an instrumentation site pays
   when no session is active is the [on ()] check — one ref dereference.
   Nothing in this module ever advances simulated time, so enabling a
   session changes *host* work only; virtual-time results are bit-identical
   with tracing on, off, or compiled out.

   Determinism: events carry the emitting vCPU's virtual time plus a
   global emission sequence number. The simulator schedules fibers
   deterministically, so the emission order — and therefore the entire
   stream — is reproducible run-to-run. [start] resets the metrics and
   contention registries (and the lock-id counter) so that two identical
   runs, each preceded by [start], produce byte-identical streams. *)

let max_cpus = 1024

type session = {
  rings : Event.t Ring.t option array; (* by cpu, created lazily *)
  capacity : int; (* per-cpu ring capacity *)
  mutable seq : int;
}

(* Domain-local: a tracing session belongs to the domain that started
   it. Parallel drivers (lib/par) never trace — the bench driver forces
   [-j 1] under [--trace]/[--report] so one session observes the whole
   sequential run, exactly as before. *)
let current_key : session option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let on () = !(current ()) <> None

let start ?(capacity = 1 lsl 16) () =
  if capacity <= 0 then invalid_arg "Trace.start: capacity";
  Metrics.reset ();
  Contention.reset ();
  current () := Some { rings = Array.make max_cpus None; capacity; seq = 0 }

let emit ~time ~cpu payload =
  match !(current ()) with
  | None -> ()
  | Some s ->
    if cpu < 0 || cpu >= max_cpus then ()
    else begin
      let ring =
        match s.rings.(cpu) with
        | Some r -> r
        | None ->
          let r = Ring.create ~capacity:s.capacity in
          s.rings.(cpu) <- Some r;
          r
      in
      Ring.push ring { Event.seq = s.seq; time; cpu; payload };
      s.seq <- s.seq + 1
    end

let collect s =
  let all =
    Array.fold_left
      (fun acc r -> match r with None -> acc | Some r -> Ring.to_list r :: acc)
      [] s.rings
  in
  List.concat all |> List.sort (fun a b -> compare a.Event.seq b.Event.seq)

let events () = match !(current ()) with None -> [] | Some s -> collect s

let dropped () =
  match !(current ()) with
  | None -> 0
  | Some s ->
    Array.fold_left
      (fun acc r -> match r with None -> acc | Some r -> acc + Ring.dropped r)
      0 s.rings

let stop () =
  let evs = events () in
  current () := None;
  evs

(* The canonical text stream — what the determinism guarantee is stated
   over (see test/test_obs.ml). *)
let to_text evs = String.concat "\n" (List.map Event.to_string evs)
