(* The lock-contention profile: per-lock aggregates of serialized cycles.

   Every simulated lock gets a cheap integer id at creation ([fresh_id] is
   one increment — frames allocate two locks each, so registration must
   not allocate). A lock enters this table only on its first *profiled*
   operation, i.e. while a profiling session is active, so idle locks cost
   nothing and the table stays small (only locks that were actually
   exercised).

   "Serialized cycles" is the total virtual time fibers spent waiting to
   acquire the lock — exactly the quantity the paper's scalability
   analysis attributes to each lock/cache line. The report ranks by it. *)

type entry = {
  id : int;
  kind : Event.lock_kind; (* Mutex or the rwlock family *)
  name : string;
  mutable acquisitions : int;
  mutable contended : int; (* acquisitions that had to wait *)
  mutable wait_cycles : int; (* total serialized cycles *)
  mutable max_wait : int;
  mutable hold_cycles : int; (* exclusive-side hold time *)
}

(* Domain-local (like the metrics registry): lock ids and the profile
   table are per-domain, and parallel tasks reset them at task start so
   a world's lock ids are independent of what ran before it — the ids
   appear in Live-checker violation text, which must not depend on the
   domain count or task order. *)
type state = {
  table : (int, entry) Hashtbl.t;
  mutable next_id : int;
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { table = Hashtbl.create 64; next_id = 0 })

let fresh_id () =
  let s = Domain.DLS.get state_key in
  let id = s.next_id in
  s.next_id <- id + 1;
  id

let reset () =
  let s = Domain.DLS.get state_key in
  Hashtbl.reset s.table;
  s.next_id <- 0

let get ~id ~kind ~name =
  let table = (Domain.DLS.get state_key).table in
  match Hashtbl.find_opt table id with
  | Some e -> e
  | None ->
    let e =
      {
        id;
        kind;
        name = name ();
        acquisitions = 0;
        contended = 0;
        wait_cycles = 0;
        max_wait = 0;
        hold_cycles = 0;
      }
    in
    Hashtbl.replace table id e;
    e

let acquired e ~wait =
  e.acquisitions <- e.acquisitions + 1;
  if wait > 0 then begin
    e.contended <- e.contended + 1;
    e.wait_cycles <- e.wait_cycles + wait;
    if wait > e.max_wait then e.max_wait <- wait
  end

let released e ~held = if held > 0 then e.hold_cycles <- e.hold_cycles + held

let name_of id =
  match Hashtbl.find_opt (Domain.DLS.get state_key).table id with
  | Some e -> e.name
  | None -> Printf.sprintf "lock#%d" id

(* Ranked by serialized cycles (ties by id, so output is deterministic). *)
let ranked () =
  Hashtbl.fold (fun _ e acc -> e :: acc) (Domain.DLS.get state_key).table []
  |> List.sort (fun a b ->
         match compare b.wait_cycles a.wait_cycles with
         | 0 -> compare a.id b.id
         | c -> c)

let top () = match ranked () with [] -> None | e :: _ -> Some e

let report ?(limit = 20) () =
  let b = Buffer.create 512 in
  match ranked () with
  | [] ->
    Buffer.add_string b "no lock contention recorded\n";
    Buffer.contents b
  | entries ->
    Buffer.add_string b
      "lock contention — ranked by serialized (wait) cycles\n\n";
    Buffer.add_string b
      (Printf.sprintf "%-32s %-8s %10s %10s %12s %10s %12s\n" "lock" "kind"
         "acqs" "contended" "wait-cycles" "max-wait" "hold-cycles");
    List.iteri
      (fun i e ->
        if i < limit then
          Buffer.add_string b
            (Printf.sprintf "%-32s %-8s %10d %10d %12d %10d %12d\n" e.name
               (match e.kind with
               | Event.Mutex -> "mutex"
               | Event.Rw_read | Event.Rw_write -> "rwlock")
               e.acquisitions e.contended e.wait_cycles e.max_wait
               e.hold_cycles))
      entries;
    let n = List.length entries in
    if n > limit then
      Buffer.add_string b (Printf.sprintf "... and %d more locks\n" (n - limit));
    Buffer.contents b
