(* Minimal JSON: an emitter and a recursive-descent parser.

   The container has no JSON library (DESIGN.md's dependency rule), and
   the subsystem needs both directions: the Chrome exporter and the bench
   --json writer emit, the test suite and check.sh validate by parsing.
   This is deliberately small: objects, arrays, strings (with the JSON
   escapes), ints, floats, bools, null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- Emission -- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | String s -> escape b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        emit b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b v;
  Buffer.contents b

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* -- Parsing -- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  if
    st.pos + String.length lit <= String.length st.src
    && String.sub st.src st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    value
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string_body st =
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
      | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
      | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
      | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
      | Some ('"' | '\\' | '/') ->
        Buffer.add_char b st.src.[st.pos];
        advance st;
        go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        (* Encode as UTF-8 (surrogates passed through raw). *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then fail st "expected number";
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        expect st '"';
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ()
        | Some '}' -> advance st
        | _ -> fail st "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements ()
        | Some ']' -> advance st
        | _ -> fail st "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' ->
    advance st;
    String (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length src then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

(* -- Accessors -- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
