(* Fixed-capacity ring buffer: the per-vCPU event store of the tracer.

   Pushing beyond the capacity overwrites the oldest entries (and counts
   them), so a long run keeps the *tail* of its history — what one wants
   when inspecting how a run ended — at a bounded, allocation-free cost
   per event after warmup. *)

type 'a t = {
  data : 'a option array;
  capacity : int;
  mutable pushed : int; (* total pushes ever *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  { data = Array.make capacity None; capacity; pushed = 0 }

let capacity t = t.capacity

let push t v =
  t.data.(t.pushed mod t.capacity) <- Some v;
  t.pushed <- t.pushed + 1

let length t = min t.pushed t.capacity
let dropped t = max 0 (t.pushed - t.capacity)

(* Oldest-first. *)
let to_list t =
  let n = length t in
  let first = t.pushed - n in
  List.init n (fun i ->
      match t.data.((first + i) mod t.capacity) with
      | Some v -> v
      | None -> assert false)

let iter t f = List.iter f (to_list t)

let clear t =
  Array.fill t.data 0 t.capacity None;
  t.pushed <- 0
