(* A registry of named counters and histograms that any layer can register
   into. Counters are plain ints; histograms bucket values by log2 (good
   enough for cycle counts spanning orders of magnitude) and keep exact
   count/sum/min/max so means are precise even though percentiles are
   bucket-resolution.

   The registry is global (instrumentation sites are scattered across
   every layer and must not thread a handle around) and deterministic:
   enumeration is sorted by name, never by hash order. *)

type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  buckets : int array; (* buckets.(b) counts values with log2 = b *)
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

(* The registry is domain-local: each domain of a parallel driver
   accumulates into its own tables (its tasks reset them at task
   start), so instrumentation sites on two domains never race. Within
   a domain it keeps the process-global feel instrumentation sites
   rely on. *)
type registry = {
  reg_counters : (string, counter) Hashtbl.t;
  reg_histograms : (string, histogram) Hashtbl.t;
}

let registry_key : registry Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { reg_counters = Hashtbl.create 64; reg_histograms = Hashtbl.create 64 })

let counters_tbl () = (Domain.DLS.get registry_key).reg_counters
let histograms_tbl () = (Domain.DLS.get registry_key).reg_histograms

let counter name =
  let counters_tbl = counters_tbl () in
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace counters_tbl name c;
    c

let add c by = c.count <- c.count + by
let inc c = add c 1
let count c = c.count

let nbuckets = 63

let histogram name =
  let histograms_tbl = histograms_tbl () in
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        buckets = Array.make nbuckets 0;
        n = 0;
        sum = 0;
        min_v = max_int;
        max_v = 0;
      }
    in
    Hashtbl.replace histograms_tbl name h;
    h

(* A histogram with the same shape but outside the registry: per-run
   latency recorders (the serving mode makes one per operation class per
   run) that must not accumulate across runs in one process and must not
   leak into dump()/histograms(). *)
let unregistered name =
  {
    h_name = name;
    buckets = Array.make nbuckets 0;
    n = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
    min (nbuckets - 1) (go (-1) v)

let observe h v =
  let v = max 0 v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let mean h = if h.n = 0 then 0.0 else float_of_int h.sum /. float_of_int h.n
let samples h = h.n
let total h = h.sum
let max_value h = h.max_v

(* Upper bound of the bucket holding the q-th quantile observation: the
   value at rank ceil(q*n) in sorted order lands in some log2 bucket b,
   and we report that bucket's inclusive upper edge 2^(b+1)-1, clamped to
   the exact maximum. So for an exact quantile x >= 1 the result r
   satisfies x <= r <= max(1, 2x-1): never an underestimate, and at most
   one power of two above (x=0 reports r <= 1, bucket 0's edge). *)
let quantile h q =
  if h.n = 0 then 0
  else begin
    let target =
      max 1 (int_of_float (ceil (q *. float_of_int h.n)))
    in
    let acc = ref 0 and result = ref h.max_v and found = ref false in
    Array.iteri
      (fun b c ->
        if not !found then begin
          acc := !acc + c;
          if !acc >= target then begin
            result := min h.max_v ((1 lsl (b + 1)) - 1);
            found := true
          end
        end)
      h.buckets;
    !result
  end

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let counters () =
  sorted_values (counters_tbl ())
  |> List.map (fun c -> (c.c_name, c.count))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms () =
  sorted_values (histograms_tbl ())
  |> List.map (fun h -> (h.h_name, h))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () =
  Hashtbl.reset (counters_tbl ());
  Hashtbl.reset (histograms_tbl ())

(* Plain-text dump, e.g. under a benchmark's --report flag. *)
let dump () =
  let b = Buffer.create 256 in
  let cs = counters () in
  if cs <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-36s %d\n" name v))
      cs
  end;
  let hs = histograms () in
  if hs <> [] then begin
    Buffer.add_string b "histograms (cycles):\n";
    Buffer.add_string b
      (Printf.sprintf "  %-36s %10s %10s %10s %10s %10s\n" "" "count" "mean"
         "p50<=" "p99<=" "max");
    List.iter
      (fun (name, h) ->
        Buffer.add_string b
          (Printf.sprintf "  %-36s %10d %10.1f %10d %10d %10d\n" name h.n
             (mean h) (quantile h 0.5) (quantile h 0.99) h.max_v))
      hs
  end;
  Buffer.contents b
