(** Chrome [trace_event] exporter. The produced JSON loads in Perfetto
    (ui.perfetto.dev) or chrome://tracing: pid 1 is the simulation, each
    vCPU appears as a named thread, spans carry their virtual-cycle
    durations. *)

val to_json : Event.t list -> Json.t
val write : path:string -> Event.t list -> unit
