(** Minimal dependency-free JSON: emit and parse. Used by the Chrome
    trace exporter, the bench --json writer, and the validation in
    tests / check.sh. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write_file : path:string -> t -> unit

val parse : string -> (t, string) result
val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an object; [None] on anything else. *)

val to_list_opt : t -> t list option
