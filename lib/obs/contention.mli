(** Per-lock contention profile: serialized (wait) cycles, hold time,
    acquisition counts. Locks register lazily on first profiled use. *)

type entry = {
  id : int;
  kind : Event.lock_kind;
  name : string;
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_cycles : int;
  mutable max_wait : int;
  mutable hold_cycles : int;
}

val fresh_id : unit -> int
(** A unique lock id; called once per lock at creation. The counter is
    reset by {!reset} (i.e. at {!Trace.start}), so identical runs started
    after a reset see identical ids. *)

val get : id:int -> kind:Event.lock_kind -> name:(unit -> string) -> entry
(** Find the entry for a lock, creating (and naming) it on first use. *)

val acquired : entry -> wait:int -> unit
val released : entry -> held:int -> unit

val name_of : int -> string
val ranked : unit -> entry list
(** All profiled locks, most serialized cycles first (deterministic). *)

val top : unit -> entry option
val report : ?limit:int -> unit -> string
val reset : unit -> unit
