(** RadixVM baseline (Clements et al., EuroSys'13): radix-tree address
    space with per-page metadata, per-core private page tables (no
    coherence traffic on PTE installs), and precise per-core TLB
    shootdown tracking. *)

type t

type fault_outcome = Handled | Sigsegv

exception Fault of int

val create : ?isa:Mm_hal.Isa.t -> ncpus:int -> unit -> t
val page_size : t -> int
val phys : t -> Mm_phys.Phys.t
val tlb : t -> Mm_tlb.Tlb.t

val mmap : t -> ?addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit -> int
val munmap : t -> addr:int -> len:int -> unit
val page_fault : t -> vaddr:int -> write:bool -> fault_outcome
val touch : t -> vaddr:int -> write:bool -> unit
val touch_range : t -> addr:int -> len:int -> write:bool -> unit

val replicated_pt_bytes : t -> int
(** Total page-table bytes across all per-core replicas — RadixVM's
    memory cost (Fig 22). *)

val radix_bytes : t -> int

val page_state : t -> vaddr:int -> [ `Unmapped | `Lazy of bool | `Resident of bool ]
(** Observation of one page for the differential oracle, read from the
    radix tree (the authoritative state; per-core PTs are caches). *)

val fork : t -> t
(** Eager-copy fork (RadixVM claims no COW): the child gets its own radix
    tree with freshly copied frames and empty per-core page tables that
    refill on its own faults. *)

val destroy : t -> unit
(** Free every mapped frame, the radix-tree bytes and the per-core
    page-table replicas (process exit). *)

val write_value : t -> vaddr:int -> value:int -> unit
(** Touch for write, then store a data token in the page's frame. Raises
    {!Fault} when unmapped. *)

val read_value : t -> vaddr:int -> int
(** Touch for read, then load the page's data token. Raises {!Fault}
    when unmapped. *)
