(* RadixVM baseline (Clements et al., EuroSys'13).

   RadixVM replaces the VMA tree with a radix tree over the virtual address
   space whose leaves store per-page metadata, and gives each core a
   *private* page table so that page faults never touch another core's
   cache lines (no coherence traffic on PTE installs). The costs are
   (1) memory: page tables are replicated per core, and (2) munmap must
   update every replica that mapped the region and shoot down exactly
   those cores' TLBs (precise tracking).

   The model: a software radix tree (9-bit fanout, like the hardware
   format) whose leaf nodes carry a lock, a cache line and a core mask;
   lookups are lock-free; modifications lock the leaf node. Each core owns
   a private [Pt] instance populated on its own faults. The paper's
   observation that RadixVM beats CortenMM_adv on high-contention PF comes
   out of this structure: concurrent faults on the same region lock the
   same radix leaf briefly but install PTEs into *different* page tables,
   so there is no contended PTE cache line. *)

open Mm_hal
module Pt = Mm_pt.Pt
module Va_alloc = Cortenmm.Va_alloc

type fault_outcome = Handled | Sigsegv

type rx_entry =
  | R_empty
  | R_reserved of Perm.t (* allocated, not yet backed *)
  | R_mapped of { pfn : int; perm : Perm.t }

type rx_node = {
  level : int; (* 1 = leaf node holding per-page entries *)
  entries : rx_entry array; (* used at level 1 *)
  children : rx_node option array; (* used above level 1 *)
  lock : Mm_sim.Mutex_s.t;
  line : Mm_sim.Engine.Line.t;
  mutable core_mask : int; (* cores whose PT may map pages under here *)
}

type t = {
  phys : Mm_phys.Phys.t;
  isa : Isa.t;
  ncpus : int;
  root : rx_node;
  pts : unit Pt.t option array; (* per-core private page tables *)
  tlb : Mm_tlb.Tlb.t;
  va : Va_alloc.t;
  (* Bytes of radix-tree nodes, for the memory-overhead experiment. *)
  mutable radix_nodes : int;
}

let fanout_bits = 9
let fanout = 1 lsl fanout_bits
let levels = 4
let radix_node_bytes = fanout * 8

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let make_node ~level =
  {
    level;
    entries = (if level = 1 then Array.make fanout R_empty else [||]);
    children = (if level > 1 then Array.make fanout None else [||]);
    lock = Mm_sim.Mutex_s.make ~name:"radixvm.node_lock" ();
    line = Mm_sim.Engine.Line.make ();
    core_mask = 0;
  }

let va_lo = 0x1000_0000

let create ?(isa = Isa.x86_64) ~ncpus () =
  let phys = Mm_phys.Phys.create () in
  let geo = isa.Isa.geo in
  let t =
    {
      phys;
      isa;
      ncpus;
      root = make_node ~level:levels;
      pts = Array.make ncpus None;
      tlb = Mm_tlb.Tlb.create ~ncpus ~strategy:Mm_tlb.Tlb.Sync ();
      va =
        Va_alloc.create ~ncpus ~per_core:true ~va_lo
          ~va_hi:(Geometry.va_limit geo) ~page_size:(Geometry.page_size geo);
      radix_nodes = 1;
    }
  in
  Mm_phys.Phys.kernel_alloc_bytes phys ~bytes:radix_node_bytes;
  t

let page_size t = Geometry.page_size t.isa.Isa.geo
let phys t = t.phys
let tlb t = t.tlb

let pt_for t ~cpu =
  match t.pts.(cpu) with
  | Some pt -> pt
  | None ->
    let pt = Pt.create t.phys t.isa in
    t.pts.(cpu) <- Some pt;
    pt

let index ~level ~vpn = (vpn lsr (fanout_bits * (level - 1))) land (fanout - 1)

(* Lock-free descent to the leaf radix node of [vpn], if it exists. *)
let leaf_opt t ~vpn =
  let rec go node =
    charge Mm_sim.Cost.vma_node_visit;
    if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.Line.read node.line;
    if node.level = 1 then Some node
    else
      match node.children.(index ~level:node.level ~vpn) with
      | Some c -> go c
      | None -> None
  in
  go t.root

(* Descent that creates missing interior nodes (under their parents'
   locks). *)
let leaf_create t ~vpn =
  let rec go node =
    charge Mm_sim.Cost.vma_node_visit;
    if node.level = 1 then node
    else
      let idx = index ~level:node.level ~vpn in
      match node.children.(idx) with
      | Some c -> go c
      | None ->
        Mm_sim.Mutex_s.lock node.lock;
        let c =
          match node.children.(idx) with
          | Some c -> c
          | None ->
            charge Mm_sim.Cost.page_alloc;
            let c = make_node ~level:(node.level - 1) in
            t.radix_nodes <- t.radix_nodes + 1;
            Mm_phys.Phys.kernel_alloc_bytes t.phys ~bytes:radix_node_bytes;
            node.children.(idx) <- Some c;
            c
        in
        Mm_sim.Mutex_s.unlock node.lock;
        go c
  in
  go t.root

let entry_idx ~vpn = vpn land (fanout - 1)

(* -- Operations -- *)

let mmap t ?addr ~len ~perm () =
  charge Mm_sim.Cost.syscall;
  let ps = page_size t in
  let len = Mm_util.Align.up len ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  let lo =
    match addr with
    | Some a -> a
    | None -> Va_alloc.alloc t.va ~cpu ~len ()
  in
  let npages = len / ps in
  let vpn0 = lo / ps in
  (* Mark pages reserved, locking each leaf radix node once. The reserved
     entry is immutable and identical for the whole range — share one
     block instead of allocating it per page (1 GiB = 256 Ki pages). *)
  let reserved = R_reserved perm in
  let i = ref 0 in
  while !i < npages do
    let vpn = vpn0 + !i in
    let leaf = leaf_create t ~vpn in
    Mm_sim.Mutex_s.lock leaf.lock;
    let in_this_leaf = min (npages - !i) (fanout - entry_idx ~vpn) in
    for k = 0 to in_this_leaf - 1 do
      charge Mm_sim.Cost.meta_write;
      leaf.entries.(entry_idx ~vpn + k) <- reserved
    done;
    Mm_sim.Mutex_s.unlock leaf.lock;
    i := !i + in_this_leaf
  done;
  lo

let install_pte t ~cpu ~vpn ~pfn ~perm =
  let pt = pt_for t ~cpu in
  let vaddr = vpn * page_size t in
  let node = Pt.walk_create pt ~to_level:1 vaddr in
  Pt.set pt node (Pt.index pt ~level:1 ~vaddr) (Pte.leaf ~pfn ~perm ());
  Mm_tlb.Tlb.install t.tlb ~cpu ~vpn ~pfn ~writable:perm.Perm.write ()

let page_fault t ~vaddr ~write =
  charge Mm_sim.Cost.trap;
  let ps = page_size t in
  let vpn = vaddr / ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  match leaf_opt t ~vpn with
  | None -> Sigsegv
  | Some leaf -> (
    let idx = entry_idx ~vpn in
    match leaf.entries.(idx) with
    | R_empty -> Sigsegv
    | R_reserved perm when not (Perm.allows perm ~write) -> Sigsegv
    | R_mapped { perm; _ } when not (Perm.allows perm ~write) -> Sigsegv
    | R_reserved perm ->
      Mm_sim.Mutex_s.lock leaf.lock;
      (match leaf.entries.(idx) with
      | R_reserved _ ->
        charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_zero);
        let frame = Mm_phys.Phys.alloc t.phys ~kind:Mm_phys.Frame.Anon () in
        frame.Mm_phys.Frame.map_count <- 1;
        leaf.entries.(idx) <-
          R_mapped { pfn = frame.Mm_phys.Frame.pfn; perm };
        leaf.core_mask <- leaf.core_mask lor (1 lsl cpu);
        Mm_sim.Mutex_s.unlock leaf.lock;
        install_pte t ~cpu ~vpn ~pfn:frame.Mm_phys.Frame.pfn ~perm
      | R_mapped { pfn; perm } ->
        (* Raced: another core backed it; install into our replica only. *)
        leaf.core_mask <- leaf.core_mask lor (1 lsl cpu);
        Mm_sim.Mutex_s.unlock leaf.lock;
        install_pte t ~cpu ~vpn ~pfn ~perm
      | R_empty ->
        Mm_sim.Mutex_s.unlock leaf.lock;
        raise Exit);
      Handled
    | R_mapped { pfn; perm } ->
      (* Present elsewhere: replicate the translation into our private PT.
         No lock needed — the mask update is monotone and the per-core
         tracking is refcache-style (per-core, reconciled lazily). *)
      charge Mm_sim.Cost.meta_write;
      leaf.core_mask <- leaf.core_mask lor (1 lsl cpu);
      install_pte t ~cpu ~vpn ~pfn ~perm;
      Handled)

let munmap t ~addr ~len =
  charge Mm_sim.Cost.syscall;
  let ps = page_size t in
  let len = Mm_util.Align.up len ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  let npages = len / ps in
  let vpn0 = addr / ps in
  let i = ref 0 in
  while !i < npages do
    let vpn = vpn0 + !i in
    match leaf_opt t ~vpn with
    | None -> i := !i + (fanout - entry_idx ~vpn)
    | Some leaf ->
      Mm_sim.Mutex_s.lock leaf.lock;
      let in_this_leaf = min (npages - !i) (fanout - entry_idx ~vpn) in
      let vpns = ref [] in
      for k = 0 to in_this_leaf - 1 do
        let idx = entry_idx ~vpn + k in
        match leaf.entries.(idx) with
        | R_mapped { pfn; _ } ->
          leaf.entries.(idx) <- R_empty;
          vpns := (vpn + k) :: !vpns;
          (* Remove from every core's replica that may map it. *)
          for c = 0 to t.ncpus - 1 do
            if leaf.core_mask land (1 lsl c) <> 0 then begin
              match t.pts.(c) with
              | Some pt ->
                let vaddr = (vpn + k) * ps in
                let node = Pt.walk_opt pt ~to_level:1 vaddr in
                if node.Pt.level = 1 then begin
                  match Pt.get pt node (Pt.index pt ~level:1 ~vaddr) with
                  | Pte.Leaf _ ->
                    Pt.set pt node (Pt.index pt ~level:1 ~vaddr) Pte.Absent
                  | Pte.Absent | Pte.Table _ -> ()
                end
              | None -> ()
            end
          done;
          let f = Mm_phys.Phys.frame t.phys pfn in
          f.Mm_phys.Frame.map_count <- 0;
          if f.Mm_phys.Frame.kind = Mm_phys.Frame.Anon then begin
            charge Mm_sim.Cost.page_free;
            Mm_phys.Phys.free t.phys f
          end
        | R_reserved _ -> leaf.entries.(idx) <- R_empty
        | R_empty -> ()
      done;
      (* Precise shootdown: only the cores in the leaf's mask. *)
      (if !vpns <> [] && Mm_sim.Engine.in_fiber () then
         let targets =
           Array.init t.ncpus (fun c -> leaf.core_mask land (1 lsl c) <> 0)
         in
         Mm_tlb.Tlb.shootdown t.tlb ~targets ~vpns:!vpns);
      Mm_sim.Mutex_s.unlock leaf.lock;
      i := !i + in_this_leaf
  done;
  Va_alloc.free t.va ~cpu ~addr ~len

exception Fault of int

let touch t ~vaddr ~write =
  let ps = page_size t in
  let vpn = vaddr / ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  charge Mm_sim.Cost.cache_hit;
  match Mm_tlb.Tlb.lookup t.tlb ~cpu ~vpn ~write with
  | Some _ -> ()
  | None -> (
    (* Walk our private page table. *)
    let pt = pt_for t ~cpu in
    let node = Pt.walk_opt pt ~to_level:1 vaddr in
    let hit =
      node.Pt.level = 1
      &&
      match Pt.get pt node (Pt.index pt ~level:1 ~vaddr) with
      | Pte.Leaf { pfn; perm; _ } when Perm.allows perm ~write ->
        Mm_tlb.Tlb.install t.tlb ~cpu ~vpn ~pfn ~writable:perm.Perm.write ();
        true
      | Pte.Leaf _ | Pte.Absent | Pte.Table _ -> false
    in
    if not hit then
      match page_fault t ~vaddr ~write with
      | Handled -> ()
      | Sigsegv -> raise (Fault vaddr))

let touch_range t ~addr ~len ~write =
  let ps = page_size t in
  let rec go v =
    if v < addr + len then begin
      touch t ~vaddr:v ~write;
      go (v + ps)
    end
  in
  go addr

(* Total page-table bytes across all replicas — RadixVM's memory cost. *)
let replicated_pt_bytes t =
  let ps = page_size t in
  Array.fold_left
    (fun acc pt ->
      match pt with Some pt -> acc + (Pt.pt_page_count pt * ps) | None -> acc)
    0 t.pts

let radix_bytes t = t.radix_nodes * radix_node_bytes

(* Normalized observation of one page for the differential oracle: a
   pure (uncharged, lock-free) descent of the radix tree. The radix
   entry is the authoritative state — per-core page tables are derived
   caches of it. *)
let page_state t ~vaddr =
  let vpn = vaddr / page_size t in
  let rec go node =
    if node.level = 1 then Some node
    else
      match node.children.(index ~level:node.level ~vpn) with
      | Some c -> go c
      | None -> None
  in
  match go t.root with
  | None -> `Unmapped
  | Some leaf -> (
    match leaf.entries.(entry_idx ~vpn) with
    | R_empty -> `Unmapped
    | R_reserved perm -> `Lazy perm.Perm.write
    | R_mapped { perm; _ } -> `Resident perm.Perm.write)

(* -- fork: eager copy. RadixVM does not claim COW; the child gets its
   own radix tree with fresh frames (contents copied) and empty per-core
   page tables that refill on its own faults — observationally identical
   to a COW fork for private memory, which is what the oracle diffs. *)

let fork t =
  charge Mm_sim.Cost.syscall;
  let child =
    {
      phys = t.phys;
      isa = t.isa;
      ncpus = t.ncpus;
      root = make_node ~level:levels;
      pts = Array.make t.ncpus None;
      tlb = Mm_tlb.Tlb.create ~ncpus:t.ncpus ~strategy:Mm_tlb.Tlb.Sync ();
      va = Va_alloc.clone t.va;
      radix_nodes = 1;
    }
  in
  Mm_phys.Phys.kernel_alloc_bytes t.phys ~bytes:radix_node_bytes;
  let rec copy node ~vpn_base =
    charge Mm_sim.Cost.vma_node_visit;
    if node.level = 1 then begin
      Mm_sim.Mutex_s.lock node.lock;
      for idx = 0 to fanout - 1 do
        match node.entries.(idx) with
        | R_empty -> ()
        | R_reserved _ as e ->
          let vpn = vpn_base + idx in
          let leaf = leaf_create child ~vpn in
          charge Mm_sim.Cost.meta_write;
          leaf.entries.(entry_idx ~vpn) <- e
        | R_mapped { pfn; perm } ->
          let vpn = vpn_base + idx in
          charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_copy);
          let f = Mm_phys.Phys.alloc t.phys ~kind:Mm_phys.Frame.Anon () in
          let src = Mm_phys.Phys.frame t.phys pfn in
          f.Mm_phys.Frame.contents <- src.Mm_phys.Frame.contents;
          f.Mm_phys.Frame.map_count <- 1;
          let leaf = leaf_create child ~vpn in
          leaf.entries.(entry_idx ~vpn) <-
            R_mapped { pfn = f.Mm_phys.Frame.pfn; perm }
      done;
      Mm_sim.Mutex_s.unlock node.lock
    end
    else
      let span = 1 lsl (fanout_bits * (node.level - 1)) in
      Array.iteri
        (fun i c ->
          match c with
          | Some c -> copy c ~vpn_base:(vpn_base + (i * span))
          | None -> ())
        node.children
  in
  copy t.root ~vpn_base:0;
  child

(* Tear one per-core page-table replica down: clear leaves (the radix
   sweep owns frame lifetimes) and free the interior PT pages. *)
let free_pt_pages pt =
  let rec go node =
    for idx = 0 to Pt.entries_per_node pt - 1 do
      match Pt.get_uncharged pt node idx with
      | Mm_hal.Pte.Table { pfn } -> (
        match Pt.node_of_pfn pt pfn with
        | Some _ ->
          let c = Pt.detach_child pt node idx in
          go c;
          Pt.free_node pt c
        | None -> ())
      | Mm_hal.Pte.Leaf _ -> Pt.set pt node idx Mm_hal.Pte.Absent
      | Mm_hal.Pte.Absent -> ()
    done
  in
  go (Pt.root pt)

let destroy t =
  charge Mm_sim.Cost.syscall;
  (* The radix tree is authoritative for frame lifetimes: free every
     mapped anon frame once, then drop the derived per-core caches. *)
  let rec sweep node =
    if node.level = 1 then
      for idx = 0 to fanout - 1 do
        match node.entries.(idx) with
        | R_mapped { pfn; _ } ->
          node.entries.(idx) <- R_empty;
          let f = Mm_phys.Phys.frame t.phys pfn in
          f.Mm_phys.Frame.map_count <- 0;
          if f.Mm_phys.Frame.kind = Mm_phys.Frame.Anon then begin
            charge Mm_sim.Cost.page_free;
            Mm_phys.Phys.free t.phys f
          end
        | R_reserved _ -> node.entries.(idx) <- R_empty
        | R_empty -> ()
      done
    else
      Array.iter (function Some c -> sweep c | None -> ()) node.children
  in
  sweep t.root;
  Mm_phys.Phys.kernel_free_bytes t.phys
    ~bytes:(t.radix_nodes * radix_node_bytes);
  t.radix_nodes <- 0;
  Array.iteri
    (fun i pt ->
      match pt with
      | Some pt ->
        free_pt_pages pt;
        t.pts.(i) <- None
      | None -> ())
    t.pts

(* Simulated data access, mirroring Cortenmm.Mm for the COW-fork oracle:
   touch resolves residency, then the authoritative radix entry names the
   frame whose contents token we read or write. *)
let with_pfn t ~vaddr f =
  let vpn = vaddr / page_size t in
  match leaf_opt t ~vpn with
  | None -> raise (Fault vaddr)
  | Some leaf -> (
    match leaf.entries.(entry_idx ~vpn) with
    | R_mapped { pfn; _ } -> f (Mm_phys.Phys.frame t.phys pfn)
    | R_empty | R_reserved _ -> raise (Fault vaddr))

let write_value t ~vaddr ~value =
  touch t ~vaddr ~write:true;
  with_pfn t ~vaddr (fun f -> f.Mm_phys.Frame.contents <- value)

let read_value t ~vaddr =
  touch t ~vaddr ~write:false;
  with_pfn t ~vaddr (fun f -> f.Mm_phys.Frame.contents)
