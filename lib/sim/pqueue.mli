(** Binary min-heap of scheduler events keyed by (time, tie key,
    sequence number). The tie key lets a scheduler policy permute
    same-time events (all-zero keys reproduce the historical (time, seq)
    order exactly); the sequence number makes the ordering total, which
    makes the whole simulation deterministic for any fixed key
    assignment. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val min_time : 'a t -> int
(** Earliest queued time, [max_int] when empty. Allocation-free peek for
    the scheduler's serialize fast path. *)

val push : 'a t -> time:int -> key:int -> seq:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest entry (its time and value). *)
