(** Synchronization-event monitor hook.

    The simulated lock models and the address space's cursor transactions
    announce their state transitions here so a runtime checker can
    validate mutual-exclusion and grace-period invariants against live
    engine state (see [Mm_verif.Live] and [lib/schedcheck]).

    Events are emitted synchronously by the fiber performing the
    transition — acquisition events after the acquiring fiber resumes —
    so emission order is the global execution order. Emitting never
    advances virtual time or touches the event queue: monitored and
    unmonitored runs are bit-identical. *)

type event =
  | Mutex_acquired of { lock : int; cpu : int }
  | Mutex_released of { lock : int; cpu : int }
  | Read_acquired of { lock : int; cpu : int }
  | Read_released of { lock : int; cpu : int }
  | Write_acquired of { lock : int; cpu : int }
  | Write_released of { lock : int; cpu : int }
  | Rcu_enter of { cpu : int }
  | Rcu_exit of { cpu : int }
  | Rcu_defer of { cb : int; waiting : bool array }
      (** [waiting.(c)]: cpu [c] was inside a read-side section when the
          callback was deferred; the grace period must wait for it. *)
  | Rcu_fire of { cb : int }
  | Txn_locked of { asp : int; cpu : int; lo : int; hi : int }
  | Txn_committed of { asp : int; cpu : int; lo : int; hi : int }
  | Frame_deferred of { pfn : int; pages : int }
      (** The frame's free was deferred behind a pending (batched) TLB
          shootdown; it must not be reallocated until {!Frame_freed}. *)
  | Frame_freed of { pfn : int; pages : int }
      (** A previously deferred frame was released by its batch flush. *)
  | Frame_allocated of { pfn : int; pages : int }
      (** Any frame allocation (emitted only while a monitor is
          installed) — lets a checker detect reuse-before-flush. *)
  | Obj_created of { obj : int; parent : int }
      (** A backing object came to life; [parent] is the shadow-chain
          parent's id, or -1 for a chain bottom. *)
  | Obj_ref of { obj : int; refs : int }
      (** Reference count after the increment. *)
  | Obj_unref of { obj : int; refs : int }
      (** Reference count after the decrement (>= 0). *)
  | Obj_collapsed of { obj : int; into : int }
      (** A singly-referenced chain parent merged its pages into its only
          remaining shadow and died; [into] survives with the shortened
          chain. *)
  | Obj_destroyed of { obj : int }
      (** The object's last reference was dropped (refs = 0). *)
  | Page_wired of { pfn : int }
      (** mlock: the frame is pinned; reclaim must never take it. *)
  | Page_unwired of { pfn : int }
  | Page_dirtied of { file : int; page : int }
      (** A shared file/shm page was modified; reclaim must write it back
          before dropping the cache frame. *)
  | Reclaim_waken of { free : int; target : int }
      (** The page-out daemon started a pass: [free] data frames
          resident, reclaiming down to [target]. *)
  | Reclaim_page of { pfn : int }
      (** A resident page was paged out (swapped/dropped) by reclaim. *)
  | Reclaim_writeback of { file : int; page : int }
      (** A dirty page's contents reached the backing store. *)
  | Reclaim_drop of { file : int; page : int; pfn : int }
      (** A page-cache frame was released after (any required)
          writeback. *)

val set : (event -> unit) -> unit
(** Install the (single) checker callback. *)

val clear : unit -> unit

val on : unit -> bool
(** Whether a checker is installed. Emission sites guard with this so
    payloads are never allocated when monitoring is off. *)

val emit : event -> unit
