(* Deterministic discrete-event multicore simulator.

   Each virtual CPU runs a *fiber*: an ordinary OCaml computation that is
   suspended with an effect handler whenever it interacts with simulated
   shared state. The scheduler replays suspended fibers in virtual-time
   order (ties broken by a sequence number, so runs are bit-reproducible).

   Time model:
   - Local computation advances only the fiber's own clock ([tick]).
   - Shared-memory interactions are ordered globally: before inspecting or
     mutating shared simulator state a fiber calls [serialize], which
     re-enqueues it so the scheduler resumes fibers in virtual-time order.
   - Cache-line contention is modelled by {!Line}: an atomic RMW on a line
     must wait until the line's previous exclusive use completes and pays a
     transfer cost when the line was last owned by another CPU. This single
     mechanism is what makes a global lock word a scalability bottleneck
     and lock-free traversal scalable, reproducing the paper's multicore
     shapes.

   The simulation is cooperative and single-(host-)threaded: exactly one
   fiber executes at a time, so plain OCaml mutation inside simulated
   critical sections is safe. *)

type fiber = {
  f_id : int;
  f_cpu : int;
  mutable f_time : int;
  mutable f_done : bool;
}

type parked = {
  pk_fiber : fiber;
  pk_k : (unit, unit) Effect.Deep.continuation;
  mutable pk_live : bool;
}

type _ Effect.t += Park : (parked -> unit) -> unit Effect.t

type stats = {
  mutable events : int;
  mutable parks : int;
  mutable wakes : int; (* explicit unparks (parks minus self-serializations
                          that were still pending at exit — so parks >= wakes) *)
  mutable rmws : int;
  mutable line_stalls : int; (* RMWs that had to wait for the line *)
  mutable max_ready_queue : int; (* high-water mark of runnable fibers *)
}

type world = {
  ncpus : int;
  owner : int; (* id of the domain that created the world; a world may
                  only ever be touched from that domain *)
  sched : Sched.t; (* tie-break policy: one key per event push *)
  mutable seq : int;
  mutable next_fiber_id : int;
  queue : (unit -> unit) Pqueue.t;
  mutable current : fiber option;
  mutable live : int; (* fibers spawned and not finished *)
  mutable runnable : int; (* fibers currently in the event queue *)
  cpu_time : int array;
  stats : stats;
}

exception Deadlock of string

(* The "currently running simulation" pointer is domain-local: each
   domain of a parallel driver (lib/par) runs its own independent
   single-fiber worlds, and one domain's run must be invisible to the
   others. Within a domain the invariant is unchanged — at most one
   world runs at a time. *)
let cur_world_key : world option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cur_world () = Domain.DLS.get cur_world_key

(* Ownership assertion: worlds are confined to the domain that created
   them. The check is two int comparisons on the cold paths (spawn/run),
   so it stays on unconditionally; it exists to catch a parallel driver
   accidentally sharing a world across domains, which would race on all
   of the world's plain mutable state. *)
let self_id () = (Domain.self () :> int)

let check_owner w fn =
  let d = self_id () in
  if d <> w.owner then
    failwith
      (Printf.sprintf
         "Engine.%s: world owned by domain %d touched from domain %d \
          (worlds are domain-confined: construct, run and drop a world \
          inside one parallel task)"
         fn w.owner d)

let create_sched ~sched ~ncpus =
  if ncpus <= 0 then invalid_arg "Engine.create: ncpus";
  {
    ncpus;
    owner = self_id ();
    sched;
    seq = 0;
    next_fiber_id = 0;
    queue = Pqueue.create ();
    current = None;
    live = 0;
    runnable = 0;
    cpu_time = Array.make ncpus 0;
    stats =
      {
        events = 0;
        parks = 0;
        wakes = 0;
        rmws = 0;
        line_stalls = 0;
        max_ready_queue = 0;
      };
  }

let create ~ncpus = create_sched ~sched:(Sched.fifo ()) ~ncpus

let world () =
  match !(cur_world ()) with
  | Some w -> w
  | None -> failwith "Engine: no simulation running"

let fiber () =
  match (world ()).current with
  | Some f -> f
  | None -> failwith "Engine: not inside a fiber"

let now () = (fiber ()).f_time
let cpu_id () = (fiber ()).f_cpu
let ncpus () = (world ()).ncpus

let in_fiber () =
  match !(cur_world ()) with Some w -> w.current <> None | None -> false

let tick c =
  if c < 0 then invalid_arg "Engine.tick: negative cost";
  let f = fiber () in
  f.f_time <- f.f_time + c

let advance_to t =
  let f = fiber () in
  if t > f.f_time then f.f_time <- t

let push_event w ~time run =
  w.seq <- w.seq + 1;
  Pqueue.push w.queue ~time ~key:(Sched.next_key w.sched) ~seq:w.seq run

let park register = Effect.perform (Park register)

let note_runnable w =
  if w.runnable > w.stats.max_ready_queue then
    w.stats.max_ready_queue <- w.runnable

let unpark p ~at =
  if not p.pk_live then failwith "Engine.unpark: fiber already unparked";
  p.pk_live <- false;
  let w = world () in
  w.stats.wakes <- w.stats.wakes + 1;
  w.runnable <- w.runnable + 1;
  note_runnable w;
  push_event w ~time:at (fun () ->
      let f = p.pk_fiber in
      if at > f.f_time then f.f_time <- at;
      w.current <- Some f;
      w.runnable <- w.runnable - 1;
      Effect.Deep.continue p.pk_k ())

let parked_time p = p.pk_fiber.f_time
let parked_cpu p = p.pk_fiber.f_cpu

(* Re-enter the event queue at the current virtual time so that shared-state
   operations apply in global time order.

   Fast path: parking would push an event at time f_time; when every queued
   event has a strictly later time, that event pops first no matter what tie
   key the policy would assign (keys only order equal times), so the
   scheduler would resume us straight away. Skip the park entirely — under
   any policy the execution order (and therefore every simulated result) is
   identical, without capturing a continuation or touching the event queue.
   This removes the dominant host-side cost of uncontended simulated lock
   and cache-line operations. *)
let serialize () =
  let w = world () in
  let f = fiber () in
  if Pqueue.min_time w.queue <= f.f_time then
    park (fun p -> unpark p ~at:(parked_time p))

let handler (w : world) (f : fiber) =
  {
    Effect.Deep.retc =
      (fun () ->
        f.f_done <- true;
        w.live <- w.live - 1;
        if f.f_time > w.cpu_time.(f.f_cpu) then
          w.cpu_time.(f.f_cpu) <- f.f_time);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Park register ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              w.stats.parks <- w.stats.parks + 1;
              register { pk_fiber = f; pk_k = k; pk_live = true })
        | _ -> None);
  }

let spawn w ~cpu prog =
  check_owner w "spawn";
  if cpu < 0 || cpu >= w.ncpus then invalid_arg "Engine.spawn: bad cpu";
  let f =
    { f_id = w.next_fiber_id; f_cpu = cpu; f_time = 0; f_done = false }
  in
  w.next_fiber_id <- w.next_fiber_id + 1;
  w.live <- w.live + 1;
  w.runnable <- w.runnable + 1;
  note_runnable w;
  push_event w ~time:0 (fun () ->
      w.current <- Some f;
      w.runnable <- w.runnable - 1;
      Effect.Deep.match_with prog () (handler w f))

let run w =
  check_owner w "run";
  let cw = cur_world () in
  (match !cw with
  | Some _ -> failwith "Engine.run: nested simulations are not supported"
  | None -> ());
  cw := Some w;
  let finish () = cw := None in
  (try
     let rec loop () =
       match Pqueue.pop w.queue with
       | None ->
         if w.live > 0 then
           raise
             (Deadlock
                (Printf.sprintf
                   "simulation stuck: %d fiber(s) parked with no wake-up"
                   w.live))
       | Some (_, run_event) ->
         w.stats.events <- w.stats.events + 1;
         run_event ();
         w.current <- None;
         loop ()
     in
     loop ()
   with e ->
     finish ();
     raise e);
  (* A clean finish must leave internally consistent stats: every wake
     resumed a prior park, and no fiber is still queued. *)
  if w.stats.parks < w.stats.wakes then
    failwith "Engine.run: stats inconsistent (wakes exceed parks)";
  if w.runnable <> 0 then
    failwith "Engine.run: stats inconsistent (runnable fibers after finish)";
  finish ()

let owner w = w.owner
let cpu_time w cpu = w.cpu_time.(cpu)
let max_time w = Array.fold_left max 0 w.cpu_time
let stats w = w.stats

(* Observability bridge: stamp an event with the emitting fiber's virtual
   time and CPU. Call sites guard with [Mm_obs.Trace.on ()] so the payload
   is never even allocated when tracing is off; recording never touches
   [f_time], so traced and untraced runs are bit-identical. *)
let obs payload =
  match !(cur_world ()) with
  | Some { current = Some f; _ } ->
    Mm_obs.Trace.emit ~time:f.f_time ~cpu:f.f_cpu payload
  | _ -> ()

(* -- Cache-line contention model -- *)

module Line = struct
  type t = {
    mutable avail : int; (* virtual time at which the line is next free *)
    mutable owner : int; (* cpu holding it exclusive; -1 none; -2 shared *)
  }

  let make () = { avail = 0; owner = -1 }

  (* Atomic read-modify-write: serializes through the line. *)
  let rmw t =
    serialize ();
    let w = world () in
    let f = fiber () in
    w.stats.rmws <- w.stats.rmws + 1;
    let start =
      if t.avail > f.f_time then begin
        w.stats.line_stalls <- w.stats.line_stalls + 1;
        t.avail
      end
      else f.f_time
    in
    let cost = if t.owner = f.f_cpu then Cost.atomic_local else Cost.line_transfer in
    let fin = start + cost in
    t.avail <- fin;
    t.owner <- f.f_cpu;
    f.f_time <- fin

  (* Plain shared read: pays a miss when the line is exclusive elsewhere
     but does not take ownership, so concurrent readers do not serialize —
     and once the line is in shared state, further reads hit. This
     asymmetry is exactly why RCU-style lock-free traversal scales and
     reader-counter rwlocks do not. *)
  let read t =
    let f = fiber () in
    let cost =
      if t.owner >= 0 && t.owner <> f.f_cpu then begin
        t.owner <- -2 (* downgrade M -> S *);
        Cost.cache_shared
      end
      else Cost.cache_hit
    in
    let start = if t.avail > f.f_time then t.avail else f.f_time in
    f.f_time <- start + cost

  (* Plain (non-atomic) write by a single owner, e.g. a store inside a
     critical section. Cheaper than an RMW but still invalidates sharers. *)
  let write t =
    serialize ();
    let f = fiber () in
    let start = if t.avail > f.f_time then t.avail else f.f_time in
    let cost = if t.owner = f.f_cpu then Cost.cache_hit else Cost.line_transfer in
    let fin = start + cost in
    t.avail <- fin;
    t.owner <- f.f_cpu;
    f.f_time <- fin
end
