(** Scheduler tie-break policies.

    The engine orders its event queue by (time, tie key, sequence
    number) and asks the world's policy for one key per event push. A
    policy therefore controls exactly the simulation's schedule freedom
    — the order of same-time ready fibers and of [serialize] re-entries
    — and nothing across distinct virtual times.

    A policy value is stateful (it counts decisions and, for [random],
    records the drawn keys); create a fresh one per world. *)

type t

val name : t -> string
(** Human-readable policy description, for harness reporting. *)

val fifo : unit -> t
(** Key 0 for every push: the order degenerates to (time, seq), which is
    bit-for-bit the engine's historical deterministic order. This is the
    default policy of {!Engine.create}. *)

val random : ?amplitude:int -> seed:int -> unit -> t
(** Keys drawn uniformly from [0, amplitude) (default 8) by a seeded
    {!Mm_util.Rng}; same-time ties are permuted, everything else is
    untouched. The drawn keys are recorded for {!recorded}/{!replay}. *)

val replay : int array -> t
(** Feed back a recorded key sequence, one key per push in push order;
    pushes beyond the end get key 0. Replaying the keys of a prior run
    reproduces that run exactly (the simulation is a deterministic
    function of the key sequence); an edited key array is simply a
    different — still deterministic — schedule. *)

val next_key : t -> int
(** The next tie key. Called by the engine once per event push. *)

val decisions : t -> int
(** How many keys this policy has handed out. *)

val recorded : t -> int array
(** The keys handed out so far ([random] policies only; empty for
    [fifo]/[replay]). *)
