(* Binary min-heap of scheduler events keyed by (time, tie key, sequence
   number). The tie key is a scheduler-policy knob that reorders events
   pushed for the same virtual time — with all keys 0 the ordering
   degenerates to (time, seq), the historical order. The sequence number
   makes the ordering total, which makes the whole simulation
   deterministic for any fixed key assignment. *)

type 'a entry = { time : int; key : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Earliest queued time, [max_int] when empty. Allocation-free peek for the
   scheduler's serialize fast path. *)
let min_time t = if t.size = 0 then max_int else t.data.(0).time

let before a b =
  a.time < b.time
  || (a.time = b.time
     && (a.key < b.key || (a.key = b.key && a.seq < b.seq)))

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (cap * 2) in
    let nd = Array.make ncap t.data.(0) in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let push t ~time ~key ~seq value =
  let e = { time; key; seq; value } in
  if Array.length t.data = 0 then t.data <- Array.make 16 e;
  grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    before t.data.(!i) t.data.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.data.(p) in
    t.data.(p) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.value)
  end
