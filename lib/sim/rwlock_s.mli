(** Phase-fair readers-writer lock model with optional BRAVO reader bias
    (the paper's BRAVO-pfqlock, used by CortenMM_rw). *)

type t

val make : ?bravo:bool -> ?name:string -> unit -> t
(** [name] labels the lock in contention reports and traces; unnamed locks
    appear as [rwlock#<id>]. *)

val set_name : t -> string -> unit
val id : t -> int

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val downgrade : t -> unit
(** Writer becomes a reader without releasing (used by Linux munmap). *)

val upgrade : t -> unit
(** Release read side, then acquire write side (not atomic; callers must
    re-validate, as the Linux page-fault path does). *)

val readers : t -> int
val writer_active : t -> bool
val read_acqs : t -> int
val write_acqs : t -> int
val revocations : t -> int

val set_mutant_skip_writer_handoff : bool -> unit
(** Fault injection for the schedcheck harness (global, default off): a
    buggy [write_unlock] that forgets to hand the lock to the next queued
    writer, starving it. Only the schedule explorer should ever set this;
    it must reset it before returning. *)
