(* Preemption-based RCU model (paper §4.5: "a simple preemption-based RCU").

   Read-side critical sections are nearly free: entering/leaving toggles a
   per-CPU nesting counter (no shared-line traffic) — this is what makes
   CortenMM_adv's lock-free traversal phase scale.

   Deferred frees ("the RCU monitor", Fig 6 L35): when a PT page is retired
   the monitor records which CPUs are currently inside a read-side critical
   section; the free callback runs once all of them have exited (the grace
   period). A CPU that retires an object while itself inside a read section
   waits for its own exit too. *)

type callback = {
  cb_id : int; (* monitor correlation id (Rcu_defer -> Rcu_fire) *)
  waiting_on : bool array; (* per-CPU: still inside its read section *)
  mutable remaining : int;
  fn : unit -> unit;
}

(* Monitor correlation ids: domain-local, unique across RCU instances
   within one monitored run. Parallel drivers reset them at task start
   ([Mm_workloads.Runner.reset_world_state]) so the ids a run reports
   do not depend on what ran before it on the same domain. *)
let next_cb_id_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let fresh_cb_id () =
  let r = Domain.DLS.get next_cb_id_key in
  incr r;
  !r

let reset_ids () = Domain.DLS.get next_cb_id_key := 0

(* Fault injection for schedcheck's mutant-catching harness: run every
   deferred callback immediately, ignoring the grace period — the
   use-after-free class of RCU bug. Never set outside the harness.
   Domain-local so concurrent schedcheck shards cannot disturb each
   other's mutants. *)
let mutant_no_grace_period_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let mutant_no_grace_period () = Domain.DLS.get mutant_no_grace_period_key
let set_mutant_no_grace_period v = mutant_no_grace_period () := v

type t = {
  nesting : int array;
  mutable pending : callback list;
  mutable deferred : int;
  mutable completed : int;
  mutable immediate : int; (* frees that needed no grace period *)
}

let make ~ncpus =
  {
    nesting = Array.make ncpus 0;
    pending = [];
    deferred = 0;
    completed = 0;
    immediate = 0;
  }

let read_lock t =
  Engine.serialize ();
  Engine.tick Cost.rcu_toggle;
  let c = Engine.cpu_id () in
  t.nesting.(c) <- t.nesting.(c) + 1;
  if t.nesting.(c) = 1 then begin
    if Mm_obs.Trace.on () then Engine.obs Mm_obs.Event.Rcu_enter;
    if Monitor.on () then Monitor.emit (Monitor.Rcu_enter { cpu = c })
  end

let in_read_section t ~cpu = t.nesting.(cpu) > 0

let quiesce t cpu =
  (* [cpu] left its read section: progress every pending grace period. *)
  let ready, rest =
    List.partition
      (fun cb ->
        if cb.waiting_on.(cpu) then begin
          cb.waiting_on.(cpu) <- false;
          cb.remaining <- cb.remaining - 1
        end;
        cb.remaining = 0)
      t.pending
  in
  t.pending <- rest;
  (match ready with
  | [] -> ()
  | _ when Mm_obs.Trace.on () ->
    let n = List.length ready in
    Mm_obs.Metrics.add (Mm_obs.Metrics.counter "rcu.gp_callbacks") n;
    Engine.obs (Mm_obs.Event.Rcu_gp { callbacks = n })
  | _ -> ());
  List.iter
    (fun cb ->
      t.completed <- t.completed + 1;
      if Monitor.on () then Monitor.emit (Monitor.Rcu_fire { cb = cb.cb_id });
      cb.fn ())
    ready

let read_unlock t =
  Engine.serialize ();
  Engine.tick Cost.rcu_toggle;
  let c = Engine.cpu_id () in
  if t.nesting.(c) <= 0 then failwith "Rcu_s.read_unlock: not in read section";
  t.nesting.(c) <- t.nesting.(c) - 1;
  if t.nesting.(c) = 0 then begin
    if Mm_obs.Trace.on () then Engine.obs Mm_obs.Event.Rcu_exit;
    (* Exit is announced before [quiesce] so callbacks firing in this
       very quiescent state observe the reader as already gone. *)
    if Monitor.on () then Monitor.emit (Monitor.Rcu_exit { cpu = c });
    quiesce t c
  end

let snapshot_readers t =
  let n = Array.length t.nesting in
  let waiting = Array.make n false in
  let remaining = ref 0 in
  for c = 0 to n - 1 do
    if t.nesting.(c) > 0 then begin
      waiting.(c) <- true;
      incr remaining
    end
  done;
  (waiting, !remaining)

let defer t fn =
  Engine.serialize ();
  Engine.tick Cost.cache_hit;
  t.deferred <- t.deferred + 1;
  let waiting, remaining = snapshot_readers t in
  let cb_id = if Monitor.on () then fresh_cb_id () else 0 in
  if Monitor.on () then
    Monitor.emit (Monitor.Rcu_defer { cb = cb_id; waiting = Array.copy waiting });
  if remaining = 0 || !(mutant_no_grace_period ()) then begin
    t.immediate <- t.immediate + 1;
    t.completed <- t.completed + 1;
    if Monitor.on () then Monitor.emit (Monitor.Rcu_fire { cb = cb_id });
    fn ()
  end
  else t.pending <- { cb_id; waiting_on = waiting; remaining; fn } :: t.pending;
  if Mm_obs.Trace.on () then begin
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "rcu.deferred");
    Engine.obs (Mm_obs.Event.Rcu_defer { pending = List.length t.pending })
  end

let synchronize t =
  Engine.serialize ();
  let _, remaining = snapshot_readers t in
  if remaining > 0 then
    Engine.park (fun p ->
        let waiting, remaining = snapshot_readers t in
        if remaining = 0 then Engine.unpark p ~at:(Engine.parked_time p)
        else
          t.pending <-
            {
              cb_id = (if Monitor.on () then fresh_cb_id () else 0);
              waiting_on = waiting;
              remaining;
              fn = (fun () -> Engine.unpark p ~at:(Engine.now ()));
            }
            :: t.pending)

let pending_callbacks t = List.length t.pending
let deferred t = t.deferred
let completed t = t.completed
let immediate t = t.immediate
