(* Scheduler tie-break policies.

   The engine orders events by (time, tie key, sequence number). Every
   event push asks the world's policy for the tie key of that push; two
   events with equal virtual times pop in key order, so the policy
   controls exactly the schedule freedom the simulation has — which
   same-time ready fiber runs first, and where a [serialize] re-entry
   lands among its contemporaries — and nothing else (causality across
   distinct times is fixed by the time model).

   [fifo] answers 0 for every push, which collapses the order back to
   (time, seq): bit-for-bit the pre-hook behaviour. [random] draws keys
   from a seeded generator and records them, so a run that fails can be
   replayed; [replay] feeds a recorded key sequence back (0 past the
   end). Because the simulation is a deterministic function of the key
   sequence, replaying the keys replays the run exactly, and editing the
   keys (zeroing, truncating) yields new — still deterministic —
   schedules, which is what the schedcheck shrinker exploits. *)

type t = {
  name : string;
  next : int -> int; (* decision index -> tie key *)
  record : bool;
  mutable count : int;
  mutable buf : int array;
}

let name t = t.name
let decisions t = t.count

let fifo () =
  { name = "fifo"; next = (fun _ -> 0); record = false; count = 0; buf = [||] }

let random ?(amplitude = 8) ~seed () =
  if amplitude <= 0 then invalid_arg "Sched.random: amplitude";
  let rng = Mm_util.Rng.create ~seed in
  {
    name = Printf.sprintf "random(seed=%d)" seed;
    next = (fun _ -> Mm_util.Rng.int rng amplitude);
    record = true;
    count = 0;
    buf = [||];
  }

let replay keys =
  {
    name = Printf.sprintf "replay(%d keys)" (Array.length keys);
    next = (fun i -> if i < Array.length keys then keys.(i) else 0);
    record = false;
    count = 0;
    buf = [||];
  }

let next_key t =
  let k = t.next t.count in
  if t.record then begin
    if t.count >= Array.length t.buf then begin
      let ncap = max 64 (2 * Array.length t.buf) in
      let nb = Array.make ncap 0 in
      Array.blit t.buf 0 nb 0 t.count;
      t.buf <- nb
    end;
    t.buf.(t.count) <- k
  end;
  t.count <- t.count + 1;
  k

let recorded t = Array.sub t.buf 0 (min t.count (Array.length t.buf))
