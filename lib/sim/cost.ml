(* The simulator's cost model, in cycles of a nominal 3 GHz server core.

   These constants are the *calibration surface* of the reproduction (see
   DESIGN.md): they are set to plausible magnitudes for a modern two-socket
   machine and tuned so that the single-threaded ratios of the paper's
   Fig 13 land in the reported bands. The multicore behaviour is NOT tuned —
   it emerges from which cache lines and locks the concurrent operations
   serialize on (see {!Engine} and the lock models). *)

(* -- Memory hierarchy -- *)

let cache_hit = 4
(* Read/write of a line already exclusive in the local cache. *)

let cache_shared = 40
(* Read of a line resident in another core's cache (goes to S state). *)

let line_transfer = 110
(* Exclusive (RFO) transfer of a contended line between cores. This is the
   constant that makes shared lock words and shared PT pages a scalability
   bottleneck. *)

let atomic_local = 18
(* Uncontended atomic RMW on a core-local line. *)

(* -- Kernel entry and generic MM work -- *)

let trap = 420 (* page-fault entry + IRET *)
let syscall = 260 (* syscall entry/exit *)
let page_alloc = 280 (* buddy allocation of one 4 KiB frame *)
let page_free = 140
let page_zero = 520 (* zeroing 4 KiB *)
let page_copy = 780 (* copying 4 KiB (COW break) *)
let pt_walk_step = 9 (* read + decode of one PTE during a walk *)
let pte_write = 6 (* encode + store of one PTE (plus line effects) *)
let pt_page_init = page_alloc + 170
(* Allocating and initializing a page-table page (drawn from a pre-zeroed
   pool, so cheaper than a cold 4 KiB zeroing) — the cost the paper blames
   for CortenMM's small mmap regression (Fig 13). *)

let meta_array_alloc = 160
(* Allocating a per-PTE metadata array for one PT page (CortenMM). *)

let meta_write = 10 (* writing one metadata entry *)

let meta_bulk_fill = 300
(* Filling a whole metadata array (a mark push-down): streaming stores. *)

(* -- VMA layer (Linux baseline) -- *)

let vma_node_visit = 12 (* one node during maple-tree descent *)
let vma_alloc = 110 (* slab allocation + init of a vm_area_struct *)
let vma_free = 40
let vma_tree_update = 60 (* rebalancing bookkeeping for insert/erase *)

let linux_fault_accounting = 260
(* Per-fault RSS counters, LRU pagevec insertion, memcg charging — work
   the Linux fault path does beyond the VMA and PTE manipulation. *)

(* -- Synchronization fine structure -- *)

let rcu_toggle = 2 (* preemption-disable style read-side entry/exit *)
let bravo_read = 12 (* BRAVO visible-reader slot update *)
let bravo_revoke_per_cpu = 30 (* writer scanning the visible-reader table *)
let lock_body = 10 (* bookkeeping inside an acquired lock *)

(* -- TLB maintenance -- *)

let tlb_flush_local = 120 (* invlpg + pipeline effects *)
let tlb_flush_page = 36 (* per extra page flushed *)
let ipi_send = 450 (* initiating one IPI *)
let ipi_ack_wait = 1400 (* waiting for a remote core to acknowledge *)
let ipi_ack_wait_early = 350
(* With early acknowledgement (Amit et al. [25]) the initiator continues
   long before the remote flush completes. *)

let numa_remote_alloc = 320
(* Extra latency of allocating and first-touching a frame on a remote
   NUMA node (the interconnect hop on the zeroing stores). *)

let latr_publish = 60 (* pushing an entry to the per-CPU LATR buffer *)
let latr_drain_per_entry = 50 (* background drain on timer tick *)

let batch_enqueue = 40
(* Appending one shootdown record (vpns + target mask) to the deferred
   shootdown batch — a core-local queue push, no cross-core traffic. *)
