(** Preemption-based RCU model: near-free read-side sections (per-CPU
    nesting counters, no shared-line traffic) and grace-period-deferred
    frees, as used by CortenMM_adv's lock-free traversal phase. *)

type t

val make : ncpus:int -> t
val read_lock : t -> unit
val read_unlock : t -> unit
val in_read_section : t -> cpu:int -> bool

val defer : t -> (unit -> unit) -> unit
(** Run the callback once every CPU currently inside a read-side critical
    section has exited (immediately if none is). The callback executes in
    the context of the last such CPU's [read_unlock]. *)

val synchronize : t -> unit
(** Block the calling fiber until a grace period elapses. *)

val pending_callbacks : t -> int
val deferred : t -> int
val completed : t -> int
val immediate : t -> int

val set_mutant_no_grace_period : bool -> unit
(** Fault injection for the schedcheck harness (domain-local, default
    off): [defer] runs its callback immediately, ignoring the grace
    period — the use-after-free class of RCU bug. Only the schedule
    explorer should ever set this; it must reset it before returning. *)

val reset_ids : unit -> unit
(** Reset the (domain-local) monitor correlation-id counter; parallel
    drivers call this at task start so reported ids are independent of
    what ran before on the same domain. *)
