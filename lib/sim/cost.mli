(** The simulator's cost model, in cycles of a nominal 3 GHz server core.

    These constants are the {e calibration surface} of the reproduction
    (see DESIGN.md): plausible magnitudes for a modern two-socket
    machine, tuned so the single-threaded ratios of the paper's Fig 13
    land in the reported bands. The multicore behaviour is NOT tuned —
    it emerges from which cache lines and locks the concurrent
    operations serialize on. *)

(** {2 Memory hierarchy} *)

val cache_hit : int
(** Read/write of a line already exclusive in the local cache. *)

val cache_shared : int
(** Read of a line resident in another core's cache (goes to S state). *)

val line_transfer : int
(** Exclusive (RFO) transfer of a contended line between cores — the
    constant that makes shared lock words and shared PT pages a
    scalability bottleneck. *)

val atomic_local : int
(** Uncontended atomic RMW on a core-local line. *)

(** {2 Kernel entry and generic MM work} *)

val trap : int
(** Page-fault entry + IRET. *)

val syscall : int
(** Syscall entry/exit. *)

val page_alloc : int
(** Buddy allocation of one 4 KiB frame. *)

val page_free : int

val page_zero : int
(** Zeroing 4 KiB. *)

val page_copy : int
(** Copying 4 KiB (COW break). *)

val pt_walk_step : int
(** Read + decode of one PTE during a walk. *)

val pte_write : int
(** Encode + store of one PTE (plus line effects). *)

val pt_page_init : int
(** Allocating and initializing a page-table page (drawn from a
    pre-zeroed pool) — the cost the paper blames for CortenMM's small
    mmap regression (Fig 13). *)

val meta_array_alloc : int
(** Allocating a per-PTE metadata array for one PT page (CortenMM). *)

val meta_write : int
(** Writing one metadata entry. *)

val meta_bulk_fill : int
(** Filling a whole metadata array (a mark push-down): streaming
    stores. *)

(** {2 VMA layer (Linux baseline)} *)

val vma_node_visit : int
(** One node during maple-tree descent. *)

val vma_alloc : int
(** Slab allocation + init of a vm_area_struct. *)

val vma_free : int

val vma_tree_update : int
(** Rebalancing bookkeeping for insert/erase. *)

val linux_fault_accounting : int
(** Per-fault RSS counters, LRU pagevec insertion, memcg charging — work
    the Linux fault path does beyond the VMA and PTE manipulation. *)

(** {2 Synchronization fine structure} *)

val rcu_toggle : int
(** Preemption-disable style read-side entry/exit. *)

val bravo_read : int
(** BRAVO visible-reader slot update. *)

val bravo_revoke_per_cpu : int
(** Writer scanning the visible-reader table. *)

val lock_body : int
(** Bookkeeping inside an acquired lock. *)

(** {2 TLB maintenance} *)

val tlb_flush_local : int
(** invlpg + pipeline effects. *)

val tlb_flush_page : int
(** Per extra page flushed. *)

val ipi_send : int
(** Initiating one IPI. *)

val ipi_ack_wait : int
(** Waiting for a remote core to acknowledge. *)

val ipi_ack_wait_early : int
(** With early acknowledgement (Amit et al.) the initiator continues
    long before the remote flush completes. *)

val numa_remote_alloc : int
(** Extra latency of allocating and first-touching a frame on a remote
    NUMA node (the interconnect hop on the zeroing stores). *)

val latr_publish : int
(** Pushing an entry to the per-CPU LATR buffer. *)

val latr_drain_per_entry : int
(** Background drain on timer tick. *)

val batch_enqueue : int
(** Appending one shootdown record (vpns + target mask) to the deferred
    shootdown batch — a core-local queue push, no cross-core traffic. *)
