(** MCS-style queued spin-lock model: one line RMW per acquire, FIFO
    handoff at a line-transfer latency, waiters spin locally (free). *)

type t

val make : ?name:string -> unit -> t
(** [name] labels the lock in contention reports and traces; unnamed locks
    appear as [mutex#<id>]. *)

val set_name : t -> string -> unit
val id : t -> int

val lock : t -> unit
val try_lock : t -> bool

val unlock : t -> unit
(** Raises if the lock is not held, or held by a different CPU. *)

val holder : t -> int option
val is_locked : t -> bool
val acquisitions : t -> int
val contended : t -> int
