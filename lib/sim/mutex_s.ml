(* MCS-style queued spin-lock model.

   An MCS lock's contention behaviour: acquisition swaps the tail pointer
   (one RMW on the lock's cache line), waiters spin on their *own* node
   (local, free), and release hands the lock to the successor with a single
   line transfer. We model exactly that: one [Line.rmw] per acquire, FIFO
   queue of parked fibers, and a [line_transfer] handoff latency.
   CortenMM_adv uses this as the per-PT-page lock (paper §4.5).

   Observability: each lock carries a cheap integer id; profile entries and
   trace events are produced only while a session is active ([Trace.on]),
   and recording never advances virtual time. Wait time is the parked
   duration (cycles serialized behind the holder), not the line-transfer
   cost of an uncontended acquire. *)

type t = {
  line : Engine.Line.t;
  id : int;
  mutable name : string option;
  mutable locked : bool;
  mutable holder : int; (* cpu, or -1 *)
  mutable acquired_at : int; (* virtual time of last acquisition *)
  waiters : Engine.parked Queue.t;
  mutable acquisitions : int;
  mutable contended : int;
}

let make ?name () =
  {
    line = Engine.Line.make ();
    id = Mm_obs.Contention.fresh_id ();
    name;
    locked = false;
    holder = -1;
    acquired_at = 0;
    waiters = Queue.create ();
    acquisitions = 0;
    contended = 0;
  }

let set_name t name = t.name <- Some name

let profile t =
  Mm_obs.Contention.get ~id:t.id ~kind:Mm_obs.Event.Mutex ~name:(fun () ->
      match t.name with
      | Some n -> n
      | None -> Printf.sprintf "mutex#%d" t.id)

let note_acquired t ~wait =
  t.acquired_at <- Engine.now ();
  if Mm_obs.Trace.on () then begin
    Mm_obs.Contention.acquired (profile t) ~wait;
    Mm_obs.Metrics.observe (Mm_obs.Metrics.histogram "lock.wait_cycles") wait;
    Engine.obs
      (Mm_obs.Event.Lock_acquire { lock = t.id; kind = Mm_obs.Event.Mutex; wait })
  end;
  if Monitor.on () then
    Monitor.emit (Monitor.Mutex_acquired { lock = t.id; cpu = t.holder })

let lock t =
  Engine.Line.rmw t.line;
  t.acquisitions <- t.acquisitions + 1;
  if not t.locked then begin
    t.locked <- true;
    t.holder <- Engine.cpu_id ();
    note_acquired t ~wait:0
  end
  else begin
    t.contended <- t.contended + 1;
    if Mm_obs.Trace.on () then
      Engine.obs
        (Mm_obs.Event.Lock_contend { lock = t.id; kind = Mm_obs.Event.Mutex });
    let t0 = Engine.now () in
    Engine.park (fun p -> Queue.push p t.waiters);
    (* We resume as the holder: [unlock] set [holder] before unparking. *)
    note_acquired t ~wait:(Engine.now () - t0)
  end

let try_lock t =
  Engine.Line.rmw t.line;
  if t.locked then false
  else begin
    t.acquisitions <- t.acquisitions + 1;
    t.locked <- true;
    t.holder <- Engine.cpu_id ();
    note_acquired t ~wait:0;
    true
  end

let unlock t =
  Engine.serialize ();
  if not t.locked then failwith "Mutex_s.unlock: not locked";
  if t.holder <> Engine.cpu_id () then
    failwith "Mutex_s.unlock: unlocked by non-holder";
  Engine.tick Cost.cache_hit;
  if Mm_obs.Trace.on () then begin
    let held = Engine.now () - t.acquired_at in
    Mm_obs.Contention.released (profile t) ~held;
    Mm_obs.Metrics.observe (Mm_obs.Metrics.histogram "lock.hold_cycles") held;
    Engine.obs
      (Mm_obs.Event.Lock_release { lock = t.id; kind = Mm_obs.Event.Mutex; held })
  end;
  if Monitor.on () then
    Monitor.emit (Monitor.Mutex_released { lock = t.id; cpu = t.holder });
  match Queue.take_opt t.waiters with
  | None ->
    t.locked <- false;
    t.holder <- -1
  | Some p ->
    t.holder <- Engine.parked_cpu p;
    (* Handoff: the successor observes the release after a line transfer. *)
    Engine.unpark p ~at:(Engine.now () + Cost.line_transfer)

let holder t = if t.locked then Some t.holder else None
let is_locked t = t.locked
let acquisitions t = t.acquisitions
let contended t = t.contended
let id t = t.id
