(** Deterministic discrete-event multicore simulator.

    Virtual CPUs run OCaml fibers (via effects). Local computation advances
    a per-fiber clock; shared-state interactions are globally ordered by
    virtual time; cache-line contention is modelled by {!Line}. See
    DESIGN.md for why this reproduces the paper's multicore behaviour. *)

type world
type parked

type fiber = {
  f_id : int;
  f_cpu : int;
  mutable f_time : int;
  mutable f_done : bool;
}

type stats = {
  mutable events : int;
  mutable parks : int;
  mutable wakes : int;
  mutable rmws : int;
  mutable line_stalls : int;
  mutable max_ready_queue : int;
}

exception Deadlock of string

val create : ncpus:int -> world
(** A world with the {!Sched.fifo} tie-break policy: the historical
    deterministic order, bit-for-bit. *)

val create_sched : sched:Sched.t -> ncpus:int -> world
(** A world with an explicit tie-break policy. The policy is consulted
    once per event push and orders same-time events (ready fibers,
    [serialize] re-entries) — nothing across distinct virtual times.
    Policies are stateful: pass a fresh one per world. *)

val spawn : world -> cpu:int -> (unit -> unit) -> unit

val run : world -> unit
(** Run all spawned fibers to completion. Raises {!Deadlock} if fibers
    remain parked with no pending wake-up event.

    Worlds are domain-confined: {!spawn} and {!run} assert that the
    calling domain is the one that created the world ([Failure]
    otherwise). The "currently running world" pointer is domain-local,
    so independent worlds may run concurrently on different domains
    (see [lib/par]) — but a single world must be constructed, run and
    dropped entirely within one domain. *)

val owner : world -> int
(** Id of the domain that created the world (the only domain allowed to
    touch it). *)

val cpu_time : world -> int -> int
(** Final virtual time of a CPU (max over its finished fibers). *)

val max_time : world -> int
val stats : world -> stats

(** The functions below may only be called from inside a running fiber. *)

val world : unit -> world
val now : unit -> int
val cpu_id : unit -> int
val ncpus : unit -> int

val in_fiber : unit -> bool
(** Whether the caller is executing inside a simulation fiber. Shared data
    structures use this to charge costs only under simulation, so the same
    code can run in plain unit tests. *)

val tick : int -> unit
(** Advance the current fiber's clock by a non-negative cost. *)

val advance_to : int -> unit
(** Advance the current fiber's clock to at least the given time. *)

val park : (parked -> unit) -> unit
(** Suspend the current fiber; the callback receives a handle that a later
    [unpark] resumes. The callback runs before the fiber is suspended...
    i.e. it must only register the handle, not resume it synchronously. *)

val unpark : parked -> at:int -> unit
(** Schedule a parked fiber to resume at the given virtual time (its clock
    is advanced to [at] if behind). Each handle may be unparked once. *)

val parked_time : parked -> int
val parked_cpu : parked -> int

val serialize : unit -> unit
(** Re-enter the scheduler at the current time so that subsequent shared
    state inspection happens in global virtual-time order. Every simulated
    synchronization primitive calls this before touching its state. *)

val obs : Mm_obs.Event.payload -> unit
(** Record a trace event stamped with the current fiber's virtual time and
    CPU; no-op outside a fiber or without an active {!Mm_obs.Trace}
    session. Guard call sites with [Mm_obs.Trace.on ()] so payloads are not
    allocated when tracing is off. Never advances virtual time. *)

(** Cache-line contention model. *)
module Line : sig
  type t

  val make : unit -> t

  val rmw : t -> unit
  (** Atomic read-modify-write: waits for the line, pays a transfer cost if
      another CPU owned it, and takes exclusive ownership. Concurrent RMWs
      on one line serialize — the root cause of lock-word bottlenecks. *)

  val read : t -> unit
  (** Plain shared read: pays a miss if remote but does not serialize. *)

  val write : t -> unit
  (** Plain store by one owner; invalidates sharers. *)
end
