(* Phase-fair readers-writer lock model with optional BRAVO reader bias.

   CortenMM_rw uses "BRAVO-pfqlock" (paper §4.5): a phase-fair queued
   rwlock (Brandenburg & Anderson) whose readers are made cheap by BRAVO
   (Dice & Kogan): while no writer is around, readers publish themselves in
   a per-CPU visible-readers table (no shared-line RMW); a writer revokes
   the bias by scanning the table (cost proportional to the CPU count),
   after which readers fall back to RMWs on the lock word until the lock
   has been writer-free for a while.

   Phase-fairness: a pending writer blocks new readers; when a writer
   releases, the entire waiting reader phase is admitted at once.

   This captures the scalability difference the paper measures between
   CortenMM_rw (reader RMWs or revocation scans on the root lock) and
   CortenMM_adv (no reader-side shared writes at all).

   Observability mirrors {!Mutex_s}: integer id at creation, lazy profile
   entry, events only while tracing. Wait time is the parked duration; hold
   time is tracked for the exclusive (writer) side only — readers overlap,
   so a per-reader hold would need per-fiber state the model doesn't keep. *)

type t = {
  line : Engine.Line.t;
  id : int;
  mutable name : string option;
  bravo_capable : bool;
  mutable bravo : bool;
  mutable reads_since_writer : int;
  mutable readers : int;
  mutable writer : bool;
  mutable writer_cpu : int;
  mutable writer_since : int; (* virtual time the writer acquired *)
  rwait : Engine.parked Queue.t;
  wwait : Engine.parked Queue.t;
  mutable read_acqs : int;
  mutable write_acqs : int;
  mutable revocations : int;
}

let bravo_reenable_threshold = 16

let make ?(bravo = true) ?name () =
  {
    line = Engine.Line.make ();
    id = Mm_obs.Contention.fresh_id ();
    name;
    bravo_capable = bravo;
    bravo;
    reads_since_writer = 0;
    readers = 0;
    writer = false;
    writer_cpu = -1;
    writer_since = 0;
    rwait = Queue.create ();
    wwait = Queue.create ();
    read_acqs = 0;
    write_acqs = 0;
    revocations = 0;
  }

let set_name t name = t.name <- Some name

let profile t =
  Mm_obs.Contention.get ~id:t.id ~kind:Mm_obs.Event.Rw_write ~name:(fun () ->
      match t.name with
      | Some n -> n
      | None -> Printf.sprintf "rwlock#%d" t.id)

let note_acquired t ~kind ~wait =
  if Mm_obs.Trace.on () then begin
    Mm_obs.Contention.acquired (profile t) ~wait;
    Mm_obs.Metrics.observe (Mm_obs.Metrics.histogram "lock.wait_cycles") wait;
    Engine.obs (Mm_obs.Event.Lock_acquire { lock = t.id; kind; wait })
  end;
  if Monitor.on () then begin
    let cpu = Engine.cpu_id () in
    Monitor.emit
      (match kind with
      | Mm_obs.Event.Rw_write -> Monitor.Write_acquired { lock = t.id; cpu }
      | _ -> Monitor.Read_acquired { lock = t.id; cpu })
  end

let note_contend t ~kind =
  if Mm_obs.Trace.on () then
    Engine.obs (Mm_obs.Event.Lock_contend { lock = t.id; kind })

let reader_entry_cost t =
  if t.bravo then Engine.tick Cost.bravo_read else Engine.Line.rmw t.line

let maybe_reenable_bravo t =
  if
    t.bravo_capable && (not t.bravo) && (not t.writer)
    && Queue.is_empty t.wwait
    && t.reads_since_writer >= bravo_reenable_threshold
  then t.bravo <- true

let read_lock t =
  Engine.serialize ();
  if t.writer || not (Queue.is_empty t.wwait) then begin
    (* Phase-fair: a pending writer blocks new readers. The waker updates
       the lock state on our behalf before unparking us. *)
    note_contend t ~kind:Mm_obs.Event.Rw_read;
    let t0 = Engine.now () in
    Engine.park (fun p -> Queue.push p t.rwait);
    note_acquired t ~kind:Mm_obs.Event.Rw_read ~wait:(Engine.now () - t0)
  end
  else begin
    reader_entry_cost t;
    t.readers <- t.readers + 1;
    t.read_acqs <- t.read_acqs + 1;
    t.reads_since_writer <- t.reads_since_writer + 1;
    maybe_reenable_bravo t;
    note_acquired t ~kind:Mm_obs.Event.Rw_read ~wait:0
  end

let wake_next_writer t =
  match Queue.take_opt t.wwait with
  | None -> ()
  | Some p ->
    t.writer <- true;
    t.writer_cpu <- Engine.parked_cpu p;
    t.write_acqs <- t.write_acqs + 1;
    Engine.unpark p ~at:(Engine.now () + Cost.line_transfer)

let read_unlock t =
  Engine.serialize ();
  if t.readers <= 0 then failwith "Rwlock_s.read_unlock: no readers";
  reader_entry_cost t;
  t.readers <- t.readers - 1;
  if Mm_obs.Trace.on () then
    Engine.obs
      (Mm_obs.Event.Lock_release
         { lock = t.id; kind = Mm_obs.Event.Rw_read; held = 0 });
  if Monitor.on () then
    Monitor.emit
      (Monitor.Read_released { lock = t.id; cpu = Engine.cpu_id () });
  if t.readers = 0 && not t.writer then wake_next_writer t

let write_lock t =
  Engine.Line.rmw t.line;
  t.reads_since_writer <- 0;
  if t.bravo then begin
    (* Revoke the reader bias: scan the visible-readers table. *)
    t.bravo <- false;
    t.revocations <- t.revocations + 1;
    Engine.tick (Cost.bravo_revoke_per_cpu * Engine.ncpus ())
  end;
  if t.readers = 0 && (not t.writer) && Queue.is_empty t.wwait then begin
    t.writer <- true;
    t.writer_cpu <- Engine.cpu_id ();
    t.write_acqs <- t.write_acqs + 1;
    t.writer_since <- Engine.now ();
    note_acquired t ~kind:Mm_obs.Event.Rw_write ~wait:0
  end
  else begin
    note_contend t ~kind:Mm_obs.Event.Rw_write;
    let t0 = Engine.now () in
    Engine.park (fun p -> Queue.push p t.wwait);
    (* We resume as the writer: [wake_next_writer] set the state. *)
    t.writer_since <- Engine.now ();
    note_acquired t ~kind:Mm_obs.Event.Rw_write ~wait:(Engine.now () - t0)
  end

let wake_reader_phase t =
  let base = Engine.now () + Cost.line_transfer in
  let i = ref 0 in
  let admit p =
    t.readers <- t.readers + 1;
    t.read_acqs <- t.read_acqs + 1;
    (* Waking readers still serialize lightly on the lock word. *)
    Engine.unpark p ~at:(base + (!i * Cost.atomic_local));
    incr i
  in
  Queue.iter admit t.rwait;
  Queue.clear t.rwait

let note_writer_release t =
  if Mm_obs.Trace.on () then begin
    let held = Engine.now () - t.writer_since in
    Mm_obs.Contention.released (profile t) ~held;
    Mm_obs.Metrics.observe (Mm_obs.Metrics.histogram "lock.hold_cycles") held;
    Engine.obs
      (Mm_obs.Event.Lock_release
         { lock = t.id; kind = Mm_obs.Event.Rw_write; held })
  end

(* Fault injection for schedcheck's mutant-catching harness: a buggy
   write_unlock that forgets to hand the lock to the next queued writer
   (waiting readers are still admitted). Parked writers then starve —
   exactly the class of omitted-wakeup bug the schedule explorer exists
   to catch. Never set outside the harness. *)
let mutant_skip_writer_handoff_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

(* Domain-local so concurrent schedcheck shards cannot disturb each
   other's mutants. *)
let mutant_skip_writer_handoff () =
  Domain.DLS.get mutant_skip_writer_handoff_key

let set_mutant_skip_writer_handoff v = mutant_skip_writer_handoff () := v

let write_unlock t =
  Engine.serialize ();
  if not t.writer then failwith "Rwlock_s.write_unlock: no writer";
  if t.writer_cpu <> Engine.cpu_id () then
    failwith "Rwlock_s.write_unlock: wrong cpu";
  Engine.tick Cost.cache_hit;
  note_writer_release t;
  t.writer <- false;
  t.writer_cpu <- -1;
  if Monitor.on () then
    Monitor.emit
      (Monitor.Write_released { lock = t.id; cpu = Engine.cpu_id () });
  if not (Queue.is_empty t.rwait) then wake_reader_phase t
  else if not !(mutant_skip_writer_handoff ()) then wake_next_writer t

let downgrade t =
  Engine.serialize ();
  if not t.writer then failwith "Rwlock_s.downgrade: no writer";
  if t.writer_cpu <> Engine.cpu_id () then
    failwith "Rwlock_s.downgrade: wrong cpu";
  Engine.tick Cost.cache_hit;
  note_writer_release t;
  t.writer <- false;
  t.writer_cpu <- -1;
  t.readers <- t.readers + 1;
  if Monitor.on () then begin
    let cpu = Engine.cpu_id () in
    Monitor.emit (Monitor.Write_released { lock = t.id; cpu });
    Monitor.emit (Monitor.Read_acquired { lock = t.id; cpu })
  end;
  (* Phase-fair: the waiting reader phase joins us. *)
  if not (Queue.is_empty t.rwait) then wake_reader_phase t

(* Upgrade is modelled as release-then-acquire, as in the Linux page-fault
   path (Fig 2 re-validates after upgrading). *)
let upgrade t =
  read_unlock t;
  write_lock t

let readers t = t.readers
let writer_active t = t.writer
let read_acqs t = t.read_acqs
let write_acqs t = t.write_acqs
let revocations t = t.revocations
let id t = t.id
