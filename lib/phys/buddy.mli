(** Buddy allocator over physical frame numbers (Linux-style, as CortenMM's
    physical memory manager). Pure data structure: callers charge
    simulation costs. *)

type t

exception Out_of_memory

val max_order : int
val create : nframes:int -> t

val alloc : t -> order:int -> int
(** Allocate a block of [2^order] frames; returns its first pfn (aligned to
    the block size). Raises {!Out_of_memory} when the range is exhausted. *)

val free : t -> pfn:int -> order:int -> unit
(** Free a block previously allocated with the same order. Detects double
    frees and misaligned blocks. *)

val allocated_frames : t -> int
val free_frames : t -> int
val splits : t -> int
val merges : t -> int

val frontier : t -> int
(** First never-allocated pfn (the bump frontier). *)

val free_blocks : t -> order:int -> int list
(** Free-block pfns of one order, sorted ascending. For tests and the
    reference-implementation equivalence harness. *)

val check_invariants : t -> unit
(** Raises [Failure] if internal invariants are broken (for tests). *)
