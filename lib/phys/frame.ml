(* Physical page frames and their page descriptors.

   CortenMM borrows Linux's design of one descriptor per physical frame
   (paper §4.5, "struct page"). The descriptor carries:
   - the lock protecting the frame when it is a page-table page (the
     per-PT-page lock both protocols acquire),
   - the stale flag CortenMM_adv sets on unmapped PT pages (Fig 6/7),
   - the map count used by COW ("no need to COW if parent/child has left",
     Fig 8 L29),
   - a cache-line handle so concurrent access to the frame's contents can
     be charged for coherence traffic,
   - an integer "contents" token standing in for the page's data, used by
     tests to verify copy-on-write and swap round-trips. *)

type kind =
  | Free
  | Pt_page (* a page-table page *)
  | Anon (* anonymous user data *)
  | File_page (* page-cache page of a simulated file *)
  | Kernel (* metadata arrays, VMA structs, etc. *)

let kind_to_string = function
  | Free -> "free"
  | Pt_page -> "pt"
  | Anon -> "anon"
  | File_page -> "file"
  | Kernel -> "kernel"

type t = {
  pfn : int;
  mutable kind : kind;
  mutable order : int; (* buddy order this frame was allocated with *)
  lock : Mm_sim.Mutex_s.t; (* CortenMM_adv's per-PT-page spin lock *)
  rwlock : Mm_sim.Rwlock_s.t; (* CortenMM_rw's per-PT-page BRAVO-pfqlock *)
  line : Mm_sim.Engine.Line.t;
  mutable stale : bool;
  mutable map_count : int;
  mutable wired : bool; (* mlock'd: the page-out daemon must never reclaim *)
  mutable contents : int;
}

let make ~pfn =
  {
    pfn;
    kind = Free;
    order = 0;
    lock = Mm_sim.Mutex_s.make ();
    rwlock = Mm_sim.Rwlock_s.make ();
    line = Mm_sim.Engine.Line.make ();
    stale = false;
    map_count = 0;
    wired = false;
    contents = 0;
  }

let pp fmt t =
  Format.fprintf fmt "frame %#x (%s, maps=%d%s)" t.pfn
    (kind_to_string t.kind) t.map_count
    (if t.stale then ", stale" else "")
