(** Simulated physical memory: buddy allocator + lazily materialized page
    descriptors, with per-kind usage accounting (Figs 18, 22). *)

type t

val create : ?nframes:int -> ?page_size:int -> ?numa_nodes:int -> unit -> t

val numa_nodes : t -> int

val node_of_pfn : t -> int -> int
(** NUMA node owning a pfn (the pfn space is striped across nodes). *)

val frame : t -> int -> Frame.t
(** Descriptor of a pfn (materialized on first use). *)

val alloc : t -> kind:Frame.kind -> ?order:int -> ?node:int -> unit -> Frame.t
(** Allocate [2^order] contiguous frames of the given kind on a NUMA node
    (default 0); returns the head frame's descriptor. *)

val free : t -> Frame.t -> unit

val kernel_alloc_bytes : t -> bytes:int -> unit
(** Account a sub-page kernel allocation (metadata array, VMA struct…). *)

val kernel_free_bytes : t -> bytes:int -> unit

type usage = {
  pt_bytes : int;
  anon_bytes : int;
  file_bytes : int;
  kernel_bytes : int;
  total_bytes : int;
}

val usage : t -> usage
val allocated_frames : t -> int
val buddy : t -> Buddy.t
(** Node 0's buddy allocator (for allocator-level statistics). *)

val peak_data_bytes : t -> int
(** High-water mark of user data (anon + page-cache) bytes, for the
    allocator memory-usage experiment (Fig 18). *)

val data_frames : t -> int
(** Currently resident user data (anon + page-cache) frames — the
    quantity {!Pageoutd} watermarks are defined over. *)
