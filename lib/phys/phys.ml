(* Simulated physical memory: per-NUMA-node buddy allocators plus lazily
   materialized page descriptors, with per-kind accounting for the
   memory-overhead experiments (paper Fig 18 and Fig 22).

   NUMA: the pfn space is striped across nodes — node [n] owns
   [n*node_span, (n+1)*node_span). Single-node machines (the default)
   behave exactly as before.

   The frame table is a chunked direct map: pfn -> (chunk, slot) with
   lazily materialized chunks, so the sparse 2^40-pfn space costs nothing
   until touched while the fault path's descriptor lookup is an array
   index instead of a hash probe. A one-entry chunk cache covers the
   spatial locality of buddy-allocated pfns. Descriptors are still
   created on first access, so creation order (and the deterministic ids
   handed to their locks) is unchanged. *)

let chunk_bits = 10
let chunk_mask = (1 lsl chunk_bits) - 1

type t = {
  buddies : Buddy.t array; (* one per NUMA node *)
  node_span : int; (* pfns per node *)
  chunks : (int, Frame.t option array) Hashtbl.t; (* chunk index -> slots *)
  mutable cached_cidx : int; (* last chunk touched, -1 for none *)
  mutable cached_chunk : Frame.t option array;
  page_size : int;
  mutable counts : int array; (* frames per Frame.kind *)
  mutable extra_bytes : int array; (* sub-page kernel allocations per kind *)
  mutable peak_data_frames : int; (* high-water mark of anon+file frames *)
}

let kind_index : Frame.kind -> int = function
  | Frame.Free -> 0
  | Frame.Pt_page -> 1
  | Frame.Anon -> 2
  | Frame.File_page -> 3
  | Frame.Kernel -> 4

let nkinds = 5

let create ?(nframes = 1 lsl 40) ?(page_size = 4096) ?(numa_nodes = 1) () =
  if numa_nodes < 1 then invalid_arg "Phys.create: numa_nodes";
  let node_span = nframes / numa_nodes in
  {
    buddies = Array.init numa_nodes (fun _ -> Buddy.create ~nframes:node_span);
    node_span;
    chunks = Hashtbl.create 64;
    cached_cidx = -1;
    cached_chunk = [||];
    page_size;
    counts = Array.make nkinds 0;
    extra_bytes = Array.make nkinds 0;
    peak_data_frames = 0;
  }

let numa_nodes t = Array.length t.buddies

let node_of_pfn t pfn = min (numa_nodes t - 1) (pfn / t.node_span)

let chunk t cidx =
  if cidx = t.cached_cidx then t.cached_chunk
  else begin
    let c =
      match Hashtbl.find_opt t.chunks cidx with
      | Some c -> c
      | None ->
        let c = Array.make (chunk_mask + 1) None in
        Hashtbl.replace t.chunks cidx c;
        c
    in
    t.cached_cidx <- cidx;
    t.cached_chunk <- c;
    c
  end

let frame t pfn =
  let c = chunk t (pfn lsr chunk_bits) in
  let slot = pfn land chunk_mask in
  match c.(slot) with
  | Some f -> f
  | None ->
    let f = Frame.make ~pfn in
    c.(slot) <- Some f;
    f

(* Allocator observability: splits/merges deltas around the buddy call,
   recorded only while a trace session is on so untraced runs never touch
   the metrics registry (PR-1's zero-perturbation rule). *)
let note_alloc t ~node ~order ~splits0 =
  if Mm_obs.Trace.on () then begin
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "phys.frame_allocs");
    Mm_obs.Metrics.observe (Mm_obs.Metrics.histogram "phys.alloc_order") order;
    let d = Buddy.splits t.buddies.(node) - splits0 in
    if d > 0 then Mm_obs.Metrics.add (Mm_obs.Metrics.counter "buddy.splits") d
  end

let note_free t ~node ~merges0 =
  if Mm_obs.Trace.on () then begin
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "phys.frame_frees");
    let d = Buddy.merges t.buddies.(node) - merges0 in
    if d > 0 then Mm_obs.Metrics.add (Mm_obs.Metrics.counter "buddy.merges") d
  end

let alloc t ~kind ?(order = 0) ?(node = 0) () =
  if node < 0 || node >= numa_nodes t then invalid_arg "Phys.alloc: node";
  let splits0 = Buddy.splits t.buddies.(node) in
  let pfn = (node * t.node_span) + Buddy.alloc t.buddies.(node) ~order in
  note_alloc t ~node ~order ~splits0;
  let n = 1 lsl order in
  t.counts.(kind_index kind) <- t.counts.(kind_index kind) + n;
  (let data =
     t.counts.(kind_index Frame.Anon) + t.counts.(kind_index Frame.File_page)
   in
   if data > t.peak_data_frames then t.peak_data_frames <- data);
  for i = 0 to n - 1 do
    let f = frame t (pfn + i) in
    f.Frame.kind <- kind;
    f.Frame.order <- (if i = 0 then order else 0);
    f.Frame.stale <- false;
    f.Frame.map_count <- 0;
    f.Frame.wired <- false;
    f.Frame.contents <- 0
  done;
  if Mm_sim.Monitor.on () then
    Mm_sim.Monitor.emit (Mm_sim.Monitor.Frame_allocated { pfn; pages = n });
  frame t pfn

let free t (f : Frame.t) =
  if f.Frame.kind = Frame.Free then
    invalid_arg "Phys.free: frame already free";
  let order = f.Frame.order in
  let n = 1 lsl order in
  t.counts.(kind_index f.Frame.kind) <- t.counts.(kind_index f.Frame.kind) - n;
  for i = 0 to n - 1 do
    let fi = frame t (f.Frame.pfn + i) in
    fi.Frame.kind <- Frame.Free
  done;
  let node = node_of_pfn t f.Frame.pfn in
  let merges0 = Buddy.merges t.buddies.(node) in
  Buddy.free t.buddies.(node) ~pfn:(f.Frame.pfn - (node * t.node_span)) ~order;
  note_free t ~node ~merges0

(* Sub-page kernel allocations (metadata arrays, VMA structs…) tracked for
   the overhead accounting; a slab allocator is modelled by byte counts. *)
let kernel_alloc_bytes t ~bytes =
  if bytes < 0 then invalid_arg "Phys.kernel_alloc_bytes";
  t.extra_bytes.(kind_index Frame.Kernel) <-
    t.extra_bytes.(kind_index Frame.Kernel) + bytes

let kernel_free_bytes t ~bytes =
  t.extra_bytes.(kind_index Frame.Kernel) <-
    t.extra_bytes.(kind_index Frame.Kernel) - bytes

type usage = {
  pt_bytes : int;
  anon_bytes : int;
  file_bytes : int;
  kernel_bytes : int; (* whole kernel frames + sub-page allocations *)
  total_bytes : int;
}

let usage t =
  let frames_of k = t.counts.(kind_index k) * t.page_size in
  let pt_bytes = frames_of Frame.Pt_page in
  let anon_bytes = frames_of Frame.Anon in
  let file_bytes = frames_of Frame.File_page in
  let kernel_bytes =
    frames_of Frame.Kernel + t.extra_bytes.(kind_index Frame.Kernel)
  in
  {
    pt_bytes;
    anon_bytes;
    file_bytes;
    kernel_bytes;
    total_bytes = pt_bytes + anon_bytes + file_bytes + kernel_bytes;
  }

let allocated_frames t =
  Array.fold_left (fun acc b -> acc + Buddy.allocated_frames b) 0 t.buddies

let buddy t = t.buddies.(0)

let peak_data_bytes t = t.peak_data_frames * t.page_size

(* Resident user data (anon + page-cache) frames right now; the pageout
   daemon's watermarks compare against this, not the peak. *)
let data_frames t =
  t.counts.(kind_index Frame.Anon) + t.counts.(kind_index Frame.File_page)
