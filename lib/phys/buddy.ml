(* Buddy allocator over physical frame numbers.

   Follows the Linux design the paper cites for CortenMM's physical memory
   management (§4.5): power-of-two blocks, split on allocation, merge with
   the buddy on free. Frames are identified by pfn only; descriptors are
   materialized lazily by {!Phys}. The allocator itself is a plain data
   structure — callers charge simulation costs.

   Blocks that have never been allocated live beyond a bump frontier, so
   the allocator handles address spaces far larger than the set of frames
   actually touched.

   Free lists are per-order sorted sets of block pfns, so the deterministic
   smallest-pfn pop is O(log n) instead of a full scan, and an occupancy
   bitmask (bit o set iff order o has free blocks) makes "is anything free
   above this order" a single mask test. *)

module Iset = Set.Make (Int)

let max_order = 10

type t = {
  nframes : int;
  mutable frontier : int; (* every pfn >= frontier is virgin memory *)
  free_sets : Iset.t array; (* per order: sorted set of block pfns *)
  free_counts : int array; (* per order: cardinality of [free_sets] *)
  mutable occupancy : int; (* bit o set iff [free_sets.(o)] is nonempty *)
  mutable allocated_frames : int;
  mutable splits : int;
  mutable merges : int;
}

let create ~nframes =
  if nframes <= 0 then invalid_arg "Buddy.create: nframes";
  {
    nframes;
    frontier = 0;
    free_sets = Array.make (max_order + 1) Iset.empty;
    free_counts = Array.make (max_order + 1) 0;
    occupancy = 0;
    allocated_frames = 0;
    splits = 0;
    merges = 0;
  }

let block_size order = 1 lsl order

let is_free_block t ~pfn ~order = Iset.mem pfn t.free_sets.(order)

let remove_free t ~pfn ~order =
  t.free_sets.(order) <- Iset.remove pfn t.free_sets.(order);
  t.free_counts.(order) <- t.free_counts.(order) - 1;
  if t.free_counts.(order) = 0 then
    t.occupancy <- t.occupancy land lnot (1 lsl order)

let add_free t ~pfn ~order =
  t.free_sets.(order) <- Iset.add pfn t.free_sets.(order);
  t.free_counts.(order) <- t.free_counts.(order) + 1;
  t.occupancy <- t.occupancy lor (1 lsl order)

let buddy_of ~pfn ~order = pfn lxor block_size order

(* Take the smallest-pfn block from a free list (deterministic). *)
let pop_free t ~order =
  if t.occupancy land (1 lsl order) = 0 then None
  else begin
    let pfn = Iset.min_elt t.free_sets.(order) in
    remove_free t ~pfn ~order;
    Some pfn
  end

exception Out_of_memory

let rec alloc_block t ~order =
  if order > max_order then raise Out_of_memory;
  match pop_free t ~order with
  | Some pfn -> pfn
  | None ->
    if not (any_free_above t ~order) then begin
      (* Carve from the virgin frontier, aligned to the block size. *)
      let pfn = Mm_util.Align.up t.frontier (block_size order) in
      if pfn + block_size order > t.nframes then raise Out_of_memory;
      (* Return the alignment gap to the free lists. *)
      release_range t ~lo:t.frontier ~hi:pfn;
      t.frontier <- pfn + block_size order;
      pfn
    end
    else begin
      (* Split a larger block. *)
      let big = alloc_block t ~order:(order + 1) in
      t.splits <- t.splits + 1;
      add_free t ~pfn:(big + block_size order) ~order;
      big
    end

and any_free_above t ~order =
  t.occupancy land lnot ((1 lsl (order + 1)) - 1) <> 0

and release_range t ~lo ~hi =
  (* Free the frames in [lo, hi) created by frontier alignment, as maximal
     aligned power-of-two blocks, merging with existing free buddies. *)
  let lo = ref lo in
  while !lo < hi do
    let max_align =
      let rec go o =
        if
          o < max_order
          && Mm_util.Align.is_aligned !lo (block_size (o + 1))
          && !lo + block_size (o + 1) <= hi
        then go (o + 1)
        else o
      in
      go 0
    in
    insert_and_merge t ~pfn:!lo ~order:max_align ~limit:hi;
    lo := !lo + block_size max_align
  done

(* Insert a free block, merging upward while its buddy is also free.
   [limit] bounds how far a merge may look (the frontier for ordinary
   frees; the carve point during [release_range], whose blocks must not
   merge with anything beyond what exists yet). *)
and insert_and_merge t ~pfn ~order ~limit =
  let rec merge pfn order =
    let b = buddy_of ~pfn ~order in
    if order < max_order && b + block_size order <= limit
       && is_free_block t ~pfn:b ~order
    then begin
      remove_free t ~pfn:b ~order;
      t.merges <- t.merges + 1;
      merge (min pfn b) (order + 1)
    end
    else add_free t ~pfn ~order
  in
  merge pfn order

let alloc t ~order =
  if order < 0 || order > max_order then invalid_arg "Buddy.alloc: order";
  let pfn = alloc_block t ~order in
  t.allocated_frames <- t.allocated_frames + block_size order;
  pfn

let free t ~pfn ~order =
  if order < 0 || order > max_order then invalid_arg "Buddy.free: order";
  if not (Mm_util.Align.is_aligned pfn (block_size order)) then
    invalid_arg "Buddy.free: misaligned block";
  if is_free_block t ~pfn ~order then invalid_arg "Buddy.free: double free";
  t.allocated_frames <- t.allocated_frames - block_size order;
  insert_and_merge t ~pfn ~order ~limit:t.frontier

let allocated_frames t = t.allocated_frames
let splits t = t.splits
let merges t = t.merges
let frontier t = t.frontier

let free_frames t =
  let acc = ref 0 in
  Array.iteri
    (fun order n -> acc := !acc + (n * block_size order))
    t.free_counts;
  !acc + (t.nframes - t.frontier)

(* Sorted (ascending) free-block pfns of one order, for tests and the
   reference-implementation equivalence harness. *)
let free_blocks t ~order =
  if order < 0 || order > max_order then invalid_arg "Buddy.free_blocks";
  Iset.elements t.free_sets.(order)

(* Internal consistency: counts and occupancy track the sets, all blocks
   aligned, free + allocated accounts for the frontier. Used by property
   tests. *)
let check_invariants t =
  Array.iteri
    (fun order fs ->
      if Iset.cardinal fs <> t.free_counts.(order) then
        failwith "buddy invariant: stale free count";
      if (t.occupancy land (1 lsl order) <> 0) <> (not (Iset.is_empty fs))
      then failwith "buddy invariant: stale occupancy bit";
      Iset.iter
        (fun pfn ->
          if not (Mm_util.Align.is_aligned pfn (block_size order)) then
            failwith "buddy invariant: misaligned free block";
          if pfn + block_size order > t.frontier then
            failwith "buddy invariant: free block beyond frontier";
          (* A free block must not coexist with its free buddy (they should
             have merged), except at max order. *)
          if order < max_order then begin
            let b = buddy_of ~pfn ~order in
            if is_free_block t ~pfn:b ~order then
              failwith "buddy invariant: unmerged buddies"
          end)
        fs)
    t.free_sets;
  let freed = ref 0 in
  Array.iteri
    (fun order n -> freed := !freed + (n * block_size order))
    t.free_counts;
  if !freed + t.allocated_frames <> t.frontier then
    failwith "buddy invariant: frame accounting mismatch"
