(* The radix page-table engine.

   This is the hardware-level structure every system in the reproduction
   programs: a multi-level radix tree of page-table pages whose entries are
   raw 64-bit words in the current ISA's format. Every write encodes and
   immediately decodes the stored word into a per-node mirror of [Pte.t]
   values, so the HAL is genuinely on the access path (as in CortenMM's
   Rust implementation) while reads serve the mirror — one decode per
   store instead of one per walk step, with identical results because the
   mirror always holds [decode (encode pte)].

   Each node is backed by a physical frame from {!Mm_phys.Phys}; the
   frame's descriptor carries the per-PT-page lock and stale flag the
   locking protocols use. Access costs are charged to the simulated CPU
   when running inside a simulation fiber: reads pay a walk step on the
   node's cache line (shared, non-serializing), writes pay an exclusive
   line access (serializing) — which is how contention on a shared leaf PT
   page emerges in the benchmarks.

   The ['m] parameter is the per-PTE metadata array CortenMM attaches to
   each PT page (paper §3.3); other systems instantiate it with [unit]. *)

open Mm_hal

type 'm node = {
  frame : Mm_phys.Frame.t;
  level : int;
  entries : int64 array;
  decoded : Pte.t array; (* mirror: decoded.(i) = decode entries.(i) *)
  mutable present : int; (* number of present entries *)
  mutable parent : ('m node * int) option;
  mutable base : int; (* base vaddr of the node's coverage, set at link *)
  mutable meta : 'm option;
  mutable touched : int; (* bitmask of CPUs that installed translations *)
}

type 'm t = {
  phys : Mm_phys.Phys.t;
  isa : Isa.t;
  mutable root : 'm node;
  nodes : (int, 'm node) Hashtbl.t; (* pfn -> node *)
  mutable pt_page_count : int;
  mutable pt_pages_allocated : int;
  mutable pt_pages_freed : int;
}

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let read_line (f : Mm_phys.Frame.t) =
  if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.Line.read f.Mm_phys.Frame.line

let write_line (f : Mm_phys.Frame.t) =
  if Mm_sim.Engine.in_fiber () then
    Mm_sim.Engine.Line.write f.Mm_phys.Frame.line

let alloc_node t ~level =
  charge Mm_sim.Cost.pt_page_init;
  let frame = Mm_phys.Phys.alloc t.phys ~kind:Mm_phys.Frame.Pt_page () in
  let node =
    {
      frame;
      level;
      entries = Array.make (Geometry.entries t.isa.Isa.geo) 0L;
      decoded = Array.make (Geometry.entries t.isa.Isa.geo) Pte.Absent;
      present = 0;
      parent = None;
      base = 0;
      meta = None;
      touched = 0;
    }
  in
  Hashtbl.replace t.nodes frame.Mm_phys.Frame.pfn node;
  t.pt_page_count <- t.pt_page_count + 1;
  t.pt_pages_allocated <- t.pt_pages_allocated + 1;
  node

let create phys isa =
  let frame = Mm_phys.Phys.alloc phys ~kind:Mm_phys.Frame.Pt_page () in
  let root =
    {
      frame;
      level = isa.Isa.geo.Geometry.levels;
      entries = Array.make (Geometry.entries isa.Isa.geo) 0L;
      decoded = Array.make (Geometry.entries isa.Isa.geo) Pte.Absent;
      present = 0;
      parent = None;
      base = 0;
      meta = None;
      touched = 0;
    }
  in
  let t =
    {
      phys;
      isa;
      root;
      nodes = Hashtbl.create 256;
      pt_page_count = 1;
      pt_pages_allocated = 1;
      pt_pages_freed = 0;
    }
  in
  Hashtbl.replace t.nodes frame.Mm_phys.Frame.pfn root;
  t

let root t = t.root
let isa t = t.isa
let geometry t = t.isa.Isa.geo
let node_of_pfn t pfn = Hashtbl.find_opt t.nodes pfn
let pt_page_count t = t.pt_page_count
let pt_pages_allocated t = t.pt_pages_allocated
let pt_pages_freed t = t.pt_pages_freed

let entries_per_node t = Geometry.entries t.isa.Isa.geo

(* -- Raw entry access -- *)

let get _t node idx =
  charge Mm_sim.Cost.pt_walk_step;
  read_line node.frame;
  node.decoded.(idx)

let set t node idx pte =
  charge Mm_sim.Cost.pte_write;
  write_line node.frame;
  let old = node.decoded.(idx) in
  let raw = Isa.encode t.isa ~level:node.level pte in
  node.entries.(idx) <- raw;
  (* Re-decode the stored word rather than caching [pte] itself, so reads
     observe exactly what the raw encoding preserves. *)
  node.decoded.(idx) <- Isa.decode t.isa ~level:node.level raw;
  (match (Pte.is_present old, Pte.is_present node.decoded.(idx)) with
  | false, true -> node.present <- node.present + 1
  | true, false -> node.present <- node.present - 1
  | _ -> ())

(* An atomic read for the lock-free traversal phase of CortenMM_adv: same
   cost as a plain read (RCU readers pay nothing extra), but kept separate
   so call sites document their intent. *)
let get_atomic = get

(* Uncharged read, for whole-node scans that are charged in bulk with
   [charge_node_scan] (streaming a 4 KiB PT page is a linear pass over its
   cache lines, not 512 independent walk steps). *)
let get_uncharged _t node idx = node.decoded.(idx)

let charge_node_scan t =
  charge (entries_per_node t / 8 * Mm_sim.Cost.cache_hit)

let child t node idx =
  match get t node idx with
  | Pte.Table { pfn } -> node_of_pfn t pfn
  | Pte.Absent | Pte.Leaf _ -> None

(* Exactly [get]'s charges without the decode — for walk caches that skip
   a descent but must keep simulated time and line state identical. *)
let charge_walk_step _t node =
  charge Mm_sim.Cost.pt_walk_step;
  read_line node.frame

let entry_coverage t node = Geometry.coverage t.isa.Isa.geo ~level:node.level

(* Record the parent link and the derived base address in one place, so
   [node_base] is a field read instead of a walk to the root. *)
let link_child t parent idx child =
  child.parent <- Some (parent, idx);
  child.base <- parent.base + (idx * entry_coverage t parent)

let ensure_child t node idx =
  match get t node idx with
  | Pte.Table { pfn } -> (
    match node_of_pfn t pfn with
    | Some c -> c
    | None -> failwith "Pt.ensure_child: dangling table entry")
  | Pte.Leaf _ -> invalid_arg "Pt.ensure_child: entry is a huge leaf"
  | Pte.Absent ->
    if node.level <= 1 then invalid_arg "Pt.ensure_child: at leaf level";
    let c = alloc_node t ~level:(node.level - 1) in
    link_child t node idx c;
    set t node idx (Pte.Table { pfn = c.frame.Mm_phys.Frame.pfn });
    c

(* Hardware sets the accessed bit for free during a walk; model that as an
   uncharged in-place update of the raw entry. *)
let set_accessed t node idx =
  match node.decoded.(idx) with
  | Pte.Leaf { pfn; perm; accessed = false; dirty; global } ->
    let raw =
      Isa.encode t.isa ~level:node.level
        (Pte.Leaf { pfn; perm; accessed = true; dirty; global })
    in
    node.entries.(idx) <- raw;
    node.decoded.(idx) <- Isa.decode t.isa ~level:node.level raw
  | Pte.Leaf _ | Pte.Absent | Pte.Table _ -> ()

(* Detach the child under [idx] without freeing it (CortenMM_adv clears the
   parent entry first and RCU-defers the free, Fig 6 L30). *)
let detach_child t node idx =
  match get t node idx with
  | Pte.Table { pfn } -> (
    match node_of_pfn t pfn with
    | Some c ->
      set t node idx Pte.Absent;
      c.parent <- None;
      c
    | None -> failwith "Pt.detach_child: dangling table entry")
  | Pte.Absent | Pte.Leaf _ -> invalid_arg "Pt.detach_child: not a table entry"

(* Free a node's frame. The node must already be unlinked from its parent.
   Does not touch descendants — callers free subtrees explicitly so that
   protocol code controls ordering (and RCU deferral). *)
let free_node t node =
  (match node.parent with
  | Some _ -> invalid_arg "Pt.free_node: node still linked"
  | None -> ());
  charge Mm_sim.Cost.page_free;
  Hashtbl.remove t.nodes node.frame.Mm_phys.Frame.pfn;
  t.pt_page_count <- t.pt_page_count - 1;
  t.pt_pages_freed <- t.pt_pages_freed + 1;
  Mm_phys.Phys.free t.phys node.frame

(* -- Index and range helpers -- *)

let index t ~level ~vaddr = Geometry.index t.isa.Isa.geo ~level ~vaddr

let node_coverage t node = entry_coverage t node * entries_per_node t

(* Base virtual address of [node]'s coverage, cached at link time. *)
let node_base _t node = node.base

(* Does the child slot [idx] of [node] entirely cover [lo, hi)? *)
let entry_covers t node idx ~lo ~hi =
  let base = node_base t node + (idx * entry_coverage t node) in
  base <= lo && hi <= base + entry_coverage t node

(* Iterate the indices of [node] whose entries intersect [lo, hi), calling
   [f idx entry_lo entry_hi] with the clipped subrange. *)
let iter_range t node ~lo ~hi f =
  let base = node_base t node in
  let per = entry_coverage t node in
  let n = entries_per_node t in
  let first = max 0 ((lo - base) / per) in
  let last = min (n - 1) ((hi - 1 - base) / per) in
  for idx = first to last do
    let e_lo = base + (idx * per) in
    let e_hi = e_lo + per in
    f idx (max lo e_lo) (min hi e_hi)
  done

(* Streaming cost of scanning only the slots of [node] that intersect
   [lo, hi) — narrow-range walks must not be billed for the whole page. *)
let charge_range_scan t node ~lo ~hi =
  let base = node_base t node in
  let per = entry_coverage t node in
  let n = entries_per_node t in
  let first = max 0 ((lo - base) / per) in
  let last = min (n - 1) ((hi - 1 - base) / per) in
  let slots = max 1 (last - first + 1) in
  charge (Mm_util.Align.div_round_up slots 8 * Mm_sim.Cost.cache_hit)

(* Walk from the root to the level-1 node containing [vaddr], creating
   intermediate nodes on demand. *)
let rec walk_create t ?(from = t.root) ~to_level vaddr =
  if from.level = to_level then from
  else
    let idx = index t ~level:from.level ~vaddr in
    let c = ensure_child t from idx in
    walk_create t ~from:c ~to_level vaddr

(* Walk without creating; returns the deepest existing node toward [vaddr]
   at or above [to_level]. *)
let rec walk_opt t ?(from = t.root) ~to_level vaddr =
  if from.level = to_level then from
  else
    let idx = index t ~level:from.level ~vaddr in
    match child t from idx with
    | Some c -> walk_opt t ~from:c ~to_level vaddr
    | None -> from

(* -- Whole-tree traversal (used by fork, verification, accounting) -- *)

let rec iter_subtree t node f =
  f node;
  if node.level > 1 then
    for idx = 0 to entries_per_node t - 1 do
      match node.decoded.(idx) with
      | Pte.Table { pfn } -> (
        match node_of_pfn t pfn with
        | Some c -> iter_subtree t c f
        | None -> failwith "Pt.iter_subtree: dangling table entry")
      | Pte.Absent | Pte.Leaf _ -> ()
    done

let iter_nodes t f = iter_subtree t t.root f

(* Enumerate present leaves under [node] as (vaddr, level, pte). *)
let rec iter_leaves t node f =
  charge_node_scan t;
  let base = node_base t node in
  let per = entry_coverage t node in
  for idx = 0 to entries_per_node t - 1 do
    match node.decoded.(idx) with
    | Pte.Absent -> ()
    | Pte.Leaf _ as pte -> f (base + (idx * per)) node.level pte
    | Pte.Table { pfn } -> (
      match node_of_pfn t pfn with
      | Some c -> iter_leaves t c f
      | None -> failwith "Pt.iter_leaves: dangling table entry")
  done

(* -- Well-formedness (the paper's Fig 12 invariant) -- *)

exception Ill_formed of string

let check_well_formed t =
  let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt in
  let seen = Hashtbl.create 64 in
  let rec go node =
    if Hashtbl.mem seen node.frame.Mm_phys.Frame.pfn then
      fail "node %#x reachable twice" node.frame.Mm_phys.Frame.pfn;
    Hashtbl.replace seen node.frame.Mm_phys.Frame.pfn ();
    if node.frame.Mm_phys.Frame.kind <> Mm_phys.Frame.Pt_page then
      fail "node %#x frame is not a PT page" node.frame.Mm_phys.Frame.pfn;
    let present = ref 0 in
    Array.iteri
      (fun idx raw ->
        let pte = Isa.decode t.isa ~level:node.level raw in
        if pte <> node.decoded.(idx) then
          fail "stale decode mirror (node %#x idx %d)"
            node.frame.Mm_phys.Frame.pfn idx;
        match pte with
        | Pte.Absent -> ()
        | Pte.Leaf _ ->
          incr present;
          if node.level > 3 then
            fail "huge leaf at level %d (node %#x idx %d)" node.level
              node.frame.Mm_phys.Frame.pfn idx
        | Pte.Table { pfn } -> (
          incr present;
          if node.level = 1 then
            fail "table entry at leaf level (node %#x idx %d)"
              node.frame.Mm_phys.Frame.pfn idx;
          match node_of_pfn t pfn with
          | None ->
            fail "entry points to unknown PT page %#x (node %#x idx %d)" pfn
              node.frame.Mm_phys.Frame.pfn idx
          | Some c ->
            (* Child level relation: exactly one below (Fig 12 L22). *)
            if c.level <> node.level - 1 then
              fail "child level %d under level %d" c.level node.level;
            (match c.parent with
            | Some (p, pidx)
              when p == node && pidx = idx ->
              ()
            | _ -> fail "child %#x has wrong parent link" pfn);
            if c.base <> node.base + (idx * entry_coverage t node) then
              fail "child %#x has stale base %#x" pfn c.base;
            go c))
      node.entries;
    if !present <> node.present then
      fail "present count %d <> actual %d (node %#x)" node.present !present
        node.frame.Mm_phys.Frame.pfn
  in
  go t.root;
  (* Every tracked node must be reachable from the root (no leaks into the
     node table), except nodes detached and pending an RCU free — those are
     removed from the table at free time, so anything left must be
     reachable or explicitly detached. *)
  Hashtbl.iter
    (fun pfn node ->
      if (not (Hashtbl.mem seen pfn)) && node.parent <> None then
        fail "node %#x tracked but unreachable" pfn)
    t.nodes
