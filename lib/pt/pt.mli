(** Radix page-table engine over simulated physical memory, with raw
    per-ISA PTE encodings on the access path. ['m] is the per-PTE metadata
    array type CortenMM attaches to PT pages; other systems use [unit]. *)

open Mm_hal

type 'm node = {
  frame : Mm_phys.Frame.t;
  level : int;
  entries : int64 array;
  decoded : Pte.t array; (* mirror: decoded.(i) = decode entries.(i) *)
  mutable present : int;
  mutable parent : ('m node * int) option;
  mutable base : int; (* base vaddr of the node's coverage, set at link *)
  mutable meta : 'm option;
  mutable touched : int; (* bitmask of CPUs that installed translations *)
}

type 'm t

exception Ill_formed of string

val create : Mm_phys.Phys.t -> Isa.t -> 'm t
val root : 'm t -> 'm node
val isa : 'm t -> Isa.t
val geometry : 'm t -> Geometry.t
val node_of_pfn : 'm t -> int -> 'm node option
val entries_per_node : 'm t -> int

val pt_page_count : 'm t -> int
val pt_pages_allocated : 'm t -> int
val pt_pages_freed : 'm t -> int

val get : 'm t -> 'm node -> int -> Pte.t
(** Decode entry [idx]; charges a walk step and a shared line read. *)

val get_atomic : 'm t -> 'm node -> int -> Pte.t
(** Same cost as [get]; marks lock-free traversal call sites. *)

val get_uncharged : 'm t -> 'm node -> int -> Pte.t
(** Decode without charging — for whole-node scans billed in bulk. *)

val charge_node_scan : 'm t -> unit
(** The streaming cost of scanning one PT page's entries. *)

val charge_range_scan : 'm t -> 'm node -> lo:int -> hi:int -> unit
(** Streaming cost of scanning only the slots intersecting [lo, hi). *)

val charge_walk_step : 'm t -> 'm node -> unit
(** Charge exactly what [get] charges (a walk step plus a shared line
    read) without decoding — for walk caches replaying a skipped
    descent's cost. *)

val set : 'm t -> 'm node -> int -> Pte.t -> unit
(** Encode and store entry [idx]; charges an exclusive line access, which
    serializes concurrent writers to the same PT page. *)

val set_accessed : 'm t -> 'm node -> int -> unit
(** Set a leaf's accessed bit, as MMU hardware does during a walk (free). *)

val child : 'm t -> 'm node -> int -> 'm node option
val ensure_child : 'm t -> 'm node -> int -> 'm node

val alloc_node : 'm t -> level:int -> 'm node
(** Allocate an unlinked PT page (callers link it via [set]). *)

val link_child : 'm t -> 'm node -> int -> 'm node -> unit
(** Set [child]'s parent link to [(parent, idx)] and its cached base
    address. Callers still write the table entry themselves via [set]. *)

val detach_child : 'm t -> 'm node -> int -> 'm node
(** Atomically clear the table entry and unlink the child (the caller
    frees it, possibly RCU-deferred). *)

val free_node : 'm t -> 'm node -> unit
(** Free an unlinked node's frame. Raises if still linked. *)

val index : 'm t -> level:int -> vaddr:int -> int
val entry_coverage : 'm t -> 'm node -> int
val node_coverage : 'm t -> 'm node -> int
val node_base : 'm t -> 'm node -> int
val entry_covers : 'm t -> 'm node -> int -> lo:int -> hi:int -> bool

val iter_range :
  'm t -> 'm node -> lo:int -> hi:int -> (int -> int -> int -> unit) -> unit
(** [iter_range t node ~lo ~hi f] calls [f idx sub_lo sub_hi] for each
    entry of [node] intersecting [lo, hi), with the clipped subrange. *)

val walk_create : 'm t -> ?from:'m node -> to_level:int -> int -> 'm node
val walk_opt : 'm t -> ?from:'m node -> to_level:int -> int -> 'm node

val iter_subtree : 'm t -> 'm node -> ('m node -> unit) -> unit
val iter_nodes : 'm t -> ('m node -> unit) -> unit

val iter_leaves : 'm t -> 'm node -> (int -> int -> Pte.t -> unit) -> unit
(** Enumerate present leaves as [(vaddr, level, pte)]. *)

val check_well_formed : 'm t -> unit
(** The paper's Fig 12 invariant: every present entry is a last-level leaf
    or points to a valid PT page exactly one level down with a correct
    parent link; present counts match; no node is reachable twice. Raises
    {!Ill_formed} otherwise. *)
