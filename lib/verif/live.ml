(* Runtime invariant checker over live engine state.

   The model checkers in this library (Rw_model, Adv_model) explore hand
   written abstractions of the two locking protocols; this module checks
   the same safety properties against the *implemented* protocols while
   they run, by consuming the synchronization events the simulated lock
   models and the cursor layer emit through Mm_sim.Monitor:

   - mutual exclusion of each simulated mutex, and release-by-holder;
   - writer exclusion and reader counting of each rwlock (phase-fair
     admission must never let a reader and a writer, or two writers,
     hold the lock at once);
   - the protocols' transaction property (paper P1, checked abstractly
     by Rw_model/Adv_model.check): no two cursor transactions over
     overlapping ranges of the same address space are ever active
     simultaneously;
   - RCU grace periods: a deferred callback must not fire until every
     CPU that was inside a read-side critical section at defer time has
     exited it (tracked with per-CPU quiescence epochs);

   - deferred frame frees (batched TLB shootdown): a frame whose free
     was deferred behind a pending shootdown must not be reallocated
     before that shootdown flushes — a reuse inside the window would be
     reachable through a stale remote TLB entry;

   - reclaim (the page-out daemon): a wired (mlock'd) page must never be
     reclaimed, a page must not be reclaimed twice without an
     intervening reallocation, a reclaimed frame must not still be
     pending behind an unflushed shootdown, and a dirty file/shm page
     must reach the backing store (writeback) before its cache frame is
     dropped.

   Violations are *sticky* — recorded, never raised — so a schedule
   explorer can finish the run, collect every violation, and still
   compare final states. The checker is pure host-side bookkeeping: it
   never touches virtual time, so checked runs remain bit-identical to
   unchecked ones. *)

type txn = { t_asp : int; t_cpu : int; t_lo : int; t_hi : int }

type rw_state = { mutable w_cpu : int (* -1: none *); mutable n_readers : int }

(* Mirror of one backing object's lifecycle, rebuilt purely from Obj_*
   events: reference-count transitions must match what the events claim,
   dead objects must stay dead, and shadow chains must stay shallow. *)
type obj_state = {
  o_parent : int; (* -1: chain bottom *)
  o_depth : int;
  mutable o_refs : int;
  mutable o_dead : bool;
}

(* Shadow chains grow one hop per live fork generation; anything deeper
   means collapse never fires (a leak the refcount alone cannot see). *)
let max_chain_depth = 64

type t = {
  ncpus : int;
  mutexes : (int, int) Hashtbl.t; (* lock id -> holder cpu *)
  rwlocks : (int, rw_state) Hashtbl.t;
  rcu_epoch : int array; (* per-CPU count of read-section exits *)
  rcu_in_rs : bool array;
  rcu_defers : (int, (int * int) list) Hashtbl.t;
      (* cb id -> [(cpu, epoch at defer)] still required to advance *)
  pending_frames : (int, int) Hashtbl.t;
      (* pfn -> pages: frames deferred behind an unflushed shootdown *)
  objs : (int, obj_state) Hashtbl.t; (* backing-object id -> mirror *)
  wired : (int, unit) Hashtbl.t; (* pfns pinned by mlock *)
  reclaimed : (int, unit) Hashtbl.t;
      (* pfns paged out and not reallocated since *)
  dirty_pages : (int * int, unit) Hashtbl.t;
      (* (file id, page index) modified and not yet written back *)
  mutable txns : txn list;
  mutable violations : string list; (* newest first *)
  mutable events : int;
}

let max_violations = 64

let create ~ncpus =
  {
    ncpus;
    mutexes = Hashtbl.create 64;
    rwlocks = Hashtbl.create 64;
    rcu_epoch = Array.make ncpus 0;
    rcu_in_rs = Array.make ncpus false;
    rcu_defers = Hashtbl.create 64;
    pending_frames = Hashtbl.create 64;
    objs = Hashtbl.create 64;
    wired = Hashtbl.create 64;
    reclaimed = Hashtbl.create 64;
    dirty_pages = Hashtbl.create 64;
    txns = [];
    violations = [];
    events = 0;
  }

let violate t fmt =
  Printf.ksprintf
    (fun msg ->
      if List.length t.violations < max_violations then
        t.violations <- msg :: t.violations)
    fmt

let rw_state t lock =
  match Hashtbl.find_opt t.rwlocks lock with
  | Some s -> s
  | None ->
    let s = { w_cpu = -1; n_readers = 0 } in
    Hashtbl.add t.rwlocks lock s;
    s

let observe t (ev : Mm_sim.Monitor.event) =
  t.events <- t.events + 1;
  match ev with
  | Mutex_acquired { lock; cpu } -> (
    match Hashtbl.find_opt t.mutexes lock with
    | Some holder ->
      violate t "mutex#%d: cpu %d acquired while cpu %d holds it" lock cpu
        holder
    | None -> Hashtbl.replace t.mutexes lock cpu)
  | Mutex_released { lock; cpu } -> (
    match Hashtbl.find_opt t.mutexes lock with
    | Some holder when holder = cpu -> Hashtbl.remove t.mutexes lock
    | Some holder ->
      violate t "mutex#%d: released by cpu %d but held by cpu %d" lock cpu
        holder
    | None -> violate t "mutex#%d: released by cpu %d while free" lock cpu)
  | Read_acquired { lock; cpu } ->
    let s = rw_state t lock in
    if s.w_cpu >= 0 then
      violate t "rwlock#%d: cpu %d read-acquired while cpu %d writes" lock cpu
        s.w_cpu;
    s.n_readers <- s.n_readers + 1
  | Read_released { lock; cpu } ->
    let s = rw_state t lock in
    if s.n_readers <= 0 then
      violate t "rwlock#%d: cpu %d read-released with no readers" lock cpu
    else s.n_readers <- s.n_readers - 1
  | Write_acquired { lock; cpu } ->
    let s = rw_state t lock in
    if s.w_cpu >= 0 then
      violate t "rwlock#%d: cpu %d write-acquired while cpu %d writes" lock
        cpu s.w_cpu;
    if s.n_readers > 0 then
      violate t "rwlock#%d: cpu %d write-acquired with %d readers inside"
        lock cpu s.n_readers;
    s.w_cpu <- cpu
  | Write_released { lock; cpu } ->
    let s = rw_state t lock in
    if s.w_cpu <> cpu then
      violate t "rwlock#%d: write-released by cpu %d but writer is %d" lock
        cpu s.w_cpu;
    s.w_cpu <- -1
  | Rcu_enter { cpu } -> t.rcu_in_rs.(cpu) <- true
  | Rcu_exit { cpu } ->
    t.rcu_in_rs.(cpu) <- false;
    t.rcu_epoch.(cpu) <- t.rcu_epoch.(cpu) + 1
  | Rcu_defer { cb; waiting } ->
    let need = ref [] in
    Array.iteri
      (fun cpu w -> if w then need := (cpu, t.rcu_epoch.(cpu)) :: !need)
      waiting;
    Hashtbl.replace t.rcu_defers cb !need
  | Rcu_fire { cb } -> (
    match Hashtbl.find_opt t.rcu_defers cb with
    | None -> () (* synchronize()'s internal callback: no defer event *)
    | Some need ->
      List.iter
        (fun (cpu, epoch_at_defer) ->
          if t.rcu_epoch.(cpu) = epoch_at_defer then
            violate t
              "rcu: callback #%d fired before cpu %d left the read-side \
               section it was in at defer time (grace period violated)"
              cb cpu)
        need;
      Hashtbl.remove t.rcu_defers cb)
  | Txn_locked { asp; cpu; lo; hi } ->
    List.iter
      (fun o ->
        if o.t_asp = asp && lo < o.t_hi && o.t_lo < hi then
          violate t
            "asp#%d: cpu %d locked [0x%x,0x%x) while cpu %d holds \
             overlapping transaction [0x%x,0x%x)"
            asp cpu lo hi o.t_cpu o.t_lo o.t_hi)
      t.txns;
    t.txns <- { t_asp = asp; t_cpu = cpu; t_lo = lo; t_hi = hi } :: t.txns
  | Txn_committed { asp; cpu; lo = _; hi = _ } ->
    let found = ref false in
    t.txns <-
      List.filter
        (fun o ->
          if (not !found) && o.t_asp = asp && o.t_cpu = cpu then begin
            found := true;
            false
          end
          else true)
        t.txns;
    if not !found then
      violate t "asp#%d: cpu %d committed a transaction it never locked" asp
        cpu
  | Frame_deferred { pfn; pages } ->
    if Hashtbl.mem t.pending_frames pfn then
      violate t "frame %#x: deferred twice without an intervening flush" pfn;
    Hashtbl.replace t.pending_frames pfn pages
  | Frame_freed { pfn; pages = _ } ->
    if not (Hashtbl.mem t.pending_frames pfn) then
      violate t "frame %#x: flush-freed but never deferred" pfn
    else Hashtbl.remove t.pending_frames pfn
  | Frame_allocated { pfn; pages } ->
    Hashtbl.iter
      (fun p0 n0 ->
        if pfn < p0 + n0 && p0 < pfn + pages then
          violate t
            "frame %#x: reused (allocated) before its pending shootdown \
             flushed (deferred as %#x+%d)"
            pfn p0 n0)
      t.pending_frames;
    (* A reallocation resets the frame's reclaim/wire history. *)
    for i = 0 to pages - 1 do
      Hashtbl.remove t.reclaimed (pfn + i);
      Hashtbl.remove t.wired (pfn + i)
    done
  | Obj_created { obj; parent } ->
    if Hashtbl.mem t.objs obj then
      violate t "obj#%d: created twice (id reuse within one world)" obj;
    let depth =
      if parent < 0 then 1
      else
        match Hashtbl.find_opt t.objs parent with
        | None ->
          violate t "obj#%d: created over unknown parent obj#%d" obj parent;
          1
        | Some p ->
          if p.o_dead then
            violate t "obj#%d: created over dead parent obj#%d" obj parent;
          p.o_depth + 1
    in
    if depth > max_chain_depth then
      violate t "obj#%d: shadow chain depth %d exceeds %d (collapse leak?)"
        obj depth max_chain_depth;
    Hashtbl.replace t.objs obj
      { o_parent = parent; o_depth = depth; o_refs = 1; o_dead = false }
  | Obj_ref { obj; refs } -> (
    match Hashtbl.find_opt t.objs obj with
    | None -> violate t "obj#%d: referenced but never created" obj
    | Some o ->
      if o.o_dead then violate t "obj#%d: referenced after destruction" obj;
      o.o_refs <- o.o_refs + 1;
      if o.o_refs <> refs then
        violate t "obj#%d: ref reports %d refs, checker tracks %d" obj refs
          o.o_refs)
  | Obj_unref { obj; refs } -> (
    match Hashtbl.find_opt t.objs obj with
    | None -> violate t "obj#%d: unreferenced but never created" obj
    | Some o ->
      if o.o_dead then violate t "obj#%d: unreferenced after destruction" obj;
      o.o_refs <- o.o_refs - 1;
      if o.o_refs < 0 then violate t "obj#%d: refcount went negative" obj;
      if o.o_refs <> refs then
        violate t "obj#%d: unref reports %d refs, checker tracks %d" obj refs
          o.o_refs)
  | Obj_collapsed { obj; into } -> (
    (match Hashtbl.find_opt t.objs into with
    | None -> violate t "obj#%d: collapsed into unknown obj#%d" obj into
    | Some s ->
      if s.o_dead then violate t "obj#%d: collapsed into dead obj#%d" obj into);
    match Hashtbl.find_opt t.objs obj with
    | None -> violate t "obj#%d: collapsed but never created" obj
    | Some o ->
      if o.o_dead then violate t "obj#%d: collapsed after destruction" obj;
      if o.o_refs <> 1 then
        violate t
          "obj#%d: collapsed with %d refs (only a singly-referenced chain \
           parent may collapse)"
          obj o.o_refs;
      (* The survivor absorbs the chain hop; the collapsed object's one
         reference (the survivor's) is gone. *)
      o.o_refs <- 0)
  | Obj_destroyed { obj } -> (
    match Hashtbl.find_opt t.objs obj with
    | None -> violate t "obj#%d: destroyed but never created" obj
    | Some o ->
      if o.o_dead then violate t "obj#%d: destroyed twice" obj;
      if o.o_refs <> 0 then
        violate t "obj#%d: destroyed with %d live refs" obj o.o_refs;
      o.o_dead <- true)
  | Page_wired { pfn } ->
    if Hashtbl.mem t.wired pfn then
      violate t "frame %#x: wired twice without an unwire" pfn;
    Hashtbl.replace t.wired pfn ()
  | Page_unwired { pfn } ->
    if not (Hashtbl.mem t.wired pfn) then
      violate t "frame %#x: unwired but never wired" pfn
    else Hashtbl.remove t.wired pfn
  | Page_dirtied { file; page } -> Hashtbl.replace t.dirty_pages (file, page) ()
  | Reclaim_waken _ -> () (* informational: a daemon pass began *)
  | Reclaim_page { pfn } ->
    if Hashtbl.mem t.wired pfn then
      violate t "frame %#x: reclaimed while wired by mlock" pfn;
    if Hashtbl.mem t.pending_frames pfn then
      violate t
        "frame %#x: reclaimed while its free is still deferred behind an \
         unflushed shootdown"
        pfn;
    if Hashtbl.mem t.reclaimed pfn then
      violate t "frame %#x: reclaimed twice without a reallocation" pfn;
    Hashtbl.replace t.reclaimed pfn ()
  | Reclaim_writeback { file; page } -> Hashtbl.remove t.dirty_pages (file, page)
  | Reclaim_drop { file; page; pfn = _ } ->
    if Hashtbl.mem t.dirty_pages (file, page) then
      violate t
        "file#%d page %d: cache frame dropped while dirty (writeback must \
         precede the drop)"
        file page

let violations t = List.rev t.violations
let ok t = t.violations = []
let events_seen t = t.events

(* Post-run checks: everything should have been released. *)
let check_quiescent t =
  Hashtbl.iter
    (fun lock cpu -> violate t "mutex#%d: still held by cpu %d at end" lock cpu)
    t.mutexes;
  Hashtbl.iter
    (fun lock s ->
      if s.w_cpu >= 0 then
        violate t "rwlock#%d: writer cpu %d still inside at end" lock s.w_cpu;
      if s.n_readers > 0 then
        violate t "rwlock#%d: %d readers still inside at end" lock s.n_readers)
    t.rwlocks;
  List.iter
    (fun o ->
      violate t "asp#%d: cpu %d transaction [0x%x,0x%x) never committed"
        o.t_asp o.t_cpu o.t_lo o.t_hi)
    t.txns;
  t.txns <- [];
  Hashtbl.iter
    (fun pfn _ ->
      violate t
        "frame %#x: free still deferred at end (its shootdown batch never \
         flushed)"
        pfn)
    t.pending_frames;
  Hashtbl.reset t.pending_frames;
  (* Live backing objects (still-running address spaces) are fine, but a
     zero-ref object that never saw its Obj_destroyed is a lifecycle
     bug. *)
  Hashtbl.iter
    (fun obj (o : obj_state) ->
      if (not o.o_dead) && o.o_refs = 0 then
        violate t "obj#%d: zero refs at end but never destroyed" obj)
    t.objs
