(* Functional correctness of the cursor operations (the paper's P2, §5.2)
   checked against a flat reference model — exhaustively over all short
   operation sequences on a small window (every sequence, not a random
   sample), and a linearizability check of concurrent transaction
   histories (§3.3's atomicity semantics). *)

module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let page = 4096
let window_pages = 8
let window_base = 0x4000_0000

(* -- The reference model: page number -> abstract status -- *)

type ref_entry = R_invalid | R_anon of Perm.t | R_mapped of Perm.t

type op =
  | Op_mmap of int * int * Perm.t
  | Op_munmap of int * int
  | Op_touch of int * bool
  | Op_protect of int * int * Perm.t

let op_to_string = function
  | Op_mmap (p, n, perm) ->
    Printf.sprintf "mmap(%d,%d,%s)" p n (Perm.to_string perm)
  | Op_munmap (p, n) -> Printf.sprintf "munmap(%d,%d)" p n
  | Op_touch (p, w) -> Printf.sprintf "touch(%d,%s)" p (if w then "w" else "r")
  | Op_protect (p, n, perm) ->
    Printf.sprintf "protect(%d,%d,%s)" p n (Perm.to_string perm)

(* The operation universe for exhaustive enumeration: chosen to cover
   overlap, splitting, remapping, permission changes, and faults. *)
let op_universe =
  [
    Op_mmap (0, 4, Perm.rw);
    Op_mmap (2, 4, Perm.r);
    Op_munmap (1, 3);
    Op_touch (2, true);
    Op_touch (5, false);
    Op_protect (0, 4, Perm.r);
    Op_protect (2, 2, Perm.rw);
  ]

let apply_ref model op =
  let get p = match Hashtbl.find_opt model p with Some e -> e | None -> R_invalid in
  let set p e =
    if e = R_invalid then Hashtbl.remove model p else Hashtbl.replace model p e
  in
  match op with
  | Op_mmap (p, n, perm) ->
    for i = p to p + n - 1 do
      set i (R_anon perm)
    done
  | Op_munmap (p, n) ->
    for i = p to p + n - 1 do
      set i R_invalid
    done
  | Op_touch (p, w) -> (
    match get p with
    | R_anon q when Perm.allows q ~write:w -> set p (R_mapped q)
    | R_anon _ | R_mapped _ | R_invalid -> ())
  | Op_protect (p, n, perm) ->
    for i = p to p + n - 1 do
      match get i with
      | R_invalid -> ()
      | R_anon _ -> set i (R_anon perm)
      | R_mapped _ -> set i (R_mapped perm)
    done

let agree entry (s : Cortenmm.Status.t) =
  match (entry, s) with
  | R_invalid, Cortenmm.Status.Invalid -> true
  | R_anon p, Cortenmm.Status.Private_anon q -> Perm.equal p q
  | R_mapped p, Cortenmm.Status.Mapped { perm = q; _ } ->
    p.Perm.read = q.Perm.read && (p.Perm.write = q.Perm.write || q.Perm.cow)
  | _ -> false

(* Generated requests are always valid (aligned, in-range), so the
   typed-error results can only be [Ok]; faults from [touch] are part of
   the explored behaviour and are ignored either way. *)
let apply_real asp op =
  let a p = window_base + (p * page) in
  match op with
  | Op_mmap (p, n, perm) ->
    ignore (Cortenmm.Mm.mmap_r asp ~addr:(a p) ~len:(n * page) ~perm ())
  | Op_munmap (p, n) ->
    ignore (Cortenmm.Mm.munmap_r asp ~addr:(a p) ~len:(n * page))
  | Op_touch (p, w) -> ignore (Cortenmm.Mm.touch_r asp ~vaddr:(a p) ~write:w)
  | Op_protect (p, n, perm) ->
    ignore (Cortenmm.Mm.mprotect_r asp ~addr:(a p) ~len:(n * page) ~perm)

type exhaustive_result = {
  sequences : int;
  checks : int; (* page-status comparisons performed *)
  failures : (op list * int * string) list; (* sequence, page, detail *)
}

(* Run every operation sequence of length [depth] over the universe,
   checking agreement with the reference after every operation, plus the
   page-table well-formedness invariant. *)
let exhaustive ?(isa = Mm_hal.Isa.x86_64) ~cfg ~depth () =
  let sequences = ref 0 in
  let checks = ref 0 in
  let failures = ref [] in
  let rec enum prefix remaining =
    if remaining = 0 then begin
      incr sequences;
      let seq = List.rev prefix in
      let w = Engine.create ~ncpus:1 in
      Engine.spawn w ~cpu:0 (fun () ->
          let kernel = Cortenmm.Kernel.create ~isa ~ncpus:1 () in
          let asp = Cortenmm.Addr_space.create kernel cfg in
          let model = Hashtbl.create 16 in
          List.iter
            (fun op ->
              apply_real asp op;
              apply_ref model op;
              Cortenmm.Addr_space.check_well_formed asp;
              Cortenmm.Addr_space.with_lock asp ~lo:window_base
                ~hi:(window_base + (window_pages * page)) (fun c ->
                  for p = 0 to window_pages - 1 do
                    incr checks;
                    let s =
                      Cortenmm.Addr_space.query c (window_base + (p * page))
                    in
                    let e =
                      match Hashtbl.find_opt model p with
                      | Some e -> e
                      | None -> R_invalid
                    in
                    if not (agree e s) then
                      failures :=
                        (seq, p, Cortenmm.Status.to_string s) :: !failures
                  done))
            seq);
      Engine.run w
    end
    else
      List.iter (fun op -> enum (op :: prefix) (remaining - 1)) op_universe
  in
  enum [] depth;
  { sequences = !sequences; checks = !checks; failures = List.rev !failures }

(* -- Linearizability of concurrent transactions (§3.3) --

   Random per-thread operation streams run concurrently; each completed
   operation records its completion (commit) time. Two-phase locking
   serializes conflicting transactions in lock order, and disjoint ones
   commute, so replaying all operations serially in completion order on a
   fresh instance must produce the same user-visible final state. *)

type lin_result = {
  total_ops : int;
  matched : bool;
  detail : string;
}

let abstract_window asp =
  let shapes = Array.make window_pages "invalid" in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () ->
      Cortenmm.Addr_space.with_lock asp ~lo:window_base
        ~hi:(window_base + (window_pages * page)) (fun c ->
          for p = 0 to window_pages - 1 do
            shapes.(p) <-
              (match Cortenmm.Addr_space.query c (window_base + (p * page)) with
              | Cortenmm.Status.Invalid -> "invalid"
              | Cortenmm.Status.Mapped { perm; _ } ->
                "mapped:"
                ^ Perm.to_string (Perm.with_cow perm false)
              | Cortenmm.Status.Private_anon q -> "anon:" ^ Perm.to_string q
              | s -> Cortenmm.Status.to_string s)
          done));
  Engine.run w;
  shapes

let gen_ops ~rng ~count =
  List.init count (fun _ ->
      match Mm_util.Rng.int rng 4 with
      | 0 ->
        Op_mmap
          ( Mm_util.Rng.int rng (window_pages - 2),
            1 + Mm_util.Rng.int rng 2,
            if Mm_util.Rng.bool rng then Perm.rw else Perm.r )
      | 1 ->
        Op_munmap
          (Mm_util.Rng.int rng (window_pages - 2), 1 + Mm_util.Rng.int rng 2)
      | 2 -> Op_touch (Mm_util.Rng.int rng window_pages, Mm_util.Rng.bool rng)
      | _ ->
        Op_protect
          ( Mm_util.Rng.int rng (window_pages - 2),
            1 + Mm_util.Rng.int rng 2,
            if Mm_util.Rng.bool rng then Perm.rw else Perm.r ))

let lin_check ~cfg ~ncpus ~ops_per_thread ~seed =
  let streams =
    Array.init ncpus (fun c ->
        gen_ops ~rng:(Mm_util.Rng.create ~seed:(seed + (101 * c))) ~count:ops_per_thread)
  in
  (* Concurrent run, recording completion times. *)
  let kernel = Cortenmm.Kernel.create ~ncpus () in
  let asp = Cortenmm.Addr_space.create kernel cfg in
  let history = ref [] in
  let w = Engine.create ~ncpus in
  for c = 0 to ncpus - 1 do
    Engine.spawn w ~cpu:c (fun () ->
        List.iter
          (fun op ->
            apply_real asp op;
            history := (Engine.now (), c, op) :: !history)
          streams.(c))
  done;
  Engine.run w;
  let concurrent_final = abstract_window asp in
  (* Serial replay in completion order. *)
  let serial_kernel = Cortenmm.Kernel.create ~ncpus:1 () in
  let serial = Cortenmm.Addr_space.create serial_kernel cfg in
  let ordered =
    List.sort compare !history (* by time, then cpu, then op *)
  in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () ->
      List.iter (fun (_, _, op) -> apply_real serial op) ordered);
  Engine.run w;
  let serial_final = abstract_window serial in
  let matched = concurrent_final = serial_final in
  {
    total_ops = ncpus * ops_per_thread;
    matched;
    detail =
      (if matched then "concurrent history linearizes in commit order"
       else
         Printf.sprintf "MISMATCH: concurrent=[%s] serial=[%s]"
           (String.concat ";" (Array.to_list concurrent_final))
           (String.concat ";" (Array.to_list serial_final)));
  }
