(** Runtime invariant checker over live engine state.

    Consumes {!Mm_sim.Monitor} events and checks, against the protocols
    *as implemented*, the safety properties the model checkers
    ({!Rw_model}, {!Adv_model}) verify on abstractions: per-lock mutual
    exclusion, rwlock writer exclusion and reader counting, the
    transaction property (no two active cursor transactions over
    overlapping ranges of one address space — paper P1), and RCU grace
    periods (a deferred callback fires only after every CPU inside a
    read-side section at defer time has exited).

    Violations are sticky: they are recorded, never raised, so a
    schedule explorer can finish the run and collect everything. Pure
    host-side bookkeeping — never advances virtual time.

    Typical use:
    {[
      let live = Live.create ~ncpus in
      Mm_sim.Monitor.set (Live.observe live);
      (* ... run the workload ... *)
      Mm_sim.Monitor.clear ();
      Live.check_quiescent live;
      match Live.violations live with [] -> () | vs -> report vs
    ]} *)

type t

val create : ncpus:int -> t

val observe : t -> Mm_sim.Monitor.event -> unit
(** Feed one monitor event. Install with
    [Mm_sim.Monitor.set (observe t)]. *)

val check_quiescent : t -> unit
(** Call after the run: records violations for locks still held and
    transactions never committed. *)

val violations : t -> string list
(** All recorded violations, oldest first (capped at 64). *)

val ok : t -> bool

val events_seen : t -> int
(** Number of monitor events consumed (sanity check that
    instrumentation was live). *)
