(* The portability layer of CortenMM (paper §4.4, Fig 9).

   CortenMM hides the minor per-ISA differences of the hardware PTE layout
   behind a Rust trait; the OCaml analog is a module signature implemented
   once per ISA. Besides the raw layout the implementation records which
   optional MMU features (MPK protection keys) the format can express —
   Table 5 measures the cost of adding such a feature.

   The paper's assumptions on the format (§4.4) are captured here: the
   software-visible bits must be able to (1) identify validity, (2) tell
   leaves from tables, (3) enforce access permissions, and (4) report
   accessed/dirty state. *)

module type S = sig
  val name : string

  val supports_mpk : bool
  (** Whether the format has protection-key bits (x86-64 PKU only). *)

  val needs_break_before_make : bool
  (** ARM's FEAT_BBM discipline: changing a live translation requires
      writing an invalid entry and invalidating the TLB before the new
      entry is written (paper §4.5). *)

  val encode : level:int -> Pte.t -> int64
  (** Encode a decoded entry into the raw hardware word. Raises
      [Invalid_argument] for entries the format cannot express (e.g. a huge
      leaf at a level the ISA does not support, or an MPK key on an ISA
      without protection keys). *)

  val decode : level:int -> int64 -> Pte.t
  (** Decode a raw word. Total: any word decodes to some entry (unknown bit
      patterns with the valid bit clear are [Absent]). *)
end

(* Shared bit-twiddling helpers for the per-ISA implementations.

   The arithmetic runs on native ints, not [Int64.t]: every boxed Int64
   operation allocates, and decode is the hottest function in the
   simulator (a PT-page scan decodes 512 entries). [bits] unboxes the
   hardware word once — [Int64.to_int] does not allocate — and keeps
   bits 0-62, with bit 62 landing on the native sign bit; [lsr]-based
   field extraction still sees it as an ordinary bit. Only bit 63
   (x86's XD) cannot be held, so callers test it on the boxed word
   ([w < 0L]) and restore it through [word ~bit63]. *)

let bits (w : int64) : int = Int64.to_int w

let get_bit b n = b land (1 lsl n) <> 0

let set_bit b n v = if v then b lor (1 lsl n) else b

let field b ~lo ~width = (b lsr lo) land ((1 lsl width) - 1)

let set_field b ~lo ~width v =
  if v < 0 || (width < 63 && v >= 1 lsl width) then
    invalid_arg "Pte_format.set_field: value out of range";
  b land lnot (((1 lsl width) - 1) lsl lo) lor (v lsl lo)

(* Rebuild the hardware word from bits 0-62 assembled in a native int,
   plus bit 63. The mask strips the sign-extension of native bit 62. *)
let word ?(bit63 = false) b =
  let w = Int64.logand (Int64.of_int b) 0x7FFF_FFFF_FFFF_FFFFL in
  if bit63 then Int64.logor w Int64.min_int else w
