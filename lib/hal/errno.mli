(** Typed error values for the MM operation surface: backends return
    these as data ([('a, Errno.t) result]) instead of raising, so
    workloads and the differential oracle observe failure outcomes
    deterministically. *)

type t =
  | EINVAL  (** malformed request: empty range, unaligned address *)
  | ENOMEM  (** out of physical frames or virtual address space *)
  | EACCES  (** permission denied at syscall level *)
  | ENOSYS  (** the backend does not implement this operation *)
  | EAGAIN  (** transient resource shortage; retry (mlock under pressure) *)
  | EPERM  (** operation exceeds a hard limit, e.g. the wired-page quota *)
  | SIGSEGV of int  (** access faulted; carries the faulting vaddr *)

exception Error of t
(** Bridge for callers that prefer exceptions ({!System} [_exn]
    wrappers raise this). *)

val to_string : t -> string

val label : t -> string
(** Constructor name without payloads — [SIGSEGV _] compares equal
    across backends whose VA allocators place regions differently. *)

val same_class : t -> t -> bool
(** [same_class a b] compares by {!label}. *)

val pp : Format.formatter -> t -> unit
