(* x86-64 (IA-32e 4-level paging) page-table entry layout.

   Bit layout (Intel SDM Vol. 3, §4.5):
     0  P    present
     1  R/W  writable
     2  U/S  user accessible
     3  PWT  (ignored here)
     4  PCD  (ignored here)
     5  A    accessed
     6  D    dirty (leaf only)
     7  PS   page size: 1 => huge leaf at levels 2 (2 MiB) and 3 (1 GiB)
     8  G    global (leaf only)
     9-11    available to software — bit 9 carries the COW marker
     12-51   physical frame number
     59-62   protection key (PKU; leaf only)
     63  XD  execute disable

   A present entry that is not a huge leaf is a table pointer at levels > 1
   and a 4 KiB leaf at level 1 — exactly the `is_present`/`HUGE` logic the
   paper's Fig 9 sketches. *)

open Pte_format

let name = "x86-64"
let supports_mpk = true
let needs_break_before_make = false

let p_bit = 0
let rw_bit = 1
let us_bit = 2
let a_bit = 5
let d_bit = 6
let ps_bit = 7
let g_bit = 8
let cow_bit = 9
let pfn_lo = 12
let pfn_width = 40
let pku_lo = 59
let pku_width = 4
let xd_bit = 63

let encode ~level (pte : Pte.t) =
  match pte with
  | Pte.Absent -> 0L
  | Pte.Table { pfn } ->
    if level <= 1 then invalid_arg "x86-64: table entry at leaf level";
    (* Intermediate entries get RW|US set so the leaf controls access. *)
    let b = set_bit 0 p_bit true in
    let b = set_bit b rw_bit true in
    let b = set_bit b us_bit true in
    word (set_field b ~lo:pfn_lo ~width:pfn_width pfn)
  | Pte.Leaf { pfn; perm; accessed; dirty; global } ->
    if not perm.Perm.read then
      invalid_arg "x86-64: present leaf is always readable (use Absent)";
    let huge = level > 1 in
    if level > 3 then invalid_arg "x86-64: no huge pages above 1 GiB";
    if huge && not (Mm_util.Align.is_aligned pfn (1 lsl (9 * (level - 1))))
    then invalid_arg "x86-64: misaligned huge-page frame";
    let b = set_bit 0 p_bit true in
    let b = set_bit b rw_bit perm.Perm.write in
    let b = set_bit b us_bit perm.Perm.user in
    let b = set_bit b a_bit accessed in
    let b = set_bit b d_bit dirty in
    let b = set_bit b ps_bit huge in
    let b = set_bit b g_bit global in
    let b = set_bit b cow_bit perm.Perm.cow in
    let b = set_field b ~lo:pku_lo ~width:pku_width perm.Perm.mpk_key in
    let b = set_field b ~lo:pfn_lo ~width:pfn_width pfn in
    word ~bit63:(not perm.Perm.execute) b (* XD *)

let decode ~level w =
  let b = bits w in
  if not (get_bit b p_bit) then Pte.Absent
  else
    let huge = get_bit b ps_bit in
    let pfn = field b ~lo:pfn_lo ~width:pfn_width in
    if level > 1 && not huge then Pte.Table { pfn }
    else
      let perm =
        Perm.make ~read:true ~write:(get_bit b rw_bit)
          ~execute:(w >= 0L) (* XD is bit 63: the boxed word's sign *)
          ~user:(get_bit b us_bit) ~cow:(get_bit b cow_bit)
          ~mpk_key:(field b ~lo:pku_lo ~width:pku_width)
          ()
      in
      Pte.Leaf
        {
          pfn;
          perm;
          accessed = get_bit b a_bit;
          dirty = get_bit b d_bit;
          global = get_bit b g_bit;
        }
