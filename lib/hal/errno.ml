(* Typed error values for the MM operation surface. The backends signal
   failure as data ([result]) at the interface boundary instead of ad-hoc
   exceptions, which is what lets the differential oracle compare error
   outcomes across systems deterministically. *)

type t =
  | EINVAL (* malformed request: empty range, unaligned address *)
  | ENOMEM (* out of physical frames or virtual address space *)
  | EACCES (* permission denied at syscall level *)
  | ENOSYS (* the backend does not implement this operation *)
  | EAGAIN (* transient resource shortage; retry (mlock under pressure) *)
  | EPERM (* operation exceeds a hard limit, e.g. the wired-page quota *)
  | SIGSEGV of int (* access faulted; carries the faulting vaddr *)

exception Error of t

let to_string = function
  | EINVAL -> "EINVAL"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | ENOSYS -> "ENOSYS"
  | EAGAIN -> "EAGAIN"
  | EPERM -> "EPERM"
  | SIGSEGV vaddr -> Printf.sprintf "SIGSEGV@0x%x" vaddr

(* Class label, without payloads: two backends faulting at different
   virtual addresses for the same logical access still agree. *)
let label = function
  | EINVAL -> "EINVAL"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | ENOSYS -> "ENOSYS"
  | EAGAIN -> "EAGAIN"
  | EPERM -> "EPERM"
  | SIGSEGV _ -> "SIGSEGV"

let same_class a b = label a = label b

let pp fmt t = Format.pp_print_string fmt (to_string t)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Mm_hal.Errno.Error " ^ to_string e)
    | _ -> None)
