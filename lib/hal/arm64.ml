(* ARMv8-A VMSAv8-64 stage-1 descriptor layout, 4 KiB granule (simplified).

   Bit layout (ARM DDI 0487, D8.3):
     0     valid
     1     type: at upper levels 1 = table, 0 = block leaf;
           at the last level 1 = page leaf, 0 = reserved (invalid)
     2-4   AttrIndx (memory attributes; fixed to 0 here)
     6     AP[1]  EL0 (user) access
     7     AP[2]  read-only
     10    AF     access flag
     11    nG     not-global
     12-47 physical frame number
     53    PXN    privileged execute-never
     54    UXN    unprivileged execute-never
     55    software: COW marker
     56    software: dirty (hardware DBM management is not modelled)

   ARM allows block (huge) leaves at its levels 1 and 2 only — our levels 3
   (1 GiB) and 2 (2 MiB) — matching x86-64. The break-before-make rule the
   paper mentions (§4.5) is a TLB-maintenance discipline and is handled by
   the TLB layer, not the descriptor format. *)

open Pte_format

let name = "ARMv8 4K"
let supports_mpk = false
let needs_break_before_make = true

let valid_bit = 0
let type_bit = 1
let ap1_bit = 6
let ap2_bit = 7
let af_bit = 10
let ng_bit = 11
let pfn_lo = 12
let pfn_width = 36
let pxn_bit = 53
let uxn_bit = 54
let cow_bit = 55
let dirty_bit = 56

let encode ~level (pte : Pte.t) =
  match pte with
  | Pte.Absent -> 0L
  | Pte.Table { pfn } ->
    if level <= 1 then invalid_arg "ARMv8: table entry at leaf level";
    let b = set_bit 0 valid_bit true in
    let b = set_bit b type_bit true in
    word (set_field b ~lo:pfn_lo ~width:pfn_width pfn)
  | Pte.Leaf { pfn; perm; accessed; dirty; global } ->
    if not perm.Perm.read then
      invalid_arg "ARMv8: present leaf is always readable (use Absent)";
    if perm.Perm.mpk_key <> 0 then invalid_arg "ARMv8: no protection keys";
    if level = 4 then invalid_arg "ARMv8: no level-0 blocks with 4K granule";
    if level > 1 && not (Mm_util.Align.is_aligned pfn (1 lsl (9 * (level - 1))))
    then invalid_arg "ARMv8: misaligned block frame";
    let b = set_bit 0 valid_bit true in
    (* Page descriptors at the last level have the type bit set; block
       descriptors at upper levels have it clear. *)
    let b = set_bit b type_bit (level = 1) in
    let b = set_bit b ap1_bit perm.Perm.user in
    let b = set_bit b ap2_bit (not perm.Perm.write) in
    let b = set_bit b af_bit accessed in
    let b = set_bit b ng_bit (not global) in
    let b = set_bit b uxn_bit (not perm.Perm.execute) in
    let b = set_bit b pxn_bit true in
    let b = set_bit b cow_bit perm.Perm.cow in
    let b = set_bit b dirty_bit dirty in
    word (set_field b ~lo:pfn_lo ~width:pfn_width pfn)

let decode ~level w =
  let b = bits w in
  if not (get_bit b valid_bit) then Pte.Absent
  else
    let type_set = get_bit b type_bit in
    let pfn = field b ~lo:pfn_lo ~width:pfn_width in
    let leaf = if level = 1 then type_set else not type_set in
    if (not leaf) && level = 1 then Pte.Absent (* reserved encoding *)
    else if not leaf then Pte.Table { pfn }
    else
      let perm =
        Perm.make ~read:true
          ~write:(not (get_bit b ap2_bit))
          ~execute:(not (get_bit b uxn_bit))
          ~user:(get_bit b ap1_bit) ~cow:(get_bit b cow_bit) ~mpk_key:0 ()
      in
      Pte.Leaf
        {
          pfn;
          perm;
          accessed = get_bit b af_bit;
          dirty = get_bit b dirty_bit;
          global = not (get_bit b ng_bit);
        }
