(* RISC-V Sv48 page-table entry layout.

   Bit layout (RISC-V privileged spec):
     0  V  valid
     1  R  readable
     2  W  writable
     3  X  executable
     4  U  user accessible
     5  G  global
     6  A  accessed
     7  D  dirty
     8-9   RSW, reserved for software — bit 8 carries the COW marker
     10-53 physical frame number

   A valid entry with R=W=X=0 is a pointer to the next level; any of R/W/X
   set makes it a leaf (at any level — RISC-V supports huge leaves at every
   non-leaf level, "megapages"/"gigapages"/"terapages"). This is the
   `PteFlags::V` check from the paper's Fig 9. *)

open Pte_format

let name = "RISC-V Sv48"
let supports_mpk = false
let needs_break_before_make = false

let v_bit = 0
let r_bit = 1
let w_bit = 2
let x_bit = 3
let u_bit = 4
let g_bit = 5
let a_bit = 6
let d_bit = 7
let cow_bit = 8
let pfn_lo = 10
let pfn_width = 44

let encode ~level (pte : Pte.t) =
  match pte with
  | Pte.Absent -> 0L
  | Pte.Table { pfn } ->
    if level <= 1 then invalid_arg "Sv48: table entry at leaf level";
    let b = set_bit 0 v_bit true in
    word (set_field b ~lo:pfn_lo ~width:pfn_width pfn)
  | Pte.Leaf { pfn; perm; accessed; dirty; global } ->
    if not (perm.Perm.read || perm.Perm.execute) then
      invalid_arg "Sv48: leaf must have R or X (R=W=X=0 means pointer)";
    if perm.Perm.write && not perm.Perm.read then
      invalid_arg "Sv48: W without R is reserved";
    if perm.Perm.mpk_key <> 0 then
      invalid_arg "Sv48: no protection keys";
    if level > 1 && not (Mm_util.Align.is_aligned pfn (1 lsl (9 * (level - 1))))
    then invalid_arg "Sv48: misaligned superpage frame";
    let b = set_bit 0 v_bit true in
    let b = set_bit b r_bit perm.Perm.read in
    let b = set_bit b w_bit perm.Perm.write in
    let b = set_bit b x_bit perm.Perm.execute in
    let b = set_bit b u_bit perm.Perm.user in
    let b = set_bit b g_bit global in
    let b = set_bit b a_bit accessed in
    let b = set_bit b d_bit dirty in
    let b = set_bit b cow_bit perm.Perm.cow in
    word (set_field b ~lo:pfn_lo ~width:pfn_width pfn)

let decode ~level w =
  let b = bits w in
  if not (get_bit b v_bit) then Pte.Absent
  else
    let leaf = get_bit b r_bit || get_bit b w_bit || get_bit b x_bit in
    let pfn = field b ~lo:pfn_lo ~width:pfn_width in
    if (not leaf) && level > 1 then Pte.Table { pfn }
    else if not leaf then Pte.Absent (* R=W=X=0 at level 1 is malformed *)
    else
      let perm =
        Perm.make ~read:(get_bit b r_bit) ~write:(get_bit b w_bit)
          ~execute:(get_bit b x_bit) ~user:(get_bit b u_bit)
          ~cow:(get_bit b cow_bit) ~mpk_key:0 ()
      in
      Pte.Leaf
        {
          pfn;
          perm;
          accessed = get_bit b a_bit;
          dirty = get_bit b d_bit;
          global = get_bit b g_bit;
        }
