(** The Linux-style two-level-abstraction baseline: VMA interval tree +
    page tables, with the locking structure of the paper's Table 1 /
    Fig 2 (coarse [mmap_lock], per-VMA locks, coarse + fine page-table
    locks, per-fault mm-wide accounting). *)

type t

type fault_outcome = Handled | Sigsegv

exception Fault of int

val create : ?isa:Mm_hal.Isa.t -> ncpus:int -> unit -> t
val page_size : t -> int
val phys : t -> Mm_phys.Phys.t
val tlb : t -> Mm_tlb.Tlb.t
val vma_count : t -> int
val pt_page_count : t -> int

val mmap : t -> ?addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit -> int
(** Takes the writer side of [mmap_lock]; merges with adjacent VMAs of
    equal permissions (the vma_merge fast path). *)

val munmap : t -> addr:int -> len:int -> unit
(** The Fig 2 sequence: write-lock, mark VMAs, split the tree, downgrade,
    clear page tables under fine locks, synchronous TLB shootdown. *)

val mprotect : t -> addr:int -> len:int -> perm:Mm_hal.Perm.t -> unit

val page_fault : t -> vaddr:int -> write:bool -> fault_outcome
(** Lock-free maple-tree find, per-VMA reader lock, PT population under
    the coarse [page_table_lock] (upper levels) and the per-PT-page lock
    (leaf), plus the RSS/LRU accounting atomic. *)

val touch : t -> vaddr:int -> write:bool -> unit
val touch_range : t -> addr:int -> len:int -> write:bool -> unit

val fork : t -> t
(** VMA-list enumeration + streaming page-table copy with COW. *)

val destroy : t -> unit

val page_state : t -> vaddr:int -> [ `Unmapped | `Lazy of bool | `Resident of bool ]
(** Observation of one page for the differential oracle: [`Lazy w] =
    VMA present but no frame yet, [`Resident w] = frame installed; [w]
    is the logical writability (COW counts as writable). *)

val write_value : t -> vaddr:int -> value:int -> unit
val read_value : t -> vaddr:int -> int
val check_well_formed : t -> unit
