(* The Linux-style two-level-abstraction baseline.

   Faithfully models the locking structure of the paper's Table 1 / Fig 2
   (Linux 6.13 with per-VMA locks):

   - mmap takes the writer side of the coarse mmap_lock ("mmap ... avoids
     the complexity and simply acquires the writer side", §2.2);
   - munmap write-locks mmap_lock, marks each overlapping VMA under its
     per-VMA lock, downgrades, then clears page tables under the
     fine-grained PT locks and performs a synchronous TLB shootdown;
   - page faults find the VMA lock-free (maple tree under RCU), take the
     per-VMA lock on the reader side, allocate upper-level PT pages under
     the coarse page_table_lock and the leaf PTE under the per-PT-page
     lock; each fault also charges the mm-wide accounting / LRU update,
     an atomic on a shared mm cache line — the residual serialization that
     keeps Linux's fault path from scaling like CortenMM's.

   The page-table substrate is the same radix engine CortenMM uses (with
   unit metadata) — the comparison isolates the software-level
   abstraction, exactly as the paper intends. *)

open Mm_hal
module Pt = Mm_pt.Pt
module Va_alloc = Cortenmm.Va_alloc

type fault_outcome = Handled | Sigsegv

type t = {
  phys : Mm_phys.Phys.t;
  isa : Isa.t;
  ncpus : int;
  pt : unit Pt.t;
  vmas : Vma.t;
  mmap_lock : Mm_sim.Rwlock_s.t;
  page_table_lock : Mm_sim.Mutex_s.t; (* protects upper-level PT pages *)
  stats_line : Mm_sim.Engine.Line.t; (* mm-wide RSS/LRU accounting *)
  tlb : Mm_tlb.Tlb.t;
  va : Va_alloc.t;
  cpu_mask : bool array;
}


let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let va_lo = 0x1000_0000

let create ?(isa = Isa.x86_64) ~ncpus () =
  let phys = Mm_phys.Phys.create () in
  let geo = isa.Isa.geo in
  {
    phys;
    isa;
    ncpus;
    pt = Pt.create phys isa;
    vmas = Vma.create phys;
    mmap_lock = Mm_sim.Rwlock_s.make ~bravo:false ~name:"linux.mmap_lock" ();
    page_table_lock = Mm_sim.Mutex_s.make ~name:"linux.page_table_lock" ();
    stats_line = Mm_sim.Engine.Line.make ();
    tlb = Mm_tlb.Tlb.create ~ncpus ~strategy:Mm_tlb.Tlb.Sync ();
    va =
      Va_alloc.create ~ncpus ~per_core:false ~va_lo
        ~va_hi:(Geometry.va_limit geo) ~page_size:(Geometry.page_size geo);
    cpu_mask = Array.make ncpus false;
  }

let page_size t = Geometry.page_size t.isa.Isa.geo
let phys t = t.phys
let tlb t = t.tlb
let vma_count t = Vma.count t.vmas
let pt_page_count t = Pt.pt_page_count t.pt

let note_cpu t =
  if Mm_sim.Engine.in_fiber () then
    t.cpu_mask.(Mm_sim.Engine.cpu_id ()) <- true

(* -- mmap: writer side of mmap_lock -- *)

let mmap t ?addr ~len ~perm () =
  charge Mm_sim.Cost.syscall;
  note_cpu t;
  let ps = page_size t in
  let len = Mm_util.Align.up len ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  Mm_sim.Rwlock_s.write_lock t.mmap_lock;
  let lo =
    match addr with
    | Some a -> a
    | None -> Va_alloc.alloc t.va ~cpu ~len ()
  in
  let hi = lo + len in
  (* Fixed mappings replace whatever is there. *)
  if Vma.overlaps t.vmas ~lo ~hi then ignore (Vma.remove_range t.vmas ~lo ~hi);
  ignore (Vma.insert_or_merge t.vmas ~start:lo ~end_:hi ~perm);
  Mm_sim.Rwlock_s.write_unlock t.mmap_lock;
  lo

(* -- Page-table plumbing (used by munmap / fork / mprotect) -- *)

(* Clear all leaf PTEs in [lo, hi), taking the fine-grained lock of each
   leaf PT page. Returns the number of pages unmapped. *)
let clear_pt_range t ~lo ~hi =
  let ps = page_size t in
  let unmapped = ref [] in
  let rec walk (node : unit Pt.node) ~lo ~hi =
    Pt.charge_range_scan t.pt node ~lo ~hi;
    Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
        match Pt.get_uncharged t.pt node idx with
        | Pte.Leaf _ when node.Pt.level = 1 ->
          Mm_sim.Mutex_s.lock node.Pt.frame.Mm_phys.Frame.lock;
          (match Pt.get t.pt node idx with
          | Pte.Leaf { pfn; _ } ->
            Pt.set t.pt node idx Pte.Absent;
            let f = Mm_phys.Phys.frame t.phys pfn in
            f.Mm_phys.Frame.map_count <- f.Mm_phys.Frame.map_count - 1;
            if
              f.Mm_phys.Frame.map_count = 0
              && f.Mm_phys.Frame.kind = Mm_phys.Frame.Anon
            then begin
              charge Mm_sim.Cost.page_free;
              Mm_phys.Phys.free t.phys f
            end;
            unmapped := (sub_lo / ps) :: !unmapped
          | Pte.Absent | Pte.Table _ -> ());
          Mm_sim.Mutex_s.unlock node.Pt.frame.Mm_phys.Frame.lock
        | Pte.Leaf _ ->
          failwith "linux baseline: huge leaves not used"
        | Pte.Table { pfn } -> (
          match Pt.node_of_pfn t.pt pfn with
          | Some child -> walk child ~lo:sub_lo ~hi:sub_hi
          | None -> failwith "clear_pt_range: dangling entry")
        | Pte.Absent -> ())
  in
  walk (Pt.root t.pt) ~lo ~hi;
  !unmapped

(* free_pgtables: release PT pages that became empty, under the coarse
   page_table_lock (freeing requires the entry to have been cleared —
   Table 1 rule 7). *)
let free_empty_pt_pages t ~lo ~hi =
  Mm_sim.Mutex_s.lock t.page_table_lock;
  let rec prune (node : unit Pt.node) ~lo ~hi =
    if node.Pt.level > 1 then begin
      Pt.charge_range_scan t.pt node ~lo ~hi;
      Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
          match Pt.get_uncharged t.pt node idx with
          | Pte.Table { pfn } -> (
            match Pt.node_of_pfn t.pt pfn with
            | Some child ->
              prune child ~lo:sub_lo ~hi:sub_hi;
              if child.Pt.present = 0 then begin
                let detached = Pt.detach_child t.pt node idx in
                Pt.free_node t.pt detached
              end
            | None -> failwith "free_empty_pt_pages: dangling entry")
          | Pte.Absent | Pte.Leaf _ -> ())
    end
  in
  prune (Pt.root t.pt) ~lo ~hi;
  Mm_sim.Mutex_s.unlock t.page_table_lock

(* -- munmap: the Fig 2 sequence -- *)

let munmap t ~addr ~len =
  charge Mm_sim.Cost.syscall;
  note_cpu t;
  let ps = page_size t in
  let len = Mm_util.Align.up len ps in
  let lo = addr and hi = addr + len in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  Mm_sim.Rwlock_s.write_lock t.mmap_lock;
  (* vma_start_write on each overlapping VMA (Fig 2 munmap L3-8). *)
  let victims = Vma.overlapping t.vmas ~lo ~hi in
  List.iter
    (fun (v : Vma.vma) ->
      Mm_sim.Rwlock_s.write_lock v.Vma.vma_lock;
      v.Vma.seq <- v.Vma.seq + 1;
      Mm_sim.Rwlock_s.write_unlock v.Vma.vma_lock)
    victims;
  (* Update the tree (splits partially covered VMAs). *)
  ignore (Vma.remove_range t.vmas ~lo ~hi);
  Mm_sim.Rwlock_s.downgrade t.mmap_lock;
  (* unmap_vmas + free_page_tables under the downgraded (read) lock. *)
  let vpns = clear_pt_range t ~lo ~hi in
  free_empty_pt_pages t ~lo ~hi;
  if vpns <> [] && Mm_sim.Engine.in_fiber () then
    Mm_tlb.Tlb.shootdown t.tlb ~targets:t.cpu_mask ~vpns;
  Mm_sim.Rwlock_s.read_unlock t.mmap_lock;
  Va_alloc.free t.va ~cpu ~addr ~len

(* -- mprotect -- *)

let mprotect t ~addr ~len ~perm =
  charge Mm_sim.Cost.syscall;
  note_cpu t;
  let lo = addr and hi = addr + len in
  Mm_sim.Rwlock_s.write_lock t.mmap_lock;
  Vma.split_for_protect t.vmas ~lo ~hi ~perm;
  (* Rewrite present PTEs. *)
  let vpns = ref [] in
  let ps = page_size t in
  let rec walk (node : unit Pt.node) ~lo ~hi =
    Pt.charge_range_scan t.pt node ~lo ~hi;
    Pt.iter_range t.pt node ~lo ~hi (fun idx sub_lo sub_hi ->
        match Pt.get_uncharged t.pt node idx with
        | Pte.Leaf l when node.Pt.level = 1 ->
          Mm_sim.Mutex_s.lock node.Pt.frame.Mm_phys.Frame.lock;
          Pt.set t.pt node idx
            (Pte.Leaf { l with perm = { perm with Perm.cow = l.perm.Perm.cow } });
          Mm_sim.Mutex_s.unlock node.Pt.frame.Mm_phys.Frame.lock;
          vpns := (sub_lo / ps) :: !vpns
        | Pte.Leaf _ -> failwith "linux baseline: huge leaves not used"
        | Pte.Table { pfn } -> (
          match Pt.node_of_pfn t.pt pfn with
          | Some child -> walk child ~lo:sub_lo ~hi:sub_hi
          | None -> failwith "mprotect: dangling entry")
        | Pte.Absent -> ())
  in
  walk (Pt.root t.pt) ~lo ~hi;
  if !vpns <> [] && Mm_sim.Engine.in_fiber () then
    Mm_tlb.Tlb.shootdown t.tlb ~targets:t.cpu_mask ~vpns:!vpns;
  Mm_sim.Rwlock_s.write_unlock t.mmap_lock

(* -- Page fault: lock-free find + per-VMA read lock (Fig 2) -- *)

let page_fault t ~vaddr ~write =
  charge Mm_sim.Cost.trap;
  note_cpu t;
  let ps = page_size t in
  let page = Mm_util.Align.down vaddr ps in
  (* Lock-free maple-tree lookup in an RCU read section. *)
  match Vma.find t.vmas vaddr with
  | None -> Sigsegv
  | Some vma ->
    Mm_sim.Rwlock_s.read_lock vma.Vma.vma_lock;
    (* Re-validate after locking. *)
    if
      not
        (vaddr >= vma.Vma.v_start && vaddr < vma.Vma.v_end
        && Perm.allows vma.Vma.perm ~write)
    then begin
      Mm_sim.Rwlock_s.read_unlock vma.Vma.vma_lock;
      Sigsegv
    end
    else begin
      (* Walk to the leaf, allocating upper PT pages under the coarse
         page_table_lock (Table 1 rule: "the lock of the target page
         table" — level 2/1 pages are fine-grained, higher are coarse). *)
      let rec down (node : unit Pt.node) =
        if node.Pt.level = 1 then node
        else
          let idx = Pt.index t.pt ~level:node.Pt.level ~vaddr in
          match Pt.child t.pt node idx with
          | Some c -> down c
          | None ->
            Mm_sim.Mutex_s.lock t.page_table_lock;
            let c =
              match Pt.child t.pt node idx with
              | Some c -> c (* raced: someone else allocated it *)
              | None -> Pt.ensure_child t.pt node idx
            in
            Mm_sim.Mutex_s.unlock t.page_table_lock;
            down c
      in
      let leaf = down (Pt.root t.pt) in
      let idx = Pt.index t.pt ~level:1 ~vaddr in
      Mm_sim.Mutex_s.lock leaf.Pt.frame.Mm_phys.Frame.lock;
      let outcome =
        match Pt.get t.pt leaf idx with
        | Pte.Leaf { pfn; perm; _ } ->
          (* Raced with another fault, or a COW break. *)
          if write && perm.Perm.cow then begin
            let frame = Mm_phys.Phys.frame t.phys pfn in
            if
              frame.Mm_phys.Frame.map_count = 1
              && frame.Mm_phys.Frame.kind = Mm_phys.Frame.Anon
            then begin
              let p = Perm.with_cow (Perm.with_write perm true) false in
              Pt.set t.pt leaf idx (Pte.leaf ~pfn ~perm:p ());
              Mm_tlb.Tlb.install t.tlb ~cpu:(Mm_sim.Engine.cpu_id ())
                ~vpn:(page / ps) ~pfn ~writable:true ();
              Handled
            end
            else begin
              charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_copy);
              let copy = Mm_phys.Phys.alloc t.phys ~kind:Mm_phys.Frame.Anon () in
              copy.Mm_phys.Frame.contents <- frame.Mm_phys.Frame.contents;
              copy.Mm_phys.Frame.map_count <- 1;
              frame.Mm_phys.Frame.map_count <-
                frame.Mm_phys.Frame.map_count - 1;
              let p = Perm.with_cow (Perm.with_write perm true) false in
              Pt.set t.pt leaf idx
                (Pte.leaf ~pfn:copy.Mm_phys.Frame.pfn ~perm:p ());
              if Mm_sim.Engine.in_fiber () then begin
                Mm_tlb.Tlb.install t.tlb ~cpu:(Mm_sim.Engine.cpu_id ())
                  ~vpn:(page / ps) ~pfn:copy.Mm_phys.Frame.pfn ~writable:true
                  ()
              end;
              Handled
            end
          end
          else Handled
        | Pte.Table _ -> failwith "page_fault: table entry at leaf level"
        | Pte.Absent ->
          charge (Mm_sim.Cost.page_alloc + Mm_sim.Cost.page_zero);
          let frame = Mm_phys.Phys.alloc t.phys ~kind:Mm_phys.Frame.Anon () in
          frame.Mm_phys.Frame.map_count <- 1;
          let p = vma.Vma.perm in
          Pt.set t.pt leaf idx (Pte.leaf ~pfn:frame.Mm_phys.Frame.pfn ~perm:p ());
          if Mm_sim.Engine.in_fiber () then
            Mm_tlb.Tlb.install t.tlb ~cpu:(Mm_sim.Engine.cpu_id ())
              ~vpn:(page / ps) ~pfn:frame.Mm_phys.Frame.pfn
              ~writable:(p.Perm.write && not p.Perm.cow) ();
          Handled
      in
      (* mm-wide RSS / LRU / memcg accounting: local bookkeeping plus an
         atomic on a shared mm cache line. *)
      charge Mm_sim.Cost.linux_fault_accounting;
      if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.Line.rmw t.stats_line;
      Mm_sim.Mutex_s.unlock leaf.Pt.frame.Mm_phys.Frame.lock;
      Mm_sim.Rwlock_s.read_unlock vma.Vma.vma_lock;
      outcome
    end

exception Fault of int

let touch t ~vaddr ~write =
  note_cpu t;
  let ps = page_size t in
  let vpn = vaddr / ps in
  let cpu = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.cpu_id () else 0 in
  charge Mm_sim.Cost.cache_hit;
  match Mm_tlb.Tlb.lookup t.tlb ~cpu ~vpn ~write with
  | Some _ -> ()
  | None ->
    let rec walk (node : unit Pt.node) =
      let idx = Pt.index t.pt ~level:node.Pt.level ~vaddr in
      match Pt.get t.pt node idx with
      | Pte.Leaf { pfn; perm; _ }
        when Perm.allows perm ~write && not (write && perm.Perm.cow) ->
        Mm_tlb.Tlb.install t.tlb ~cpu ~vpn ~pfn
          ~writable:(perm.Perm.write && not perm.Perm.cow) ();
        Some ()
      | Pte.Leaf _ -> None
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn t.pt pfn with
        | Some child -> walk child
        | None -> None)
      | Pte.Absent -> None
    in
    (match walk (Pt.root t.pt) with
    | Some () -> ()
    | None -> (
      match page_fault t ~vaddr ~write with
      | Handled -> ()
      | Sigsegv -> raise (Fault vaddr)))

let touch_range t ~addr ~len ~write =
  let ps = page_size t in
  let rec go v =
    if v < addr + len then begin
      touch t ~vaddr:v ~write;
      go (v + ps)
    end
  in
  go addr

(* -- fork: iterate the VMA list (Linux's fast path for enumeration) -- *)

let fork t =
  charge Mm_sim.Cost.syscall;
  Mm_sim.Rwlock_s.write_lock t.mmap_lock;
  let child =
    {
      phys = t.phys;
      isa = t.isa;
      ncpus = t.ncpus;
      pt = Pt.create t.phys t.isa;
      vmas = Vma.create t.phys;
      mmap_lock = Mm_sim.Rwlock_s.make ~bravo:false ~name:"linux.mmap_lock" ();
      page_table_lock = Mm_sim.Mutex_s.make ~name:"linux.page_table_lock" ();
      stats_line = Mm_sim.Engine.Line.make ();
      tlb = Mm_tlb.Tlb.create ~ncpus:t.ncpus ~strategy:Mm_tlb.Tlb.Sync ();
      va = Va_alloc.clone t.va;
      cpu_mask = Array.make t.ncpus false;
    }
  in
  (* Copy the VMA list: Linux enumerates the address space through the
     software-level abstraction — fast (one struct per region). *)
  Vma.iter t.vmas (fun v ->
      ignore
        (Vma.insert child.vmas ~start:v.Vma.v_start ~end_:v.Vma.v_end
           ~perm:v.Vma.perm));
  (* copy_page_range: stream-copy the populated page tables, COWing
     writable private leaves on both sides. *)
  let vpns = ref [] in
  let ps = page_size t in
  let rec clone_pt (pn : unit Pt.node) (cn : unit Pt.node) =
    Pt.charge_node_scan t.pt;
    charge Mm_sim.Cost.page_copy;
    for idx = 0 to Pt.entries_per_node t.pt - 1 do
      match Pt.get_uncharged t.pt pn idx with
      | Pte.Absent -> ()
      | Pte.Table { pfn } -> (
        match Pt.node_of_pfn t.pt pfn with
        | Some pchild ->
          let cchild = Pt.alloc_node child.pt ~level:(cn.Pt.level - 1) in
          Pt.link_child child.pt cn idx cchild;
          Pt.set child.pt cn idx
            (Pte.Table { pfn = cchild.Pt.frame.Mm_phys.Frame.pfn });
          clone_pt pchild cchild
        | None -> failwith "fork: dangling table entry")
      | Pte.Leaf { pfn; perm; accessed; dirty; global } ->
        let p =
          if perm.Perm.write || perm.Perm.cow then begin
            let p = Perm.with_cow (Perm.with_write perm false) true in
            Pt.set t.pt pn idx (Pte.Leaf { pfn; perm = p; accessed; dirty; global });
            let vaddr =
              Pt.node_base t.pt pn + (idx * Pt.entry_coverage t.pt pn)
            in
            vpns := (vaddr / ps) :: !vpns;
            p
          end
          else perm
        in
        Pt.set child.pt cn idx (Pte.Leaf { pfn; perm = p; accessed; dirty; global });
        let f = Mm_phys.Phys.frame t.phys pfn in
        f.Mm_phys.Frame.map_count <- f.Mm_phys.Frame.map_count + 1
    done
  in
  clone_pt (Pt.root t.pt) (Pt.root child.pt);
  (if !vpns <> [] && Mm_sim.Engine.in_fiber () then
     let vpns =
       if List.length !vpns > 64 then List.filteri (fun i _ -> i < 64) !vpns
       else !vpns
     in
     Mm_tlb.Tlb.shootdown t.tlb ~targets:t.cpu_mask ~vpns);
  Mm_sim.Rwlock_s.write_unlock t.mmap_lock;
  child

let destroy t =
  let geo = t.isa.Isa.geo in
  let lo = va_lo and hi = Geometry.va_limit geo in
  Mm_sim.Rwlock_s.write_lock t.mmap_lock;
  ignore (Vma.remove_range t.vmas ~lo ~hi);
  Mm_sim.Rwlock_s.downgrade t.mmap_lock;
  ignore (clear_pt_range t ~lo ~hi);
  free_empty_pt_pages t ~lo ~hi;
  Mm_sim.Rwlock_s.read_unlock t.mmap_lock

(* Simulated data access, mirroring Cortenmm.Mm for the semantics tests. *)
let with_pfn t ~vaddr f =
  let node = Pt.walk_opt t.pt ~to_level:1 vaddr in
  if node.Pt.level <> 1 then failwith "with_pfn: page not mapped"
  else
    match Pt.get t.pt node (Pt.index t.pt ~level:1 ~vaddr) with
    | Pte.Leaf { pfn; _ } -> f (Mm_phys.Phys.frame t.phys pfn)
    | Pte.Absent | Pte.Table _ -> failwith "with_pfn: page not mapped"

let write_value t ~vaddr ~value =
  touch t ~vaddr ~write:true;
  with_pfn t ~vaddr (fun f -> f.Mm_phys.Frame.contents <- value)

let read_value t ~vaddr =
  touch t ~vaddr ~write:false;
  with_pfn t ~vaddr (fun f -> f.Mm_phys.Frame.contents)

(* Normalized observation of one page for the differential oracle: VMA
   lookup for mapped-ness and the would-be protection, raw (uncharged)
   PT descent for residency. COW counts as writable — the store succeeds
   after the break. *)
let page_state t ~vaddr =
  match Vma.find t.vmas vaddr with
  | None -> `Unmapped
  | Some vma ->
    let rec down (node : unit Pt.node) =
      let idx = Pt.index t.pt ~level:node.Pt.level ~vaddr in
      if node.Pt.level = 1 then
        match Pt.get_uncharged t.pt node idx with
        | Pte.Leaf { perm; _ } ->
          `Resident (perm.Perm.write || perm.Perm.cow)
        | Pte.Absent | Pte.Table _ -> `Lazy vma.Vma.perm.Perm.write
      else
        match Pt.child t.pt node idx with
        | Some c -> down c
        | None -> `Lazy vma.Vma.perm.Perm.write
    in
    down (Pt.root t.pt)

let check_well_formed t = Pt.check_well_formed t.pt
