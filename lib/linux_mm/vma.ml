(* The software-level abstraction CortenMM eliminates: virtual memory
   areas stored in a maple tree (Linux's actual structure since 6.1
   [55]; see {!Maple}). Each VMA carries its own readers-writer lock
   (per-VMA locks, [30]) and a sequence count used by munmap's
   mark-before-downgrade dance (Fig 2). vm_area_structs come from a slab
   cache, as in Linux.

   Tree reads are lock-free (RCU); the callers take mmap_lock / per-VMA
   locks per the paper's Table 1. *)

type vma = {
  mutable v_start : int;
  mutable v_end : int;
  mutable perm : Mm_hal.Perm.t;
  vma_lock : Mm_sim.Rwlock_s.t;
  mutable seq : int; (* vm_lock_seq: marked by munmap before downgrade *)
  line : Mm_sim.Engine.Line.t;
  slab_handle : int; (* where this struct lives in the vma slab cache *)
}

(* Modelled size of a vm_area_struct. *)
let vma_struct_bytes = 200

type t = {
  tree : vma Maple.t;
  cache : Mm_phys.Slab.t; (* the vm_area_struct slab cache *)
}

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let create phys =
  {
    tree = Maple.create ~start:(fun v -> v.v_start) ~stop:(fun v -> v.v_end);
    cache =
      Mm_phys.Slab.create phys ~name:"vm_area_struct"
        ~obj_size:vma_struct_bytes;
  }

let alloc_vma t ~start ~end_ ~perm =
  charge Mm_sim.Cost.vma_alloc;
  let slab_handle = Mm_phys.Slab.alloc t.cache in
  {
    v_start = start;
    v_end = end_;
    perm;
    vma_lock = Mm_sim.Rwlock_s.make ~bravo:false ~name:"linux.vma_lock" ();
    seq = 0;
    line = Mm_sim.Engine.Line.make ();
    slab_handle;
  }

let release_vma t (v : vma) =
  charge Mm_sim.Cost.vma_free;
  Mm_phys.Slab.free t.cache v.slab_handle

let slab_bytes t = Mm_phys.Slab.bytes_reserved t.cache

(* -- Tree operations (cost charging lives in Maple) -- *)

let find t addr = Maple.find t.tree addr
let insert_node t vma = Maple.insert t.tree vma
let remove_node t start = ignore (Maple.remove t.tree start)
let overlapping t ~lo ~hi = Maple.overlapping t.tree ~lo ~hi
let iter t f = Maple.iter t.tree f
let count t = Maple.count t.tree
let tree_height t = Maple.height t.tree

(* Does [lo, hi) overlap any VMA? *)
let overlaps t ~lo ~hi = overlapping t ~lo ~hi <> []

(* -- Higher-level mutations (caller holds mmap_lock for writing) -- *)

let insert t ~start ~end_ ~perm =
  let vma = alloc_vma t ~start ~end_ ~perm in
  insert_node t vma;
  vma

(* Insert with merging: if an adjacent anonymous VMA with equal
   permissions abuts the new range, extend it instead of allocating — the
   vma_merge path that makes Linux's mmap of consecutive regions cheap
   (the paper's mmap microbenchmark hits it constantly). *)
let insert_or_merge t ~start ~end_ ~perm =
  let prev = find t (start - 1) in
  match prev with
  | Some v when v.v_end = start && Mm_hal.Perm.equal v.perm perm ->
    charge Mm_sim.Cost.vma_tree_update;
    v.v_end <- end_;
    v
  | _ -> (
    let next = find t end_ in
    match next with
    | Some v when v.v_start = end_ && Mm_hal.Perm.equal v.perm perm ->
      (* Extending downward re-keys the node: remove + reinsert. *)
      charge Mm_sim.Cost.vma_tree_update;
      remove_node t v.v_start;
      v.v_start <- start;
      insert_node t v;
      v
    | _ -> insert t ~start ~end_ ~perm)

(* Remove [lo, hi) from the tree, splitting partially covered VMAs — the
   costly node-splitting the paper blames for Linux's unmap-virt result. *)
let remove_range t ~lo ~hi =
  let victims = overlapping t ~lo ~hi in
  List.iter
    (fun v ->
      remove_node t v.v_start;
      let left_rest = v.v_start < lo in
      let right_rest = v.v_end > hi in
      if left_rest then begin
        let lv = alloc_vma t ~start:v.v_start ~end_:lo ~perm:v.perm in
        insert_node t lv
      end;
      if right_rest then begin
        let rv = alloc_vma t ~start:hi ~end_:v.v_end ~perm:v.perm in
        insert_node t rv
      end;
      release_vma t v)
    victims;
  victims

(* Narrow every VMA overlapping [lo, hi) to exactly that range with the
   given permissions (mprotect semantics). *)
let split_for_protect t ~lo ~hi ~perm =
  let victims = overlapping t ~lo ~hi in
  List.iter
    (fun v ->
      let s = max v.v_start lo and e = min v.v_end hi in
      remove_node t v.v_start;
      if v.v_start < s then
        insert_node t (alloc_vma t ~start:v.v_start ~end_:s ~perm:v.perm);
      if v.v_end > e then
        insert_node t (alloc_vma t ~start:e ~end_:v.v_end ~perm:v.perm);
      insert_node t (alloc_vma t ~start:s ~end_:e ~perm);
      release_vma t v)
    victims
