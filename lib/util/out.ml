(* Capture-aware stdout.

   Parallel drivers run experiment tasks on worker domains but must keep
   the printed stream byte-identical to a sequential run. File
   descriptors are process-wide, so redirection cannot be per-domain —
   instead every experiment prints through this module, and a driver
   wraps each task in [capture], which swaps the domain-local sink for a
   buffer. The calling domain then replays the buffers in submission
   order. With no capture active, everything goes straight to stdout,
   so sequential drivers (and [-j 1]) behave exactly as before. *)

let sink_key : Buffer.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sink () = Domain.DLS.get sink_key

let print_string s =
  match !(sink ()) with
  | None -> Stdlib.print_string s
  | Some b -> Buffer.add_string b s

let print_char c =
  match !(sink ()) with
  | None -> Stdlib.print_char c
  | Some b -> Buffer.add_char b c

let print_newline () = print_char '\n'

let print_endline s =
  print_string s;
  print_char '\n'

let printf fmt = Printf.ksprintf print_string fmt

let capturing () = !(sink ()) <> None

(* Run [f] with output diverted to a fresh buffer; restore the previous
   sink afterwards (captures nest). If [f] raises, the partial output is
   discarded with it — exactly what a crashed sequential run would leave
   unflushed mid-stream. *)
let capture f =
  let r = sink () in
  let saved = !r in
  let b = Buffer.create 1024 in
  r := Some b;
  let v = Fun.protect ~finally:(fun () -> r := saved) f in
  (v, Buffer.contents b)
