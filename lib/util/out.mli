(** Capture-aware stdout.

    Experiments print through this module instead of [Stdlib]/[Printf]
    so a parallel driver can divert each task's output into a
    domain-local buffer ([capture]) and replay the buffers in submission
    order — keeping the merged stream byte-identical to a sequential
    run. With no capture active, output goes straight to stdout. *)

val print_string : string -> unit
val print_char : char -> unit
val print_newline : unit -> unit
val print_endline : string -> unit
val printf : ('a, unit, string, unit) format4 -> 'a

val capturing : unit -> bool
(** Is a capture active on this domain? *)

val capture : (unit -> 'a) -> 'a * string
(** [capture f] runs [f] with this domain's output diverted to a fresh
    buffer and returns [f]'s result together with everything it printed.
    The previous sink is restored on exit; captures nest. If [f] raises,
    the partial output is discarded with the exception. *)
