(* Plain-text table rendering for the benchmark harness output.

   The harness prints every reproduced paper table/figure as an aligned
   text table; this module does the column sizing. *)

type align = Left | Right

let render ?(align_default = Right) ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Tablefmt.render: aligns length mismatch"
    | None ->
      Array.init ncols (fun i -> if i = 0 then Left else align_default)
  in
  let all = header :: rows in
  List.iter
    (fun r ->
      if List.length r <> ncols then
        invalid_arg "Tablefmt.render: row length mismatch")
    rows;
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match aligns.(i) with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align_default ?aligns ~header rows =
  Out.print_string (render ?align_default ?aligns ~header rows)

(* Number formatting helpers for table cells. *)

let fmt_float ?(digits = 2) x =
  if Float.is_nan x then "n/a" else Printf.sprintf "%.*f" digits x

let fmt_si x =
  (* 12_345_678.0 -> "12.35M" — compact throughput cells. *)
  if Float.is_nan x then "n/a"
  else
    let ax = Float.abs x in
    if ax >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
    else if ax >= 1e6 then Printf.sprintf "%.2fM" (x /. 1e6)
    else if ax >= 1e3 then Printf.sprintf "%.2fk" (x /. 1e3)
    else Printf.sprintf "%.1f" x

let fmt_bytes x =
  if x >= 1 lsl 30 then
    Printf.sprintf "%.2f GiB" (float_of_int x /. float_of_int (1 lsl 30))
  else if x >= 1 lsl 20 then
    Printf.sprintf "%.2f MiB" (float_of_int x /. float_of_int (1 lsl 20))
  else if x >= 1 lsl 10 then
    Printf.sprintf "%.2f KiB" (float_of_int x /. float_of_int (1 lsl 10))
  else Printf.sprintf "%d B" x

let fmt_speedup x =
  if Float.is_nan x then "n/a"
  else if x >= 100.0 then Printf.sprintf "%.0fx" x
  else Printf.sprintf "%.2fx" x
