(* The experiment registry: every table and figure of the paper's
   evaluation, by id, with the driver that regenerates it. *)

type entry = {
  id : string;
  title : string;
  run : unit -> unit;
}

let all =
  [
    { id = "fig1"; title = "motivation: multicore mmap-PF and munmap"; run = Fig_micro.fig1 };
    { id = "tab2"; title = "feature matrix"; run = Fig_misc.tab2 };
    { id = "fig13"; title = "single-thread microbenchmarks"; run = (fun () -> Fig_micro.fig13 ()) };
    { id = "fig14"; title = "multithread microbenchmark sweeps"; run = (fun () -> Fig_micro.fig14 ()) };
    { id = "fig15"; title = "single-thread real-world apps"; run = Fig_apps.fig15 };
    { id = "fig16"; title = "JVM thread creation + metis (with ablations)"; run = (fun () -> Fig_apps.fig16_jvm (); Fig_apps.fig16_metis ()) };
    { id = "fig17"; title = "dedup + psearchy under ptmalloc/tcmalloc"; run = Fig_apps.fig17 };
    { id = "fig18"; title = "allocator memory usage"; run = Fig_apps.fig18 };
    { id = "fig19"; title = "RISC-V port microbenchmarks"; run = Fig_micro.fig19 };
    { id = "fig20"; title = "LMbench fork / fork+exec / shell"; run = Fig_misc.fig20 };
    { id = "fig21"; title = "8-thread other-PARSEC"; run = Fig_apps.fig21 };
    { id = "fig22"; title = "memory overhead"; run = Fig_misc.fig22 };
    { id = "tab4"; title = "verification effort / checker statistics"; run = Fig_misc.tab4 };
    { id = "tab5"; title = "portability LoC"; run = Fig_misc.tab5 };
    (* Extensions beyond the paper's evaluation (its §4.5 future work). *)
    { id = "ext-numa"; title = "extension: NUMA policies in the metadata"; run = Fig_ext.ext_numa };
    { id = "ext-thp"; title = "extension: transparent huge pages"; run = Fig_ext.ext_thp };
    { id = "ext-swapd"; title = "extension: second-chance swap daemon"; run = Fig_ext.ext_swapd };
    { id = "ext-trace"; title = "extension: trace replay across systems"; run = Fig_ext.ext_trace };
  ]

let ids = List.map (fun e -> e.id) all

(* Same shape as [System.Registry.find]: the error is a ready-to-print
   message embedding the valid ids. *)
let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown experiment id %S (valid: %s)" id
         (String.concat ", " ids))

let run_all () =
  List.iter
    (fun e ->
      Printf.printf "=== %s: %s ===\n\n%!" e.id e.title;
      e.run ();
      print_newline ())
    all
