(* The experiment registry: every table and figure of the paper's
   evaluation, by id, with the driver that regenerates it.

   Entries come in two forms. Cell-based entries ([Cells]) declare their
   independent simulation cells plus a pure render ({!Plan}), which lets
   the driver parallelize *inside* the entry; entries whose measurements
   do not decompose into single-world cells (source-derived tables,
   multi-probe worlds like fig18/fig22) keep the legacy opaque [Run]
   form and parallelize at whole-entry granularity only. *)

type body =
  | Run of (unit -> unit)  (* legacy: one opaque print-as-you-go task *)
  | Cells of (unit -> Plan.t)  (* plan built at run time, cells + render *)

type entry = {
  id : string;
  title : string;
  body : body;
}

let all =
  [
    { id = "fig1"; title = "motivation: multicore mmap-PF and munmap"; body = Cells (fun () -> Fig_micro.fig1_plan ()) };
    { id = "tab2"; title = "feature matrix"; body = Run Fig_misc.tab2 };
    { id = "fig13"; title = "single-thread microbenchmarks"; body = Cells (fun () -> Fig_micro.fig13_plan ()) };
    { id = "fig14"; title = "multithread microbenchmark sweeps"; body = Cells (fun () -> Fig_micro.fig14_plan ()) };
    { id = "fig15"; title = "single-thread real-world apps"; body = Cells (fun () -> Fig_apps.fig15_plan ()) };
    { id = "fig16"; title = "JVM thread creation + metis (with ablations)"; body = Cells (fun () -> Fig_apps.fig16_plan ()) };
    { id = "fig17"; title = "dedup + psearchy under ptmalloc/tcmalloc"; body = Cells (fun () -> Fig_apps.fig17_plan ()) };
    { id = "fig18"; title = "allocator memory usage"; body = Run Fig_apps.fig18 };
    { id = "fig19"; title = "RISC-V port microbenchmarks"; body = Cells (fun () -> Fig_micro.fig19_plan ()) };
    { id = "fig20"; title = "LMbench fork / fork+exec / shell"; body = Cells (fun () -> Fig_misc.fig20_plan ()) };
    { id = "fig21"; title = "8-thread other-PARSEC"; body = Cells (fun () -> Fig_apps.fig21_plan ()) };
    { id = "fig22"; title = "memory overhead"; body = Run Fig_misc.fig22 };
    { id = "tab4"; title = "verification effort / checker statistics"; body = Run Fig_misc.tab4 };
    { id = "tab5"; title = "portability LoC"; body = Run Fig_misc.tab5 };
    (* Extensions beyond the paper's evaluation (its §4.5 future work). *)
    { id = "ext-numa"; title = "extension: NUMA policies in the metadata"; body = Cells (fun () -> Fig_ext.ext_numa_plan ()) };
    { id = "ext-thp"; title = "extension: transparent huge pages"; body = Run Fig_ext.ext_thp };
    { id = "ext-swapd"; title = "extension: second-chance swap daemon"; body = Run Fig_ext.ext_swapd };
    { id = "ext-trace"; title = "extension: trace replay across systems"; body = Cells (fun () -> Fig_ext.ext_trace_plan ()) };
    { id = "ext-fleet"; title = "extension: fork_fleet process-fleet serving"; body = Cells (fun () -> Fig_ext.ext_fleet_plan ()) };
    { id = "ext-reclaim"; title = "extension: fault tails under page-out pressure"; body = Cells (fun () -> Fig_ext.ext_reclaim_plan ()) };
  ]

let ids = List.map (fun e -> e.id) all

(* Run one entry sequentially on the calling domain (no header, no
   world-state resets — byte-identical to the pre-split monolithic
   [run]). The parallel path lives in [Driver.run_entries]. *)
let run_entry e =
  match e.body with
  | Run f -> f ()
  | Cells mk -> Plan.run_seq (mk ())

(* Same shape as [System.Registry.find]: the error is a ready-to-print
   message embedding the valid ids. *)
let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown experiment id %S (valid: %s)" id
         (String.concat ", " ids))
