(* The domain-parallel experiment driver (bench's engine room).

   Each registry entry becomes one pool task: reset the domain-local
   world state, capture everything the experiment prints (header
   included), and collect its labeled results. The pool executes tasks
   on [min jobs cores] domains and the calling domain replays each
   task's captured output in submission order, so the merged stream —
   and the results list feeding [bench --json] — is byte-identical to a
   sequential run. Per-task wall-clock comes from the pool ([Par.timed])
   and feeds the BENCH_wallclock.json report. *)

module Runner = Mm_workloads.Runner
module Out = Mm_util.Out
module Par = Mm_par.Par

type task_result = {
  t_id : string;
  t_title : string;
  t_output : string; (* captured stdout: header, experiment, blank line *)
  t_results : (string * Runner.result) list; (* labeled (bench --json) *)
  t_seconds : float; (* wall-clock on its worker domain *)
}

(* The simulator's state is mostly medium-lived (one world per
   experiment config), which the default GC pacing promotes and then
   re-marks aggressively. A larger minor heap and lazier major slices
   cut total GC work by roughly a fifth of the run time; simulated
   outputs are unaffected (the simulation is deterministic and the GC
   never observes virtual time). Applied to every worker domain; bench
   applies it to the main domain at startup. *)
let gc_pacing () =
  Gc.set { (Gc.get ()) with minor_heap_size = 1 lsl 20; space_overhead = 300 }

let run_entry ~collect (e : Registry.entry) =
  Runner.reset_world_state ();
  if collect then Runner.start_collecting ();
  Runner.set_label e.id;
  let results, output =
    Out.capture (fun () ->
        Out.printf "=== %s: %s ===\n\n" e.id e.title;
        e.run ();
        Out.print_newline ();
        if collect then Runner.stop_collecting () else [])
  in
  {
    t_id = e.id;
    t_title = e.title;
    t_output = output;
    t_results = results;
    t_seconds = 0.0;
  }

let with_seconds (t : task_result Par.timed) =
  { t.Par.value with t_seconds = t.Par.seconds }

let run_entries ?emit ?(collect = false) ~jobs entries =
  let tasks = List.map (fun e () -> run_entry ~collect e) entries in
  let emit = Option.map (fun f t -> f (with_seconds t)) emit in
  List.map with_seconds (Par.run_timed ?emit ~worker_init:gc_pacing ~jobs tasks)
