(* The domain-parallel experiment driver (bench's engine room).

   PR 7 parallelized *around* the entries (one pool task per registry
   entry), which left the critical path at the slowest single entry —
   fig14 alone was ~78% of the whole suite. This driver parallelizes
   *inside* them: every cell of every selected cell-based entry
   ({!Plan}) becomes its own pool task, flattened across entries into
   ONE [Par] pool, with a weight-ordered scheduling hint so the heavy
   64-core cells start first. Legacy entries ride the same pool as a
   single opaque task each.

   Determinism argument, in three parts:
   - Each cell task starts with [Runner.reset_world_state], runs its one
     world on whatever domain claimed it, and returns its
     [Runner.result]s — a pure function of the cell.
   - The pool merges (and streams) task results strictly in submission
     order, whatever the claim order was.
   - Rendering happens on the *calling* domain, per entry, in submission
     order, with the cells' results re-assembled in declaration order —
     so the printed stream, the collected results feeding [bench
     --json], and the per-entry aggregates are byte-identical to a
     sequential run for any job count. *)

module Runner = Mm_workloads.Runner
module Out = Mm_util.Out
module Par = Mm_par.Par

type cell_time = {
  ct_label : string;
  ct_seconds : float; (* wall-clock of this cell on its worker domain *)
}

type task_result = {
  t_id : string;
  t_title : string;
  t_output : string; (* captured stdout: header, experiment, blank line *)
  t_results : (string * Runner.result) list; (* labeled (bench --json) *)
  t_seconds : float; (* sum of the entry's cell seconds *)
  t_cells : cell_time list; (* per-cell wall-clock, declaration order *)
}

(* The simulator's state is mostly medium-lived (one world per
   experiment config), which the default GC pacing promotes and then
   re-marks aggressively. A larger minor heap and lazier major slices
   cut total GC work by roughly a fifth of the run time; simulated
   outputs are unaffected (the simulation is deterministic and the GC
   never observes virtual time). Applied to every worker domain; bench
   applies it to the main domain at startup. *)
let gc_pacing () =
  Gc.set { (Gc.get ()) with minor_heap_size = 1 lsl 20; space_overhead = 300 }

(* What one pool task returns: a legacy entry's full capture, or one
   cell's measurement (plus whatever it printed — cells are expected to
   be print-free; anything they do print is hoisted to just after the
   entry header, identically at every job count). *)
type piece =
  | P_legacy of { output : string; results : (string * Runner.result) list }
  | P_cell of {
      value : Runner.result option;
      output : string;
      results : (string * Runner.result) list;
    }

let run_legacy ~collect (e : Registry.entry) f () =
  Runner.reset_world_state ();
  if collect then Runner.start_collecting ();
  Runner.set_label e.id;
  let results, output =
    Out.capture (fun () ->
        Out.printf "=== %s: %s ===\n\n" e.id e.title;
        f ();
        Out.print_newline ();
        if collect then Runner.stop_collecting () else [])
  in
  P_legacy { output; results }

let run_cell ~collect (e : Registry.entry) (c : Plan.cell) () =
  Runner.reset_world_state ();
  if collect then Runner.start_collecting ();
  Runner.set_label e.id;
  let (value, results), output =
    Out.capture (fun () ->
        let v = c.Plan.c_run () in
        (v, if collect then Runner.stop_collecting () else []))
  in
  P_cell { value; output; results }

(* One selected entry, resolved: its flattened pool tasks plus what the
   calling domain needs to reassemble it. *)
type prepared = {
  p_entry : Registry.entry;
  p_plan : Plan.t option; (* None = legacy *)
  p_tasks : (float * (unit -> piece)) list; (* (weight, task) *)
}

let prepare ~collect (e : Registry.entry) =
  match e.Registry.body with
  | Registry.Run f ->
    (* A legacy entry is one opaque task. Weight 100 ≈ a mid-sized cell:
       start legacy entries neither first nor last (the hint only moves
       wall-clock, never bytes). *)
    { p_entry = e; p_plan = None; p_tasks = [ (100.0, run_legacy ~collect e f) ] }
  | Registry.Cells mk ->
    let plan = mk () in
    {
      p_entry = e;
      p_plan = Some plan;
      p_tasks =
        List.map
          (fun (c : Plan.cell) -> (c.Plan.c_weight, run_cell ~collect e c))
          plan.Plan.cells;
    }

(* Reassemble an entry from its pieces (in declaration order): replay
   the header, any stray cell output, and the plan's render under
   [Out.capture] on the calling domain. *)
let assemble (p : prepared) (pieces : piece Par.timed list) =
  let e = p.p_entry in
  match (p.p_plan, pieces) with
  | None, [ { Par.value = P_legacy { output; results }; seconds } ] ->
    {
      t_id = e.id;
      t_title = e.title;
      t_output = output;
      t_results = results;
      t_seconds = seconds;
      t_cells = [ { ct_label = e.id; ct_seconds = seconds } ];
    }
  | Some plan, pieces ->
    let cells =
      List.map2
        (fun (c : Plan.cell) (t : piece Par.timed) ->
          match t.Par.value with
          | P_cell { value; output; results } ->
            (c, value, output, results, t.Par.seconds)
          | P_legacy _ -> assert false)
        plan.Plan.cells pieces
    in
    let (), output =
      Out.capture (fun () ->
          Out.printf "=== %s: %s ===\n\n" e.id e.title;
          List.iter (fun (_, _, out, _, _) -> Out.print_string out) cells;
          plan.Plan.render (List.map (fun (c, v, _, _, _) -> (c, v)) cells);
          Out.print_newline ())
    in
    {
      t_id = e.id;
      t_title = e.title;
      t_output = output;
      t_results = List.concat_map (fun (_, _, _, rs, _) -> rs) cells;
      t_seconds = List.fold_left (fun a (_, _, _, _, s) -> a +. s) 0.0 cells;
      t_cells =
        List.map
          (fun ((c : Plan.cell), _, _, _, s) ->
            { ct_label = c.Plan.c_label; ct_seconds = s })
          cells;
    }
  | None, _ -> assert false

(* Heaviest-first claim order over the flattened tasks (stable: equal
   weights keep submission order). Purely a wall-clock hint — the pool
   merges in submission order regardless. *)
let weight_order weights =
  let a = Array.of_list (List.mapi (fun i w -> (i, w)) weights) in
  Array.sort
    (fun (i, wa) (j, wb) ->
      match compare wb wa with 0 -> compare i j | c -> c)
    a;
  Array.map fst a

let run_entries ?emit ?(collect = false) ~jobs entries =
  let prepared = List.map (prepare ~collect) entries in
  let flat = List.concat_map (fun p -> p.p_tasks) prepared in
  let order = weight_order (List.map fst flat) in
  (* Stream: pieces arrive in submission order; cut them back into
     per-entry groups, render each completed entry on this (calling)
     domain, and hand it to [emit] — entries complete in submission
     order, so stdout stays byte-identical to sequential. *)
  let pending = Queue.create () in
  List.iter (fun p -> Queue.add (p, List.length p.p_tasks) pending) prepared;
  let buf = ref [] and out = ref [] in
  let finish p pieces =
    let task = assemble p pieces in
    out := task :: !out;
    Option.iter (fun f -> f task) emit
  in
  (* An entry with no cells has no pieces to wait for: assemble it the
     moment it reaches the head of the queue. *)
  let rec drain_empty () =
    match Queue.peek_opt pending with
    | Some (p, 0) ->
      ignore (Queue.pop pending);
      finish p [];
      drain_empty ()
    | _ -> ()
  in
  drain_empty ();
  let on_piece (t : piece Par.timed) =
    buf := t :: !buf;
    let p, want = Queue.peek pending in
    if List.length !buf = want then begin
      ignore (Queue.pop pending);
      finish p (List.rev !buf);
      buf := [];
      drain_empty ()
    end
  in
  ignore
    (Par.run_timed ~emit:on_piece ~worker_init:gc_pacing ~order ~jobs
       (List.map snd flat));
  List.rev !out

(* Print a completed entry's stream — the shared [emit] of bench and
   mmrepro. *)
let emit_stdout (t : task_result) =
  print_string t.t_output;
  flush stdout

(* The sequential run-everything path (mmrepro `run` with no ids); the
   single place that owns the `=== id: title ===` header via
   [run_entries]. *)
let run_all () = ignore (run_entries ~emit:emit_stdout ~jobs:1 Registry.all)
