(* Extension experiments — beyond the paper's evaluation, exercising the
   features the paper lists as future work or engineering extensions:
   NUMA policies (§4.5), transparent huge pages, and the swap daemon. *)

module Tablefmt = Mm_util.Tablefmt

(* Printed output goes through the capture-aware sink so parallel
   drivers can replay each experiment's stream in submission order. *)
module Printf = struct
  include Stdlib.Printf

  let printf fmt = Mm_util.Out.printf fmt
end

let print_newline = Mm_util.Out.print_newline
let _ = print_newline

module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm
open Cortenmm

let page = 4096
let mib n = n * 1024 * 1024
let ok = function Ok v -> v | Error e -> raise (Mm_hal.Errno.Error e)

(* -- ext-numa: fault cost under each policy on a 2-node machine
      (cell-based: one world per policy) -- *)

let ext_numa_policies =
  [
    ("default (local)", Numa.Default);
    ("bind local node", Numa.Bind 0);
    ("bind remote node", Numa.Bind 1);
    ("interleave 0,1", Numa.Interleave [ 0; 1 ]);
  ]

let ext_numa_run ~policy =
  let kernel = Kernel.create ~numa_nodes:2 ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  let out = ref 0 in
  let w = Engine.create ~ncpus:2 in
  Engine.spawn w ~cpu:0 (fun () ->
      let len = 256 * page in
      let addr = ok (Mm.mmap_r asp ~policy ~len ~perm:Perm.rw ()) in
      let t0 = Engine.now () in
      Mm.touch_range asp ~addr ~len ~write:true;
      out := (Engine.now () - t0) / 256);
  Engine.run w;
  !out

let ext_numa_plan () =
  let cells =
    List.map
      (fun (name, policy) ->
        Plan.cell ~label:name ~weight:1.0 (fun () ->
            Plan.of_cycles (ext_numa_run ~policy)))
      ext_numa_policies
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## ext-numa — anonymous fault cost per NUMA policy (2 nodes)\n\
       The policy lives in the per-PTE metadata (the paper's §4.5 plan);\n\
       faults allocate per policy, remote allocations pay the interconnect.\n\n";
    Tablefmt.print
      ~header:[ "policy"; "cycles/fault" ]
      (List.map
         (fun (name, _policy) -> [ name; string_of_int (Plan.cycles (take ())) ])
         ext_numa_policies);
    Printf.printf
      "\nExpected: local == bind-local < interleave < bind-remote.\n\n"
  in
  { Plan.cells; render }

(* -- ext-thp: huge-page promotion effect on TLB reach -- *)

let ext_thp () =
  Printf.printf
    "## ext-thp — transparent huge pages: PT pages and re-walk cost\n\
     khugepaged collapses fully-populated 2 MiB regions into huge leaves:\n\
     fewer PT pages and a one-entry TLB footprint per region.\n\n";
  let run ~thp =
    let kernel = Kernel.create ~ncpus:1 () in
    let cfg = if thp then Config.with_thp Config.adv else Config.adv in
    let asp = Addr_space.create kernel cfg in
    let pt_pages = ref 0 and rewalk = ref 0 in
    let w = Engine.create ~ncpus:1 in
    Engine.spawn w ~cpu:0 (fun () ->
        let len = mib 16 in
        let addr = ok (Mm.mmap_r asp ~addr:(mib 512) ~len ~perm:Perm.rw ()) in
        Mm.touch_range asp ~addr ~len ~write:true;
        pt_pages := Mm_pt.Pt.pt_page_count (Addr_space.pt asp);
        (* Flush the TLB, then re-walk every 64th page. *)
        Mm.timer_tick asp;
        let tlb = Addr_space.tlb asp in
        Mm_tlb.Tlb.flush_local tlb ~cpu:0
          ~vpns:(List.init 64 (fun i -> (addr / page) + (i * 64)));
        let t0 = Engine.now () in
        let rec go i =
          if i < 64 then begin
            Mm.touch asp ~vaddr:(addr + (i * 64 * page)) ~write:false;
            go (i + 1)
          end
        in
        go 0;
        rewalk := (Engine.now () - t0) / 64);
    Engine.run w;
    (!pt_pages, !rewalk)
  in
  let base_pt, base_walk = run ~thp:false in
  let thp_pt, thp_walk = run ~thp:true in
  Tablefmt.print
    ~header:[ "config"; "PT pages (16 MiB)"; "cycles/re-walk" ]
    [
      [ "4 KiB pages"; string_of_int base_pt; string_of_int base_walk ];
      [ "THP"; string_of_int thp_pt; string_of_int thp_walk ];
    ];
  Printf.printf
    "\nExpected: THP removes the level-1 PT pages (8 of them for 16 MiB)\n\
     and shortens the walk by one level.\n\n"

(* -- ext-swapd: second-chance reclaim under memory pressure -- *)

let ext_swapd () =
  Printf.printf
    "## ext-swapd — swap daemon: hot pages survive, cold pages go to disk\n\n";
  let kernel = Kernel.create ~ncpus:1 () in
  let asp = Addr_space.create kernel Config.adv in
  let dev = Blockdev.create ~name:"nvme0swap" () in
  let stats = Swapd.fresh_stats () in
  let survived_hot = ref 0 and resident_total = ref 0 in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () ->
      let len = 256 * page in
      let addr = ok (Mm.mmap_r asp ~len ~perm:Perm.rw ()) in
      Mm.touch_range asp ~addr ~len ~write:true;
      (* Age everything once, then keep 32 pages hot. *)
      ignore (Swapd.run_once ~stats asp ~dev ~target:0);
      Mm.timer_tick asp;
      for i = 0 to 31 do
        Mm.touch asp ~vaddr:(addr + (i * 8 * page)) ~write:false
      done;
      ignore (Swapd.run_once ~stats asp ~dev ~target:200);
      for i = 0 to 31 do
        Addr_space.with_lock asp ~lo:(addr + (i * 8 * page))
          ~hi:(addr + (i * 8 * page) + page) (fun c ->
            match Addr_space.query c (addr + (i * 8 * page)) with
            | Status.Mapped _ -> incr survived_hot
            | _ -> ())
      done;
      resident_total := 256 - Blockdev.used_blocks dev);
  Engine.run w;
  Tablefmt.print
    ~header:[ "metric"; "value" ]
    [
      [ "pages scanned"; string_of_int stats.Swapd.scanned ];
      [ "second chances"; string_of_int stats.Swapd.second_chances ];
      [ "pages swapped"; string_of_int stats.Swapd.swapped ];
      [ "hot pages surviving"; Printf.sprintf "%d / 32" !survived_hot ];
      [ "pages still resident"; string_of_int !resident_total ];
    ];
  Printf.printf "\nExpected: all 32 hot pages survive the reclaim pass.\n\n"


(* -- ext-reclaim: fault tail latency under page-out pressure, rw vs adv
      (cell-based: one world per (protocol, pressure)) -- *)

let ext_reclaim_cpus = 4
let ext_reclaim_pages = 96 (* per-CPU working set, pages *)
let ext_reclaim_rounds = 4

(* Every CPU seeds a private working set with data tokens, then re-reads
   it for [rounds] rounds. With [pressure] on, CPU 0 opens each round
   with a forced page-out daemon pass over half the fleet's resident
   pages: the evictions turn later reads into swap-in refaults, which is
   exactly the latency the tail percentiles surface. Token equality on
   every read doubles as the value-model check that reclaim round-trips
   user data. *)
let ext_reclaim_run ~cfg ~pressure =
  let kernel = Kernel.create ~ncpus:ext_reclaim_cpus () in
  let asp = Addr_space.create kernel cfg in
  let dev = Blockdev.create ~name:"nvme0swap" () in
  let daemon = Pageoutd.create kernel ~dev () in
  Pageoutd.register_space daemon asp;
  let h = Mm_obs.Metrics.unregistered "ext-reclaim.fault" in
  let w = Engine.create ~ncpus:ext_reclaim_cpus in
  for cpu = 0 to ext_reclaim_cpus - 1 do
    Engine.spawn w ~cpu (fun () ->
        let len = ext_reclaim_pages * page in
        let addr = ok (Mm.mmap_r asp ~len ~perm:Perm.rw ()) in
        for p = 0 to ext_reclaim_pages - 1 do
          Mm.write_value asp ~vaddr:(addr + (p * page))
            ~value:((cpu * 1000) + p + 1)
        done;
        for _round = 1 to ext_reclaim_rounds do
          if pressure && cpu = 0 then
            ignore
              (Pageoutd.pressure daemon
                 ~target_pages:(ext_reclaim_cpus * ext_reclaim_pages / 2));
          Mm.timer_tick asp;
          for p = 0 to ext_reclaim_pages - 1 do
            let t0 = Engine.now () in
            let v = Mm.read_value asp ~vaddr:(addr + (p * page)) in
            Mm_obs.Metrics.observe h (Engine.now () - t0);
            if v <> (cpu * 1000) + p + 1 then
              failwith "ext-reclaim: data token lost across page-out"
          done
        done)
  done;
  Engine.run w;
  (* Pack the fault percentiles into a plain record (the [of_cycles]
     convention): p50 in [ops], p99 in [cycles], p999 in [ops_per_sec]. *)
  Some
    {
      Mm_workloads.Runner.ops = Mm_obs.Metrics.quantile h 0.5;
      cycles = Mm_obs.Metrics.quantile h 0.99;
      ops_per_sec = float_of_int (Mm_obs.Metrics.quantile h 0.999);
    }

let ext_reclaim_cells =
  [
    ("rw", Config.rw, false);
    ("rw", Config.rw, true);
    ("adv", Config.adv, false);
    ("adv", Config.adv, true);
  ]

let ext_reclaim_plan () =
  let cells =
    List.map
      (fun (name, cfg, pressure) ->
        Plan.cell
          ~label:
            (Printf.sprintf "reclaim/%s/%s" name
               (if pressure then "storm" else "idle"))
          ~weight:4.0
          (fun () -> ext_reclaim_run ~cfg ~pressure))
      ext_reclaim_cells
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## ext-reclaim — fault tail latency under page-out pressure\n\
       %d CPUs re-read private %d-page working sets for %d rounds; under\n\
       \"storm\" the page-out daemon force-reclaims half the fleet's\n\
       resident pages between rounds, turning reads into swap-in\n\
       refaults. Per-read latency percentiles, in cycles; every read\n\
       checks its data token, so the table doubles as a reclaim\n\
       round-trip proof.\n\n"
      ext_reclaim_cpus ext_reclaim_pages ext_reclaim_rounds;
    Tablefmt.print
      ~header:[ "protocol"; "pressure"; "read p50"; "read p99"; "read p999" ]
      (List.map
         (fun (name, _cfg, pressure) ->
           match take () with
           | Some r ->
             [
               name;
               (if pressure then "storm" else "idle");
               string_of_int r.Mm_workloads.Runner.ops;
               string_of_int r.Mm_workloads.Runner.cycles;
               string_of_int (int_of_float r.Mm_workloads.Runner.ops_per_sec);
             ]
           | None -> [ name; (if pressure then "storm" else "idle"); "n/a"; "n/a"; "n/a" ])
         ext_reclaim_cells);
    Printf.printf
      "\nExpected: idle rows stay at TLB-hit cost on both protocols; the\n\
       storm rows move p99/p999 to swap-in cost, with adv's finer-grained\n\
       transactions keeping the concurrent-fault tail no worse than rw's.\n\n"
  in
  { Plan.cells; render }

(* -- ext-trace: workload-trace replay across every system (cell-based:
      one world per (profile, system); trace generation is seeded and
      deterministic, so each cell regenerates its own copy) -- *)

let ext_trace_systems =
  [
    Mm_workloads.System.Linux;
    Mm_workloads.System.Radixvm;
    Mm_workloads.System.Nros;
    Mm_workloads.System.Corten Config.rw;
    Mm_workloads.System.Corten Config.adv;
  ]

let ext_trace_profiles =
  [ Mm_workloads.Trace.Churn; Mm_workloads.Trace.Faults;
    Mm_workloads.Trace.Mixed ]

let ext_trace_plan () =
  let cells =
    List.concat_map
      (fun profile ->
        List.map
          (fun kind ->
            Plan.cell
              ~label:
                (Printf.sprintf "%s/%s"
                   (Mm_workloads.Trace.profile_name profile)
                   (Mm_workloads.System.kind_name kind))
              ~weight:8.0
              (fun () ->
                let t =
                  Mm_workloads.Trace.generate ~profile ~ncpus:8
                    ~ops_per_cpu:150 ~seed:42
                in
                let s = Mm_workloads.Trace.replay ~kind t in
                Some s.Mm_workloads.Trace.result))
          ext_trace_systems)
      ext_trace_profiles
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## ext-trace — synthetic MM traces replayed on every system\n\
       The same operation stream (8 CPUs, 150 ops/CPU, region ids portable\n\
       across VA allocators) replayed everywhere; ops/s of whole-trace\n\
       throughput. Generate/replay your own with `mmrepro trace`.\n\n";
    let header =
      "profile" :: List.map Mm_workloads.System.kind_name ext_trace_systems
    in
    let rows =
      List.map
        (fun profile ->
          Mm_workloads.Trace.profile_name profile
          :: List.map (fun _kind -> Plan.fmt_tp (take ())) ext_trace_systems)
        ext_trace_profiles
    in
    Tablefmt.print ~header rows;
    Printf.printf
      "\nExpected: CortenMM leads on churn (map/unmap-heavy) and mixed;\n\
       the gap narrows on the fault-only profile.\n\n"
  in
  { Plan.cells; render }

(* -- ext-fleet: the fork_fleet serving mix across every system ×
      shootdown policy (cell-based: one open-loop serving world per
      (system, policy); the mix is seeded, so each cell is
      self-contained) -- *)

let ext_fleet_sessions = 600
let ext_fleet_cpus = 4

let ext_fleet_policies =
  [
    ("immediate", Mm_tlb.Tlb.Immediate);
    ("batched", Mm_serve.Serve.batched_default);
  ]

let ext_fleet_plan () =
  let cells =
    List.concat_map
      (fun kind ->
        List.map
          (fun (policy_name, policy) ->
            Plan.cell
              ~label:
                (Printf.sprintf "fleet/%s/%s"
                   (Mm_workloads.System.kind_name kind)
                   policy_name)
              ~weight:10.0
              (fun () ->
                let r =
                  Mm_serve.Serve.run
                    ~backend:(Mm_workloads.System.backend_of_kind kind)
                    ~mix:Mm_serve.Mix.fork_fleet ~policy_name ~policy
                    ~ncpus:ext_fleet_cpus ~sessions:ext_fleet_sessions
                    ~seed:42 ()
                in
                (* Open-loop arrivals pin the throughput, so the signal
                   is session latency: pack p50/p99 into a plain record
                   (the [of_cycles] convention — never registered, so
                   [bench --json] is unaffected). *)
                Some
                  {
                    Mm_workloads.Runner.ops =
                      r.Mm_serve.Serve.r_session.Mm_serve.Serve.s_p50;
                    cycles = r.Mm_serve.Serve.r_session.Mm_serve.Serve.s_p99;
                    ops_per_sec = 0.0;
                  }))
          ext_fleet_policies)
      ext_trace_systems
  in
  let render celled =
    let take = Plan.taker celled in
    let p50 = function Some r -> r.Mm_workloads.Runner.ops | None -> 0 in
    Printf.printf
      "## ext-fleet — process-fleet serving: fork / COW-break / exit\n\
       The fork_fleet mix forks every session off a long-lived per-CPU\n\
       parent, COW-breaks the inherited hot pages, runs one private burst\n\
       and exits (%d sessions, %d CPUs, open-loop arrivals). Session\n\
       latency in cycles, arrival to completion, per TLB-shootdown\n\
       policy; full SLO tables: `mmrepro serve --mix fork_fleet`.\n\n"
      ext_fleet_sessions ext_fleet_cpus;
    Tablefmt.print
      ~header:
        ("system"
        :: List.concat_map
             (fun (n, _) -> [ n ^ " p50"; n ^ " p99" ])
             ext_fleet_policies)
      (List.map
         (fun kind ->
           Mm_workloads.System.kind_name kind
           :: List.concat_map
                (fun _ ->
                  let r = take () in
                  [ string_of_int (p50 r); string_of_int (Plan.cycles r) ])
                ext_fleet_policies)
         ext_trace_systems);
    Printf.printf
      "\nExpected: the address-space clone dominates every session, so\n\
       linux's VMA-list fork leads while CortenMM pays its paper-admitted\n\
       worst case (full-PT-walk enumeration, cf. LMbench fork §6.2);\n\
       batching trims only the systems that broadcast shootdown IPIs.\n\n"
  in
  { Plan.cells; render }
