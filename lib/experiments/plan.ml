(* The plan/render split for experiments.

   A cell-based experiment declares its independent simulation cells —
   each cell builds, runs and drops ONE single-fiber world and returns
   its measured [Runner.result option] — plus a pure [render] that
   formats the tables from the completed (cell, result) pairs. The
   driver can then flatten the cells of *every* selected entry into one
   domain pool and still render each entry on the calling domain in
   submission order, so the printed stream stays byte-identical to a
   sequential run while the critical path drops from "slowest entry" to
   "slowest cell" (fig14 alone is 350 cells).

   Cells must not print (all text belongs to [render]) and must not
   share state: the driver resets the domain-local world state before
   every cell, so a cell's behaviour — and its collected results — is a
   pure function of the cell itself. *)

module Runner = Mm_workloads.Runner
module Tablefmt = Mm_util.Tablefmt

type cell = {
  c_label : string;  (** per-cell wall-clock label, e.g. "high/PF/c64/linux" *)
  c_weight : float;
      (** relative cost hint (roughly cores × iterations); the driver
          starts heavy cells first *)
  c_run : unit -> Runner.result option;
      (** run the cell's world; [None] when the system does not support
          the bench (rendered as "n/a") *)
}

type t = {
  cells : cell list;
  render : (cell * Runner.result option) list -> unit;
      (** format the experiment's output from the completed cells, given
          in declaration order; pure apart from printing through
          {!Mm_util.Out} *)
}

let cell ~label ~weight run = { c_label = label; c_weight = weight; c_run = run }

(* Sequential execution of a plan — what the monolithic [run] used to
   do. Runs cells in declaration order on the calling domain, then
   renders; no world-state resets, so callers that manage collection
   themselves (tests) see the same behaviour as before the split. *)
let run_seq p = p.render (List.map (fun c -> (c, c.c_run ())) p.cells)

(* A render walks the completed results in declaration order with the
   same nested loops that declared the cells; [taker] hands them out one
   by one so the two traversals cannot drift apart silently. *)
let taker celled =
  let q = ref (List.map snd celled) in
  fun () ->
    match !q with
    | [] -> invalid_arg "Plan.taker: render consumed more results than cells"
    | x :: tl ->
      q := tl;
      x

(* -- Result formatting helpers, shared by fig_micro / fig_apps /
      fig_misc / fig_ext (one definition instead of per-file copies) -- *)

(* Throughput of an optional result; [nan] marks "not supported". *)
let tp = function
  | Some (r : Runner.result) -> r.ops_per_sec
  | None -> nan

let fmt_tp = function
  | Some (r : Runner.result) -> Tablefmt.fmt_si r.ops_per_sec
  | None -> "n/a"

(* "+12.3%" of [v] over [base]; "n/a" when either side is missing
   (guards the fig13/fig19 "adv vs linux" columns uniformly). *)
let pct_vs ~base v =
  if Float.is_nan base || Float.is_nan v then "n/a"
  else Printf.sprintf "%+.1f%%" ((v /. base -. 1.0) *. 100.0)

(* Cycle-valued measurements (JVM latency, LMbench, NUMA fault cost)
   ride the same cell result type: the count lives in [cycles] and is
   never registered with the result collector (a plain record literal,
   not {!Runner.result}), so [bench --json] output is unaffected. *)
let of_cycles n = Some { Runner.ops = 0; cycles = n; ops_per_sec = 0.0 }

let cycles = function
  | Some (r : Runner.result) -> r.cycles
  | None -> 0
