(* Microbenchmark experiments: Fig 1 (motivation), Fig 13 (single-thread),
   Fig 14 (multithread sweeps), Fig 19 (RISC-V). Each prints the same
   rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.

   All four are cell-based ({!Plan}): every (system, bench, contention,
   cores) combination is one independent single-fiber world declared as a
   cell, and the table formatting lives in a pure render — which is what
   lets `bench -j N` parallelize *inside* fig14's 350-world sweep instead
   of serializing behind it. *)

module Tablefmt = Mm_util.Tablefmt

(* Printed output goes through the capture-aware sink so parallel
   drivers can replay each experiment's stream in submission order. *)
module Printf = struct
  include Stdlib.Printf

  let printf fmt = Mm_util.Out.printf fmt
end

let print_newline = Mm_util.Out.print_newline
let _ = print_newline

module System = Mm_workloads.System
module Micro = Mm_workloads.Micro

let corten_adv = System.Corten Cortenmm.Config.adv
let corten_rw = System.Corten Cortenmm.Config.rw

let all_systems =
  [ System.Linux; System.Radixvm; System.Nros; corten_rw; corten_adv ]

let core_sweep = [ 1; 2; 4; 8; 16; 32; 64 ]

let iters_single = 200
let iters_multi = 50

let micro_cell ~isa ~kind ~ncpus ~bench ~contention ~iters =
  Plan.cell
    ~label:
      (Printf.sprintf "%s/%s/c%d/%s"
         (Micro.contention_name contention)
         (Micro.bench_name bench) ncpus (System.kind_name kind))
    ~weight:(float_of_int (ncpus * iters))
    (fun () -> Micro.run ~isa ~kind ~ncpus ~bench ~contention ~iters ())

(* -- Fig 13: single-threaded throughput of the five microbenchmarks -- *)

let fig13_plan ?(isa = Mm_hal.Isa.x86_64) () =
  let cells =
    List.concat_map
      (fun bench ->
        List.map
          (fun kind ->
            micro_cell ~isa ~kind ~ncpus:1 ~bench ~contention:Micro.Low
              ~iters:iters_single)
          all_systems)
      Micro.all_benches
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 13 — single-threaded microbenchmark throughput (%s)\n\
       ops/second of the Table 3 microbenchmarks, 1 core.\n\n"
      isa.Mm_hal.Isa.name;
    let results =
      List.map
        (fun bench ->
          (bench, List.map (fun kind -> (kind, take ())) all_systems))
        Micro.all_benches
    in
    let header =
      "bench" :: List.map (fun k -> System.kind_name k) all_systems
      @ [ "adv vs linux" ]
    in
    let rows =
      List.map
        (fun (bench, per_sys) ->
          let linux = Plan.tp (List.assoc System.Linux per_sys) in
          let adv = Plan.tp (List.assoc corten_adv per_sys) in
          Micro.bench_name bench
          :: List.map (fun k -> Plan.fmt_tp (List.assoc k per_sys)) all_systems
          @ [ Plan.pct_vs ~base:linux adv ])
        results
    in
    Tablefmt.print ~header rows;
    Printf.printf
      "\nPaper: adv beats Linux on mmap-PF/PF/unmap-virt/unmap by 7.8%%..46.8%%,\n\
       loses ~3%% on mmap (PT-page init vs VMA init); rw slightly below adv.\n\n"
  in
  { Plan.cells; render }

(* -- Fig 14: multithreaded sweeps, low and high contention -- *)

(* MM_FIG14_SUBSET (hidden; any value) shrinks the sweep to a seconds-long
   subset with the same shape — check.sh uses it to `cmp` the -j 2 stream
   against -j 1 without paying for the full 350-cell product. *)
let fig14_plan ?(isa = Mm_hal.Isa.x86_64) ?systems ?benches ?cores ?iters ()
    =
  let subset = Sys.getenv_opt "MM_FIG14_SUBSET" <> None in
  let dfl full sub = if subset then sub else full in
  let systems =
    Option.value systems ~default:(dfl all_systems [ System.Linux; corten_adv ])
  in
  let benches =
    Option.value benches ~default:(dfl Micro.all_benches [ Micro.Mmap_pf ])
  in
  let cores = Option.value cores ~default:(dfl core_sweep [ 1; 2; 4 ]) in
  let iters = Option.value iters ~default:(dfl iters_multi 10) in
  let contentions = [ Micro.Low; Micro.High ] in
  let cells =
    List.concat_map
      (fun contention ->
        List.concat_map
          (fun bench ->
            List.concat_map
              (fun ncpus ->
                List.map
                  (fun kind ->
                    micro_cell ~isa ~kind ~ncpus ~bench ~contention ~iters)
                  systems)
              cores)
          benches)
      contentions
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 14 — multithreaded microbenchmark throughput (%s)\n\
       ops/second over a core sweep; low contention = private regions,\n\
       high contention = random chunks of one shared region.\n\n"
      isa.Mm_hal.Isa.name;
    List.iter
      (fun contention ->
        List.iter
          (fun bench ->
            Printf.printf "### %s, %s contention\n" (Micro.bench_name bench)
              (Micro.contention_name contention);
            let header =
              "cores" :: List.map (fun k -> System.kind_name k) systems
            in
            let rows =
              List.map
                (fun ncpus ->
                  string_of_int ncpus
                  :: List.map (fun _kind -> Plan.fmt_tp (take ())) systems)
                cores
            in
            Tablefmt.print ~header rows;
            print_newline ())
          benches)
      contentions;
    Printf.printf
      "Paper: adv scales near-linearly on all low-contention benches (33x..2270x\n\
       over Linux at 384 cores); saturates past ~64 threads under high\n\
       contention but stays 3x..1489x over Linux; rw between Linux and adv;\n\
       RadixVM beats adv on high-contention PF; NrOS ~ Linux.\n\n"
  in
  { Plan.cells; render }

(* -- Fig 1: the motivation figure (subset of Fig 14) -- *)

let fig1_plan () =
  let isa = Mm_hal.Isa.x86_64 in
  let systems = [ System.Linux; System.Radixvm; corten_adv ] in
  let benches = [ Micro.Mmap_pf; Micro.Unmap ] in
  let cells =
    List.concat_map
      (fun bench ->
        List.concat_map
          (fun ncpus ->
            List.map
              (fun kind ->
                micro_cell ~isa ~kind ~ncpus ~bench ~contention:Micro.Low
                  ~iters:iters_multi)
              systems)
          core_sweep)
      benches
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 1 — motivation: multicore mmap-PF and munmap\n\
       (a) each thread mmaps a region and accesses it; (b) each thread\n\
       munmaps mapped pages. Private regions per thread.\n\n";
    List.iter
      (fun bench ->
        Printf.printf "### (%s)\n" (Micro.bench_name bench);
        let header = "cores" :: List.map System.kind_name systems in
        let rows =
          List.map
            (fun ncpus ->
              string_of_int ncpus
              :: List.map (fun _kind -> Plan.fmt_tp (take ())) systems)
            core_sweep
        in
        Tablefmt.print ~header rows;
        print_newline ())
      benches;
    Printf.printf
      "Paper: Linux flat (mmap_lock), RadixVM scales PF but trails on unmap,\n\
       CortenMM scales near-linearly on both.\n\n"
  in
  { Plan.cells; render }

(* -- Fig 19: RISC-V port -- *)

let fig19_plan () =
  let isa = Mm_hal.Isa.riscv_sv48 in
  let systems = [ System.Linux; corten_rw; corten_adv ] in
  let single_cells =
    List.concat_map
      (fun bench ->
        List.map
          (fun kind ->
            micro_cell ~isa ~kind ~ncpus:1 ~bench ~contention:Micro.Low
              ~iters:iters_single)
          systems)
      Micro.all_benches
  in
  let multi_cells =
    List.concat_map
      (fun bench ->
        List.map
          (fun kind ->
            micro_cell ~isa ~kind ~ncpus:32 ~bench ~contention:Micro.Low
              ~iters:iters_multi)
          systems)
      Micro.all_benches
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 19 — microbenchmarks under the RISC-V Sv48 PTE format\n\
       Same engine, different bit-level format via the HAL (Fig 9 analog).\n\n";
    Printf.printf "### single-threaded\n";
    let header =
      "bench" :: List.map System.kind_name systems @ [ "adv vs linux" ]
    in
    let rows =
      List.map
        (fun bench ->
          let per = List.map (fun kind -> (kind, take ())) systems in
          let linux = Plan.tp (List.assoc System.Linux per) in
          let adv = Plan.tp (List.assoc corten_adv per) in
          Micro.bench_name bench
          :: List.map (fun k -> Plan.fmt_tp (List.assoc k per)) systems
          @ [ Plan.pct_vs ~base:linux adv ])
        Micro.all_benches
    in
    Tablefmt.print ~header rows;
    Printf.printf "\n### 32 threads, low contention\n";
    let rows =
      List.map
        (fun bench ->
          Micro.bench_name bench
          :: List.map (fun _kind -> Plan.fmt_tp (take ())) systems)
        Micro.all_benches
    in
    Tablefmt.print ~header:("bench" :: List.map System.kind_name systems) rows;
    Printf.printf
      "\nPaper: the performance differences between CortenMM and Linux on\n\
       RISC-V remain similar to x86-64 (Fig 13).\n\n"
  in
  { Plan.cells = single_cells @ multi_cells; render }
