(* Remaining experiments: Fig 20 (LMbench), Fig 22 (memory overhead),
   Table 2 (features), Table 4 (verification effort), Table 5
   (portability). *)

module Tablefmt = Mm_util.Tablefmt

(* Printed output goes through the capture-aware sink so parallel
   drivers can replay each experiment's stream in submission order. *)
module Printf = struct
  include Stdlib.Printf

  let printf fmt = Mm_util.Out.printf fmt
end

let print_newline = Mm_util.Out.print_newline
let _ = print_newline

module System = Mm_workloads.System
module Apps = Mm_workloads.Apps
module Lmbench = Mm_workloads.Lmbench

let corten_adv = System.Corten Cortenmm.Config.adv

(* -- Table 2: feature matrix -- *)

let tab2 () =
  Printf.printf
    "## Table 2 — supported memory-management features\n\
     The paper's feature claims per system, and what this reproduction\n\
     actually implements (reproduction rows marked *).\n\n";
  let mark b = if b then "yes" else "-" in
  let rows =
    List.concat_map
      (fun (name, feats) ->
        let impl = List.assoc name System.implemented_features in
        [
          name :: List.map mark feats;
          (name ^ "*") :: List.map mark impl;
        ])
      System.table2_features
  in
  Tablefmt.print ~header:("system" :: System.table2_headers) rows;
  print_newline ()

(* -- Fig 20: LMbench process benchmarks (cell-based: one world per
      (bench, kind), cycle counts carried via [Plan.of_cycles]) -- *)

let fig20_kinds =
  [ ("linux", `Linux); ("cortenmm-adv", `Corten Cortenmm.Config.adv) ]

let fig20_benches = [ Lmbench.Fork; Lmbench.Fork_exec; Lmbench.Shell ]

let fig20_plan () =
  let cells =
    List.concat_map
      (fun bench ->
        List.map
          (fun (name, kind) ->
            Plan.cell
              ~label:(Printf.sprintf "%s/%s" (Lmbench.bench_name bench) name)
              ~weight:1.0
              (fun () -> Plan.of_cycles (Lmbench.run ~kind ~bench ())))
          fig20_kinds)
      fig20_benches
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 20 — LMbench fork / fork+exec / shell (cycles per iteration; \
       lower is better)\n\
       These enumerate the address space: CortenMM walks page tables, Linux\n\
       walks its VMA list — the paper's worst case for CortenMM.\n\n";
    let header = "bench" :: List.map fst fig20_kinds @ [ "adv vs linux" ] in
    let rows =
      List.map
        (fun bench ->
          let vals =
            List.map (fun (_ : string * _) -> Plan.cycles (take ())) fig20_kinds
          in
          let linux = float_of_int (List.nth vals 0) in
          let adv = float_of_int (List.nth vals 1) in
          Lmbench.bench_name bench
          :: List.map (fun v -> Tablefmt.fmt_si (float_of_int v)) vals
          @ [ Printf.sprintf "%+.1f%%" ((adv /. linux -. 1.0) *. 100.0) ])
        fig20_benches
    in
    Tablefmt.print ~header rows;
    Printf.printf
      "\nPaper: fork 17.7%% slower than Linux (PT walk beats VMA walk for\n\
       enumeration), fork+exec 23%% faster (faster faults dominate), shell\n\
       about equal.\n\n"
  in
  { Plan.cells; render }

(* -- Fig 22: memory overhead under metis -- *)

let fig22 () =
  Printf.printf
    "## Fig 22 — memory overhead: page tables (filled) + other metadata \
     (empty)\n\
     After a 16-core metis run. CortenMM-ub is the paper's upper bound:\n\
     every PT page with a fully populated per-PTE metadata array.\n\n";
  let systems =
    [ System.Linux; System.Radixvm; System.Nros; corten_adv ]
  in
  let rows =
    List.concat_map
      (fun kind ->
        let (_ : Mm_workloads.Runner.result), (sys : System.t) =
          Apps.metis ~kind ~ncpus:16 ()
        in
        let m = System.mem_stats sys in
        let resident = float_of_int (max 1 m.System.resident_bytes) in
        let base =
          [
            sys.System.name;
            Tablefmt.fmt_bytes m.System.pt_bytes;
            Tablefmt.fmt_bytes m.System.kernel_bytes;
            Tablefmt.fmt_bytes m.System.resident_bytes;
            Printf.sprintf "%.2f%%"
              (float_of_int (m.System.pt_bytes + m.System.kernel_bytes)
              /. resident *. 100.0);
          ]
        in
        match sys.System.kind with
        | System.Corten _ ->
          (* Also print the fully-populated-metadata upper bound. *)
          let ub = 2 * m.System.pt_bytes in
          [
            base;
            [
              sys.System.name ^ "-ub";
              Tablefmt.fmt_bytes m.System.pt_bytes;
              Tablefmt.fmt_bytes (ub - m.System.pt_bytes);
              Tablefmt.fmt_bytes m.System.resident_bytes;
              Printf.sprintf "%.2f%%" (float_of_int ub /. resident *. 100.0);
            ];
          ]
        | _ -> [ base ])
      systems
  in
  Tablefmt.print
    ~header:[ "system"; "page tables"; "other metadata"; "resident"; "overhead" ]
    rows;
  Printf.printf
    "\nPaper: CortenMM ~ Linux; the fully-populated metadata upper bound\n\
     doubles CortenMM's overhead but stays within 2%% of resident memory;\n\
     RadixVM pays for replicated page tables.\n\n"

(* -- Table 4: verification effort / checker statistics -- *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  with Sys_error _ -> None

let loc_cell path =
  match count_lines path with Some n -> string_of_int n | None -> "n/a"

let tab4 () =
  Printf.printf
    "## Table 4 — verification effort (model-checking substitution for \
     Verus)\n\
     States/transitions are summed over all checked scenarios; LoC counts\n\
     the corresponding spec/checker/implementation sources.\n\n";
  let tree = Mm_verif.Tree.create ~arity:2 ~depth:3 in
  (* Locking model: all rw scenarios + all adv scenarios. *)
  let rw_scenarios =
    [ [| 1; 3 |]; [| 4; 4 |]; [| 1; 2 |]; [| 0; 6 |]; [| 1; 4; 2 |] ]
  in
  let rw_states, rw_trans =
    List.fold_left
      (fun (s, t) targets ->
        (* Both the compact and the faithful (trade window + stepwise
           unlock) variants of every scenario. *)
        let r1 = Mm_verif.Rw_model.check ~tree ~targets () in
        let r2 =
          Mm_verif.Rw_model.check ~trade_window:true ~stepwise_unlock:true
            ~tree ~targets ()
        in
        assert (Mm_verif.Checker.is_verified r1);
        assert (Mm_verif.Checker.is_verified r2);
        ( s + r1.Mm_verif.Checker.states + r2.Mm_verif.Checker.states,
          t + r1.Mm_verif.Checker.transitions
          + r2.Mm_verif.Checker.transitions ))
      (0, 0)
      (rw_scenarios @ [ [| 3; 4; 1 |]; [| 5; 6; 2 |] ])
  in
  let adv_scenarios =
    [
      ([| 1; 2 |], [| Mm_verif.Adv_model.Op; Mm_verif.Adv_model.Op |]);
      ([| 1; 3 |], [| Mm_verif.Adv_model.Op; Mm_verif.Adv_model.Op |]);
      ([| 1; 3 |], [| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Op |]);
      ( [| 1; 2 |],
        [| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Remove 5 |] );
      ( [| 1; 3; 2 |],
        [| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Op;
           Mm_verif.Adv_model.Op |] );
      ( [| 1; 3; 4 |],
        [| Mm_verif.Adv_model.Remove 3; Mm_verif.Adv_model.Op;
           Mm_verif.Adv_model.Op |] );
    ]
  in
  let adv_states, adv_trans =
    List.fold_left
      (fun (s, t) (targets, actions) ->
        let r = Mm_verif.Adv_model.check ~tree ~targets ~actions () in
        assert (Mm_verif.Checker.is_verified r);
        (s + r.Mm_verif.Checker.states, t + r.Mm_verif.Checker.transitions))
      (0, 0) adv_scenarios
  in
  let refinement_ok =
    List.for_all
      (fun targets ->
        let r, errs = Mm_verif.Rw_model.check_refinement ~tree ~targets () in
        Mm_verif.Checker.is_verified r && errs = [])
      rw_scenarios
  in
  let fc = Mm_verif.Funcheck.exhaustive ~cfg:Cortenmm.Config.adv ~depth:2 () in
  let lin =
    Mm_verif.Funcheck.lin_check ~cfg:Cortenmm.Config.adv ~ncpus:4
      ~ops_per_thread:15 ~seed:42
  in
  Tablefmt.print
    ~header:[ "component"; "states"; "transitions"; "spec+checker LoC"; "impl LoC" ]
    [
      [
        "Locking model (rw)";
        string_of_int rw_states;
        string_of_int rw_trans;
        loc_cell "lib/verif/rw_model.ml";
        loc_cell "lib/core/addr_space.ml";
      ];
      [
        "Locking model (adv)";
        string_of_int adv_states;
        string_of_int adv_trans;
        loc_cell "lib/verif/adv_model.ml";
        "(shared)";
      ];
      [
        "Refinement to Atomic Spec";
        (if refinement_ok then "holds" else "FAILS");
        "-";
        "(in rw_model)";
        "-";
      ];
      [
        "RCursor ops (exhaustive)";
        string_of_int fc.Mm_verif.Funcheck.sequences ^ " seqs";
        string_of_int fc.Mm_verif.Funcheck.checks ^ " checks";
        loc_cell "lib/verif/funcheck.ml";
        "(shared)";
      ];
      [
        "Linearizability";
        (if lin.Mm_verif.Funcheck.matched then "holds" else "FAILS");
        string_of_int lin.Mm_verif.Funcheck.total_ops ^ " ops";
        "(in funcheck)";
        "-";
      ];
      [
        "Checker core";
        "-";
        "-";
        loc_cell "lib/verif/checker.ml";
        "-";
      ];
    ];
  Printf.printf
    "\nFailures in RCursor exhaustive check: %d (must be 0).\n\
     Paper: 4868 spec + 4279 proof LoC over 1769 impl LoC, proof/code 5.2:1,\n\
     ~8 person-months, Verus verifies in <20 s. Our checker explores the\n\
     full interleaving space of both protocols in seconds instead.\n\n"
    (List.length fc.Mm_verif.Funcheck.failures)

(* -- Table 5: portability -- *)

let count_matching path pattern =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         let lower = String.lowercase_ascii line in
         let rec contains i =
           i + String.length pattern <= String.length lower
           && (String.sub lower i (String.length pattern) = pattern
              || contains (i + 1))
         in
         if contains 0 then incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let tab5 () =
  Printf.printf
    "## Table 5 — lines of code to port to another ISA / MMU feature\n\
     Ours: the complete per-ISA format module (everything RISC-V- or\n\
     ARM-specific lives there, as in the paper's Fig 9 design); MPK: the\n\
     protection-key lines across the HAL. Paper's Linux numbers shown for\n\
     comparison.\n\n";
  let riscv = match count_lines "lib/hal/riscv_sv48.ml" with Some n -> n | None -> 0 in
  let arm = match count_lines "lib/hal/arm64.ml" with Some n -> n | None -> 0 in
  let mpk =
    count_matching "lib/hal/x86_64.ml" "pku"
    + count_matching "lib/hal/x86_64.ml" "mpk"
    + count_matching "lib/hal/perm.ml" "mpk"
    + count_matching "lib/hal/pte_format.ml" "mpk"
  in
  Tablefmt.print
    ~header:[ "feature"; "ours (LoC)"; "paper CortenMM"; "paper Linux" ]
    [
      [ "RISC-V"; string_of_int riscv; "252"; "699" ];
      [ "ARMv8"; string_of_int arm; "(in progress)"; "-" ];
      [ "Intel MPK"; string_of_int mpk; "82"; "273" ];
      [ "Intel TDX"; "not modelled"; "368"; "471" ];
    ];
  Printf.printf
    "\nPaper: CortenMM needs fewer porting lines than Linux because only the\n\
     hardware level must change — there is no software-level abstraction to\n\
     adapt.\n\n"
