(** Domain-parallel experiment driver.

    Runs registry entries as independent pool tasks ({!Mm_par.Par}) with
    captured output and per-task wall-clock; the ordered merge keeps the
    printed stream and the collected results byte-identical to a
    sequential run for any job count. *)

type task_result = {
  t_id : string;
  t_title : string;
  t_output : string;
      (** everything the experiment printed, header and trailing blank
          line included — replay with [print_string] *)
  t_results : (string * Mm_workloads.Runner.result) list;
      (** labeled results collected while the entry ran (bench --json) *)
  t_seconds : float;  (** wall-clock seconds on its worker domain *)
}

val run_entries :
  ?emit:(task_result -> unit) ->
  ?collect:bool ->
  jobs:int ->
  Registry.entry list ->
  task_result list
(** Run every entry and return the results in registry-submission
    order. [emit] is called on the calling domain, strictly in
    submission order, as each task (and all its predecessors) completes
    — print [t_output] there for a live stream. [collect] (default
    false) gathers each entry's labeled results. Each task starts with
    {!Mm_workloads.Runner.reset_world_state}, at [jobs = 1] too, so
    outputs are byte-identical across job counts. *)
