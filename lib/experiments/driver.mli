(** Domain-parallel experiment driver.

    Flattens the cells of every selected cell-based entry ({!Plan}) —
    plus one opaque task per legacy entry — into one {!Mm_par.Par} pool
    with a heaviest-first scheduling hint, then renders each entry on
    the calling domain in submission order. The printed stream, the
    collected results, and the per-entry aggregates are byte-identical
    to a sequential run for any job count, while the parallel critical
    path drops from "slowest entry" to "slowest cell". *)

type cell_time = {
  ct_label : string;  (** the cell's declared label (entry id for legacy) *)
  ct_seconds : float;  (** wall-clock of this cell on its worker domain *)
}

type task_result = {
  t_id : string;
  t_title : string;
  t_output : string;
      (** everything the experiment printed, header and trailing blank
          line included — replay with [print_string] *)
  t_results : (string * Mm_workloads.Runner.result) list;
      (** labeled results collected while the entry's cells ran, in cell
          declaration order (bench --json) *)
  t_seconds : float;
      (** sum of the entry's cell seconds (rendering, which is
          microseconds of pure formatting, is not counted) *)
  t_cells : cell_time list;
      (** per-cell wall-clock in declaration order; a single entry-wide
          cell for legacy entries *)
}

val run_entries :
  ?emit:(task_result -> unit) ->
  ?collect:bool ->
  jobs:int ->
  Registry.entry list ->
  task_result list
(** Run every entry and return the results in registry-submission
    order. [emit] is called on the calling domain, strictly in
    submission order, as each entry (and all its predecessors) completes
    — print [t_output] there for a live stream. [collect] (default
    false) gathers each entry's labeled results. Each cell (and each
    legacy entry) starts with {!Mm_workloads.Runner.reset_world_state},
    at [jobs = 1] too, so outputs are byte-identical across job
    counts. *)

val emit_stdout : task_result -> unit
(** Print a completed entry's captured stream to stdout and flush — the
    [emit] both bench and mmrepro use. *)

val run_all : unit -> unit
(** Run the whole registry sequentially with streamed output — the one
    owner of the [=== id: title ===] header format. *)
