(* Application experiments: Fig 15 (single-thread apps), Fig 16 (JVM
   thread creation + metis, with the two ablations), Fig 17 (dedup +
   psearchy under ptmalloc/tcmalloc), Fig 18 (allocator memory usage),
   Fig 21 (8-thread other-PARSEC).

   Fig 15/16/17/21 are cell-based ({!Plan}): one independent world per
   (app, system, cores, allocator) combination. Fig 18 keeps the legacy
   opaque form — it probes [System.mem_stats] on the live system object
   after each run, which does not reduce to a single [Runner.result]. *)

module Tablefmt = Mm_util.Tablefmt

(* Printed output goes through the capture-aware sink so parallel
   drivers can replay each experiment's stream in submission order. *)
module Printf = struct
  include Stdlib.Printf

  let printf fmt = Mm_util.Out.printf fmt
end

let print_newline = Mm_util.Out.print_newline
let _ = print_newline

module System = Mm_workloads.System
module Apps = Mm_workloads.Apps
module Alloc_model = Mm_workloads.Alloc_model

let corten_adv = System.Corten Cortenmm.Config.adv
let corten_rw = System.Corten Cortenmm.Config.rw
let adv_base = System.Corten Cortenmm.Config.adv_base
let adv_vpa = System.Corten Cortenmm.Config.adv_vpa

let core_sweep = [ 1; 4; 16; 64 ]

(* -- Fig 16: JVM thread creation (left) + metis (right) -- *)

let jvm_systems = [ System.Linux; corten_rw; adv_base; adv_vpa; corten_adv ]

let metis_systems =
  [ System.Linux; System.Radixvm; corten_rw; adv_base; adv_vpa; corten_adv ]

let fig16_plan () =
  let jvm_cells =
    List.concat_map
      (fun n ->
        List.map
          (fun kind ->
            Plan.cell
              ~label:
                (Printf.sprintf "jvm/t%d/%s" n (System.kind_name kind))
              ~weight:(float_of_int n)
              (fun () ->
                Plan.of_cycles (Apps.jvm_thread_creation ~kind ~nthreads:n ())))
          jvm_systems)
      core_sweep
  in
  let metis_cells =
    List.concat_map
      (fun n ->
        List.map
          (fun kind ->
            Plan.cell
              ~label:
                (Printf.sprintf "metis/c%d/%s" n (System.kind_name kind))
              ~weight:(float_of_int n)
              (fun () ->
                let r, _sys = Apps.metis ~kind ~ncpus:n () in
                Some r))
          metis_systems)
      core_sweep
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 16 (left) — JVM thread creation latency (cycles; lower is \
       better)\n\
       N threads each map a stack, guard it and first-touch its hot pages\n\
       (the Android app-startup pattern).\n\n";
    let header = "threads" :: List.map System.kind_name jvm_systems in
    let rows =
      List.map
        (fun n ->
          string_of_int n
          :: List.map
               (fun _kind ->
                 Tablefmt.fmt_si (float_of_int (Plan.cycles (take ()))))
               jvm_systems)
        core_sweep
    in
    Tablefmt.print ~header rows;
    Printf.printf
      "\nPaper: CortenMM (both) 32%% faster than Linux at 384 cores; Linux is\n\
       bottlenecked in the fault path on thread stacks.\n\n";
    Printf.printf
      "## Fig 16 (right) — metis map-reduce throughput (chunk ops/second)\n\
       Workers scan a shared input and allocate 8 MiB chunks, never freed\n\
       (the RadixVM paper's setup), plus the adv_base / adv_+vpa ablations.\n\n";
    let header = "cores" :: List.map System.kind_name metis_systems in
    let rows =
      List.map
        (fun n ->
          string_of_int n
          :: List.map (fun _kind -> Plan.fmt_tp (take ())) metis_systems)
        core_sweep
    in
    Tablefmt.print ~header rows;
    Printf.printf
      "\nPaper: adv 26x over Linux at 384 cores (rw 15x); ablations close to\n\
       adv since metis rarely mmaps; adv 1.24x over RadixVM at 128 cores.\n\n"
  in
  { Plan.cells = jvm_cells @ metis_cells; render }

(* -- Fig 17: dedup and psearchy with both allocators -- *)

let fig17_systems = [ System.Linux; corten_rw; corten_adv ]
let fig17_allocs = [ Alloc_model.Ptmalloc; Alloc_model.Tcmalloc ]

let fig17_cells ~name run =
  List.concat_map
    (fun n ->
      List.concat_map
        (fun alloc ->
          List.map
            (fun kind ->
              Plan.cell
                ~label:
                  (Printf.sprintf "%s/c%d/%s/%s" name n (System.kind_name kind)
                     (Alloc_model.kind_name alloc))
                ~weight:(float_of_int n)
                (fun () ->
                  let r, _ = run ~kind ~alloc_kind:alloc ~ncpus:n in
                  Some r))
            fig17_systems)
        fig17_allocs)
    core_sweep

let fig17_render_one ~name take =
  Printf.printf "### %s\n" name;
  let header =
    "cores"
    :: List.concat_map
         (fun alloc ->
           List.map
             (fun k ->
               Printf.sprintf "%s/%s" (System.kind_name k)
                 (Alloc_model.kind_name alloc))
             fig17_systems)
         fig17_allocs
  in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.concat_map
             (fun _alloc ->
               List.map (fun _kind -> Plan.fmt_tp (take ())) fig17_systems)
             fig17_allocs)
      core_sweep
  in
  Tablefmt.print ~header rows;
  print_newline ()

let fig17_plan () =
  let dedup_cells =
    fig17_cells ~name:"dedup" (fun ~kind ~alloc_kind ~ncpus ->
        Apps.dedup ~kind ~alloc_kind ~ncpus ())
  in
  let psearchy_cells =
    fig17_cells ~name:"psearchy" (fun ~kind ~alloc_kind ~ncpus ->
        Apps.psearchy ~kind ~alloc_kind ~ncpus ())
  in
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 17 — dedup and psearchy throughput with ptmalloc vs tcmalloc\n\n";
    fig17_render_one ~name:"dedup" take;
    fig17_render_one ~name:"psearchy" take;
    Printf.printf
      "Paper: with ptmalloc Linux stops scaling at ~16 threads (dedup) —\n\
       frequent munmap contends on mmap_lock — while adv reaches 2.69x Linux;\n\
       tcmalloc hides the kernel bottleneck for both; psearchy ~2x at 64.\n\n"
  in
  { Plan.cells = dedup_cells @ psearchy_cells; render }

(* -- Fig 18: allocator memory usage (legacy: probes the live system) -- *)

let fig18 () =
  Printf.printf
    "## Fig 18 — resident memory: tcmalloc vs the default allocator\n\
     Bytes held after the dedup / psearchy runs (16 cores, CortenMM_adv).\n\n";
  let rows =
    List.concat_map
      (fun (name, run) ->
        List.map
          (fun alloc ->
            let (_ : Mm_workloads.Runner.result), (sys : System.t) =
              run ~alloc_kind:alloc
            in
            let m = System.mem_stats sys in
            [
              name;
              Alloc_model.kind_name alloc;
              Tablefmt.fmt_bytes m.System.resident_bytes;
              Tablefmt.fmt_bytes m.System.peak_resident_bytes;
              Tablefmt.fmt_bytes m.System.pt_bytes;
            ])
          [ Alloc_model.Ptmalloc; Alloc_model.Tcmalloc ])
      [
        ( "dedup",
          fun ~alloc_kind -> Apps.dedup ~kind:corten_adv ~alloc_kind ~ncpus:16 () );
        ( "psearchy",
          fun ~alloc_kind ->
            Apps.psearchy ~kind:corten_adv ~alloc_kind ~ncpus:16 () );
      ]
  in
  Tablefmt.print
    ~header:[ "app"; "allocator"; "resident after run"; "peak"; "page tables" ]
    rows;
  Printf.printf
    "\nPaper: tcmalloc's speed costs ~2x resident memory — it rarely returns\n\
     freed pages to the OS, so its resident set stays at the high-water\n\
     mark while ptmalloc's drops back after every free.\n\n"

(* -- Fig 15 / Fig 21: PARSEC-class compute workloads -- *)

let parsec_systems = [ corten_rw; corten_adv ]

let parsec_cells ~ncpus =
  List.concat_map
    (fun p ->
      Plan.cell
        ~label:(Printf.sprintf "%s/c%d/linux" p.Apps.p_name ncpus)
        ~weight:(float_of_int ncpus)
        (fun () -> Some (Apps.run_parsec ~kind:System.Linux ~ncpus p))
      :: List.map
           (fun kind ->
             Plan.cell
               ~label:
                 (Printf.sprintf "%s/c%d/%s" p.Apps.p_name ncpus
                    (System.kind_name kind))
               ~weight:(float_of_int ncpus)
               (fun () -> Some (Apps.run_parsec ~kind ~ncpus p)))
           parsec_systems)
    Apps.parsec_others

let parsec_render take =
  let header =
    "benchmark" :: "linux (ops/s)"
    :: List.map (fun k -> System.kind_name k ^ " (norm.)") parsec_systems
  in
  let rows =
    List.map
      (fun p ->
        let linux = Plan.tp (take ()) in
        p.Apps.p_name
        :: Tablefmt.fmt_si linux
        :: List.map
             (fun _kind -> Printf.sprintf "%.3f" (Plan.tp (take ()) /. linux))
             parsec_systems)
      Apps.parsec_others
  in
  Tablefmt.print ~header rows

let fig15_plan () =
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 15 — single-threaded real-world applications (normalized to \
       Linux)\n\
       Compute-dominated PARSEC workloads; MM is not on their critical path.\n\n";
    parsec_render take;
    Printf.printf
      "\nPaper: CortenMM within noise of Linux on every non-MM-bound PARSEC\n\
       benchmark (no regression).\n\n"
  in
  { Plan.cells = parsec_cells ~ncpus:1; render }

let fig21_plan () =
  let render celled =
    let take = Plan.taker celled in
    Printf.printf
      "## Fig 21 — 8-threaded other-PARSEC workloads (normalized to Linux)\n\n";
    parsec_render take;
    Printf.printf
      "\nPaper: parity with Linux (CortenMM adds no overhead when MM is not\n\
       the bottleneck).\n\n"
  in
  { Plan.cells = parsec_cells ~ncpus:8; render }
