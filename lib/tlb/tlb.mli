(** Per-CPU TLB model and shootdown strategies: synchronous broadcast
    (Linux), early acknowledgement, and LATR-style lazy shootdown.

    Orthogonal to the strategy, a shootdown {!policy} decides {e when}
    the remote work happens: [Immediate] (the default — the historical,
    byte-identical behavior) or [Batched] (remote invalidations coalesce
    into one round per deferral window — see {!shootdown}). *)

type strategy = Sync | Early_ack | Latr

type policy =
  | Immediate  (** remote invalidation at the shootdown call (default) *)
  | Batched of { window : int; max_batch : int }
      (** defer remote work; complete a coalesced round when [max_batch]
          records are pending or the oldest is [window] cycles stale
          (checked on {!timer_tick}) *)

type counters = {
  mutable shootdowns : int;
  mutable ipis : int;
  mutable local_flushes : int;
  mutable latr_published : int;
  mutable latr_drained : int;
  mutable batched : int;  (** shootdown records deferred to a batch *)
  mutable batch_flushes : int;  (** coalesced rounds performed *)
  mutable worst_stall : int;  (** max enqueue-to-flush age, cycles *)
}

type t

val create : ?policy:policy -> ncpus:int -> strategy:strategy -> unit -> t
val strategy : t -> strategy
val strategy_to_string : strategy -> string

val policy : t -> policy
val policy_to_string : policy -> string

val set_policy : t -> policy -> unit
(** Install a shootdown policy. Any pending batch is completed first
    (under the old accounting), so no deferred work is ever lost. *)

val deferring : t -> bool
(** [policy t <> Immediate] — callers that can defer dependent work
    (e.g. frame frees) behind {!shootdown}'s [on_flush] check this. *)

val install :
  t -> cpu:int -> vpn:int -> pfn:int -> writable:bool -> ?key:int -> unit -> unit

(** A hit requires the cached translation to permit the access: a write to
    a read-only cached entry (e.g. COW) misses and takes the fault path.
    Returns the pfn and the cached MPK key (hardware checks PKRU on every
    access, hit or not). *)
val lookup : t -> cpu:int -> vpn:int -> write:bool -> (int * int) option
val flush_local : t -> cpu:int -> vpns:int list -> unit

val shootdown :
  ?on_flush:(unit -> unit) -> t -> targets:bool array -> vpns:int list -> unit
(** Invalidate [vpns] on each CPU whose bit is set in [targets] (plus the
    calling CPU, immediately — under either policy). Must be called from
    inside a fiber; the initiator is charged the selected strategy's cost
    profile. [on_flush] runs once the remote invalidation for this call
    has completed: immediately under the [Immediate] policy (or when no
    remote CPU is targeted), at batch-flush time under [Batched] — the
    hook for work that must wait out stale remote translations, such as
    deferred frame frees. *)

val shootdown_full : t -> targets:bool array -> unit
(** Invalidate the targets' entire TLBs (synchronous; used beyond
    per-page thresholds and after reference-bit batch clears). Completes
    any pending batch first. *)

val timer_tick : t -> cpu:int -> unit
(** Drain the CPU's lazy-shootdown buffer (LATR), and complete the
    pending batch if its oldest record has aged past the policy's
    deferral window. *)

val flush_pending : t -> unit
(** Complete the pending batch now (no-op when empty). The caller — if
    in a fiber — is charged the coalesced round. *)

val batch_pending : t -> int
(** Number of shootdown records currently deferred. *)

val pending_count : t -> cpu:int -> int
val counters : t -> counters
