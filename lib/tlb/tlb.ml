(* Per-CPU TLB model and shootdown strategies.

   CortenMM borrows two shootdown optimizations (paper §4.5): parallel
   flushes with early acknowledgement (Amit et al. [25]) and LATR-style
   lazy shootdown on munmap (Kumar et al. [66]), where unmapped pages are
   pushed to per-CPU buffers drained on timer interrupts.

   The model keeps real per-CPU translation tables (vpn -> pfn) so tests
   can detect stale translations, and charges the initiating CPU the cost
   profile of the selected strategy. Linux's baseline uses the synchronous
   broadcast strategy. *)

type strategy = Sync | Early_ack | Latr

let strategy_to_string = function
  | Sync -> "sync"
  | Early_ack -> "early-ack"
  | Latr -> "latr"

type counters = {
  mutable shootdowns : int;
  mutable ipis : int;
  mutable local_flushes : int;
  mutable latr_published : int;
  mutable latr_drained : int;
}

type t = {
  ncpus : int;
  strategy : strategy;
  entries : (int, int * bool * int) Hashtbl.t array;
      (* per cpu: vpn -> (pfn, writable, protection key). Writability must
         be cached so a write to a read-only (e.g. COW) translation still
         faults; the MPK key is cached because hardware checks PKRU on
         every access, TLB hit or not. *)
  pending : int Queue.t array; (* per cpu: vpns awaiting a lazy flush *)
  counters : counters;
}

let create ~ncpus ~strategy =
  {
    ncpus;
    strategy;
    entries = Array.init ncpus (fun _ -> Hashtbl.create 64);
    pending = Array.init ncpus (fun _ -> Queue.create ());
    counters =
      {
        shootdowns = 0;
        ipis = 0;
        local_flushes = 0;
        latr_published = 0;
        latr_drained = 0;
      };
  }

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let install t ~cpu ~vpn ~pfn ~writable ?(key = 0) () =
  Hashtbl.replace t.entries.(cpu) vpn (pfn, writable, key)

(* A hit requires the cached translation to permit the access; the MPK
   key (if any) is returned for the caller's PKRU check. *)
let lookup t ~cpu ~vpn ~write =
  match Hashtbl.find_opt t.entries.(cpu) vpn with
  | Some (pfn, writable, key) when (not write) || writable -> Some (pfn, key)
  | Some _ | None -> None

let flush_local t ~cpu ~vpns =
  t.counters.local_flushes <- t.counters.local_flushes + 1;
  charge
    (Mm_sim.Cost.tlb_flush_local
    + (Mm_sim.Cost.tlb_flush_page * max 0 (List.length vpns - 1)));
  List.iter (fun vpn -> Hashtbl.remove t.entries.(cpu) vpn) vpns

(* Invalidate [vpns] on every CPU whose bit is set in [targets]; the
   current CPU's flush is always immediate and local. *)
let shootdown t ~targets ~vpns =
  let self = Mm_sim.Engine.cpu_id () in
  t.counters.shootdowns <- t.counters.shootdowns + 1;
  flush_local t ~cpu:self ~vpns;
  let remote =
    List.filter
      (fun c -> c <> self && c < t.ncpus && targets.(c))
      (List.init t.ncpus Fun.id)
  in
  (match (t.strategy, remote) with
  | _, [] -> ()
  | Sync, remote ->
    (* Send IPIs in parallel, wait for every acknowledgement. *)
    t.counters.ipis <- t.counters.ipis + List.length remote;
    List.iter
      (fun c -> List.iter (fun vpn -> Hashtbl.remove t.entries.(c) vpn) vpns)
      remote;
    charge
      ((Mm_sim.Cost.ipi_send * List.length remote) + Mm_sim.Cost.ipi_ack_wait)
  | Early_ack, remote ->
    (* Remote cores acknowledge before completing the flush; the initiator
       resumes much earlier. Entries are still removed (the window during
       which a remote core may use a stale entry is a correctness argument
       of [25], not modelled). *)
    t.counters.ipis <- t.counters.ipis + List.length remote;
    List.iter
      (fun c -> List.iter (fun vpn -> Hashtbl.remove t.entries.(c) vpn) vpns)
      remote;
    charge
      ((Mm_sim.Cost.ipi_send * List.length remote)
      + Mm_sim.Cost.ipi_ack_wait_early)
  | Latr, remote ->
    (* No IPI at all: publish to the remote CPUs' buffers; each drains on
       its next timer tick. *)
    List.iter
      (fun c ->
        List.iter
          (fun vpn ->
            Queue.push vpn t.pending.(c);
            t.counters.latr_published <- t.counters.latr_published + 1)
          vpns)
      remote;
    charge (Mm_sim.Cost.latr_publish * List.length vpns));
  if Mm_obs.Trace.on () then begin
    let nremote = List.length remote in
    let ipis =
      match t.strategy with
      | (Sync | Early_ack) when nremote > 0 -> nremote
      | _ -> 0
    in
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "tlb.shootdowns");
    Mm_obs.Metrics.observe
      (Mm_obs.Metrics.histogram "tlb.shootdown_fanout")
      nremote;
    Mm_sim.Engine.obs
      (Mm_obs.Event.Tlb_shootdown
         { vpns = List.length vpns; targets = nremote; ipis })
  end

(* Full shootdown: invalidate the targets' entire TLBs (what a kernel
   does beyond a per-page threshold, and what kswapd does after a batch
   of reference-bit clears). Always synchronous — a full flush cannot be
   deferred page-by-page. *)
let shootdown_full t ~targets =
  let self = Mm_sim.Engine.cpu_id () in
  t.counters.shootdowns <- t.counters.shootdowns + 1;
  charge Mm_sim.Cost.tlb_flush_local;
  Hashtbl.reset t.entries.(self);
  let remote =
    List.filter
      (fun c -> c <> self && c < t.ncpus && targets.(c))
      (List.init t.ncpus Fun.id)
  in
  if remote <> [] then begin
    t.counters.ipis <- t.counters.ipis + List.length remote;
    List.iter (fun c -> Hashtbl.reset t.entries.(c)) remote;
    charge
      ((Mm_sim.Cost.ipi_send * List.length remote) + Mm_sim.Cost.ipi_ack_wait)
  end;
  if Mm_obs.Trace.on () then begin
    let nremote = List.length remote in
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "tlb.shootdowns");
    Mm_obs.Metrics.observe
      (Mm_obs.Metrics.histogram "tlb.shootdown_fanout")
      nremote;
    (* vpns = 0 encodes a full flush. *)
    Mm_sim.Engine.obs
      (Mm_obs.Event.Tlb_shootdown { vpns = 0; targets = nremote; ipis = nremote })
  end

(* Called by each CPU on its (simulated) timer interrupt / reschedule. *)
let timer_tick t ~cpu =
  let q = t.pending.(cpu) in
  let n = Queue.length q in
  if n > 0 then begin
    charge (Mm_sim.Cost.latr_drain_per_entry * n);
    Queue.iter (fun vpn -> Hashtbl.remove t.entries.(cpu) vpn) q;
    Queue.clear q;
    t.counters.latr_drained <- t.counters.latr_drained + n;
    if Mm_obs.Trace.on () then begin
      Mm_obs.Metrics.add (Mm_obs.Metrics.counter "tlb.latr_drained") n;
      Mm_sim.Engine.obs (Mm_obs.Event.Tlb_latr_drain { entries = n })
    end
  end

let pending_count t ~cpu = Queue.length t.pending.(cpu)
let counters t = t.counters
let strategy t = t.strategy
