(* Per-CPU TLB model and shootdown strategies.

   CortenMM borrows two shootdown optimizations (paper §4.5): parallel
   flushes with early acknowledgement (Amit et al. [25]) and LATR-style
   lazy shootdown on munmap (Kumar et al. [66]), where unmapped pages are
   pushed to per-CPU buffers drained on timer interrupts.

   The model keeps real per-CPU translation tables (vpn -> pfn) so tests
   can detect stale translations, and charges the initiating CPU the cost
   profile of the selected strategy. Linux's baseline uses the synchronous
   broadcast strategy.

   Orthogonal to the strategy, a shootdown *policy* decides WHEN the
   remote work happens (an extension the paper does not have):

   - [Immediate] (default): remote invalidation at the shootdown call,
     exactly the historical behavior — byte-identical simulated outputs.
   - [Batched]: the initiator still flushes its own TLB immediately (it
     just modified the translation), but the remote work is appended to a
     bounded deferral queue and completed in one coalesced round when the
     batch fills ([max_batch] records) or ages out ([window] cycles,
     checked on timer ticks). Callers may attach an [on_flush] callback
     to a shootdown — the hook the core uses to defer frame frees until
     the stale remote translations are gone (async unmap). *)

type strategy = Sync | Early_ack | Latr

let strategy_to_string = function
  | Sync -> "sync"
  | Early_ack -> "early-ack"
  | Latr -> "latr"

type policy = Immediate | Batched of { window : int; max_batch : int }

let policy_to_string = function
  | Immediate -> "immediate"
  | Batched _ -> "batched"

type counters = {
  mutable shootdowns : int;
  mutable ipis : int;
  mutable local_flushes : int;
  mutable latr_published : int;
  mutable latr_drained : int;
  mutable batched : int; (* shootdown records deferred to a batch *)
  mutable batch_flushes : int; (* coalesced rounds performed *)
  mutable worst_stall : int; (* max enqueue-to-flush age, cycles *)
}

(* One deferred shootdown: what [shootdown] would have done remotely. *)
type batch_entry = {
  be_vpns : int list;
  be_remote : int list;
  be_enqueued : int; (* virtual time at enqueue (0 outside a fiber) *)
  be_on_flush : (unit -> unit) option;
}

type t = {
  ncpus : int;
  strategy : strategy;
  entries : (int, int * bool * int) Hashtbl.t array;
      (* per cpu: vpn -> (pfn, writable, protection key). Writability must
         be cached so a write to a read-only (e.g. COW) translation still
         faults; the MPK key is cached because hardware checks PKRU on
         every access, TLB hit or not. *)
  pending : int Queue.t array; (* per cpu: vpns awaiting a lazy flush *)
  counters : counters;
  mutable policy : policy;
  mutable batch : batch_entry list; (* newest first *)
  mutable batch_n : int;
  mutable batch_oldest : int; (* enqueue time of the oldest record *)
}

let create ?(policy = Immediate) ~ncpus ~strategy () =
  {
    ncpus;
    strategy;
    entries = Array.init ncpus (fun _ -> Hashtbl.create 64);
    pending = Array.init ncpus (fun _ -> Queue.create ());
    counters =
      {
        shootdowns = 0;
        ipis = 0;
        local_flushes = 0;
        latr_published = 0;
        latr_drained = 0;
        batched = 0;
        batch_flushes = 0;
        worst_stall = 0;
      };
    policy;
    batch = [];
    batch_n = 0;
    batch_oldest = 0;
  }

let charge c = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.tick c

let install t ~cpu ~vpn ~pfn ~writable ?(key = 0) () =
  Hashtbl.replace t.entries.(cpu) vpn (pfn, writable, key)

(* A hit requires the cached translation to permit the access; the MPK
   key (if any) is returned for the caller's PKRU check. *)
let lookup t ~cpu ~vpn ~write =
  match Hashtbl.find_opt t.entries.(cpu) vpn with
  | Some (pfn, writable, key) when (not write) || writable -> Some (pfn, key)
  | Some _ | None -> None

let flush_local t ~cpu ~vpns =
  t.counters.local_flushes <- t.counters.local_flushes + 1;
  charge
    (Mm_sim.Cost.tlb_flush_local
    + (Mm_sim.Cost.tlb_flush_page * max 0 (List.length vpns - 1)));
  List.iter (fun vpn -> Hashtbl.remove t.entries.(cpu) vpn) vpns

(* The remote half of one shootdown under the selected strategy; shared
   by the immediate path and the batch flush (which passes the union). *)
let remote_invalidate t ~remote ~vpns =
  match (t.strategy, remote) with
  | _, [] -> ()
  | Sync, remote ->
    (* Send IPIs in parallel, wait for every acknowledgement. *)
    t.counters.ipis <- t.counters.ipis + List.length remote;
    List.iter
      (fun c -> List.iter (fun vpn -> Hashtbl.remove t.entries.(c) vpn) vpns)
      remote;
    charge
      ((Mm_sim.Cost.ipi_send * List.length remote) + Mm_sim.Cost.ipi_ack_wait)
  | Early_ack, remote ->
    (* Remote cores acknowledge before completing the flush; the initiator
       resumes much earlier. Entries are still removed (the window during
       which a remote core may use a stale entry is a correctness argument
       of [25], not modelled). *)
    t.counters.ipis <- t.counters.ipis + List.length remote;
    List.iter
      (fun c -> List.iter (fun vpn -> Hashtbl.remove t.entries.(c) vpn) vpns)
      remote;
    charge
      ((Mm_sim.Cost.ipi_send * List.length remote)
      + Mm_sim.Cost.ipi_ack_wait_early)
  | Latr, remote ->
    (* No IPI at all: publish to the remote CPUs' buffers; each drains on
       its next timer tick. *)
    List.iter
      (fun c ->
        List.iter
          (fun vpn ->
            Queue.push vpn t.pending.(c);
            t.counters.latr_published <- t.counters.latr_published + 1)
          vpns)
      remote;
    charge (Mm_sim.Cost.latr_publish * List.length vpns)

(* Complete every deferred record in one coalesced round: the remote CPUs
   of the whole batch are reached once (one IPI fan-out under Sync /
   Early_ack, one publish pass under LATR) instead of once per record.
   Runs the records' [on_flush] callbacks in enqueue order and tracks the
   worst enqueue-to-flush stall. Whoever triggers the flush pays. *)
let flush_batch t =
  if t.batch <> [] then begin
    let records = List.rev t.batch in
    t.batch <- [];
    t.batch_n <- 0;
    (* One round over the union of the records' remote targets. The
       per-record vpn sets are invalidated precisely; the coalescing
       saves the per-record IPI send + ack latency, not the invalidation
       work itself. *)
    let union = Array.make t.ncpus false in
    List.iter
      (fun r -> List.iter (fun c -> union.(c) <- true) r.be_remote)
      records;
    let remote =
      List.filter (fun c -> union.(c)) (List.init t.ncpus Fun.id)
    in
    (match (t.strategy, remote) with
    | _, [] -> ()
    | (Sync | Early_ack), remote ->
      t.counters.ipis <- t.counters.ipis + List.length remote;
      List.iter
        (fun r ->
          List.iter
            (fun c ->
              List.iter (fun vpn -> Hashtbl.remove t.entries.(c) vpn) r.be_vpns)
            r.be_remote)
        records;
      charge
        ((Mm_sim.Cost.ipi_send * List.length remote)
        + (if t.strategy = Sync then Mm_sim.Cost.ipi_ack_wait
           else Mm_sim.Cost.ipi_ack_wait_early))
    | Latr, _ ->
      List.iter
        (fun r -> remote_invalidate t ~remote:r.be_remote ~vpns:r.be_vpns)
        records);
    t.counters.batch_flushes <- t.counters.batch_flushes + 1;
    let now =
      if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.now ()
      else
        List.fold_left (fun a r -> max a r.be_enqueued) 0 records
    in
    List.iter
      (fun r ->
        let stall = max 0 (now - r.be_enqueued) in
        if stall > t.counters.worst_stall then t.counters.worst_stall <- stall;
        if Mm_obs.Trace.on () then
          Mm_obs.Metrics.observe
            (Mm_obs.Metrics.histogram "tlb.batch_stall_cycles")
            stall;
        match r.be_on_flush with Some f -> f () | None -> ())
      records;
    if Mm_obs.Trace.on () then
      Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "tlb.batch_flushes")
  end

(* Invalidate [vpns] on every CPU whose bit is set in [targets]; the
   current CPU's flush is always immediate and local (it just modified
   the translation), under either policy. *)
let shootdown ?on_flush t ~targets ~vpns =
  let self = Mm_sim.Engine.cpu_id () in
  t.counters.shootdowns <- t.counters.shootdowns + 1;
  flush_local t ~cpu:self ~vpns;
  let remote =
    List.filter
      (fun c -> c <> self && c < t.ncpus && targets.(c))
      (List.init t.ncpus Fun.id)
  in
  let deferred =
    match t.policy with
    | Immediate ->
      remote_invalidate t ~remote ~vpns;
      (match on_flush with Some f -> f () | None -> ());
      false
    | Batched { max_batch; window = _ } ->
      if remote = [] then begin
        (* No remote CPU can hold a stale translation: nothing to defer,
           so any dependent work (deferred frees) may run now. *)
        (match on_flush with Some f -> f () | None -> ());
        false
      end
      else begin
        let at = if Mm_sim.Engine.in_fiber () then Mm_sim.Engine.now () else 0 in
        if t.batch_n = 0 then t.batch_oldest <- at;
        t.batch <-
          { be_vpns = vpns; be_remote = remote; be_enqueued = at;
            be_on_flush = on_flush }
          :: t.batch;
        t.batch_n <- t.batch_n + 1;
        t.counters.batched <- t.counters.batched + 1;
        charge Mm_sim.Cost.batch_enqueue;
        if t.batch_n >= max_batch then flush_batch t;
        true
      end
  in
  if Mm_obs.Trace.on () then begin
    let nremote = List.length remote in
    let ipis =
      match t.strategy with
      | (Sync | Early_ack) when nremote > 0 && not deferred -> nremote
      | _ -> 0
    in
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "tlb.shootdowns");
    Mm_obs.Metrics.observe
      (Mm_obs.Metrics.histogram "tlb.shootdown_fanout")
      nremote;
    Mm_sim.Engine.obs
      (Mm_obs.Event.Tlb_shootdown
         { vpns = List.length vpns; targets = nremote; ipis })
  end

(* Full shootdown: invalidate the targets' entire TLBs (what a kernel
   does beyond a per-page threshold, and what kswapd does after a batch
   of reference-bit clears). Always synchronous — a full flush cannot be
   deferred page-by-page — so any pending batch is completed first. *)
let shootdown_full t ~targets =
  flush_batch t;
  let self = Mm_sim.Engine.cpu_id () in
  t.counters.shootdowns <- t.counters.shootdowns + 1;
  charge Mm_sim.Cost.tlb_flush_local;
  Hashtbl.reset t.entries.(self);
  let remote =
    List.filter
      (fun c -> c <> self && c < t.ncpus && targets.(c))
      (List.init t.ncpus Fun.id)
  in
  if remote <> [] then begin
    t.counters.ipis <- t.counters.ipis + List.length remote;
    List.iter (fun c -> Hashtbl.reset t.entries.(c)) remote;
    charge
      ((Mm_sim.Cost.ipi_send * List.length remote) + Mm_sim.Cost.ipi_ack_wait)
  end;
  if Mm_obs.Trace.on () then begin
    let nremote = List.length remote in
    Mm_obs.Metrics.inc (Mm_obs.Metrics.counter "tlb.shootdowns");
    Mm_obs.Metrics.observe
      (Mm_obs.Metrics.histogram "tlb.shootdown_fanout")
      nremote;
    (* vpns = 0 encodes a full flush. *)
    Mm_sim.Engine.obs
      (Mm_obs.Event.Tlb_shootdown { vpns = 0; targets = nremote; ipis = nremote })
  end

(* Called by each CPU on its (simulated) timer interrupt / reschedule. *)
let timer_tick t ~cpu =
  let q = t.pending.(cpu) in
  let n = Queue.length q in
  if n > 0 then begin
    charge (Mm_sim.Cost.latr_drain_per_entry * n);
    Queue.iter (fun vpn -> Hashtbl.remove t.entries.(cpu) vpn) q;
    Queue.clear q;
    t.counters.latr_drained <- t.counters.latr_drained + n;
    if Mm_obs.Trace.on () then begin
      Mm_obs.Metrics.add (Mm_obs.Metrics.counter "tlb.latr_drained") n;
      Mm_sim.Engine.obs (Mm_obs.Event.Tlb_latr_drain { entries = n })
    end
  end;
  match t.policy with
  | Batched { window; max_batch = _ }
    when t.batch_n > 0
         && Mm_sim.Engine.in_fiber ()
         && Mm_sim.Engine.now () >= t.batch_oldest + window ->
    flush_batch t
  | _ -> ()

let pending_count t ~cpu = Queue.length t.pending.(cpu)
let counters t = t.counters
let strategy t = t.strategy
let policy t = t.policy
let deferring t = t.policy <> Immediate
let batch_pending t = t.batch_n
let flush_pending t = flush_batch t

(* Switching policies completes any pending batch first (under the old
   accounting), so no deferred work is ever lost. *)
let set_policy t p =
  flush_batch t;
  t.policy <- p
