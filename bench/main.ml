(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (run with no arguments for everything, or
   `-- --only fig13,fig20` for a subset; `--list` shows the ids), then —
   unless `--no-bechamel` — runs a small Bechamel suite timing the host
   performance of the substrate itself (page-table ops, PTE codecs,
   allocators, the model checker), which is this repository's equivalent
   of reporting the simulator's own speed. *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let isa = Mm_hal.Isa.x86_64 in
  let pte_roundtrip =
    Test.make ~name:"hal: x86-64 PTE encode+decode"
      (Staged.stage (fun () ->
           let pte = Mm_hal.Pte.leaf ~pfn:0x1234 ~perm:Mm_hal.Perm.rw () in
           ignore
             (Mm_hal.Isa.decode isa ~level:1
                (Mm_hal.Isa.encode isa ~level:1 pte))))
  in
  let buddy_cycle =
    Test.make ~name:"phys: buddy alloc+free"
      (Staged.stage
         (let b = Mm_phys.Buddy.create ~nframes:(1 lsl 24) in
          fun () ->
            let pfn = Mm_phys.Buddy.alloc b ~order:0 in
            Mm_phys.Buddy.free b ~pfn ~order:0))
  in
  let pt_map_unmap =
    Test.make ~name:"pt: walk_create+set+clear"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let pt = Mm_pt.Pt.create phys isa in
          let vaddr = ref 0x1000_0000 in
          fun () ->
            let node = Mm_pt.Pt.walk_create pt ~to_level:1 !vaddr in
            let idx = Mm_pt.Pt.index pt ~level:1 ~vaddr:!vaddr in
            Mm_pt.Pt.set pt node idx
              (Mm_hal.Pte.leaf ~pfn:1 ~perm:Mm_hal.Perm.rw ());
            Mm_pt.Pt.set pt node idx Mm_hal.Pte.Absent;
            vaddr := !vaddr + 4096))
  in
  let vma_find =
    Test.make ~name:"linux: vma tree find"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let t = Mm_linux.Vma.create phys in
          for i = 0 to 99 do
            ignore
              (Mm_linux.Vma.insert t
                 ~start:(0x1000_0000 + (i * 0x10000))
                 ~end_:(0x1000_0000 + (i * 0x10000) + 0x8000)
                 ~perm:Mm_hal.Perm.rw)
          done;
          fun () -> ignore (Mm_linux.Vma.find t 0x1000_4000)))
  in
  let checker_run =
    Test.make ~name:"verif: rw model check (2 cores)"
      (Staged.stage (fun () ->
           let tree = Mm_verif.Tree.create ~arity:2 ~depth:3 in
           ignore (Mm_verif.Rw_model.check ~tree ~targets:[| 1; 3 |] ())))
  in
  let sim_microop =
    Test.make ~name:"sim: one simulated mmap+touch+munmap"
      (Staged.stage (fun () ->
           let w = Mm_sim.Engine.create ~ncpus:1 in
           Mm_sim.Engine.spawn w ~cpu:0 (fun () ->
               let kernel = Cortenmm.Kernel.create ~ncpus:1 () in
               let asp =
                 Cortenmm.Addr_space.create kernel Cortenmm.Config.adv
               in
               let a =
                 match Cortenmm.Mm.mmap_r asp ~len:16384 ~perm:Mm_hal.Perm.rw () with
                 | Ok a -> a
                 | Error e -> raise (Mm_hal.Errno.Error e)
               in
               Cortenmm.Mm.touch_range asp ~addr:a ~len:16384 ~write:true;
               ignore (Cortenmm.Mm.munmap_r asp ~addr:a ~len:16384));
           Mm_sim.Engine.run w))
  in
  let maple_ops =
    Test.make ~name:"linux: maple tree insert+find+remove"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let t = Mm_linux.Vma.create phys in
          let next = ref 0x1000_0000 in
          fun () ->
            let s = !next in
            next := s + 0x10000;
            let _ = Mm_linux.Vma.insert t ~start:s ~end_:(s + 0x8000)
                      ~perm:Mm_hal.Perm.rw in
            ignore (Mm_linux.Vma.find t (s + 0x4000));
            Mm_linux.Vma.remove_node t s))
  in
  let slab_cycle =
    Test.make ~name:"phys: slab alloc+free"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let c = Mm_phys.Slab.create phys ~name:"bench" ~obj_size:200 in
          fun () ->
            let h = Mm_phys.Slab.alloc c in
            Mm_phys.Slab.free c h))
  in
  let tests =
    [
      pte_roundtrip; buddy_cycle; slab_cycle; pt_map_unmap; vma_find;
      maple_ops; checker_run; sim_microop;
    ]
  in
  Printf.printf "## Bechamel — host-level timings of the substrate\n\n%!";
  List.iter
    (fun test ->
      let instances = Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-45s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    tests;
  print_newline ()

(* --flag <value> style argument, hand-rolled like the rest of this
   driver's CLI. *)
let flag_value args name =
  let rec find = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find args

(* Wall-clock seconds spent in each experiment driver, collected when
   --wallclock is passed. Host-side timing only: it never touches the
   simulated (deterministic) outputs. *)
let wallclock : (string * float) list ref = ref []

let run_entry (e : Mm_experiments.Registry.entry) =
  Mm_workloads.Runner.set_label e.id;
  Printf.printf "=== %s: %s ===\n\n%!" e.id e.title;
  let t0 = Unix.gettimeofday () in
  e.run ();
  wallclock := (e.id, Unix.gettimeofday () -. t0) :: !wallclock;
  print_newline ()

let wallclock_path = "BENCH_wallclock.json"

let write_wallclock_json () =
  let open Mm_obs in
  let entries = List.rev !wallclock in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0. entries in
  Json.write_file ~path:wallclock_path
    (Json.Obj
       [
         ( "wallclock",
           Json.List
             (List.map
                (fun (id, s) ->
                  Json.Obj [ ("id", Json.String id); ("seconds", Json.Float s) ])
                entries) );
         ("total_seconds", Json.Float total);
       ]);
  Printf.printf "## Wall-clock per experiment driver\n\n";
  List.iter (fun (id, s) -> Printf.printf "  %-8s %8.3f s\n" id s) entries;
  Printf.printf "  %-8s %8.3f s\n" "total" total;
  Printf.printf "wrote wall-clock timings to %s\n%!" wallclock_path

let write_results_json ~path results =
  let open Mm_obs in
  Json.write_file ~path
    (Json.Obj
       [
         ( "results",
           Json.List
             (List.map
                (fun (label, (r : Mm_workloads.Runner.result)) ->
                  Json.Obj
                    [
                      ("id", Json.String label);
                      ("ops", Json.Int r.ops);
                      ("cycles", Json.Int r.cycles);
                      ("ops_per_sec", Json.Float r.ops_per_sec);
                    ])
                results) );
       ])

(* Optional open-loop serving run (`--serve N`), appended after the
   regular experiments. Kept behind a flag — not a registry entry — so
   the default run-all output and `--list` stay byte-identical. Mix and
   policy names resolve fail-fast through the typed registry lookups. *)
let serve_path = "BENCH_serve.json"

let run_serve args sessions =
  let die msg =
    Printf.eprintf "bench: %s\n" msg;
    exit 1
  in
  let mix =
    match Mm_serve.Mix.find
            (Option.value (flag_value args "--serve-mix") ~default:"mixed")
    with
    | Ok m -> m
    | Error msg -> die msg
  in
  let policies =
    let names =
      match flag_value args "--serve-policy" with
      | None -> Mm_serve.Serve.policy_names
      | Some s -> String.split_on_char ',' s
    in
    List.map
      (fun name ->
        match Mm_serve.Serve.find_policy name with
        | Ok p -> (name, p)
        | Error msg -> die msg)
      names
  in
  let ncpus = 8 and seed = 42 in
  Printf.printf
    "=== serve: open-loop session fleet (%d sessions, %d cpus, mix %s) ===\n\n%!"
    sessions ncpus mix.Mm_serve.Mix.name;
  let reports =
    Mm_serve.Serve.run_matrix ~systems:Mm_workloads.System.Registry.all ~mix
      ~policies ~ncpus ~sessions ~seed ()
  in
  print_string (Mm_serve.Serve.table reports);
  Mm_serve.Serve.write_json ~path:serve_path ~mix ~ncpus ~sessions ~seed
    reports;
  Printf.printf "\nwrote serve report to %s\n\n%!" serve_path

let () =
  (* The simulator's state is mostly medium-lived (one world per
     experiment config), which the default GC pacing promotes and then
     re-marks aggressively. A larger minor heap and lazier major slices
     cut total GC work by roughly a fifth of the run time; simulated
     outputs are unaffected (the simulation is deterministic and the GC
     never observes virtual time). *)
  Gc.set
    { (Gc.get ()) with minor_heap_size = 1 lsl 20; space_overhead = 300 };
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then begin
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Mm_experiments.Registry.id
          e.Mm_experiments.Registry.title)
      Mm_experiments.Registry.all;
    Printf.printf "backends: %s\n"
      (String.concat ", " Mm_workloads.System.Registry.names)
  end
  else begin
    let only =
      Option.map (String.split_on_char ',') (flag_value args "--only")
    in
    let json_path = flag_value args "--json" in
    let trace_path = flag_value args "--trace" in
    let report = List.mem "--report" args in
    if json_path <> None then Mm_workloads.Runner.start_collecting ();
    if trace_path <> None || report then Mm_obs.Trace.start ();
    (match only with
    | None -> List.iter run_entry Mm_experiments.Registry.all
    | Some ids ->
      (* Resolve every id before running anything, so a typo fails fast
         instead of silently running a subset. *)
      let entries =
        List.map
          (fun id ->
            match Mm_experiments.Registry.find id with
            | Ok e -> e
            | Error msg ->
              Printf.eprintf "bench: %s\n" msg;
              exit 1)
          ids
      in
      List.iter run_entry entries);
    (match trace_path with
    | Some path ->
      let events = Mm_obs.Trace.events () in
      Mm_obs.Chrome.write ~path events;
      Printf.printf "wrote %d trace events to %s (%d dropped)\n%!"
        (List.length events) path
        (Mm_obs.Trace.dropped ())
    | None -> ());
    if report then begin
      print_string (Mm_obs.Contention.report ());
      print_newline ();
      print_string (Mm_obs.Metrics.dump ())
    end;
    if trace_path <> None || report then ignore (Mm_obs.Trace.stop ());
    (match json_path with
    | Some path ->
      write_results_json ~path (Mm_workloads.Runner.stop_collecting ());
      Printf.printf "wrote results to %s\n%!" path
    | None -> ());
    (match flag_value args "--serve" with
    | Some n -> run_serve args (int_of_string n)
    | None -> ());
    if List.mem "--wallclock" args then write_wallclock_json ();
    if (not (List.mem "--no-bechamel" args)) && only = None then
      bechamel_suite ()
  end
