(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (run with no arguments for everything, or
   `-- --only fig13,fig20` for a subset; `--list` shows the ids), then —
   unless `--no-bechamel` — runs a small Bechamel suite timing the host
   performance of the substrate itself (page-table ops, PTE codecs,
   allocators, the model checker), which is this repository's equivalent
   of reporting the simulator's own speed. *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let isa = Mm_hal.Isa.x86_64 in
  let pte_roundtrip =
    Test.make ~name:"hal: x86-64 PTE encode+decode"
      (Staged.stage (fun () ->
           let pte = Mm_hal.Pte.leaf ~pfn:0x1234 ~perm:Mm_hal.Perm.rw () in
           ignore
             (Mm_hal.Isa.decode isa ~level:1
                (Mm_hal.Isa.encode isa ~level:1 pte))))
  in
  let buddy_cycle =
    Test.make ~name:"phys: buddy alloc+free"
      (Staged.stage
         (let b = Mm_phys.Buddy.create ~nframes:(1 lsl 24) in
          fun () ->
            let pfn = Mm_phys.Buddy.alloc b ~order:0 in
            Mm_phys.Buddy.free b ~pfn ~order:0))
  in
  let pt_map_unmap =
    Test.make ~name:"pt: walk_create+set+clear"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let pt = Mm_pt.Pt.create phys isa in
          let vaddr = ref 0x1000_0000 in
          fun () ->
            let node = Mm_pt.Pt.walk_create pt ~to_level:1 !vaddr in
            let idx = Mm_pt.Pt.index pt ~level:1 ~vaddr:!vaddr in
            Mm_pt.Pt.set pt node idx
              (Mm_hal.Pte.leaf ~pfn:1 ~perm:Mm_hal.Perm.rw ());
            Mm_pt.Pt.set pt node idx Mm_hal.Pte.Absent;
            vaddr := !vaddr + 4096))
  in
  let vma_find =
    Test.make ~name:"linux: vma tree find"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let t = Mm_linux.Vma.create phys in
          for i = 0 to 99 do
            ignore
              (Mm_linux.Vma.insert t
                 ~start:(0x1000_0000 + (i * 0x10000))
                 ~end_:(0x1000_0000 + (i * 0x10000) + 0x8000)
                 ~perm:Mm_hal.Perm.rw)
          done;
          fun () -> ignore (Mm_linux.Vma.find t 0x1000_4000)))
  in
  let checker_run =
    Test.make ~name:"verif: rw model check (2 cores)"
      (Staged.stage (fun () ->
           let tree = Mm_verif.Tree.create ~arity:2 ~depth:3 in
           ignore (Mm_verif.Rw_model.check ~tree ~targets:[| 1; 3 |] ())))
  in
  let sim_microop =
    Test.make ~name:"sim: one simulated mmap+touch+munmap"
      (Staged.stage (fun () ->
           let w = Mm_sim.Engine.create ~ncpus:1 in
           Mm_sim.Engine.spawn w ~cpu:0 (fun () ->
               let kernel = Cortenmm.Kernel.create ~ncpus:1 () in
               let asp =
                 Cortenmm.Addr_space.create kernel Cortenmm.Config.adv
               in
               let a =
                 match Cortenmm.Mm.mmap_r asp ~len:16384 ~perm:Mm_hal.Perm.rw () with
                 | Ok a -> a
                 | Error e -> raise (Mm_hal.Errno.Error e)
               in
               Cortenmm.Mm.touch_range asp ~addr:a ~len:16384 ~write:true;
               ignore (Cortenmm.Mm.munmap_r asp ~addr:a ~len:16384));
           Mm_sim.Engine.run w))
  in
  let maple_ops =
    Test.make ~name:"linux: maple tree insert+find+remove"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let t = Mm_linux.Vma.create phys in
          let next = ref 0x1000_0000 in
          fun () ->
            let s = !next in
            next := s + 0x10000;
            let _ = Mm_linux.Vma.insert t ~start:s ~end_:(s + 0x8000)
                      ~perm:Mm_hal.Perm.rw in
            ignore (Mm_linux.Vma.find t (s + 0x4000));
            Mm_linux.Vma.remove_node t s))
  in
  let slab_cycle =
    Test.make ~name:"phys: slab alloc+free"
      (Staged.stage
         (let phys = Mm_phys.Phys.create () in
          let c = Mm_phys.Slab.create phys ~name:"bench" ~obj_size:200 in
          fun () ->
            let h = Mm_phys.Slab.alloc c in
            Mm_phys.Slab.free c h))
  in
  let tests =
    [
      pte_roundtrip; buddy_cycle; slab_cycle; pt_map_unmap; vma_find;
      maple_ops; checker_run; sim_microop;
    ]
  in
  Printf.printf "## Bechamel — host-level timings of the substrate\n\n%!";
  List.iter
    (fun test ->
      let instances = Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-45s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    tests;
  print_newline ()

(* --flag <value> style argument, hand-rolled like the rest of this
   driver's CLI. *)
let flag_value args name =
  let rec find = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find args

module Driver = Mm_experiments.Driver
module Par = Mm_par.Par

(* Wall-clock timing (--wallclock) is host-side only: it never touches
   the simulated (deterministic) outputs. Per-entry seconds come from
   the pool ({!Par.timed}); the totals compare the *elapsed* time of a
   sequential and a parallel pass over the same entries — the quantity
   [-j N] actually improves (per-entry times barely move: each entry is
   still one world on one domain). *)
let wallclock_path = "BENCH_wallclock.json"

(* The slowest single cell: the lower bound the parallel elapsed time
   converges to as -j grows (the suite's critical path now that the big
   entries are split into per-world cells). *)
let max_cell tasks =
  List.fold_left
    (fun acc (t : Driver.task_result) ->
      List.fold_left
        (fun acc (c : Driver.cell_time) ->
          if c.Driver.ct_seconds > snd acc then
            (t.Driver.t_id ^ "/" ^ c.Driver.ct_label, c.Driver.ct_seconds)
          else acc)
        acc t.Driver.t_cells)
    ("", 0.0) tasks

let write_wallclock_json ~path ~jobs ~elapsed_seq ~elapsed_par
    ~(seq : Driver.task_result list) ~(par : Driver.task_result list) =
  let open Mm_obs in
  let speedup = if elapsed_par > 0. then elapsed_seq /. elapsed_par else 1.0 in
  let max_cell_label, max_cell_seq = max_cell seq in
  let _, max_cell_par = max_cell par in
  Json.write_file ~path
    (Json.Obj
       [
         ("jobs", Json.Int jobs);
         ( "wallclock",
           Json.List
             (List.map2
                (fun (s : Driver.task_result) (p : Driver.task_result) ->
                  Json.Obj
                    [
                      ("id", Json.String s.Driver.t_id);
                      ("seconds_seq", Json.Float s.Driver.t_seconds);
                      ("seconds_par", Json.Float p.Driver.t_seconds);
                      ( "speedup",
                        Json.Float
                          (if p.Driver.t_seconds > 0. then
                             s.Driver.t_seconds /. p.Driver.t_seconds
                           else 1.0) );
                      ( "cells",
                        Json.List
                          (List.map2
                             (fun (cs : Driver.cell_time)
                                  (cp : Driver.cell_time) ->
                               Json.Obj
                                 [
                                   ("label", Json.String cs.Driver.ct_label);
                                   ( "seconds_seq",
                                     Json.Float cs.Driver.ct_seconds );
                                   ( "seconds_par",
                                     Json.Float cp.Driver.ct_seconds );
                                 ])
                             s.Driver.t_cells p.Driver.t_cells) );
                    ])
                seq par) );
         ("total_seconds_seq", Json.Float elapsed_seq);
         ("total_seconds_par", Json.Float elapsed_par);
         ("speedup", Json.Float speedup);
         (* Critical-path summary: elapsed time at -j N is bounded below
            by the slowest single cell. *)
         ("max_cell_label", Json.String max_cell_label);
         ("max_cell_seconds_seq", Json.Float max_cell_seq);
         ("max_cell_seconds_par", Json.Float max_cell_par);
       ]);
  Printf.printf "## Wall-clock per experiment driver (-j %d)\n\n" jobs;
  Printf.printf "  %-10s %12s %12s %7s\n" "id" "seq (s)"
    (Printf.sprintf "-j%d (s)" jobs)
    "cells";
  List.iter2
    (fun (s : Driver.task_result) (p : Driver.task_result) ->
      Printf.printf "  %-10s %12.3f %12.3f %7d\n" s.Driver.t_id
        s.Driver.t_seconds p.Driver.t_seconds
        (List.length s.Driver.t_cells))
    seq par;
  Printf.printf "  %-10s %12.3f %12.3f  (elapsed; speedup %.2fx)\n" "total"
    elapsed_seq elapsed_par speedup;
  Printf.printf "  critical path: %.3fs in %s (max cell vs %.3fs total)\n"
    max_cell_seq max_cell_label elapsed_seq;
  Printf.printf "wrote wall-clock timings to %s\n%!" path

let write_results_json ~path results =
  let open Mm_obs in
  Json.write_file ~path
    (Json.Obj
       [
         ( "results",
           Json.List
             (List.map
                (fun (label, (r : Mm_workloads.Runner.result)) ->
                  Json.Obj
                    [
                      ("id", Json.String label);
                      ("ops", Json.Int r.ops);
                      ("cycles", Json.Int r.cycles);
                      ("ops_per_sec", Json.Float r.ops_per_sec);
                    ])
                results) );
       ])

(* Optional open-loop serving run (`--serve N`), appended after the
   regular experiments. Kept behind a flag — not a registry entry — so
   the default run-all output and `--list` stay byte-identical. Mix and
   policy names resolve fail-fast through the typed registry lookups. *)
let serve_path = "BENCH_serve.json"

let run_serve args ~jobs sessions =
  let die msg =
    Printf.eprintf "bench: %s\n" msg;
    exit 1
  in
  let mix =
    match Mm_serve.Mix.find
            (Option.value (flag_value args "--serve-mix") ~default:"mixed")
    with
    | Ok m -> m
    | Error msg -> die msg
  in
  let policies =
    let names =
      match flag_value args "--serve-policy" with
      | None -> Mm_serve.Serve.policy_names
      | Some s -> String.split_on_char ',' s
    in
    List.map
      (fun name ->
        match Mm_serve.Serve.find_policy name with
        | Ok p -> (name, p)
        | Error msg -> die msg)
      names
  in
  let ncpus = 8 and seed = 42 in
  Printf.printf
    "=== serve: open-loop session fleet (%d sessions, %d cpus, mix %s) ===\n\n%!"
    sessions ncpus mix.Mm_serve.Mix.name;
  let reports =
    Mm_serve.Serve.run_matrix ~jobs ~systems:Mm_workloads.System.Registry.all
      ~mix ~policies ~ncpus ~sessions ~seed ()
  in
  print_string (Mm_serve.Serve.table reports);
  Mm_serve.Serve.write_json ~path:serve_path ~mix ~ncpus ~sessions ~seed
    reports;
  Printf.printf "\nwrote serve report to %s\n\n%!" serve_path

let () =
  (* The simulator's state is mostly medium-lived (one world per
     experiment config), which the default GC pacing promotes and then
     re-marks aggressively. A larger minor heap and lazier major slices
     cut total GC work by roughly a fifth of the run time; simulated
     outputs are unaffected (the simulation is deterministic and the GC
     never observes virtual time). *)
  Gc.set
    { (Gc.get ()) with minor_heap_size = 1 lsl 20; space_overhead = 300 };
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then begin
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Mm_experiments.Registry.id
          e.Mm_experiments.Registry.title)
      Mm_experiments.Registry.all;
    Printf.printf "backends: %s\n"
      (String.concat ", " Mm_workloads.System.Registry.names)
  end
  else begin
    let only =
      Option.map (String.split_on_char ',') (flag_value args "--only")
    in
    let json_path = flag_value args "--json" in
    let trace_path = flag_value args "--trace" in
    let report = List.mem "--report" args in
    (* -j/--jobs: worker-domain count for every parallel driver below.
       Typo'd values fail fast through the typed validation; outputs are
       byte-identical for any accepted value, so the flag only ever
       changes wall-clock time. *)
    let jobs =
      let parse s =
        match Par.jobs_of_string s with
        | Ok n -> n
        | Error msg ->
          Printf.eprintf "bench: %s\n" msg;
          exit 1
      in
      match (flag_value args "--jobs", flag_value args "-j") with
      | Some s, _ | None, Some s -> parse s
      | None, None -> 1
    in
    let jobs =
      if (trace_path <> None || report) && jobs > 1 then begin
        Printf.eprintf
          "bench: --trace/--report force -j 1 (one tracing session \
           accumulates across the whole run)\n\
           %!";
        1
      end
      else jobs
    in
    if trace_path <> None || report then Mm_obs.Trace.start ();
    let entries =
      match only with
      | None -> Mm_experiments.Registry.all
      | Some ids ->
        (* Resolve every id before running anything, so a typo fails
           fast instead of silently running a subset. *)
        List.map
          (fun id ->
            match Mm_experiments.Registry.find id with
            | Ok e -> e
            | Error msg ->
              Printf.eprintf "bench: %s\n" msg;
              exit 1)
          ids
    in
    let collect = json_path <> None in
    let t0 = Unix.gettimeofday () in
    let results =
      Driver.run_entries ~emit:Driver.emit_stdout ~collect ~jobs entries
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    (match trace_path with
    | Some path ->
      let events = Mm_obs.Trace.events () in
      Mm_obs.Chrome.write ~path events;
      Printf.printf "wrote %d trace events to %s (%d dropped)\n%!"
        (List.length events) path
        (Mm_obs.Trace.dropped ())
    | None -> ());
    if report then begin
      print_string (Mm_obs.Contention.report ());
      print_newline ();
      print_string (Mm_obs.Metrics.dump ())
    end;
    if trace_path <> None || report then ignore (Mm_obs.Trace.stop ());
    (match json_path with
    | Some path ->
      write_results_json ~path
        (List.concat_map (fun t -> t.Driver.t_results) results);
      Printf.printf "wrote results to %s\n%!" path
    | None -> ());
    (match flag_value args "--serve" with
    | Some n -> run_serve args ~jobs (int_of_string n)
    | None -> ());
    if List.mem "--wallclock" args then begin
      (* Honest seq-vs-par numbers: at [-j 1] one pass is both; at
         [-j N] a second, output-suppressed sequential pass provides the
         reference timings — and doubles as a byte-identity gate over
         every entry's output and collected results. *)
      let path =
        Option.value (flag_value args "--wallclock-out")
          ~default:wallclock_path
      in
      let seq, elapsed_seq =
        if jobs = 1 then (results, elapsed)
        else begin
          let t0 = Unix.gettimeofday () in
          let seq = Driver.run_entries ~collect ~jobs:1 entries in
          let elapsed_seq = Unix.gettimeofday () -. t0 in
          List.iter2
            (fun (p : Driver.task_result) (s : Driver.task_result) ->
              if p.Driver.t_output <> s.Driver.t_output
                 || p.Driver.t_results <> s.Driver.t_results
              then begin
                Printf.eprintf
                  "bench: -j %d output for %s differs from the sequential \
                   reference — parallel merge bug\n"
                  jobs p.Driver.t_id;
                exit 1
              end)
            results seq;
          (seq, elapsed_seq)
        end
      in
      write_wallclock_json ~path ~jobs ~elapsed_seq ~elapsed_par:elapsed ~seq
        ~par:results
    end;
    if (not (List.mem "--no-bechamel" args)) && only = None then
      bechamel_suite ()
  end
