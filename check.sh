#!/bin/sh
# Repository health check: tier-1 build + tests, then a smoke run of the
# bench driver's machine-readable and tracing outputs with JSON
# validation. Exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke: fig13 --json/--trace/--wallclock =="
dune exec bench/main.exe -- --only fig13 --json /tmp/b.json \
  --trace /tmp/t.json --wallclock --wallclock-out /tmp/wallclock.json \
  --report > /tmp/check_bench.out 2>&1 \
  || { cat /tmp/check_bench.out; exit 1; }
tail -n 3 /tmp/check_bench.out

echo "== bench parallel: -j 2 stream and JSON byte-identical to -j 1 =="
dune exec bench/main.exe -- --only fig1,fig13 --json /tmp/bj.json \
  > /tmp/bench_j1.out 2>/dev/null
cp /tmp/bj.json /tmp/bj_seq.json
dune exec bench/main.exe -- --only fig1,fig13 --json /tmp/bj.json -j 2 \
  > /tmp/bench_j2.out 2>/dev/null
cmp /tmp/bench_j1.out /tmp/bench_j2.out \
  || { echo "bench: -j 2 stdout differs from -j 1"; exit 1; }
cmp /tmp/bj_seq.json /tmp/bj.json \
  || { echo "bench: -j 2 --json differs from -j 1"; exit 1; }

echo "== bench cells: reduced fig14 -j 2 stream and JSON byte-identical to -j 1 =="
# MM_FIG14_SUBSET shrinks the sweep to a seconds-long subset; unlike the
# fig1/fig13 gate above, fig14 decomposes into per-(contention, bench,
# cores, system) cells that run on separate domains at -j 2, so this
# exercises the intra-entry cell pool rather than entry-level parallelism.
MM_FIG14_SUBSET=1 dune exec bench/main.exe -- --only fig14 \
  --json /tmp/f14.json > /tmp/f14_j1.out 2>/dev/null
cp /tmp/f14.json /tmp/f14_seq.json
MM_FIG14_SUBSET=1 dune exec bench/main.exe -- --only fig14 \
  --json /tmp/f14.json -j 2 > /tmp/f14_j2.out 2>/dev/null
cmp /tmp/f14_j1.out /tmp/f14_j2.out \
  || { echo "bench: fig14 cells -j 2 stdout differs from -j 1"; exit 1; }
cmp /tmp/f14_seq.json /tmp/f14.json \
  || { echo "bench: fig14 cells -j 2 --json differs from -j 1"; exit 1; }

echo "== bench parallel: --wallclock two-pass self-gate at -j 2 =="
dune exec bench/main.exe -- --only fig13 --wallclock \
  --wallclock-out /tmp/wallclock2.json -j 2 > /dev/null 2>&1 \
  || { echo "bench: -j 2 --wallclock pass failed"; exit 1; }

echo "== bench: bad -j values fail fast =="
for bad in 0 -4 x; do
  if dune exec bench/main.exe -- --only tab2 -j "$bad" > /dev/null 2>&1; then
    echo "bench: -j $bad NOT rejected"; exit 1
  fi
done

echo "== differential oracle: seeded traces across all backends =="
dune exec bin/mmrepro.exe -- oracle --profile mixed --cpus 4 --ops 120 --seed 42
dune exec bin/mmrepro.exe -- oracle --profile churn --cpus 2 --ops 150 --seed 7
dune exec bin/mmrepro.exe -- oracle --profile forks --cpus 2 --ops 60 --seed 4
dune exec bin/mmrepro.exe -- oracle --profile mixed --cpus 4 --ops 120 \
  --seed 42 -j 2 > /tmp/oracle_j2.out
dune exec bin/mmrepro.exe -- oracle --profile mixed --cpus 4 --ops 120 \
  --seed 42 > /tmp/oracle_j1.out
cmp /tmp/oracle_j1.out /tmp/oracle_j2.out \
  || { echo "oracle: -j 2 verdict differs from -j 1"; exit 1; }

echo "== oracle: the injected COW fork mutant is caught =="
# clone_for_fork "forgets" to write-protect the parent, so a post-fork
# parent store leaks into a still-shared frame and the child's read
# observes it; the fork-tree value model must report the divergence.
if dune exec bin/mmrepro.exe -- oracle --profile forks --cpus 2 --ops 60 \
     --seed 5 --cow-mutant > /dev/null 2>&1; then
  echo "oracle: --cow-mutant NOT caught"; exit 1
fi

echo "== schedcheck: fixed-seed schedule exploration smoke (both protocols) =="
dune exec bin/mmrepro.exe -- schedcheck --protocol both --cpus 4 --ops 10 \
  --seeds 5 --seed0 1 --workload-seed 42 > /tmp/sched_j1.out
cat /tmp/sched_j1.out
dune exec bin/mmrepro.exe -- schedcheck --protocol both --cpus 4 --ops 10 \
  --seeds 5 --seed0 1 --workload-seed 42 -j 2 > /tmp/sched_j2.out
cmp /tmp/sched_j1.out /tmp/sched_j2.out \
  || { echo "schedcheck: -j 2 clean explore differs from -j 1"; exit 1; }

echo "== schedcheck: injected mutants are caught and shrink to a replay =="
if dune exec bin/mmrepro.exe -- schedcheck --protocol rw \
     --mutant rw-skip-handoff --seeds 10 --out /tmp/schedcheck_rw.sched \
     > /dev/null 2>&1; then
  echo "schedcheck: rw-skip-handoff mutant NOT caught"; exit 1
fi
if dune exec bin/mmrepro.exe -- schedcheck --protocol rw \
     --mutant rw-skip-handoff --seeds 10 --out /tmp/schedcheck_rw_j2.sched \
     -j 2 > /dev/null 2>&1; then
  echo "schedcheck: rw-skip-handoff mutant NOT caught at -j 2"; exit 1
fi
cmp /tmp/schedcheck_rw.sched /tmp/schedcheck_rw_j2.sched \
  || { echo "schedcheck: -j 2 minimal schedule differs from -j 1"; exit 1; }
if dune exec bin/mmrepro.exe -- schedcheck --protocol adv \
     --mutant rcu-no-gp --seeds 10 --out /tmp/schedcheck_rcu.sched \
     > /dev/null 2>&1; then
  echo "schedcheck: rcu-no-gp mutant NOT caught"; exit 1
fi
if dune exec bin/mmrepro.exe -- schedcheck --replay /tmp/schedcheck_rw.sched \
     > /dev/null 2>&1; then
  echo "schedcheck: minimized schedule replayed clean"; exit 1
fi

echo "== schedcheck: committed minimal schedule still reproduces =="
if dune exec bin/mmrepro.exe -- schedcheck \
     --replay test/schedules/rw_skip_handoff.sched > /dev/null 2>&1; then
  echo "schedcheck: committed schedule replayed clean"; exit 1
fi

echo "== serve smoke: open-loop session fleet, determinism =="
dune exec bin/mmrepro.exe -- serve --sessions 500 --cpus 4 \
  --json /tmp/serve1.json > /tmp/check_serve.out 2>&1 \
  || { cat /tmp/check_serve.out; exit 1; }
tail -n +3 /tmp/check_serve.out | head -n 4
dune exec bin/mmrepro.exe -- serve --sessions 500 --cpus 4 \
  --json /tmp/serve2.json -j 2 > /dev/null
cmp /tmp/serve1.json /tmp/serve2.json \
  || { echo "serve: -j 2 or equal seeds gave different JSON"; exit 1; }
if dune exec bin/mmrepro.exe -- serve --mix bogus > /dev/null 2>&1; then
  echo "serve: unknown mix NOT rejected"; exit 1
fi

echo "== serve smoke: fork_fleet mix, determinism =="
dune exec bin/mmrepro.exe -- serve --mix fork_fleet --sessions 240 --cpus 2 \
  --json /tmp/fleet1.json > /tmp/check_fleet.out 2>&1 \
  || { cat /tmp/check_fleet.out; exit 1; }
tail -n +3 /tmp/check_fleet.out | head -n 4
dune exec bin/mmrepro.exe -- serve --mix fork_fleet --sessions 240 --cpus 2 \
  --json /tmp/fleet2.json -j 2 > /dev/null
cmp /tmp/fleet1.json /tmp/fleet2.json \
  || { echo "serve: fork_fleet -j 2 or rerun gave different JSON"; exit 1; }

echo "== ext-fleet: process-fleet experiment, -j 2 byte-identical =="
dune exec bench/main.exe -- --only ext-fleet > /tmp/fleet_j1.out 2>/dev/null
dune exec bench/main.exe -- --only ext-fleet -j 2 > /tmp/fleet_j2.out 2>/dev/null
cmp /tmp/fleet_j1.out /tmp/fleet_j2.out \
  || { echo "ext-fleet: -j 2 output differs from -j 1"; exit 1; }

echo "== oracle: reclaim trace clean across backends, -j 2 identical =="
# mlock/munlock/pressure ops run on the reclaim-capable backends and are
# capability-masked elsewhere; residency is compared only under equal
# reclaim coverage while the value model is compared everywhere.
dune exec bin/mmrepro.exe -- oracle --profile reclaim --cpus 2 --ops 150 \
  --seed 7 > /tmp/reclaim_j1.out
cat /tmp/reclaim_j1.out
dune exec bin/mmrepro.exe -- oracle --profile reclaim --cpus 2 --ops 150 \
  --seed 7 -j 2 > /tmp/reclaim_j2.out
cmp /tmp/reclaim_j1.out /tmp/reclaim_j2.out \
  || { echo "oracle: reclaim -j 2 verdict differs from -j 1"; exit 1; }

echo "== oracle: the injected reclaim mutant is caught =="
# put_pages "skips the dirty writeback": the swap block is reserved but
# the token never reaches the device, so the refault after a page-out
# reads zero and the value model must report the divergence.
if dune exec bin/mmrepro.exe -- oracle --profile reclaim --cpus 2 --ops 150 \
     --seed 7 --reclaim-mutant > /dev/null 2>&1; then
  echo "oracle: --reclaim-mutant NOT caught"; exit 1
fi

echo "== serve smoke: reclaim_storm mix, determinism =="
dune exec bin/mmrepro.exe -- serve --mix reclaim_storm --sessions 240 --cpus 2 \
  --json /tmp/storm1.json > /tmp/check_storm.out 2>&1 \
  || { cat /tmp/check_storm.out; exit 1; }
tail -n +3 /tmp/check_storm.out | head -n 4
dune exec bin/mmrepro.exe -- serve --mix reclaim_storm --sessions 240 --cpus 2 \
  --json /tmp/storm2.json -j 2 > /dev/null
cmp /tmp/storm1.json /tmp/storm2.json \
  || { echo "serve: reclaim_storm -j 2 or rerun gave different JSON"; exit 1; }

echo "== fig1 golden digest: riders charge zero cycles when off =="
# Re-run the pinned digest test by name: the daemon-off default world
# must stay bit-identical to the seed across every feature rider.
dune exec test/test_workloads.exe -- test golden > /tmp/check_golden.out 2>&1 \
  || { cat /tmp/check_golden.out; exit 1; }
tail -n 2 /tmp/check_golden.out

echo "== validate JSON outputs =="
dune exec bin/jsoncheck.exe -- /tmp/b.json
dune exec bin/jsoncheck.exe -- --chrome /tmp/t.json
dune exec bin/jsoncheck.exe -- --wallclock /tmp/wallclock.json
dune exec bin/jsoncheck.exe -- --wallclock /tmp/wallclock2.json
dune exec bin/jsoncheck.exe -- --wallclock BENCH_wallclock.json
dune exec bin/jsoncheck.exe -- /tmp/serve1.json
dune exec bin/jsoncheck.exe -- /tmp/fleet1.json
dune exec bin/jsoncheck.exe -- /tmp/storm1.json

echo "== wall-clock summary =="
grep -A 100 '## Wall-clock per experiment driver' /tmp/check_bench.out \
  | sed -n '2,20p'

echo "All checks passed."
