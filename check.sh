#!/bin/sh
# Repository health check: tier-1 build + tests, then a smoke run of the
# bench driver's machine-readable and tracing outputs with JSON
# validation. Exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke: fig13 --json/--trace/--wallclock =="
dune exec bench/main.exe -- --only fig13 --json /tmp/b.json \
  --trace /tmp/t.json --wallclock --report > /tmp/check_bench.out 2>&1 \
  || { cat /tmp/check_bench.out; exit 1; }
tail -n 3 /tmp/check_bench.out

echo "== differential oracle: seeded traces across all backends =="
dune exec bin/mmrepro.exe -- oracle --profile mixed --cpus 4 --ops 120 --seed 42
dune exec bin/mmrepro.exe -- oracle --profile churn --cpus 2 --ops 150 --seed 7

echo "== validate JSON outputs =="
dune exec bin/jsoncheck.exe -- /tmp/b.json
dune exec bin/jsoncheck.exe -- --chrome /tmp/t.json
dune exec bin/jsoncheck.exe -- BENCH_wallclock.json

echo "== wall-clock summary =="
grep -A 100 '## Wall-clock per experiment driver' /tmp/check_bench.out \
  | sed -n '2,20p'

echo "All checks passed."
