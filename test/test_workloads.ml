(* Tests for the workload layer: the system façade, allocator models,
   microbenchmark harness, application models and the LMbench drivers —
   smoke tests for every figure's machinery plus directional assertions
   (what must scale, what must serialize). *)

module Engine = Mm_sim.Engine
module System = Mm_workloads.System
module Micro = Mm_workloads.Micro
module Apps = Mm_workloads.Apps
module Alloc_model = Mm_workloads.Alloc_model
module Runner = Mm_workloads.Runner
module Perm = Mm_hal.Perm

let check = Alcotest.check

let corten_adv = System.Corten Cortenmm.Config.adv

let all_kinds =
  [ System.Linux; System.Radixvm; System.Nros; corten_adv;
    System.Corten Cortenmm.Config.rw ]

(* -- Runner -- *)

let test_barrier_phases () =
  let order = Buffer.create 16 in
  let cycles =
    Runner.run_phases ~ncpus:3
      ~setup:(fun () ->
        Engine.tick 1_000;
        Buffer.add_char order 's')
      ~prep:(fun _ ->
        Engine.tick 100;
        Buffer.add_char order 'p')
      ~measure:(fun _ ->
        Engine.tick 500;
        Buffer.add_char order 'm')
      ()
  in
  check Alcotest.string "phase order" "spppmmm" (Buffer.contents order);
  (* Measured interval covers only the measure phase. *)
  check Alcotest.bool (Printf.sprintf "measured %d" cycles) true
    (cycles >= 500 && cycles < 1_000)

(* -- System façade -- *)

let test_system_smoke () =
  List.iter
    (fun kind ->
      let sys = System.make kind ~ncpus:2 in
      let cycles =
        Runner.run_phases ~ncpus:2 ()
          ~measure:(fun _ ->
            let a = System.mmap_exn sys ~len:16384 ~perm:Perm.rw () in
            (if System.demand_paging sys then
               System.touch_range_exn sys ~addr:a ~len:16384 ~write:true);
            System.munmap_exn sys ~addr:a ~len:16384)
      in
      check Alcotest.bool
        (sys.System.name ^ " does work")
        true (cycles > 0);
      let m = System.mem_stats sys in
      check Alcotest.bool (sys.System.name ^ " pt bytes sane") true
        (m.System.pt_bytes >= 0))
    all_kinds

(* -- Allocator models -- *)

let with_corten_sys f =
  let sys = System.make corten_adv ~ncpus:1 in
  let out = ref None in
  let w = Engine.create ~ncpus:1 in
  Engine.spawn w ~cpu:0 (fun () -> out := Some (f sys));
  Engine.run w;
  Option.get !out

let test_ptmalloc_returns_memory () =
  let mmaps, munmaps =
    with_corten_sys (fun sys ->
        let a = Alloc_model.create ~kind:Alloc_model.Ptmalloc ~sys in
        for _ = 1 to 10 do
          let big = Alloc_model.alloc a ~size:(256 * 1024) in
          Alloc_model.free a ~addr:big ~size:(256 * 1024)
        done;
        (Alloc_model.mmap_calls a, Alloc_model.munmap_calls a))
  in
  (* Large blocks are mapped and unmapped every time. *)
  check Alcotest.int "10 mmaps" 10 mmaps;
  check Alcotest.int "10 munmaps" 10 munmaps

let test_tcmalloc_caches () =
  let mmaps, munmaps, cached =
    with_corten_sys (fun sys ->
        let a = Alloc_model.create ~kind:Alloc_model.Tcmalloc ~sys in
        for _ = 1 to 10 do
          let big = Alloc_model.alloc a ~size:(256 * 1024) in
          Alloc_model.free a ~addr:big ~size:(256 * 1024)
        done;
        (Alloc_model.mmap_calls a, Alloc_model.munmap_calls a,
         Alloc_model.cached_bytes a))
  in
  (* Only the first allocation maps; frees go to the thread cache. *)
  check Alcotest.int "1 mmap" 1 mmaps;
  check Alcotest.int "0 munmaps" 0 munmaps;
  check Alcotest.int "one block cached" (256 * 1024) cached

let test_ptmalloc_arena_small () =
  let mmaps =
    with_corten_sys (fun sys ->
        let a = Alloc_model.create ~kind:Alloc_model.Ptmalloc ~sys in
        (* 16 x 8 KiB fit one 1 MiB arena: one mmap total. *)
        for _ = 1 to 16 do
          ignore (Alloc_model.alloc a ~size:(8 * 1024))
        done;
        Alloc_model.mmap_calls a)
  in
  check Alcotest.int "one arena mmap" 1 mmaps

(* -- Microbenchmarks -- *)

let test_micro_all_cells_smoke () =
  List.iter
    (fun kind ->
      List.iter
        (fun bench ->
          List.iter
            (fun contention ->
              match
                Micro.run ~kind ~ncpus:2 ~bench ~contention ~iters:5 ()
              with
              | Some r ->
                check Alcotest.bool
                  (Printf.sprintf "%s/%s/%s positive"
                     (System.kind_name kind) (Micro.bench_name bench)
                     (Micro.contention_name contention))
                  true
                  (r.Runner.ops_per_sec > 0.0)
              | None ->
                check Alcotest.bool "unsupported only for nros" true
                  (kind = System.Nros))
            [ Micro.Low; Micro.High ])
        Micro.all_benches)
    all_kinds

let test_linux_mmap_flat_corten_scales () =
  let tp kind ncpus =
    match
      Micro.run ~kind ~ncpus ~bench:Micro.Mmap ~contention:Micro.Low ~iters:30
        ()
    with
    | Some r -> r.Runner.ops_per_sec
    | None -> nan
  in
  let linux_speedup = tp System.Linux 16 /. tp System.Linux 1 in
  let corten_speedup = tp corten_adv 16 /. tp corten_adv 1 in
  check Alcotest.bool
    (Printf.sprintf "linux mmap near-flat (%.1fx)" linux_speedup)
    true (linux_speedup < 3.0);
  check Alcotest.bool
    (Printf.sprintf "corten mmap scales (%.1fx)" corten_speedup)
    true
    (corten_speedup > 8.0)

let test_fig13_directions () =
  (* The paper's single-thread directions: corten loses only mmap. The
     iteration count matches fig13's (the mmap cost is bimodal: every
     128th region allocates a fresh leaf PT page). *)
  let tp kind bench =
    match Micro.run ~kind ~ncpus:1 ~bench ~contention:Micro.Low ~iters:200 () with
    | Some r -> r.Runner.ops_per_sec
    | None -> nan
  in
  List.iter
    (fun bench ->
      let l = tp System.Linux bench and c = tp corten_adv bench in
      match bench with
      | Micro.Mmap ->
        check Alcotest.bool "corten loses mmap" true (c < l)
      | _ ->
        check Alcotest.bool
          (Micro.bench_name bench ^ ": corten wins")
          true (c > l))
    Micro.all_benches

(* -- Applications -- *)

let test_jvm_lower_on_corten () =
  let linux = Apps.jvm_thread_creation ~kind:System.Linux ~nthreads:16 () in
  let corten = Apps.jvm_thread_creation ~kind:corten_adv ~nthreads:16 () in
  check Alcotest.bool
    (Printf.sprintf "corten faster (linux %d, corten %d)" linux corten)
    true (corten < linux)

let test_metis_scales () =
  let r1, _ = Apps.metis ~kind:corten_adv ~ncpus:1 () in
  let r8, _ = Apps.metis ~kind:corten_adv ~ncpus:8 () in
  check Alcotest.bool
    (Printf.sprintf "metis scales (%.0f -> %.0f)" r1.Runner.ops_per_sec
       r8.Runner.ops_per_sec)
    true
    (r8.Runner.ops_per_sec > 3.0 *. r1.Runner.ops_per_sec)

let test_dedup_allocator_effect () =
  (* With ptmalloc, Linux trails corten; with tcmalloc the gap narrows
     (the paper's Fig 17 story). *)
  let tput kind alloc_kind =
    let r, _ = Apps.dedup ~kind ~alloc_kind ~ncpus:16 ~iters_per_thread:10 () in
    r.Runner.ops_per_sec
  in
  let l_pt = tput System.Linux Alloc_model.Ptmalloc in
  let c_pt = tput corten_adv Alloc_model.Ptmalloc in
  let l_tc = tput System.Linux Alloc_model.Tcmalloc in
  let c_tc = tput corten_adv Alloc_model.Tcmalloc in
  check Alcotest.bool
    (Printf.sprintf "ptmalloc: corten wins (%.0f vs %.0f)" c_pt l_pt)
    true (c_pt > l_pt *. 1.2);
  check Alcotest.bool
    (Printf.sprintf "tcmalloc narrows the gap (%.2f vs %.2f)" (c_tc /. l_tc)
       (c_pt /. l_pt))
    true
    (c_tc /. l_tc < c_pt /. l_pt)

let test_parsec_parity () =
  let p = List.hd Apps.parsec_others in
  let l = Apps.run_parsec ~kind:System.Linux ~ncpus:4 p in
  let c = Apps.run_parsec ~kind:corten_adv ~ncpus:4 p in
  let ratio = c.Runner.ops_per_sec /. l.Runner.ops_per_sec in
  check Alcotest.bool
    (Printf.sprintf "parity on %s (%.3f)" p.Apps.p_name ratio)
    true
    (ratio > 0.9 && ratio < 1.1)

(* -- LMbench -- *)

let test_lmbench_directions () =
  let module L = Mm_workloads.Lmbench in
  let linux b = L.run ~kind:`Linux ~bench:b ~iters:4 () in
  let corten b = L.run ~kind:(`Corten Cortenmm.Config.adv) ~bench:b ~iters:4 () in
  (* fork: corten slower (walks page tables to enumerate the space). *)
  let lf = linux L.Fork and cf = corten L.Fork in
  check Alcotest.bool
    (Printf.sprintf "fork: corten slower (linux %d, corten %d)" lf cf)
    true (cf > lf);
  (* fork+exec: corten recovers (faster faults dominate). *)
  let lfe = linux L.Fork_exec and cfe = corten L.Fork_exec in
  let fork_gap = float_of_int cf /. float_of_int lf in
  let fe_gap = float_of_int cfe /. float_of_int lfe in
  check Alcotest.bool
    (Printf.sprintf "fork+exec narrows the gap (%.2f -> %.2f)" fork_gap fe_gap)
    true (fe_gap < fork_gap)

(* -- Traces -- *)

module Trace = Mm_workloads.Trace

let test_trace_roundtrip () =
  let t = Trace.generate ~profile:Trace.Mixed ~ncpus:3 ~ops_per_cpu:50 ~seed:7 in
  let path = Filename.temp_file "mmtrace" ".txt" in
  Trace.save t path;
  let t' = Trace.load path in
  Sys.remove path;
  check Alcotest.int "ncpus preserved" t.Trace.ncpus t'.Trace.ncpus;
  check Alcotest.bool "entries preserved" true (t.Trace.entries = t'.Trace.entries)

let test_trace_parse_errors () =
  let rejects name s =
    Alcotest.(check bool)
      (name ^ " raises") true
      (try
         ignore (Trace.entry_of_string ~line:3 s);
         false
       with Trace.Parse_error (3, _) -> true)
  in
  rejects "unknown op" "0 frobnicate 1";
  rejects "missing fields" "0 mmap 1";
  rejects "trailing garbage" "0 munmap 1 2";
  rejects "bad integer" "x mmap 1 4096 rw";
  rejects "bad protection" "0 mmap 1 4096 rx";
  rejects "bad access" "0 touch 1 0 x";
  rejects "negative cpu" "-1 munmap 1";
  rejects "cpu out of range" "70000 munmap 1";
  rejects "empty line" "";
  rejects "fork of the root" "0 fork 0";
  rejects "negative fork child" "0 fork -2";
  rejects "bad process id" "0 exit @x";
  rejects "negative process id" "0 munmap 1 @-1";
  rejects "exit with arguments" "0 exit 1"

(* Every line the serializer emits must parse back to the same entry. *)
let test_trace_line_roundtrip () =
  let t = Trace.generate ~profile:Trace.Mixed ~ncpus:4 ~ops_per_cpu:60 ~seed:13 in
  Array.iter
    (fun e ->
      let s = Trace.entry_to_string e in
      Alcotest.(check bool)
        (s ^ " roundtrips") true
        (Trace.entry_of_string ~line:1 s = e))
    t.Trace.entries

let test_trace_generate_deterministic () =
  let a = Trace.generate ~profile:Trace.Churn ~ncpus:2 ~ops_per_cpu:40 ~seed:5 in
  let b = Trace.generate ~profile:Trace.Churn ~ncpus:2 ~ops_per_cpu:40 ~seed:5 in
  check Alcotest.bool "same seed, same trace" true (a.Trace.entries = b.Trace.entries)

let test_trace_replay_consistent_across_systems () =
  (* The same trace must perform the same operations everywhere — only
     the time differs. *)
  let t = Trace.generate ~profile:Trace.Mixed ~ncpus:4 ~ops_per_cpu:60 ~seed:11 in
  let stats =
    List.map (fun kind -> Trace.replay ~kind t)
      [ System.Linux; corten_adv; System.Radixvm ]
  in
  match stats with
  | a :: rest ->
    List.iter
      (fun b ->
        check Alcotest.int "same mmaps" a.Trace.mmaps b.Trace.mmaps;
        check Alcotest.int "same munmaps" a.Trace.munmaps b.Trace.munmaps;
        check Alcotest.int "same touches" a.Trace.touches b.Trace.touches)
      rest
  | [] -> assert false

let test_trace_replay_corten_faster_on_churn () =
  let t = Trace.generate ~profile:Trace.Churn ~ncpus:8 ~ops_per_cpu:80 ~seed:3 in
  let linux = Trace.replay ~kind:System.Linux t in
  let corten = Trace.replay ~kind:corten_adv t in
  check Alcotest.bool
    (Printf.sprintf "corten faster on churn (%.0f vs %.0f)"
       corten.Trace.result.Runner.ops_per_sec
       linux.Trace.result.Runner.ops_per_sec)
    true
    (corten.Trace.result.Runner.ops_per_sec
    > linux.Trace.result.Runner.ops_per_sec)

(* Format v2: the "@<proc>" suffix appears exactly on non-root entries
   (so pre-fork traces round-trip byte-identically) and every Forks line
   — fork, exit, write, read included — parses back to itself. *)
let test_trace_forks_roundtrip () =
  let t = Trace.generate ~profile:Trace.Forks ~ncpus:3 ~ops_per_cpu:80 ~seed:21 in
  let has p = Array.exists p t.Trace.entries in
  check Alcotest.bool "generator forks" true
    (has (fun e -> match e.Trace.op with Trace.T_fork _ -> true | _ -> false));
  check Alcotest.bool "generator writes" true
    (has (fun e -> match e.Trace.op with Trace.T_write _ -> true | _ -> false));
  check Alcotest.bool "non-root processes execute ops" true
    (has (fun e -> e.Trace.proc <> 0));
  Array.iter
    (fun e ->
      let s = Trace.entry_to_string e in
      check Alcotest.bool
        (s ^ " mentions @ iff non-root")
        (e.Trace.proc <> 0) (String.contains s '@');
      check Alcotest.bool (s ^ " roundtrips") true
        (Trace.entry_of_string ~line:1 s = e))
    t.Trace.entries;
  let path = Filename.temp_file "mmtrace" ".txt" in
  Trace.save t path;
  let t' = Trace.load path in
  Sys.remove path;
  check Alcotest.bool "file roundtrip" true (t.Trace.entries = t'.Trace.entries)

(* Fork-tree replay: the same Forks trace performs the same process
   lifecycle everywhere — identical fork counts and touch totals, every
   backend tearing the tree down without leaking a divergence. *)
let test_trace_forks_replay_consistent () =
  let t = Trace.generate ~profile:Trace.Forks ~ncpus:2 ~ops_per_cpu:80 ~seed:17 in
  let stats =
    List.map (fun kind -> Trace.replay ~kind t)
      [ System.Linux; corten_adv; System.Radixvm; System.Nros ]
  in
  match stats with
  | a :: rest ->
    check Alcotest.bool "trace has forks" true (a.Trace.forks > 0);
    List.iter
      (fun b ->
        check Alcotest.int "same forks" a.Trace.forks b.Trace.forks;
        check Alcotest.int "same mmaps" a.Trace.mmaps b.Trace.mmaps;
        check Alcotest.int "same munmaps" a.Trace.munmaps b.Trace.munmaps;
        check Alcotest.int "same touches" a.Trace.touches b.Trace.touches;
        check Alcotest.int "same denials" a.Trace.faults_denied
          b.Trace.faults_denied)
      rest
  | [] -> assert false

(* -- Memory accounting across systems (fig22 machinery) -- *)

let test_radixvm_memory_overhead () =
  let pt_of kind =
    let _, (sys : System.t) = Apps.metis ~kind ~ncpus:8 () in
    (System.mem_stats sys).System.pt_bytes
  in
  let corten = pt_of corten_adv in
  let radix = pt_of System.Radixvm in
  check Alcotest.bool
    (Printf.sprintf "radixvm replicates PTs (%d vs %d)" radix corten)
    true
    (radix > 2 * corten)

(* -- Golden determinism of the headline experiment --

   The simulator is deterministic by design: fig1's result table must be
   bit-for-bit stable across runs, hosts and refactors. Any change to the
   digest below means simulated behaviour changed — intended changes must
   update the constant (and say so in review); performance work must not. *)

let fig1_golden_digest = "410ea96e0ba6e825b0134f3917bd1c6e"

let test_fig1_golden_digest () =
  let e =
    match Mm_experiments.Registry.find "fig1" with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  Mm_workloads.Runner.start_collecting ();
  Mm_workloads.Runner.set_label e.Mm_experiments.Registry.id;
  Mm_experiments.Registry.run_entry e;
  let results = Mm_workloads.Runner.stop_collecting () in
  check Alcotest.bool "fig1 produced results" true (results <> []);
  let buf = Buffer.create 1024 in
  List.iter
    (fun (label, (r : Runner.result)) ->
      Printf.bprintf buf "%s %d %d %.6f\n" label r.Runner.ops r.Runner.cycles
        r.Runner.ops_per_sec)
    results;
  check Alcotest.string "fig1 result-table digest" fig1_golden_digest
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

(* The same digest must come out of the parallel driver: sharding
   experiments across domains may never change simulated results. Two
   copies of fig1 on two domains also checks runs are independent of
   which domain hosts them. *)
let test_fig1_golden_digest_parallel () =
  let e =
    match Mm_experiments.Registry.find "fig1" with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  let tasks =
    Mm_experiments.Driver.run_entries ~collect:true ~jobs:2 [ e; e ]
  in
  List.iteri
    (fun i (t : Mm_experiments.Driver.task_result) ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun (label, (r : Runner.result)) ->
          Printf.bprintf buf "%s %d %d %.6f\n" label r.Runner.ops
            r.Runner.cycles r.Runner.ops_per_sec)
        t.Mm_experiments.Driver.t_results;
      check Alcotest.string
        (Printf.sprintf "fig1 digest, parallel task %d" i)
        fig1_golden_digest
        (Digest.to_hex (Digest.string (Buffer.contents buf))))
    tasks

let () =
  Alcotest.run "mm_workloads"
    [
      ("runner", [ Alcotest.test_case "barrier phases" `Quick test_barrier_phases ]);
      ("system", [ Alcotest.test_case "smoke all kinds" `Quick test_system_smoke ]);
      ( "allocators",
        [
          Alcotest.test_case "ptmalloc returns memory" `Quick
            test_ptmalloc_returns_memory;
          Alcotest.test_case "tcmalloc caches" `Quick test_tcmalloc_caches;
          Alcotest.test_case "ptmalloc arenas" `Quick test_ptmalloc_arena_small;
        ] );
      ( "micro",
        [
          Alcotest.test_case "all cells smoke" `Slow test_micro_all_cells_smoke;
          Alcotest.test_case "linux flat, corten scales" `Quick
            test_linux_mmap_flat_corten_scales;
          Alcotest.test_case "fig13 directions" `Quick test_fig13_directions;
        ] );
      ( "apps",
        [
          Alcotest.test_case "jvm threads" `Quick test_jvm_lower_on_corten;
          Alcotest.test_case "metis scales" `Quick test_metis_scales;
          Alcotest.test_case "dedup allocator effect" `Slow
            test_dedup_allocator_effect;
          Alcotest.test_case "parsec parity" `Quick test_parsec_parity;
        ] );
      ( "lmbench",
        [ Alcotest.test_case "directions" `Quick test_lmbench_directions ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
          Alcotest.test_case "line roundtrip" `Quick test_trace_line_roundtrip;
          Alcotest.test_case "deterministic gen" `Quick
            test_trace_generate_deterministic;
          Alcotest.test_case "consistent across systems" `Quick
            test_trace_replay_consistent_across_systems;
          Alcotest.test_case "corten faster on churn" `Quick
            test_trace_replay_corten_faster_on_churn;
          Alcotest.test_case "forks roundtrip" `Quick
            test_trace_forks_roundtrip;
          Alcotest.test_case "forks replay consistent" `Quick
            test_trace_forks_replay_consistent;
        ] );
      ( "memory",
        [
          Alcotest.test_case "radixvm overhead" `Quick
            test_radixvm_memory_overhead;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fig1 digest" `Slow test_fig1_golden_digest;
          Alcotest.test_case "fig1 digest via parallel driver" `Slow
            test_fig1_golden_digest_parallel;
        ] );
    ]
