(* Tests for the CortenMM core: the transactional interface (query / map /
   mark / unmap / protect), the two locking protocols, on-demand paging,
   COW fork, swapping, file mappings, huge pages, and functional
   correctness against a flat reference model. *)

open Cortenmm
module Engine = Mm_sim.Engine
module Perm = Mm_hal.Perm

let check = Alcotest.check
let page = 4096
let kib n = n * 1024
let mib n = n * 1024 * 1024

(* Run [f] on cpu 0 of a fresh simulation and return its result. *)
let in_sim ?(ncpus = 1) f =
  let w = Engine.create ~ncpus in
  let result = ref None in
  Engine.spawn w ~cpu:0 (fun () -> result := Some (f ()));
  Engine.run w;
  match !result with Some v -> v | None -> Alcotest.fail "fiber died"

let make_asp ?(ncpus = 1) ?(cfg = Config.adv) () =
  let kernel = Kernel.create ~ncpus () in
  (kernel, Addr_space.create kernel cfg)

let both_protocols f () =
  List.iter (fun cfg -> f cfg) [ Config.adv; Config.rw ]

(* -- Basic transactional interface -- *)

let test_mmap_query cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + kib 16) (fun c ->
          for i = 0 to 3 do
            match Addr_space.query c (addr + (i * page)) with
            | Status.Private_anon p ->
              check Alcotest.bool "perm rw" true (Perm.equal p Perm.rw)
            | s -> Alcotest.failf "expected anon mark, got %s" (Status.to_string s)
          done))

let test_touch_maps cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + kib 16) (fun c ->
          (match Addr_space.query c addr with
          | Status.Mapped { perm; _ } ->
            check Alcotest.bool "mapped writable" true perm.Perm.write
          | s -> Alcotest.failf "expected mapped, got %s" (Status.to_string s));
          match Addr_space.query c (addr + page) with
          | Status.Private_anon _ -> ()
          | s ->
            Alcotest.failf "untouched page should stay allocated, got %s"
              (Status.to_string s)))

let test_fault_on_unmapped cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      match Mm.page_fault asp ~vaddr:0x5000_0000 ~write:false with
      | Mm.Sigsegv -> ()
      | Mm.Handled -> Alcotest.fail "fault on unmapped must be SIGSEGV")

let test_touch_raises_on_invalid cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      match Mm.touch asp ~vaddr:0x5000_0000 ~write:false with
      | () -> Alcotest.fail "expected Mm.Fault"
      | exception Mm.Fault v -> check Alcotest.int "fault addr" 0x5000_0000 v)

let test_munmap_clears cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr ~len:(kib 16) ~write:true;
      Mm_compat.munmap asp ~addr ~len:(kib 16);
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + kib 16) (fun c ->
          for i = 0 to 3 do
            match Addr_space.query c (addr + (i * page)) with
            | Status.Invalid -> ()
            | s -> Alcotest.failf "expected invalid, got %s" (Status.to_string s)
          done);
      Addr_space.check_well_formed asp)

let test_munmap_frees_frames cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let anon () =
        (Mm_phys.Phys.usage kernel.Kernel.phys).Mm_phys.Phys.anon_bytes
      in
      let before = anon () in
      let addr = Mm_compat.mmap asp ~len:(kib 64) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr ~len:(kib 64) ~write:true;
      check Alcotest.bool "frames grew" true (anon () > before);
      Mm_compat.munmap asp ~addr ~len:(kib 64);
      (* All anonymous frames are released. The covering PT page itself
         (and its ancestors, and the slab-cached metadata frames)
         legitimately survive: removing the covering page would require
         locking its parent, which the transaction does not hold — the
         paper's NO_NEED_TO_REMOVE_PTS case (Fig 6 L27). *)
      check Alcotest.int "anon frames released" before (anon ()))

let test_pt_pages_on_demand cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      (* A 2 MiB-aligned mark should live in an upper-level slot: root +
         L3 + L2, no L1 page. *)
      let addr = Mm_compat.mmap asp ~addr:(mib 512) ~len:(mib 2) ~perm:Perm.rw () in
      check Alcotest.int "3 PT pages after aligned mmap" 3
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp));
      (* Faulting one page materializes exactly one L1 page. *)
      Mm.touch asp ~vaddr:addr ~write:false;
      check Alcotest.int "4 PT pages after one fault" 4
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp));
      Addr_space.check_well_formed asp)

let test_mark_upper_level cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      (* 1 GiB-aligned 1 GiB mapping: the mark sits in one L3 slot. *)
      let addr = mib 1024 in
      let _ = Mm_compat.mmap asp ~addr ~len:(mib 1024) ~perm:Perm.r () in
      check Alcotest.int "2 PT pages for 1GiB mark" 2
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp));
      (* Unmapping a 4 KiB page in the middle splits the mark downward. *)
      Mm_compat.munmap asp ~addr:(addr + mib 3) ~len:page;
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + mib 1024) (fun c ->
          (match Addr_space.query c (addr + mib 3) with
          | Status.Invalid -> ()
          | s -> Alcotest.failf "hole should be invalid, got %s" (Status.to_string s));
          match Addr_space.query c (addr + mib 3 + page) with
          | Status.Private_anon _ -> ()
          | s -> Alcotest.failf "neighbour survives, got %s" (Status.to_string s));
      Addr_space.check_well_formed asp)

let test_mprotect cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      Mm_compat.mprotect asp ~addr ~len:(kib 16) ~perm:Perm.r;
      (match Mm.page_fault asp ~vaddr:addr ~write:true with
      | Mm.Sigsegv -> ()
      | Mm.Handled -> Alcotest.fail "write to read-only page must fault");
      Mm_compat.mprotect asp ~addr ~len:(kib 16) ~perm:Perm.rw;
      Mm.touch asp ~vaddr:addr ~write:true;
      Addr_space.check_well_formed asp)

(* -- Values, COW, fork -- *)

let test_write_read_value cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr ~value:42;
      check Alcotest.int "read back" 42 (Mm.read_value asp ~vaddr:addr))

let test_fork_cow cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr ~value:42;
      let child = Mm.fork asp in
      (* Child observes the parent's data. *)
      check Alcotest.int "child reads parent data" 42
        (Mm.read_value child ~vaddr:addr);
      (* Child write breaks COW: parent unaffected. *)
      Mm.write_value child ~vaddr:addr ~value:7;
      check Alcotest.int "child sees own write" 7
        (Mm.read_value child ~vaddr:addr);
      check Alcotest.int "parent unchanged" 42 (Mm.read_value asp ~vaddr:addr);
      (* Parent write now finds map_count = 1: no copy, just re-enable. *)
      let frames_before = Mm_phys.Phys.allocated_frames kernel.Kernel.phys in
      Mm.write_value asp ~vaddr:addr ~value:43;
      check Alcotest.int "no copy when sole owner" frames_before
        (Mm_phys.Phys.allocated_frames kernel.Kernel.phys);
      check Alcotest.int "parent sees own write" 43
        (Mm.read_value asp ~vaddr:addr);
      Addr_space.check_well_formed asp;
      Addr_space.check_well_formed child)

let test_fork_unfaulted_marks cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 64) ~perm:Perm.rw () in
      let child = Mm.fork asp in
      (* Virtually allocated (never faulted) regions are inherited. *)
      Mm.write_value child ~vaddr:(addr + kib 32) ~value:9;
      check Alcotest.int "child faults inherited mark" 9
        (Mm.read_value child ~vaddr:(addr + kib 32)))

let test_fork_shared_anon cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let shm = File.shm ~size:(kib 16) in
      let addr =
        Mm_compat.mmap asp ~backing:(Mm.Shared (shm, 0)) ~len:(kib 16) ~perm:Perm.rw ()
      in
      Mm.write_value asp ~vaddr:addr ~value:5;
      let child = Mm.fork asp in
      (* Shared memory does not COW: child writes are visible to parent. *)
      Mm.write_value child ~vaddr:addr ~value:6;
      check Alcotest.int "parent sees shared write" 6
        (Mm.read_value asp ~vaddr:addr);
      ignore kernel)

let test_destroy cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let anon () =
        (Mm_phys.Phys.usage kernel.Kernel.phys).Mm_phys.Phys.anon_bytes
      in
      let base = anon () in
      let addr = Mm_compat.mmap asp ~len:(mib 1) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr ~len:(mib 1) ~write:true;
      Mm.destroy asp;
      check Alcotest.int "all anon frames released" base (anon ());
      check Alcotest.int "only root PT page left" 1
        (Mm_pt.Pt.pt_page_count (Addr_space.pt asp)))

(* -- Backing objects: the shadow-chain story behind COW fork -- *)

(* Both sides of a fork are write-protected and COW-marked on every
   private resident page — the x86 mechanism the object layer rides. *)
let test_fork_wp_both_sides cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr ~len:(kib 16) ~write:true;
      let child = Mm.fork asp in
      let assert_cow name sp =
        Addr_space.with_lock sp ~lo:addr ~hi:(addr + kib 16) (fun c ->
            for i = 0 to 3 do
              match Addr_space.query c (addr + (i * page)) with
              | Status.Mapped { perm; _ } ->
                check Alcotest.bool
                  (Printf.sprintf "%s page %d write-protected" name i)
                  false perm.Perm.write;
                check Alcotest.bool
                  (Printf.sprintf "%s page %d COW-marked" name i)
                  true perm.Perm.cow
              | s ->
                Alcotest.failf "%s: expected mapped, got %s" name
                  (Status.to_string s)
            done)
      in
      assert_cow "parent" asp;
      assert_cow "child" child;
      Mm.destroy child)

(* fork pushes one shadow per side over a shared base holding the
   pre-fork records; the sibling's exit collapses the base into the
   survivor, records and all, refcount back to a depth-one chain. *)
let test_fork_chain_collapse cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr ~value:1;
      check Alcotest.int "pre-fork depth 1" 1
        (Vm_object.depth (Addr_space.vm_object asp));
      let child = Mm.fork asp in
      let ptop = Addr_space.vm_object asp
      and ctop = Addr_space.vm_object child in
      check Alcotest.int "parent depth 2" 2 (Vm_object.depth ptop);
      check Alcotest.int "child depth 2" 2 (Vm_object.depth ctop);
      let base =
        match Vm_object.parent ptop with
        | Some b -> b
        | None -> Alcotest.fail "parent shadow has no base"
      in
      (match Vm_object.parent ctop with
      | Some b -> check Alcotest.bool "one shared base" true (b == base)
      | None -> Alcotest.fail "child shadow has no base");
      check Alcotest.int "base referenced by both shadows" 2
        (Vm_object.refs base);
      check Alcotest.int "base owns the pre-fork record" 1
        (Vm_object.page_slots base);
      check Alcotest.int "parent shadow starts empty" 0
        (Vm_object.page_slots ptop);
      Mm.destroy child;
      check Alcotest.bool "base collapsed (dead)" true (Vm_object.is_dead base);
      check Alcotest.int "parent back on depth 1" 1
        (Vm_object.depth (Addr_space.vm_object asp));
      check Alcotest.int "record migrated into the survivor" 1
        (Vm_object.page_slots (Addr_space.vm_object asp));
      check Alcotest.int "data intact across the collapse" 1
        (Mm.read_value asp ~vaddr:addr))

(* Parent and child diverge at exactly the pages someone wrote after the
   fork — everything else stays shared and equal, and only the written
   page is recorded privately in the writer's shadow. *)
let test_fork_divergence_only_at_writes cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      for i = 0 to 3 do
        Mm.write_value asp ~vaddr:(addr + (i * page)) ~value:(100 + i)
      done;
      let child = Mm.fork asp in
      Mm.write_value child ~vaddr:(addr + page) ~value:777;
      for i = 0 to 3 do
        let p = Mm.read_value asp ~vaddr:(addr + (i * page))
        and c = Mm.read_value child ~vaddr:(addr + (i * page)) in
        if i = 1 then begin
          check Alcotest.int "parent keeps the pre-fork value" 101 p;
          check Alcotest.int "child sees its own write" 777 c
        end
        else check Alcotest.int (Printf.sprintf "page %d identical" i) p c
      done;
      check Alcotest.int "exactly one private record in the child" 1
        (Vm_object.page_slots (Addr_space.vm_object child));
      Addr_space.check_well_formed asp;
      Addr_space.check_well_formed child;
      Mm.destroy child)

(* exec: destroy tears the image down but leaves the space reusable on a
   fresh depth-one chain (the LMbench fork+exec pattern). *)
let test_destroy_then_repopulate cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr ~value:9;
      Mm.destroy asp;
      check Alcotest.int "fresh depth-one chain" 1
        (Vm_object.depth (Addr_space.vm_object asp));
      let addr2 = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr2 ~value:11;
      check Alcotest.int "repopulated space works" 11
        (Mm.read_value asp ~vaddr:addr2))

(* -- Swap -- *)

let test_swap_roundtrip cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let dev = Blockdev.create ~name:"swap0" () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr ~value:77;
      check Alcotest.bool "swap out succeeds" true
        (Mm.swap_out asp ~vaddr:addr ~dev);
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + page) (fun c ->
          match Addr_space.query c addr with
          | Status.Swapped _ -> ()
          | s -> Alcotest.failf "expected swapped, got %s" (Status.to_string s));
      check Alcotest.int "one block used" 1 (Blockdev.used_blocks dev);
      (* Touching swaps it back in with the data intact. *)
      check Alcotest.int "value survives swap" 77
        (Mm.read_value asp ~vaddr:addr);
      check Alcotest.int "block freed after swap-in" 0
        (Blockdev.used_blocks dev))

let test_swap_skips_shared cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let dev = Blockdev.create ~name:"swap0" () in
      let addr = Mm_compat.mmap asp ~len:page ~perm:Perm.rw () in
      Mm.write_value asp ~vaddr:addr ~value:1;
      let child = Mm.fork asp in
      (* COW-shared page: map_count = 2, the simple swapper skips it. *)
      check Alcotest.bool "shared page skipped" false
        (Mm.swap_out asp ~vaddr:addr ~dev);
      ignore child)

(* -- File mappings -- *)

let test_private_file_read cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let file = File.regular ~name:"data.bin" ~size:(kib 64) in
      let addr =
        Mm_compat.mmap asp
          ~backing:(Mm.File_private (file, kib 8))
          ~len:(kib 16) ~perm:Perm.r ()
      in
      (* Reading faults in page-cache pages with the file's content. *)
      let v = Mm.read_value asp ~vaddr:addr in
      check Alcotest.int "file token page 2" (File.page_token file ~page_index:2) v;
      let v2 = Mm.read_value asp ~vaddr:(addr + page) in
      check Alcotest.int "file token page 3" (File.page_token file ~page_index:3) v2;
      check Alcotest.int "two pages cached" 2 (File.cached_pages file))

let test_private_file_cow cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let file = File.regular ~name:"data.bin" ~size:(kib 64) in
      let addr =
        Mm_compat.mmap asp
          ~backing:(Mm.File_private (file, 0))
          ~len:(kib 16) ~perm:Perm.rw ()
      in
      let original = Mm.read_value asp ~vaddr:addr in
      (* A private write must not modify the page cache. *)
      Mm.write_value asp ~vaddr:addr ~value:1234;
      check Alcotest.int "private write visible" 1234
        (Mm.read_value asp ~vaddr:addr);
      (match File.lookup_page file ~page_index:0 with
      | Some f ->
        check Alcotest.int "page cache unchanged" original
          f.Mm_phys.Frame.contents
      | None -> Alcotest.fail "cache page vanished"))

let test_shared_file_write_and_msync cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let file = File.regular ~name:"log.bin" ~size:(kib 16) in
      let addr =
        Mm_compat.mmap asp ~backing:(Mm.Shared (file, 0)) ~len:(kib 16) ~perm:Perm.rw ()
      in
      Mm.write_value asp ~vaddr:addr ~value:555;
      (* Shared write goes to the page cache and marks it dirty. *)
      (match File.lookup_page file ~page_index:0 with
      | Some f -> check Alcotest.int "cache sees write" 555 f.Mm_phys.Frame.contents
      | None -> Alcotest.fail "cache page missing");
      check Alcotest.int "msync writes one page" 1 (Mm_compat.msync asp ~file);
      check Alcotest.int "second msync writes nothing" 0
        (Mm_compat.msync asp ~file))

let test_file_rmap cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let file = File.regular ~name:"lib.so" ~size:(kib 64) in
      let addr =
        Mm_compat.mmap asp ~backing:(Mm.File_private (file, 0)) ~len:(kib 16)
          ~perm:Perm.r ()
      in
      Mm.touch asp ~vaddr:addr ~write:false;
      check Alcotest.int "one mapper recorded" 1
        (List.length (File.mappers file));
      Mm_compat.munmap asp ~addr ~len:(kib 16);
      check Alcotest.int "mapper removed on unmap" 0
        (List.length (File.mappers file)))

let test_anon_rmap cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      let pfn =
        Addr_space.with_lock asp ~lo:addr ~hi:(addr + page) (fun c ->
            match Addr_space.query c addr with
            | Status.Mapped { pfn; _ } -> pfn
            | _ -> Alcotest.fail "not mapped")
      in
      (match Kernel.rmap_of kernel ~pfn with
      | [ (asp_id, vaddr) ] ->
        check Alcotest.int "rmap asp" (Addr_space.id asp) asp_id;
        check Alcotest.int "rmap vaddr" addr vaddr
      | l -> Alcotest.failf "expected one rmap entry, got %d" (List.length l));
      Mm_compat.munmap asp ~addr ~len:(kib 16);
      check Alcotest.int "rmap cleared" 0
        (List.length (Kernel.rmap_of kernel ~pfn)))

(* -- Huge pages -- *)

let test_huge_map_and_split cfg =
  in_sim (fun () ->
      let kernel, asp = make_asp ~cfg () in
      let addr = mib 512 in
      (* Map a 2 MiB huge page directly. *)
      let frame =
        Mm_phys.Phys.alloc kernel.Kernel.phys ~kind:Mm_phys.Frame.Anon ~order:9 ()
      in
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + mib 2) (fun c ->
          Addr_space.map c ~vaddr:addr ~frame ~perm:Perm.rw ~level:2 ());
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + mib 2) (fun c ->
          match Addr_space.query c (addr + kib 12) with
          | Status.Mapped { pfn; _ } ->
            check Alcotest.int "huge page interior pfn"
              (frame.Mm_phys.Frame.pfn + 3) pfn
          | s -> Alcotest.failf "expected mapped, got %s" (Status.to_string s));
      (* Unmapping one 4 KiB page splits the huge leaf. *)
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + mib 2) (fun c ->
          Addr_space.unmap c ~lo:(addr + kib 12) ~hi:(addr + kib 16));
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + mib 2) (fun c ->
          (match Addr_space.query c (addr + kib 12) with
          | Status.Invalid -> ()
          | s -> Alcotest.failf "hole expected, got %s" (Status.to_string s));
          match Addr_space.query c (addr + kib 8) with
          | Status.Mapped { pfn; _ } ->
            check Alcotest.int "neighbour pfn preserved"
              (frame.Mm_phys.Frame.pfn + 2) pfn
          | s -> Alcotest.failf "expected mapped, got %s" (Status.to_string s));
      Addr_space.check_well_formed asp)

(* -- Locking protocol behaviour -- *)

let test_adv_stale_retry () =
  (* CPU 1 races a lock acquisition against CPU 0 unmapping the PT page
     (Fig 7): CPU 1 must detect the stale page and retry, and both
     transactions must apply. *)
  let outcome =
    in_sim ~ncpus:2 (fun () ->
        (* This closure runs on cpu 0; spawn work for cpu 1 within the same
           world via a second fiber below. *)
        ())
  in
  ignore outcome;
  let w = Engine.create ~ncpus:2 in
  let kernel = Kernel.create ~ncpus:2 () in
  let asp = Addr_space.create kernel Config.adv in
  let addr = mib 256 in
  let done0 = ref false and done1 = ref false in
  Engine.spawn w ~cpu:0 (fun () ->
      let _ = Mm_compat.mmap asp ~addr ~len:(mib 2) ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      (* Unmap the whole 2 MiB: frees the L1 PT page under the covering
         L2 page while cpu 1 is trying to lock it. *)
      Mm_compat.munmap asp ~addr ~len:(mib 2);
      done0 := true);
  Engine.spawn w ~cpu:1 (fun () ->
      (* Arrive while cpu 0 holds the locks. *)
      Engine.tick 9_000;
      let _ = Mm_compat.mmap asp ~addr:(addr + kib 4) ~len:(kib 4) ~perm:Perm.rw () in
      done1 := true);
  Engine.run w;
  check Alcotest.bool "cpu0 done" true !done0;
  check Alcotest.bool "cpu1 done" true !done1;
  Addr_space.check_well_formed asp

let test_disjoint_parallelism () =
  (* Transactions on disjoint regions must overlap in time (the paper's
     concurrency semantics). The very first operation in a fresh region
     locks a high covering page (the PT pages do not exist yet) and
     serializes; repeated operations hit the persisting leaf PT pages, so
     with enough iterations the parallel run must be far faster than the
     serial one. *)
  let ncpus = 8 and iters = 30 in
  let work asp region =
    let addr = mib (256 * (region + 1)) in
    for _ = 1 to iters do
      let _ = Mm_compat.mmap asp ~addr ~len:(kib 64) ~perm:Perm.rw () in
      Mm.touch_range asp ~addr ~len:(kib 64) ~write:true;
      Mm_compat.munmap asp ~addr ~len:(kib 64)
    done
  in
  let serial_time =
    let w = Engine.create ~ncpus:1 in
    let kernel = Kernel.create ~ncpus:1 () in
    let asp = Addr_space.create kernel Config.adv in
    Engine.spawn w ~cpu:0 (fun () ->
        for i = 0 to ncpus - 1 do
          work asp i
        done);
    Engine.run w;
    Engine.max_time w
  in
  let parallel_time =
    let w = Engine.create ~ncpus in
    let kernel = Kernel.create ~ncpus () in
    let asp = Addr_space.create kernel Config.adv in
    for cpu = 0 to ncpus - 1 do
      Engine.spawn w ~cpu (fun () -> work asp cpu)
    done;
    Engine.run w;
    Engine.max_time w
  in
  check Alcotest.bool
    (Printf.sprintf "parallel (%d) much faster than serial (%d)" parallel_time
       serial_time)
    true
    (parallel_time * 3 < serial_time)

let test_overlapping_serialize () =
  (* Concurrent faults on the same page: exactly one frame must end up
     mapped, and the space must stay well-formed. *)
  let ncpus = 4 in
  let w = Engine.create ~ncpus in
  let kernel = Kernel.create ~ncpus () in
  let asp = Addr_space.create kernel Config.adv in
  let addr = mib 256 in
  Engine.spawn w ~cpu:0 (fun () ->
      ignore (Mm_compat.mmap asp ~addr ~len:(kib 16) ~perm:Perm.rw ()));
  Engine.run w;
  let w = Engine.create ~ncpus in
  for cpu = 0 to ncpus - 1 do
    Engine.spawn w ~cpu (fun () -> Mm.touch asp ~vaddr:addr ~write:true)
  done;
  Engine.run w;
  Addr_space.check_well_formed asp;
  let w = Engine.create ~ncpus in
  Engine.spawn w ~cpu:0 (fun () ->
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + page) (fun c ->
          match Addr_space.query c addr with
          | Status.Mapped _ -> ()
          | s -> Alcotest.failf "expected mapped, got %s" (Status.to_string s)));
  Engine.run w

let test_chaos_stress () =
  (* 16 CPUs hammer a mix of private and shared regions with every
     operation type under both protocols; the space must end well-formed
     and the run must be deterministic. *)
  let run cfg seed =
    let ncpus = 16 in
    let kernel = Kernel.create ~ncpus () in
    let asp = Addr_space.create kernel cfg in
    let w = Engine.create ~ncpus in
    let shared = mib 64 in
    Engine.spawn w ~cpu:0 (fun () ->
        ignore (Mm_compat.mmap asp ~addr:shared ~len:(mib 4) ~perm:Perm.rw ()));
    Engine.run w;
    let w = Engine.create ~ncpus in
    for cpu = 0 to ncpus - 1 do
      let rng = Mm_util.Rng.create ~seed:(seed + (13 * cpu)) in
      Engine.spawn w ~cpu (fun () ->
          let mine = ref [] in
          for i = 0 to 39 do
            (match Mm_util.Rng.int rng 6 with
            | 0 ->
              let len = (1 + Mm_util.Rng.int rng 4) * page in
              mine := (Mm_compat.mmap asp ~len ~perm:Perm.rw (), len) :: !mine
            | 1 -> (
              match !mine with
              | (a, len) :: rest ->
                Mm_compat.munmap asp ~addr:a ~len;
                mine := rest
              | [] -> ())
            | 2 -> (
              match !mine with
              | (a, _) :: _ -> (
                try Mm.touch asp ~vaddr:a ~write:true with Mm.Fault _ -> ())
              | [] -> ())
            | 3 ->
              (* Random access in the shared region. *)
              let v = shared + (Mm_util.Rng.int rng 1024 * page) in
              (try Mm.touch asp ~vaddr:v ~write:(Mm_util.Rng.bool rng)
               with Mm.Fault _ -> ())
            | 4 -> (
              match !mine with
              | (a, len) :: _ ->
                Mm_compat.mprotect asp ~addr:a ~len
                  ~perm:(if Mm_util.Rng.bool rng then Perm.r else Perm.rw)
              | [] -> ())
            | _ ->
              (* Unmap a random chunk of the shared region (races with
                 other CPUs' faults there). *)
              let v = shared + (Mm_util.Rng.int rng 1024 * page) in
              Mm_compat.munmap asp ~addr:v ~len:page);
            if i mod 8 = 0 then Mm.timer_tick asp
          done)
    done;
    Engine.run w;
    Addr_space.check_well_formed asp;
    (Engine.max_time w, Addr_space.stale_retries asp)
  in
  List.iter
    (fun cfg ->
      let a = run cfg 1 in
      let b = run cfg 1 in
      check Alcotest.bool "deterministic chaos" true (a = b))
    [ Config.adv; Config.rw ]

(* -- Functional correctness against a flat reference model (P2) --

   The reference is a map from page number to an abstract status; every
   operation is applied to both the real system and the reference, then
   query must agree over the whole window. This is the model-checking
   analog of the paper's Verus proof of RCursor correctness. *)

module Ref_model = struct
  type entry = R_invalid | R_anon of Perm.t | R_mapped of Perm.t

  type t = (int, entry) Hashtbl.t

  let create () : t = Hashtbl.create 64
  let get t vpn =
    match Hashtbl.find_opt t vpn with Some e -> e | None -> R_invalid

  let set t vpn e =
    if e = R_invalid then Hashtbl.remove t vpn else Hashtbl.replace t vpn e

  let agree entry (s : Status.t) =
    match (entry, s) with
    | R_invalid, Status.Invalid -> true
    | R_anon p, Status.Private_anon q -> Perm.equal p q
    | R_mapped p, Status.Mapped { perm = q; _ } ->
      (* The real system may clear cow/write differently on fault; compare
         the user-visible access rights. *)
      p.Perm.read = q.Perm.read
      && (p.Perm.write = q.Perm.write || q.Perm.cow)
    | _ -> false
end

type op =
  | Op_mmap of int * int * bool (* page index, pages, writable *)
  | Op_munmap of int * int
  | Op_touch of int * bool
  | Op_protect of int * int * bool

let window_pages = 64
let window_base = 0x4000_0000 (* 1 GiB, 2MiB-aligned *)

let gen_op =
  QCheck.Gen.(
    let* k = int_bound 3 in
    let* p = int_bound (window_pages - 1) in
    let* n = int_range 1 8 in
    let n = min n (window_pages - p) in
    let* w = bool in
    return
      (match k with
      | 0 -> Op_mmap (p, n, w)
      | 1 -> Op_munmap (p, n)
      | 2 -> Op_touch (p, w)
      | _ -> Op_protect (p, n, w)))

let apply_real asp op =
  let a p = window_base + (p * page) in
  match op with
  | Op_mmap (p, n, w) ->
    ignore
      (Mm_compat.mmap asp ~addr:(a p) ~len:(n * page)
         ~perm:(if w then Perm.rw else Perm.r)
         ())
  | Op_munmap (p, n) -> Mm_compat.munmap asp ~addr:(a p) ~len:(n * page)
  | Op_touch (p, w) -> (
    try Mm.touch asp ~vaddr:(a p) ~write:w with Mm.Fault _ -> ())
  | Op_protect (p, n, w) ->
    Mm_compat.mprotect asp ~addr:(a p) ~len:(n * page)
      ~perm:(if w then Perm.rw else Perm.r)

let apply_ref model op =
  let perm w = if w then Perm.rw else Perm.r in
  match op with
  | Op_mmap (p, n, w) ->
    for i = p to p + n - 1 do
      Ref_model.set model i (Ref_model.R_anon (perm w))
    done
  | Op_munmap (p, n) ->
    for i = p to p + n - 1 do
      Ref_model.set model i Ref_model.R_invalid
    done
  | Op_touch (p, w) -> (
    match Ref_model.get model p with
    | Ref_model.R_anon q when Perm.allows q ~write:w ->
      Ref_model.set model p (Ref_model.R_mapped q)
    | Ref_model.R_mapped _ | Ref_model.R_anon _ | Ref_model.R_invalid -> ())
  | Op_protect (p, n, w) ->
    for i = p to p + n - 1 do
      match Ref_model.get model i with
      | Ref_model.R_invalid -> ()
      | Ref_model.R_anon _ -> Ref_model.set model i (Ref_model.R_anon (perm w))
      | Ref_model.R_mapped _ ->
        Ref_model.set model i (Ref_model.R_mapped (perm w))
    done

let run_against_model cfg ops =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let model = Ref_model.create () in
      let ok = ref true in
      List.iter
        (fun op ->
          apply_real asp op;
          apply_ref model op;
          Addr_space.check_well_formed asp;
          Addr_space.with_lock asp ~lo:window_base
            ~hi:(window_base + (window_pages * page)) (fun c ->
              for vpn = 0 to window_pages - 1 do
                let s = Addr_space.query c (window_base + (vpn * page)) in
                if not (Ref_model.agree (Ref_model.get model vpn) s) then
                  ok := false
              done))
        ops;
      !ok)

let functional_correctness_prop cfg name =
  QCheck.Test.make ~name ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 1 25) gen_op))
    (fun ops -> run_against_model cfg ops)

(* -- Va_alloc -- *)

let test_va_alloc_disjoint () =
  in_sim ~ncpus:4 (fun () ->
      let va =
        Va_alloc.create ~ncpus:4 ~per_core:true ~va_lo:0x1000_0000
          ~va_hi:0x8000_0000_0000 ~page_size:page
      in
      (* Different cores allocate from disjoint shares. *)
      let a0 = Va_alloc.alloc va ~cpu:0 ~len:(kib 16) () in
      let a1 = Va_alloc.alloc va ~cpu:1 ~len:(kib 16) () in
      check Alcotest.bool "disjoint shares" true (abs (a0 - a1) > mib 1);
      (* Freed ranges are reused. *)
      Va_alloc.free va ~cpu:0 ~addr:a0 ~len:(kib 16);
      let a0' = Va_alloc.alloc va ~cpu:0 ~len:(kib 16) () in
      check Alcotest.int "freed range reused" a0 a0')

let test_meta_accounting cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      let stats = Addr_space.mem_stats asp in
      check Alcotest.bool "meta bytes tracked" true
        (stats.Addr_space.meta_bytes > 0);
      check Alcotest.bool "upper bound dominates" true
        (Addr_space.meta_bytes_upper_bound asp >= stats.Addr_space.meta_bytes);
      Mm_compat.munmap asp ~addr ~len:(kib 16))

(* The deprecated exception wrappers are gone: the typed [_r] surface is
   the only entry point.  This test pins the migration — the same
   mmap/touch/munmap flow through [_r], plus the error shapes the old
   wrappers used to express as exceptions. *)
let test_typed_surface_replaces_wrappers cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      Mm.touch asp ~vaddr:addr ~write:true;
      Mm_compat.munmap asp ~addr ~len:(kib 16);
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + page) (fun c ->
          match Addr_space.query c addr with
          | Status.Invalid -> ()
          | s -> Alcotest.failf "expected Invalid, got %s" (Status.to_string s));
      (* Malformed requests come back as typed errors, not exceptions. *)
      (match Mm.mmap_r asp ~len:0 ~perm:Perm.rw () with
      | Error Mm_hal.Errno.EINVAL -> ()
      | Ok _ | Error _ -> Alcotest.fail "empty mmap must be EINVAL");
      match Mm.mlock_r asp ~addr:(page / 2) ~len:page with
      | Error Mm_hal.Errno.EINVAL -> ()
      | Ok _ | Error _ -> Alcotest.fail "unaligned mlock must be EINVAL")

(* An exception escaping the [with_lock] callback must still release the
   range locks and leave the protocol state clean: a subsequent
   overlapping transaction would deadlock otherwise. *)
exception Callback_boom

let test_with_lock_exception_safety cfg =
  in_sim (fun () ->
      let _, asp = make_asp ~cfg () in
      let addr = Mm_compat.mmap asp ~len:(kib 16) ~perm:Perm.rw () in
      (try
         Addr_space.with_lock asp ~lo:addr ~hi:(addr + kib 16) (fun _c ->
             raise Callback_boom)
       with Callback_boom -> ());
      (* The same range locks again without deadlocking, and the space is
         still fully usable. *)
      Addr_space.with_lock asp ~lo:addr ~hi:(addr + kib 16) (fun c ->
          match Addr_space.query c addr with
          | Status.Private_anon _ -> ()
          | s -> Alcotest.failf "expected anon mark, got %s" (Status.to_string s));
      Mm.touch asp ~vaddr:addr ~write:true;
      Mm_compat.munmap asp ~addr ~len:(kib 16);
      Addr_space.check_well_formed asp)

let proto_case name f =
  Alcotest.test_case name `Quick (both_protocols (fun cfg -> f cfg))

let () =
  Alcotest.run "cortenmm"
    [
      ( "interface",
        [
          proto_case "mmap + query" test_mmap_query;
          proto_case "touch maps on demand" test_touch_maps;
          proto_case "fault on unmapped" test_fault_on_unmapped;
          proto_case "touch raises Fault" test_touch_raises_on_invalid;
          proto_case "munmap clears" test_munmap_clears;
          proto_case "munmap frees frames" test_munmap_frees_frames;
          proto_case "PT pages on demand" test_pt_pages_on_demand;
          proto_case "upper-level marks" test_mark_upper_level;
          proto_case "mprotect" test_mprotect;
        ] );
      ( "cow-fork",
        [
          proto_case "write/read value" test_write_read_value;
          proto_case "fork COW semantics" test_fork_cow;
          proto_case "fork inherits marks" test_fork_unfaulted_marks;
          proto_case "fork shares shm" test_fork_shared_anon;
          proto_case "destroy releases all" test_destroy;
          proto_case "fork write-protects both sides" test_fork_wp_both_sides;
          proto_case "shadow chain collapses on exit" test_fork_chain_collapse;
          proto_case "divergence only at written pages"
            test_fork_divergence_only_at_writes;
          proto_case "destroy then repopulate (exec)"
            test_destroy_then_repopulate;
        ] );
      ( "swap",
        [
          proto_case "swap roundtrip" test_swap_roundtrip;
          proto_case "swap skips shared" test_swap_skips_shared;
        ] );
      ( "files",
        [
          proto_case "private file read" test_private_file_read;
          proto_case "private file COW" test_private_file_cow;
          proto_case "shared file + msync" test_shared_file_write_and_msync;
          proto_case "file rmap" test_file_rmap;
          proto_case "anon rmap" test_anon_rmap;
        ] );
      ( "huge-pages",
        [ proto_case "huge map and split" test_huge_map_and_split ] );
      ( "locking",
        [
          Alcotest.test_case "adv stale retry" `Quick test_adv_stale_retry;
          Alcotest.test_case "disjoint parallelism" `Quick
            test_disjoint_parallelism;
          Alcotest.test_case "overlapping serialize" `Quick
            test_overlapping_serialize;
          Alcotest.test_case "16-cpu chaos stress" `Quick test_chaos_stress;
          proto_case "with_lock exception safety" test_with_lock_exception_safety;
        ] );
      ( "functional-correctness",
        [
          QCheck_alcotest.to_alcotest
            (functional_correctness_prop Config.adv
               "adv ops agree with reference model");
          QCheck_alcotest.to_alcotest
            (functional_correctness_prop Config.rw
               "rw ops agree with reference model");
        ] );
      ( "allocators",
        [
          Alcotest.test_case "va alloc disjoint" `Quick test_va_alloc_disjoint;
          proto_case "meta accounting" test_meta_accounting;
        ] );
      ( "legacy",
        [
          proto_case "typed surface replaces wrappers"
            test_typed_surface_replaces_wrappers;
        ] );
    ]
